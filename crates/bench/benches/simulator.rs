//! Criterion micro-benchmarks of the simulator itself.
//!
//! The paper's figures are deterministic virtual-time results; these
//! benches instead measure the *wall-clock* cost of the model, so
//! regressions in simulator performance are caught.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use twob_core::{EntryId, TwoBSsd};
use twob_ftl::Lba;
use twob_sim::SimTime;
use twob_ssd::{Ssd, SsdConfig};
use twob_wal::{BaWal, WalConfig, WalWriter};

fn bench_ssd_write_path(c: &mut Criterion) {
    c.bench_function("ssd_4k_write_path", |b| {
        let mut ssd = Ssd::new(SsdConfig::ull_ssd().small());
        let page = vec![0xA5u8; 4096];
        let mut t = SimTime::ZERO;
        let mut lba = 0u64;
        let cap = ssd.capacity_pages();
        b.iter(|| {
            t = ssd
                .write(t, Lba(lba % cap), black_box(&page))
                .expect("write");
            lba += 1;
        });
    });
}

fn bench_ba_commit(c: &mut Criterion) {
    c.bench_function("ba_wal_commit", |b| {
        let mut wal = BaWal::new(TwoBSsd::small_for_tests(), WalConfig::default(), 8).expect("wal");
        let mut t = SimTime::from_nanos(1_000_000);
        let body = vec![0x42u8; 100];
        b.iter(|| {
            t = wal
                .append_commit(t, black_box(&body))
                .expect("commit")
                .commit_at;
        });
    });
}

fn bench_mmio_store(c: &mut Criterion) {
    c.bench_function("twob_mmio_store_64b", |b| {
        let mut dev = TwoBSsd::small_for_tests();
        let pin = dev
            .ba_pin(SimTime::ZERO, EntryId(0), 0, Lba(0), 4)
            .expect("pin");
        let mut t = pin.complete_at;
        let data = vec![0x7Eu8; 64];
        let mut offset = 0u64;
        b.iter(|| {
            let out = dev
                .mmio_write(t, EntryId(0), offset % ((16 << 10) - 64), black_box(&data))
                .expect("store");
            t = out.retired_at;
            offset += 64;
        });
    });
}

fn bench_linkbench_txn(c: &mut Criterion) {
    use twob_db::{EngineCosts, MiniPg};
    use twob_sim::SimRng;
    use twob_wal::{BlockWal, CommitMode};
    use twob_workloads::{LinkbenchConfig, LinkbenchWorkload};
    c.bench_function("minipg_linkbench_txn", |b| {
        let wal = BlockWal::new(
            Ssd::new(SsdConfig::ull_ssd().small()),
            WalConfig::default(),
            CommitMode::Sync,
        )
        .expect("wal");
        let mut pg = MiniPg::new(Box::new(wal), EngineCosts::postgres());
        let mut rng = SimRng::seed_from(1);
        let mut wl = LinkbenchWorkload::new(LinkbenchConfig::standard(200));
        let mut t = SimTime::ZERO;
        for txn in wl.load_phase(&mut rng, 1) {
            t = pg.run_txn(t, &txn).expect("load").commit_at;
        }
        b.iter(|| {
            let txn = wl.next_txn(&mut rng);
            t = pg.run_txn(t, black_box(&txn)).expect("txn").commit_at;
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_ssd_write_path, bench_ba_commit, bench_mmio_store, bench_linkbench_txn
}
criterion_main!(benches);
