//! Golden figure output: the event-kernel refactor must be invisible at
//! queue depth 1.
//!
//! The fixtures under `tests/golden/` were captured from the bench binaries
//! before the simulator moved from busy-until arithmetic to the explicit
//! event calendar. These tests pin that the figures' JSON is *byte
//! identical* — not merely numerically close — so any timing drift in the
//! kernel shows up as a diff, not as a silently shifted figure.

fn golden(name: &str) -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/");
    std::fs::read_to_string(format!("{path}{name}.json"))
        .unwrap_or_else(|e| panic!("read fixture {name}: {e}"))
        .trim_end()
        .to_string()
}

#[test]
fn fig7_json_is_byte_identical_to_pre_kernel_capture() {
    let rows = twob_bench::fig7::run();
    let json = serde_json::to_string(&rows).expect("serialize fig7");
    assert_eq!(json, golden("fig7_latency"), "fig7 output drifted");
}

#[test]
fn fig9_json_is_byte_identical_to_pre_kernel_capture() {
    let report = twob_bench::fig9::run(false);
    let json = serde_json::to_string(&report).expect("serialize fig9");
    assert_eq!(json, golden("fig9_apps"), "fig9 output drifted");
}

#[test]
fn gc_interference_json_is_byte_identical_to_capture() {
    let rows = twob_bench::gc_interference::run();
    let json = serde_json::to_string(&rows).expect("serialize gc interference");
    assert_eq!(json, golden("gc_interference"), "gc study output drifted");
}
