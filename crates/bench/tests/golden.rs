//! Golden figure output: simulator changes must not silently shift figures.
//!
//! The fixtures under `tests/golden/` pin each study's JSON *byte
//! identically* — not merely numerically close — so any timing drift in
//! the kernel shows up as a diff, not as a silently shifted figure. After
//! an intentional timing change, regenerate them with
//! `cargo run --release -p twob-bench --bin regen_golden` and review the
//! diff.

fn golden(name: &str) -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/");
    std::fs::read_to_string(format!("{path}{name}.json"))
        .unwrap_or_else(|e| panic!("read fixture {name}: {e}"))
        .trim_end()
        .to_string()
}

/// Asserts byte identity with the fixture, pointing at the regeneration
/// command (and the first divergent byte) on mismatch.
fn assert_matches_golden(name: &str, json: &str) {
    let expected = golden(name);
    if json != expected {
        let at = json
            .bytes()
            .zip(expected.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| json.len().min(expected.len()));
        let lo = at.saturating_sub(40);
        panic!(
            "{name} output drifted from tests/golden/{name}.json \
             (first difference at byte {at}:\n  got      ...{}\n  expected ...{}\n). \
             If the change is intentional, run \
             `cargo run --release -p twob-bench --bin regen_golden` and review \
             `git diff crates/bench/tests/golden/`.",
            &json[lo..(at + 40).min(json.len())],
            &expected[lo..(at + 40).min(expected.len())],
        );
    }
}

#[test]
fn fig7_json_is_byte_identical_to_capture() {
    let rows = twob_bench::fig7::run();
    let json = serde_json::to_string(&rows).expect("serialize fig7");
    assert_matches_golden("fig7_latency", &json);
}

#[test]
fn fig9_json_is_byte_identical_to_capture() {
    let report = twob_bench::fig9::run(false);
    let json = serde_json::to_string(&report).expect("serialize fig9");
    assert_matches_golden("fig9_apps", &json);
}

#[test]
fn gc_interference_json_is_byte_identical_to_capture() {
    let rows = twob_bench::gc_interference::run();
    let json = serde_json::to_string(&rows).expect("serialize gc interference");
    assert_matches_golden("gc_interference", &json);
}

#[test]
fn tenant_sweep_json_is_byte_identical_to_capture() {
    let rows = twob_bench::tenant_sweep::run();
    let json = serde_json::to_string(&rows).expect("serialize tenant sweep");
    assert_matches_golden("tenant_sweep", &json);
}

#[test]
fn repl_sweep_json_is_byte_identical_to_capture() {
    let rows = twob_bench::repl_sweep::run();
    let json = serde_json::to_string(&rows).expect("serialize repl sweep");
    assert_matches_golden("repl_sweep", &json);
}

#[test]
fn serve_sweep_json_is_byte_identical_to_capture() {
    let rows = twob_bench::serve_sweep::run();
    let json = serde_json::to_string(&rows).expect("serialize serve sweep");
    assert_matches_golden("serve_sweep", &json);
}

#[test]
fn cluster_sweep_json_is_byte_identical_to_capture() {
    let sweep = twob_bench::cluster_sweep::run();
    let json = serde_json::to_string(&sweep).expect("serialize cluster sweep");
    assert_matches_golden("cluster_sweep", &json);
}

#[test]
fn tier_sweep_json_is_byte_identical_to_capture() {
    let sweep = twob_bench::tier_sweep::run();
    let json = serde_json::to_string(&sweep).expect("serialize tier sweep");
    assert_matches_golden("tier_sweep", &json);
}
