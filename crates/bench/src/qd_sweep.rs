//! QD sweep — Fig 8's read panel extended beyond the paper's QD1 numbers.
//!
//! The paper measures its comparator drives at queue depth 1, where the
//! ULL-SSD already saturates PCIe Gen3 ×4 for large requests but small
//! requests leave the device mostly idle: one 4 KiB read occupies a
//! firmware core, one die, and one channel while seven channels sit dark.
//! With NVMe queue pairs ([`twob_ssd::NvmeSsd`]) the sweep re-runs the
//! request-size axis at QD ∈ {1, 4, 16, 64}, showing how deeper queues
//! overlap firmware fetch, NAND sensing, and host transfer across commands
//! until the bottleneck moves from per-request latency to a shared stage.

use serde::{Deserialize, Serialize};
use twob_ftl::Lba;
use twob_sim::SimTime;
use twob_ssd::{NvmeOp, NvmeSsd, QueueConfig, Ssd, SsdConfig};
use twob_workloads::{fio, ServiceDriver};

/// One (device, request size, queue depth) measurement of sequential reads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QdRow {
    /// Device profile name (`"ULL-SSD"` or `"DC-SSD"`).
    pub device: String,
    /// Request size in bytes.
    pub size: u64,
    /// Queue depth (outstanding commands).
    pub qd: usize,
    /// Read bandwidth in MB/s.
    pub read_mbs: f64,
    /// Mean per-command latency in microseconds.
    pub mean_lat_us: f64,
    /// 99th-percentile per-command latency in microseconds.
    pub p99_lat_us: f64,
}

/// Queue depths swept.
pub const QUEUE_DEPTHS: [usize; 4] = [1, 4, 16, 64];

/// Request sizes swept (4 KiB – 1 MiB).
pub fn request_sizes() -> Vec<u64> {
    vec![4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20]
}

/// Distinct extents the closed loop wraps over.
const EXTENT_REQUESTS: u64 = 64;

/// Reads issued per measurement.
const TOTAL_OPS: u64 = 256;

/// Measures sequential reads of `size` bytes at depth `qd` on a fresh
/// device built from `cfg`.
pub fn read_row(device: &str, cfg: SsdConfig, size: u64, qd: usize) -> QdRow {
    let pages = fio::pages_for(size);
    let mut ssd = Ssd::new(cfg.bench_scale());
    // Populate the extent the loop will wrap over.
    let chunk = vec![0x5au8; pages as usize * 4096];
    let mut t = SimTime::ZERO;
    for i in 0..EXTENT_REQUESTS {
        t = ssd
            .write(t, Lba(i * u64::from(pages)), &chunk)
            .expect("populate extent");
    }
    let start = ssd.flush(t);
    let mut dev = NvmeSsd::new(ssd, QueueConfig::new(1, qd));
    let report = ServiceDriver::run_nvme(&mut dev, start, TOTAL_OPS, |i| {
        (
            0,
            NvmeOp::Read {
                lba: Lba((i % EXTENT_REQUESTS) * u64::from(pages)),
                pages,
            },
        )
    });
    assert_eq!(report.ops, TOTAL_OPS);
    assert_eq!(report.errors, 0, "clean sweep for {device} {size}B qd{qd}");
    QdRow {
        device: device.to_string(),
        size,
        qd,
        read_mbs: report.mb_per_sec(),
        mean_lat_us: report.latency.mean().as_nanos() as f64 / 1e3,
        p99_lat_us: report.latency.percentile(0.99).as_nanos() as f64 / 1e3,
    }
}

/// Regenerates the full sweep: both comparator drives, every request size,
/// every queue depth.
pub fn run() -> Vec<QdRow> {
    let mut rows = Vec::new();
    for device in ["ULL-SSD", "DC-SSD"] {
        let cfg = || match device {
            "ULL-SSD" => SsdConfig::ull_ssd(),
            _ => SsdConfig::dc_ssd(),
        };
        for size in request_sizes() {
            for qd in QUEUE_DEPTHS {
                rows.push(read_row(device, cfg(), size, qd));
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qd16_lifts_ull_4k_read_bandwidth_above_qd1() {
        let qd1 = read_row("ULL-SSD", SsdConfig::ull_ssd(), 4096, 1);
        let qd16 = read_row("ULL-SSD", SsdConfig::ull_ssd(), 4096, 16);
        assert!(
            qd16.read_mbs > qd1.read_mbs,
            "QD16 ({:.0} MB/s) must beat QD1 ({:.0} MB/s)",
            qd16.read_mbs,
            qd1.read_mbs
        );
        // Deeper queues trade latency for bandwidth: per-command latency
        // grows with depth.
        assert!(qd16.mean_lat_us > qd1.mean_lat_us);
    }

    #[test]
    fn bandwidth_grows_with_depth_until_saturation() {
        let rows: Vec<QdRow> = QUEUE_DEPTHS
            .iter()
            .map(|&qd| read_row("DC-SSD", SsdConfig::dc_ssd(), 4096, qd))
            .collect();
        for pair in rows.windows(2) {
            assert!(
                pair[1].read_mbs >= pair[0].read_mbs * 0.95,
                "deeper queue should not lose bandwidth: {pair:?}"
            );
        }
        // And the ends differ meaningfully.
        assert!(rows[3].read_mbs > rows[0].read_mbs * 1.5, "{rows:?}");
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = read_row("ULL-SSD", SsdConfig::ull_ssd(), 65536, 4);
        let b = read_row("ULL-SSD", SsdConfig::ull_ssd(), 65536, 4);
        assert_eq!(a, b);
    }
}
