//! Ablations of the design choices DESIGN.md calls out.

use serde::{Deserialize, Serialize};
use twob_core::TwoBSsd;
use twob_ftl::Lba;
use twob_sim::{SimDuration, SimTime};
use twob_ssd::{Ssd, SsdConfig};
use twob_wal::{BaWal, WalConfig, WalWriter};

/// Double buffering versus a single window for BA-WAL (paper §IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DoubleBufferingAblation {
    /// Commit throughput with double buffering, commits/s.
    pub double_ops_per_sec: f64,
    /// Commit throughput with one window, commits/s.
    pub single_ops_per_sec: f64,
    /// Worst-case commit latency with double buffering, µs.
    pub double_worst_us: f64,
    /// Worst-case commit latency with one window, µs.
    pub single_worst_us: f64,
}

fn drive(mut wal: BaWal, commits: u64, payload: usize) -> (f64, f64) {
    let start = SimTime::from_nanos(1_000_000);
    let mut t = start;
    let body = vec![0x70u8; payload];
    let mut worst = SimDuration::ZERO;
    for _ in 0..commits {
        let out = wal.append_commit(t, &body).expect("commit");
        worst = worst.max(out.commit_at.saturating_since(t));
        t = out.commit_at;
    }
    let tput = commits as f64 / t.saturating_since(start).as_secs_f64();
    (tput, worst.as_micros_f64())
}

/// Runs the double-buffering ablation.
pub fn double_buffering() -> DoubleBufferingAblation {
    let commits = 3_000;
    let payload = 100;
    let (double_tput, double_worst) = drive(
        BaWal::new(TwoBSsd::small_for_tests(), WalConfig::default(), 8).expect("wal"),
        commits,
        payload,
    );
    let (single_tput, single_worst) = drive(
        BaWal::new_single(TwoBSsd::small_for_tests(), WalConfig::default(), 8).expect("wal"),
        commits,
        payload,
    );
    DoubleBufferingAblation {
        double_ops_per_sec: double_tput,
        single_ops_per_sec: single_tput,
        double_worst_us: double_worst,
        single_worst_us: single_worst,
    }
}

/// Read-ahead on/off for DC-SSD sequential reads.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReadAheadAblation {
    /// Mean sequential 4 KiB read latency with read-ahead, µs.
    pub with_read_ahead_us: f64,
    /// Mean sequential 4 KiB read latency without, µs.
    pub without_read_ahead_us: f64,
}

fn sequential_read_mean(cfg: SsdConfig) -> f64 {
    let mut ssd = Ssd::new(cfg.small());
    let mut t = SimTime::ZERO;
    let pages = 64u64;
    for i in 0..pages {
        t = ssd.write(t, Lba(i), &vec![1u8; 4096]).expect("populate");
    }
    t = ssd.flush(t) + SimDuration::from_millis(1);
    let mut total = SimDuration::ZERO;
    for i in 0..pages {
        let read = ssd.read(t, Lba(i), 1).expect("read");
        total += read.complete_at.saturating_since(t);
        t = read.complete_at + SimDuration::from_micros(100);
    }
    total.as_micros_f64() / pages as f64
}

/// Runs the read-ahead ablation.
pub fn read_ahead() -> ReadAheadAblation {
    let with = sequential_read_mean(SsdConfig::dc_ssd());
    let mut no_ra = SsdConfig::dc_ssd();
    no_ra.read_ahead_pages = 0;
    let without = sequential_read_mean(no_ra);
    ReadAheadAblation {
        with_read_ahead_us: with,
        without_read_ahead_us: without,
    }
}

/// WAF of conventional block WAL versus BA-WAL (paper §IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WafAblation {
    /// Log WAF of the conventional block WAL.
    pub block_waf: f64,
    /// Log WAF of BA-WAL.
    pub ba_waf: f64,
}

/// Runs the WAF comparison: many small commits through both schemes.
pub fn waf() -> WafAblation {
    use crate::fig9::{make_wal, BaLayout, LogKind};
    let commits = 2_000u64;
    let body = vec![0x42u8; 64];
    let mut block = make_wal(LogKind::Ull, BaLayout::Halves);
    let mut ba = make_wal(LogKind::TwoB, BaLayout::Halves);
    let mut t1 = SimTime::from_nanos(1_000_000);
    let mut t2 = t1;
    for _ in 0..commits {
        t1 = block.append_commit(t1, &body).expect("block").commit_at;
        t2 = ba.append_commit(t2, &body).expect("ba").commit_at;
    }
    WafAblation {
        block_waf: block.stats().log_waf(),
        ba_waf: ba.stats().log_waf(),
    }
}

/// §VI's warning: "the bandwidth can be monopolized by the internal
/// datapath so that other applications accessing with block I/O would not
/// be able to get it enough". Measures block-read throughput with and
/// without a concurrent pin/flush stream on the same 2B-SSD.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterferenceAblation {
    /// Block-read throughput alone, MB/s.
    pub block_alone_mbs: f64,
    /// Block-read throughput while the internal datapath streams, MB/s.
    pub block_contended_mbs: f64,
}

/// Runs the internal-datapath interference experiment.
pub fn interference() -> InterferenceAblation {
    use twob_core::{EntryId, TwoBSpec, TwoBSsd};
    use twob_ftl::Lba;
    use twob_ssd::BlockDevice as _;

    fn block_read_mbs(dev: &mut TwoBSsd, contend: bool) -> f64 {
        let span_pages = 512u64;
        let mut t = SimTime::ZERO;
        for i in 0..span_pages {
            t = dev
                .write_pages(t, Lba(i), &vec![0x11u8; 4096])
                .expect("populate");
        }
        // A separate extent for the internal stream to churn.
        let pin_base = span_pages;
        for i in 0..64u64 {
            t = dev
                .write_pages(t, Lba(pin_base + i), &vec![0x22u8; 4096])
                .expect("populate pin extent");
        }
        t = dev.flush(t);
        let start = t;
        let mut internal_t = t;
        let reads = 256u64;
        for i in 0..reads {
            if contend {
                // Keep an internal pin/flush stream saturating the
                // datapath: issue the next cycle whenever the previous
                // one finished.
                while internal_t <= t {
                    let pin = dev
                        .ba_pin(internal_t, EntryId(0), 0, Lba(pin_base), 64)
                        .expect("pin");
                    let flush = dev.ba_flush(pin.complete_at, EntryId(0)).expect("flush");
                    internal_t = flush.complete_at;
                }
            }
            // Sequential block reads, 8 pages per request.
            let lba = (i * 8) % (span_pages - 8);
            let read = dev.read_pages(t, Lba(lba), 8).expect("read");
            t = read.complete_at;
        }
        let bytes = reads * 8 * 4096;
        t.saturating_since(start).bytes_per_sec(bytes) / 1e6
    }

    let spec = TwoBSpec {
        ba_buffer_bytes: 1 << 20,
        ..TwoBSpec::default()
    };
    let mut alone = TwoBSsd::new(SsdConfig::base_2b().bench_scale(), spec);
    let mut contended = TwoBSsd::new(SsdConfig::base_2b().bench_scale(), spec);
    InterferenceAblation {
        block_alone_mbs: block_read_mbs(&mut alone, false),
        block_contended_mbs: block_read_mbs(&mut contended, true),
    }
}

/// Random-read throughput versus queue depth (the paper evaluates at QD1
/// only; this sweep verifies the device model's queuing behaves sanely
/// beyond it).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueueDepthAblation {
    /// `(queue depth, ULL-SSD kIOPS, DC-SSD kIOPS)` rows.
    pub rows: Vec<(usize, f64, f64)>,
}

/// Runs a random 4 KiB read sweep at several queue depths.
pub fn queue_depth() -> QueueDepthAblation {
    use twob_ftl::Lba;
    use twob_sim::SimRng;
    use twob_workloads::ClientPool;

    fn kiops(cfg: SsdConfig, depth: usize) -> f64 {
        let mut ssd = Ssd::new(cfg.bench_scale());
        let mut rng = SimRng::seed_from(23);
        let span = 4_096u64;
        let mut t = SimTime::ZERO;
        for lba in 0..span {
            t = ssd
                .write(t, Lba(lba), &vec![0xAAu8; 4096])
                .expect("populate");
        }
        t = ssd.flush(t);
        let ops = 2_000u64;
        let mut pool = ClientPool::starting_at(depth, t);
        for _ in 0..ops {
            let (client, at) = pool.next_client();
            let lba = rng.next_u64_below(span);
            let read = ssd.read(at, Lba(lba), 1).expect("read");
            pool.complete(client, read.complete_at);
        }
        ops as f64 / pool.makespan().saturating_since(t).as_secs_f64() / 1e3
    }

    let rows = [1usize, 2, 4, 8, 16, 32]
        .into_iter()
        .map(|depth| {
            (
                depth,
                kiops(SsdConfig::ull_ssd(), depth),
                kiops(SsdConfig::dc_ssd(), depth),
            )
        })
        .collect();
    QueueDepthAblation { rows }
}

/// Group commit (batched appends) versus per-record commits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroupCommitAblation {
    /// DC-SSD sync WAL, one commit per record, records/s.
    pub dc_solo: f64,
    /// DC-SSD sync WAL, batches of 16, records/s.
    pub dc_grouped: f64,
    /// BA-WAL, one durable commit per record, records/s.
    pub ba_solo: f64,
}

/// Runs the group-commit comparison: even with 16-way batching, the block
/// path cannot reach BA-WAL's *per-record-durable* rate.
pub fn group_commit() -> GroupCommitAblation {
    use crate::fig9::{make_wal, BaLayout, LogKind};
    use twob_wal::WalWriter as _;

    let records: Vec<Vec<u8>> = (0..512u16).map(|i| vec![i as u8; 128]).collect();
    let start = SimTime::from_nanos(1_000_000);

    let rate = |span_ns: u64| records.len() as f64 / (span_ns as f64 / 1e9);

    let mut dc_solo = make_wal(LogKind::Dc, BaLayout::Halves);
    let mut t = start;
    for r in &records {
        t = dc_solo.append_commit(t, r).expect("commit").commit_at;
    }
    let dc_solo_rate = rate(t.saturating_since(start).as_nanos());

    let mut dc_grouped = make_wal(LogKind::Dc, BaLayout::Halves);
    let mut t = start;
    for batch in records.chunks(16) {
        t = dc_grouped.append_batch(t, batch).expect("batch").commit_at;
    }
    let dc_grouped_rate = rate(t.saturating_since(start).as_nanos());

    let mut ba = make_wal(LogKind::TwoB, BaLayout::Halves);
    let mut t = start;
    for r in &records {
        t = ba.append_commit(t, r).expect("commit").commit_at;
    }
    let ba_rate = rate(t.saturating_since(start).as_nanos());

    GroupCommitAblation {
        dc_solo: dc_solo_rate,
        dc_grouped: dc_grouped_rate,
        ba_solo: ba_rate,
    }
}

/// The §VI "opposite case": bulk data written through the block path,
/// then many small reads served either by block reads or by a pinned
/// BA-buffer window over MMIO.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PinnedReadAblation {
    /// Mean latency of a 64 B read through the block path (whole-page
    /// NVMe read), µs.
    pub block_read_us: f64,
    /// Mean latency of a 64 B read through a pinned MMIO window, µs.
    pub pinned_mmio_us: f64,
    /// One-time cost of pinning the window, µs.
    pub pin_cost_us: f64,
}

/// Runs the pinned-small-read comparison.
pub fn pinned_reads() -> PinnedReadAblation {
    use twob_core::{EntryId, TwoBSpec};
    use twob_ftl::Lba;
    use twob_sim::SimRng;
    use twob_ssd::BlockDevice as _;

    let mut dev = TwoBSsd::new(SsdConfig::base_2b().small(), TwoBSpec::small_for_tests());
    let mut rng = SimRng::seed_from(17);
    // Bulk-load 8 pages of sensor data through the block path.
    let pages = 8u32;
    let mut bulk = vec![0u8; 4096 * pages as usize];
    rng.fill_bytes(&mut bulk);
    let mut t = dev.write_pages(SimTime::ZERO, Lba(0), &bulk).expect("bulk");
    t = dev.flush(t);

    let reads = 200u64;
    // Block-path small reads: a whole page per probe.
    let mut block_total = SimDuration::ZERO;
    for _ in 0..reads {
        let lba = rng.next_u64_below(u64::from(pages));
        let probe_at = t + SimDuration::from_micros(50);
        let read = dev.read_pages(probe_at, Lba(lba), 1).expect("block read");
        block_total += read.complete_at.saturating_since(probe_at);
        t = read.complete_at;
    }
    // Pin once, then MMIO reads of just the needed 64 bytes.
    let pin_issue = t + SimDuration::from_micros(50);
    let pin = dev
        .ba_pin(pin_issue, EntryId(0), 0, Lba(0), pages)
        .expect("pin");
    let pin_cost = pin.complete_at.saturating_since(pin_issue);
    t = pin.complete_at;
    let mut mmio_total = SimDuration::ZERO;
    for _ in 0..reads {
        let offset = rng.next_u64_below(u64::from(pages) * 4096 - 64);
        let probe_at = t + SimDuration::from_micros(50);
        let read = dev
            .mmio_read(probe_at, EntryId(0), offset, 64)
            .expect("mmio read");
        mmio_total += read.complete_at.saturating_since(probe_at);
        t = read.complete_at;
    }
    PinnedReadAblation {
        block_read_us: block_total.as_micros_f64() / reads as f64,
        pinned_mmio_us: mmio_total.as_micros_f64() / reads as f64,
        pin_cost_us: pin_cost.as_micros_f64(),
    }
}

/// Commit-latency distribution per scheme under multi-client load
/// (paper §IV-A: BA-WAL "optimizes both tail latencies and SSD lifespan").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TailLatencyRow {
    /// Scheme label.
    pub scheme: String,
    /// Median commit latency, µs.
    pub p50_us: f64,
    /// 99th-percentile commit latency, µs.
    pub p99_us: f64,
    /// Worst commit latency, µs.
    pub max_us: f64,
    /// Physical NAND programs per host log page (device-level WAF of the
    /// log traffic).
    pub device_waf: f64,
}

/// Runs the tail-latency comparison: 8 virtual clients pushing small
/// commits through each scheme.
pub fn tail_latency() -> Vec<TailLatencyRow> {
    use crate::fig9::{make_wal, BaLayout, LogKind};
    use twob_sim::Histogram;
    use twob_workloads::ClientPool;

    let commits = 4_000u64;
    let clients = 8;
    [LogKind::Dc, LogKind::Ull, LogKind::TwoB]
        .into_iter()
        .map(|kind| {
            let mut wal = make_wal(kind, BaLayout::Halves);
            let mut pool = ClientPool::starting_at(clients, SimTime::from_nanos(1_000_000));
            let mut hist = Histogram::new();
            for i in 0..commits {
                let (client, at) = pool.next_client();
                // A little think time between a client's commits.
                let issue = at + SimDuration::from_micros(3 + (i % 5));
                let out = wal.append_commit(issue, &[0x42u8; 128]).expect("commit");
                hist.record(out.commit_at.saturating_since(issue));
                pool.complete(client, out.commit_at);
            }
            let stats = wal.stats();
            TailLatencyRow {
                scheme: wal.scheme(),
                p50_us: hist.percentile(0.50).as_micros_f64(),
                p99_us: hist.percentile(0.99).as_micros_f64(),
                max_us: hist.max().as_micros_f64(),
                device_waf: stats.log_waf(),
            }
        })
        .collect()
}

/// File-system metadata journaling on block vs BA journal (paper §IV:
/// "2B-SSD is also a good fit for file system journaling").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FsJournalAblation {
    /// Metadata ops/s with a conventional block journal on DC-SSD.
    pub block_ops_per_sec: f64,
    /// Metadata ops/s with the journal on the 2B-SSD byte path.
    pub ba_ops_per_sec: f64,
}

/// Runs a metadata-heavy create/write/delete churn over both journals.
pub fn fs_journaling() -> FsJournalAblation {
    use twob_fs::MiniFs;
    use twob_wal::{BlockWal, CommitMode};

    fn churn<J: twob_wal::WalWriter>(mut fs: MiniFs<Ssd, J>, rounds: u32) -> f64 {
        let start = SimTime::from_nanos(1_000_000);
        let mut t = start;
        let mut ops = 0u64;
        for i in 0..rounds {
            let name = format!("tmp-{i}");
            t = fs.create(t, &name).expect("create");
            t = fs.write(t, &name, 0, &[0x61u8; 100]).expect("write");
            t = fs.delete(t, &name).expect("delete");
            ops += 3;
        }
        ops as f64 / t.saturating_since(start).as_secs_f64()
    }

    let rounds = 300;
    let block = churn(
        MiniFs::format(
            Ssd::new(SsdConfig::dc_ssd().small()),
            BlockWal::new(
                Ssd::new(SsdConfig::dc_ssd().bench_scale()),
                WalConfig::default(),
                CommitMode::Sync,
            )
            .expect("journal"),
            SimTime::ZERO,
        )
        .expect("format"),
        rounds,
    );
    let ba = churn(
        MiniFs::format(
            Ssd::new(SsdConfig::dc_ssd().small()),
            BaWal::new(TwoBSsd::small_for_tests(), WalConfig::default(), 4).expect("journal"),
            SimTime::ZERO,
        )
        .expect("format"),
        rounds,
    );
    FsJournalAblation {
        block_ops_per_sec: block,
        ba_ops_per_sec: ba,
    }
}

/// BA-buffer size sensitivity (paper §VI: ~8 MB suffices; bigger buffers
/// add usability, not bandwidth).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BufferSizeAblation {
    /// `(window pages, commit throughput)` per BA-WAL window size.
    pub rows: Vec<(u32, f64)>,
}

/// Runs the buffer-size sensitivity sweep.
pub fn buffer_size() -> BufferSizeAblation {
    let rows = [2u32, 4, 8]
        .into_iter()
        .map(|half_pages| {
            let cfg = WalConfig {
                region_pages: 64,
                ..WalConfig::default()
            };
            let (tput, _) = drive(
                BaWal::new(TwoBSsd::small_for_tests(), cfg, half_pages).expect("wal"),
                2_000,
                100,
            );
            (half_pages, tput)
        })
        .collect();
    BufferSizeAblation { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn double_buffering_hides_flushes() {
        let a = double_buffering();
        assert!(
            a.double_ops_per_sec > a.single_ops_per_sec,
            "double buffering should win: {a:?}"
        );
        assert!(
            a.single_worst_us > a.double_worst_us * 3.0,
            "single-buffer worst case should spike: {a:?}"
        );
    }

    #[test]
    fn read_ahead_pays_for_sequential_scans() {
        let a = read_ahead();
        assert!(
            a.with_read_ahead_us * 2.0 < a.without_read_ahead_us,
            "read-ahead should at least halve sequential latency: {a:?}"
        );
    }

    #[test]
    fn ba_wal_eliminates_log_write_amplification() {
        let a = waf();
        assert!((a.ba_waf - 1.0).abs() < f64::EPSILON, "{a:?}");
        assert!(a.block_waf > 10.0, "{a:?}");
    }

    #[test]
    fn internal_datapath_steals_block_bandwidth() {
        // §VI: a saturating internal stream must visibly depress block
        // throughput (they share channels and dies).
        let a = interference();
        assert!(
            a.block_contended_mbs < a.block_alone_mbs * 0.9,
            "no interference visible: {a:?}"
        );
        assert!(
            a.block_contended_mbs > a.block_alone_mbs * 0.2,
            "block path should be degraded, not starved: {a:?}"
        );
    }

    #[test]
    fn queue_depth_scales_throughput_until_saturation() {
        let a = queue_depth();
        let at = |d: usize| a.rows.iter().find(|(depth, _, _)| *depth == d).unwrap();
        let (_, ull_1, dc_1) = at(1);
        let (_, ull_8, dc_8) = at(8);
        let (_, ull_32, dc_32) = at(32);
        // Concurrency buys real throughput on both devices...
        assert!(*ull_8 > ull_1 * 2.0, "{a:?}");
        assert!(*dc_8 > dc_1 * 2.0, "{a:?}");
        // ...but saturates: QD32 is no more than ~2.5x QD8.
        assert!(*ull_32 < ull_8 * 3.0, "{a:?}");
        assert!(*dc_32 < dc_8 * 5.0, "{a:?}");
        // DC's deep NAND latency means it scales further with depth than
        // ULL, whose QD1 latency is already near the interface floor.
        assert!(dc_32 / dc_1 > ull_32 / ull_1, "{a:?}");
    }

    #[test]
    fn group_commit_narrows_but_does_not_close_the_gap() {
        let a = group_commit();
        // Batching helps the block path a lot...
        assert!(a.dc_grouped > a.dc_solo * 4.0, "{a:?}");
        // ...but per-record-durable BA commits still win.
        assert!(a.ba_solo > a.dc_grouped, "{a:?}");
    }

    #[test]
    fn pinned_windows_accelerate_small_reads() {
        let a = pinned_reads();
        // Paper §VI: with preloading, "the read latency can be superb".
        assert!(
            a.pinned_mmio_us * 3.0 < a.block_read_us,
            "pinned MMIO reads should be several times faster: {a:?}"
        );
        // The one-time pin amortizes over a handful of reads.
        assert!(a.pin_cost_us < a.block_read_us * 20.0, "{a:?}");
    }

    #[test]
    fn ba_wal_tails_beat_block_wal_tails() {
        let rows = tail_latency();
        let ba = rows.iter().find(|r| r.scheme.contains("BA-WAL")).unwrap();
        let dc = rows.iter().find(|r| r.scheme.contains("DC-SSD")).unwrap();
        let ull = rows.iter().find(|r| r.scheme.contains("ULL-SSD")).unwrap();
        // Median AND tail both collapse on the byte path.
        assert!(ba.p50_us * 5.0 < ull.p50_us, "{ba:?} vs {ull:?}");
        assert!(ba.p99_us < dc.p99_us, "{ba:?} vs {dc:?}");
        // Only the block schemes amplify log writes at the device.
        assert!((ba.device_waf - 1.0).abs() < f64::EPSILON);
        assert!(dc.device_waf > 5.0);
    }

    #[test]
    fn fs_journaling_gains_from_the_byte_path() {
        let a = fs_journaling();
        let gain = a.ba_ops_per_sec / a.block_ops_per_sec;
        assert!(
            (1.3..6.0).contains(&gain),
            "metadata-op gain {gain:.2} out of expected band: {a:?}"
        );
    }

    #[test]
    fn buffer_size_has_diminishing_returns() {
        let a = buffer_size();
        let first = a.rows.first().unwrap().1;
        let last = a.rows.last().unwrap().1;
        // Bigger windows flush less often but commits already hide flushes;
        // throughput moves by far less than the window grows.
        assert!(
            last < first * 1.5,
            "throughput should not scale with window size: {a:?}"
        );
    }
}
