//! Fig 8 — bandwidth versus request size (4 KiB – 16 MiB) at QD1.

use serde::{Deserialize, Serialize};
use twob_core::{EntryId, TwoBSpec, TwoBSsd};
use twob_ftl::Lba;
use twob_sim::SimTime;
use twob_ssd::{Ssd, SsdConfig};
use twob_workloads::fio;

/// One request size's bandwidths, MB/s. The 2B-SSD columns measure the
/// *internal* datapath — `BA_PIN` for reads, `BA_FLUSH` for writes — since
/// no host transfer is involved (paper §V-B).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig8Row {
    /// Request size in bytes.
    pub size: u64,
    /// ULL-SSD sequential block read.
    pub ull_read_mbs: f64,
    /// DC-SSD sequential block read (read-ahead assisted).
    pub dc_read_mbs: f64,
    /// 2B-SSD internal read (`BA_PIN`).
    pub twob_internal_read_mbs: f64,
    /// ULL-SSD sequential block write.
    pub ull_write_mbs: f64,
    /// DC-SSD sequential block write.
    pub dc_write_mbs: f64,
    /// 2B-SSD internal write (`BA_FLUSH`).
    pub twob_internal_write_mbs: f64,
}

/// Back-to-back requests per measurement.
const REQUESTS: u64 = 4;

/// A spec with a BA-buffer large enough to pin a whole 16 MiB request.
/// Table I's prototype has 8 MB; the paper's Fig 8 sweeps to 16 MB, which
/// requires this enlarged window (documented in EXPERIMENTS.md).
fn large_spec() -> TwoBSpec {
    TwoBSpec {
        ba_buffer_bytes: 32 << 20,
        ..TwoBSpec::default()
    }
}

fn bench_2b_config() -> SsdConfig {
    let mut cfg = SsdConfig::base_2b().bench_scale();
    // Reserved dump area for the enlarged buffer: (8192+1)/256 → 33 blocks.
    cfg.ftl.reserved_blocks = 34;
    cfg
}

/// Sequential block read/write bandwidth of `cfg` for `size`-byte requests.
fn block_bandwidth(cfg: SsdConfig, size: u64) -> (f64, f64) {
    let mut ssd = Ssd::new(cfg.bench_scale());
    let pages = fio::pages_for(size);
    let chunk = vec![0x33u8; (pages as usize) * 4096];
    // Write bandwidth: back-to-back sequential writes.
    let start = SimTime::ZERO;
    let mut t = start;
    for i in 0..REQUESTS {
        t = ssd
            .write(t, Lba(i * u64::from(pages)), &chunk)
            .expect("bw write");
    }
    let write_bytes = REQUESTS * u64::from(pages) * 4096;
    let write_mbs = t.saturating_since(start).bytes_per_sec(write_bytes) / 1e6;
    // Read bandwidth: back-to-back sequential reads of the same extent.
    let start_read = ssd.flush(t);
    let mut t = start_read;
    for i in 0..REQUESTS {
        let read = ssd
            .read(t, Lba(i * u64::from(pages)), pages)
            .expect("bw read");
        t = read.complete_at;
    }
    let read_mbs = t.saturating_since(start_read).bytes_per_sec(write_bytes) / 1e6;
    (read_mbs, write_mbs)
}

/// Internal-datapath bandwidth of the 2B-SSD for `size`-byte requests:
/// `(pin_read, flush_write)` in MB/s.
fn internal_bandwidth(size: u64) -> (f64, f64) {
    let mut dev = TwoBSsd::new(bench_2b_config(), large_spec());
    let pages = fio::pages_for(size);
    let eid = EntryId(0);
    // Populate the extent so BA_PIN reads real data.
    let chunk = vec![0x44u8; (pages as usize) * 4096];
    let mut t = SimTime::ZERO;
    {
        use twob_ssd::BlockDevice as _;
        t = dev.write_pages(t, Lba(0), &chunk).expect("populate");
        t = dev.flush(t);
    }
    // Alternate BA_PIN (internal read) and BA_FLUSH (internal write),
    // timing each phase separately.
    let mut pin_span = 0u64;
    let mut flush_span = 0u64;
    for _ in 0..REQUESTS {
        let pin = dev.ba_pin(t, eid, 0, Lba(0), pages).expect("bw pin");
        pin_span += pin.complete_at.saturating_since(t).as_nanos();
        t = pin.complete_at;
        let flush = dev.ba_flush(t, eid).expect("bw flush");
        flush_span += flush.complete_at.saturating_since(t).as_nanos();
        t = flush.complete_at;
    }
    let bytes = REQUESTS * u64::from(pages) * 4096;
    let read_mbs = bytes as f64 / (pin_span as f64 / 1e9) / 1e6;
    let write_mbs = bytes as f64 / (flush_span as f64 / 1e9) / 1e6;
    (read_mbs, write_mbs)
}

/// Regenerates both panels of Fig 8.
pub fn run() -> Vec<Fig8Row> {
    fio::bandwidth_request_sizes()
        .into_iter()
        .map(|size| {
            let (ull_read, ull_write) = block_bandwidth(SsdConfig::ull_ssd(), size);
            let (dc_read, dc_write) = block_bandwidth(SsdConfig::dc_ssd(), size);
            let (internal_read, internal_write) = internal_bandwidth(size);
            Fig8Row {
                size,
                ull_read_mbs: ull_read,
                dc_read_mbs: dc_read,
                twob_internal_read_mbs: internal_read,
                ull_write_mbs: ull_write,
                dc_write_mbs: dc_write,
                twob_internal_write_mbs: internal_write,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_shape_matches_paper() {
        let rows = run();
        let at = |size: u64| *rows.iter().find(|r| r.size == size).unwrap();
        let largest = at(16 << 20);

        // ULL saturates the PCIe Gen3 x4 interface (~3.2 GB/s) at QD1.
        assert!(
            (2_800.0..3_400.0).contains(&largest.ull_read_mbs),
            "{largest:?}"
        );
        assert!(
            (2_800.0..3_400.0).contains(&largest.ull_write_mbs),
            "{largest:?}"
        );
        // 2B internal peaks ~1 GB/s below ULL (paper: ~2.2 GB/s).
        assert!(
            (1_800.0..2_500.0).contains(&largest.twob_internal_read_mbs),
            "{largest:?}"
        );
        assert!(
            largest.ull_read_mbs - largest.twob_internal_read_mbs > 700.0,
            "{largest:?}"
        );
        // Write: 2B internal ≈ DC + ~700 MB/s.
        let gap = largest.twob_internal_write_mbs - largest.dc_write_mbs;
        assert!(
            (400.0..1_100.0).contains(&gap),
            "write gap {gap}: {largest:?}"
        );
        // Read: DC closes on (and passes) 2B internal at large sizes...
        assert!(largest.dc_read_mbs > largest.twob_internal_read_mbs * 0.9);
        // ...but loses badly at 4 KiB where its per-request latency bites.
        let small = at(4096);
        assert!(
            small.twob_internal_read_mbs > small.dc_read_mbs * 2.0,
            "{small:?}"
        );
        // Bandwidth grows with request size for every series.
        for pair in rows.windows(2) {
            assert!(pair[1].ull_read_mbs >= pair[0].ull_read_mbs * 0.9);
            assert!(pair[1].twob_internal_read_mbs >= pair[0].twob_internal_read_mbs * 0.9);
        }
    }
}
