//! Fig 7 — read/write latency versus request size (8 B – 4 KiB).

use serde::{Deserialize, Serialize};
use twob_core::{EntryId, TwoBSpec, TwoBSsd};
use twob_ftl::Lba;
use twob_sim::{SimDuration, SimTime};
use twob_ssd::{Ssd, SsdConfig};
use twob_workloads::fio;

/// One request size's latencies, microseconds. Block columns mirror the
/// paper's DC-SSD/ULL-SSD series; byte-path columns mirror 2B-SSD's MMIO,
/// persistent MMIO, and read-DMA series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig7Row {
    /// Request size in bytes.
    pub size: u64,
    /// DC-SSD block read.
    pub dc_read_us: f64,
    /// ULL-SSD block read (2B-SSD block reads are identical, §V-A).
    pub ull_read_us: f64,
    /// 2B-SSD MMIO read (8-byte non-posted TLPs).
    pub mmio_read_us: f64,
    /// 2B-SSD read through the read-DMA engine.
    pub dma_read_us: f64,
    /// DC-SSD block write.
    pub dc_write_us: f64,
    /// ULL-SSD block write.
    pub ull_write_us: f64,
    /// 2B-SSD MMIO write (write-combined posted TLPs).
    pub mmio_write_us: f64,
    /// 2B-SSD persistent MMIO write (including `BA_SYNC`).
    pub persistent_mmio_write_us: f64,
}

const ITERS: u64 = 8;
/// Idle gap between probes so device queues fully drain.
const GAP: SimDuration = SimDuration::from_millis(1);

/// Mean block read/write latency of `cfg` at QD1 for `size`-byte requests
/// (rounded up to pages, as block I/O requires). Random offsets defeat the
/// read-ahead heuristic, matching FIO's random profile.
fn block_latencies(cfg: SsdConfig, size: u64) -> (f64, f64) {
    let mut ssd = Ssd::new(cfg.small());
    let pages = fio::pages_for(size);
    let mut t = SimTime::ZERO;
    // Populate a strided set of LBAs (stride breaks sequential detection).
    let lbas: Vec<u64> = (0..ITERS).map(|i| (i * 17) % 200).collect();
    for &lba in &lbas {
        t = ssd
            .write(t, Lba(lba), &vec![0xA5u8; 4096 * pages as usize])
            .expect("populate");
    }
    t = ssd.flush(t);
    let mut write_total = SimDuration::ZERO;
    for &lba in &lbas {
        t += GAP;
        let ack = ssd
            .write(t, Lba(lba), &vec![0x5Au8; 4096 * pages as usize])
            .expect("probe write");
        write_total += ack.saturating_since(t);
        t = ack;
    }
    let mut read_total = SimDuration::ZERO;
    for &lba in &lbas {
        t += GAP;
        let read = ssd.read(t, Lba(lba), pages).expect("probe read");
        read_total += read.complete_at.saturating_since(t);
        t = read.complete_at;
    }
    (
        read_total.as_micros_f64() / ITERS as f64,
        write_total.as_micros_f64() / ITERS as f64,
    )
}

/// Mean byte-path latencies of the 2B-SSD for `size`-byte requests:
/// `(mmio_read, dma_read, mmio_write, persistent_mmio_write)`.
fn byte_latencies(size: u64) -> (f64, f64, f64, f64) {
    let mut dev = TwoBSsd::new(SsdConfig::base_2b().small(), TwoBSpec::small_for_tests());
    let eid = EntryId(0);
    let mut t = SimTime::ZERO;
    let pin = dev.ba_pin(t, eid, 0, Lba(0), 1).expect("pin probe page");
    t = pin.complete_at;
    let mut mmio_read = SimDuration::ZERO;
    let mut dma_read = SimDuration::ZERO;
    let mut mmio_write = SimDuration::ZERO;
    let mut persistent = SimDuration::ZERO;
    let len = size.min(4096);
    let data = vec![0xC3u8; len as usize];
    for _ in 0..ITERS {
        t += GAP;
        let store = dev.mmio_write(t, eid, 0, &data).expect("mmio write");
        mmio_write += store.retired_at.saturating_since(t);
        // Persistent write = fresh store + range sync, measured as one op.
        let t2 = store.retired_at + GAP;
        let store2 = dev.mmio_write(t2, eid, 0, &data).expect("mmio write");
        let sync = dev
            .ba_sync_range(store2.retired_at, eid, 0, len)
            .expect("ba_sync");
        persistent += sync.complete_at.saturating_since(t2);
        let t3 = sync.complete_at + GAP;
        let read = dev.mmio_read(t3, eid, 0, len).expect("mmio read");
        mmio_read += read.complete_at.saturating_since(t3);
        let t4 = read.complete_at + GAP;
        let dma = dev.ba_read_dma(t4, eid, 0, len).expect("dma read");
        dma_read += dma.complete_at.saturating_since(t4);
        t = dma.complete_at;
    }
    let n = ITERS as f64;
    (
        mmio_read.as_micros_f64() / n,
        dma_read.as_micros_f64() / n,
        mmio_write.as_micros_f64() / n,
        persistent.as_micros_f64() / n,
    )
}

/// Regenerates both panels of Fig 7.
pub fn run() -> Vec<Fig7Row> {
    fio::latency_request_sizes()
        .into_iter()
        .map(|size| {
            let (dc_read, dc_write) = block_latencies(SsdConfig::dc_ssd(), size);
            let (ull_read, ull_write) = block_latencies(SsdConfig::ull_ssd(), size);
            let (mmio_read, dma_read, mmio_write, persistent) = byte_latencies(size);
            Fig7Row {
                size,
                dc_read_us: dc_read,
                ull_read_us: ull_read,
                mmio_read_us: mmio_read,
                dma_read_us: dma_read,
                dc_write_us: dc_write,
                ull_write_us: ull_write,
                mmio_write_us: mmio_write,
                persistent_mmio_write_us: persistent,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_shape_matches_paper() {
        let rows = run();
        let at = |size: u64| *rows.iter().find(|r| r.size == size).unwrap();

        // 4 KiB anchors (paper: DC ≈ 83, ULL ≈ 13.2, MMIO ≈ 150, DMA ≈ 58,
        // writes 17 / 10 / ~2 / ~3).
        let r4k = at(4096);
        assert!((70.0..95.0).contains(&r4k.dc_read_us), "{r4k:?}");
        assert!((11.0..16.0).contains(&r4k.ull_read_us), "{r4k:?}");
        assert!((140.0..160.0).contains(&r4k.mmio_read_us), "{r4k:?}");
        assert!((52.0..64.0).contains(&r4k.dma_read_us), "{r4k:?}");
        assert!((15.0..20.0).contains(&r4k.dc_write_us), "{r4k:?}");
        assert!((8.0..12.0).contains(&r4k.ull_write_us), "{r4k:?}");
        assert!((1.7..2.4).contains(&r4k.mmio_write_us), "{r4k:?}");
        assert!(
            r4k.persistent_mmio_write_us > r4k.mmio_write_us
                && r4k.persistent_mmio_write_us < r4k.mmio_write_us * 1.6,
            "{r4k:?}"
        );

        // 8-byte MMIO write ≈ 630 ns; persistent ≈ +15 %.
        let r8 = at(8);
        assert!((0.55..0.75).contains(&r8.mmio_write_us), "{r8:?}");
        let overhead = r8.persistent_mmio_write_us / r8.mmio_write_us;
        assert!((1.05..1.35).contains(&overhead), "{r8:?}");

        // Crossovers: MMIO read beats ULL below ~350 B and loses above;
        // beats DC below ~2 KiB and loses above.
        assert!(at(256).mmio_read_us < at(256).ull_read_us);
        assert!(at(512).mmio_read_us > at(512).ull_read_us);
        assert!(at(1024).mmio_read_us < at(1024).dc_read_us);
        assert!(at(4096).mmio_read_us > at(4096).dc_read_us);

        // Read-DMA beats MMIO from 2 KiB (paper §III-A3) but never beats
        // ULL block reads.
        assert!(at(1024).dma_read_us > at(1024).mmio_read_us);
        assert!(at(2048).dma_read_us < at(2048).mmio_read_us);
        for row in &rows {
            assert!(row.dma_read_us > row.ull_read_us, "{row:?}");
        }

        // Block latencies are flat across sub-page sizes.
        assert!((at(8).ull_read_us - at(2048).ull_read_us).abs() < 1.0);
    }
}
