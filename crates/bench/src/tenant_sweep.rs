//! Tenant sweep: does BA-WAL's commit-latency advantage survive sharing?
//!
//! The paper demonstrates co-location once (§V runs PostgreSQL, RocksDB,
//! and Redis concurrently on the prototype) but never sweeps the tenant
//! count. This study does: 1, 4, 16, and 64 tenants — a pg/rocks/redis mix
//! assigned round-robin — run the same seeded workloads on one shared
//! device under both logging schemes:
//!
//! - **ba** — per-tenant BA-WAL windows, arbitrated by the host
//!   [`twob_core::PinTable`] over the device's BA buffer (each tenant gets
//!   an equal share; 64 tenants × 4-page windows need a 64-entry table, a
//!   deliberate deviation from the 8-entry prototype that DESIGN.md §6
//!   discusses);
//! - **block** — conventional page-write + flush WAL on the *same*
//!   chassis's block path (the paper's base SSD serves block I/O like a
//!   ULL-SSD).
//!
//! Two questions: does BA commit p99 stay under block commit p99 at every
//! tenant count, and where is the interference knee — the count at which
//! p99 departs from the single-tenant baseline by more than
//! [`KNEE_FACTOR`]×?

use serde::{Deserialize, Serialize};
use twob_core::{TwoBSpec, TwoBSsd};
use twob_ssd::SsdConfig;
use twob_workloads::{EngineKind, ServiceDriver, TenantPool, TenantPoolConfig, WalScheme};

/// Tenant counts the sweep visits.
pub const TENANT_COUNTS: [u16; 4] = [1, 4, 16, 64];

/// A tenant count "knees" when its p99 exceeds this multiple of the
/// single-tenant p99 for the same scheme.
pub const KNEE_FACTOR: f64 = 2.0;

/// Seed shared by every cell, so schemes see identical op streams.
pub const SEED: u64 = 61;

/// One `(tenant count, scheme)` cell of the sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Tenant count.
    pub tenants: u16,
    /// Scheme label (`"ba"` or `"block"`).
    pub scheme: String,
    /// Commits that reached a durability point, across all tenants.
    pub commits: u64,
    /// Group-commit batches issued.
    pub batches: u64,
    /// Percentage of commits that shared a batch.
    pub grouped_pct: f64,
    /// Median commit latency, µs.
    pub p50_us: f64,
    /// 99th-percentile commit latency, µs.
    pub p99_us: f64,
    /// Worst single tenant's p99, µs.
    pub worst_tenant_p99_us: f64,
    /// Aggregate commit throughput.
    pub commits_per_sec: f64,
}

/// The device every cell runs on: bench-scale NAND behind a 1 MiB BA
/// buffer whose mapping table is virtualized to 64 entries so each of up
/// to 64 tenants can hold a window (DESIGN.md §6).
fn device() -> TwoBSsd {
    let spec = TwoBSpec {
        ba_buffer_bytes: 1 << 20,
        max_entries: 64,
        ..TwoBSpec::default()
    };
    TwoBSsd::new(SsdConfig::base_2b().bench_scale(), spec)
}

/// The per-cell pool configuration: the pg/rocks/redis round-robin mix at
/// 200 ops per tenant.
fn pool_config(tenants: u16, scheme: WalScheme) -> TenantPoolConfig {
    TenantPoolConfig {
        ops_per_tenant: 200,
        ..TenantPoolConfig::standard(
            tenants,
            vec![EngineKind::Pg, EngineKind::Rocks, EngineKind::Redis],
            scheme,
            SEED,
        )
    }
}

/// Runs one cell of the sweep on a fresh device.
///
/// # Panics
///
/// Panics if the cell's configuration is rejected or an engine fails —
/// the sweep's presets are all valid.
pub fn cell(tenants: u16, scheme: WalScheme) -> Row {
    let mut pool =
        TenantPool::new(device(), pool_config(tenants, scheme)).expect("valid sweep cell");
    let report = ServiceDriver::run_sessions(&mut pool).expect("sweep cell runs");
    Row {
        tenants: report.tenants,
        scheme: report.scheme,
        commits: report.commits,
        batches: report.batches,
        grouped_pct: report.grouped_pct,
        p50_us: report.p50_us,
        p99_us: report.p99_us,
        worst_tenant_p99_us: report.worst_tenant_p99_us,
        commits_per_sec: report.commits_per_sec,
    }
}

/// Runs the full sweep: both schemes at every tenant count.
pub fn run() -> Vec<Row> {
    let mut rows = Vec::new();
    for &n in &TENANT_COUNTS {
        for scheme in [WalScheme::Ba, WalScheme::Block] {
            rows.push(cell(n, scheme));
        }
    }
    rows
}

/// The interference knee for `scheme`: the smallest tenant count whose p99
/// exceeds [`KNEE_FACTOR`] × the single-tenant p99, if any.
pub fn knee(rows: &[Row], scheme: WalScheme) -> Option<u16> {
    let base = rows
        .iter()
        .find(|r| r.scheme == scheme.label() && r.tenants == 1)?
        .p99_us;
    rows.iter()
        .filter(|r| r.scheme == scheme.label() && r.p99_us > KNEE_FACTOR * base)
        .map(|r| r.tenants)
        .min()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_cell_is_deterministic() {
        assert_eq!(cell(4, WalScheme::Ba), cell(4, WalScheme::Ba));
    }

    #[test]
    fn sweep_shape_holds() {
        let rows = run();
        assert_eq!(rows.len(), TENANT_COUNTS.len() * 2);
        for &n in &TENANT_COUNTS {
            let ba = rows
                .iter()
                .find(|r| r.tenants == n && r.scheme == "ba")
                .unwrap();
            let block = rows
                .iter()
                .find(|r| r.tenants == n && r.scheme == "block")
                .unwrap();
            // The headline: BA-WAL's tail advantage survives sharing at
            // every tenant count.
            assert!(
                ba.p99_us < block.p99_us,
                "{n} tenants: ba p99 {} >= block p99 {}",
                ba.p99_us,
                block.p99_us
            );
            assert!(ba.p50_us < block.p50_us, "{n} tenants: p50");
            assert!(ba.commits > 0 && block.commits > 0);
        }
        // Contention grows the BA tail monotonically across the sweep.
        let ba_p99: Vec<f64> = TENANT_COUNTS
            .iter()
            .map(|&n| {
                rows.iter()
                    .find(|r| r.tenants == n && r.scheme == "ba")
                    .unwrap()
                    .p99_us
            })
            .collect();
        assert!(
            ba_p99.windows(2).all(|w| w[0] <= w[1]),
            "ba p99 not monotone: {ba_p99:?}"
        );
        // And the knee exists within the sweep for the byte path.
        assert!(knee(&rows, WalScheme::Ba).is_some(), "no ba knee: {rows:?}");
    }
}
