//! Tenant sweep: does BA-WAL's commit-latency advantage survive sharing?
//!
//! The paper demonstrates co-location once (§V runs PostgreSQL, RocksDB,
//! and Redis concurrently on the prototype) but never sweeps the tenant
//! count. This study does: 1, 4, 16, and 64 tenants — a pg/rocks/redis mix
//! assigned round-robin — run the same seeded workloads on one shared
//! device under both logging schemes:
//!
//! - **ba** — per-tenant BA-WAL windows, arbitrated by the host
//!   [`twob_core::PinTable`] over the device's BA buffer (each tenant gets
//!   an equal share; 64 tenants × 4-page windows need a 64-entry table, a
//!   deliberate deviation from the 8-entry prototype that DESIGN.md §6
//!   discusses);
//! - **block** — conventional page-write + flush WAL on the *same*
//!   chassis's block path (the paper's base SSD serves block I/O like a
//!   ULL-SSD).
//!
//! Two questions: does BA commit p99 stay under block commit p99 at every
//! tenant count, and where is the interference knee — the count at which
//! p99 departs from the single-tenant baseline by more than
//! [`KNEE_FACTOR`]×?
//!
//! A final section routes the tenant fleet through the
//! `ShardedIoCalendar` placement path (the one the tier sweep uses):
//! every scheme's commit traffic across [`SHARDED_GROUPS`] die groups,
//! under every shard drive and two group→shard placements, pinned to one
//! completion digest per scheme.

use serde::{Deserialize, Serialize};
use twob_core::{TwoBSpec, TwoBSsd};
use twob_ssd::SsdConfig;
use twob_workloads::{
    ArrivalConfig, ArrivalKind, EngineKind, ServeConfig, ServiceDriver, ShardDrive, TenantPool,
    TenantPoolConfig, WalScheme,
};

/// Tenant counts the sweep visits.
pub const TENANT_COUNTS: [u16; 4] = [1, 4, 16, 64];

/// Fleet size of the sharded-placement section.
pub const SHARDED_TENANTS: u16 = 64;

/// Die groups the sharded fleet is placed across.
pub const SHARDED_GROUPS: usize = 4;

/// Per-tenant offered rate of the sharded section, commits per second.
pub const SHARDED_RATE: u64 = 20_000;

/// A tenant count "knees" when its p99 exceeds this multiple of the
/// single-tenant p99 for the same scheme.
pub const KNEE_FACTOR: f64 = 2.0;

/// Seed shared by every cell, so schemes see identical op streams.
pub const SEED: u64 = 61;

/// One `(tenant count, scheme)` cell of the sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Tenant count.
    pub tenants: u16,
    /// Scheme label (`"ba"` or `"block"`).
    pub scheme: String,
    /// Commits that reached a durability point, across all tenants.
    pub commits: u64,
    /// Group-commit batches issued.
    pub batches: u64,
    /// Percentage of commits that shared a batch.
    pub grouped_pct: f64,
    /// Median commit latency, µs.
    pub p50_us: f64,
    /// 99th-percentile commit latency, µs.
    pub p99_us: f64,
    /// Worst single tenant's p99, µs.
    pub worst_tenant_p99_us: f64,
    /// Aggregate commit throughput.
    pub commits_per_sec: f64,
}

/// The device every cell runs on: bench-scale NAND behind a 1 MiB BA
/// buffer whose mapping table is virtualized to 64 entries so each of up
/// to 64 tenants can hold a window (DESIGN.md §6).
fn device() -> TwoBSsd {
    let spec = TwoBSpec {
        ba_buffer_bytes: 1 << 20,
        max_entries: 64,
        ..TwoBSpec::default()
    };
    TwoBSsd::new(SsdConfig::base_2b().bench_scale(), spec)
}

/// The per-cell pool configuration: the pg/rocks/redis round-robin mix at
/// 200 ops per tenant.
fn pool_config(tenants: u16, scheme: WalScheme) -> TenantPoolConfig {
    TenantPoolConfig {
        ops_per_tenant: 200,
        ..TenantPoolConfig::standard(
            tenants,
            vec![EngineKind::Pg, EngineKind::Rocks, EngineKind::Redis],
            scheme,
            SEED,
        )
    }
}

/// Runs one cell of the sweep on a fresh device.
///
/// # Panics
///
/// Panics if the cell's configuration is rejected or an engine fails —
/// the sweep's presets are all valid.
pub fn cell(tenants: u16, scheme: WalScheme) -> Row {
    let mut pool =
        TenantPool::new(device(), pool_config(tenants, scheme)).expect("valid sweep cell");
    let report = ServiceDriver::run_sessions(&mut pool).expect("sweep cell runs");
    Row {
        tenants: report.tenants,
        scheme: report.scheme,
        commits: report.commits,
        batches: report.batches,
        grouped_pct: report.grouped_pct,
        p50_us: report.p50_us,
        p99_us: report.p99_us,
        worst_tenant_p99_us: report.worst_tenant_p99_us,
        commits_per_sec: report.commits_per_sec,
    }
}

/// Runs the full sweep: both schemes at every tenant count.
pub fn run() -> Vec<Row> {
    let mut rows = Vec::new();
    for &n in &TENANT_COUNTS {
        for scheme in [WalScheme::Ba, WalScheme::Block] {
            rows.push(cell(n, scheme));
        }
    }
    rows
}

/// One scheme's pass through the sharded placement path: the tenant
/// fleet's commit traffic placed across [`SHARDED_GROUPS`] die groups on
/// the `ShardedIoCalendar`, under every drive and two group→shard
/// placements — the same path the tier sweep runs, so tiering rows and
/// tenant rows agree on what placement means.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardedRow {
    /// Scheme label.
    pub scheme: String,
    /// Fleet size.
    pub tenants: u16,
    /// Die groups.
    pub groups: usize,
    /// Shard counts swept.
    pub shards: Vec<usize>,
    /// Drive labels that agreed.
    pub drives: Vec<String>,
    /// The one completion digest, hex.
    pub digest: String,
    /// Commits completed (identical everywhere).
    pub completed: u64,
}

/// Routes one scheme's tenant fleet through every sharded drive and two
/// placements, demanding a single digest.
///
/// # Panics
///
/// Panics if any drive or placement diverges from the lock-step
/// baseline — a determinism bug, not a measurement.
pub fn sharded_row(scheme: WalScheme, tenants: u16, groups: usize) -> ShardedRow {
    let cfg = ServeConfig::standard(
        tenants,
        scheme,
        ArrivalConfig::new(ArrivalKind::Poisson, SHARDED_RATE as f64, SEED),
    );
    let drives = [
        ShardDrive::Lockstep,
        ShardDrive::Adaptive,
        ShardDrive::Parallel(2),
        ShardDrive::Parallel(4),
    ];
    let shards = vec![groups, (groups / 2).max(1)];
    let mut baseline: Option<(u64, u64)> = None;
    let mut labels = Vec::new();
    for drive in drives {
        for &shard_count in &shards {
            let report = ServiceDriver::serve_sharded_placed(&cfg, groups, shard_count, drive);
            assert_eq!(
                report.clamped_posts,
                0,
                "{} {} drive on {shard_count} shards clamped",
                scheme.label(),
                drive.label()
            );
            let got = (report.digest, report.completed);
            if let Some(base) = baseline {
                assert_eq!(
                    got,
                    base,
                    "{} {} drive on {shard_count} shards diverged",
                    scheme.label(),
                    drive.label()
                );
            } else {
                baseline = Some(got);
            }
        }
        labels.push(drive.label());
    }
    let (digest, completed) = baseline.expect("at least one drive ran");
    ShardedRow {
        scheme: scheme.label().to_string(),
        tenants,
        groups,
        shards,
        drives: labels,
        digest: format!("{digest:016x}"),
        completed,
    }
}

/// The sharded-placement section: every scheme through the shared path.
pub fn sharded(tenants: u16, groups: usize) -> Vec<ShardedRow> {
    [WalScheme::Ba, WalScheme::Cxl, WalScheme::Block]
        .into_iter()
        .map(|scheme| sharded_row(scheme, tenants, groups))
        .collect()
}

/// The interference knee for `scheme`: the smallest tenant count whose p99
/// exceeds [`KNEE_FACTOR`] × the single-tenant p99, if any.
pub fn knee(rows: &[Row], scheme: WalScheme) -> Option<u16> {
    let base = rows
        .iter()
        .find(|r| r.scheme == scheme.label() && r.tenants == 1)?
        .p99_us;
    rows.iter()
        .filter(|r| r.scheme == scheme.label() && r.p99_us > KNEE_FACTOR * base)
        .map(|r| r.tenants)
        .min()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_cell_is_deterministic() {
        assert_eq!(cell(4, WalScheme::Ba), cell(4, WalScheme::Ba));
    }

    #[test]
    fn sharded_placements_agree_for_every_scheme() {
        // Fleet scale runs in the binary; the test pins the invariant at a
        // size debug builds can afford.
        for row in sharded(16, SHARDED_GROUPS) {
            assert_eq!(row.drives.len(), 4, "{}: drives", row.scheme);
            assert_eq!(row.shards, vec![4, 2], "{}: shards", row.scheme);
            assert!(row.completed > 0, "{}: no commits", row.scheme);
        }
    }

    #[test]
    fn sweep_shape_holds() {
        let rows = run();
        assert_eq!(rows.len(), TENANT_COUNTS.len() * 2);
        for &n in &TENANT_COUNTS {
            let ba = rows
                .iter()
                .find(|r| r.tenants == n && r.scheme == "ba")
                .unwrap();
            let block = rows
                .iter()
                .find(|r| r.tenants == n && r.scheme == "block")
                .unwrap();
            // The headline: BA-WAL's tail advantage survives sharing at
            // every tenant count.
            assert!(
                ba.p99_us < block.p99_us,
                "{n} tenants: ba p99 {} >= block p99 {}",
                ba.p99_us,
                block.p99_us
            );
            assert!(ba.p50_us < block.p50_us, "{n} tenants: p50");
            assert!(ba.commits > 0 && block.commits > 0);
        }
        // Contention grows the BA tail monotonically across the sweep.
        let ba_p99: Vec<f64> = TENANT_COUNTS
            .iter()
            .map(|&n| {
                rows.iter()
                    .find(|r| r.tenants == n && r.scheme == "ba")
                    .unwrap()
                    .p99_us
            })
            .collect();
        assert!(
            ba_p99.windows(2).all(|w| w[0] <= w[1]),
            "ba p99 not monotone: {ba_p99:?}"
        );
        // And the knee exists within the sweep for the byte path.
        assert!(knee(&rows, WalScheme::Ba).is_some(), "no ba knee: {rows:?}");
    }
}
