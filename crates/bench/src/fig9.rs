//! Fig 9 — application-level throughput on three database engines.

use serde::{Deserialize, Serialize};
use twob_core::TwoBSsd;
use twob_db::{EngineCosts, MiniPg, MiniRedis, MiniRocks};
use twob_sim::{SimRng, SimTime};
use twob_ssd::{Ssd, SsdConfig};
use twob_wal::{BaWal, BlockWal, CommitMode, WalConfig, WalWriter};
use twob_workloads::{
    ClientPool, LinkbenchConfig, LinkbenchWorkload, YcsbConfig, YcsbOp, YcsbWorkload,
};

/// Which log device/scheme backs the engine's WAL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LogKind {
    /// Conventional WAL, synchronous commit, on the DC-SSD.
    Dc,
    /// Conventional WAL, synchronous commit, on the ULL-SSD.
    Ull,
    /// BA-WAL on the 2B-SSD.
    TwoB,
    /// Asynchronous commit (theoretical maximum; risk of data loss).
    Async,
}

impl LogKind {
    /// All four configurations of Fig 9, in the paper's order.
    pub fn all() -> [LogKind; 4] {
        [LogKind::Dc, LogKind::Ull, LogKind::TwoB, LogKind::Async]
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            LogKind::Dc => "DC-SSD",
            LogKind::Ull => "ULL-SSD",
            LogKind::TwoB => "2B-SSD",
            LogKind::Async => "ASYNC",
        }
    }
}

/// How a BA-WAL should be buffered for an engine (paper §IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaLayout {
    /// Two halves of the BA-buffer (PostgreSQL: segment = buffer/2).
    Halves,
    /// Two quarters (RocksDB: log file = buffer/4, half the buffer is
    /// reserved for the second memtable's log).
    Quarters,
    /// One window spanning the whole buffer (Redis: no double buffering).
    SingleWhole,
}

/// Builds the WAL for one `(kind, layout)` cell of Fig 9.
///
/// The 2B device gets a 2 MiB BA-buffer (a scaled-down 8 MB of Table I, in
/// proportion to the bench-scale device) so segment halves hold thousands
/// of records and double buffering can hide flushes, as on the prototype.
///
/// # Panics
///
/// Panics on invalid configuration — the presets here are all valid.
pub fn make_wal(kind: LogKind, layout: BaLayout) -> Box<dyn WalWriter> {
    let cfg = WalConfig {
        region_pages: 2048,
        ..WalConfig::default()
    };
    match kind {
        LogKind::Dc => Box::new(
            BlockWal::new(
                Ssd::new(SsdConfig::dc_ssd().bench_scale()),
                cfg,
                CommitMode::Sync,
            )
            .expect("dc wal"),
        ),
        LogKind::Ull => Box::new(
            BlockWal::new(
                Ssd::new(SsdConfig::ull_ssd().bench_scale()),
                cfg,
                CommitMode::Sync,
            )
            .expect("ull wal"),
        ),
        LogKind::Async => Box::new(
            BlockWal::new(
                Ssd::new(SsdConfig::ull_ssd().bench_scale()),
                cfg,
                CommitMode::Async,
            )
            .expect("async wal"),
        ),
        LogKind::TwoB => {
            // A bench-scale base device so the log region never starves
            // the FTL of free blocks (the prototype is 800 GB; GC on a
            // tiny test device would distort application results).
            let spec = twob_core::TwoBSpec {
                ba_buffer_bytes: 2 << 20,
                ..twob_core::TwoBSpec::default()
            };
            let dev = TwoBSsd::new(SsdConfig::base_2b().bench_scale(), spec);
            let buffer_pages = (dev.spec().ba_buffer_bytes / 4096) as u32;
            match layout {
                BaLayout::Halves => {
                    Box::new(BaWal::new(dev, cfg, buffer_pages / 2).expect("ba wal"))
                }
                BaLayout::Quarters => {
                    Box::new(BaWal::new(dev, cfg, buffer_pages / 4).expect("ba wal"))
                }
                BaLayout::SingleWhole => {
                    Box::new(BaWal::new_single(dev, cfg, buffer_pages).expect("ba wal"))
                }
            }
        }
    }
}

/// Throughput (txns/s) of the PostgreSQL-style engine running the
/// Linkbench-like mix.
pub fn pg_linkbench(kind: LogKind, txns: u64, clients: usize, seed: u64) -> f64 {
    let mut pg = MiniPg::new(make_wal(kind, BaLayout::Halves), EngineCosts::postgres());
    let mut rng = SimRng::seed_from(seed);
    let mut wl = LinkbenchWorkload::new(LinkbenchConfig::standard(500));
    let mut t = SimTime::ZERO;
    for txn in wl.load_phase(&mut rng, 2) {
        t = pg.run_txn(t, &txn).expect("load").commit_at;
    }
    let start = t;
    let mut pool = ClientPool::starting_at(clients, start);
    for _ in 0..txns {
        let (client, at) = pool.next_client();
        let txn = wl.next_txn(&mut rng);
        let out = pg.run_txn(at, &txn).expect("txn");
        pool.complete(client, out.commit_at);
    }
    txns as f64 / pool.makespan().saturating_since(start).as_secs_f64()
}

/// Throughput (ops/s) of the RocksDB-style engine under YCSB-A with the
/// given payload size.
pub fn rocks_ycsb(kind: LogKind, payload: usize, ops: u64, clients: usize, seed: u64) -> f64 {
    let mut db = MiniRocks::new(make_wal(kind, BaLayout::Quarters), EngineCosts::rocksdb());
    let mut rng = SimRng::seed_from(seed);
    let mut wl = YcsbWorkload::new(YcsbConfig::workload_a(500, payload));
    let mut t = SimTime::ZERO;
    for (key, value) in wl.load_phase(&mut rng) {
        t = db.put(t, key, value).expect("load").commit_at;
    }
    let start = t;
    let mut pool = ClientPool::starting_at(clients, start);
    for _ in 0..ops {
        let (client, at) = pool.next_client();
        let done = match wl.next_op(&mut rng) {
            YcsbOp::Read { key } => db.get(at, &key).0,
            YcsbOp::Update { key, value } => db.put(at, key, value).expect("put").commit_at,
        };
        pool.complete(client, done);
    }
    ops as f64 / pool.makespan().saturating_since(start).as_secs_f64()
}

/// Throughput (ops/s) of the Redis-style engine under YCSB-A. Redis is
/// single-threaded, so there is exactly one client.
pub fn redis_ycsb(kind: LogKind, payload: usize, ops: u64, seed: u64) -> f64 {
    let mut db = MiniRedis::new(make_wal(kind, BaLayout::SingleWhole), EngineCosts::redis());
    let mut rng = SimRng::seed_from(seed);
    let mut wl = YcsbWorkload::new(YcsbConfig::workload_a(500, payload));
    let mut t = SimTime::ZERO;
    for (key, value) in wl.load_phase(&mut rng) {
        t = db.set(t, key, value).expect("load").commit_at;
    }
    let start = t;
    for _ in 0..ops {
        t = match wl.next_op(&mut rng) {
            YcsbOp::Read { key } => db.get(t, &key).0,
            YcsbOp::Update { key, value } => db.set(t, key, value).expect("set").commit_at,
        };
    }
    ops as f64 / t.saturating_since(start).as_secs_f64()
}

/// Throughput of the four log configurations for one engine/payload cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngineSeries {
    /// DC-SSD, synchronous commit.
    pub dc: f64,
    /// ULL-SSD, synchronous commit.
    pub ull: f64,
    /// 2B-SSD, BA commit.
    pub twob: f64,
    /// Asynchronous commit.
    pub async_max: f64,
}

impl EngineSeries {
    /// Speed-up of 2B-SSD over DC-SSD (paper headline: 1.2–2.8×).
    pub fn gain_vs_dc(&self) -> f64 {
        self.twob / self.dc
    }

    /// Speed-up of 2B-SSD over ULL-SSD (paper: 1.15–2.3×).
    pub fn gain_vs_ull(&self) -> f64 {
        self.twob / self.ull
    }

    /// Fraction of the asynchronous-commit maximum 2B-SSD reaches
    /// (paper: 75–95 %).
    pub fn fraction_of_async(&self) -> f64 {
        self.twob / self.async_max
    }
}

/// The whole figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig9Report {
    /// PostgreSQL + Linkbench (one cell).
    pub pg: EngineSeries,
    /// RocksDB + YCSB-A per payload size.
    pub rocks: Vec<(usize, EngineSeries)>,
    /// Redis + YCSB-A per payload size.
    pub redis: Vec<(usize, EngineSeries)>,
}

/// The payload sizes the paper sweeps for the key-value engines.
pub fn payload_sizes() -> Vec<usize> {
    vec![64, 256, 1024, 4096]
}

fn series(mut f: impl FnMut(LogKind) -> f64) -> EngineSeries {
    EngineSeries {
        dc: f(LogKind::Dc),
        ull: f(LogKind::Ull),
        twob: f(LogKind::TwoB),
        async_max: f(LogKind::Async),
    }
}

/// Regenerates Fig 9. `quick` runs a reduced op count for tests.
pub fn run(quick: bool) -> Fig9Report {
    let (pg_txns, kv_ops, redis_ops) = if quick {
        (4_000, 4_000, 2_500)
    } else {
        (20_000, 20_000, 10_000)
    };
    let clients = 8;
    let pg = series(|kind| pg_linkbench(kind, pg_txns, clients, 42));
    let rocks = payload_sizes()
        .into_iter()
        .map(|p| (p, series(|kind| rocks_ycsb(kind, p, kv_ops, clients, 43))))
        .collect();
    let redis = payload_sizes()
        .into_iter()
        .map(|p| (p, series(|kind| redis_ycsb(kind, p, redis_ops, 44))))
        .collect();
    Fig9Report { pg, rocks, redis }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_shape_matches_paper() {
        let report = run(true);

        // PostgreSQL: 2B > ULL > DC, with gains inside the paper's bands.
        let pg = report.pg;
        assert!(pg.twob > pg.ull && pg.ull > pg.dc, "{pg:?}");
        assert!((1.2..=3.0).contains(&pg.gain_vs_dc()), "{pg:?}");
        assert!((1.1..=2.4).contains(&pg.gain_vs_ull()), "{pg:?}");
        assert!(pg.fraction_of_async() <= 1.0, "{pg:?}");
        assert!(pg.fraction_of_async() > 0.75, "{pg:?}");

        // RocksDB: gains shrink as the payload grows (paper §V-C).
        let first = report.rocks.first().unwrap().1;
        let last = report.rocks.last().unwrap().1;
        assert!(
            first.gain_vs_dc() > last.gain_vs_dc(),
            "64 B gain {} should exceed 4 KiB gain {}",
            first.gain_vs_dc(),
            last.gain_vs_dc()
        );
        for (payload, s) in &report.rocks {
            assert!(
                (1.2..=3.2).contains(&s.gain_vs_dc()),
                "rocks payload {payload}: {s:?}"
            );
            assert!(s.twob > s.ull, "rocks payload {payload}: {s:?}");
        }
        // ULL's best showing over DC is RocksDB (paper: up to 1.5×), and it
        // stays below the 2B gain.
        let ull_gain = first.ull / first.dc;
        assert!((1.1..=1.7).contains(&ull_gain), "{first:?}");

        // Redis: DC and ULL are nearly identical (single-threaded event
        // loop dominates), yet 2B still wins.
        for (payload, s) in &report.redis {
            let ull_vs_dc = s.ull / s.dc;
            assert!(
                (0.95..=1.25).contains(&ull_vs_dc),
                "redis payload {payload} ull/dc {ull_vs_dc}: {s:?}"
            );
            assert!(s.twob > s.ull, "redis payload {payload}: {s:?}");
            assert!(
                s.fraction_of_async() > 0.75,
                "redis payload {payload}: {s:?}"
            );
        }
        // Redis gain also shrinks with payload.
        let redis_first = report.redis.first().unwrap().1;
        let redis_last = report.redis.last().unwrap().1;
        assert!(redis_first.gain_vs_dc() >= redis_last.gain_vs_dc() * 0.98);
    }
}
