//! Kernel throughput bench: how fast does the event kernel itself go?
//!
//! Every other module in this crate measures the *model* (NAND timings,
//! WAL policies, replication quorums); this one measures the *engine*
//! underneath them. Four synthetic event mixes — shaped like the traffic
//! the `qd_sweep`, `gc_interference`, `tenant_sweep`, and `repl_sweep`
//! studies actually generate — are driven twice through the simulation
//! kernel:
//!
//! - **rebuilt** — the wheel-calendar [`twob_sim::WheelQueue`] plus the
//!   closed-form [`twob_sim::Server::schedule`];
//! - **legacy** — the binary-heap [`twob_sim::HeapQueue`] oracle plus the
//!   per-call event-chain [`twob_sim::Server::schedule_via_events`], the
//!   kernel as it stood before the rebuild.
//!
//! Both runs of a mix must produce the *same* firing-sequence digest — the
//! kernels are interchangeable by construction, so the only thing allowed
//! to differ is wall-clock time. Two further mixes drive the sharded
//! conservative-PDES executor: a multi-stream replication fan-out
//! (`repl-sharded`) and a die-placed device workload (`device-sharded`)
//! with tenant bursts migrating across die groups and shard-local GC step
//! chains. Each sharded mix runs five ways — the fine-grained lock-step
//! baseline (`sharded-seq`), the adaptive round-batched engine
//! (`sharded-seq-adaptive`), and the parallel thread sweep
//! (`sharded-par2`/`par4`/`par8`) — and every way must produce the same
//! digest with zero clamped posts.
//!
//! The `sim_throughput` binary prints the deterministic rows on its
//! `json:` line (mix, events, digest, final virtual instant — byte-stable
//! across runs and machines) and writes wall-clock rates to
//! `BENCH_sim_throughput.json`, which is tracked and regression-checked in
//! CI via speedup *ratios* (machine-independent) rather than absolute
//! event rates.

use serde::{Deserialize, Serialize};
use twob_repl::{ClusterConfig, ShardedReplCluster};
use twob_sim::{
    fnv1a64, fnv1a64_update, Calendar, Executor, HeapQueue, Server, ShardCtx, ShardedExecutor,
    SimDuration, SimRng, SimTime, WheelQueue,
};

/// Independent pipelined commit streams in the repl-shaped mix — a fleet
/// of replicated tenants sharing one primary, which is what keeps a
/// realistic number of events pending on the calendar at once.
pub const REPL_STREAMS: u16 = 128;
/// Commits per stream in the repl-shaped mix (7 events each).
pub const REPL_COMMITS: u64 = 250;
/// Commits released by the `repl-sharded` mix, which drives the *real*
/// `twob-repl` [`ShardedReplCluster`] — one node per shard, each with its
/// own simulated 2B-SSD and BA-WAL — rather than a synthetic handler, so
/// every event carries genuine device-model work.
pub const CLUSTER_COMMITS: u64 = 4_000;
/// Concurrent client streams in the `repl-sharded` mix: enough in-flight
/// commits that every node has work in every lookahead window, the regime
/// where parallel shard drives can hide device-model cost behind each
/// other on multi-core hosts.
pub const CLUSTER_STREAMS: u64 = 96;
/// Die-group shards in the `device-sharded` mix. One resident tenant
/// means the lock-step baseline scans all of them every round to find the
/// single active one — the per-round tax that adaptive batching avoids.
pub const DEVICE_SHARDS: usize = 16;
/// Tenant-burst waves in the `device-sharded` mix. Each wave is a burst of
/// die-group operations resident on one shard, trailing GC step chains,
/// before the tenant migrates to the next die group's shard.
pub const DEVICE_WAVES: u64 = 6_400;
/// Operations per tenant burst in the `device-sharded` mix. Op gaps are
/// wider than the lookahead, so the lock-step baseline pays one
/// synchronisation round per op while the adaptive engine drains whole
/// bursts in a round.
pub const DEVICE_BURST: u64 = 24;
/// Timing repetitions per `(mix, kernel)` cell; the minimum wall time is
/// reported, the standard defense against scheduler noise on short runs.
pub const REPS: u32 = 5;
/// Operations driven through the qd-shaped closed loop.
pub const QD_OPS: u64 = 200_000;
/// Foreground writes driven through the gc-shaped mix.
pub const GC_WRITES: u64 = 120_000;
/// Deadline epochs driven through the tenant-shaped mix.
pub const TENANT_EPOCHS: u64 = 3_000;
/// Tenants ticking in lockstep in the tenant-shaped mix.
pub const TENANTS: u32 = 64;
/// Queue depth of the qd-shaped closed loop.
pub const QD: usize = 16;

/// The event mixes the bench visits, in report order.
pub const MIXES: [Mix; 4] = [Mix::Qd, Mix::Gc, Mix::Tenant, Mix::Repl];

/// One synthetic event-mix shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mix {
    /// QD16 closed loop over an 8-server bank, completion-driven refill.
    Qd,
    /// Foreground write chain with background GC step chains stealing dies.
    Gc,
    /// 64 tenants posting deadline ticks at the same epoch instants.
    Tenant,
    /// Primary/3-replica quorum fan-out with acks and think time.
    Repl,
}

impl Mix {
    /// Stable lowercase label used in reports and JSON.
    pub fn label(self) -> &'static str {
        match self {
            Mix::Qd => "qd",
            Mix::Gc => "gc",
            Mix::Tenant => "tenant",
            Mix::Repl => "repl",
        }
    }
}

/// Events shared by all four mixes. The digest folds in the discriminant,
/// so two mixes can never alias each other's sequences.
#[derive(Debug, Clone)]
enum Ev {
    /// qd: completion of operation `op` (its refill issues `op + QD`).
    Complete { op: u64 },
    /// gc: foreground write `i` finished; chain the next one.
    Fg { i: u64 },
    /// gc: one background GC step on `die`, `steps` more to go.
    GcStep { die: u8, steps: u8 },
    /// tenant: tenant's deadline tick at an epoch boundary.
    Tick { tenant: u32 },
    /// repl: stream `s`'s client issues its next commit.
    Issue { s: u16 },
    /// repl: stream `s`'s log batch arrives at replica `r`.
    Deliver { s: u16, r: u8 },
    /// repl: replica `r`'s ack for stream `s` arrives back at the primary.
    Ack { s: u16, r: u8 },
}

/// Everything deterministic about one mix run: both kernels must agree on
/// every field, and two runs of the same binary must agree byte-for-byte.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetRow {
    /// Mix label.
    pub mix: String,
    /// Events fired.
    pub events: u64,
    /// Order-sensitive digest of the `(time, event)` firing sequence, hex.
    pub digest: String,
    /// Final virtual instant, ns.
    pub final_now_ns: u64,
}

/// One wall-clock measurement (not deterministic; lives only in the BENCH
/// file, never on the `json:` line).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfRow {
    /// Mix label.
    pub mix: String,
    /// `"rebuilt"`, `"legacy"`, or for the sharded mixes `"sharded-seq"`
    /// (lock-step), `"sharded-seq-adaptive"`, `"sharded-par2"`,
    /// `"sharded-par4"`, or `"sharded-par8"`.
    pub kernel: String,
    /// Events fired.
    pub events: u64,
    /// Wall-clock duration of the run, ms.
    pub wall_ms: f64,
    /// Events per wall-clock second.
    pub events_per_sec: f64,
    /// Simulated seconds per wall-clock second.
    pub sim_secs_per_sec: f64,
}

/// An events/sec ratio for one mix — the numbers CI gates on, because
/// ratios transfer across machines where absolute rates don't. Flat mixes
/// record rebuilt÷legacy; sharded mixes record parallel÷lock-step under
/// the plain mix label and adaptive-sequential÷lock-step under
/// `<mix>-adaptive`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Speedup {
    /// Mix label.
    pub mix: String,
    /// Faster-kernel events/sec ÷ baseline-kernel events/sec.
    pub ratio: f64,
}

/// The full bench outcome.
#[derive(Debug, Clone)]
pub struct Report {
    /// Deterministic rows, one per mix (sharded mixes included).
    pub det: Vec<DetRow>,
    /// Wall-clock rows: two kernels per flat mix, five drives per sharded
    /// mix.
    pub perf: Vec<PerfRow>,
    /// Per-mix speedups: rebuilt over legacy for the flat mixes; parallel
    /// (`<mix>`) and adaptive-sequential (`<mix>-adaptive`) over the
    /// lock-step baseline for the sharded mixes.
    pub speedups: Vec<Speedup>,
}

/// Raw outcome of driving one mix through one kernel.
struct Outcome {
    events: u64,
    digest: u64,
    final_now: SimTime,
    /// Synchronisation rounds (sharded drives only; 0 for flat kernels).
    rounds: u64,
}

/// Folds one fired event into the running sequence digest: a word-wide
/// multiply-rotate mix, order-sensitive so any reordering of the firing
/// sequence changes the result, and cheap enough (a few cycles) that the
/// digest does not drown the kernel cost it is there to pin.
fn fold(digest: u64, t: SimTime, ev: &Ev) -> u64 {
    let (tag, a, b): (u64, u64, u64) = match *ev {
        Ev::Complete { op } => (0, op, 0),
        Ev::Fg { i } => (1, i, 0),
        Ev::GcStep { die, steps } => (2, die as u64, steps as u64),
        Ev::Tick { tenant } => (3, tenant as u64, 0),
        Ev::Issue { s } => (4, s as u64, 0),
        Ev::Deliver { s, r } => (5, s as u64, r as u64),
        Ev::Ack { s, r } => (6, s as u64, r as u64),
    };
    let x = t.as_nanos() ^ (tag << 56) ^ a.rotate_left(17) ^ b.rotate_left(34);
    (digest ^ x).wrapping_mul(0x100_0000_01B3).rotate_left(23)
}

/// Schedules on the earliest-free server of `bank` through either the
/// closed form or the legacy event-chain oracle.
fn serve(bank: &mut [Server], legacy: bool, arrival: SimTime, service: SimDuration) -> SimTime {
    let best = bank
        .iter_mut()
        .min_by_key(|s| s.free_at())
        .expect("banks are non-empty");
    let span = if legacy {
        best.schedule_via_events(arrival, service)
    } else {
        best.schedule(arrival, service)
    };
    span.end
}

/// Drives one mix through an executor backed by `Q`, with server
/// scheduling in closed-form (`legacy == false`) or event-chain
/// (`legacy == true`) mode. The program is a pure function of the mix, so
/// every `(Q, legacy)` combination must yield the same [`Outcome`].
fn drive<Q: Calendar<Ev>>(mix: Mix, legacy: bool) -> Outcome {
    let mut exec: Executor<Ev, Q> = Executor::with_calendar();
    let mut rng = SimRng::seed_from(0x2B_55D + mix as u64);
    let mut digest = fnv1a64(mix.label().as_bytes());
    match mix {
        Mix::Qd => {
            // A closed loop at depth QD over an 8-die bank: each completion
            // immediately schedules the next operation on the earliest-free
            // die and posts its completion — the qd_sweep inner loop with
            // the NVMe bookkeeping stripped away.
            let mut bank = vec![Server::new(); 8];
            let mut issued = 0u64;
            for _ in 0..QD.min(QD_OPS as usize) {
                let service = SimDuration::from_micros(20 + rng.next_u64_below(30));
                let end = serve(&mut bank, legacy, SimTime::ZERO, service);
                exec.post(end, Ev::Complete { op: issued });
                issued += 1;
            }
            exec.run(|ex, t, ev| {
                digest = fold(digest, t, &ev);
                if issued < QD_OPS {
                    let service = SimDuration::from_micros(20 + rng.next_u64_below(30));
                    let end = serve(&mut bank, legacy, t, service);
                    ex.post(end, Ev::Complete { op: issued });
                    issued += 1;
                }
            });
        }
        Mix::Gc => {
            // A foreground write chain; every 16th write kicks off an
            // 8-step background GC chain that steals the same dies, the
            // gc_interference contention pattern in miniature.
            let mut dies = vec![Server::new(); 4];
            let mut written = 0u64;
            exec.post(SimTime::ZERO, Ev::Fg { i: 0 });
            exec.run(|ex, t, ev| {
                digest = fold(digest, t, &ev);
                match ev {
                    Ev::Fg { i } => {
                        let service = SimDuration::from_micros(50 + rng.next_u64_below(20));
                        let end = serve(&mut dies, legacy, t, service);
                        written += 1;
                        if written < GC_WRITES {
                            ex.post(end, Ev::Fg { i: i + 1 });
                        }
                        if i % 16 == 0 {
                            let die = (i / 16 % 4) as u8;
                            ex.post(
                                end + SimDuration::from_micros(5),
                                Ev::GcStep { die, steps: 8 },
                            );
                        }
                    }
                    Ev::GcStep { die, steps } => {
                        let service = SimDuration::from_micros(90);
                        let end = serve(&mut dies[die as usize..=die as usize], legacy, t, service);
                        if steps > 1 {
                            ex.post(
                                end,
                                Ev::GcStep {
                                    die,
                                    steps: steps - 1,
                                },
                            );
                        }
                    }
                    _ => unreachable!("gc mix posts only Fg/GcStep"),
                }
            });
        }
        Mix::Tenant => {
            // Every tenant's deadline fires at the *same* epoch instants —
            // a TENANTS-way tie each epoch, the worst case for same-instant
            // dispatch and exactly the shape of tenant_sweep's epoch
            // arbitration scans.
            let epoch = SimDuration::from_micros(100);
            for tenant in 0..TENANTS {
                exec.post(SimTime::ZERO + epoch, Ev::Tick { tenant });
            }
            let mut shared = [Server::new()];
            exec.run(|ex, t, ev| {
                digest = fold(digest, t, &ev);
                let Ev::Tick { tenant } = ev else {
                    unreachable!("tenant mix posts only Tick")
                };
                // One tenant in 8 does real work at its deadline.
                if tenant % 8 == 0 {
                    serve(&mut shared, legacy, t, SimDuration::from_micros(2));
                }
                let next =
                    SimTime::from_nanos((t.as_nanos() / epoch.as_nanos() + 1) * epoch.as_nanos());
                if next.as_nanos() / epoch.as_nanos() <= TENANT_EPOCHS {
                    ex.post(next, Ev::Tick { tenant });
                }
            });
        }
        Mix::Repl => {
            // REPL_STREAMS pipelined commit streams share one primary and
            // three replica sites; each commit is Issue → 3 Delivers →
            // 3 Acks, released at quorum 2 with think time before the
            // stream's next Issue. The concurrent streams keep an
            // O(hundreds) calendar pending — the regime where the heap's
            // O(log n) shows and repl_sweep's fleet deployments live.
            let one_way = SimDuration::from_micros(25);
            let mut primary = [Server::new()];
            let mut replicas = [Server::new(), Server::new(), Server::new()];
            let mut acks = vec![0u32; REPL_STREAMS as usize];
            let mut commits = vec![0u64; REPL_STREAMS as usize];
            for s in 0..REPL_STREAMS {
                let stagger = SimDuration::from_micros(s as u64);
                exec.post(SimTime::ZERO + stagger, Ev::Issue { s });
            }
            exec.run(|ex, t, ev| {
                digest = fold(digest, t, &ev);
                match ev {
                    Ev::Issue { s } => {
                        // The primary's commit path, pass by pass as the
                        // real repl_sweep device model schedules it: WAL
                        // append through the datapath engine, the DRAM
                        // commit, then the channel transfer and NAND
                        // program per 4 KiB sector of the batch (the
                        // device model schedules each sector pass as its
                        // own occupancy), and the tail read-out that
                        // feeds the ship.
                        let engine = SimDuration::from_micros(3 + rng.next_u64_below(3));
                        serve(&mut primary, legacy, t, engine);
                        serve(&mut primary, legacy, t, SimDuration::from_micros(1));
                        for _ in 0..4 {
                            serve(&mut primary, legacy, t, SimDuration::from_nanos(750));
                            serve(&mut primary, legacy, t, SimDuration::from_nanos(1_750));
                        }
                        let durable = serve(&mut primary, legacy, t, SimDuration::from_micros(2));
                        acks[s as usize] = 0;
                        for r in 0..3u8 {
                            let jitter = SimDuration::from_nanos(rng.next_u64_below(2_000));
                            ex.post(durable + one_way + jitter, Ev::Deliver { s, r });
                        }
                    }
                    Ev::Deliver { s, r } => {
                        // Replica: land the batch over DMA, then apply,
                        // transfer, and program it sector by sector.
                        let rep = &mut replicas[r as usize..=r as usize];
                        serve(rep, legacy, t, SimDuration::from_micros(2));
                        for _ in 0..4 {
                            serve(rep, legacy, t, SimDuration::from_micros(1));
                            serve(rep, legacy, t, SimDuration::from_nanos(750));
                        }
                        let done = serve(rep, legacy, t, SimDuration::from_nanos(1_500));
                        ex.post(done + one_way, Ev::Ack { s, r });
                    }
                    Ev::Ack { s, .. } => {
                        // Commit-record bookkeeping on the primary.
                        serve(&mut primary, legacy, t, SimDuration::from_nanos(500));
                        let s = s as usize;
                        acks[s] += 1;
                        if acks[s] == 2 {
                            commits[s] += 1;
                            if commits[s] < REPL_COMMITS {
                                let think = SimDuration::from_nanos(rng.next_u64_below(400));
                                ex.post(t + think, Ev::Issue { s: s as u16 });
                            }
                        }
                    }
                    _ => unreachable!("repl mix posts only Issue/Deliver/Ack"),
                }
            });
        }
    }
    assert_eq!(exec.clamped_posts(), 0, "no mix may post into the past");
    Outcome {
        events: exec.processed(),
        digest,
        final_now: exec.now(),
        rounds: 0,
    }
}

/// How a sharded mix is driven: the fine-grained lock-step oracle
/// (`sharded-seq`, the pre-refactor baseline), the adaptive round-batched
/// sequential engine (`sharded-seq-adaptive`), or the parallel worker loop
/// at a given thread count.
#[derive(Debug, Clone, Copy)]
enum DriveMode {
    Lockstep,
    Adaptive,
    Par(usize),
}

/// The five ways every sharded mix is driven, in report order. The first
/// entry is the baseline the speedup ratios divide by.
const SHARDED_KERNELS: [(&str, DriveMode); 5] = [
    ("sharded-seq", DriveMode::Lockstep),
    ("sharded-seq-adaptive", DriveMode::Adaptive),
    ("sharded-par2", DriveMode::Par(2)),
    ("sharded-par4", DriveMode::Par(4)),
    ("sharded-par8", DriveMode::Par(8)),
];

/// Runs the real `twob-repl` sharded cluster — primary + 3 replicas, one
/// node per shard, each appending to its own BA-WAL over its own simulated
/// device — and reduces the [`ClusterReport`] to a bench [`Outcome`].
/// Unlike the synthetic mixes, every event here pays genuine device-model
/// cost, which is what a parallel drive can overlap across cores.
fn drive_sharded_repl(mode: DriveMode, commits: u64, streams: u64) -> Outcome {
    let cfg = ClusterConfig {
        commits,
        streams,
        ..ClusterConfig::default()
    };
    let cluster = ShardedReplCluster::new(cfg).expect("small sim devices always construct");
    let report = match mode {
        DriveMode::Lockstep => cluster.run_lockstep(),
        DriveMode::Adaptive => cluster.run(),
        DriveMode::Par(threads) => cluster.run_parallel(threads),
    };
    assert_eq!(report.clamped_posts, 0, "sharded repl mix may not clamp");
    assert_eq!(report.released, commits);
    let digest = report
        .node_digests
        .iter()
        .fold(fnv1a64(b"repl-sharded"), |d, nd| {
            fnv1a64_update(d, &nd.to_le_bytes())
        });
    Outcome {
        events: report.processed,
        digest,
        final_now: report.final_now,
        rounds: report.rounds,
    }
}

/// Conservative lookahead of the device-sharded mix: the die-group
/// interconnect latency, well below the op gaps inside a burst.
const DEV_LOOKAHEAD: SimDuration = SimDuration::from_micros(2);

/// Events of the device-sharded mix: a tenant whose burst of die-group
/// operations is resident on one shard at a time, kicking off shard-local
/// GC step chains, then migrating to the next die group's shard.
#[derive(Debug, Clone)]
enum DevEv {
    /// The tenant arrives on this shard's die group and starts wave `wave`.
    Hop { wave: u64 },
    /// Burst operation `i` of wave `wave` on the resident die group.
    Op { wave: u64, i: u64 },
    /// One shard-local GC step, `steps` remaining in the chain.
    Gc { steps: u8 },
}

/// Per-shard state of the device-sharded mix: one die-group server for
/// tenant ops, one for background GC, so GC overhang from the previous
/// visit runs concurrently with the next shard's burst.
struct DevState {
    die: Server,
    gc: Server,
    rng: SimRng,
    digest: u64,
}

/// The device-sharded handler. Inside a burst every op gap exceeds
/// [`DEV_LOOKAHEAD`], so the lock-step baseline pays a synchronisation
/// round per event; the adaptive engine free-runs the whole local chain
/// whenever the other shards are quiet or further in the future.
fn device_handler(ctx: &mut ShardCtx<'_, DevEv>, st: &mut DevState, t: SimTime, ev: DevEv) {
    let (tag, a, b): (u64, u64, u64) = match ev {
        DevEv::Hop { wave } => (0, wave, 0),
        DevEv::Op { wave, i } => (1, wave, i),
        DevEv::Gc { steps } => (2, steps as u64, 0),
    };
    let x = t.as_nanos() ^ (tag << 56) ^ a.rotate_left(17) ^ b.rotate_left(34);
    st.digest = (st.digest ^ x)
        .wrapping_mul(0x100_0000_01B3)
        .rotate_left(23);
    match ev {
        DevEv::Hop { wave } => {
            if wave < DEVICE_WAVES {
                ctx.post(t, DevEv::Op { wave, i: 0 });
            }
        }
        DevEv::Op { wave, i } => {
            let service = SimDuration::from_nanos(1_200 + 100 * st.rng.next_u64_below(8));
            let end = st.die.schedule(t, service).end;
            if i % 12 == 0 {
                // Every 12th op dirties enough of the die group to kick a
                // background GC chain — placed on *this* shard, like the
                // real model's die-sliced GC riding with its group.
                ctx.post(end + SimDuration::from_micros(5), DevEv::Gc { steps: 2 });
            }
            if i + 1 < DEVICE_BURST {
                let gap = SimDuration::from_nanos(2_600 + 200 * st.rng.next_u64_below(8));
                ctx.post(end + gap, DevEv::Op { wave, i: i + 1 });
            } else {
                // Burst over: the tenant migrates to the next die group.
                // The only cross-shard message in the whole mix.
                let hop = DEV_LOOKAHEAD + SimDuration::from_micros(10);
                let next = (ctx.shard() + 1) % DEVICE_SHARDS;
                ctx.send(next, end + hop, DevEv::Hop { wave: wave + 1 });
            }
        }
        DevEv::Gc { steps } => {
            let end = st.gc.schedule(t, SimDuration::from_micros(45)).end;
            if steps > 1 {
                ctx.post(end, DevEv::Gc { steps: steps - 1 });
            }
        }
    }
}

/// Runs the device-sharded mix over [`DEVICE_SHARDS`] die-group shards.
fn drive_sharded_device(mode: DriveMode, waves: u64) -> Outcome {
    let mut exec: ShardedExecutor<DevEv> = ShardedExecutor::new(DEVICE_SHARDS, DEV_LOOKAHEAD);
    let mut states: Vec<DevState> = (0..DEVICE_SHARDS as u64)
        .map(|i| DevState {
            die: Server::new(),
            gc: Server::new(),
            rng: SimRng::seed_from(0xD1E + i),
            digest: fnv1a64(&[i as u8]),
        })
        .collect();
    // `waves` caps the tenant's migrations; the handler compares against
    // the global constant, so trim it for test-scale runs.
    let waves = waves.min(DEVICE_WAVES);
    exec.seed(
        0,
        SimTime::ZERO,
        DevEv::Hop {
            wave: DEVICE_WAVES - waves,
        },
    );
    match mode {
        DriveMode::Lockstep => exec.run_lockstep(&mut states, &device_handler),
        DriveMode::Adaptive => exec.run(&mut states, &device_handler),
        DriveMode::Par(threads) => exec.run_parallel(&mut states, &device_handler, threads),
    }
    assert_eq!(exec.clamped_posts(), 0, "device-sharded mix may not clamp");
    let digest = states.iter().fold(fnv1a64(b"device-sharded"), |d, s| {
        fnv1a64_update(d, &s.digest.to_le_bytes())
    });
    let final_now = (0..DEVICE_SHARDS)
        .map(|i| exec.shard(i).now())
        .max()
        .unwrap();
    Outcome {
        events: exec.processed(),
        digest,
        final_now,
        rounds: exec.rounds(),
    }
}

/// Times `f` over [`REPS`] repetitions, reporting the minimum wall time
/// (the repetition least disturbed by the host scheduler). Every
/// repetition must produce the identical outcome — a free run-to-run
/// determinism check on top of the cross-kernel one.
fn measure(mix: &str, kernel: &str, f: impl Fn() -> Outcome) -> (Outcome, PerfRow) {
    let mut best: Option<(std::time::Duration, Outcome)> = None;
    for _ in 0..REPS {
        let start = std::time::Instant::now();
        let out = f();
        let wall = start.elapsed();
        if let Some((best_wall, best_out)) = &mut best {
            assert_eq!(
                best_out.digest, out.digest,
                "{mix}/{kernel}: two repetitions of the same run diverged"
            );
            if wall < *best_wall {
                *best_wall = wall;
            }
        } else {
            best = Some((wall, out));
        }
    }
    let (wall, out) = best.expect("REPS >= 1");
    let secs = wall.as_secs_f64().max(1e-9);
    let row = PerfRow {
        mix: mix.to_string(),
        kernel: kernel.to_string(),
        events: out.events,
        wall_ms: wall.as_secs_f64() * 1e3,
        events_per_sec: out.events as f64 / secs,
        sim_secs_per_sec: out.final_now.as_nanos() as f64 / 1e9 / secs,
    };
    (out, row)
}

/// Runs the whole bench: every flat mix through both kernels, plus the
/// two sharded mixes under the lock-step baseline, the adaptive engine,
/// and the parallel thread sweep.
///
/// # Panics
///
/// Panics if any kernel pair disagrees on a firing-sequence digest — that
/// is a correctness bug, not a performance regression.
pub fn run() -> Report {
    let mut det = Vec::new();
    let mut perf = Vec::new();
    let mut speedups = Vec::new();
    for mix in MIXES {
        let (new, new_row) = measure(mix.label(), "rebuilt", || {
            drive::<WheelQueue<Ev>>(mix, false)
        });
        let (old, old_row) = measure(mix.label(), "legacy", || drive::<HeapQueue<Ev>>(mix, true));
        assert_eq!(
            new.digest,
            old.digest,
            "kernels diverged on the {} mix",
            mix.label()
        );
        assert_eq!(new.events, old.events);
        assert_eq!(new.final_now, old.final_now);
        det.push(DetRow {
            mix: mix.label().to_string(),
            events: new.events,
            digest: format!("{:016x}", new.digest),
            final_now_ns: new.final_now.as_nanos(),
        });
        speedups.push(Speedup {
            mix: mix.label().to_string(),
            ratio: new_row.events_per_sec / old_row.events_per_sec,
        });
        perf.push(new_row);
        perf.push(old_row);
    }
    let sharded = run_sharded_only();
    det.extend(sharded.det);
    perf.extend(sharded.perf);
    speedups.extend(sharded.speedups);
    Report {
        det,
        perf,
        speedups,
    }
}

/// Runs only the two sharded mixes — the fast path behind the CI
/// parallel-beats-sequential gate, which doesn't need the flat kernels.
pub fn run_sharded_only() -> Report {
    let mut det = Vec::new();
    let mut perf = Vec::new();
    let mut speedups = Vec::new();
    run_sharded_mix(&mut det, &mut perf, &mut speedups, "repl-sharded", |mode| {
        drive_sharded_repl(mode, CLUSTER_COMMITS, CLUSTER_STREAMS)
    });
    run_sharded_mix(
        &mut det,
        &mut perf,
        &mut speedups,
        "device-sharded",
        |mode| drive_sharded_device(mode, DEVICE_WAVES),
    );
    Report {
        det,
        perf,
        speedups,
    }
}

/// Measures one sharded mix under all five [`SHARDED_KERNELS`], demanding
/// byte-identical digests (and identical event counts and final instants)
/// from every drive, then records two ratios: `<mix>` — the parallel
/// 4-thread drive over the lock-step baseline, the end-to-end
/// parallel-beats-sequential number — and `<mix>-adaptive` — the adaptive
/// sequential engine over the same baseline, the purely algorithmic round
/// batching win, which transfers across machines because both sides are
/// single-threaded.
///
/// Unlike the flat mixes, the repetitions are *interleaved* across the
/// five drives (one rep of each, [`REPS`] times over) so a slow patch of
/// host scheduling lands on all kernels evenly instead of poisoning one
/// cell's ratio.
fn run_sharded_mix(
    det: &mut Vec<DetRow>,
    perf: &mut Vec<PerfRow>,
    speedups: &mut Vec<Speedup>,
    mix: &str,
    drive: impl Fn(DriveMode) -> Outcome,
) {
    let mut cells: Vec<Option<(std::time::Duration, Outcome)>> =
        SHARDED_KERNELS.iter().map(|_| None).collect();
    for _ in 0..REPS {
        for (cell, (kernel, mode)) in cells.iter_mut().zip(SHARDED_KERNELS) {
            let start = std::time::Instant::now();
            let out = drive(mode);
            let wall = start.elapsed();
            match cell {
                None => *cell = Some((wall, out)),
                Some((best_wall, best_out)) => {
                    assert_eq!(
                        best_out.digest, out.digest,
                        "{mix}/{kernel}: two repetitions of the same run diverged"
                    );
                    if wall < *best_wall {
                        *best_wall = wall;
                    }
                }
            }
        }
    }
    let cells: Vec<(std::time::Duration, Outcome)> =
        cells.into_iter().map(|c| c.expect("REPS >= 1")).collect();
    let base = &cells[0].1;
    det.push(DetRow {
        mix: mix.to_string(),
        events: base.events,
        digest: format!("{:016x}", base.digest),
        final_now_ns: base.final_now.as_nanos(),
    });
    let eps = |i: usize| cells[i].1.events as f64 / cells[i].0.as_secs_f64().max(1e-9);
    let mut adaptive_rounds = u64::MAX;
    for (i, ((wall, out), (kernel, mode))) in cells.iter().zip(SHARDED_KERNELS).enumerate() {
        match mode {
            DriveMode::Lockstep => {}
            DriveMode::Adaptive => {
                adaptive_rounds = out.rounds;
                speedups.push(Speedup {
                    mix: format!("{mix}-adaptive"),
                    ratio: eps(i) / eps(0),
                });
            }
            DriveMode::Par(threads) => {
                assert_eq!(
                    out.rounds, adaptive_rounds,
                    "parallel must replay the adaptive schedule exactly"
                );
                if threads == 4 {
                    speedups.push(Speedup {
                        mix: mix.to_string(),
                        ratio: eps(i) / eps(0),
                    });
                }
            }
        }
        assert_eq!(
            out.digest, base.digest,
            "{mix}/{kernel} diverged from the lock-step baseline"
        );
        assert_eq!(out.events, base.events);
        assert_eq!(out.final_now, base.final_now);
        assert!(
            out.rounds <= base.rounds,
            "{mix}/{kernel}: adaptive batching used more rounds ({} vs {})",
            out.rounds,
            base.rounds
        );
        perf.push(PerfRow {
            mix: mix.to_string(),
            kernel: kernel.to_string(),
            events: out.events,
            wall_ms: wall.as_secs_f64() * 1e3,
            events_per_sec: eps(i),
            sim_secs_per_sec: out.final_now.as_nanos() as f64 / 1e9 / wall.as_secs_f64().max(1e-9),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every mix digests identically on both kernels — the module-level
    /// assertion, exercised at test scale via the public entry point on
    /// one cheap mix rather than the full budget.
    #[test]
    fn qd_mix_kernels_agree_at_small_scale() {
        let a = drive::<WheelQueue<Ev>>(Mix::Tenant, false);
        let b = drive::<HeapQueue<Ev>>(Mix::Tenant, true);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.events, b.events);
        assert!(a.events > 0);
    }

    /// The device-sharded mix digests identically under the lock-step
    /// oracle, the adaptive engine, and the parallel drive — and the
    /// adaptive engine strictly batches rounds, which is the entire
    /// performance claim of the mix.
    #[test]
    fn device_sharded_mix_is_mode_invariant_and_batches() {
        let lock = drive_sharded_device(DriveMode::Lockstep, 40);
        let seq = drive_sharded_device(DriveMode::Adaptive, 40);
        let par = drive_sharded_device(DriveMode::Par(4), 40);
        assert_eq!(seq.digest, lock.digest);
        assert_eq!(seq.events, lock.events);
        assert_eq!(seq.final_now, lock.final_now);
        assert_eq!(par.digest, seq.digest);
        assert_eq!(par.rounds, seq.rounds);
        assert!(
            seq.rounds < lock.rounds,
            "adaptive batching should collapse burst rounds ({} vs {})",
            seq.rounds,
            lock.rounds
        );
    }

    /// The repl-sharded mix (real cluster) is mode- and thread-invariant
    /// at test scale.
    #[test]
    fn repl_sharded_mix_is_mode_invariant() {
        let lock = drive_sharded_repl(DriveMode::Lockstep, 60, 6);
        let seq = drive_sharded_repl(DriveMode::Adaptive, 60, 6);
        let par = drive_sharded_repl(DriveMode::Par(4), 60, 6);
        assert_eq!(seq.digest, lock.digest);
        assert_eq!(seq.events, lock.events);
        assert_eq!(par.digest, seq.digest);
        assert_eq!(par.final_now, seq.final_now);
        assert!(seq.rounds <= lock.rounds);
    }
}
