//! Kernel throughput bench: how fast does the event kernel itself go?
//!
//! Every other module in this crate measures the *model* (NAND timings,
//! WAL policies, replication quorums); this one measures the *engine*
//! underneath them. Four synthetic event mixes — shaped like the traffic
//! the `qd_sweep`, `gc_interference`, `tenant_sweep`, and `repl_sweep`
//! studies actually generate — are driven twice through the simulation
//! kernel:
//!
//! - **rebuilt** — the wheel-calendar [`twob_sim::WheelQueue`] plus the
//!   closed-form [`twob_sim::Server::schedule`];
//! - **legacy** — the binary-heap [`twob_sim::HeapQueue`] oracle plus the
//!   per-call event-chain [`twob_sim::Server::schedule_via_events`], the
//!   kernel as it stood before the rebuild.
//!
//! Both runs of a mix must produce the *same* firing-sequence digest — the
//! kernels are interchangeable by construction, so the only thing allowed
//! to differ is wall-clock time. A fifth entry drives the repl-shaped mix
//! through the sharded conservative-PDES executor, sequentially and on
//! four threads, and again demands digest equality.
//!
//! The `sim_throughput` binary prints the deterministic rows on its
//! `json:` line (mix, events, digest, final virtual instant — byte-stable
//! across runs and machines) and writes wall-clock rates to
//! `BENCH_sim_throughput.json`, which is tracked and regression-checked in
//! CI via speedup *ratios* (machine-independent) rather than absolute
//! event rates.

use serde::{Deserialize, Serialize};
use twob_sim::{
    fnv1a64, fnv1a64_update, Calendar, Executor, HeapQueue, Server, ShardCtx, ShardedExecutor,
    SimDuration, SimRng, SimTime, WheelQueue,
};

/// Independent pipelined commit streams in the repl-shaped mix — a fleet
/// of replicated tenants sharing one primary, which is what keeps a
/// realistic number of events pending on the calendar at once.
pub const REPL_STREAMS: u16 = 128;
/// Commits per stream in the repl-shaped mix (7 events each).
pub const REPL_COMMITS: u64 = 250;
/// Commits driven through the *sharded* repl mix. Smaller than
/// [`REPL_COMMITS`] because the conservative-PDES barrier rounds make the
/// parallel run wall-clock-expensive out of proportion to its event count.
pub const SHARDED_COMMITS: u64 = 6_000;
/// Timing repetitions per `(mix, kernel)` cell; the minimum wall time is
/// reported, the standard defense against scheduler noise on short runs.
pub const REPS: u32 = 3;
/// Operations driven through the qd-shaped closed loop.
pub const QD_OPS: u64 = 200_000;
/// Foreground writes driven through the gc-shaped mix.
pub const GC_WRITES: u64 = 120_000;
/// Deadline epochs driven through the tenant-shaped mix.
pub const TENANT_EPOCHS: u64 = 3_000;
/// Tenants ticking in lockstep in the tenant-shaped mix.
pub const TENANTS: u32 = 64;
/// Queue depth of the qd-shaped closed loop.
pub const QD: usize = 16;

/// The event mixes the bench visits, in report order.
pub const MIXES: [Mix; 4] = [Mix::Qd, Mix::Gc, Mix::Tenant, Mix::Repl];

/// One synthetic event-mix shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mix {
    /// QD16 closed loop over an 8-server bank, completion-driven refill.
    Qd,
    /// Foreground write chain with background GC step chains stealing dies.
    Gc,
    /// 64 tenants posting deadline ticks at the same epoch instants.
    Tenant,
    /// Primary/3-replica quorum fan-out with acks and think time.
    Repl,
}

impl Mix {
    /// Stable lowercase label used in reports and JSON.
    pub fn label(self) -> &'static str {
        match self {
            Mix::Qd => "qd",
            Mix::Gc => "gc",
            Mix::Tenant => "tenant",
            Mix::Repl => "repl",
        }
    }
}

/// Events shared by all four mixes. The digest folds in the discriminant,
/// so two mixes can never alias each other's sequences.
#[derive(Debug, Clone)]
enum Ev {
    /// qd: completion of operation `op` (its refill issues `op + QD`).
    Complete { op: u64 },
    /// gc: foreground write `i` finished; chain the next one.
    Fg { i: u64 },
    /// gc: one background GC step on `die`, `steps` more to go.
    GcStep { die: u8, steps: u8 },
    /// tenant: tenant's deadline tick at an epoch boundary.
    Tick { tenant: u32 },
    /// repl: stream `s`'s client issues its next commit.
    Issue { s: u16 },
    /// repl: stream `s`'s log batch arrives at replica `r`.
    Deliver { s: u16, r: u8 },
    /// repl: replica `r`'s ack for stream `s` arrives back at the primary.
    Ack { s: u16, r: u8 },
}

/// Everything deterministic about one mix run: both kernels must agree on
/// every field, and two runs of the same binary must agree byte-for-byte.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetRow {
    /// Mix label.
    pub mix: String,
    /// Events fired.
    pub events: u64,
    /// Order-sensitive digest of the `(time, event)` firing sequence, hex.
    pub digest: String,
    /// Final virtual instant, ns.
    pub final_now_ns: u64,
}

/// One wall-clock measurement (not deterministic; lives only in the BENCH
/// file, never on the `json:` line).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfRow {
    /// Mix label.
    pub mix: String,
    /// `"rebuilt"`, `"legacy"`, `"sharded-seq"`, or `"sharded-par4"`.
    pub kernel: String,
    /// Events fired.
    pub events: u64,
    /// Wall-clock duration of the run, ms.
    pub wall_ms: f64,
    /// Events per wall-clock second.
    pub events_per_sec: f64,
    /// Simulated seconds per wall-clock second.
    pub sim_secs_per_sec: f64,
}

/// Rebuilt-over-legacy events/sec ratio for one mix — the number CI gates
/// on, because ratios transfer across machines where absolute rates don't.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Speedup {
    /// Mix label.
    pub mix: String,
    /// `rebuilt events/sec ÷ legacy events/sec`.
    pub ratio: f64,
}

/// The full bench outcome.
#[derive(Debug, Clone)]
pub struct Report {
    /// Deterministic rows, one per mix plus the sharded repl entries.
    pub det: Vec<DetRow>,
    /// Wall-clock rows, two kernels per mix plus the sharded repl pair.
    pub perf: Vec<PerfRow>,
    /// Per-mix speedups, rebuilt over legacy.
    pub speedups: Vec<Speedup>,
}

/// Raw outcome of driving one mix through one kernel.
struct Outcome {
    events: u64,
    digest: u64,
    final_now: SimTime,
}

/// Folds one fired event into the running sequence digest: a word-wide
/// multiply-rotate mix, order-sensitive so any reordering of the firing
/// sequence changes the result, and cheap enough (a few cycles) that the
/// digest does not drown the kernel cost it is there to pin.
fn fold(digest: u64, t: SimTime, ev: &Ev) -> u64 {
    let (tag, a, b): (u64, u64, u64) = match *ev {
        Ev::Complete { op } => (0, op, 0),
        Ev::Fg { i } => (1, i, 0),
        Ev::GcStep { die, steps } => (2, die as u64, steps as u64),
        Ev::Tick { tenant } => (3, tenant as u64, 0),
        Ev::Issue { s } => (4, s as u64, 0),
        Ev::Deliver { s, r } => (5, s as u64, r as u64),
        Ev::Ack { s, r } => (6, s as u64, r as u64),
    };
    let x = t.as_nanos() ^ (tag << 56) ^ a.rotate_left(17) ^ b.rotate_left(34);
    (digest ^ x).wrapping_mul(0x100_0000_01B3).rotate_left(23)
}

/// Schedules on the earliest-free server of `bank` through either the
/// closed form or the legacy event-chain oracle.
fn serve(bank: &mut [Server], legacy: bool, arrival: SimTime, service: SimDuration) -> SimTime {
    let best = bank
        .iter_mut()
        .min_by_key(|s| s.free_at())
        .expect("banks are non-empty");
    let span = if legacy {
        best.schedule_via_events(arrival, service)
    } else {
        best.schedule(arrival, service)
    };
    span.end
}

/// Drives one mix through an executor backed by `Q`, with server
/// scheduling in closed-form (`legacy == false`) or event-chain
/// (`legacy == true`) mode. The program is a pure function of the mix, so
/// every `(Q, legacy)` combination must yield the same [`Outcome`].
fn drive<Q: Calendar<Ev>>(mix: Mix, legacy: bool) -> Outcome {
    let mut exec: Executor<Ev, Q> = Executor::with_calendar();
    let mut rng = SimRng::seed_from(0x2B_55D + mix as u64);
    let mut digest = fnv1a64(mix.label().as_bytes());
    match mix {
        Mix::Qd => {
            // A closed loop at depth QD over an 8-die bank: each completion
            // immediately schedules the next operation on the earliest-free
            // die and posts its completion — the qd_sweep inner loop with
            // the NVMe bookkeeping stripped away.
            let mut bank = vec![Server::new(); 8];
            let mut issued = 0u64;
            for _ in 0..QD.min(QD_OPS as usize) {
                let service = SimDuration::from_micros(20 + rng.next_u64_below(30));
                let end = serve(&mut bank, legacy, SimTime::ZERO, service);
                exec.post(end, Ev::Complete { op: issued });
                issued += 1;
            }
            exec.run(|ex, t, ev| {
                digest = fold(digest, t, &ev);
                if issued < QD_OPS {
                    let service = SimDuration::from_micros(20 + rng.next_u64_below(30));
                    let end = serve(&mut bank, legacy, t, service);
                    ex.post(end, Ev::Complete { op: issued });
                    issued += 1;
                }
            });
        }
        Mix::Gc => {
            // A foreground write chain; every 16th write kicks off an
            // 8-step background GC chain that steals the same dies, the
            // gc_interference contention pattern in miniature.
            let mut dies = vec![Server::new(); 4];
            let mut written = 0u64;
            exec.post(SimTime::ZERO, Ev::Fg { i: 0 });
            exec.run(|ex, t, ev| {
                digest = fold(digest, t, &ev);
                match ev {
                    Ev::Fg { i } => {
                        let service = SimDuration::from_micros(50 + rng.next_u64_below(20));
                        let end = serve(&mut dies, legacy, t, service);
                        written += 1;
                        if written < GC_WRITES {
                            ex.post(end, Ev::Fg { i: i + 1 });
                        }
                        if i % 16 == 0 {
                            let die = (i / 16 % 4) as u8;
                            ex.post(
                                end + SimDuration::from_micros(5),
                                Ev::GcStep { die, steps: 8 },
                            );
                        }
                    }
                    Ev::GcStep { die, steps } => {
                        let service = SimDuration::from_micros(90);
                        let end = serve(&mut dies[die as usize..=die as usize], legacy, t, service);
                        if steps > 1 {
                            ex.post(
                                end,
                                Ev::GcStep {
                                    die,
                                    steps: steps - 1,
                                },
                            );
                        }
                    }
                    _ => unreachable!("gc mix posts only Fg/GcStep"),
                }
            });
        }
        Mix::Tenant => {
            // Every tenant's deadline fires at the *same* epoch instants —
            // a TENANTS-way tie each epoch, the worst case for same-instant
            // dispatch and exactly the shape of tenant_sweep's epoch
            // arbitration scans.
            let epoch = SimDuration::from_micros(100);
            for tenant in 0..TENANTS {
                exec.post(SimTime::ZERO + epoch, Ev::Tick { tenant });
            }
            let mut shared = [Server::new()];
            exec.run(|ex, t, ev| {
                digest = fold(digest, t, &ev);
                let Ev::Tick { tenant } = ev else {
                    unreachable!("tenant mix posts only Tick")
                };
                // One tenant in 8 does real work at its deadline.
                if tenant % 8 == 0 {
                    serve(&mut shared, legacy, t, SimDuration::from_micros(2));
                }
                let next =
                    SimTime::from_nanos((t.as_nanos() / epoch.as_nanos() + 1) * epoch.as_nanos());
                if next.as_nanos() / epoch.as_nanos() <= TENANT_EPOCHS {
                    ex.post(next, Ev::Tick { tenant });
                }
            });
        }
        Mix::Repl => {
            // REPL_STREAMS pipelined commit streams share one primary and
            // three replica sites; each commit is Issue → 3 Delivers →
            // 3 Acks, released at quorum 2 with think time before the
            // stream's next Issue. The concurrent streams keep an
            // O(hundreds) calendar pending — the regime where the heap's
            // O(log n) shows and repl_sweep's fleet deployments live.
            let one_way = SimDuration::from_micros(25);
            let mut primary = [Server::new()];
            let mut replicas = [Server::new(), Server::new(), Server::new()];
            let mut acks = vec![0u32; REPL_STREAMS as usize];
            let mut commits = vec![0u64; REPL_STREAMS as usize];
            for s in 0..REPL_STREAMS {
                let stagger = SimDuration::from_micros(s as u64);
                exec.post(SimTime::ZERO + stagger, Ev::Issue { s });
            }
            exec.run(|ex, t, ev| {
                digest = fold(digest, t, &ev);
                match ev {
                    Ev::Issue { s } => {
                        // The primary's commit path, pass by pass as the
                        // real repl_sweep device model schedules it: WAL
                        // append through the datapath engine, the DRAM
                        // commit, then the channel transfer and NAND
                        // program per 4 KiB sector of the batch (the
                        // device model schedules each sector pass as its
                        // own occupancy), and the tail read-out that
                        // feeds the ship.
                        let engine = SimDuration::from_micros(3 + rng.next_u64_below(3));
                        serve(&mut primary, legacy, t, engine);
                        serve(&mut primary, legacy, t, SimDuration::from_micros(1));
                        for _ in 0..4 {
                            serve(&mut primary, legacy, t, SimDuration::from_nanos(750));
                            serve(&mut primary, legacy, t, SimDuration::from_nanos(1_750));
                        }
                        let durable = serve(&mut primary, legacy, t, SimDuration::from_micros(2));
                        acks[s as usize] = 0;
                        for r in 0..3u8 {
                            let jitter = SimDuration::from_nanos(rng.next_u64_below(2_000));
                            ex.post(durable + one_way + jitter, Ev::Deliver { s, r });
                        }
                    }
                    Ev::Deliver { s, r } => {
                        // Replica: land the batch over DMA, then apply,
                        // transfer, and program it sector by sector.
                        let rep = &mut replicas[r as usize..=r as usize];
                        serve(rep, legacy, t, SimDuration::from_micros(2));
                        for _ in 0..4 {
                            serve(rep, legacy, t, SimDuration::from_micros(1));
                            serve(rep, legacy, t, SimDuration::from_nanos(750));
                        }
                        let done = serve(rep, legacy, t, SimDuration::from_nanos(1_500));
                        ex.post(done + one_way, Ev::Ack { s, r });
                    }
                    Ev::Ack { s, .. } => {
                        // Commit-record bookkeeping on the primary.
                        serve(&mut primary, legacy, t, SimDuration::from_nanos(500));
                        let s = s as usize;
                        acks[s] += 1;
                        if acks[s] == 2 {
                            commits[s] += 1;
                            if commits[s] < REPL_COMMITS {
                                let think = SimDuration::from_nanos(rng.next_u64_below(400));
                                ex.post(t + think, Ev::Issue { s: s as u16 });
                            }
                        }
                    }
                    _ => unreachable!("repl mix posts only Issue/Deliver/Ack"),
                }
            });
        }
    }
    assert_eq!(exec.clamped_posts(), 0, "no mix may post into the past");
    Outcome {
        events: exec.processed(),
        digest,
        final_now: exec.now(),
    }
}

/// Per-shard state of the sharded repl mix: shard 0 is the primary, shards
/// 1..=3 are replicas. All cross-shard traffic travels at `one_way`, which
/// is also the lookahead.
struct ShardState {
    server: Server,
    rng: SimRng,
    digest: u64,
    commits: u64,
    acks: u32,
}

/// Events of the sharded repl mix.
#[derive(Debug, Clone)]
enum ShardEv {
    /// Primary: issue the next commit.
    Issue,
    /// Replica: a log batch arrived.
    Deliver,
    /// Primary: an ack arrived from replica `r`.
    Ack { r: u8 },
}

/// The sharded repl handler — pure function of `(shard, state, t, ev)`, so
/// sequential and parallel execution must digest identically.
fn shard_handler(ctx: &mut ShardCtx<'_, ShardEv>, st: &mut ShardState, t: SimTime, ev: ShardEv) {
    let one_way = SimDuration::from_micros(25);
    let (tag, a): (u64, u64) = match ev {
        ShardEv::Issue => (0, 0),
        ShardEv::Deliver => (1, 0),
        ShardEv::Ack { r } => (2, r as u64),
    };
    let x = t.as_nanos() ^ (tag << 56) ^ a.rotate_left(17);
    st.digest = (st.digest ^ x)
        .wrapping_mul(0x100_0000_01B3)
        .rotate_left(23);
    match ev {
        ShardEv::Issue => {
            // Same per-commit schedule density as the unsharded repl mix,
            // per-sector passes included.
            let engine = SimDuration::from_micros(3 + st.rng.next_u64_below(3));
            st.server.schedule(t, engine);
            st.server.schedule(t, SimDuration::from_micros(1));
            for _ in 0..4 {
                st.server.schedule(t, SimDuration::from_nanos(750));
                st.server.schedule(t, SimDuration::from_nanos(1_750));
            }
            let durable = st.server.schedule(t, SimDuration::from_micros(2)).end;
            st.acks = 0;
            for r in 1..=3usize {
                let jitter = SimDuration::from_nanos(st.rng.next_u64_below(2_000));
                ctx.send(r, durable + one_way + jitter, ShardEv::Deliver);
            }
        }
        ShardEv::Deliver => {
            st.server.schedule(t, SimDuration::from_micros(2));
            for _ in 0..4 {
                st.server.schedule(t, SimDuration::from_micros(1));
                st.server.schedule(t, SimDuration::from_nanos(750));
            }
            let done = st.server.schedule(t, SimDuration::from_nanos(1_500)).end;
            let r = ctx.shard() as u8;
            ctx.send(0, done + one_way, ShardEv::Ack { r });
        }
        ShardEv::Ack { .. } => {
            st.server.schedule(t, SimDuration::from_nanos(500));
            st.acks += 1;
            if st.acks == 2 {
                st.commits += 1;
                if st.commits < SHARDED_COMMITS {
                    let think = SimDuration::from_nanos(st.rng.next_u64_below(400));
                    ctx.post(t + think, ShardEv::Issue);
                }
            }
        }
    }
}

/// Runs the sharded repl mix and returns `(events, combined digest,
/// final instant)`. `threads == 1` uses the sequential barrier loop;
/// more threads use `run_parallel`.
fn drive_sharded(threads: usize) -> Outcome {
    let one_way = SimDuration::from_micros(25);
    let mut exec: ShardedExecutor<ShardEv> = ShardedExecutor::new(4, one_way);
    let mut states: Vec<ShardState> = (0..4)
        .map(|i| ShardState {
            server: Server::new(),
            rng: SimRng::seed_from(0x2B_55D + Mix::Repl as u64),
            digest: fnv1a64(&[i as u8]),
            commits: 0,
            acks: 0,
        })
        .collect();
    exec.seed(0, SimTime::ZERO, ShardEv::Issue);
    if threads <= 1 {
        exec.run(&mut states, &shard_handler);
    } else {
        exec.run_parallel(&mut states, &shard_handler, threads);
    }
    assert_eq!(exec.clamped_posts(), 0, "sharded mix may not clamp");
    let digest = states.iter().fold(fnv1a64(b"sharded-repl"), |d, s| {
        fnv1a64_update(d, &s.digest.to_le_bytes())
    });
    let final_now = (0..4).map(|i| exec.shard(i).now()).max().unwrap();
    Outcome {
        events: exec.processed(),
        digest,
        final_now,
    }
}

/// Times `f` over [`REPS`] repetitions, reporting the minimum wall time
/// (the repetition least disturbed by the host scheduler). Every
/// repetition must produce the identical outcome — a free run-to-run
/// determinism check on top of the cross-kernel one.
fn measure(mix: &str, kernel: &str, f: impl Fn() -> Outcome) -> (Outcome, PerfRow) {
    let mut best: Option<(std::time::Duration, Outcome)> = None;
    for _ in 0..REPS {
        let start = std::time::Instant::now();
        let out = f();
        let wall = start.elapsed();
        if let Some((best_wall, best_out)) = &mut best {
            assert_eq!(
                best_out.digest, out.digest,
                "{mix}/{kernel}: two repetitions of the same run diverged"
            );
            if wall < *best_wall {
                *best_wall = wall;
            }
        } else {
            best = Some((wall, out));
        }
    }
    let (wall, out) = best.expect("REPS >= 1");
    let secs = wall.as_secs_f64().max(1e-9);
    let row = PerfRow {
        mix: mix.to_string(),
        kernel: kernel.to_string(),
        events: out.events,
        wall_ms: wall.as_secs_f64() * 1e3,
        events_per_sec: out.events as f64 / secs,
        sim_secs_per_sec: out.final_now.as_nanos() as f64 / 1e9 / secs,
    };
    (out, row)
}

/// Runs the whole bench: every mix through both kernels, plus the sharded
/// repl mix sequentially and on four threads.
///
/// # Panics
///
/// Panics if any kernel pair disagrees on a firing-sequence digest — that
/// is a correctness bug, not a performance regression.
pub fn run() -> Report {
    let mut det = Vec::new();
    let mut perf = Vec::new();
    let mut speedups = Vec::new();
    for mix in MIXES {
        let (new, new_row) = measure(mix.label(), "rebuilt", || {
            drive::<WheelQueue<Ev>>(mix, false)
        });
        let (old, old_row) = measure(mix.label(), "legacy", || drive::<HeapQueue<Ev>>(mix, true));
        assert_eq!(
            new.digest,
            old.digest,
            "kernels diverged on the {} mix",
            mix.label()
        );
        assert_eq!(new.events, old.events);
        assert_eq!(new.final_now, old.final_now);
        det.push(DetRow {
            mix: mix.label().to_string(),
            events: new.events,
            digest: format!("{:016x}", new.digest),
            final_now_ns: new.final_now.as_nanos(),
        });
        speedups.push(Speedup {
            mix: mix.label().to_string(),
            ratio: new_row.events_per_sec / old_row.events_per_sec,
        });
        perf.push(new_row);
        perf.push(old_row);
    }
    let (seq, seq_row) = measure("repl-sharded", "sharded-seq", || drive_sharded(1));
    let (par, par_row) = measure("repl-sharded", "sharded-par4", || drive_sharded(4));
    assert_eq!(
        seq.digest, par.digest,
        "sequential and 4-thread sharded runs diverged"
    );
    assert_eq!(seq.events, par.events);
    det.push(DetRow {
        mix: "repl-sharded".to_string(),
        events: seq.events,
        digest: format!("{:016x}", seq.digest),
        final_now_ns: seq.final_now.as_nanos(),
    });
    perf.push(seq_row);
    perf.push(par_row);
    Report {
        det,
        perf,
        speedups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every mix digests identically on both kernels — the module-level
    /// assertion, exercised at test scale via the public entry point on
    /// one cheap mix rather than the full budget.
    #[test]
    fn qd_mix_kernels_agree_at_small_scale() {
        let a = drive::<WheelQueue<Ev>>(Mix::Tenant, false);
        let b = drive::<HeapQueue<Ev>>(Mix::Tenant, true);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.events, b.events);
        assert!(a.events > 0);
    }

    /// The sharded repl mix is thread-count invariant.
    #[test]
    fn sharded_repl_mix_is_thread_invariant() {
        let seq = drive_sharded(1);
        let par = drive_sharded(4);
        assert_eq!(seq.digest, par.digest);
        assert_eq!(seq.events, par.events);
        assert_eq!(seq.final_now, par.final_now);
    }
}
