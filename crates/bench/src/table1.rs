//! Table I — the 2B-SSD specification.

use twob_core::TwoBSpec;

/// The rows of paper Table I for the default specification.
pub fn rows() -> Vec<(String, String)> {
    TwoBSpec::default().table_rows()
}

#[cfg(test)]
mod tests {
    #[test]
    fn table_has_the_paper_fields() {
        let rows = super::rows();
        let keys: Vec<&str> = rows.iter().map(|(k, _)| k.as_str()).collect();
        for expected in [
            "Host interface",
            "Protocol",
            "Capacity",
            "SSD architecture",
            "Storage medium",
            "BA-buffer size",
            "Max. entries of BA-buffer",
        ] {
            assert!(keys.contains(&expected), "missing row {expected}");
        }
    }
}
