//! Queue-depth sweep: read bandwidth/latency vs request size at QD 1–64.

fn main() {
    let rows = twob_bench::qd_sweep::run();
    for device in ["ULL-SSD", "DC-SSD"] {
        println!("{device}: sequential read, bandwidth (MB/s) by queue depth\n");
        let table: Vec<Vec<String>> = twob_bench::qd_sweep::request_sizes()
            .into_iter()
            .map(|size| {
                let mut cells = vec![format!("{}K", size >> 10)];
                for qd in twob_bench::qd_sweep::QUEUE_DEPTHS {
                    let row = rows
                        .iter()
                        .find(|r| r.device == device && r.size == size && r.qd == qd)
                        .expect("swept point");
                    cells.push(format!("{:.0}", row.read_mbs));
                }
                cells
            })
            .collect();
        twob_bench::print_table(&["size", "QD1", "QD4", "QD16", "QD64"], &table);
        println!();
    }
    println!(
        "json: {}",
        serde_json::to_string(&rows).expect("serialize qd sweep")
    );
}
