//! Replication sweep: client-visible commit latency of a three-node
//! replica set across commit policies, RTTs, and ship schemes.

fn main() {
    let rows = twob_bench::repl_sweep::run();
    println!(
        "Replication sweep: 3-node set, MiniRocks commit stream \
         (seed {}, {} commits per cell)\n",
        twob_bench::repl_sweep::SEED,
        twob_bench::repl_sweep::COMMITS,
    );
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.policy.clone(),
                r.rtt_us.to_string(),
                r.scheme.clone(),
                r.released.to_string(),
                format!("{:.2}", r.p50_us),
                format!("{:.2}", r.p99_us),
                format!("{:.2}", r.mean_us),
                format!("{:.0}", r.commits_per_sec),
                r.ship_batches.to_string(),
                r.ship_records.to_string(),
            ]
        })
        .collect();
    twob_bench::print_table(
        &[
            "policy", "rtt us", "ship", "released", "p50 us", "p99 us", "mean us", "commit/s",
            "batches", "records",
        ],
        &table,
    );
    println!(
        "\njson: {}",
        serde_json::to_string(&rows).expect("serialize repl sweep")
    );
}
