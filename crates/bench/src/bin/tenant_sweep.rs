//! Tenant sweep: per-tenant commit latency as 1 → 64 mixed-engine tenants
//! share one 2B-SSD, BA-WAL vs block-WAL.

use twob_workloads::WalScheme;

fn main() {
    let rows = twob_bench::tenant_sweep::run();
    println!(
        "Tenant sweep: pg/rocks/redis mix sharing one device \
         (seed {}, knee at {}x single-tenant p99)\n",
        twob_bench::tenant_sweep::SEED,
        twob_bench::tenant_sweep::KNEE_FACTOR,
    );
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.tenants.to_string(),
                r.scheme.clone(),
                r.commits.to_string(),
                r.batches.to_string(),
                format!("{:.1}", r.grouped_pct),
                format!("{:.2}", r.p50_us),
                format!("{:.2}", r.p99_us),
                format!("{:.2}", r.worst_tenant_p99_us),
                format!("{:.0}", r.commits_per_sec),
            ]
        })
        .collect();
    twob_bench::print_table(
        &[
            "tenants",
            "scheme",
            "commits",
            "batches",
            "grp %",
            "p50 us",
            "p99 us",
            "worst p99",
            "commit/s",
        ],
        &table,
    );
    for scheme in [WalScheme::Ba, WalScheme::Block] {
        match twob_bench::tenant_sweep::knee(&rows, scheme) {
            Some(n) => println!("\n{} knee: {n} tenants", scheme.label()),
            None => println!("\n{} knee: none within the sweep", scheme.label()),
        }
    }
    println!(
        "\njson: {}",
        serde_json::to_string(&rows).expect("serialize tenant sweep")
    );
}
