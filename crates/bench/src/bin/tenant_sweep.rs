//! Tenant sweep: per-tenant commit latency as 1 → 64 mixed-engine tenants
//! share one 2B-SSD, BA-WAL vs block-WAL — plus the sharded-placement
//! section routing the fleet through the `ShardedIoCalendar` path shared
//! with the tier sweep.

use serde::Serialize;
use twob_bench::tenant_sweep::{Row, ShardedRow, SHARDED_GROUPS, SHARDED_TENANTS};
use twob_workloads::WalScheme;

/// The deterministic `json:` payload: ladder rows plus the sharded
/// placement agreement.
#[derive(Debug, Serialize)]
#[allow(dead_code)]
struct Outcome {
    rows: Vec<Row>,
    sharded: Vec<ShardedRow>,
}

fn main() {
    let rows = twob_bench::tenant_sweep::run();
    println!(
        "Tenant sweep: pg/rocks/redis mix sharing one device \
         (seed {}, knee at {}x single-tenant p99)\n",
        twob_bench::tenant_sweep::SEED,
        twob_bench::tenant_sweep::KNEE_FACTOR,
    );
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.tenants.to_string(),
                r.scheme.clone(),
                r.commits.to_string(),
                r.batches.to_string(),
                format!("{:.1}", r.grouped_pct),
                format!("{:.2}", r.p50_us),
                format!("{:.2}", r.p99_us),
                format!("{:.2}", r.worst_tenant_p99_us),
                format!("{:.0}", r.commits_per_sec),
            ]
        })
        .collect();
    twob_bench::print_table(
        &[
            "tenants",
            "scheme",
            "commits",
            "batches",
            "grp %",
            "p50 us",
            "p99 us",
            "worst p99",
            "commit/s",
        ],
        &table,
    );
    for scheme in [WalScheme::Ba, WalScheme::Block] {
        match twob_bench::tenant_sweep::knee(&rows, scheme) {
            Some(n) => println!("\n{} knee: {n} tenants", scheme.label()),
            None => println!("\n{} knee: none within the sweep", scheme.label()),
        }
    }
    let sharded = twob_bench::tenant_sweep::sharded(SHARDED_TENANTS, SHARDED_GROUPS);
    for row in &sharded {
        println!(
            "\n{} sharded agreement: {} tenants x {} groups, shards {:?}, \
             drives [{}] all at digest {}",
            row.scheme,
            row.tenants,
            row.groups,
            row.shards,
            row.drives.join(", "),
            row.digest
        );
    }
    let outcome = Outcome { rows, sharded };
    println!(
        "\njson: {}",
        serde_json::to_string(&outcome).expect("serialize tenant sweep")
    );
}
