//! GC interference: block-path tail vs flat byte path under churn.

fn main() {
    let rows = twob_bench::gc_interference::run();
    println!(
        "GC interference under 80/20 overwrite churn \
         (GC watermark at free ratio {:.3})\n",
        twob_bench::gc_interference::gc_threshold_ratio()
    );
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.window.to_string(),
                r.phase.clone(),
                format!("{:.3}", r.free_ratio),
                format!("{:.1}", r.blk_write_p50_us),
                format!("{:.1}", r.blk_write_p99_us),
                format!("{:.1}", r.blk_read_p99_us),
                format!("{:.2}", r.read_gc_share),
                format!("{:.3}", r.ba_p99_us),
                r.gc_pages_moved.to_string(),
                r.gc_erases.to_string(),
            ]
        })
        .collect();
    twob_bench::print_table(
        &[
            "win", "phase", "free", "wr p50", "wr p99", "rd p99", "gc shr", "ba p99", "moved",
            "erases",
        ],
        &table,
    );
    println!();
    println!(
        "json: {}",
        serde_json::to_string(&rows).expect("serialize gc interference")
    );
}
