//! Kernel throughput bench: events/sec of the rebuilt wheel kernel vs the
//! legacy binary-heap oracle across four workload-shaped event mixes.
//!
//! Flags:
//!
//! - `--write` — refresh `BENCH_sim_throughput.json` at the repo root;
//! - `--check` — compare this run's speedup ratios against the tracked
//!   baseline and exit non-zero on a >20% regression.
//!
//! The `json:` line carries only deterministic fields (events, digests,
//! final virtual instants) so CI can byte-diff two runs; wall-clock rates
//! go to the BENCH file only.

use twob_bench::sim_throughput::{self, Report, Speedup};

/// Tracked baseline location, resolved relative to this crate so the
/// binary works from any working directory.
const BENCH_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../BENCH_sim_throughput.json"
);

/// A regression is a mix whose speedup ratio fell below 80% of baseline.
const REGRESSION_FLOOR: f64 = 0.8;

/// The acceptance floor: the rebuilt kernel must beat the legacy kernel by
/// at least this factor on the repl-shaped mix (release builds only —
/// debug builds measure the assertion machinery, not the kernel).
const REPL_FLOOR: f64 = 3.0;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let write = args.iter().any(|a| a == "--write");
    let check = args.iter().any(|a| a == "--check");

    let report = sim_throughput::run();
    print_report(&report);

    let repl = ratio_of(&report.speedups, "repl").expect("repl mix always runs");
    if cfg!(debug_assertions) {
        eprintln!("(debug build: skipping the {REPL_FLOOR}x repl speedup floor)");
    } else {
        assert!(
            repl >= REPL_FLOOR,
            "rebuilt kernel is only {repl:.2}x the legacy kernel on the repl mix \
             (floor is {REPL_FLOOR}x)"
        );
    }

    if write {
        std::fs::write(BENCH_PATH, bench_file(&report)).expect("write BENCH_sim_throughput.json");
        eprintln!("wrote {BENCH_PATH}");
    }
    if check {
        let baseline =
            std::fs::read_to_string(BENCH_PATH).expect("read tracked BENCH_sim_throughput.json");
        let mut failures = Vec::new();
        for s in &report.speedups {
            let Some(base) = baseline_ratio(&baseline, &s.mix) else {
                failures.push(format!("mix {:?} missing from baseline", s.mix));
                continue;
            };
            if s.ratio < base * REGRESSION_FLOOR {
                failures.push(format!(
                    "mix {:?} regressed: speedup {:.2}x vs baseline {:.2}x",
                    s.mix, s.ratio, base
                ));
            }
        }
        assert!(
            failures.is_empty(),
            "kernel throughput regressions:\n  {}",
            failures.join("\n  ")
        );
        eprintln!("check passed: no mix regressed >20% vs baseline ratios");
    }
}

/// Prints the human tables and the deterministic `json:` line.
fn print_report(report: &Report) {
    println!(
        "Event-kernel throughput: rebuilt (wheel + closed-form) vs legacy (heap + event-chain)\n"
    );
    let rows: Vec<Vec<String>> = report
        .perf
        .iter()
        .map(|r| {
            vec![
                r.mix.clone(),
                r.kernel.clone(),
                r.events.to_string(),
                format!("{:.1}", r.wall_ms),
                format!("{:.0}", r.events_per_sec),
                format!("{:.1}", r.sim_secs_per_sec),
            ]
        })
        .collect();
    twob_bench::print_table(
        &["mix", "kernel", "events", "wall ms", "events/s", "sim s/s"],
        &rows,
    );
    println!();
    let ratios: Vec<Vec<String>> = report
        .speedups
        .iter()
        .map(|s| vec![s.mix.clone(), format!("{:.2}x", s.ratio)])
        .collect();
    twob_bench::print_table(&["mix", "rebuilt/legacy"], &ratios);
    println!(
        "\njson: {}",
        serde_json::to_string(&report.det).expect("serialize deterministic rows")
    );
}

/// Renders the tracked BENCH file: perf rows plus speedup ratios.
fn bench_file(report: &Report) -> String {
    #[derive(Debug)]
    #[allow(dead_code)] // fields are read through Debug by the serializer
    struct BenchFile<'a> {
        schema: &'a str,
        rows: &'a [sim_throughput::PerfRow],
        speedups: &'a [Speedup],
    }
    let mut text = serde_json::to_string(&BenchFile {
        schema: "sim-throughput-v1",
        rows: &report.perf,
        speedups: &report.speedups,
    })
    .expect("serialize bench file");
    text.push('\n');
    text
}

fn ratio_of(speedups: &[Speedup], mix: &str) -> Option<f64> {
    speedups.iter().find(|s| s.mix == mix).map(|s| s.ratio)
}

/// Extracts `{"mix":"<mix>","ratio":<f64>}` from the baseline file. The
/// vendored serde stand-in cannot parse JSON, so this leans on the exact
/// shape [`bench_file`] writes.
fn baseline_ratio(baseline: &str, mix: &str) -> Option<f64> {
    let needle = format!("{{\"mix\":\"{mix}\",\"ratio\":");
    let at = baseline.find(&needle)? + needle.len();
    let rest = &baseline[at..];
    let end = rest.find(['}', ','])?;
    rest[..end].trim().parse().ok()
}
