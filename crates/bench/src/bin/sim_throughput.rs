//! Kernel throughput bench: events/sec of the rebuilt wheel kernel vs the
//! legacy binary-heap oracle across four workload-shaped event mixes, plus
//! the sharded conservative-PDES executor on the `repl-sharded` (real
//! replica cluster) and `device-sharded` (die-placed tenant/GC) mixes
//! under a lock-step baseline, the adaptive round-batching engine, and a
//! parallel thread sweep.
//!
//! Flags:
//!
//! - `--write` — refresh `BENCH_sim_throughput.json` at the repo root;
//! - `--check` — compare this run's speedup ratios against the tracked
//!   baseline and exit non-zero on a >20% regression;
//! - `--gate-sharded` — run only the sharded mixes and enforce the
//!   parallel-beats-sequential floors (the fast CI gate).
//!
//! The `json:` line carries only deterministic fields (events, digests,
//! final virtual instants) so CI can byte-diff two runs; wall-clock rates
//! go to the BENCH file only.

use twob_bench::sim_throughput::{self, Report, Speedup};

/// Tracked baseline location, resolved relative to this crate so the
/// binary works from any working directory.
const BENCH_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../BENCH_sim_throughput.json"
);

/// A regression is a mix whose speedup ratio fell below 80% of baseline.
const REGRESSION_FLOOR: f64 = 0.8;

/// The acceptance floor: the rebuilt kernel must beat the legacy kernel by
/// at least this factor on the repl-shaped mix (release builds only —
/// debug builds measure the assertion machinery, not the kernel).
const REPL_FLOOR: f64 = 3.0;

/// The parallel-beats-sequential gate: `sharded-par4` may not regress
/// below the lock-step `sharded-seq` baseline on the repl-sharded mix.
/// The 20% margin absorbs timer noise on hosts where the thread pool
/// clamps to one worker and the two drives are algorithmically identical;
/// a genuine parallel-path regression (accidental serialization, barrier
/// livelock) lands far below it.
const SHARDED_PARITY_FLOOR: f64 = 0.8;

/// The round-batching acceptance floor: the adaptive sequential engine
/// must beat the lock-step baseline by at least this factor on the
/// device-sharded mix. Both sides are single-threaded, so this ratio
/// transfers across machines regardless of core count; the tracked BENCH
/// file records the full (~1.8x) win, the floor leaves room for noisy
/// shared runners.
const DEVICE_ADAPTIVE_FLOOR: f64 = 1.35;

/// Speedup entries whose value depends on the host's core count (the
/// parallel drives clamp to `available_parallelism`), so a baseline
/// recorded on one machine must not gate another. They are covered by the
/// absolute floors instead of the baseline band.
const SHAPE_DEPENDENT: [&str; 2] = ["repl-sharded", "device-sharded"];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let write = args.iter().any(|a| a == "--write");
    let check = args.iter().any(|a| a == "--check");
    let gate_only = args.iter().any(|a| a == "--gate-sharded");

    let report = if gate_only {
        sim_throughput::run_sharded_only()
    } else {
        sim_throughput::run()
    };
    print_report(&report);
    enforce_floors(&report, !gate_only);

    if write {
        std::fs::write(BENCH_PATH, bench_file(&report)).expect("write BENCH_sim_throughput.json");
        eprintln!("wrote {BENCH_PATH}");
    }
    if check {
        let baseline =
            std::fs::read_to_string(BENCH_PATH).expect("read tracked BENCH_sim_throughput.json");
        let mut failures = Vec::new();
        for s in &report.speedups {
            if SHAPE_DEPENDENT.contains(&s.mix.as_str()) {
                continue;
            }
            let Some(base) = baseline_ratio(&baseline, &s.mix) else {
                failures.push(format!("mix {:?} missing from baseline", s.mix));
                continue;
            };
            if s.ratio < base * REGRESSION_FLOOR {
                failures.push(format!(
                    "mix {:?} regressed: speedup {:.2}x vs baseline {:.2}x",
                    s.mix, s.ratio, base
                ));
            }
        }
        assert!(
            failures.is_empty(),
            "kernel throughput regressions:\n  {}",
            failures.join("\n  ")
        );
        eprintln!("check passed: no mix regressed >20% vs baseline ratios");
    }
}

/// Enforces the absolute speedup floors (release builds only — debug
/// builds measure the assertion machinery, not the kernel). `full` is
/// false under `--gate-sharded`, where the flat mixes did not run.
fn enforce_floors(report: &Report, full: bool) {
    if cfg!(debug_assertions) {
        eprintln!("(debug build: skipping the absolute speedup floors)");
        return;
    }
    if full {
        let repl = ratio_of(&report.speedups, "repl").expect("repl mix always runs");
        assert!(
            repl >= REPL_FLOOR,
            "rebuilt kernel is only {repl:.2}x the legacy kernel on the repl mix \
             (floor is {REPL_FLOOR}x)"
        );
    }
    let parity = ratio_of(&report.speedups, "repl-sharded").expect("repl-sharded mix always runs");
    assert!(
        parity >= SHARDED_PARITY_FLOOR,
        "sharded-par4 fell to {parity:.2}x of sharded-seq on the repl-sharded mix \
         (floor is {SHARDED_PARITY_FLOOR}x): parallel regressed below sequential"
    );
    let batching = ratio_of(&report.speedups, "device-sharded-adaptive")
        .expect("device-sharded mix always runs");
    assert!(
        batching >= DEVICE_ADAPTIVE_FLOOR,
        "adaptive round batching is only {batching:.2}x the lock-step baseline on the \
         device-sharded mix (floor is {DEVICE_ADAPTIVE_FLOOR}x)"
    );
    eprintln!(
        "sharded floors passed: repl-sharded par4/seq {parity:.2}x, \
         device-sharded adaptive/seq {batching:.2}x"
    );
}

/// Prints the human tables and the deterministic `json:` line.
fn print_report(report: &Report) {
    println!(
        "Event-kernel throughput: rebuilt (wheel + closed-form) vs legacy (heap + event-chain)\n"
    );
    println!("host parallelism: {}\n", host_parallelism());
    let rows: Vec<Vec<String>> = report
        .perf
        .iter()
        .map(|r| {
            vec![
                r.mix.clone(),
                r.kernel.clone(),
                r.events.to_string(),
                format!("{:.1}", r.wall_ms),
                format!("{:.0}", r.events_per_sec),
                format!("{:.1}", r.sim_secs_per_sec),
            ]
        })
        .collect();
    twob_bench::print_table(
        &["mix", "kernel", "events", "wall ms", "events/s", "sim s/s"],
        &rows,
    );
    println!();
    let ratios: Vec<Vec<String>> = report
        .speedups
        .iter()
        .map(|s| vec![s.mix.clone(), format!("{:.2}x", s.ratio)])
        .collect();
    twob_bench::print_table(&["mix", "speedup"], &ratios);
    println!(
        "\njson: {}",
        serde_json::to_string(&report.det).expect("serialize deterministic rows")
    );
}

/// Worker threads the host can actually run — recorded in the BENCH file
/// so a reader can tell whether the parallel rows ran threaded or clamped
/// to the sequential loop.
fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Renders the tracked BENCH file: perf rows plus speedup ratios.
fn bench_file(report: &Report) -> String {
    #[derive(Debug)]
    #[allow(dead_code)] // fields are read through Debug by the serializer
    struct BenchFile<'a> {
        schema: &'a str,
        host_parallelism: usize,
        rows: &'a [sim_throughput::PerfRow],
        speedups: &'a [Speedup],
    }
    let mut text = serde_json::to_string(&BenchFile {
        schema: "sim-throughput-v2",
        host_parallelism: host_parallelism(),
        rows: &report.perf,
        speedups: &report.speedups,
    })
    .expect("serialize bench file");
    text.push('\n');
    text
}

fn ratio_of(speedups: &[Speedup], mix: &str) -> Option<f64> {
    speedups.iter().find(|s| s.mix == mix).map(|s| s.ratio)
}

/// Extracts `{"mix":"<mix>","ratio":<f64>}` from the baseline file. The
/// vendored serde stand-in cannot parse JSON, so this leans on the exact
/// shape [`bench_file`] writes.
fn baseline_ratio(baseline: &str, mix: &str) -> Option<f64> {
    let needle = format!("{{\"mix\":\"{mix}\",\"ratio\":");
    let at = baseline.find(&needle)? + needle.len();
    let rest = &baseline[at..];
    let end = rest.find(['}', ','])?;
    rest[..end].trim().parse().ok()
}
