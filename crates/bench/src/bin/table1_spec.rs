//! Prints paper Table I: the 2B-SSD specification.

fn main() {
    println!("Table I: 2B-SSD specification\n");
    let rows: Vec<Vec<String>> = twob_bench::table1::rows()
        .into_iter()
        .map(|(k, v)| vec![k, v])
        .collect();
    twob_bench::print_table(&["Item", "Description"], &rows);
}
