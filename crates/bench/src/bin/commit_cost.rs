//! Regenerates the paper's §V-C claim: transaction-commit overhead reduced
//! by up to 26× versus conventional block logging.

fn main() {
    let rows = twob_bench::commit_cost::run();
    println!("Commit-path cost per scheme (us) and reduction factors\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.payload.to_string(),
                format!("{:.1}", r.dc_us),
                format!("{:.1}", r.ull_us),
                format!("{:.2}", r.ba_us),
                format!("{:.1}x", r.reduction_vs_dc),
                format!("{:.1}x", r.reduction_vs_ull),
            ]
        })
        .collect();
    twob_bench::print_table(
        &[
            "payload(B)",
            "DC sync",
            "ULL sync",
            "BA commit",
            "vs DC",
            "vs ULL",
        ],
        &table,
    );
    println!(
        "\njson: {}",
        serde_json::to_string(&rows).expect("serialize commit costs")
    );
}
