//! Cluster sweep: fleet-scale commit and follower-read latency on BA vs
//! block log hosts across node counts and placements, plus the pinned
//! cluster fault sweep (node/rack/zone cuts, live shard moves).
//!
//! Flags:
//!
//! - `--gate-cluster` — enforce the cluster read floor: at every node
//!   count and placement the BA hosts' follower-read p99 must undercut
//!   the block hosts', and the parallel PDES drive must reproduce the
//!   sequential run exactly.
//!
//! Virtual-time only, so the `json:` line is byte-stable across runs and
//! machines; CI byte-diffs two invocations.

fn main() {
    let gate = std::env::args().any(|a| a == "--gate-cluster");
    let sweep = twob_bench::cluster_sweep::run();
    println!(
        "Cluster sweep: {} shards x {} commits, 3-zone fleets (seed {:#x})\n",
        twob_bench::cluster_sweep::SHARDS,
        twob_bench::cluster_sweep::COMMITS_PER_SHARD,
        twob_bench::cluster_sweep::SEED,
    );
    let table: Vec<Vec<String>> = sweep
        .rows
        .iter()
        .map(|r| {
            vec![
                r.nodes.to_string(),
                r.placement.clone(),
                r.scheme.clone(),
                r.released.to_string(),
                r.reads.to_string(),
                format!("{:.2}", r.commit_p50_us),
                format!("{:.2}", r.read_p99_us),
            ]
        })
        .collect();
    twob_bench::print_table(
        &[
            "nodes",
            "placement",
            "ship",
            "released",
            "reads",
            "commit p50 us",
            "read p99 us",
        ],
        &table,
    );
    println!(
        "\nfault sweep: {} runs ({} with a live shard move), {} commits, {} reads, digest {}",
        sweep.fault_runs,
        sweep.fault_moved,
        sweep.fault_released,
        sweep.fault_reads,
        sweep.fault_digest
    );
    if gate {
        eprintln!("{}", twob_bench::cluster_sweep::check_gate(&sweep));
    }
    println!(
        "\njson: {}",
        serde_json::to_string(&sweep).expect("serialize cluster sweep")
    );
}
