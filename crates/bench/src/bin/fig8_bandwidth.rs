//! Regenerates paper Fig 8: bandwidth versus request size at QD1.

fn main() {
    let rows = twob_bench::fig8::run();
    println!("Fig 8(a): read bandwidth vs request size (MB/s)\n");
    let read_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}K", r.size >> 10),
                format!("{:.0}", r.ull_read_mbs),
                format!("{:.0}", r.dc_read_mbs),
                format!("{:.0}", r.twob_internal_read_mbs),
            ]
        })
        .collect();
    twob_bench::print_table(
        &["size", "ULL-SSD", "DC-SSD", "2B internal (BA_PIN)"],
        &read_rows,
    );

    println!("\nFig 8(b): write bandwidth vs request size (MB/s)\n");
    let write_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}K", r.size >> 10),
                format!("{:.0}", r.ull_write_mbs),
                format!("{:.0}", r.dc_write_mbs),
                format!("{:.0}", r.twob_internal_write_mbs),
            ]
        })
        .collect();
    twob_bench::print_table(
        &["size", "ULL-SSD", "DC-SSD", "2B internal (BA_FLUSH)"],
        &write_rows,
    );

    println!(
        "\njson: {}",
        serde_json::to_string(&rows).expect("serialize fig8")
    );
}
