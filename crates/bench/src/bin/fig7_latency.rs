//! Regenerates paper Fig 7: read/write latency versus request size.

fn main() {
    let rows = twob_bench::fig7::run();
    println!("Fig 7(a): read latency vs request size (us)\n");
    let read_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.size.to_string(),
                format!("{:.1}", r.dc_read_us),
                format!("{:.1}", r.ull_read_us),
                format!("{:.1}", r.mmio_read_us),
                format!("{:.1}", r.dma_read_us),
            ]
        })
        .collect();
    twob_bench::print_table(
        &["size(B)", "DC-SSD", "ULL-SSD", "MMIO", "read-DMA"],
        &read_rows,
    );

    println!("\nFig 7(b): write latency vs request size (us)\n");
    let write_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.size.to_string(),
                format!("{:.1}", r.dc_write_us),
                format!("{:.1}", r.ull_write_us),
                format!("{:.2}", r.mmio_write_us),
                format!("{:.2}", r.persistent_mmio_write_us),
            ]
        })
        .collect();
    twob_bench::print_table(
        &["size(B)", "DC-SSD", "ULL-SSD", "MMIO", "MMIO+sync"],
        &write_rows,
    );

    println!(
        "\njson: {}",
        serde_json::to_string(&rows).expect("serialize fig7")
    );
}
