//! Tier sweep: BA-MMIO vs CXL.mem vs block commits across the three
//! engines and the queue-depth ladder, the serve-mode rung per scheme,
//! the [`TieredWal`] hot/cold cycle through both byte front-ends, and the
//! sharded drive × placement agreement digest for the CXL path.
//!
//! Flags:
//!
//! - `--write` — refresh `BENCH_tier_sweep.json` at the repo root;
//! - `--gate-tier` — enforce the tiering headline: the CXL hot tier's
//!   p99 must beat block's in every closed-loop cell and in serve mode,
//!   every tier path's hot read must beat its cold read, and every
//!   sharded drive and placement must agree on one digest.
//!
//! Everything here is virtual-time measurement, so the `json:` line is
//! byte-stable across runs and machines, and CI byte-diffs two
//! invocations.
//!
//! [`TieredWal`]: twob_cxl::TieredWal

use serde::Serialize;
use twob_bench::tier_sweep::{
    self, TierPathRow, TierRow, TierServeRow, TierShardedAgreement, TierSweep, QDS, SEED,
    SERVE_RATE, TENANTS,
};

/// Tracked baseline location, resolved relative to this crate so the
/// binary works from any working directory.
const BENCH_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_tier_sweep.json");

/// Everything the sweep determined, all of it deterministic.
#[derive(Debug, Serialize)]
#[allow(dead_code)] // fields are read through Debug by the serializer
struct Outcome {
    schema: &'static str,
    tenants: u16,
    qds: Vec<usize>,
    serve_rate_per_tenant: u64,
    seed: u64,
    rows: Vec<TierRow>,
    serve: Vec<TierServeRow>,
    paths: Vec<TierPathRow>,
    sharded: TierShardedAgreement,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let write = args.iter().any(|a| a == "--write");
    let gate = args.iter().any(|a| a == "--gate-tier");

    let TierSweep {
        rows,
        serve,
        paths,
        sharded,
    } = tier_sweep::run();
    let outcome = Outcome {
        schema: "tier-sweep-v1",
        tenants: TENANTS,
        qds: QDS.to_vec(),
        serve_rate_per_tenant: SERVE_RATE,
        seed: SEED,
        rows,
        serve,
        paths,
        sharded,
    };
    print_outcome(&outcome);

    if gate {
        let sweep = TierSweep {
            rows: outcome.rows.clone(),
            serve: outcome.serve.clone(),
            paths: outcome.paths.clone(),
            sharded: outcome.sharded.clone(),
        };
        if let Err(violation) = tier_sweep::gate(&sweep) {
            panic!("tier gate failed: {violation}");
        }
        for path in &outcome.paths {
            assert!(
                path.hot_read_us < path.cold_read_us,
                "tier gate failed: {} hot read {} us did not beat cold read {} us",
                path.front_end,
                path.hot_read_us,
                path.cold_read_us
            );
        }
        eprintln!(
            "tier gate passed: cxl p99 beats block in all {} cells and serve mode, \
             {} sharded drives x {} placements digest-equal at {} tenants",
            outcome.rows.len() / 3,
            outcome.sharded.drives.len(),
            outcome.sharded.shards.len(),
            outcome.sharded.tenants
        );
    }
    if write {
        let mut text = serde_json::to_string(&outcome).expect("serialize bench file");
        text.push('\n');
        std::fs::write(BENCH_PATH, text).expect("write BENCH_tier_sweep.json");
        eprintln!("wrote {BENCH_PATH}");
    }
}

/// Prints the human tables and the deterministic `json:` line.
fn print_outcome(outcome: &Outcome) {
    println!(
        "Tier sweep: {} tenants, QDs {:?}, engines pg/rocks/redis, seed {}\n",
        outcome.tenants, outcome.qds, outcome.seed
    );
    let rows: Vec<Vec<String>> = outcome
        .rows
        .iter()
        .map(|r| {
            vec![
                r.engine.clone(),
                r.qd.to_string(),
                r.scheme.clone(),
                r.commits.to_string(),
                format!("{:.1}", r.grouped_pct),
                format!("{:.2}", r.p50_us),
                format!("{:.2}", r.p99_us),
                format!("{:.0}", r.commits_per_sec),
            ]
        })
        .collect();
    twob_bench::print_table(
        &[
            "engine",
            "qd",
            "scheme",
            "commits",
            "grp %",
            "p50 us",
            "p99 us",
            "commits/s",
        ],
        &rows,
    );
    println!(
        "\nserve mode: {} commits/s/tenant offered",
        outcome.serve_rate_per_tenant
    );
    let serve_rows: Vec<Vec<String>> = outcome
        .serve
        .iter()
        .map(|r| {
            vec![
                r.scheme.clone(),
                r.offered.to_string(),
                r.admitted.to_string(),
                r.shed.to_string(),
                format!("{:.2}", r.p50_us),
                format!("{:.2}", r.p99_us),
                format!("{:.2}", r.p999_us),
            ]
        })
        .collect();
    twob_bench::print_table(
        &[
            "scheme", "offered", "admitted", "shed", "p50 us", "p99 us", "p999 us",
        ],
        &serve_rows,
    );
    println!("\ntier paths (hot tail, demote to NAND, promote back):");
    let path_rows: Vec<Vec<String>> = outcome
        .paths
        .iter()
        .map(|p| {
            vec![
                p.front_end.clone(),
                format!("{:.2}", p.commit_us),
                format!("{:.2}", p.cold_read_us),
                format!("{:.2}", p.hot_read_us),
                p.promotions.to_string(),
                p.demotions.to_string(),
                p.hot_hits.to_string(),
                p.cold_hits.to_string(),
            ]
        })
        .collect();
    twob_bench::print_table(
        &[
            "front-end",
            "commit us",
            "cold rd us",
            "hot rd us",
            "promo",
            "demo",
            "hot",
            "cold",
        ],
        &path_rows,
    );
    println!(
        "\nsharded agreement: {} tenants x {} groups, shards {:?}, drives [{}] all at digest {}",
        outcome.sharded.tenants,
        outcome.sharded.groups,
        outcome.sharded.shards,
        outcome.sharded.drives.join(", "),
        outcome.sharded.digest
    );
    println!(
        "\njson: {}",
        serde_json::to_string(outcome).expect("serialize outcome")
    );
}
