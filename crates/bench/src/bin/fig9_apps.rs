//! Regenerates paper Fig 9: application-level throughput on PostgreSQL
//! (Linkbench), RocksDB (YCSB-A), and Redis (YCSB-A).

use twob_bench::fig9::EngineSeries;

fn series_row(label: String, s: &EngineSeries) -> Vec<String> {
    vec![
        label,
        format!("{:.0}", s.dc),
        format!("{:.0}", s.ull),
        format!("{:.0}", s.twob),
        format!("{:.0}", s.async_max),
        format!("{:.2}x", s.gain_vs_dc()),
        format!("{:.2}x", s.gain_vs_ull()),
        format!("{:.0}%", s.fraction_of_async() * 100.0),
    ]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let report = twob_bench::fig9::run(quick);
    let headers = [
        "workload", "DC-SSD", "ULL-SSD", "2B-SSD", "ASYNC", "2B/DC", "2B/ULL", "of ASYNC",
    ];

    println!("Fig 9: application throughput (ops/s or txns/s)\n");
    let mut rows = vec![series_row("PostgreSQL+Linkbench".to_string(), &report.pg)];
    for (payload, s) in &report.rocks {
        rows.push(series_row(format!("RocksDB+YCSB-A {payload}B"), s));
    }
    for (payload, s) in &report.redis {
        rows.push(series_row(format!("Redis+YCSB-A {payload}B"), s));
    }
    twob_bench::print_table(&headers, &rows);

    println!(
        "\njson: {}",
        serde_json::to_string(&report).expect("serialize fig9")
    );
}
