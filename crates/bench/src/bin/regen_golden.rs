//! Regenerates every golden fixture under `tests/golden/` from the current
//! simulator — all of them, in one invocation, reporting per file whether
//! it changed.
//!
//! Run after an *intentional* timing change, then review the diff:
//!
//! ```text
//! cargo run --release -p twob-bench --bin regen_golden
//! git diff crates/bench/tests/golden/
//! ```
//!
//! The golden tests in `tests/golden.rs` pin these files byte-for-byte, so
//! an unintentional kernel drift fails tests instead of silently shifting
//! figures.

use serde::Serialize;

/// Captures one fixture and reports `new` / `changed` / `unchanged`
/// against what is on disk. Returns whether the file's bytes moved.
fn write_fixture<T: Serialize + std::fmt::Debug>(name: &str, value: &T) -> bool {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/");
    let path = format!("{dir}{name}.json");
    let json = serde_json::to_string(value).expect("serialize fixture");
    let fresh = format!("{json}\n");
    let current = std::fs::read_to_string(&path).ok();
    let status = match &current {
        None => "new",
        Some(old) if *old != fresh => "changed",
        Some(_) => "unchanged",
    };
    if current.as_deref() != Some(fresh.as_str()) {
        std::fs::write(&path, &fresh).unwrap_or_else(|e| panic!("write {path}: {e}"));
    }
    println!("{status:>9}  {name}.json ({} bytes)", fresh.len());
    status != "unchanged"
}

fn main() {
    let mut moved = 0;
    moved += write_fixture("fig7_latency", &twob_bench::fig7::run()) as u32;
    moved += write_fixture("fig9_apps", &twob_bench::fig9::run(false)) as u32;
    moved += write_fixture("gc_interference", &twob_bench::gc_interference::run()) as u32;
    moved += write_fixture("tenant_sweep", &twob_bench::tenant_sweep::run()) as u32;
    moved += write_fixture("repl_sweep", &twob_bench::repl_sweep::run()) as u32;
    moved += write_fixture("serve_sweep", &twob_bench::serve_sweep::run()) as u32;
    moved += write_fixture("cluster_sweep", &twob_bench::cluster_sweep::run()) as u32;
    moved += write_fixture("tier_sweep", &twob_bench::tier_sweep::run()) as u32;
    if moved == 0 {
        println!("\nall fixtures already match the current simulator");
    } else {
        println!("\n{moved} fixture(s) moved — review `git diff crates/bench/tests/golden/`");
    }
}
