//! Regenerates every golden fixture under `tests/golden/` from the current
//! simulator.
//!
//! Run after an *intentional* timing change, then review the diff:
//!
//! ```text
//! cargo run --release -p twob-bench --bin regen_golden
//! git diff crates/bench/tests/golden/
//! ```
//!
//! The golden tests in `tests/golden.rs` pin these files byte-for-byte, so
//! an unintentional kernel drift fails tests instead of silently shifting
//! figures.

use serde::Serialize;

fn write_fixture<T: Serialize + std::fmt::Debug>(name: &str, value: &T) {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/");
    let path = format!("{dir}{name}.json");
    let json = serde_json::to_string(value).expect("serialize fixture");
    std::fs::write(&path, format!("{json}\n")).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path} ({} bytes)", json.len() + 1);
}

fn main() {
    write_fixture("fig7_latency", &twob_bench::fig7::run());
    write_fixture("fig9_apps", &twob_bench::fig9::run(false));
    write_fixture("gc_interference", &twob_bench::gc_interference::run());
    write_fixture("tenant_sweep", &twob_bench::tenant_sweep::run());
}
