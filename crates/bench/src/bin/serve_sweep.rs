//! Serve sweep: offered-load ladder for BA-WAL vs block-WAL commits on
//! the open-loop serving stack, reporting each scheme's knee — the
//! highest offered rate that sustained the p99 SLO without shedding —
//! plus the fleet-scale sharded-agreement digest (1024 tenants across 8
//! die-group shards, lock-step ≡ adaptive ≡ parallel).
//!
//! Flags:
//!
//! - `--write` — refresh `BENCH_serve_sweep.json` at the repo root;
//! - `--gate-serve` — enforce the serving floor: the BA knee must sit at
//!   or above the block knee (the paper's latency gap, restated as
//!   sustainable serving capacity), and every sharded drive must agree.
//!
//! Everything here is virtual-time measurement, so the `json:` line —
//! rows, knees, and the sharded digest — is byte-stable across runs and
//! machines, and CI byte-diffs two invocations.

use serde::Serialize;
use twob_bench::serve_sweep::{
    self, ServeRow, ShardedAgreement, SHARDED_GROUPS, SHARDED_RATE, SHARDED_TENANTS, SLO_P99_US,
    TENANTS,
};
use twob_workloads::WalScheme;

/// Tracked baseline location, resolved relative to this crate so the
/// binary works from any working directory.
const BENCH_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve_sweep.json");

/// Everything the sweep determined, all of it deterministic.
#[derive(Debug, Serialize)]
#[allow(dead_code)] // fields are read through Debug by the serializer
struct Outcome {
    schema: &'static str,
    tenants: u16,
    slo_p99_us: f64,
    rows: Vec<ServeRow>,
    ba_knee: Option<u64>,
    block_knee: Option<u64>,
    sharded: ShardedAgreement,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let write = args.iter().any(|a| a == "--write");
    let gate = args.iter().any(|a| a == "--gate-serve");

    let rows = serve_sweep::run();
    let ba_knee = serve_sweep::knee(&rows, WalScheme::Ba);
    let block_knee = serve_sweep::knee(&rows, WalScheme::Block);
    let sharded = serve_sweep::sharded_agreement(SHARDED_TENANTS, SHARDED_GROUPS, SHARDED_RATE);
    let outcome = Outcome {
        schema: "serve-sweep-v1",
        tenants: TENANTS,
        slo_p99_us: SLO_P99_US,
        rows,
        ba_knee,
        block_knee,
        sharded,
    };
    print_outcome(&outcome);

    if gate {
        let ba = outcome.ba_knee.expect("ba sustained no rung at all");
        let block = outcome.block_knee.expect("block sustained no rung at all");
        assert!(
            ba >= block,
            "serving gate failed: ba knee {ba} ops/s/tenant fell below block knee {block}"
        );
        eprintln!(
            "serve gate passed: ba knee {ba} >= block knee {block} ops/s/tenant, \
             {} sharded drives digest-equal at {} tenants",
            outcome.sharded.drives.len(),
            outcome.sharded.tenants
        );
    }
    if write {
        let mut text = serde_json::to_string(&outcome).expect("serialize bench file");
        text.push('\n');
        std::fs::write(BENCH_PATH, text).expect("write BENCH_serve_sweep.json");
        eprintln!("wrote {BENCH_PATH}");
    }
}

/// Prints the human table, the knees, the sharded-agreement line, and the
/// deterministic `json:` line.
fn print_outcome(outcome: &Outcome) {
    println!(
        "Serve sweep: {} tenants, Poisson arrivals, p99 SLO {} us\n",
        outcome.tenants, outcome.slo_p99_us
    );
    let rows: Vec<Vec<String>> = outcome
        .rows
        .iter()
        .map(|r| {
            vec![
                r.scheme.clone(),
                r.rate_per_tenant.to_string(),
                r.offered.to_string(),
                r.admitted.to_string(),
                r.deferred.to_string(),
                r.shed.to_string(),
                format!("{:.2}", r.p50_us),
                format!("{:.2}", r.p99_us),
                format!("{:.2}", r.p999_us),
                if r.slo_ok { "met" } else { "MISSED" }.to_string(),
            ]
        })
        .collect();
    twob_bench::print_table(
        &[
            "scheme", "rate/t", "offered", "admitted", "deferred", "shed", "p50 us", "p99 us",
            "p999 us", "slo",
        ],
        &rows,
    );
    let show = |k: Option<u64>| k.map_or("none".to_string(), |r| format!("{r} ops/s/tenant"));
    println!(
        "\nknee (max sustainable offered load): ba {}, block {}",
        show(outcome.ba_knee),
        show(outcome.block_knee)
    );
    println!(
        "sharded agreement: {} tenants x {} groups, drives [{}] all at digest {}",
        outcome.sharded.tenants,
        outcome.sharded.groups,
        outcome.sharded.drives.join(", "),
        outcome.sharded.digest
    );
    println!(
        "\njson: {}",
        serde_json::to_string(outcome).expect("serialize outcome")
    );
}
