//! Regenerates paper Fig 10: hybrid store (2B-SSD) versus heterogeneous
//! memory (PM + block SSD) on PostgreSQL + Linkbench.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let r = twob_bench::fig10::run(quick);
    println!("Fig 10: normalized Linkbench throughput (baseline = 2B-SSD)\n");
    let rows = vec![
        vec!["baseline (2B-SSD)".to_string(), "1.000".to_string()],
        vec!["PM + DC-SSD".to_string(), format!("{:.3}", r.pm_dc)],
        vec!["PM + ULL-SSD".to_string(), format!("{:.3}", r.pm_ull)],
        vec!["ASYNC".to_string(), format!("{:.3}", r.async_max)],
    ];
    twob_bench::print_table(&["configuration", "normalized throughput"], &rows);
    println!("\nbaseline absolute: {:.0} txns/s", r.baseline_tps);
    println!(
        "\njson: {}",
        serde_json::to_string(&r).expect("serialize fig10")
    );
}
