//! Ablation studies of the design choices DESIGN.md calls out.

use twob_bench::ablations;

fn main() {
    println!("Ablation 1: BA-WAL double buffering (paper §IV-B)\n");
    let db = ablations::double_buffering();
    twob_bench::print_table(
        &["buffering", "commits/s", "worst commit (us)"],
        &[
            vec![
                "double".to_string(),
                format!("{:.0}", db.double_ops_per_sec),
                format!("{:.1}", db.double_worst_us),
            ],
            vec![
                "single".to_string(),
                format!("{:.0}", db.single_ops_per_sec),
                format!("{:.1}", db.single_worst_us),
            ],
        ],
    );

    println!("\nAblation 2: DC-SSD sequential read-ahead (paper §V-B)\n");
    let ra = ablations::read_ahead();
    twob_bench::print_table(
        &["read-ahead", "mean seq 4K read (us)"],
        &[
            vec!["on".to_string(), format!("{:.1}", ra.with_read_ahead_us)],
            vec![
                "off".to_string(),
                format!("{:.1}", ra.without_read_ahead_us),
            ],
        ],
    );

    println!("\nAblation 3: log write amplification (paper §IV-A)\n");
    let waf = ablations::waf();
    twob_bench::print_table(
        &["scheme", "log WAF"],
        &[
            vec!["block WAL".to_string(), format!("{:.1}", waf.block_waf)],
            vec!["BA-WAL".to_string(), format!("{:.1}", waf.ba_waf)],
        ],
    );

    println!("\nAblation 4: commit tail latency under 8 clients (paper §IV-A)\n");
    let tails = ablations::tail_latency();
    let rows: Vec<Vec<String>> = tails
        .iter()
        .map(|r| {
            vec![
                r.scheme.clone(),
                format!("{:.2}", r.p50_us),
                format!("{:.2}", r.p99_us),
                format!("{:.2}", r.max_us),
                format!("{:.1}", r.device_waf),
            ]
        })
        .collect();
    twob_bench::print_table(
        &["scheme", "p50 (us)", "p99 (us)", "max (us)", "log WAF"],
        &rows,
    );

    println!("\nAblation 5: filesystem metadata journaling (paper §IV)\n");
    let fsj = ablations::fs_journaling();
    twob_bench::print_table(
        &["journal", "metadata ops/s"],
        &[
            vec![
                "block (DC-SSD)".to_string(),
                format!("{:.0}", fsj.block_ops_per_sec),
            ],
            vec![
                "BA-WAL (2B-SSD)".to_string(),
                format!("{:.0}", fsj.ba_ops_per_sec),
            ],
        ],
    );

    println!("\nAblation 6: BA-WAL window size sensitivity (paper §VI)\n");
    let bs = ablations::buffer_size();
    let rows: Vec<Vec<String>> = bs
        .rows
        .iter()
        .map(|(pages, tput)| vec![format!("{} pages", pages), format!("{tput:.0}")])
        .collect();
    twob_bench::print_table(&["window", "commits/s"], &rows);

    println!("\nAblation 7: group commit vs per-record commits\n");
    let gc = ablations::group_commit();
    twob_bench::print_table(
        &["scheme", "records/s (durable)"],
        &[
            vec![
                "DC-SSD sync, solo".to_string(),
                format!("{:.0}", gc.dc_solo),
            ],
            vec![
                "DC-SSD sync, batches of 16".to_string(),
                format!("{:.0}", gc.dc_grouped),
            ],
            vec![
                "BA-WAL, per-record durable".to_string(),
                format!("{:.0}", gc.ba_solo),
            ],
        ],
    );

    println!("\nAblation 8: bulk block write + pinned small reads (paper §VI)\n");
    let pr = ablations::pinned_reads();
    twob_bench::print_table(
        &["path", "mean 64 B read (us)"],
        &[
            vec![
                "block (whole-page NVMe read)".to_string(),
                format!("{:.2}", pr.block_read_us),
            ],
            vec![
                "pinned MMIO window".to_string(),
                format!("{:.2}", pr.pinned_mmio_us),
            ],
        ],
    );
    println!("one-time pin cost: {:.1} us", pr.pin_cost_us);

    println!("\nAblation 9: internal-datapath interference on block I/O (paper §VI)\n");
    let intf = ablations::interference();
    twob_bench::print_table(
        &["block 8-page reads", "MB/s"],
        &[
            vec!["alone".to_string(), format!("{:.0}", intf.block_alone_mbs)],
            vec![
                "with saturating BA_PIN/BA_FLUSH stream".to_string(),
                format!("{:.0}", intf.block_contended_mbs),
            ],
        ],
    );

    println!("\nAblation 10: random 4 KiB read throughput vs queue depth\n");
    let qd = ablations::queue_depth();
    let rows: Vec<Vec<String>> = qd
        .rows
        .iter()
        .map(|(depth, ull, dc)| vec![depth.to_string(), format!("{ull:.0}"), format!("{dc:.0}")])
        .collect();
    twob_bench::print_table(&["QD", "ULL-SSD kIOPS", "DC-SSD kIOPS"], &rows);
}
