//! Serve sweep: the knee — maximum sustainable offered load at a fixed
//! p99 SLO — for BA-WAL vs block-WAL commits.
//!
//! The paper's §V numbers are closed-loop: each client waits for its
//! previous commit, so offered load self-throttles to whatever the device
//! sustains and the tail never sees a backlog. A serving system is
//! open-loop — arrivals come from the outside world at a rate the device
//! does not control — so the question that matters is different: *how much
//! offered load can the device accept before the commit tail breaks the
//! SLO or admission control starts shedding?* That crossover is the knee.
//!
//! The sweep climbs an offered-load ladder ([`RATES`], per tenant, Poisson
//! arrivals over [`TENANTS`] tenants) under both commit schemes on the
//! serving stack's [`ServiceDriver`]:
//!
//! - **ba** — each admitted commit is a byte-addressable store into the
//!   tenant's pinned BA-buffer window, durable at DRAM speed;
//! - **block** — each admitted commit is a 4 KiB page write plus flush on
//!   the same chassis's block path.
//!
//! The knee for a scheme is the highest rung whose run both met the
//! [`SLO_P99_US`] tail bound and shed nothing. BA's knee must sit at or
//! above block's — the paper's latency gap, restated as sustainable
//! serving capacity — and CI enforces exactly that via the binary's
//! `--gate-serve` flag.
//!
//! A second section re-runs one rung at fleet scale on the sharded device
//! model ([`SHARDED_TENANTS`] tenants across [`SHARDED_GROUPS`] die-group
//! shards) under every drive — lock-step, adaptive round-batched, and the
//! parallel thread sweep — demanding one identical completion digest from
//! all of them ([`sharded_agreement`]).

use serde::{Deserialize, Serialize};
use twob_workloads::{
    ArrivalConfig, ArrivalKind, ServeConfig, ServeReport, ServiceDriver, ShardDrive, WalScheme,
};

/// Tenants offering load in the flat (single-device) ladder.
pub const TENANTS: u16 = 64;

/// The offered-load ladder, in commits per second per tenant.
pub const RATES: [u64; 5] = [5_000, 10_000, 20_000, 40_000, 80_000];

/// The p99 commit-latency SLO, µs. Tight on purpose: commits on this
/// model complete in single-digit microseconds until the device backs up,
/// and a bound between the BA store (~0.1 µs) and the block write+flush
/// tail (~3–4.4 µs under load) is what lets the knee *separate* the
/// schemes rather than collapse onto the admission cap.
pub const SLO_P99_US: f64 = 4.0;

/// Seed shared by every cell, so schemes see identical arrival streams.
pub const SEED: u64 = 61;

/// Tenants in the fleet-scale sharded-agreement run.
pub const SHARDED_TENANTS: u16 = 1024;

/// Die-group shards the fleet is placed across.
pub const SHARDED_GROUPS: usize = 8;

/// Per-tenant offered rate of the sharded-agreement run.
pub const SHARDED_RATE: u64 = 20_000;

/// One `(scheme, offered rate)` rung of the ladder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeRow {
    /// Scheme label (`"ba"` or `"block"`).
    pub scheme: String,
    /// Offered rate, commits per second per tenant.
    pub rate_per_tenant: u64,
    /// Arrivals the processes offered over the horizon.
    pub offered: u64,
    /// Arrivals admission control accepted.
    pub admitted: u64,
    /// Admitted arrivals that waited for a later window.
    pub deferred: u64,
    /// Arrivals rejected (queue-depth plus BA-buffer triggers).
    pub shed: u64,
    /// Median commit latency, µs.
    pub p50_us: f64,
    /// 99th-percentile commit latency, µs.
    pub p99_us: f64,
    /// 99.9th-percentile commit latency, µs.
    pub p999_us: f64,
    /// Admitted throughput actually served, commits per second.
    pub admitted_ops_per_sec: f64,
    /// Whether the rung sustained the SLO: p99 within bound, zero shed.
    pub slo_ok: bool,
}

/// The serving configuration of one rung.
fn config(scheme: WalScheme, rate: u64) -> ServeConfig {
    let mut cfg = ServeConfig::standard(
        TENANTS,
        scheme,
        ArrivalConfig::new(ArrivalKind::Poisson, rate as f64, SEED),
    );
    cfg.slo_p99_us = SLO_P99_US;
    cfg
}

/// Reduces a [`ServeReport`] to the sweep's row shape.
fn row_of(rate: u64, report: &ServeReport) -> ServeRow {
    assert_eq!(report.clamped_posts, 0, "serve rung clamped posts");
    ServeRow {
        scheme: report.scheme.clone(),
        rate_per_tenant: rate,
        offered: report.offered,
        admitted: report.admitted,
        deferred: report.deferred,
        shed: report.shed_queue + report.shed_buffer,
        p50_us: report.p50_us,
        p99_us: report.p99_us,
        p999_us: report.p999_us,
        admitted_ops_per_sec: report.admitted_ops_per_sec,
        slo_ok: report.slo_ok,
    }
}

/// Runs one rung of the ladder on a fresh device.
pub fn cell(scheme: WalScheme, rate: u64) -> ServeRow {
    row_of(rate, &ServiceDriver::serve(&config(scheme, rate)))
}

/// Runs the full ladder: both schemes at every offered rate.
pub fn run() -> Vec<ServeRow> {
    let mut rows = Vec::new();
    for &rate in &RATES {
        for scheme in [WalScheme::Ba, WalScheme::Block] {
            rows.push(cell(scheme, rate));
        }
    }
    rows
}

/// The knee for `scheme`: the highest offered rate whose rung sustained
/// the SLO (p99 within bound, nothing shed), if any rung did.
pub fn knee(rows: &[ServeRow], scheme: WalScheme) -> Option<u64> {
    rows.iter()
        .filter(|r| r.scheme == scheme.label() && r.slo_ok)
        .map(|r| r.rate_per_tenant)
        .max()
}

/// The sharded-agreement outcome: every drive of the sharded device model
/// served the same fleet to the same completion digest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardedAgreement {
    /// Fleet size.
    pub tenants: u16,
    /// Die-group shards.
    pub groups: usize,
    /// Drive labels that agreed (lock-step, adaptive, parallel sweep).
    pub drives: Vec<String>,
    /// The completion digest every drive produced, hex.
    pub digest: String,
    /// Commits completed (identical across drives).
    pub completed: u64,
    /// Commits shed by admission control (identical across drives).
    pub shed: u64,
}

/// Serves one BA rung at fleet scale under every sharded drive and
/// demands identical reports from all of them.
///
/// # Panics
///
/// Panics if any drive diverges from the lock-step baseline — on the
/// digest, or on any other report field — or clamps a post into the past.
/// Either is a determinism bug in the sharded executor, not a measurement.
pub fn sharded_agreement(tenants: u16, groups: usize, rate: u64) -> ShardedAgreement {
    let mut cfg = ServeConfig::standard(
        tenants,
        WalScheme::Ba,
        ArrivalConfig::new(ArrivalKind::Poisson, rate as f64, SEED),
    );
    cfg.slo_p99_us = SLO_P99_US;
    let drives = [
        ShardDrive::Lockstep,
        ShardDrive::Adaptive,
        ShardDrive::Parallel(2),
        ShardDrive::Parallel(4),
    ];
    let mut baseline: Option<ServeReport> = None;
    let mut labels = Vec::new();
    for drive in drives {
        let report = ServiceDriver::serve_sharded(&cfg, groups, drive);
        assert_eq!(report.clamped_posts, 0, "{} drive clamped", drive.label());
        if let Some(base) = &baseline {
            assert_eq!(
                report,
                *base,
                "{} drive diverged from the lock-step baseline",
                drive.label()
            );
        } else {
            baseline = Some(report);
        }
        labels.push(drive.label());
    }
    let base = baseline.expect("at least one drive ran");
    ShardedAgreement {
        tenants,
        groups,
        drives: labels,
        digest: format!("{:016x}", base.digest),
        completed: base.completed,
        shed: base.shed_queue + base.shed_buffer,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_rung_is_deterministic() {
        assert_eq!(cell(WalScheme::Ba, RATES[2]), cell(WalScheme::Ba, RATES[2]));
    }

    #[test]
    fn ladder_shape_holds() {
        let rows = run();
        assert_eq!(rows.len(), RATES.len() * 2);
        // Light load sustains the SLO on both paths; the heaviest rung
        // breaks it on both (it sits at the admission cap and sheds).
        for scheme in [WalScheme::Ba, WalScheme::Block] {
            let of = |rate: u64| {
                rows.iter()
                    .find(|r| r.scheme == scheme.label() && r.rate_per_tenant == rate)
                    .unwrap()
                    .clone()
            };
            assert!(of(RATES[0]).slo_ok, "{} light rung", scheme.label());
            assert!(!of(RATES[4]).slo_ok, "{} overload rung", scheme.label());
            assert!(of(RATES[4]).shed > 0, "{} overload sheds", scheme.label());
        }
        // The headline: byte-addressable commits sustain at least the
        // block path's offered load, strictly more on this ladder.
        let ba = knee(&rows, WalScheme::Ba).expect("ba knee");
        let block = knee(&rows, WalScheme::Block).expect("block knee");
        assert!(ba > block, "ba knee {ba} should beat block knee {block}");
    }

    #[test]
    fn sharded_drives_agree_at_test_scale() {
        // Fleet-scale (1024 tenants) runs in the binary; the test pins the
        // same invariant at a size debug builds can afford.
        let agreement = sharded_agreement(64, SHARDED_GROUPS, SHARDED_RATE);
        assert_eq!(agreement.drives.len(), 4);
        assert!(agreement.completed > 0);
    }
}
