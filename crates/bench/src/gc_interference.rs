//! GC interference study: block-path tail latency collapses under churn
//! while the byte path stays flat (the Fig 7/8 asymmetry, under load).
//!
//! The paper's microbenchmarks (Figs 7–8) measure an idle drive; the
//! interesting case for a *dual* interface is a busy one. This experiment
//! fills the drive, then runs seeded 80/20 overwrite churn through the
//! block path with background GC enabled, probing both paths in every
//! window:
//!
//! - block writes ack at write-cache insertion, so GC interference shows
//!   up as *slot wait* — the destage that frees a slot queues behind GC
//!   page moves on the same dies;
//! - block reads schedule NAND sense ops directly, so their completions
//!   carry an explicit `gc_wait` attribution;
//! - BA-path commits (`MMIO store + BA_SYNC`) touch only the PCIe link and
//!   the BA-buffer DRAM, and must not move at all.
//!
//! Each window reports the free-block ratio and cumulative GC counters, so
//! the latency knee lines up with the moment the pool crosses the GC
//! watermark.

use serde::{Deserialize, Serialize};
use twob_core::{TwoBSpec, TwoBSsd};
use twob_ftl::Lba;
use twob_sim::{Histogram, SimTime};
use twob_ssd::{BlockDevice, GcPolicy, SsdConfig};
use twob_workloads::{ChurnConfig, ChurnWorkload};

/// One measurement window of the churn drive.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GcWindowRow {
    /// Window index (fill windows first, then churn).
    pub window: usize,
    /// `"fill"` or `"churn"`.
    pub phase: String,
    /// Free blocks / total blocks at window start.
    pub free_ratio: f64,
    /// Block-path write ack latency, median, in microseconds.
    pub blk_write_p50_us: f64,
    /// Block-path write ack latency, 99th percentile, in microseconds.
    pub blk_write_p99_us: f64,
    /// Block-path read latency, 99th percentile, in microseconds.
    pub blk_read_p99_us: f64,
    /// Mean fraction of read-probe time attributed to GC occupancy.
    pub read_gc_share: f64,
    /// BA-path commit (MMIO store + `BA_SYNC`) latency, 99th percentile,
    /// in microseconds.
    pub ba_p99_us: f64,
    /// Cumulative GC page moves at window end.
    pub gc_pages_moved: u64,
    /// Cumulative block erases at window end.
    pub gc_erases: u64,
}

/// Writes per measurement window.
pub const WINDOW_WRITES: u64 = 64;

/// Overwrite churn issued after the fill, in writes.
pub const CHURN_WRITES: u64 = 1536;

/// Seed of the churn stream.
pub const CHURN_SEED: u64 = 0x2B_55D;

/// Bytes committed through the byte path per probe.
const BA_PROBE_BYTES: usize = 64;

fn us(d: twob_sim::SimDuration) -> f64 {
    d.as_nanos() as f64 / 1e3
}

/// Runs the study: fill, then churn, with both paths probed per window.
pub fn run() -> Vec<GcWindowRow> {
    let cfg = SsdConfig::base_2b()
        .small()
        .with_background_gc(GcPolicy::Greedy);
    let geom = cfg.geometry;
    let total_blocks = geom.blocks_total();
    let mut dev = TwoBSsd::new(cfg, TwoBSpec::small_for_tests());
    let lbas = dev.capacity_pages();

    // Pin one page at the top of LBA space for the byte-path probe; the
    // churn stream below never touches it (block writes there are gated).
    let (eid, pin) = dev
        .ba_pin_auto(SimTime::ZERO, Lba(lbas - 1), 1)
        .expect("pin BA probe page");
    let mut t = pin.complete_at;

    let churn_lbas = lbas - 1;
    let mut workload = ChurnWorkload::new(ChurnConfig::skewed(churn_lbas, CHURN_SEED));
    let fill: Vec<Lba> = workload.fill_sequence().collect();
    let page_size = dev.page_size();

    let mut rows = Vec::new();
    let mut window = 0usize;
    let mut issued = 0u64;
    let total = fill.len() as u64 + CHURN_WRITES;
    while issued < total {
        let phase = if issued < fill.len() as u64 {
            "fill"
        } else {
            "churn"
        };
        let free_ratio = dev.ssd().ftl().free_blocks_now() as f64 / total_blocks as f64;
        let mut blk_writes = Histogram::new();
        let mut blk_reads = Histogram::new();
        let mut ba_commits = Histogram::new();
        let mut gc_share_sum = 0.0;
        let mut gc_share_n = 0u32;
        let end = (issued + WINDOW_WRITES).min(total);
        while issued < end {
            let lba = if (issued as usize) < fill.len() {
                fill[issued as usize]
            } else {
                workload.next_lba()
            };
            let data = workload.page_for(lba, page_size);

            // Byte-path commit probe at the write's issue instant: an MMIO
            // store into the pinned window plus a persistence-ordering sync.
            let store = dev
                .mmio_write(t, eid, 0, &data[..BA_PROBE_BYTES])
                .expect("BA probe store");
            let sync = dev
                .ba_sync_range(store.retired_at, eid, 0, BA_PROBE_BYTES as u64)
                .expect("BA probe sync");
            ba_commits.record(sync.complete_at.saturating_since(t));

            // The block write under test.
            let ack = dev.write_pages(t, lba, &data).expect("churn write");
            blk_writes.record(ack.saturating_since(t));
            t = ack;
            issued += 1;

            // A cold read probe every 8 writes: reads hit NAND, so their
            // breakdown carries the explicit GC-wait attribution.
            if issued.is_multiple_of(8) {
                // Stay behind the fill frontier while filling; once full,
                // probe half the address space away from the churn target.
                let cold = if (issued as usize) < fill.len() {
                    Lba(lba.0 / 2)
                } else {
                    Lba((lba.0 + churn_lbas / 2) % churn_lbas)
                };
                let read = dev.read_pages(t, cold, 1).expect("read probe");
                blk_reads.record(read.complete_at.saturating_since(t));
                gc_share_sum += read.breakdown.gc_share();
                gc_share_n += 1;
                t = read.complete_at;
            }
        }
        let stats = dev.ssd().ftl().stats();
        rows.push(GcWindowRow {
            window,
            phase: phase.to_string(),
            free_ratio,
            blk_write_p50_us: us(blk_writes.percentile(0.50)),
            blk_write_p99_us: us(blk_writes.percentile(0.99)),
            blk_read_p99_us: us(blk_reads.percentile(0.99)),
            read_gc_share: if gc_share_n == 0 {
                0.0
            } else {
                gc_share_sum / f64::from(gc_share_n)
            },
            ba_p99_us: us(ba_commits.percentile(0.99)),
            gc_pages_moved: stats.gc_writes,
            gc_erases: stats.erases,
        });
        window += 1;
    }
    rows
}

/// The GC-threshold free-block ratio of the study's device, for aligning
/// the latency knee with the pool crossing in reports.
pub fn gc_threshold_ratio() -> f64 {
    let cfg = SsdConfig::base_2b().small();
    f64::from(cfg.ftl.gc_low_watermark) / cfg.geometry.blocks_total() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<GcWindowRow> {
        run()
    }

    #[test]
    fn churn_at_least_doubles_block_write_tail() {
        let rows = rows();
        let fresh = rows
            .iter()
            .find(|r| r.phase == "fill")
            .expect("a fill window");
        let storm = rows
            .iter()
            .filter(|r| r.free_ratio <= gc_threshold_ratio())
            .map(|r| r.blk_write_p99_us)
            .fold(0.0f64, f64::max);
        assert!(
            storm >= 2.0 * fresh.blk_write_p99_us,
            "GC storm p99 {storm:.1}us should be at least 2x the fresh-drive \
             p99 {:.1}us",
            fresh.blk_write_p99_us
        );
    }

    #[test]
    fn ba_path_p99_stays_flat() {
        let rows = rows();
        let min = rows.iter().map(|r| r.ba_p99_us).fold(f64::MAX, f64::min);
        let max = rows.iter().map(|r| r.ba_p99_us).fold(0.0f64, f64::max);
        assert!(
            (max - min) / min < 0.05,
            "BA commit p99 moved more than 5%: {min:.3}us..{max:.3}us"
        );
    }

    #[test]
    fn gc_runs_and_is_attributed() {
        let rows = rows();
        let last = rows.last().unwrap();
        assert!(last.gc_erases > 0, "GC never erased a block");
        assert!(last.gc_pages_moved > 0, "GC never relocated a page");
        assert!(
            rows.iter().any(|r| r.read_gc_share > 0.0),
            "no read probe ever observed GC occupancy"
        );
    }

    #[test]
    fn free_pool_crosses_the_watermark() {
        let rows = rows();
        assert!(rows[0].free_ratio > gc_threshold_ratio());
        assert!(
            rows.iter().any(|r| r.free_ratio <= gc_threshold_ratio()),
            "churn never drove the pool below the GC watermark"
        );
    }

    #[test]
    fn study_is_deterministic() {
        assert_eq!(rows(), rows());
    }
}
