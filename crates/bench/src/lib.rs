//! Experiment harness for the 2B-SSD reproduction.
//!
//! Each module regenerates one table or figure of the paper's evaluation
//! (§V) as plain data structures, so the binaries can print them and the
//! integration tests can assert their *shape* — who wins, by roughly what
//! factor, and where the crossovers fall. EXPERIMENTS.md records the
//! paper-vs-measured comparison.
//!
//! | Paper artifact | Module | Binary |
//! |---|---|---|
//! | Table I (spec) | [`mod@table1`] | `table1_spec` |
//! | Fig 7 (latency vs size) | [`mod@fig7`] | `fig7_latency` |
//! | Fig 8 (bandwidth vs size) | [`mod@fig8`] | `fig8_bandwidth` |
//! | Fig 9 (application throughput) | [`mod@fig9`] | `fig9_apps` |
//! | Fig 10 (heterogeneous memory) | [`mod@fig10`] | `fig10_hetero` |
//! | §V-C commit-overhead claim | [`mod@commit_cost`] | `commit_cost` |
//! | Design ablations | [`mod@ablations`] | `ablations` |
//! | QD extension of Fig 8 | [`mod@qd_sweep`] | `qd_sweep` |
//! | GC interference study | [`mod@gc_interference`] | `gc_interference` |
//! | Multi-tenant sweep of §V co-location | [`mod@tenant_sweep`] | `tenant_sweep` |
//! | Open-loop serving knee (beyond the paper) | [`mod@serve_sweep`] | `serve_sweep` |
//! | Replication sweep (beyond the paper) | [`mod@repl_sweep`] | `repl_sweep` |
//! | Cluster sweep (beyond the paper) | [`mod@cluster_sweep`] | `cluster_sweep` |
//! | BA/CXL/block tier sweep (beyond the paper) | [`mod@tier_sweep`] | `tier_sweep` |
//! | Kernel throughput (engine, not model) | [`mod@sim_throughput`] | `sim_throughput` |
//!
//! The `regen_golden` binary re-captures every fixture under
//! `tests/golden/` from the current simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod cluster_sweep;
pub mod commit_cost;
pub mod fig10;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod gc_interference;
pub mod qd_sweep;
pub mod repl_sweep;
pub mod serve_sweep;
pub mod sim_throughput;
pub mod table1;
pub mod tenant_sweep;
pub mod tier_sweep;

/// Prints a simple aligned table: a header row then data rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>width$}", width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&head));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}
