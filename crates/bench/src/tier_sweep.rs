//! Tier sweep: BA-MMIO vs CXL.mem vs block commits, and the hot/cold
//! tier machinery, measured on one chassis.
//!
//! The paper's byte path is PCIe BAR MMIO; the CXL.mem front-end is this
//! repo's 2026 counterpoint — cache-line loads/stores over the *same*
//! capacitor-backed buffer, committed by persist barriers instead of the
//! `BA_SYNC` verify-read. Three sections pin the comparison:
//!
//! 1. **closed-loop ladder** — every engine (pg/rocks/redis) × every
//!    front-end × every queue depth in [`QDS`], on [`TENANTS`] tenants
//!    sharing one device through [`TenantPool`]. Redis is single-threaded,
//!    so its rows pin the same closed-loop point at every QD — a
//!    deliberate control against accidental QD sensitivity in the rig.
//! 2. **serve mode** — one open-loop rung per scheme on the serving stack
//!    ([`ServiceDriver::serve`]), because an admission-controlled tail is
//!    where a front-end's latency actually buys capacity.
//! 3. **tier paths** — a [`TieredWal`] hot/cold scenario per byte
//!    front-end: fill segments past rotation, ride the block path until
//!    the policy promotes, and report the cold-vs-hot read latencies plus
//!    the promotion/demotion counts.
//!
//! A fourth section re-runs the CXL serve rung on the sharded device
//! model under every drive (lock-step, adaptive, parallel) *and* two
//! group→shard placements, demanding one identical completion digest from
//! all of them: the byte front-end must be invisible to placement.
//!
//! The `--gate-tier` CI step enforces the headline: the CXL hot tier's
//! p99 stays under block's at every swept queue depth, closed-loop and
//! serve-mode both.

use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::rc::Rc;
use twob_core::{IoCalendar, PinTable, TenantId, TwoBSpec, TwoBSsd};
use twob_cxl::{RegionFrontEnd, TierWalConfig, TieredWal};
use twob_sim::SimTime;
use twob_ssd::SsdConfig;
use twob_wal::Lsn;
use twob_workloads::{
    ArrivalConfig, ArrivalKind, EngineKind, ServeConfig, ServeReport, ServiceDriver, ShardDrive,
    TenantPool, TenantPoolConfig, WalScheme,
};

/// Tenants sharing the device in every closed-loop cell.
pub const TENANTS: u16 = 4;

/// Queue depths (clients per tenant) the ladder climbs.
pub const QDS: [usize; 3] = [1, 4, 16];

/// Operations per tenant per cell. Sized with [`PAYLOAD_BYTES`] so each
/// tenant's whole run fits its pinned window: the ladder measures
/// front-end commit latency at the hot-tail design point (the tier-path
/// section is where rotation and demotion get measured).
pub const OPS_PER_TENANT: u64 = 50;

/// Commit payload bytes in the closed-loop cells — the small-record
/// regime the byte path exists for.
pub const PAYLOAD_BYTES: usize = 64;

/// Seed shared by every cell, so schemes see identical op streams.
pub const SEED: u64 = 61;

/// Tenants offering load in the serve-mode rung.
pub const SERVE_TENANTS: u16 = 64;

/// Per-tenant offered rate of the serve-mode rung, commits per second.
pub const SERVE_RATE: u64 = 20_000;

/// Tenants in the sharded-agreement run.
pub const SHARDED_TENANTS: u16 = 256;

/// Die groups the sharded fleet is placed across.
pub const SHARDED_GROUPS: usize = 4;

/// The schemes every section compares.
pub const SCHEMES: [WalScheme; 3] = [WalScheme::Ba, WalScheme::Cxl, WalScheme::Block];

/// One `(front-end, engine, queue depth)` cell of the closed-loop ladder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TierRow {
    /// Scheme label (`"ba"`, `"cxl"`, or `"block"`).
    pub scheme: String,
    /// Engine label (`"pg"`, `"rocks"`, or `"redis"`).
    pub engine: String,
    /// Clients per tenant (Redis runs one regardless).
    pub qd: usize,
    /// Commits that reached a durability point.
    pub commits: u64,
    /// Percentage of commits that shared a group-commit batch.
    pub grouped_pct: f64,
    /// Median commit latency, µs.
    pub p50_us: f64,
    /// 99th-percentile commit latency, µs.
    pub p99_us: f64,
    /// Aggregate commit throughput.
    pub commits_per_sec: f64,
}

/// One serve-mode rung: open-loop admission-controlled commits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TierServeRow {
    /// Scheme label.
    pub scheme: String,
    /// Arrivals offered over the horizon.
    pub offered: u64,
    /// Arrivals admitted.
    pub admitted: u64,
    /// Arrivals shed by admission control.
    pub shed: u64,
    /// Median admitted latency, µs.
    pub p50_us: f64,
    /// p99 admitted latency, µs.
    pub p99_us: f64,
    /// p999 admitted latency, µs.
    pub p999_us: f64,
}

/// One byte front-end's pass through the [`TieredWal`] hot/cold cycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TierPathRow {
    /// Byte front-end label (`"ba-mmio"` or `"cxl"`).
    pub front_end: String,
    /// Commit latency of one tail append, µs.
    pub commit_us: f64,
    /// Latency of the first (cold, block-path) read of a demoted record, µs.
    pub cold_read_us: f64,
    /// Latency of a post-promotion (byte-tier) read of the same segment, µs.
    pub hot_read_us: f64,
    /// Segments promoted back into the buffer.
    pub promotions: u64,
    /// Segments demoted to NAND (rotations + sweeps).
    pub demotions: u64,
    /// Reads served by the byte tier.
    pub hot_hits: u64,
    /// Reads served by the block path.
    pub cold_hits: u64,
}

/// The sharded-agreement outcome: every drive × placement of the CXL
/// serve rung produced the same completion digest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TierShardedAgreement {
    /// Fleet size.
    pub tenants: u16,
    /// Die groups.
    pub groups: usize,
    /// Shard counts swept (group→shard placements).
    pub shards: Vec<usize>,
    /// Drive labels that agreed.
    pub drives: Vec<String>,
    /// The one completion digest, hex.
    pub digest: String,
    /// Commits completed (identical everywhere).
    pub completed: u64,
}

/// Everything the sweep determined.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TierSweep {
    /// The closed-loop ladder.
    pub rows: Vec<TierRow>,
    /// The serve-mode rungs.
    pub serve: Vec<TierServeRow>,
    /// The tier-machinery passes.
    pub paths: Vec<TierPathRow>,
    /// The sharded drive × placement agreement.
    pub sharded: TierShardedAgreement,
}

/// The device every closed-loop cell runs on: bench-scale NAND behind a
/// 1 MiB BA buffer with a 64-entry mapping table (as the tenant sweep).
fn device() -> TwoBSsd {
    let spec = TwoBSpec {
        ba_buffer_bytes: 1 << 20,
        max_entries: 64,
        ..TwoBSpec::default()
    };
    TwoBSsd::new(SsdConfig::base_2b().bench_scale(), spec)
}

/// Runs one closed-loop cell on a fresh device.
///
/// # Panics
///
/// Panics if the cell's configuration is rejected or an engine fails —
/// the sweep's presets are all valid.
pub fn cell(scheme: WalScheme, engine: EngineKind, qd: usize) -> TierRow {
    let cfg = TenantPoolConfig {
        clients_per_tenant: qd,
        ops_per_tenant: OPS_PER_TENANT,
        payload_bytes: PAYLOAD_BYTES,
        ..TenantPoolConfig::standard(TENANTS, vec![engine], scheme, SEED)
    };
    let mut pool = TenantPool::new(device(), cfg).expect("valid tier cell");
    let report = ServiceDriver::run_sessions(&mut pool).expect("tier cell runs");
    TierRow {
        scheme: report.scheme,
        engine: engine.label().to_string(),
        qd,
        commits: report.commits,
        grouped_pct: report.grouped_pct,
        p50_us: report.p50_us,
        p99_us: report.p99_us,
        commits_per_sec: report.commits_per_sec,
    }
}

/// Runs the full closed-loop ladder.
pub fn run_rows() -> Vec<TierRow> {
    let mut rows = Vec::new();
    for &qd in &QDS {
        for engine in [EngineKind::Pg, EngineKind::Rocks, EngineKind::Redis] {
            for scheme in SCHEMES {
                rows.push(cell(scheme, engine, qd));
            }
        }
    }
    rows
}

/// The serve-mode configuration of one scheme's rung.
fn serve_config(scheme: WalScheme, tenants: u16) -> ServeConfig {
    ServeConfig::standard(
        tenants,
        scheme,
        ArrivalConfig::new(ArrivalKind::Poisson, SERVE_RATE as f64, SEED),
    )
}

/// Reduces a serve report to the sweep's row shape.
fn serve_row(report: &ServeReport) -> TierServeRow {
    assert_eq!(report.clamped_posts, 0, "serve rung clamped posts");
    TierServeRow {
        scheme: report.scheme.clone(),
        offered: report.offered,
        admitted: report.admitted,
        shed: report.shed_queue + report.shed_buffer,
        p50_us: report.p50_us,
        p99_us: report.p99_us,
        p999_us: report.p999_us,
    }
}

/// Runs the serve-mode rung for every scheme.
pub fn run_serve() -> Vec<TierServeRow> {
    SCHEMES
        .iter()
        .map(|&scheme| serve_row(&ServiceDriver::serve(&serve_config(scheme, SERVE_TENANTS))))
        .collect()
}

/// Runs the [`TieredWal`] hot/cold cycle through one byte front-end.
///
/// # Panics
///
/// Panics on any WAL or device failure — the scenario is a fixed script.
pub fn tier_path(front_end: RegionFrontEnd) -> TierPathRow {
    let dev = Rc::new(RefCell::new(TwoBSsd::small_for_tests()));
    let pins = Rc::new(RefCell::new(
        PinTable::new(dev.borrow().spec(), 1).expect("one-tenant table"),
    ));
    let cal = Rc::new(RefCell::new(IoCalendar::new()));
    let cfg = TierWalConfig {
        byte_front_end: front_end,
        ..TierWalConfig::default()
    };
    let mut wal =
        TieredWal::new(dev, cal.clone(), pins, TenantId(0), cfg).expect("tier rig builds");
    // Fill two segments past rotation so LSN 0 demotes to NAND. Records
    // stay small (the byte path's regime): a hot byte-tier read of one
    // must beat the cold path's full NAND page fetch.
    let mut t = SimTime::from_nanos(1_000_000);
    let mut commit_us = 0.0;
    let per_window = 64; // 128 B records in an 8 KiB window
    for i in 0..(per_window * 2 + 1) {
        let payload = vec![(i % 251) as u8; 128 - 16];
        let out = wal.append(t, &payload).expect("append");
        if i == 0 {
            commit_us = out.commit_at.saturating_since(t).as_nanos() as f64 / 1e3;
        }
        t = out.commit_at;
    }
    // First read of the demoted segment is cold; the second promotes it;
    // the fourth is a steady-state hot hit (the third still waits out the
    // promotion's NAND→buffer fill).
    let (_, t1) = wal.read(t, Lsn(0)).expect("cold read");
    let cold_read_us = t1.saturating_since(t).as_nanos() as f64 / 1e3;
    let (_, t2) = wal.read(t1, Lsn(1)).expect("promoting read");
    let (_, t3) = wal.read(t2, Lsn(2)).expect("warming read");
    let (_, t4) = wal.read(t3, Lsn(3)).expect("hot read");
    let hot_read_us = t4.saturating_since(t3).as_nanos() as f64 / 1e3;
    assert_eq!(cal.borrow().clamped_posts(), 0, "tier path clamped posts");
    let stats = wal.stats();
    TierPathRow {
        front_end: front_end.label().to_string(),
        commit_us,
        cold_read_us,
        hot_read_us,
        promotions: stats.promotions,
        demotions: stats.demotions,
        hot_hits: stats.hot_hits,
        cold_hits: stats.cold_hits,
    }
}

/// Runs the tier-machinery pass for both byte front-ends.
pub fn run_paths() -> Vec<TierPathRow> {
    vec![
        tier_path(RegionFrontEnd::BaMmio),
        tier_path(RegionFrontEnd::Cxl),
    ]
}

/// Serves the CXL rung at fleet scale under every sharded drive and two
/// group→shard placements, demanding one digest from all of them.
///
/// # Panics
///
/// Panics if any drive or placement diverges from the lock-step
/// baseline's digest, completes a different op count, or clamps a post —
/// each is a determinism bug, not a measurement.
pub fn sharded_agreement(tenants: u16, groups: usize) -> TierShardedAgreement {
    let cfg = serve_config(WalScheme::Cxl, tenants);
    let drives = [
        ShardDrive::Lockstep,
        ShardDrive::Adaptive,
        ShardDrive::Parallel(2),
        ShardDrive::Parallel(4),
    ];
    let shards = vec![groups, (groups / 2).max(1)];
    let mut baseline: Option<ServeReport> = None;
    let mut labels = Vec::new();
    for drive in drives {
        for &shard_count in &shards {
            let report = ServiceDriver::serve_sharded_placed(&cfg, groups, shard_count, drive);
            assert_eq!(
                report.clamped_posts,
                0,
                "{} drive on {shard_count} shards clamped",
                drive.label()
            );
            if let Some(base) = &baseline {
                assert_eq!(
                    (report.digest, report.completed),
                    (base.digest, base.completed),
                    "{} drive on {shard_count} shards diverged",
                    drive.label()
                );
            } else {
                baseline = Some(report);
            }
        }
        labels.push(drive.label());
    }
    let base = baseline.expect("at least one drive ran");
    TierShardedAgreement {
        tenants,
        groups,
        shards,
        drives: labels,
        digest: format!("{:016x}", base.digest),
        completed: base.completed,
    }
}

/// Runs all four sections at tracked-baseline scale.
pub fn run() -> TierSweep {
    TierSweep {
        rows: run_rows(),
        serve: run_serve(),
        paths: run_paths(),
        sharded: sharded_agreement(SHARDED_TENANTS, SHARDED_GROUPS),
    }
}

/// The `--gate-tier` check: the CXL hot tier's p99 must sit under block's
/// in every closed-loop cell (per engine × QD) and in the serve rung.
///
/// # Errors
///
/// Returns the first violated comparison.
pub fn gate(sweep: &TierSweep) -> Result<(), String> {
    for &qd in &QDS {
        for engine in [EngineKind::Pg, EngineKind::Rocks, EngineKind::Redis] {
            let of = |scheme: WalScheme| {
                sweep
                    .rows
                    .iter()
                    .find(|r| {
                        r.scheme == scheme.label() && r.engine == engine.label() && r.qd == qd
                    })
                    .ok_or_else(|| {
                        format!("missing {} {} qd {qd} row", scheme.label(), engine.label())
                    })
            };
            let cxl = of(WalScheme::Cxl)?;
            let block = of(WalScheme::Block)?;
            if cxl.p99_us >= block.p99_us {
                return Err(format!(
                    "{} qd {qd}: cxl p99 {} did not beat block p99 {}",
                    engine.label(),
                    cxl.p99_us,
                    block.p99_us
                ));
            }
        }
    }
    let serve_of = |label: &str| {
        sweep
            .serve
            .iter()
            .find(|r| r.scheme == label)
            .ok_or_else(|| format!("missing {label} serve rung"))
    };
    let cxl = serve_of("cxl")?;
    let block = serve_of("block")?;
    if cxl.p99_us >= block.p99_us {
        return Err(format!(
            "serve mode: cxl p99 {} did not beat block p99 {}",
            cxl.p99_us, block.p99_us
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_cell_is_deterministic() {
        let a = cell(WalScheme::Cxl, EngineKind::Rocks, 4);
        let b = cell(WalScheme::Cxl, EngineKind::Rocks, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn ladder_shape_and_gate_hold() {
        let rows = run_rows();
        assert_eq!(rows.len(), QDS.len() * 3 * SCHEMES.len());
        let sweep = TierSweep {
            rows,
            serve: run_serve(),
            paths: Vec::new(),
            sharded: TierShardedAgreement {
                tenants: 0,
                groups: 0,
                shards: Vec::new(),
                drives: Vec::new(),
                digest: String::new(),
                completed: 0,
            },
        };
        gate(&sweep).expect("the CXL hot tier must beat block everywhere");
    }

    #[test]
    fn tier_paths_expose_the_hot_cold_gap() {
        for path in run_paths() {
            assert!(
                path.hot_read_us < path.cold_read_us,
                "{}: hot {} should beat cold {}",
                path.front_end,
                path.hot_read_us,
                path.cold_read_us
            );
            assert_eq!(path.promotions, 1);
            assert!(path.demotions >= 2);
            assert_eq!(path.cold_hits, 2);
            assert_eq!(path.hot_hits, 2);
        }
        // The CXL commit undercuts the MMIO commit on the same scenario.
        let paths = run_paths();
        assert!(
            paths[1].commit_us < paths[0].commit_us,
            "cxl commit {} should beat mmio commit {}",
            paths[1].commit_us,
            paths[0].commit_us
        );
    }

    #[test]
    fn sharded_drives_and_placements_agree_at_test_scale() {
        // Fleet scale runs in the binary; the test pins the invariant at a
        // size debug builds can afford.
        let agreement = sharded_agreement(32, SHARDED_GROUPS);
        assert_eq!(agreement.drives.len(), 4);
        assert_eq!(agreement.shards, vec![4, 2]);
        assert!(agreement.completed > 0);
    }
}
