//! Cluster sweep: the fleet-scale cost of placement, replication, and
//! follower reads on dual-mode log hosts (beyond the paper).
//!
//! Every node of a [`twob_repl::Fleet`] is one simulated 2B-SSD hosting
//! several shard WALs through the pin-table; this sweep scales the fleet
//! across node counts and placement functions, once with BA log slots and
//! once with block slots, and reports the client-visible commit median
//! and the follower-read p99 — the cluster-level restatement of the
//! paper's byte-path read advantage (Fig 7(a)): a window-resident record
//! is served by an MMIO burst that never queues behind the log's own
//! NAND programs, while a block follower re-reads log pages on the same
//! die that is programming the next commit.
//!
//! The sweep also runs a seeded [`twob_repl::fleet_sweep`] — cluster
//! fault plans with node/rack/zone cuts and live shard moves — and folds
//! its digest into the fixture, so the golden test pins the entire
//! control plane (placement, joint-consensus moves, fenced handoff,
//! recovery promotion) byte-for-byte.

use serde::{Deserialize, Serialize};
use twob_repl::{fleet_sweep, Fleet, FleetConfig, PlacementKind, ShipScheme};

/// Fleet sizes the sweep visits (all 3-zone layouts).
pub const NODE_COUNTS: [usize; 3] = [9, 12, 15];

/// Shards per fleet.
pub const SHARDS: u16 = 6;

/// Commits per shard in the clean cells.
pub const COMMITS_PER_SHARD: u64 = 8;

/// Seed shared by every cell.
pub const SEED: u64 = 0x2b5d;

/// Fault plans in the digest-pinned fault sweep.
pub const FAULT_PLANS: u64 = 12;

/// One `(nodes, placement, scheme)` cell of the clean sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Fleet size.
    pub nodes: usize,
    /// Placement label (`"hash"` or `"range"`).
    pub placement: String,
    /// Log-slot scheme label (`"ba"` or `"block"`).
    pub scheme: String,
    /// Commits released (always `SHARDS * COMMITS_PER_SHARD`).
    pub released: u64,
    /// Follower reads served.
    pub reads: u64,
    /// Median client-visible commit latency, µs.
    pub commit_p50_us: f64,
    /// p99 follower-read latency, µs.
    pub read_p99_us: f64,
}

/// The whole sweep: clean cells plus the fault-sweep pin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSweep {
    /// Clean `(nodes, placement, scheme)` cells.
    pub rows: Vec<Row>,
    /// Fault-sweep runs executed (plans × placements × policies).
    pub fault_runs: u64,
    /// Commits released across the fault sweep.
    pub fault_released: u64,
    /// Follower reads served across the fault sweep.
    pub fault_reads: u64,
    /// Fault-sweep runs that included a live shard move.
    pub fault_moved: u64,
    /// Fault-sweep digest — pins every promoted per-shard log.
    pub fault_digest: String,
}

fn cell_config(nodes: usize, placement: PlacementKind, scheme: ShipScheme) -> FleetConfig {
    FleetConfig {
        nodes,
        shards: SHARDS,
        placement,
        scheme,
        commits_per_shard: COMMITS_PER_SHARD,
        seed: SEED,
        ..FleetConfig::default()
    }
}

/// Runs one clean cell.
///
/// # Panics
///
/// Panics if the fault-free fleet violates any cluster guarantee.
pub fn cell(nodes: usize, placement: PlacementKind, scheme: ShipScheme) -> Row {
    let report = Fleet::new(cell_config(nodes, placement, scheme))
        .expect("valid sweep cell")
        .run();
    assert!(
        report.passed(),
        "{nodes}/{placement}/{scheme}: {:?}",
        report.violations
    );
    assert_eq!(report.clamped_posts, 0, "{nodes}/{placement}/{scheme}");
    Row {
        nodes,
        placement: placement.to_string(),
        scheme: scheme.to_string(),
        released: report.released,
        reads: report.reads,
        commit_p50_us: report.commit_p50_us,
        read_p99_us: report.read_p99_us,
    }
}

/// Runs the full sweep: every node count under both placements and both
/// schemes, plus the seeded fault sweep.
pub fn run() -> ClusterSweep {
    let mut rows = Vec::new();
    for nodes in NODE_COUNTS {
        for placement in PlacementKind::ALL {
            for scheme in ShipScheme::ALL {
                rows.push(cell(nodes, placement, scheme));
            }
        }
    }
    let faults = fleet_sweep(FAULT_PLANS, SEED);
    assert!(faults.passed(), "{:?}", faults.violations);
    ClusterSweep {
        rows,
        fault_runs: faults.runs,
        fault_released: faults.released,
        fault_reads: faults.reads,
        fault_moved: faults.moved,
        fault_digest: format!("{:016x}", faults.digest),
    }
}

/// The `--gate-cluster` check: at every node count and placement, the BA
/// hosts' follower-read p99 must undercut the block hosts', and the
/// parallel drive must reproduce the sequential observations exactly.
/// Returns the human-readable pass summary.
///
/// # Panics
///
/// Panics (failing the CI job) when the gate does not hold.
pub fn check_gate(sweep: &ClusterSweep) -> String {
    let mut margins = Vec::new();
    for nodes in NODE_COUNTS {
        for placement in PlacementKind::ALL {
            let find = |scheme: &str| {
                sweep
                    .rows
                    .iter()
                    .find(|r| {
                        r.nodes == nodes
                            && r.placement == placement.to_string()
                            && r.scheme == scheme
                    })
                    .expect("cell present")
            };
            let ba = find("ba");
            let block = find("block");
            assert!(
                ba.read_p99_us < block.read_p99_us,
                "cluster gate failed at {nodes} nodes ({placement}): \
                 ba follower-read p99 {:.2} us !< block {:.2} us",
                ba.read_p99_us,
                block.read_p99_us
            );
            margins.push(format!(
                "{nodes}n/{placement} {:.1}<{:.1}",
                ba.read_p99_us, block.read_p99_us
            ));
        }
    }
    // Drive agreement on the largest clean cell.
    let cfg = cell_config(15, PlacementKind::Hash, ShipScheme::Ba);
    let seq = Fleet::new(cfg.clone()).expect("gate cell").run();
    let par = Fleet::new(cfg).expect("gate cell").run_parallel(4);
    assert_eq!(par, seq, "cluster gate: parallel drive diverged");
    format!(
        "cluster gate passed: ba read p99 < block at every node count [{}], \
         parallel ≡ sequential at 15 nodes",
        margins.join(", ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_cell_is_deterministic() {
        let a = cell(9, PlacementKind::Hash, ShipScheme::Ba);
        let b = cell(9, PlacementKind::Hash, ShipScheme::Ba);
        assert_eq!(a, b);
        assert_eq!(a.released, u64::from(SHARDS) * COMMITS_PER_SHARD);
    }

    #[test]
    fn sweep_shape_and_gate_hold() {
        let sweep = run();
        assert_eq!(sweep.rows.len(), NODE_COUNTS.len() * 2 * 2);
        assert_eq!(sweep.fault_runs, FAULT_PLANS * 2 * 3);
        assert!(sweep.fault_moved > 0);
        let summary = check_gate(&sweep);
        assert!(summary.contains("passed"));
    }
}
