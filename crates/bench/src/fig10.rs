//! Fig 10 — hybrid store (2B-SSD) versus heterogeneous memory (PM + SSD).

use serde::{Deserialize, Serialize};
use twob_db::{EngineCosts, MiniPg};
use twob_sim::{SimRng, SimTime};
use twob_ssd::{Ssd, SsdConfig};
use twob_wal::{PmWal, WalConfig, WalWriter};
use twob_workloads::{ClientPool, LinkbenchConfig, LinkbenchWorkload};

use crate::fig9::{make_wal, BaLayout, LogKind};

/// Normalized Linkbench throughput of the four Fig 10 configurations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig10Report {
    /// Absolute baseline throughput (2B-SSD hybrid store), txns/s.
    pub baseline_tps: f64,
    /// PM + DC-SSD, normalized to baseline.
    pub pm_dc: f64,
    /// PM + ULL-SSD, normalized to baseline.
    pub pm_ull: f64,
    /// Asynchronous commit, normalized to baseline.
    pub async_max: f64,
}

fn pm_wal(cfg: SsdConfig) -> Box<dyn WalWriter> {
    // The PM buffer matches the BA-buffer of the test device: two halves
    // of 8 pages, like the PostgreSQL BA-WAL layout.
    Box::new(PmWal::new(Ssd::new(cfg.small()), WalConfig::default(), 8).expect("pm wal"))
}

fn run_pg(wal: Box<dyn WalWriter>, txns: u64, clients: usize, seed: u64) -> f64 {
    let mut pg = MiniPg::new(wal, EngineCosts::postgres());
    let mut rng = SimRng::seed_from(seed);
    let mut wl = LinkbenchWorkload::new(LinkbenchConfig::standard(500));
    let mut t = SimTime::ZERO;
    for txn in wl.load_phase(&mut rng, 2) {
        t = pg.run_txn(t, &txn).expect("load").commit_at;
    }
    let start = t;
    let mut pool = ClientPool::starting_at(clients, start);
    for _ in 0..txns {
        let (client, at) = pool.next_client();
        let txn = wl.next_txn(&mut rng);
        let out = pg.run_txn(at, &txn).expect("txn");
        pool.complete(client, out.commit_at);
    }
    txns as f64 / pool.makespan().saturating_since(start).as_secs_f64()
}

/// Regenerates Fig 10. `quick` runs a reduced transaction count.
pub fn run(quick: bool) -> Fig10Report {
    let txns = if quick { 4_000 } else { 20_000 };
    let clients = 8;
    let seed = 45;
    let baseline = run_pg(
        make_wal(LogKind::TwoB, BaLayout::Halves),
        txns,
        clients,
        seed,
    );
    let pm_dc = run_pg(pm_wal(SsdConfig::dc_ssd()), txns, clients, seed);
    let pm_ull = run_pg(pm_wal(SsdConfig::ull_ssd()), txns, clients, seed);
    let async_max = run_pg(
        make_wal(LogKind::Async, BaLayout::Halves),
        txns,
        clients,
        seed,
    );
    Fig10Report {
        baseline_tps: baseline,
        pm_dc: pm_dc / baseline,
        pm_ull: pm_ull / baseline,
        async_max: async_max / baseline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_shape_matches_paper() {
        let r = run(true);
        // Paper: baseline, PM+DC (−0.6 %), PM+ULL (+0.4 %), and ASYNC all
        // report "almost identical performance".
        assert!(
            (0.93..=1.08).contains(&r.pm_dc),
            "PM+DC diverged from baseline: {r:?}"
        );
        assert!(
            (0.93..=1.08).contains(&r.pm_ull),
            "PM+ULL diverged from baseline: {r:?}"
        );
        assert!(
            (0.95..=1.10).contains(&r.async_max),
            "ASYNC diverged from baseline: {r:?}"
        );
        // PM+ULL is never slower than PM+DC (its flushes are cheaper).
        assert!(r.pm_ull >= r.pm_dc * 0.999, "{r:?}");
        assert!(r.baseline_tps > 0.0);
    }
}
