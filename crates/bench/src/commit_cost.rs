//! §V-C — the commit-path overhead reduction (paper: "up to 26×").

use serde::{Deserialize, Serialize};
use twob_sim::SimTime;
use twob_wal::{WalStats, WalWriter};

use crate::fig9::{make_wal, BaLayout, LogKind};

/// Mean commit-path cost per scheme, for one record size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommitCostRow {
    /// Record payload size in bytes.
    pub payload: usize,
    /// Mean commit cost on DC-SSD (sync), microseconds.
    pub dc_us: f64,
    /// Mean commit cost on ULL-SSD (sync), microseconds.
    pub ull_us: f64,
    /// Mean commit cost with BA commit on 2B-SSD, microseconds.
    pub ba_us: f64,
    /// DC / BA reduction factor.
    pub reduction_vs_dc: f64,
    /// ULL / BA reduction factor.
    pub reduction_vs_ull: f64,
}

fn mean_commit_us(mut wal: Box<dyn WalWriter>, payload: usize, commits: u64) -> (f64, WalStats) {
    let mut t = SimTime::from_nanos(1_000_000);
    let body = vec![0x61u8; payload];
    for _ in 0..commits {
        t = wal.append_commit(t, &body).expect("commit").commit_at;
    }
    let stats = wal.stats();
    (stats.mean_commit_cost().as_micros_f64(), stats)
}

/// Measures commit costs for several record sizes.
pub fn run() -> Vec<CommitCostRow> {
    let commits = 2_000;
    [64usize, 256, 1024]
        .into_iter()
        .map(|payload| {
            let (dc_us, _) =
                mean_commit_us(make_wal(LogKind::Dc, BaLayout::Halves), payload, commits);
            let (ull_us, _) =
                mean_commit_us(make_wal(LogKind::Ull, BaLayout::Halves), payload, commits);
            let (ba_us, _) =
                mean_commit_us(make_wal(LogKind::TwoB, BaLayout::Halves), payload, commits);
            CommitCostRow {
                payload,
                dc_us,
                ull_us,
                ba_us,
                reduction_vs_dc: dc_us / ba_us,
                reduction_vs_ull: ull_us / ba_us,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_overhead_reduction_matches_paper() {
        let rows = run();
        // Paper §V-C: logging overhead reduced by up to 26× versus block
        // logging. Our smallest records should land in the tens.
        let best = rows
            .iter()
            .map(|r| r.reduction_vs_dc)
            .fold(0.0f64, f64::max);
        assert!((10.0..40.0).contains(&best), "best reduction {best}");
        for r in &rows {
            assert!(r.ba_us < r.ull_us && r.ull_us < r.dc_us, "{r:?}");
            assert!(r.reduction_vs_dc > r.reduction_vs_ull, "{r:?}");
        }
        // Reduction shrinks as records grow (the byte path scales with
        // size, the block path does not).
        assert!(rows[0].reduction_vs_dc > rows[2].reduction_vs_dc);
    }
}
