//! Replication sweep: what does BA-WAL buy a *replicated* deployment?
//!
//! The paper evaluates a single node, where BA-WAL's win is the commit
//! path's flush latency. In a replica set the client-visible commit
//! latency is governed by log shipping and quorum acknowledgement, so the
//! natural question is how much of the byte-path advantage survives once a
//! network sits between durability and release. This sweep runs a
//! three-node [`twob_repl::ReplicaSet`] (one primary, two extra replicas
//! is the smallest quorum-bearing shape) across:
//!
//! - **commit policy** — `async` (release at local durability),
//!   `semisync:2` (a majority quorum), `sync` (every replica);
//! - **round-trip time** — 10 µs (rack-local), 50 µs (datacenter),
//!   200 µs (cross-zone);
//! - **ship scheme** — `ba` (tail read-out over `BA_READ_DMA`) vs
//!   `block` (block reads of the flushed log region).
//!
//! Every cell replays the same seeded MiniRocks commit stream, so cells
//! differ only in policy, link, and log scheme.

use serde::{Deserialize, Serialize};
use twob_repl::{CommitPolicy, NetLinkConfig, ReplConfig, ReplicaSet, ShipScheme};

/// Round-trip times the sweep visits, in microseconds.
pub const RTTS_US: [u64; 3] = [10, 50, 200];

/// Commit policies the sweep visits.
pub const POLICIES: [CommitPolicy; 3] = [
    CommitPolicy::Async,
    CommitPolicy::SemiSync(2),
    CommitPolicy::Sync,
];

/// Seed shared by every cell, so they replay identical commit streams.
pub const SEED: u64 = 73;

/// Commits per cell — enough for stable percentiles, small enough that
/// the block-WAL log region never wraps mid-run.
pub const COMMITS: u64 = 80;

/// One `(policy, rtt, scheme)` cell of the sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Commit policy label (`"async"`, `"semisync:2"`, `"sync"`).
    pub policy: String,
    /// Link round-trip time, µs.
    pub rtt_us: u64,
    /// Ship scheme label (`"ba"` or `"block"`).
    pub scheme: String,
    /// Commits released to the client.
    pub released: u64,
    /// Median client-visible commit latency, µs.
    pub p50_us: f64,
    /// 99th-percentile client-visible commit latency, µs.
    pub p99_us: f64,
    /// Mean client-visible commit latency, µs.
    pub mean_us: f64,
    /// Released commits per second of virtual time.
    pub commits_per_sec: f64,
    /// Ship batches put on the wire.
    pub ship_batches: u64,
    /// Records those batches carried.
    pub ship_records: u64,
}

/// Runs one cell on a fresh replica set.
///
/// # Panics
///
/// Panics if the run violates a replication invariant — the sweep's
/// fault-free cells must always converge.
pub fn cell(policy: CommitPolicy, rtt_us: u64, scheme: ShipScheme) -> Row {
    let cfg = ReplConfig {
        scheme,
        policy,
        link: NetLinkConfig::from_rtt_us(rtt_us),
        seed: SEED,
        commits: COMMITS,
        ..ReplConfig::default()
    };
    let report = ReplicaSet::new(cfg).expect("valid sweep cell").run_steady();
    assert!(
        report.passed(),
        "{policy}/{rtt_us}us/{scheme}: {:?}",
        report.violations
    );
    Row {
        policy: policy.to_string(),
        rtt_us,
        scheme: scheme.to_string(),
        released: report.released,
        p50_us: report.p50_us,
        p99_us: report.p99_us,
        mean_us: report.mean_us,
        commits_per_sec: report.commits_per_sec,
        ship_batches: report.ship_batches,
        ship_records: report.ship_records,
    }
}

/// Runs the full sweep: every policy at every RTT under both schemes.
pub fn run() -> Vec<Row> {
    let mut rows = Vec::new();
    for policy in POLICIES {
        for &rtt_us in &RTTS_US {
            for scheme in ShipScheme::ALL {
                rows.push(cell(policy, rtt_us, scheme));
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find<'a>(rows: &'a [Row], policy: &str, rtt_us: u64, scheme: &str) -> &'a Row {
        rows.iter()
            .find(|r| r.policy == policy && r.rtt_us == rtt_us && r.scheme == scheme)
            .expect("cell present")
    }

    #[test]
    fn one_cell_is_deterministic() {
        let a = cell(CommitPolicy::SemiSync(2), 50, ShipScheme::Ba);
        let b = cell(CommitPolicy::SemiSync(2), 50, ShipScheme::Ba);
        assert_eq!(a, b);
    }

    #[test]
    fn sweep_shape_holds() {
        let rows = run();
        assert_eq!(rows.len(), POLICIES.len() * RTTS_US.len() * 2);
        for r in &rows {
            assert_eq!(r.released, COMMITS, "{r:?}");
        }
        for scheme in ["ba", "block"] {
            // Quorum release costs at least one round trip over async...
            for &rtt in &RTTS_US {
                let a = find(&rows, "async", rtt, scheme);
                let semi = find(&rows, "semisync:2", rtt, scheme);
                let sync = find(&rows, "sync", rtt, scheme);
                assert!(a.p50_us < semi.p50_us, "{scheme}/{rtt}: async !< semi");
                assert!(semi.p50_us <= sync.p50_us, "{scheme}/{rtt}: semi !<= sync");
            }
            // ...and the RTT, not the local flush, dominates quorum p50.
            let near = find(&rows, "semisync:2", 10, scheme);
            let far = find(&rows, "semisync:2", 200, scheme);
            assert!(
                far.p50_us - near.p50_us > 150.0,
                "{scheme}: 190us of RTT moved p50 only {} -> {}",
                near.p50_us,
                far.p50_us
            );
        }
    }
}
