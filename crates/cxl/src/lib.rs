//! The CXL.mem byte-path subsystem: front-end selection and hybrid
//! BA/CXL/block tiering over the 2B-SSD.
//!
//! The paper's byte path is PCIe BAR MMIO — the 2018 hardware reality.
//! This crate is the 2026 alternative and the placement layer it opens:
//!
//! - the **front-end** ([`CxlTimings`]/[`CxlChannel`], hosted in
//!   `twob-pcie`; [`RegionFrontEnd`] selection in `twob-core`'s pin
//!   table): cache-line loads/stores against the same capacitor-backed
//!   BA buffer, with an explicit persist barrier as the durability
//!   point — routable through the same [`IoCalendar`]
//!   (`IoOp::CxlLoad/CxlStore/CxlPersist`) and contending on the same
//!   dies, channels, and DRAM as the MMIO/DMA ops;
//! - the **tier layer** ([`tier`]): treats BA-MMIO, CXL, and block NAND
//!   as a placement problem per region — the WAL tail stays pinned in
//!   the fast byte tier, cold segments demote to flash, and reads that
//!   keep hitting a cold segment promote it back, all as calendar-routed
//!   stages like GC and buffer dumps.
//!
//! [`IoCalendar`]: twob_core::IoCalendar
//!
//! # Example
//!
//! ```rust
//! use std::cell::RefCell;
//! use std::rc::Rc;
//!
//! use twob_core::{IoCalendar, PinTable, TenantId, TwoBSsd};
//! use twob_cxl::tier::{TierWalConfig, TieredWal};
//! use twob_sim::SimTime;
//!
//! let dev = Rc::new(RefCell::new(TwoBSsd::small_for_tests()));
//! let pins = Rc::new(RefCell::new(PinTable::new(dev.borrow().spec(), 1).unwrap()));
//! let cal = Rc::new(RefCell::new(IoCalendar::new()));
//! let mut wal =
//!     TieredWal::new(dev, cal, pins, TenantId(0), TierWalConfig::default()).unwrap();
//! let out = wal.append(SimTime::ZERO, b"hot tail record").unwrap();
//! let (bytes, _) = wal.read(out.commit_at, out.lsn).unwrap();
//! assert_eq!(bytes, b"hot tail record");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod tier;

pub use tier::{TierAction, TierPolicy, TierPolicyConfig, TierStats, TierWalConfig, TieredWal};
// The subsystem's face: the pieces hosted lower in the stack for
// dependency reasons, re-exported so tier users need only this crate.
pub use twob_core::RegionFrontEnd;
pub use twob_pcie::{CxlChannel, CxlTimings};
