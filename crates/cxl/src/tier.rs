//! Hot/cold tiering between the byte front-ends and block NAND.
//!
//! The pin table makes front-end choice a *per-region* property; this
//! module adds the policy that exploits it. A [`TieredWal`] keeps its
//! tail window pinned in the byte tier (CXL.mem by default, BA-MMIO on
//! request), demotes full segments to block NAND exactly the way the
//! tenant writers rotate (fence, calendar-routed `BA_FLUSH`, unpin),
//! and watches the read stream: a segment that keeps absorbing cold
//! block reads is promoted back into the buffer — a calendar-priced
//! re-pin whose NAND→buffer load is the promotion cost — and idle
//! promoted segments are swept back out.
//!
//! Every device touch routes through the shared [`IoCalendar`], so
//! tiering contends with GC, dumps, and other tenants in deterministic
//! virtual-time order and stays digest-identical across the lock-step,
//! adaptive, and parallel drives.
//!
//! [`IoCalendar`]: twob_core::IoCalendar

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use twob_core::{EntryId, IoCompletion, IoOp, RegionFrontEnd, TenantId};
use twob_ftl::Lba;
use twob_sim::{SimDuration, SimTime};
use twob_wal::{
    CommitOutcome, LogRecord, Lsn, SharedCalendar, SharedDevice, SharedPins, WalConfig, WalError,
};

const PAGE: u64 = 4096;

/// Submits one operation, drives the shared calendar, and plucks out its
/// completion (the tier layer's private copy of the tenant writers'
/// helper — each call drains its own completions).
fn run_op(
    dev: &SharedDevice,
    cal: &SharedCalendar,
    at: SimTime,
    op: IoOp,
) -> Result<IoCompletion, WalError> {
    let mut cal = cal.borrow_mut();
    let id = cal.submit(at, op);
    cal.drive(&mut dev.borrow_mut());
    let done = cal
        .drain_completions()
        .into_iter()
        .find(|c| c.id == id)
        .expect("a driven calendar completes every submitted op");
    match done.error.clone() {
        Some(e) => Err(e.into()),
        None => Ok(done),
    }
}

/// What the policy wants done with a segment after an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TierAction {
    /// Leave the segment in its current tier.
    Stay,
    /// Pin the segment into the byte tier (it is earning its buffer
    /// space).
    Promote,
    /// Flush the segment back to block NAND (it has gone idle).
    Demote,
}

/// Tunables for the hot/cold policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TierPolicyConfig {
    /// Cold reads a segment must absorb within one [`hit_window`] before
    /// it is promoted.
    ///
    /// [`hit_window`]: TierPolicyConfig::hit_window
    pub promote_after_hits: u32,
    /// Width of the hit-counting window; hits older than this do not
    /// argue for promotion.
    pub hit_window: SimDuration,
    /// Idle time after which a promoted segment is demoted by
    /// [`TieredWal::sweep`].
    pub demote_after: SimDuration,
    /// Most segments the policy will hold promoted at once (the tail
    /// window is extra); promoting past this evicts the coldest.
    pub max_promoted: usize,
}

impl Default for TierPolicyConfig {
    fn default() -> Self {
        TierPolicyConfig {
            promote_after_hits: 2,
            hit_window: SimDuration::from_micros(500),
            demote_after: SimDuration::from_millis(2),
            max_promoted: 2,
        }
    }
}

/// Counters the tier layer exposes (and the tier sweep reports).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TierStats {
    /// Segments pinned back into the byte tier.
    pub promotions: u64,
    /// Segments flushed out to block NAND (tail rotations, capacity
    /// evictions, and idle sweeps).
    pub demotions: u64,
    /// Reads served from the byte tier (tail or a promoted segment).
    pub hot_hits: u64,
    /// Reads served by the block path.
    pub cold_hits: u64,
}

/// Per-segment read heat.
#[derive(Debug, Clone, Copy)]
struct SegmentHeat {
    last_touch: SimTime,
    window_start: SimTime,
    hits: u32,
}

/// The hot/cold decision maker: tracks per-segment read heat and answers
/// "promote?", "demote?", and "who is coldest?". Pure bookkeeping — the
/// [`TieredWal`] performs the moves it recommends.
#[derive(Debug, Clone)]
pub struct TierPolicy {
    cfg: TierPolicyConfig,
    heat: BTreeMap<u64, SegmentHeat>,
    stats: TierStats,
}

impl TierPolicy {
    /// Creates a policy with the given tunables.
    pub fn new(cfg: TierPolicyConfig) -> Self {
        TierPolicy {
            cfg,
            heat: BTreeMap::new(),
            stats: TierStats::default(),
        }
    }

    /// The tunables this policy runs with.
    pub fn config(&self) -> TierPolicyConfig {
        self.cfg
    }

    /// Accumulated counters.
    pub fn stats(&self) -> TierStats {
        self.stats
    }

    /// Notes a read served from the byte tier.
    pub fn on_hot_read(&mut self, seg: u64, now: SimTime) {
        self.stats.hot_hits += 1;
        let heat = self.heat.entry(seg).or_insert(SegmentHeat {
            last_touch: now,
            window_start: now,
            hits: 0,
        });
        heat.last_touch = now;
    }

    /// Notes a read served by the block path and says whether the segment
    /// has now earned promotion.
    pub fn on_cold_read(&mut self, seg: u64, now: SimTime) -> TierAction {
        self.stats.cold_hits += 1;
        let heat = self.heat.entry(seg).or_insert(SegmentHeat {
            last_touch: now,
            window_start: now,
            hits: 0,
        });
        if now.saturating_since(heat.window_start) > self.cfg.hit_window {
            heat.window_start = now;
            heat.hits = 0;
        }
        heat.hits += 1;
        heat.last_touch = now;
        if heat.hits >= self.cfg.promote_after_hits {
            TierAction::Promote
        } else {
            TierAction::Stay
        }
    }

    /// Whether a promoted segment has idled long enough to demote.
    pub fn wants_demotion(&self, seg: u64, now: SimTime) -> bool {
        self.heat
            .get(&seg)
            .map(|h| now.saturating_since(h.last_touch) >= self.cfg.demote_after)
            .unwrap_or(true)
    }

    /// The least-recently-touched of `segments` (eviction victim).
    pub fn coldest(&self, segments: impl IntoIterator<Item = u64>) -> Option<u64> {
        segments
            .into_iter()
            .min_by_key(|seg| self.heat.get(seg).map(|h| h.last_touch))
    }

    /// Counts a completed promotion.
    pub fn record_promotion(&mut self) {
        self.stats.promotions += 1;
    }

    /// Counts a completed demotion.
    pub fn record_demotion(&mut self) {
        self.stats.demotions += 1;
    }

    /// Drops a segment's heat (its log space was overwritten).
    pub fn forget(&mut self, seg: u64) {
        self.heat.remove(&seg);
    }
}

/// Shape of a [`TieredWal`]'s log region and tiering behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TierWalConfig {
    /// The underlying WAL geometry and host costs; the log region is
    /// `wal.region_pages` pages at `wal.region_base_lba`, wrapped.
    pub wal: WalConfig,
    /// Pages per segment: the tail window size and the promotion unit.
    pub window_pages: u32,
    /// Byte front-end serving the tail and every promoted segment.
    pub byte_front_end: RegionFrontEnd,
    /// Hot/cold policy tunables.
    pub policy: TierPolicyConfig,
}

impl Default for TierWalConfig {
    fn default() -> Self {
        TierWalConfig {
            wal: WalConfig::default(),
            window_pages: 2,
            byte_front_end: RegionFrontEnd::Cxl,
            policy: TierPolicyConfig::default(),
        }
    }
}

/// Where one record lives inside the wrapped log region.
#[derive(Debug, Clone, Copy)]
struct RecordLoc {
    seg: u64,
    offset: u64,
    len: u64,
}

/// A segment currently pinned into the byte tier by promotion.
#[derive(Debug, Clone, Copy)]
struct HotSegment {
    eid: EntryId,
    ready_at: SimTime,
}

/// A WAL whose tail lives in the byte tier and whose cold segments live
/// on block NAND — the tier subsystem's flagship client.
///
/// Appends go through the pin table (so the configured front-end prices
/// the stores) and commit with the front-end's durability op on the
/// shared calendar. Full windows rotate to NAND; reads of rotated
/// records ride the block path until the policy promotes their segment
/// back. See the crate example for the happy path.
#[derive(Debug, Clone)]
pub struct TieredWal {
    dev: SharedDevice,
    cal: SharedCalendar,
    pins: SharedPins,
    tenant: TenantId,
    cfg: TierWalConfig,
    policy: TierPolicy,
    tail_eid: EntryId,
    tail_seg: u64,
    ready_at: SimTime,
    used: u64,
    next_lsn: u64,
    index: BTreeMap<u64, RecordLoc>,
    promoted: BTreeMap<u64, HotSegment>,
}

impl TieredWal {
    /// Pins the tail window and readies the log.
    ///
    /// # Errors
    ///
    /// [`WalError::BadConfig`] for an invalid shape (including a `Block`
    /// byte front-end, or a share too small for the tail plus
    /// `policy.max_promoted` promoted windows), [`WalError::Pin`] if the
    /// arbiter refuses the window, or device failures.
    pub fn new(
        dev: SharedDevice,
        cal: SharedCalendar,
        pins: SharedPins,
        tenant: TenantId,
        cfg: TierWalConfig,
    ) -> Result<Self, WalError> {
        cfg.wal.validate().map_err(WalError::BadConfig)?;
        if cfg.byte_front_end == RegionFrontEnd::Block {
            return Err(WalError::BadConfig(
                "the tail of a tiered WAL needs a byte front-end".into(),
            ));
        }
        if cfg.window_pages == 0 {
            return Err(WalError::BadConfig("window_pages must be positive".into()));
        }
        if u64::from(cfg.wal.region_pages) < u64::from(cfg.window_pages)
            || !cfg.wal.region_pages.is_multiple_of(cfg.window_pages)
        {
            return Err(WalError::BadConfig(
                "log region must be a multiple of window_pages".into(),
            ));
        }
        {
            use twob_ssd::BlockDevice;
            let d = dev.borrow();
            if cfg.wal.region_base_lba + u64::from(cfg.wal.region_pages) > d.capacity_pages() {
                return Err(WalError::BadConfig("log region exceeds device".into()));
            }
        }
        let windows_needed = (cfg.policy.max_promoted as u64 + 1) * u64::from(cfg.window_pages);
        if windows_needed > pins.borrow().share_pages() {
            return Err(WalError::BadConfig(format!(
                "share holds {} pages but tail + {} promoted windows need {}",
                pins.borrow().share_pages(),
                cfg.policy.max_promoted,
                windows_needed
            )));
        }
        let (eid, pin) = pins.borrow_mut().pin(
            &mut dev.borrow_mut(),
            SimTime::ZERO,
            tenant,
            Lba(cfg.wal.region_base_lba),
            cfg.window_pages,
        )?;
        if cfg.byte_front_end != RegionFrontEnd::BaMmio {
            pins.borrow_mut()
                .set_front_end(pin.complete_at, tenant, eid, cfg.byte_front_end)?;
        }
        let policy = TierPolicy::new(cfg.policy);
        Ok(TieredWal {
            dev,
            cal,
            pins,
            tenant,
            cfg,
            policy,
            tail_eid: eid,
            tail_seg: 0,
            ready_at: pin.complete_at,
            used: 0,
            next_lsn: 0,
            index: BTreeMap::new(),
            promoted: BTreeMap::new(),
        })
    }

    /// The owning tenant.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// The byte front-end serving the hot tier.
    pub fn front_end(&self) -> RegionFrontEnd {
        self.cfg.byte_front_end
    }

    /// Tiering counters.
    pub fn stats(&self) -> TierStats {
        self.policy.stats()
    }

    /// The policy (read-only), for inspecting heat decisions.
    pub fn policy(&self) -> &TierPolicy {
        &self.policy
    }

    /// Segments currently promoted into the byte tier (tail excluded).
    pub fn promoted_segments(&self) -> Vec<u64> {
        self.promoted.keys().copied().collect()
    }

    fn window_bytes(&self) -> u64 {
        u64::from(self.cfg.window_pages) * PAGE
    }

    fn num_segments(&self) -> u64 {
        u64::from(self.cfg.wal.region_pages) / u64::from(self.cfg.window_pages)
    }

    /// First LBA of the slot a segment occupies in the wrapped region.
    fn segment_lba(&self, seg: u64) -> Lba {
        let slot = seg % self.num_segments();
        Lba(self.cfg.wal.region_base_lba + slot * u64::from(self.cfg.window_pages))
    }

    /// Oldest segment whose log-region slot has not been overwritten.
    fn oldest_live_seg(&self) -> u64 {
        self.tail_seg.saturating_sub(self.num_segments() - 1)
    }

    fn oldest_lsn(&self) -> u64 {
        self.index.keys().next().copied().unwrap_or(self.next_lsn)
    }

    /// The durability op of the tail's front-end (persist barrier on the
    /// CXL path, range `BA_SYNC` on the MMIO path).
    fn sync_op(&self, rel_offset: u64, len: u64) -> IoOp {
        match self.cfg.byte_front_end {
            RegionFrontEnd::Cxl => IoOp::CxlPersist {
                eid: self.tail_eid,
                rel_offset,
                len,
            },
            _ => IoOp::BaSyncRange {
                eid: self.tail_eid,
                rel_offset,
                len,
            },
        }
    }

    /// Flushes a promoted segment back to NAND and unpins it.
    fn demote_promoted(&mut self, seg: u64, at: SimTime) -> Result<SimTime, WalError> {
        let hot = self
            .promoted
            .remove(&seg)
            .ok_or_else(|| WalError::BadConfig(format!("segment {seg} is not promoted")))?;
        let t = at.max(hot.ready_at);
        self.pins
            .borrow_mut()
            .begin_unpin(t, self.tenant, hot.eid)?;
        let flush = run_op(&self.dev, &self.cal, t, IoOp::BaFlush { eid: hot.eid })?;
        self.pins.borrow_mut().finish_unpin(hot.eid)?;
        self.policy.record_demotion();
        Ok(flush.complete_at)
    }

    /// Pins a cold segment into the byte tier (evicting the coldest
    /// promoted segment first if the policy's budget is full).
    fn promote(&mut self, seg: u64, at: SimTime) -> Result<(), WalError> {
        let mut t = at;
        if self.promoted.len() >= self.cfg.policy.max_promoted {
            let victim = self
                .policy
                .coldest(self.promoted.keys().copied())
                .expect("a full promotion budget has a victim");
            t = self.demote_promoted(victim, t)?;
        }
        let (eid, pin) = self.pins.borrow_mut().pin(
            &mut self.dev.borrow_mut(),
            t,
            self.tenant,
            self.segment_lba(seg),
            self.cfg.window_pages,
        )?;
        if self.cfg.byte_front_end != RegionFrontEnd::BaMmio {
            self.pins.borrow_mut().set_front_end(
                pin.complete_at,
                self.tenant,
                eid,
                self.cfg.byte_front_end,
            )?;
        }
        self.promoted.insert(
            seg,
            HotSegment {
                eid,
                ready_at: pin.complete_at,
            },
        );
        self.policy.record_promotion();
        Ok(())
    }

    /// Demotes the full tail window to NAND and pins the next segment's
    /// slot as the new tail.
    fn rotate(&mut self, at: SimTime) -> Result<SimTime, WalError> {
        self.pins
            .borrow_mut()
            .begin_unpin(at, self.tenant, self.tail_eid)?;
        let flush = run_op(
            &self.dev,
            &self.cal,
            at,
            IoOp::BaFlush { eid: self.tail_eid },
        )?;
        self.pins.borrow_mut().finish_unpin(self.tail_eid)?;
        self.policy.record_demotion();
        let next_seg = self.tail_seg + 1;
        let mut t = flush.complete_at;
        // The wrap reuses the oldest segment's slot: its records are gone
        // and, if it was promoted, its window must leave the buffer.
        if next_seg >= self.num_segments() {
            let dying = next_seg - self.num_segments();
            if self.promoted.contains_key(&dying) {
                t = self.demote_promoted(dying, t)?;
            }
            self.index.retain(|_, loc| loc.seg != dying);
            self.policy.forget(dying);
        }
        let (eid, pin) = self.pins.borrow_mut().pin(
            &mut self.dev.borrow_mut(),
            t,
            self.tenant,
            self.segment_lba(next_seg),
            self.cfg.window_pages,
        )?;
        if self.cfg.byte_front_end != RegionFrontEnd::BaMmio {
            self.pins.borrow_mut().set_front_end(
                pin.complete_at,
                self.tenant,
                eid,
                self.cfg.byte_front_end,
            )?;
        }
        self.tail_eid = eid;
        self.tail_seg = next_seg;
        self.ready_at = pin.complete_at;
        self.used = 0;
        Ok(pin.complete_at)
    }

    /// Appends one record to the hot tail and commits it through the
    /// front-end's durability op.
    ///
    /// # Errors
    ///
    /// [`WalError::RecordTooLarge`] if the record cannot fit a window,
    /// or device/arbiter failures.
    pub fn append(&mut self, now: SimTime, payload: &[u8]) -> Result<CommitOutcome, WalError> {
        let record = LogRecord::new(Lsn(self.next_lsn), payload.to_vec());
        let bytes = record.encode();
        if bytes.len() as u64 > self.window_bytes() {
            return Err(WalError::RecordTooLarge {
                got: bytes.len(),
                max: self.window_bytes() as usize,
            });
        }
        let lsn = record.lsn;
        self.next_lsn += 1;
        let mut t = (now + self.cfg.wal.record_overhead).max(self.ready_at);
        if self.used + bytes.len() as u64 > self.window_bytes() {
            t = t.max(self.rotate(t)?);
        }
        let store = self.pins.borrow_mut().write(
            &mut self.dev.borrow_mut(),
            t,
            self.tenant,
            self.tail_eid,
            self.used,
            &bytes,
        )?;
        let sync = run_op(
            &self.dev,
            &self.cal,
            store.retired_at,
            self.sync_op(self.used, bytes.len() as u64),
        )?;
        self.index.insert(
            lsn.0,
            RecordLoc {
                seg: self.tail_seg,
                offset: self.used,
                len: bytes.len() as u64,
            },
        );
        self.used += bytes.len() as u64;
        Ok(CommitOutcome {
            lsn,
            commit_at: sync.complete_at,
            durable_at: Some(sync.complete_at),
        })
    }

    /// Reads one committed record back, returning its payload and the
    /// read's completion instant. Byte-tier segments (the tail and
    /// promoted ones) serve through the configured front-end; demoted
    /// segments ride the block path, and the policy may promote them as
    /// a side effect.
    ///
    /// # Errors
    ///
    /// [`WalError::CursorLag`] if region wrap-around overwrote the
    /// record, [`WalError::BadConfig`] for an LSN never appended, or
    /// device failures.
    pub fn read(&mut self, now: SimTime, lsn: Lsn) -> Result<(Vec<u8>, SimTime), WalError> {
        let loc = match self.index.get(&lsn.0) {
            Some(loc) => *loc,
            None if lsn.0 < self.next_lsn => {
                return Err(WalError::CursorLag {
                    requested: lsn.0,
                    oldest: self.oldest_lsn(),
                })
            }
            None => {
                return Err(WalError::BadConfig(format!(
                    "{lsn:?} has not been appended"
                )))
            }
        };
        let (bytes, done_at) = if loc.seg == self.tail_seg {
            self.policy.on_hot_read(loc.seg, now);
            let t = now.max(self.ready_at);
            let out = self.pins.borrow_mut().read(
                &mut self.dev.borrow_mut(),
                t,
                self.tenant,
                self.tail_eid,
                loc.offset,
                loc.len,
            )?;
            (out.data, out.complete_at)
        } else if let Some(hot) = self.promoted.get(&loc.seg).copied() {
            self.policy.on_hot_read(loc.seg, now);
            let t = now.max(hot.ready_at);
            let out = self.pins.borrow_mut().read(
                &mut self.dev.borrow_mut(),
                t,
                self.tenant,
                hot.eid,
                loc.offset,
                loc.len,
            )?;
            (out.data, out.complete_at)
        } else {
            if loc.seg < self.oldest_live_seg() {
                return Err(WalError::CursorLag {
                    requested: lsn.0,
                    oldest: self.oldest_lsn(),
                });
            }
            let first_page = loc.offset / PAGE;
            let last_page = (loc.offset + loc.len - 1) / PAGE;
            let lba = Lba(self.segment_lba(loc.seg).0 + first_page);
            let done = run_op(
                &self.dev,
                &self.cal,
                now,
                IoOp::BlockRead {
                    lba,
                    pages: (last_page - first_page + 1) as u32,
                },
            )?;
            let data = done.data.expect("block reads complete with data");
            let start = (loc.offset - first_page * PAGE) as usize;
            let bytes = data[start..start + loc.len as usize].to_vec();
            if self.policy.on_cold_read(loc.seg, now) == TierAction::Promote {
                self.promote(loc.seg, done.complete_at)?;
            }
            (bytes, done.complete_at)
        };
        let (record, _) = LogRecord::decode(&bytes).ok_or_else(|| {
            WalError::CorruptTail(format!("{lsn:?} failed to decode from its tier"))
        })?;
        if record.lsn != lsn {
            return Err(WalError::CorruptTail(format!(
                "tier read returned {:?} where {lsn:?} was indexed",
                record.lsn
            )));
        }
        Ok((record.payload, done_at))
    }

    /// Demotes every promoted segment that has idled past the policy's
    /// threshold (the background stage a host would run periodically),
    /// returning how many were demoted.
    ///
    /// # Errors
    ///
    /// Propagates device and arbiter failures.
    pub fn sweep(&mut self, now: SimTime) -> Result<usize, WalError> {
        let idle: Vec<u64> = self
            .promoted
            .keys()
            .copied()
            .filter(|&seg| self.policy.wants_demotion(seg, now))
            .collect();
        for seg in &idle {
            self.demote_promoted(*seg, now)?;
        }
        Ok(idle.len())
    }

    /// Flushes whatever the tail holds (e.g. at shutdown) and re-pins,
    /// returning when the tail is durable on NAND.
    ///
    /// # Errors
    ///
    /// Propagates device and arbiter errors.
    pub fn finalize(&mut self, now: SimTime) -> Result<SimTime, WalError> {
        if self.used > 0 {
            self.rotate(now.max(self.ready_at))
        } else {
            Ok(now)
        }
    }
}

#[cfg(test)]
mod tests {
    use std::cell::RefCell;
    use std::rc::Rc;

    use twob_core::{IoCalendar, PinTable, TwoBSsd};

    use super::*;

    fn rig() -> (SharedDevice, SharedCalendar, SharedPins) {
        let dev = TwoBSsd::small_for_tests();
        let pins = PinTable::new(dev.spec(), 1).unwrap();
        (
            Rc::new(RefCell::new(dev)),
            Rc::new(RefCell::new(IoCalendar::new())),
            Rc::new(RefCell::new(pins)),
        )
    }

    fn wal_with(cfg: TierWalConfig) -> (TieredWal, SharedDevice, SharedCalendar) {
        let (dev, cal, pins) = rig();
        let wal = TieredWal::new(dev.clone(), cal.clone(), pins, TenantId(0), cfg).unwrap();
        (wal, dev, cal)
    }

    /// Appends enough ~1 KiB records to rotate `segments` full windows
    /// out to NAND, returning (wal, dev, cal, time after the appends).
    fn filled(
        cfg: TierWalConfig,
        segments: u64,
    ) -> (TieredWal, SharedDevice, SharedCalendar, SimTime) {
        let (mut wal, dev, cal) = wal_with(cfg);
        let mut t = SimTime::from_nanos(1_000_000);
        let per_window = wal.window_bytes() / 1024;
        for i in 0..(per_window * segments + 1) {
            let payload = vec![(i % 251) as u8; 1024 - 16];
            t = wal.append(t, &payload).unwrap().commit_at;
        }
        assert!(wal.tail_seg >= segments, "fill did not rotate enough");
        (wal, dev, cal, t)
    }

    #[test]
    fn hot_tail_reads_serve_from_the_byte_tier() {
        let (mut wal, dev, _cal) = wal_with(TierWalConfig::default());
        let out = wal.append(SimTime::ZERO, b"tail record").unwrap();
        let (bytes, _) = wal.read(out.commit_at, out.lsn).unwrap();
        assert_eq!(bytes, b"tail record");
        let s = wal.stats();
        assert_eq!((s.hot_hits, s.cold_hits), (1, 0));
        // Default front-end is CXL: the read was a line-streamed load.
        assert_eq!(dev.borrow().stats().cxl_loads, 1);
        assert_eq!(dev.borrow().stats().cxl_persists, 1);
    }

    #[test]
    fn mmio_front_end_serves_the_paper_byte_path() {
        let cfg = TierWalConfig {
            byte_front_end: RegionFrontEnd::BaMmio,
            ..TierWalConfig::default()
        };
        let (mut wal, dev, _cal) = wal_with(cfg);
        let out = wal.append(SimTime::ZERO, b"mmio record").unwrap();
        let (bytes, _) = wal.read(out.commit_at, out.lsn).unwrap();
        assert_eq!(bytes, b"mmio record");
        let stats = dev.borrow().stats();
        assert_eq!(stats.syncs, 1, "commit should be a range BA_SYNC");
        assert_eq!(stats.cxl_persists, 0);
        assert_eq!(stats.mmio_loads, 1);
    }

    #[test]
    fn block_front_end_is_rejected_for_the_tail() {
        let (dev, cal, pins) = rig();
        let cfg = TierWalConfig {
            byte_front_end: RegionFrontEnd::Block,
            ..TierWalConfig::default()
        };
        let err = TieredWal::new(dev, cal, pins, TenantId(0), cfg).unwrap_err();
        assert!(matches!(err, WalError::BadConfig(_)), "got {err:?}");
    }

    #[test]
    fn rotated_records_come_back_from_block_nand() {
        let (mut wal, _dev, _cal, t) = filled(TierWalConfig::default(), 2);
        let (bytes, _) = wal.read(t, Lsn(0)).unwrap();
        assert_eq!(bytes, vec![0u8; 1024 - 16]);
        let s = wal.stats();
        assert_eq!(s.cold_hits, 1);
        assert!(s.demotions >= 2, "rotations demote windows to NAND");
        assert_eq!(s.promotions, 0, "one cold hit must not promote yet");
    }

    #[test]
    fn repeated_cold_reads_promote_the_segment() {
        let (mut wal, _dev, _cal, t) = filled(TierWalConfig::default(), 2);
        let (_, t1) = wal.read(t, Lsn(0)).unwrap();
        let cold_lat = t1.saturating_since(t);
        let (_, t2) = wal.read(t1, Lsn(1)).unwrap();
        assert_eq!(wal.stats().promotions, 1, "second hit within the window");
        assert_eq!(wal.promoted_segments(), vec![0]);
        // The next read of that segment is a byte-tier hit; the first one
        // still waits out the promotion's NAND→buffer fill, so time the
        // one after it for the steady-state win.
        let (bytes, t3) = wal.read(t2, Lsn(2)).unwrap();
        assert_eq!(bytes, vec![2u8; 1024 - 16]);
        let (_, t4) = wal.read(t3, Lsn(3)).unwrap();
        assert_eq!(wal.stats().hot_hits, 2);
        let hot_lat = t4.saturating_since(t3);
        assert!(
            hot_lat < cold_lat,
            "promoted read {hot_lat} should beat block read {cold_lat}"
        );
    }

    #[test]
    fn promotion_budget_evicts_the_coldest_segment() {
        let cfg = TierWalConfig {
            policy: TierPolicyConfig {
                max_promoted: 1,
                ..TierPolicyConfig::default()
            },
            ..TierWalConfig::default()
        };
        let (mut wal, _dev, _cal, t) = filled(cfg, 3);
        let per_window = wal.window_bytes() / 1024;
        // Promote segment 0, then heat segment 1 past the threshold: the
        // budget of one forces segment 0 back out.
        let (_, t1) = wal.read(t, Lsn(0)).unwrap();
        let (_, t2) = wal.read(t1, Lsn(1)).unwrap();
        assert_eq!(wal.promoted_segments(), vec![0]);
        let (_, t3) = wal.read(t2, Lsn(per_window)).unwrap();
        let (_, _t4) = wal.read(t3, Lsn(per_window + 1)).unwrap();
        assert_eq!(wal.promoted_segments(), vec![1]);
        let s = wal.stats();
        assert_eq!(s.promotions, 2);
        // 3 tail rotations + 1 capacity eviction.
        assert_eq!(s.demotions, 4);
    }

    #[test]
    fn sweep_demotes_idle_promoted_segments() {
        let (mut wal, _dev, _cal, t) = filled(TierWalConfig::default(), 2);
        let (_, t1) = wal.read(t, Lsn(0)).unwrap();
        let (_, t2) = wal.read(t1, Lsn(1)).unwrap();
        assert_eq!(wal.promoted_segments(), vec![0]);
        let idle_cutoff = t2 + wal.policy().config().demote_after;
        assert_eq!(wal.sweep(t2).unwrap(), 0, "a hot segment must survive");
        assert_eq!(wal.sweep(idle_cutoff).unwrap(), 1);
        assert!(wal.promoted_segments().is_empty());
        // A read after the sweep rides the block path again.
        let before = wal.stats().cold_hits;
        wal.read(idle_cutoff, Lsn(0)).unwrap();
        assert_eq!(wal.stats().cold_hits, before + 1);
    }

    #[test]
    fn wraparound_overwrites_the_oldest_segment() {
        let cfg = TierWalConfig {
            wal: WalConfig {
                region_pages: 8,
                ..WalConfig::default()
            },
            ..TierWalConfig::default()
        };
        // 4 segments of 2 pages; filling 5 wraps past segment 0.
        let (mut wal, _dev, _cal, t) = filled(cfg, 5);
        let err = wal.read(t, Lsn(0)).unwrap_err();
        assert!(matches!(err, WalError::CursorLag { .. }), "got {err:?}");
        // The oldest surviving record still reads back.
        let oldest = wal.oldest_lsn();
        let (bytes, _) = wal.read(t, Lsn(oldest)).unwrap();
        assert_eq!(bytes, vec![(oldest % 251) as u8; 1024 - 16]);
    }

    #[test]
    fn unknown_lsn_is_loud() {
        let (mut wal, _dev, _cal) = wal_with(TierWalConfig::default());
        let err = wal.read(SimTime::ZERO, Lsn(5)).unwrap_err();
        assert!(matches!(err, WalError::BadConfig(_)), "got {err:?}");
    }

    #[test]
    fn finalize_flushes_the_tail() {
        let (mut wal, dev, _cal) = wal_with(TierWalConfig::default());
        let out = wal.append(SimTime::ZERO, b"to flush").unwrap();
        let flushes_before = dev.borrow().stats().flushes;
        wal.finalize(out.commit_at).unwrap();
        assert_eq!(dev.borrow().stats().flushes, flushes_before + 1);
        // The record survived demotion: it now reads from NAND.
        let t = out.commit_at + SimDuration::from_micros(100);
        let (bytes, _) = wal.read(t, out.lsn).unwrap();
        assert_eq!(bytes, b"to flush");
        assert_eq!(wal.stats().cold_hits, 1);
    }

    #[test]
    fn tiering_runs_are_deterministic_and_never_clamp() {
        let trace = || {
            let (mut wal, _dev, cal, t) = filled(TierWalConfig::default(), 2);
            let mut digest = Vec::new();
            let mut now = t;
            for lsn in [0u64, 1, 2, 0, 5, 1] {
                let (bytes, done) = wal.read(now, Lsn(lsn)).unwrap();
                digest.push((lsn, bytes.len(), done.as_nanos()));
                now = done;
            }
            wal.sweep(now + wal.policy().config().demote_after).unwrap();
            assert_eq!(cal.borrow().clamped_posts(), 0);
            (digest, wal.stats())
        };
        assert_eq!(trace(), trace());
    }
}
