//! FTL configuration.

use serde::{Deserialize, Serialize};

/// Tunables of the page-mapped FTL.
///
/// # Example
///
/// ```rust
/// use twob_ftl::FtlConfig;
///
/// let cfg = FtlConfig {
///     over_provisioning: 0.10,
///     ..FtlConfig::default()
/// };
/// assert!(cfg.over_provisioning > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FtlConfig {
    /// Fraction of raw capacity hidden from the host for GC headroom
    /// (enterprise drives use 7–28 %).
    pub over_provisioning: f64,
    /// GC starts when free blocks drop below this many.
    pub gc_low_watermark: u32,
    /// GC stops once this many blocks are free again.
    pub gc_high_watermark: u32,
    /// Erase blocks reserved at the end of the array, excluded from the
    /// FTL entirely. The 2B-SSD recovery manager uses this area to dump the
    /// BA-buffer on power loss (paper §III-A4).
    pub reserved_blocks: u32,
}

impl Default for FtlConfig {
    fn default() -> Self {
        FtlConfig {
            over_provisioning: 0.07,
            gc_low_watermark: 4,
            gc_high_watermark: 8,
            reserved_blocks: 0,
        }
    }
}

impl FtlConfig {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..0.9).contains(&self.over_provisioning) {
            return Err(format!(
                "over_provisioning {} outside [0, 0.9)",
                self.over_provisioning
            ));
        }
        if self.gc_high_watermark < self.gc_low_watermark {
            return Err("gc_high_watermark below gc_low_watermark".to_string());
        }
        if self.gc_low_watermark < 2 {
            return Err("gc_low_watermark must be at least 2".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(FtlConfig::default().validate().is_ok());
    }

    #[test]
    fn rejects_inverted_watermarks() {
        let cfg = FtlConfig {
            gc_low_watermark: 8,
            gc_high_watermark: 4,
            ..FtlConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_silly_over_provisioning() {
        let cfg = FtlConfig {
            over_provisioning: 0.95,
            ..FtlConfig::default()
        };
        assert!(cfg.validate().is_err());
    }
}
