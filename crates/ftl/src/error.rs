//! Error type for FTL operations.

use std::error::Error;
use std::fmt;

use twob_nand::NandError;

use crate::ftl::Lba;

/// Errors raised by the FTL.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FtlError {
    /// The LBA lies beyond the exported capacity.
    LbaOutOfRange {
        /// The offending LBA.
        lba: Lba,
        /// Number of exported LBAs.
        capacity: u64,
    },
    /// The LBA has never been written (or was trimmed).
    Unmapped(Lba),
    /// GC could not reclaim space: the drive is effectively full.
    OutOfSpace,
    /// The supplied buffer is not exactly one page.
    WrongBufferLen {
        /// Buffer length supplied by the caller.
        got: usize,
        /// Page size expected by the geometry.
        expected: usize,
    },
    /// An underlying NAND operation failed.
    Nand(NandError),
    /// The configuration failed validation.
    BadConfig(String),
}

impl fmt::Display for FtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FtlError::LbaOutOfRange { lba, capacity } => {
                write!(f, "{lba} beyond exported capacity of {capacity} pages")
            }
            FtlError::Unmapped(lba) => write!(f, "{lba} is unmapped"),
            FtlError::OutOfSpace => write!(f, "no reclaimable space left"),
            FtlError::WrongBufferLen { got, expected } => {
                write!(f, "buffer of {got} bytes where page size is {expected}")
            }
            FtlError::Nand(e) => write!(f, "nand: {e}"),
            FtlError::BadConfig(msg) => write!(f, "invalid ftl config: {msg}"),
        }
    }
}

impl Error for FtlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FtlError::Nand(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NandError> for FtlError {
    fn from(e: NandError) -> Self {
        FtlError::Nand(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_nonempty() {
        for e in [
            FtlError::Unmapped(Lba(4)),
            FtlError::OutOfSpace,
            FtlError::BadConfig("x".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn nand_error_is_source() {
        use std::error::Error as _;
        let g = twob_nand::NandGeometry::small_test();
        let inner = NandError::BadBlock(g.block_addr(0, 0, 0, 0));
        let e = FtlError::from(inner);
        assert!(e.source().is_some());
    }
}
