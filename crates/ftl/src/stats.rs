//! FTL statistics and write-amplification accounting.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Counters exported by the FTL.
///
/// The headline figure is [`FtlStats::waf`], the write amplification factor:
/// physical programs divided by host programs. The paper argues (§IV-A) that
/// BA-WAL reduces WAF because each log page is programmed once, full, instead
/// of once per partial rewrite.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FtlStats {
    /// Host-initiated page reads.
    pub host_reads: u64,
    /// Host-initiated page programs.
    pub host_writes: u64,
    /// GC relocation reads.
    pub gc_reads: u64,
    /// GC relocation programs.
    pub gc_writes: u64,
    /// Block erases.
    pub erases: u64,
    /// TRIM operations that unmapped an LBA.
    pub trims: u64,
    /// Blocks currently in the free pool.
    pub free_blocks: u64,
    /// LBAs currently mapped.
    pub mapped_lbas: u64,
}

impl FtlStats {
    /// Write amplification factor: `(host + GC programs) / host programs`.
    /// Returns 1.0 when nothing has been written.
    pub fn waf(&self) -> f64 {
        if self.host_writes == 0 {
            1.0
        } else {
            (self.host_writes + self.gc_writes) as f64 / self.host_writes as f64
        }
    }

    /// Total physical programs.
    pub fn total_programs(&self) -> u64 {
        self.host_writes + self.gc_writes
    }
}

impl fmt::Display for FtlStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "host r/w {}/{}, gc r/w {}/{}, erases {}, WAF {:.3}",
            self.host_reads,
            self.host_writes,
            self.gc_reads,
            self.gc_writes,
            self.erases,
            self.waf()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waf_of_idle_ftl_is_one() {
        assert_eq!(FtlStats::default().waf(), 1.0);
    }

    #[test]
    fn waf_counts_gc() {
        let stats = FtlStats {
            host_writes: 100,
            gc_writes: 50,
            ..FtlStats::default()
        };
        assert!((stats.waf() - 1.5).abs() < 1e-12);
        assert_eq!(stats.total_programs(), 150);
    }

    #[test]
    fn display_mentions_waf() {
        let s = FtlStats::default().to_string();
        assert!(s.contains("WAF"));
    }
}
