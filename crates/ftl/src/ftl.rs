//! The page-mapped FTL proper.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::fmt;

use serde::{Deserialize, Serialize};
use twob_nand::{BlockAddr, NandArray, PageAddr, Ppa, TimingBreakdown};

use crate::{FtlConfig, FtlError, FtlStats};

/// A logical block address in 4 KiB-page units — the address the host sees.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct Lba(pub u64);

impl fmt::Display for Lba {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lba:{}", self.0)
    }
}

/// Identifies one die (channel, way) for scheduling affinity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DieId {
    /// Channel index.
    pub channel: u32,
    /// Way index within the channel.
    pub way: u32,
}

/// Why a NAND operation happened, for accounting and scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FtlOpKind {
    /// A read on behalf of the host.
    HostRead,
    /// A program on behalf of the host.
    HostProgram,
    /// A read relocating a valid page during GC.
    GcRead,
    /// A program relocating a valid page during GC.
    GcProgram,
    /// A block erase during GC.
    Erase,
}

/// One physical NAND operation the FTL performed, with the resources it
/// occupies. The SSD layer schedules `timing.die_time` on the die and
/// `timing.xfer_time` on the channel bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FtlIo {
    /// The die the operation ran on.
    pub die: DieId,
    /// Die and bus occupancy.
    pub timing: TimingBreakdown,
    /// The reason for the operation.
    pub kind: FtlOpKind,
}

/// The result of a host read through the FTL.
#[derive(Debug, Clone)]
pub struct FtlReadResult {
    /// The page contents.
    pub data: Vec<u8>,
    /// NAND operations performed (a single host read).
    pub ios: Vec<FtlIo>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct OpenBlock {
    flat: u64,
    next: u32,
}

/// One in-flight incremental GC job, bound to a single victim block (and
/// therefore to the die holding it).
///
/// A job is created by [`PageMappedFtl::gc_start`] and advanced one
/// page-move (or the final erase) at a time by [`PageMappedFtl::gc_step`],
/// so a scheduler can interleave foreground I/O between steps. Statistics
/// are charged only when a step executes, never when the job is planned, so
/// abandoned jobs leave WAF accounting correct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcJob {
    victim: u64,
    next_page: u32,
    moved: u32,
}

impl GcJob {
    /// Flat index of the victim block being collected.
    pub fn victim_block(&self) -> u64 {
        self.victim
    }

    /// Valid pages relocated so far by executed steps.
    pub fn pages_moved(&self) -> u32 {
        self.moved
    }
}

/// The outcome of one executed GC step.
#[derive(Debug, Clone)]
pub struct GcStepResult {
    /// The NAND operations this step performed (a read+program pair for a
    /// page move, or a single erase for the final step).
    pub ios: Vec<FtlIo>,
    /// `true` if the job finished: the victim was erased and returned to
    /// the free pool.
    pub done: bool,
}

/// A page-mapped FTL wrapping a [`NandArray`].
///
/// See the crate docs for the design; see [`FtlConfig`] for tunables.
#[derive(Debug, Clone)]
pub struct PageMappedFtl {
    nand: NandArray,
    cfg: FtlConfig,
    /// LBA → flat PPA.
    map: HashMap<Lba, Ppa>,
    /// Flat PPA → LBA for valid pages (reverse map).
    reverse: HashMap<u64, Lba>,
    /// Valid-page count per flat block that currently holds data.
    valid_count: HashMap<u64, u32>,
    /// Pre-erased blocks per die, lowest erase count first.
    free: Vec<BinaryHeap<Reverse<(u64, u64)>>>,
    /// Open write frontier per die.
    frontiers: Vec<Option<OpenBlock>>,
    /// Blocks that are fully programmed (GC victim candidates).
    full_blocks: Vec<u64>,
    /// In-flight incremental GC job per die (at most one per die).
    gc_jobs: Vec<Option<GcJob>>,
    /// When `true`, `write` no longer runs watermark GC inline; an external
    /// scheduler drives jobs via `gc_start`/`gc_step`. A blocking emergency
    /// collection still fires if the free pool empties entirely.
    background_gc: bool,
    next_die: usize,
    usable_blocks: u64,
    exported_pages: u64,
    host_reads: u64,
    host_writes: u64,
    gc_reads: u64,
    gc_writes: u64,
    erases: u64,
    trims: u64,
    gc_jobs_started: u64,
    gc_jobs_abandoned: u64,
}

impl PageMappedFtl {
    /// Creates an FTL over `nand` with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or leaves no usable blocks;
    /// use [`FtlConfig::validate`] to check first.
    pub fn new(nand: NandArray, cfg: FtlConfig) -> Self {
        cfg.validate().expect("invalid FtlConfig");
        let geom = nand.geometry();
        let total_blocks = geom.blocks_total();
        assert!(
            u64::from(cfg.reserved_blocks) + u64::from(cfg.gc_high_watermark) + geom.dies_total()
                < total_blocks,
            "configuration leaves no usable blocks"
        );
        let usable_blocks = total_blocks - u64::from(cfg.reserved_blocks);
        let dies = geom.dies_total() as usize;
        let mut free: Vec<BinaryHeap<Reverse<(u64, u64)>>> =
            (0..dies).map(|_| BinaryHeap::new()).collect();
        for flat in 0..usable_blocks {
            let die = geom.die_index_of_flat_block(flat);
            free[die].push(Reverse((0, flat)));
        }
        // Headroom beyond the exported space: over-provisioning plus the
        // frontier blocks and GC watermark, so GC always has room to move.
        let raw_pages = usable_blocks * u64::from(geom.pages_per_block);
        let headroom = (u64::from(cfg.gc_high_watermark) + geom.dies_total())
            * u64::from(geom.pages_per_block);
        let exported_pages = ((raw_pages as f64 * (1.0 - cfg.over_provisioning)) as u64)
            .saturating_sub(headroom)
            .max(1);
        PageMappedFtl {
            nand,
            cfg,
            map: HashMap::new(),
            reverse: HashMap::new(),
            valid_count: HashMap::new(),
            free,
            frontiers: vec![None; dies],
            full_blocks: Vec::new(),
            gc_jobs: vec![None; dies],
            background_gc: false,
            next_die: 0,
            usable_blocks,
            exported_pages,
            host_reads: 0,
            host_writes: 0,
            gc_reads: 0,
            gc_writes: 0,
            erases: 0,
            trims: 0,
            gc_jobs_started: 0,
            gc_jobs_abandoned: 0,
        }
    }

    /// Number of LBAs exported to the host.
    pub fn exported_pages(&self) -> u64 {
        self.exported_pages
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.nand.geometry().page_size as usize
    }

    /// The wrapped NAND array (read-only).
    pub fn nand(&self) -> &NandArray {
        &self.nand
    }

    /// Mutable access to the wrapped NAND array.
    ///
    /// Intended for the 2B-SSD recovery manager, which addresses the
    /// reserved block region directly; normal I/O must go through the FTL.
    pub fn nand_mut(&mut self) -> &mut NandArray {
        &mut self.nand
    }

    /// Addresses of the reserved blocks excluded from the FTL, if any.
    pub fn reserved_blocks(&self) -> Vec<BlockAddr> {
        let geom = self.nand.geometry();
        (self.usable_blocks..geom.blocks_total())
            .map(|flat| geom.block_from_flat(flat))
            .collect()
    }

    fn die_of(&self, flat_block: u64) -> DieId {
        let addr = self.nand.geometry().block_from_flat(flat_block);
        DieId {
            channel: addr.channel,
            way: addr.way,
        }
    }

    fn die_index(&self, die: DieId) -> usize {
        self.nand.geometry().die_index(die.channel, die.way)
    }

    fn check_lba(&self, lba: Lba) -> Result<(), FtlError> {
        if lba.0 >= self.exported_pages {
            Err(FtlError::LbaOutOfRange {
                lba,
                capacity: self.exported_pages,
            })
        } else {
            Ok(())
        }
    }

    fn free_total(&self) -> usize {
        self.free.iter().map(BinaryHeap::len).sum()
    }

    fn page_addr(&self, flat_block: u64, page: u32) -> PageAddr {
        self.nand.geometry().block_from_flat(flat_block).page(page)
    }

    fn flat_ppa(&self, flat_block: u64, page: u32) -> u64 {
        flat_block * u64::from(self.nand.geometry().pages_per_block) + u64::from(page)
    }

    fn invalidate(&mut self, ppa: Ppa) {
        let pages_per_block = u64::from(self.nand.geometry().pages_per_block);
        let block = ppa.0 / pages_per_block;
        self.reverse.remove(&ppa.0);
        if let Some(count) = self.valid_count.get_mut(&block) {
            *count = count.saturating_sub(1);
        }
    }

    /// Programs `data` into the next frontier page of some die, updating
    /// maps. Returns the operations performed.
    fn append_page(
        &mut self,
        lba: Lba,
        data: &[u8],
        gc: bool,
        ios: &mut Vec<FtlIo>,
    ) -> Result<(), FtlError> {
        // Round-robin across dies so sequential writes overlap programs.
        let dies = self.frontiers.len();
        let start = self.next_die;
        self.next_die = (self.next_die + 1) % dies;
        let mut chosen = None;
        for offset in 0..dies {
            let die = (start + offset) % dies;
            if self.frontiers[die].is_some() || !self.free[die].is_empty() {
                chosen = Some(die);
                break;
            }
        }
        let die_idx = chosen.ok_or(FtlError::OutOfSpace)?;
        if self.frontiers[die_idx].is_none() {
            let Reverse((_, flat)) = self.free[die_idx].pop().expect("checked non-empty");
            self.frontiers[die_idx] = Some(OpenBlock { flat, next: 0 });
            self.valid_count.insert(flat, 0);
        }
        let open = self.frontiers[die_idx].expect("frontier just ensured");
        let addr = self.page_addr(open.flat, open.next);
        let result = self.nand.program_page(addr, data)?;
        let die = self.die_of(open.flat);
        ios.push(FtlIo {
            die,
            timing: result.timing,
            kind: if gc {
                FtlOpKind::GcProgram
            } else {
                FtlOpKind::HostProgram
            },
        });
        if gc {
            self.gc_writes += 1;
        } else {
            self.host_writes += 1;
        }
        let new_ppa = Ppa(self.flat_ppa(open.flat, open.next));
        if let Some(old) = self.map.insert(lba, new_ppa) {
            self.invalidate(old);
        }
        self.reverse.insert(new_ppa.0, lba);
        *self.valid_count.entry(open.flat).or_insert(0) += 1;
        // Advance or retire the frontier.
        let next = open.next + 1;
        if next == self.nand.geometry().pages_per_block {
            self.frontiers[die_idx] = None;
            self.full_blocks.push(open.flat);
        } else {
            self.frontiers[die_idx] = Some(OpenBlock {
                flat: open.flat,
                next,
            });
        }
        Ok(())
    }

    /// Returns `true` if the free pool has fallen below the GC trigger
    /// (low watermark) and collection should start or continue.
    pub fn gc_needed(&self) -> bool {
        self.free_total() < self.cfg.gc_low_watermark as usize
    }

    /// Returns `true` once the free pool has reached the GC stop target
    /// (high watermark).
    pub fn gc_satisfied(&self) -> bool {
        self.free_total() >= self.cfg.gc_high_watermark as usize
    }

    /// Number of pre-erased blocks currently in the free pool.
    pub fn free_blocks_now(&self) -> usize {
        self.free_total()
    }

    /// Returns `true` if any die has an in-flight GC job.
    pub fn gc_active(&self) -> bool {
        self.gc_jobs.iter().any(Option::is_some)
    }

    /// The in-flight GC job on `die`, if any.
    pub fn gc_job_on(&self, die: DieId) -> Option<GcJob> {
        self.gc_jobs[self.die_index(die)]
    }

    /// Switches between inline watermark GC inside [`PageMappedFtl::write`]
    /// (the default) and externally scheduled background GC.
    pub fn set_background_gc(&mut self, background: bool) {
        self.background_gc = background;
    }

    /// Returns `true` if GC is driven by an external scheduler.
    pub fn background_gc(&self) -> bool {
        self.background_gc
    }

    /// Lifetime counts of `(jobs started, jobs abandoned)`.
    pub fn gc_job_counts(&self) -> (u64, u64) {
        (self.gc_jobs_started, self.gc_jobs_abandoned)
    }

    /// Plans a new GC job on the greedy victim: the full block with the
    /// fewest valid pages whose die has no job in flight. Planning charges
    /// no statistics and performs no NAND work; the job's steps do that as
    /// they execute.
    ///
    /// Returns the die the job is bound to, or `Ok(None)` if candidate
    /// victims exist but all of their dies are busy collecting already.
    ///
    /// # Errors
    ///
    /// [`FtlError::OutOfSpace`] if there is no victim that could free
    /// space: no full blocks at all, or the best victim is fully valid.
    pub fn gc_start(&mut self) -> Result<Option<DieId>, FtlError> {
        if self.full_blocks.is_empty() {
            return Err(FtlError::OutOfSpace);
        }
        let victim_pos = self
            .full_blocks
            .iter()
            .enumerate()
            .filter(|(_, &flat)| self.gc_jobs[self.die_index(self.die_of(flat))].is_none())
            .min_by_key(|(_, &flat)| self.valid_count.get(&flat).copied().unwrap_or(0))
            .map(|(pos, _)| pos);
        let Some(pos) = victim_pos else {
            return Ok(None);
        };
        let victim = self.full_blocks.swap_remove(pos);
        // A victim with every page still valid cannot free space.
        if self.valid_count.get(&victim).copied().unwrap_or(0)
            == self.nand.geometry().pages_per_block
        {
            self.full_blocks.push(victim);
            return Err(FtlError::OutOfSpace);
        }
        let die = self.die_of(victim);
        let die_idx = self.die_index(die);
        self.gc_jobs[die_idx] = Some(GcJob {
            victim,
            next_page: 0,
            moved: 0,
        });
        self.gc_jobs_started += 1;
        Ok(Some(die))
    }

    /// Executes one step of the GC job on `die`: relocates the next valid
    /// page of the victim (one read + one program), or erases the victim if
    /// no valid pages remain. Statistics (`gc_reads`, `gc_writes`,
    /// `erases`) are charged here, at execution, so a preempted or
    /// abandoned job only accounts for the work it actually did.
    ///
    /// Returns `Ok(None)` if `die` has no job in flight.
    ///
    /// # Errors
    ///
    /// [`FtlError::OutOfSpace`] if a relocation finds no writable frontier
    /// anywhere; the job stays in flight and can be retried or abandoned.
    pub fn gc_step(&mut self, die: DieId) -> Result<Option<GcStepResult>, FtlError> {
        let die_idx = self.die_index(die);
        let Some(mut job) = self.gc_jobs[die_idx] else {
            return Ok(None);
        };
        let pages_per_block = self.nand.geometry().pages_per_block;
        // Skip pages invalidated since the last step (host overwrites may
        // race the job between steps).
        while job.next_page < pages_per_block {
            let ppa = self.flat_ppa(job.victim, job.next_page);
            if self.reverse.contains_key(&ppa) {
                break;
            }
            job.next_page += 1;
        }
        let mut ios = Vec::with_capacity(2);
        if job.next_page < pages_per_block {
            let page = job.next_page;
            let ppa = self.flat_ppa(job.victim, page);
            let lba = *self.reverse.get(&ppa).expect("page checked valid");
            let addr = self.page_addr(job.victim, page);
            let read = self.nand.read_page(addr)?;
            self.gc_reads += 1;
            ios.push(FtlIo {
                die: self.die_of(job.victim),
                timing: read.timing,
                kind: FtlOpKind::GcRead,
            });
            self.append_page(lba, &read.data, true, &mut ios)?;
            job.next_page = page + 1;
            job.moved += 1;
            self.gc_jobs[die_idx] = Some(job);
            Ok(Some(GcStepResult { ios, done: false }))
        } else {
            // Final step: erase the victim and return it to the free pool.
            let addr = self.nand.geometry().block_from_flat(job.victim);
            let erase = self.nand.erase_block(addr)?;
            self.erases += 1;
            ios.push(FtlIo {
                die: self.die_of(job.victim),
                timing: erase,
                kind: FtlOpKind::Erase,
            });
            self.valid_count.remove(&job.victim);
            let wear = self.nand.erase_count_of(addr);
            self.free[die_idx].push(Reverse((wear, job.victim)));
            self.gc_jobs[die_idx] = None;
            Ok(Some(GcStepResult { ios, done: true }))
        }
    }

    /// Abandons the GC job on `die`, returning its victim to the candidate
    /// pool. Pages already moved stay moved (their old copies were
    /// invalidated by the relocation), so no accounting is undone. Returns
    /// `true` if a job was abandoned.
    pub fn gc_abandon(&mut self, die: DieId) -> bool {
        let die_idx = self.die_index(die);
        if let Some(job) = self.gc_jobs[die_idx].take() {
            self.full_blocks.push(job.victim);
            self.gc_jobs_abandoned += 1;
            true
        } else {
            false
        }
    }

    /// Abandons every in-flight GC job (e.g. on power loss). Returns the
    /// number of jobs abandoned.
    pub fn gc_abandon_all(&mut self) -> u32 {
        let mut abandoned = 0;
        for die_idx in 0..self.gc_jobs.len() {
            if let Some(job) = self.gc_jobs[die_idx].take() {
                self.full_blocks.push(job.victim);
                self.gc_jobs_abandoned += 1;
                abandoned += 1;
            }
        }
        abandoned
    }

    /// Runs GC jobs to completion, one after another, until the free pool
    /// reaches the high watermark. This is the blocking driver used for
    /// inline (foreground) GC and as the emergency path when background
    /// scheduling falls behind.
    ///
    /// # Errors
    ///
    /// [`FtlError::OutOfSpace`] if no victim can free space.
    pub fn run_gc_to_watermark(&mut self, ios: &mut Vec<FtlIo>) -> Result<(), FtlError> {
        // Drive any in-flight background jobs to completion first so their
        // victims free up before new ones are planned.
        for die_idx in 0..self.gc_jobs.len() {
            while let Some(job) = self.gc_jobs[die_idx] {
                let die = self.die_of(job.victim);
                let step = self.gc_step(die)?.expect("job is in flight");
                ios.extend(step.ios);
                if step.done {
                    break;
                }
            }
        }
        while !self.gc_satisfied() {
            let die = match self.gc_start()? {
                Some(die) => die,
                // Unreachable with no jobs in flight, but be conservative.
                None => return Err(FtlError::OutOfSpace),
            };
            loop {
                let step = self.gc_step(die)?.expect("job just started");
                ios.extend(step.ios);
                if step.done {
                    break;
                }
            }
        }
        Ok(())
    }

    /// Writes one page at `lba`.
    ///
    /// Returns the physical NAND operations performed, including any GC
    /// work this write triggered. With background GC enabled, watermark
    /// collection is left to the external scheduler and only an emergency
    /// collection (free pool exhausted) blocks here.
    ///
    /// # Errors
    ///
    /// - [`FtlError::LbaOutOfRange`] beyond the exported capacity.
    /// - [`FtlError::WrongBufferLen`] if `data` is not exactly one page.
    /// - [`FtlError::OutOfSpace`] if GC cannot reclaim room.
    pub fn write(&mut self, lba: Lba, data: &[u8]) -> Result<Vec<FtlIo>, FtlError> {
        self.check_lba(lba)?;
        if data.len() != self.page_size() {
            return Err(FtlError::WrongBufferLen {
                got: data.len(),
                expected: self.page_size(),
            });
        }
        let mut ios = Vec::with_capacity(1);
        self.append_page(lba, data, false, &mut ios)?;
        let trigger = if self.background_gc {
            // Emergency only: the scheduler was supposed to keep up.
            1
        } else {
            self.cfg.gc_low_watermark as usize
        };
        if self.free_total() < trigger {
            self.run_gc_to_watermark(&mut ios)?;
        }
        Ok(ios)
    }

    /// Reads the page at `lba`.
    ///
    /// # Errors
    ///
    /// - [`FtlError::LbaOutOfRange`] beyond the exported capacity.
    /// - [`FtlError::Unmapped`] if the LBA was never written or was trimmed.
    pub fn read(&mut self, lba: Lba) -> Result<FtlReadResult, FtlError> {
        self.check_lba(lba)?;
        let ppa = *self.map.get(&lba).ok_or(FtlError::Unmapped(lba))?;
        let addr = self.nand.geometry().page_from_ppa(ppa);
        let result = self.nand.read_page(addr)?;
        self.host_reads += 1;
        let pages_per_block = u64::from(self.nand.geometry().pages_per_block);
        let die = self.die_of(ppa.0 / pages_per_block);
        Ok(FtlReadResult {
            data: result.data,
            ios: vec![FtlIo {
                die,
                timing: result.timing,
                kind: FtlOpKind::HostRead,
            }],
        })
    }

    /// Returns `true` if `lba` currently maps to data.
    pub fn is_mapped(&self, lba: Lba) -> bool {
        self.map.contains_key(&lba)
    }

    /// Discards the mapping for `lba`, marking its page stale.
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::LbaOutOfRange`] beyond the exported capacity;
    /// trimming an unmapped LBA is a no-op.
    pub fn trim(&mut self, lba: Lba) -> Result<(), FtlError> {
        self.check_lba(lba)?;
        if let Some(ppa) = self.map.remove(&lba) {
            self.invalidate(ppa);
            self.trims += 1;
        }
        Ok(())
    }

    /// Current statistics, including write amplification.
    pub fn stats(&self) -> FtlStats {
        FtlStats {
            host_reads: self.host_reads,
            host_writes: self.host_writes,
            gc_reads: self.gc_reads,
            gc_writes: self.gc_writes,
            erases: self.erases,
            trims: self.trims,
            free_blocks: self.free_total() as u64,
            mapped_lbas: self.map.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twob_nand::{FlashClass, NandGeometry};

    fn small_ftl(op: f64) -> PageMappedFtl {
        let geom = NandGeometry::small_test();
        let nand = NandArray::new(geom, FlashClass::LowLatencySlc.timing());
        PageMappedFtl::new(
            nand,
            FtlConfig {
                over_provisioning: op,
                gc_low_watermark: 3,
                gc_high_watermark: 5,
                reserved_blocks: 0,
            },
        )
    }

    fn page_of(byte: u8) -> Vec<u8> {
        vec![byte; 4096]
    }

    #[test]
    fn write_read_round_trip() {
        let mut ftl = small_ftl(0.25);
        ftl.write(Lba(0), &page_of(0x11)).unwrap();
        ftl.write(Lba(1), &page_of(0x22)).unwrap();
        assert_eq!(ftl.read(Lba(0)).unwrap().data, page_of(0x11));
        assert_eq!(ftl.read(Lba(1)).unwrap().data, page_of(0x22));
    }

    #[test]
    fn overwrite_returns_fresh_data() {
        let mut ftl = small_ftl(0.25);
        ftl.write(Lba(7), &page_of(0x01)).unwrap();
        ftl.write(Lba(7), &page_of(0x02)).unwrap();
        assert_eq!(ftl.read(Lba(7)).unwrap().data, page_of(0x02));
    }

    #[test]
    fn unmapped_read_errors() {
        let mut ftl = small_ftl(0.25);
        assert_eq!(ftl.read(Lba(5)).unwrap_err(), FtlError::Unmapped(Lba(5)));
    }

    #[test]
    fn out_of_range_lba_rejected() {
        let mut ftl = small_ftl(0.25);
        let beyond = Lba(ftl.exported_pages());
        assert!(matches!(
            ftl.write(beyond, &page_of(0)),
            Err(FtlError::LbaOutOfRange { .. })
        ));
        assert!(matches!(
            ftl.read(beyond),
            Err(FtlError::LbaOutOfRange { .. })
        ));
    }

    #[test]
    fn wrong_len_rejected() {
        let mut ftl = small_ftl(0.25);
        assert!(matches!(
            ftl.write(Lba(0), &[0u8; 64]),
            Err(FtlError::WrongBufferLen { .. })
        ));
    }

    #[test]
    fn trim_unmaps() {
        let mut ftl = small_ftl(0.25);
        ftl.write(Lba(3), &page_of(9)).unwrap();
        ftl.trim(Lba(3)).unwrap();
        assert!(!ftl.is_mapped(Lba(3)));
        assert!(matches!(ftl.read(Lba(3)), Err(FtlError::Unmapped(_))));
        // Trimming again is a no-op.
        ftl.trim(Lba(3)).unwrap();
    }

    #[test]
    fn sequential_writes_stripe_across_dies() {
        let mut ftl = small_ftl(0.25);
        let io_a = ftl.write(Lba(0), &page_of(1)).unwrap();
        let io_b = ftl.write(Lba(1), &page_of(2)).unwrap();
        assert_ne!(io_a[0].die, io_b[0].die);
    }

    #[test]
    fn gc_reclaims_space_under_overwrite_churn() {
        let mut ftl = small_ftl(0.25);
        let lbas = ftl.exported_pages().min(64);
        // Write far more pages than the 512-page array holds; without GC the
        // free pool would be exhausted partway through.
        for round in 0u8..12 {
            for lba in 0..lbas {
                ftl.write(
                    Lba(lba),
                    &page_of(round.wrapping_mul(31).wrapping_add(lba as u8)),
                )
                .unwrap();
            }
        }
        let stats = ftl.stats();
        assert!(stats.erases > 0, "GC never ran");
        // Every LBA must still read back its last-written data.
        for lba in 0..lbas {
            assert_eq!(
                ftl.read(Lba(lba)).unwrap().data,
                page_of(11u8.wrapping_mul(31).wrapping_add(lba as u8))
            );
        }
    }

    #[test]
    fn waf_is_one_without_churn() {
        let mut ftl = small_ftl(0.25);
        for lba in 0..8 {
            ftl.write(Lba(lba), &page_of(lba as u8)).unwrap();
        }
        let stats = ftl.stats();
        assert_eq!(stats.gc_writes, 0);
        assert!((stats.waf() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn waf_exceeds_one_under_churn() {
        let mut ftl = small_ftl(0.25);
        let lbas = ftl.exported_pages();
        // Fill the whole exported space with cold data once...
        for lba in 0..lbas {
            ftl.write(Lba(lba), &page_of(lba as u8)).unwrap();
        }
        // ...then interleave rewrites of a hot subset with slow rewrites of
        // cold LBAs, so every block mixes soon-stale and long-valid pages
        // and GC must relocate the latter.
        let cold_span = lbas - 16;
        for i in 0u64..1200 {
            let lba = if i % 2 == 0 {
                Lba(i / 2 % 16)
            } else {
                Lba(16 + (i / 7) % cold_span)
            };
            ftl.write(lba, &page_of(i as u8)).unwrap();
        }
        let stats = ftl.stats();
        assert!(stats.gc_writes > 0, "GC never relocated a page: {stats}");
        assert!(stats.waf() > 1.0);
    }

    #[test]
    fn reserved_blocks_are_not_allocated() {
        let geom = NandGeometry::small_test();
        let nand = NandArray::new(geom, FlashClass::LowLatencySlc.timing());
        let ftl = PageMappedFtl::new(
            nand,
            FtlConfig {
                over_provisioning: 0.25,
                gc_low_watermark: 3,
                gc_high_watermark: 5,
                reserved_blocks: 2,
            },
        );
        let reserved = ftl.reserved_blocks();
        assert_eq!(reserved.len(), 2);
        // Reserved blocks are the tail of the flat order.
        assert_eq!(reserved[0], geom.block_from_flat(geom.blocks_total() - 2));
    }

    /// Churns `ftl` enough to accumulate full blocks without triggering GC.
    fn fill_with_churn(ftl: &mut PageMappedFtl, writes: u64) {
        let lbas = ftl.exported_pages().min(64);
        for i in 0..writes {
            ftl.write(Lba(i % lbas), &page_of(i as u8)).unwrap();
        }
    }

    #[test]
    fn gc_counters_charged_at_step_execution_not_planning() {
        let mut ftl = small_ftl(0.25);
        ftl.set_background_gc(true);
        fill_with_churn(&mut ftl, 96);
        let before = ftl.stats();
        let die = ftl
            .gc_start()
            .expect("victims exist")
            .expect("no die is busy");
        // Planning the job charges nothing.
        assert_eq!(ftl.stats(), before);
        let step = ftl.gc_step(die).unwrap().expect("job in flight");
        let after = ftl.stats();
        if step.done {
            assert_eq!(after.erases, before.erases + 1);
            assert_eq!(after.gc_reads, before.gc_reads);
        } else {
            assert_eq!(after.gc_reads, before.gc_reads + 1);
            assert_eq!(after.gc_writes, before.gc_writes + 1);
            assert_eq!(after.erases, before.erases);
        }
    }

    #[test]
    fn abandoned_job_keeps_accounting_and_data_intact() {
        let mut ftl = small_ftl(0.25);
        ftl.set_background_gc(true);
        fill_with_churn(&mut ftl, 96);
        let die = ftl.gc_start().unwrap().expect("no die is busy");
        let job = ftl.gc_job_on(die).expect("job planned");
        let victim = job.victim_block();
        // Execute one page move, then abandon.
        let step = ftl.gc_step(die).unwrap().unwrap();
        assert!(!step.done, "victim should have at least one valid page");
        let mid = ftl.stats();
        assert!(ftl.gc_abandon(die));
        assert!(!ftl.gc_abandon(die), "double abandon must be a no-op");
        // Abandoning charges nothing and undoes nothing: WAF still counts
        // exactly the executed page move.
        assert_eq!(ftl.stats(), mid);
        assert_eq!(ftl.gc_job_counts(), (1, 1));
        // The victim is a candidate again and a fresh job can finish it.
        let die2 = ftl.gc_start().unwrap().expect("victim re-eligible");
        assert_eq!(
            ftl.gc_job_on(die2).unwrap().victim_block(),
            victim,
            "abandoned victim (fewest valid pages) should be re-picked"
        );
        loop {
            let step = ftl.gc_step(die2).unwrap().unwrap();
            if step.done {
                break;
            }
        }
        // All data still reads back.
        let lbas = ftl.exported_pages().min(64);
        for lba in 0..lbas {
            assert!(ftl.read(Lba(lba)).is_ok());
        }
    }

    #[test]
    fn background_mode_matches_inline_gc_byte_for_byte() {
        let mut inline_ftl = small_ftl(0.25);
        let mut bg = small_ftl(0.25);
        bg.set_background_gc(true);
        let lbas = inline_ftl.exported_pages().min(64);
        for i in 0u64..(12 * lbas) {
            let lba = Lba(i % lbas);
            let data = page_of(i as u8);
            inline_ftl.write(lba, &data).unwrap();
            bg.write(lba, &data).unwrap();
            // Drive the state machine at the same trigger point the inline
            // path uses; the two must stay in lock-step.
            if bg.gc_needed() {
                let mut ios = Vec::new();
                bg.run_gc_to_watermark(&mut ios).unwrap();
            }
            assert_eq!(inline_ftl.stats(), bg.stats(), "diverged at write {i}");
        }
        assert!(inline_ftl.stats().erases > 0, "GC never ran");
    }

    #[test]
    fn gc_under_churn_is_deterministic() {
        let run = || {
            let mut ftl = small_ftl(0.25);
            let lbas = ftl.exported_pages().min(64);
            let mut timeline = Vec::new();
            for i in 0u64..(10 * lbas) {
                let ios = ftl.write(Lba((i * 7) % lbas), &page_of(i as u8)).unwrap();
                timeline.push(ios.len());
            }
            (ftl.stats(), timeline)
        };
        let (stats_a, tl_a) = run();
        let (stats_b, tl_b) = run();
        assert_eq!(stats_a, stats_b, "FtlStats must be byte-identical");
        assert_eq!(tl_a, tl_b, "per-write io timelines must be identical");
        assert!(stats_a.erases > 0, "GC never ran");
    }

    #[test]
    fn ios_report_gc_activity() {
        let mut ftl = small_ftl(0.25);
        let lbas = ftl.exported_pages().min(64);
        let mut saw_gc = false;
        for round in 0u8..8 {
            for lba in 0..lbas {
                let ios = ftl.write(Lba(lba), &page_of(round)).unwrap();
                if ios.iter().any(|io| io.kind == FtlOpKind::Erase) {
                    saw_gc = true;
                }
            }
        }
        assert!(saw_gc, "no write ever reported GC ops");
    }
}
