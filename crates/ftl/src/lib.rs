//! Page-mapped flash translation layer (FTL).
//!
//! NAND flash forbids in-place update (see `twob-nand`), so every SSD runs a
//! translation layer that redirects logical block addresses (LBAs) to
//! wherever the freshest copy of the data was last programmed, reclaims
//! blocks full of stale pages with garbage collection (GC), and spreads
//! erases across blocks. The 2B-SSD paper's write-amplification argument
//! (§IV-A: one NAND write per *full* log page under BA-WAL versus one per
//! *commit* under block WAL) is only demonstrable with a real FTL that
//! counts physical programs — this crate is that FTL.
//!
//! Design choices:
//!
//! - **Page-mapped**: a full LBA→PPA table, as in enterprise NVMe drives.
//! - **Per-die write frontiers**: consecutive writes stripe across dies so
//!   programs overlap, which is what gives SSDs their bandwidth.
//! - **Greedy GC**: victim = fewest valid pages; kicks in when the free
//!   block pool drops below a watermark.
//! - **Wear-aware allocation**: free blocks are taken lowest-erase-count
//!   first, a simple but effective static wear-leveling policy.
//!
//! # Example
//!
//! ```rust
//! use twob_ftl::{FtlConfig, Lba, PageMappedFtl};
//! use twob_nand::{FlashClass, NandArray, NandGeometry};
//!
//! let geom = NandGeometry::small_test();
//! let nand = NandArray::new(geom, FlashClass::LowLatencySlc.timing());
//! let mut ftl = PageMappedFtl::new(nand, FtlConfig::default());
//! let page = vec![0x5A; 4096];
//! ftl.write(Lba(3), &page)?;
//! assert_eq!(ftl.read(Lba(3))?.data, page);
//! # Ok::<(), twob_ftl::FtlError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod error;
mod ftl;
mod stats;

pub use config::FtlConfig;
pub use error::FtlError;
pub use ftl::{DieId, FtlIo, FtlOpKind, GcJob, GcStepResult, Lba, PageMappedFtl};
pub use stats::FtlStats;
