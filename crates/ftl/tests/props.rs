//! Property-based tests: the FTL behaves exactly like a flat map of pages
//! under arbitrary write/trim/read churn, GC included.

use std::collections::HashMap;

use proptest::prelude::*;
use twob_ftl::{DieId, FtlConfig, FtlError, Lba, PageMappedFtl};
use twob_nand::{FlashClass, NandArray, NandGeometry};

#[derive(Debug, Clone)]
enum Op {
    Write { lba: u64, fill: u8 },
    Trim { lba: u64 },
    Read { lba: u64 },
}

fn op_strategy(lbas: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..lbas, any::<u8>()).prop_map(|(lba, fill)| Op::Write { lba, fill }),
        1 => (0..lbas).prop_map(|lba| Op::Trim { lba }),
        2 => (0..lbas).prop_map(|lba| Op::Read { lba }),
    ]
}

/// One step of a GC-preemption interleaving: foreground traffic mixed with
/// externally scheduled background-GC ticks.
#[derive(Debug, Clone)]
enum GcOp {
    Write { lba: u64, fill: u8 },
    Read { lba: u64 },
    Start,
    Step { die: usize },
    Abandon { die: usize },
}

fn gc_op_strategy(lbas: u64) -> impl Strategy<Value = GcOp> {
    prop_oneof![
        6 => (0..lbas, any::<u8>()).prop_map(|(lba, fill)| GcOp::Write { lba, fill }),
        2 => (0..lbas).prop_map(|lba| GcOp::Read { lba }),
        2 => Just(GcOp::Start),
        4 => (0usize..4).prop_map(|die| GcOp::Step { die }),
        1 => (0usize..4).prop_map(|die| GcOp::Abandon { die }),
    ]
}

/// Enumerates the four dies of the `small_test` geometry (2 channels × 2
/// ways).
fn die(idx: usize) -> DieId {
    DieId {
        channel: (idx / 2) as u32,
        way: (idx % 2) as u32,
    }
}

fn fresh_ftl() -> PageMappedFtl {
    let geom = NandGeometry::small_test();
    let nand = NandArray::new(geom, FlashClass::LowLatencySlc.timing());
    PageMappedFtl::new(
        nand,
        FtlConfig {
            over_provisioning: 0.25,
            gc_low_watermark: 3,
            gc_high_watermark: 5,
            reserved_blocks: 0,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The FTL is observationally a `HashMap<Lba, u8>` — even while GC
    /// relocates pages underneath.
    #[test]
    fn ftl_matches_flat_map(ops in prop::collection::vec(op_strategy(48), 1..400)) {
        let mut ftl = fresh_ftl();
        let mut model: HashMap<u64, u8> = HashMap::new();
        for op in ops {
            match op {
                Op::Write { lba, fill } => {
                    ftl.write(Lba(lba), &vec![fill; 4096]).expect("write");
                    model.insert(lba, fill);
                }
                Op::Trim { lba } => {
                    ftl.trim(Lba(lba)).expect("trim");
                    model.remove(&lba);
                }
                Op::Read { lba } => match (model.get(&lba), ftl.read(Lba(lba))) {
                    (Some(&fill), Ok(read)) => {
                        prop_assert!(read.data.iter().all(|&b| b == fill));
                    }
                    (None, Err(FtlError::Unmapped(_))) => {}
                    (expected, got) => {
                        return Err(TestCaseError::fail(format!(
                            "model {expected:?}, ftl {:?}",
                            got.map(|r| r.data[0])
                        )));
                    }
                },
            }
        }
        // Final sweep: every mapped LBA reads back its model value.
        for (lba, fill) in &model {
            let read = ftl.read(Lba(*lba)).expect("final read");
            prop_assert!(read.data.iter().all(|b| b == fill));
        }
        prop_assert_eq!(ftl.stats().mapped_lbas, model.len() as u64);
    }

    /// WAF is always ≥ 1 and the free pool never dips below the GC low
    /// watermark after a write returns.
    #[test]
    fn gc_maintains_watermark(ops in prop::collection::vec((0u64..48, any::<u8>()), 1..500)) {
        let mut ftl = fresh_ftl();
        for (lba, fill) in ops {
            ftl.write(Lba(lba), &vec![fill; 4096]).expect("write");
            let stats = ftl.stats();
            prop_assert!(stats.waf() >= 1.0);
            prop_assert!(
                stats.free_blocks >= 3,
                "free pool {} below watermark", stats.free_blocks
            );
        }
    }

    /// GC preemption: arbitrary interleavings of `gc_step`, `gc_abandon`,
    /// and foreground writes preserve WAF accounting and never lose a live
    /// page. Statistics are charged at step execution, so every relocation
    /// pairs exactly one GC read with one GC write no matter where the job
    /// is preempted or abandoned.
    #[test]
    fn gc_preemption_never_loses_a_page(ops in prop::collection::vec(gc_op_strategy(48), 1..600)) {
        let mut ftl = fresh_ftl();
        ftl.set_background_gc(true);
        let mut model: HashMap<u64, u8> = HashMap::new();
        for op in ops {
            match op {
                GcOp::Write { lba, fill } => {
                    // Background mode still has the emergency inline path,
                    // so foreground writes never fail for space.
                    ftl.write(Lba(lba), &vec![fill; 4096]).expect("write");
                    model.insert(lba, fill);
                }
                GcOp::Read { lba } => match (model.get(&lba), ftl.read(Lba(lba))) {
                    (Some(&fill), Ok(read)) => {
                        prop_assert!(read.data.iter().all(|&b| b == fill));
                    }
                    (None, Err(FtlError::Unmapped(_))) => {}
                    (expected, got) => {
                        return Err(TestCaseError::fail(format!(
                            "mid-GC read: model {expected:?}, ftl {:?}",
                            got.map(|r| r.data[0])
                        )));
                    }
                },
                GcOp::Start => {
                    // Ok(Some(_)): job planned. Ok(None): all candidate dies
                    // busy. Err(OutOfSpace): nothing reclaimable right now.
                    // All are legitimate outcomes of a background tick.
                    let _ = ftl.gc_start();
                }
                GcOp::Step { die: d } => {
                    // Err(OutOfSpace) leaves the job in flight for a retry;
                    // the next foreground write's emergency path unwedges it.
                    let had_job = ftl.gc_job_on(die(d)).is_some();
                    if let Ok(result) = ftl.gc_step(die(d)) {
                        prop_assert_eq!(result.is_some(), had_job);
                        if result.is_some_and(|r| r.done) {
                            prop_assert!(ftl.gc_job_on(die(d)).is_none());
                        }
                    }
                }
                GcOp::Abandon { die: d } => {
                    let had_job = ftl.gc_job_on(die(d)).is_some();
                    prop_assert_eq!(ftl.gc_abandon(die(d)), had_job);
                    prop_assert!(ftl.gc_job_on(die(d)).is_none());
                }
            }
            let stats = ftl.stats();
            prop_assert!(stats.waf() >= 1.0);
            // Every relocation is one GC read paired with one GC program;
            // preemption and abandonment must not break the pairing.
            prop_assert_eq!(stats.gc_reads, stats.gc_writes);
            let (started, abandoned) = ftl.gc_job_counts();
            prop_assert!(abandoned <= started);
        }
        // No live page was lost: every model LBA reads back its fill, and
        // nothing extra stayed mapped.
        for (lba, fill) in &model {
            let read = ftl.read(Lba(*lba)).expect("final read");
            prop_assert!(read.data.iter().all(|b| b == fill));
        }
        prop_assert_eq!(ftl.stats().mapped_lbas, model.len() as u64);
    }

    /// Out-of-range LBAs are always rejected, never panicking.
    #[test]
    fn out_of_range_is_graceful(offset in 0u64..1_000_000) {
        let mut ftl = fresh_ftl();
        let beyond = Lba(ftl.exported_pages() + offset);
        let write_rejected = matches!(
            ftl.write(beyond, &vec![0u8; 4096]),
            Err(FtlError::LbaOutOfRange { .. })
        );
        let read_rejected = matches!(ftl.read(beyond), Err(FtlError::LbaOutOfRange { .. }));
        let trim_rejected = matches!(ftl.trim(beyond), Err(FtlError::LbaOutOfRange { .. }));
        prop_assert!(write_rejected);
        prop_assert!(read_rejected);
        prop_assert!(trim_rejected);
    }
}
