//! Shared seeded-generation helpers for every workload driver.
//!
//! Before this module each driver (`churn.rs`, `ycsb.rs`, `tenant.rs`, the
//! serving stack) carried its own copy of the same three primitives: a
//! per-tenant seed derivation, a hot/cold bounded draw, and the YCSB key
//! scheme. They are deduplicated here with their **exact RNG draw orders
//! preserved** — the golden fixtures pin byte-identical streams, so a
//! helper that consumed randomness in a different order would shift every
//! figure even though the distribution is unchanged.

use twob_sim::{SimRng, Zipfian};

/// Weyl-sequence increment (2^32 · golden ratio) used to derive
/// per-tenant seeds from one base seed.
pub const TENANT_SEED_STRIDE: u64 = 0x9E37_79B9;

/// Derives a per-tenant seed from a base seed, spacing tenants along a
/// Weyl sequence so neighbouring tenants get decorrelated streams while
/// the whole fleet stays a pure function of `(base, tenant)`.
pub fn tenant_seed(base: u64, tenant: u16) -> u64 {
    base.wrapping_add(u64::from(tenant) * TENANT_SEED_STRIDE)
}

/// A seeded per-tenant RNG: [`tenant_seed`] fed to [`SimRng::seed_from`].
pub fn tenant_rng(base: u64, tenant: u16) -> SimRng {
    SimRng::seed_from(tenant_seed(base, tenant))
}

/// The YCSB key string for a rank (`user<rank>`, zero-padded to 12).
pub fn key_for(rank: u64) -> Vec<u8> {
    format!("user{rank:012}").into_bytes()
}

/// Draws a Zipfian-ranked YCSB key: one `zipf.sample` draw, nothing else.
pub fn zipf_key(zipf: &Zipfian, rng: &mut SimRng) -> Vec<u8> {
    key_for(zipf.sample(rng))
}

/// A random value of exactly `len` bytes: one `fill_bytes` draw.
pub fn payload(rng: &mut SimRng, len: usize) -> Vec<u8> {
    let mut value = vec![0u8; len];
    rng.fill_bytes(&mut value);
    value
}

/// Hot/cold bounded draw over `[0, total)`: with probability
/// `hot_probability` the draw is confined to the hottest
/// `total · hot_fraction` items (at least one).
///
/// Draw order is load-bearing: one `chance` draw, then exactly one
/// bounded draw — the order `ChurnWorkload` has always used.
pub fn hot_cold_draw(rng: &mut SimRng, total: u64, hot_fraction: f64, hot_probability: f64) -> u64 {
    let hot = ((total as f64 * hot_fraction) as u64).max(1);
    if rng.chance(hot_probability) {
        rng.next_u64_below(hot)
    } else {
        rng.next_u64_below(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_seeds_follow_weyl_stride() {
        assert_eq!(tenant_seed(7, 0), 7);
        assert_eq!(tenant_seed(7, 1), 7 + TENANT_SEED_STRIDE);
        assert_eq!(tenant_seed(7, 3), 7u64.wrapping_add(3 * TENANT_SEED_STRIDE));
        // Wrapping, never panicking, near u64::MAX.
        let _ = tenant_seed(u64::MAX, u16::MAX);
    }

    #[test]
    fn tenant_rng_streams_are_decorrelated_but_reproducible() {
        let a: Vec<u64> = {
            let mut r = tenant_rng(11, 4);
            (0..8).map(|_| r.next_u64_below(1 << 30)).collect()
        };
        let a2: Vec<u64> = {
            let mut r = tenant_rng(11, 4);
            (0..8).map(|_| r.next_u64_below(1 << 30)).collect()
        };
        let b: Vec<u64> = {
            let mut r = tenant_rng(11, 5);
            (0..8).map(|_| r.next_u64_below(1 << 30)).collect()
        };
        assert_eq!(a, a2);
        assert_ne!(a, b);
    }

    #[test]
    fn key_scheme_is_ycsb_shaped() {
        assert_eq!(key_for(0), b"user000000000000".to_vec());
        assert_eq!(key_for(42), b"user000000000042".to_vec());
    }

    #[test]
    fn hot_cold_draw_concentrates_and_stays_in_bounds() {
        let mut rng = SimRng::seed_from(9);
        let mut hot_hits = 0u64;
        for _ in 0..10_000 {
            let x = hot_cold_draw(&mut rng, 1000, 0.2, 0.8);
            assert!(x < 1000);
            if x < 200 {
                hot_hits += 1;
            }
        }
        // 80 % targeted + 20 % uniform spillover ≈ 84 %.
        assert!(hot_hits > 7_000, "hot set drew only {hot_hits}/10000");
    }

    #[test]
    fn hot_cold_draw_consumes_exactly_two_draws() {
        // The helper must stay in lock-step with an inline copy of the
        // historical draw order, or seeded streams shift.
        let mut a = SimRng::seed_from(31);
        let mut b = SimRng::seed_from(31);
        for _ in 0..1000 {
            let x = hot_cold_draw(&mut a, 384, 0.2, 0.8);
            let hot = ((384f64 * 0.2) as u64).max(1);
            let y = if b.chance(0.8) {
                b.next_u64_below(hot)
            } else {
                b.next_u64_below(384)
            };
            assert_eq!(x, y);
        }
    }
}
