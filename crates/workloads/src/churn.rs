//! Seeded overwrite churn for exercising garbage collection.
//!
//! A GC study needs a workload that (a) fills the drive, then (b) keeps
//! overwriting live data so the free-block pool drains and the collector
//! has victims with a controllable amount of still-valid data. This module
//! generates exactly that: a deterministic, seeded stream of single-page
//! overwrites with an optional hot set, so the same seed always produces
//! the same LBA sequence — the property the GC determinism tests and the
//! `gc_interference` bench build on.

use twob_ftl::Lba;
use twob_sim::SimRng;

/// Shape of an overwrite-churn stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnConfig {
    /// LBAs `[0, lbas)` the stream draws from.
    pub lbas: u64,
    /// RNG seed; equal seeds yield byte-identical streams.
    pub seed: u64,
    /// Fraction of the LBA space forming the hot set (in `(0, 1]`).
    pub hot_fraction: f64,
    /// Probability an overwrite lands in the hot set. `0.0` with any
    /// `hot_fraction` degenerates to uniform churn; skewed churn leaves
    /// cold blocks mostly valid, which is what gives GC real copy work.
    pub hot_probability: f64,
}

impl ChurnConfig {
    /// Uniform churn over `lbas` logical pages.
    pub fn uniform(lbas: u64, seed: u64) -> Self {
        ChurnConfig {
            lbas,
            seed,
            hot_fraction: 1.0,
            hot_probability: 0.0,
        }
    }

    /// The classic 80/20 skew: 80 % of overwrites hit the hottest 20 %.
    pub fn skewed(lbas: u64, seed: u64) -> Self {
        ChurnConfig {
            lbas,
            seed,
            hot_fraction: 0.2,
            hot_probability: 0.8,
        }
    }
}

/// A deterministic stream of single-page overwrite targets.
#[derive(Debug, Clone)]
pub struct ChurnWorkload {
    cfg: ChurnConfig,
    rng: SimRng,
    issued: u64,
}

impl ChurnWorkload {
    /// Creates the stream for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.lbas` is zero or `hot_fraction` is out of `(0, 1]`.
    pub fn new(cfg: ChurnConfig) -> Self {
        assert!(cfg.lbas > 0, "churn needs a non-empty LBA space");
        assert!(
            cfg.hot_fraction > 0.0 && cfg.hot_fraction <= 1.0,
            "hot_fraction must be in (0, 1]"
        );
        ChurnWorkload {
            rng: SimRng::seed_from(cfg.seed),
            cfg,
            issued: 0,
        }
    }

    /// The configuration the stream was built from.
    pub fn config(&self) -> ChurnConfig {
        self.cfg
    }

    /// Overwrites issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// LBAs that fill the whole space once, in address order. Writing
    /// these before churning puts the drive at 100 % logical utilization,
    /// the paper's steady-state precondition for GC pressure.
    pub fn fill_sequence(&self) -> impl Iterator<Item = Lba> + use<> {
        (0..self.cfg.lbas).map(Lba)
    }

    /// The next overwrite target.
    pub fn next_lba(&mut self) -> Lba {
        self.issued += 1;
        Lba(crate::gen::hot_cold_draw(
            &mut self.rng,
            self.cfg.lbas,
            self.cfg.hot_fraction,
            self.cfg.hot_probability,
        ))
    }

    /// A page-sized payload that encodes `(lba, issue index)`, so a later
    /// read can verify which write version it observed.
    pub fn page_for(&self, lba: Lba, page_size: usize) -> Vec<u8> {
        let tag = (lba.0 ^ self.issued).to_le_bytes();
        let mut page = vec![0u8; page_size];
        for (i, b) in page.iter_mut().enumerate() {
            *b = tag[i % tag.len()];
        }
        page
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChurnWorkload::new(ChurnConfig::skewed(384, 42));
        let mut b = ChurnWorkload::new(ChurnConfig::skewed(384, 42));
        let seq_a: Vec<Lba> = (0..500).map(|_| a.next_lba()).collect();
        let seq_b: Vec<Lba> = (0..500).map(|_| b.next_lba()).collect();
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChurnWorkload::new(ChurnConfig::uniform(384, 1));
        let mut b = ChurnWorkload::new(ChurnConfig::uniform(384, 2));
        let seq_a: Vec<Lba> = (0..100).map(|_| a.next_lba()).collect();
        let seq_b: Vec<Lba> = (0..100).map(|_| b.next_lba()).collect();
        assert_ne!(seq_a, seq_b);
    }

    #[test]
    fn targets_stay_in_bounds_and_skew_concentrates() {
        let cfg = ChurnConfig::skewed(1000, 7);
        let mut w = ChurnWorkload::new(cfg);
        let mut hot_hits = 0u64;
        for _ in 0..10_000 {
            let lba = w.next_lba();
            assert!(lba.0 < 1000);
            if lba.0 < 200 {
                hot_hits += 1;
            }
        }
        // 80 % targeted + 20 % uniform spillover ≈ 84 % of samples.
        assert!(
            hot_hits > 7_000,
            "hot set drew only {hot_hits}/10000 overwrites"
        );
        assert_eq!(w.issued(), 10_000);
    }

    #[test]
    fn fill_sequence_covers_every_lba_once() {
        let w = ChurnWorkload::new(ChurnConfig::uniform(16, 0));
        let fill: Vec<u64> = w.fill_sequence().map(|l| l.0).collect();
        assert_eq!(fill, (0..16).collect::<Vec<_>>());
    }
}
