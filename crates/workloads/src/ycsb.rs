//! YCSB-style key-value workloads with Zipfian skew.

use serde::{Deserialize, Serialize};
use twob_sim::{SimRng, Zipfian};

/// YCSB workload parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct YcsbConfig {
    /// Number of records in the keyspace.
    pub records: u64,
    /// Value size per operation — the "payload size" axis of paper Fig 9.
    pub payload_bytes: usize,
    /// Fraction of reads (the rest are updates).
    pub read_fraction: f64,
    /// Zipfian exponent (YCSB default 0.99).
    pub theta: f64,
}

impl YcsbConfig {
    /// Workload A: 50 % reads / 50 % updates — "write-heavy", the mix the
    /// paper runs against RocksDB and Redis.
    pub fn workload_a(records: u64, payload_bytes: usize) -> Self {
        YcsbConfig {
            records,
            payload_bytes,
            read_fraction: 0.5,
            theta: 0.99,
        }
    }

    /// Workload B: 95 % reads / 5 % updates — "read-mostly".
    pub fn workload_b(records: u64, payload_bytes: usize) -> Self {
        YcsbConfig {
            read_fraction: 0.95,
            ..YcsbConfig::workload_a(records, payload_bytes)
        }
    }
}

/// One YCSB operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum YcsbOp {
    /// Read the record at `key`.
    Read {
        /// The record key (`user<rank>`).
        key: Vec<u8>,
    },
    /// Overwrite the record at `key` with `value`.
    Update {
        /// The record key.
        key: Vec<u8>,
        /// The new value, `payload_bytes` long.
        value: Vec<u8>,
    },
}

impl YcsbOp {
    /// Whether the op writes.
    pub fn is_update(&self) -> bool {
        matches!(self, YcsbOp::Update { .. })
    }

    /// The op's key.
    pub fn key(&self) -> &[u8] {
        match self {
            YcsbOp::Read { key } | YcsbOp::Update { key, .. } => key,
        }
    }
}

/// Generates YCSB operations.
#[derive(Debug, Clone)]
pub struct YcsbWorkload {
    cfg: YcsbConfig,
    zipf: Zipfian,
}

impl YcsbWorkload {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics if `read_fraction` is outside `[0, 1]` or `records` is 0.
    pub fn new(cfg: YcsbConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&cfg.read_fraction),
            "read_fraction must be in [0, 1]"
        );
        YcsbWorkload {
            zipf: Zipfian::new(cfg.records, cfg.theta),
            cfg,
        }
    }

    /// The configured parameters.
    pub fn config(&self) -> &YcsbConfig {
        &self.cfg
    }

    /// The key string for a rank, YCSB-style (see [`crate::gen::key_for`]).
    pub fn key_for(rank: u64) -> Vec<u8> {
        crate::gen::key_for(rank)
    }

    /// Keys and values for the load phase, one per record.
    pub fn load_phase(&self, rng: &mut SimRng) -> Vec<(Vec<u8>, Vec<u8>)> {
        (0..self.cfg.records)
            .map(|rank| {
                (
                    crate::gen::key_for(rank),
                    crate::gen::payload(rng, self.cfg.payload_bytes),
                )
            })
            .collect()
    }

    /// Draws the next operation.
    pub fn next_op(&mut self, rng: &mut SimRng) -> YcsbOp {
        let key = crate::gen::zipf_key(&self.zipf, rng);
        if rng.chance(self.cfg.read_fraction) {
            YcsbOp::Read { key }
        } else {
            YcsbOp::Update {
                key,
                value: crate::gen::payload(rng, self.cfg.payload_bytes),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_a_is_half_updates() {
        let mut rng = SimRng::seed_from(2);
        let mut wl = YcsbWorkload::new(YcsbConfig::workload_a(1_000, 100));
        let n = 10_000;
        let updates = (0..n).filter(|_| wl.next_op(&mut rng).is_update()).count();
        let fraction = updates as f64 / n as f64;
        assert!(
            (0.47..0.53).contains(&fraction),
            "update fraction {fraction}"
        );
    }

    #[test]
    fn workload_b_is_read_mostly() {
        let mut rng = SimRng::seed_from(2);
        let mut wl = YcsbWorkload::new(YcsbConfig::workload_b(1_000, 100));
        let n = 10_000;
        let updates = (0..n).filter(|_| wl.next_op(&mut rng).is_update()).count();
        assert!((updates as f64 / n as f64) < 0.08);
    }

    #[test]
    fn updates_carry_exact_payload() {
        let mut rng = SimRng::seed_from(4);
        let mut wl = YcsbWorkload::new(YcsbConfig::workload_a(100, 777));
        for _ in 0..100 {
            if let YcsbOp::Update { value, .. } = wl.next_op(&mut rng) {
                assert_eq!(value.len(), 777);
                return;
            }
        }
        panic!("no update drawn in 100 ops");
    }

    #[test]
    fn keys_are_skewed() {
        let mut rng = SimRng::seed_from(6);
        let mut wl = YcsbWorkload::new(YcsbConfig::workload_a(10_000, 64));
        let hot_key = YcsbWorkload::key_for(0);
        let hits = (0..10_000)
            .filter(|_| wl.next_op(&mut rng).key() == hot_key.as_slice())
            .count();
        // Under uniform access the top key would get ~1 hit in 10k.
        assert!(hits > 100, "hot key hit only {hits} times");
    }

    #[test]
    fn load_phase_covers_keyspace() {
        let mut rng = SimRng::seed_from(7);
        let wl = YcsbWorkload::new(YcsbConfig::workload_a(50, 32));
        let rows = wl.load_phase(&mut rng);
        assert_eq!(rows.len(), 50);
        assert_eq!(rows[49].0, YcsbWorkload::key_for(49));
        assert!(rows.iter().all(|(_, v)| v.len() == 32));
    }
}
