//! A Linkbench-like social-graph transaction mix.

use serde::{Deserialize, Serialize};
use twob_db::PgOp;
use twob_sim::{SimRng, Zipfian};

/// Operation mix of the Linkbench-like workload, as fractions that must
/// sum to 1. The defaults follow the published Linkbench mix (Armstrong et
/// al., SIGMOD'13), which the paper describes as "read intensive with
/// about 30 % writes".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkbenchConfig {
    /// Number of graph nodes.
    pub nodes: u64,
    /// Payload bytes attached to nodes and links.
    pub payload_bytes: usize,
    /// Fraction of `get_link_list` transactions (reads).
    pub get_link_list: f64,
    /// Fraction of `count_links` transactions (reads).
    pub count_links: f64,
    /// Fraction of `get_node` transactions (reads).
    pub get_node: f64,
    /// Fraction of `add_link` transactions (writes).
    pub add_link: f64,
    /// Fraction of `update_link` transactions (writes).
    pub update_link: f64,
    /// Fraction of `delete_link` transactions (writes).
    pub delete_link: f64,
    /// Fraction of `add_node` transactions (writes).
    pub add_node: f64,
    /// Fraction of `update_node` transactions (writes).
    pub update_node: f64,
    /// Fraction of `delete_node` transactions (writes).
    pub delete_node: f64,
    /// Zipfian skew of node popularity.
    pub theta: f64,
}

impl LinkbenchConfig {
    /// The published Linkbench mix over `nodes` nodes.
    pub fn standard(nodes: u64) -> Self {
        LinkbenchConfig {
            nodes,
            payload_bytes: 128,
            get_link_list: 0.509,
            count_links: 0.049,
            get_node: 0.129,
            add_link: 0.090,
            update_link: 0.080,
            delete_link: 0.030,
            add_node: 0.026,
            update_node: 0.074,
            delete_node: 0.013,
            theta: 0.85,
        }
    }

    /// Total write fraction of the mix.
    pub fn write_fraction(&self) -> f64 {
        self.add_link
            + self.update_link
            + self.delete_link
            + self.add_node
            + self.update_node
            + self.delete_node
    }

    /// Validates that the fractions sum to ~1.
    ///
    /// # Errors
    ///
    /// Returns the actual sum when it is off by more than 1 %.
    pub fn validate(&self) -> Result<(), f64> {
        let sum = self.get_link_list + self.count_links + self.get_node + self.write_fraction();
        if (sum - 1.0).abs() < 0.01 {
            Ok(())
        } else {
            Err(sum)
        }
    }
}

/// Generates Linkbench-like transactions as [`PgOp`] batches.
#[derive(Debug, Clone)]
pub struct LinkbenchWorkload {
    cfg: LinkbenchConfig,
    zipf: Zipfian,
    next_new_node: u64,
}

impl LinkbenchWorkload {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics if the mix does not sum to 1 (see
    /// [`LinkbenchConfig::validate`]).
    pub fn new(cfg: LinkbenchConfig) -> Self {
        cfg.validate()
            .unwrap_or_else(|sum| panic!("linkbench mix sums to {sum}, not 1"));
        LinkbenchWorkload {
            zipf: Zipfian::new(cfg.nodes, cfg.theta),
            next_new_node: cfg.nodes,
            cfg,
        }
    }

    /// The configured mix.
    pub fn config(&self) -> &LinkbenchConfig {
        &self.cfg
    }

    fn payload(&self, rng: &mut SimRng) -> Vec<u8> {
        let mut data = vec![0u8; self.cfg.payload_bytes];
        rng.fill_bytes(&mut data);
        data
    }

    /// Transactions that seed the graph: one `InsertNode` per node plus a
    /// few links, run before measurement starts.
    pub fn load_phase(&mut self, rng: &mut SimRng, links_per_node: u32) -> Vec<Vec<PgOp>> {
        let mut txns = Vec::new();
        for id in 0..self.cfg.nodes {
            let mut ops = vec![PgOp::InsertNode {
                id,
                data: self.payload(rng),
            }];
            for _ in 0..links_per_node {
                ops.push(PgOp::AddLink {
                    from: id,
                    to: rng.next_u64_below(self.cfg.nodes),
                    data: self.payload(rng),
                });
            }
            txns.push(ops);
        }
        txns
    }

    /// Draws the next transaction from the mix.
    pub fn next_txn(&mut self, rng: &mut SimRng) -> Vec<PgOp> {
        let id1 = self.zipf.sample(rng);
        let id2 = self.zipf.sample(rng);
        let mut pick = rng.next_f64();
        let mut take = |fraction: f64| {
            if pick < fraction {
                pick = 2.0; // consumed
                true
            } else {
                pick -= fraction;
                false
            }
        };
        let c = self.cfg;
        if take(c.get_link_list) {
            vec![PgOp::GetLinkList { id: id1 }]
        } else if take(c.count_links) {
            vec![PgOp::CountLinks { id: id1 }]
        } else if take(c.get_node) {
            vec![PgOp::GetNode { id: id1 }]
        } else if take(c.add_link) || take(c.update_link) {
            // Linkbench's add_link and update_link both upsert a link row.
            vec![PgOp::AddLink {
                from: id1,
                to: id2,
                data: self.payload(rng),
            }]
        } else if take(c.delete_link) {
            vec![PgOp::DeleteLink { from: id1, to: id2 }]
        } else if take(c.add_node) {
            let id = self.next_new_node;
            self.next_new_node += 1;
            vec![PgOp::InsertNode {
                id,
                data: self.payload(rng),
            }]
        } else if take(c.update_node) {
            vec![PgOp::UpdateNode {
                id: id1,
                data: self.payload(rng),
            }]
        } else {
            vec![PgOp::DeleteNode { id: id1 }]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_mix_sums_to_one() {
        assert!(LinkbenchConfig::standard(100).validate().is_ok());
    }

    #[test]
    fn standard_mix_is_about_30_percent_writes() {
        let w = LinkbenchConfig::standard(100).write_fraction();
        assert!((0.25..0.36).contains(&w), "write fraction {w}");
    }

    #[test]
    fn generated_mix_matches_configured_fractions() {
        let mut rng = SimRng::seed_from(3);
        let mut wl = LinkbenchWorkload::new(LinkbenchConfig::standard(1_000));
        let n = 20_000;
        let writes = (0..n)
            .filter(|_| wl.next_txn(&mut rng).iter().any(PgOp::is_write))
            .count();
        let fraction = writes as f64 / n as f64;
        let expected = wl.config().write_fraction();
        assert!(
            (fraction - expected).abs() < 0.02,
            "measured write fraction {fraction}, configured {expected}"
        );
    }

    #[test]
    fn load_phase_seeds_every_node() {
        let mut rng = SimRng::seed_from(1);
        let mut wl = LinkbenchWorkload::new(LinkbenchConfig::standard(50));
        let txns = wl.load_phase(&mut rng, 2);
        assert_eq!(txns.len(), 50);
        assert!(txns.iter().all(|t| t.len() == 3));
    }

    #[test]
    fn add_node_mints_fresh_ids() {
        let mut rng = SimRng::seed_from(5);
        let mut wl = LinkbenchWorkload::new(LinkbenchConfig::standard(10));
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5_000 {
            for op in wl.next_txn(&mut rng) {
                if let PgOp::InsertNode { id, .. } = op {
                    assert!(id >= 10, "new nodes must not collide with seeds");
                    assert!(seen.insert(id), "duplicate new node id {id}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "sums to")]
    fn bad_mix_panics() {
        let cfg = LinkbenchConfig {
            get_link_list: 0.9,
            ..LinkbenchConfig::standard(10)
        };
        let _ = LinkbenchWorkload::new(cfg);
    }
}
