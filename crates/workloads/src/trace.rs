//! Trace-driven replay: parse a simple block-I/O trace format and drive a
//! device with it.
//!
//! The text format is one operation per line, comment lines start with
//! `#`:
//!
//! ```text
//! # op  lba  pages
//! W 100 1
//! R 100 1
//! T 100 1
//! F
//! ```
//!
//! `W` = write, `R` = read, `T` = trim, `F` = flush. This is the shape most
//! public block traces (FIU, MSR-Cambridge) reduce to after preprocessing.

use twob_ftl::Lba;
use twob_sim::{SimDuration, SimTime};
use twob_ssd::{Ssd, SsdError};

/// One trace operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// Write `pages` pages at `lba`.
    Write {
        /// First page.
        lba: u64,
        /// Page count.
        pages: u32,
    },
    /// Read `pages` pages at `lba`.
    Read {
        /// First page.
        lba: u64,
        /// Page count.
        pages: u32,
    },
    /// Trim `pages` pages at `lba`.
    Trim {
        /// First page.
        lba: u64,
        /// Page count.
        pages: u32,
    },
    /// Flush the device cache.
    Flush,
}

/// A parse failure, with the 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// Line the error occurred on (1-based).
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for TraceParseError {}

/// Parses the trace text format.
///
/// # Errors
///
/// [`TraceParseError`] with the offending line.
pub fn parse_trace(text: &str) -> Result<Vec<TraceOp>, TraceParseError> {
    let mut ops = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed.split_whitespace();
        let op = fields.next().expect("non-empty line has a first field");
        let mut num = |name: &str| -> Result<u64, TraceParseError> {
            fields
                .next()
                .ok_or_else(|| TraceParseError {
                    line,
                    reason: format!("missing {name}"),
                })?
                .parse()
                .map_err(|_| TraceParseError {
                    line,
                    reason: format!("{name} is not a number"),
                })
        };
        let parsed = match op {
            "W" | "w" => TraceOp::Write {
                lba: num("lba")?,
                pages: num("pages")? as u32,
            },
            "R" | "r" => TraceOp::Read {
                lba: num("lba")?,
                pages: num("pages")? as u32,
            },
            "T" | "t" => TraceOp::Trim {
                lba: num("lba")?,
                pages: num("pages")? as u32,
            },
            "F" | "f" => TraceOp::Flush,
            other => {
                return Err(TraceParseError {
                    line,
                    reason: format!("unknown op {other:?} (use W/R/T/F)"),
                })
            }
        };
        if let Some(extra) = fields.next() {
            return Err(TraceParseError {
                line,
                reason: format!("trailing field {extra:?}"),
            });
        }
        ops.push(parsed);
    }
    Ok(ops)
}

/// Summary of a trace replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceReplayReport {
    /// Operations executed.
    pub ops: u64,
    /// Reads that failed because the LBA was never written (traces often
    /// read cold addresses; these are counted, not fatal).
    pub cold_reads: u64,
    /// Virtual time the replay spanned.
    pub elapsed: SimDuration,
    /// Bytes moved (reads + writes).
    pub bytes: u64,
}

impl TraceReplayReport {
    /// Mean throughput over the replay, MB/s.
    pub fn mb_per_sec(&self) -> f64 {
        if self.elapsed == SimDuration::ZERO {
            0.0
        } else {
            self.bytes as f64 / self.elapsed.as_secs_f64() / 1e6
        }
    }
}

/// Replays `ops` against `ssd` starting at `start`, back to back.
///
/// # Errors
///
/// Device failures other than cold reads.
pub fn replay_trace(
    ssd: &mut Ssd,
    start: SimTime,
    ops: &[TraceOp],
) -> Result<TraceReplayReport, SsdError> {
    let mut t = start;
    let mut cold_reads = 0u64;
    let mut bytes = 0u64;
    let page = ssd.page_size() as u64;
    for op in ops {
        match *op {
            TraceOp::Write { lba, pages } => {
                let data = vec![0xD7u8; (pages as usize) * page as usize];
                t = ssd.write(t, Lba(lba), &data)?;
                bytes += u64::from(pages) * page;
            }
            TraceOp::Read { lba, pages } => match ssd.read(t, Lba(lba), pages) {
                Ok(read) => {
                    t = read.complete_at;
                    bytes += u64::from(pages) * page;
                }
                Err(SsdError::Unmapped(_)) => cold_reads += 1,
                Err(e) => return Err(e),
            },
            TraceOp::Trim { lba, pages } => {
                t = ssd.trim(t, Lba(lba), pages)?;
            }
            TraceOp::Flush => {
                t = ssd.flush(t);
            }
        }
    }
    Ok(TraceReplayReport {
        ops: ops.len() as u64,
        cold_reads,
        elapsed: t.saturating_since(start),
        bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use twob_ssd::SsdConfig;

    #[test]
    fn parses_the_documented_format() {
        let ops = parse_trace(
            "# header comment\n\
             W 100 1\n\
             R 100 2\n\
             \n\
             T 100 1\n\
             F\n",
        )
        .unwrap();
        assert_eq!(
            ops,
            vec![
                TraceOp::Write { lba: 100, pages: 1 },
                TraceOp::Read { lba: 100, pages: 2 },
                TraceOp::Trim { lba: 100, pages: 1 },
                TraceOp::Flush,
            ]
        );
    }

    #[test]
    fn reports_parse_errors_with_line_numbers() {
        let err = parse_trace("W 1 1\nX 2 2\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.reason.contains("unknown op"));
        let err = parse_trace("W 1\n").unwrap_err();
        assert!(err.reason.contains("missing pages"));
        let err = parse_trace("W a 1\n").unwrap_err();
        assert!(err.reason.contains("not a number"));
        let err = parse_trace("F extra\n").unwrap_err();
        assert!(err.reason.contains("trailing"));
    }

    #[test]
    fn replays_against_a_device() {
        let mut ssd = Ssd::new(SsdConfig::ull_ssd().small());
        let ops = parse_trace(
            "W 0 2\n\
             W 2 1\n\
             F\n\
             R 0 2\n\
             R 50 1\n\
             T 2 1\n",
        )
        .unwrap();
        let report = replay_trace(&mut ssd, SimTime::ZERO, &ops).unwrap();
        assert_eq!(report.ops, 6);
        assert_eq!(report.cold_reads, 1, "lba 50 was never written");
        assert!(report.elapsed > SimDuration::ZERO);
        assert_eq!(report.bytes, 5 * 4096);
        assert!(report.mb_per_sec() > 0.0);
    }
}
