//! Session/driver, control, and measurement layers of the serving stack.
//!
//! [`ServiceDriver`] is the one event-loop owner in the workload layer.
//! Every driver that used to carry its own loop — the closed-loop slot
//! pool, the multi-tenant session pool, the NVMe closed-loop drive — is a
//! mode of this driver now ([`ServiceDriver::run_slots`],
//! [`ServiceDriver::run_sessions`], [`ServiceDriver::run_nvme`]), each a
//! degenerate point of the open-loop family where the "arrival process"
//! is completion-clocked (see [`crate::arrival::ClosedLoopArrivals`]).
//!
//! The open-loop serving path is the new capability:
//!
//! 1. **generation** — per-tenant [`ArrivalProcess`] streams offer load in
//!    *traffic time*, independent of what the device can absorb;
//! 2. **admission** — [`ServiceDriver::plan`] applies the control layer at
//!    arrival time, from host-side accounting only: a per-tenant
//!    queue-depth trigger (at most `admit_per_window` admissions per
//!    tenant-window; excess is *deferred* up to `defer_windows` windows,
//!    then *shed*) and a BA-buffer-saturation trigger (admitted BA bytes
//!    per device group per window capped at the group's BA buffer;
//!    excess is shed). Decisions never consult completions, so the same
//!    plan drives every backend identically;
//! 3. **execution** — admitted ops are distilled WAL commits
//!    ([`IoOp::BaSyncRange`] on a pinned per-tenant window for the BA
//!    scheme, an [`IoOp::CxlPersist`] barrier on the same window for the
//!    CXL scheme; a page [`IoOp::BlockWrite`] + [`IoOp::BlockFlush`] for
//!    the block scheme), submitted in `(admit instant, tenant)` order to
//!    either the plain [`IoCalendar`] ([`ServiceDriver::serve`]) or a
//!    [`ShardedIoCalendar`] placement ([`ServiceDriver::serve_sharded`],
//!    digest-equal across lock-step, adaptive, and parallel drives);
//! 4. **measurement** — per-op latency is measured from *original
//!    arrival* (deferral is not free), tracked per tenant and per SLO
//!    window against p99/p999 targets with the interpolated
//!    [`Histogram`] quantiles.

use std::collections::HashMap;

use serde::Serialize;
use twob_core::{
    GroupPlacement, IoCalendar, IoOp, PinTable, ShardedIoCalendar, TenantId, TwoBSpec, TwoBSsd,
};
use twob_db::DbError;
use twob_ftl::Lba;
use twob_sim::{EventQueue, Executor, Histogram, SimDuration, SimTime};
use twob_ssd::{NvmeEvent, NvmeOp, NvmeSsd, QdReport, SsdConfig};

use crate::arrival::{ArrivalConfig, ArrivalProcess};
use crate::tenant::{TenantOutcome, TenantPool, TenantReport, WalScheme};

/// Configuration of one open-loop serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Simulated tenants (the BA scheme needs `tenants / groups ≤ 256`
    /// mapping entries per device).
    pub tenants: u16,
    /// Commit scheme every tenant logs through.
    pub scheme: WalScheme,
    /// Per-tenant arrival process.
    pub arrival: ArrivalConfig,
    /// Traffic-time horizon: arrivals are generated in `[0, horizon)`.
    pub horizon: SimDuration,
    /// Commit payload bytes (the BA sync length).
    pub payload_bytes: usize,
    /// Block-scheme log-region pages per tenant (writes rotate within).
    pub region_pages: u32,
    /// Admission/SLO window length.
    pub window: SimDuration,
    /// Queue-depth trigger: admissions per tenant per window before
    /// deferral.
    pub admit_per_window: u32,
    /// How many windows an op may be deferred before it is shed.
    pub defer_windows: u64,
    /// p99 latency target, µs (measured from original arrival).
    pub slo_p99_us: f64,
    /// p999 latency target, µs.
    pub slo_p999_us: f64,
}

impl ServeConfig {
    /// The serving preset: 4 ms horizon, 100 µs windows, queue-depth 8
    /// per window, 2-window defer budget, 128 B payloads, 400/2000 µs
    /// p99/p999 SLOs.
    pub fn standard(tenants: u16, scheme: WalScheme, arrival: ArrivalConfig) -> Self {
        ServeConfig {
            tenants,
            scheme,
            arrival,
            horizon: SimDuration::from_micros(4_000),
            payload_bytes: 128,
            region_pages: 4,
            window: SimDuration::from_micros(100),
            admit_per_window: 8,
            defer_windows: 2,
            slo_p99_us: 400.0,
            slo_p999_us: 2_000.0,
        }
    }
}

/// One admitted operation, in traffic time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmittedOp {
    /// Owning tenant.
    pub tenant: u16,
    /// The open-loop arrival instant (latency is measured from here).
    pub arrival: SimTime,
    /// The instant admission releases it to the device (`≥ arrival`;
    /// later iff deferred).
    pub submit_at: SimTime,
}

/// The control layer's verdict on an offered-load stream: what gets
/// through, what waits, what is turned away.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionPlan {
    /// Arrivals generated over the horizon.
    pub offered: u64,
    /// Ops admitted, sorted by `(submit_at, tenant)` — the deterministic
    /// device submission order.
    pub admitted: Vec<AdmittedOp>,
    /// Admitted ops that waited for a later window.
    pub deferred: u64,
    /// Ops shed by the queue-depth trigger (defer budget exhausted).
    pub shed_queue: u64,
    /// Ops shed by the BA-buffer-saturation trigger.
    pub shed_buffer: u64,
}

impl AdmissionPlan {
    /// Total ops turned away.
    pub fn shed(&self) -> u64 {
        self.shed_queue + self.shed_buffer
    }
}

/// How a sharded serve drives its placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardDrive {
    /// The fine-grained lock-step oracle (sequential baseline).
    Lockstep,
    /// Adaptive round batching on one thread.
    Adaptive,
    /// Adaptive round batching on up to `n` worker threads.
    Parallel(usize),
}

impl ShardDrive {
    /// Stable label for reports.
    pub fn label(self) -> String {
        match self {
            ShardDrive::Lockstep => "lockstep".into(),
            ShardDrive::Adaptive => "adaptive".into(),
            ShardDrive::Parallel(n) => format!("par{n}"),
        }
    }
}

/// Aggregate result of one open-loop serving run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServeReport {
    /// Tenant count.
    pub tenants: u16,
    /// Scheme label (`"ba"` or `"block"`).
    pub scheme: String,
    /// Arrival-process label.
    pub arrival: String,
    /// Arrivals offered over the horizon.
    pub offered: u64,
    /// Ops admitted by the control layer.
    pub admitted: u64,
    /// Admitted ops that completed (all of them, absent device errors).
    pub completed: u64,
    /// Ops that completed with a device error.
    pub errors: u64,
    /// Admitted ops that waited for a later window.
    pub deferred: u64,
    /// Ops shed by the queue-depth trigger.
    pub shed_queue: u64,
    /// Ops shed by the BA-buffer trigger.
    pub shed_buffer: u64,
    /// Aggregate offered load, ops/sec.
    pub offered_ops_per_sec: f64,
    /// Sustained throughput of admitted ops over the completion span.
    pub admitted_ops_per_sec: f64,
    /// Median admitted latency (from arrival), µs, interpolated.
    pub p50_us: f64,
    /// p99 admitted latency, µs, interpolated.
    pub p99_us: f64,
    /// p999 admitted latency, µs, interpolated.
    pub p999_us: f64,
    /// Worst single tenant's interpolated p99, µs.
    pub worst_tenant_p99_us: f64,
    /// The run's p99 target, µs.
    pub slo_p99_us: f64,
    /// Whether the aggregate p99 met the target and nothing was shed.
    pub slo_ok: bool,
    /// SLO windows that saw at least one completion.
    pub windows: u64,
    /// Windows whose interpolated p99 or p999 exceeded its target.
    pub windows_over_slo: u64,
    /// Canonical completion-log digest (mode-invariant on a sharded
    /// placement).
    pub digest: u64,
    /// Events posted into the past (must be zero).
    pub clamped_posts: u64,
}

/// FNV-1a-style fold, identical to the sharded calendar's digest mix so
/// the two logs hash the same way.
fn mix(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x0000_0100_0000_01b3).rotate_left(23)
}

const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// The single event-loop owner of the workload layer. See the module docs.
pub struct ServiceDriver;

impl ServiceDriver {
    /// Runs the arrival and control layers: generates every tenant's
    /// open-loop stream over the horizon and decides admit / defer / shed
    /// per op. Pure host-side traffic-time computation — no device state,
    /// so the same plan feeds every backend and drive mode.
    ///
    /// `groups` is the device-group count the plan will be served on
    /// (tenant `t` lives on group `t % groups`); `group_ba_bytes` is one
    /// group's BA-buffer capacity, the saturation trigger's budget.
    pub fn plan(cfg: &ServeConfig, groups: usize, group_ba_bytes: u64) -> AdmissionPlan {
        assert!(cfg.tenants > 0, "need at least one tenant");
        assert!(groups > 0, "need at least one device group");
        assert!(
            cfg.window > SimDuration::ZERO,
            "need a non-zero admission window"
        );
        assert!(cfg.admit_per_window > 0, "need a non-zero admission depth");
        let win_ns = cfg.window.as_nanos();
        let horizon_ns = cfg.horizon.as_nanos();

        // Arrival layer: every tenant's stream, merged into one
        // deterministic (time, tenant) order.
        let mut raw: Vec<(SimTime, u16)> = Vec::new();
        for tenant in 0..cfg.tenants {
            let mut process: Box<dyn ArrivalProcess> = cfg.arrival.build(tenant);
            let mut at = SimTime::ZERO;
            loop {
                at = process.next_after(at);
                if at.as_nanos() >= horizon_ns {
                    break;
                }
                raw.push((at, tenant));
            }
        }
        raw.sort_unstable();
        let offered = raw.len() as u64;

        // Queue-depth trigger: per tenant, at most `admit_per_window`
        // admissions per window; the earliest window with free capacity
        // takes the op, up to `defer_windows` past its arrival window.
        struct TenantAdmit {
            window: u64,
            admitted_in_window: u32,
        }
        let mut states: Vec<TenantAdmit> = (0..cfg.tenants)
            .map(|_| TenantAdmit {
                window: 0,
                admitted_in_window: 0,
            })
            .collect();
        let mut admitted: Vec<AdmittedOp> = Vec::with_capacity(raw.len());
        let mut deferred = 0u64;
        let mut shed_queue = 0u64;
        for (arrival, tenant) in raw {
            let state = &mut states[usize::from(tenant)];
            let arrival_window = arrival.as_nanos() / win_ns;
            // `state.window` always has free capacity (the invariant below).
            let window = state.window.max(arrival_window);
            if window - arrival_window > cfg.defer_windows {
                shed_queue += 1; // Shed ops consume no window capacity.
                continue;
            }
            if window > state.window {
                state.window = window;
                state.admitted_in_window = 0;
            }
            let submit_at = if window == arrival_window {
                arrival
            } else {
                deferred += 1;
                SimTime::from_nanos(window * win_ns)
            };
            admitted.push(AdmittedOp {
                tenant,
                arrival,
                submit_at,
            });
            state.admitted_in_window += 1;
            if state.admitted_in_window >= cfg.admit_per_window {
                state.window += 1;
                state.admitted_in_window = 0;
            }
        }

        // BA-buffer-saturation trigger, in device submission order: the
        // bytes a group's admitted commits pin per window may not outrun
        // its BA buffer. (The block scheme has no BA window to saturate.)
        admitted.sort_unstable_by_key(|op| (op.submit_at, op.tenant));
        let mut shed_buffer = 0u64;
        if cfg.scheme.is_byte_path() {
            let mut group_window_bytes: HashMap<(usize, u64), u64> = HashMap::new();
            let payload = cfg.payload_bytes as u64;
            admitted.retain(|op| {
                let key = (
                    usize::from(op.tenant) % groups,
                    op.submit_at.as_nanos() / win_ns,
                );
                let used = group_window_bytes.entry(key).or_insert(0);
                if *used + payload > group_ba_bytes {
                    shed_buffer += 1;
                    false
                } else {
                    *used += payload;
                    true
                }
            });
        }

        AdmissionPlan {
            offered,
            admitted,
            deferred,
            shed_queue,
            shed_buffer,
        }
    }

    /// The per-group device spec a serving run uses: one BA-buffer page
    /// per tenant (so the `PinTable` grants every tenant a share) with at
    /// least the test-scale 64 KiB buffer.
    pub fn group_spec(tenants_per_group: u16) -> TwoBSpec {
        TwoBSpec {
            ba_buffer_bytes: (u64::from(tenants_per_group) * 4096).max(64 << 10),
            max_entries: usize::from(tenants_per_group).max(8),
            ..TwoBSpec::default()
        }
    }

    /// Serves the plan on one plain [`IoCalendar`]-routed device.
    ///
    /// # Panics
    ///
    /// Panics if a BA-scheme fleet exceeds the 256 mapping entries one
    /// device can hold, or on an internal setup failure.
    pub fn serve(cfg: &ServeConfig) -> ServeReport {
        if cfg.scheme.is_byte_path() {
            assert!(
                cfg.tenants <= 256,
                "one device holds at most 256 BA mapping entries; shard the fleet"
            );
        }
        let spec = Self::group_spec(cfg.tenants);
        let plan = Self::plan(cfg, 1, spec.ba_buffer_bytes);
        let mut dev = TwoBSsd::new(SsdConfig::base_2b().bench_scale(), spec);
        let (eids, epoch) = Self::pin_fleet(cfg, &mut dev, cfg.tenants);

        let mut cal = IoCalendar::new();
        let mut measured: HashMap<u64, usize> = HashMap::with_capacity(plan.admitted.len());
        let mut block_seq = vec![0u64; usize::from(cfg.tenants)];
        for (index, op) in plan.admitted.iter().enumerate() {
            let at = op.submit_at + epoch;
            let id = match cfg.scheme {
                WalScheme::Ba => cal.submit(
                    at,
                    IoOp::BaSyncRange {
                        eid: eids[usize::from(op.tenant)],
                        rel_offset: 0,
                        len: cfg.payload_bytes as u64,
                    },
                ),
                WalScheme::Cxl => cal.submit(
                    at,
                    IoOp::CxlPersist {
                        eid: eids[usize::from(op.tenant)],
                        rel_offset: 0,
                        len: cfg.payload_bytes as u64,
                    },
                ),
                WalScheme::Block => {
                    let seq = &mut block_seq[usize::from(op.tenant)];
                    let lba = Lba(u64::from(op.tenant) * u64::from(cfg.region_pages)
                        + (*seq % u64::from(cfg.region_pages)));
                    *seq += 1;
                    cal.submit(
                        at,
                        IoOp::BlockWrite {
                            lba,
                            data: vec![0xA5; 4096],
                        },
                    );
                    cal.submit(at, IoOp::BlockFlush)
                }
            };
            measured.insert(id, index);
        }
        cal.drive(&mut dev);
        let clamped = cal.clamped_posts();
        let mut completions = cal.drain_completions();
        completions.sort_unstable_by_key(|c| (c.complete_at, c.id));
        let digest = completions.iter().fold(FNV_BASIS, |h, c| {
            mix(
                mix(mix(h, c.complete_at.as_nanos()), c.id),
                u64::from(c.error.is_some()),
            )
        });
        let observed: Vec<(u64, SimTime, bool)> = completions
            .into_iter()
            .map(|c| (c.id, c.complete_at, c.error.is_some()))
            .collect();
        Self::assemble(cfg, &plan, epoch, &measured, &observed, digest, clamped)
    }

    /// Serves the plan on a [`ShardedIoCalendar`] placement of
    /// `groups` die-sliced devices (tenant `t` on group `t % groups`),
    /// driven by `drive`. The completion digest is invariant across
    /// [`ShardDrive`] modes — the acceptance property for the sharded
    /// serving path.
    ///
    /// # Panics
    ///
    /// Panics if `groups` does not evenly divide the tenant count or the
    /// per-group fleet exceeds one device's 256 mapping entries.
    pub fn serve_sharded(cfg: &ServeConfig, groups: usize, drive: ShardDrive) -> ServeReport {
        Self::serve_sharded_placed(cfg, groups, groups, drive)
    }

    /// Like [`ServiceDriver::serve_sharded`], but with an explicit
    /// group→shard placement: `shards` time domains over `groups` die
    /// groups, round-robin. The completion digest is placement-invariant
    /// (coalescing groups onto fewer shards reorders nothing observable),
    /// which is what lets the tier and tenant sweeps pin one digest per
    /// workload across every placement they run.
    ///
    /// # Panics
    ///
    /// As for [`ServiceDriver::serve_sharded`], plus a zero `shards`.
    pub fn serve_sharded_placed(
        cfg: &ServeConfig,
        groups: usize,
        shards: usize,
        drive: ShardDrive,
    ) -> ServeReport {
        assert!(groups > 0, "need at least one group");
        assert!(
            usize::from(cfg.tenants) % groups == 0,
            "groups must evenly divide the tenant fleet"
        );
        let per_group = (usize::from(cfg.tenants) / groups) as u16;
        assert!(
            usize::from(per_group) <= 256,
            "one device holds at most 256 BA mapping entries"
        );
        let spec = Self::group_spec(per_group);
        let plan = Self::plan(cfg, groups, spec.ba_buffer_bytes);

        let mut devices: Vec<TwoBSsd> = (0..groups)
            .map(|_| {
                TwoBSsd::new(
                    SsdConfig::base_2b().bench_scale().die_slice(groups as u32),
                    spec,
                )
            })
            .collect();
        // Pin every tenant's window on its group device before the
        // calendar takes ownership; local tenant `t / groups` on group
        // `t % groups`.
        let mut eids = vec![None; usize::from(cfg.tenants)];
        let mut epoch = SimDuration::ZERO;
        if cfg.scheme.is_byte_path() {
            let mut tables: Vec<PinTable> = devices
                .iter()
                .map(|d| PinTable::new(d.spec(), per_group).expect("per-tenant shares fit"))
                .collect();
            for tenant in 0..cfg.tenants {
                let group = usize::from(tenant) % groups;
                let local = tenant / groups as u16;
                let (eid, done) = tables[group]
                    .pin(
                        &mut devices[group],
                        SimTime::ZERO,
                        TenantId(local),
                        Lba(u64::from(local) * u64::from(cfg.region_pages)),
                        1,
                    )
                    .expect("fleet pins fit their shares");
                eids[usize::from(tenant)] = Some(eid);
                epoch = epoch.max(SimDuration::from_nanos(done.complete_at.as_nanos()));
            }
        }
        let mut cal = ShardedIoCalendar::new(
            devices,
            GroupPlacement::round_robin(groups, shards),
            SimDuration::from_micros(2),
        );
        let mut measured: HashMap<u64, usize> = HashMap::with_capacity(plan.admitted.len());
        let mut block_seq = vec![0u64; usize::from(cfg.tenants)];
        for (index, op) in plan.admitted.iter().enumerate() {
            let at = op.submit_at + epoch;
            let group = usize::from(op.tenant) % groups;
            let id = match cfg.scheme {
                WalScheme::Ba => cal.submit(
                    at,
                    group,
                    IoOp::BaSyncRange {
                        eid: eids[usize::from(op.tenant)].expect("pinned above"),
                        rel_offset: 0,
                        len: cfg.payload_bytes as u64,
                    },
                ),
                WalScheme::Cxl => cal.submit(
                    at,
                    group,
                    IoOp::CxlPersist {
                        eid: eids[usize::from(op.tenant)].expect("pinned above"),
                        rel_offset: 0,
                        len: cfg.payload_bytes as u64,
                    },
                ),
                WalScheme::Block => {
                    let local = u64::from(op.tenant) / groups as u64;
                    let seq = &mut block_seq[usize::from(op.tenant)];
                    let lba =
                        Lba(local * u64::from(cfg.region_pages)
                            + (*seq % u64::from(cfg.region_pages)));
                    *seq += 1;
                    cal.submit(
                        at,
                        group,
                        IoOp::BlockWrite {
                            lba,
                            data: vec![0xA5; 4096],
                        },
                    );
                    cal.submit(at, group, IoOp::BlockFlush)
                }
            };
            measured.insert(id, index);
        }
        match drive {
            ShardDrive::Lockstep => cal.run_lockstep(),
            ShardDrive::Adaptive => cal.run(),
            ShardDrive::Parallel(threads) => cal.run_parallel(threads),
        }
        assert_eq!(cal.unresolved_chains(), 0, "no dangling op chains");
        let observed = cal.observed_log();
        Self::assemble(
            cfg,
            &plan,
            epoch,
            &measured,
            &observed,
            cal.host_digest(),
            cal.clamped_posts(),
        )
    }

    /// Pins one BA window per tenant through a fresh [`PinTable`] and
    /// returns `(entry ids, setup end)`; the block scheme needs neither.
    fn pin_fleet(
        cfg: &ServeConfig,
        dev: &mut TwoBSsd,
        tenants: u16,
    ) -> (Vec<twob_core::EntryId>, SimDuration) {
        let mut eids = Vec::with_capacity(usize::from(tenants));
        let mut epoch = SimDuration::ZERO;
        if cfg.scheme.is_byte_path() {
            let mut pins = PinTable::new(dev.spec(), tenants).expect("per-tenant shares fit");
            for tenant in 0..tenants {
                let (eid, done) = pins
                    .pin(
                        dev,
                        SimTime::ZERO,
                        TenantId(tenant),
                        Lba(u64::from(tenant) * u64::from(cfg.region_pages)),
                        1,
                    )
                    .expect("fleet pins fit their shares");
                eids.push(eid);
                epoch = epoch.max(SimDuration::from_nanos(done.complete_at.as_nanos()));
            }
        }
        (eids, epoch)
    }

    /// The measurement layer: joins the completion log back to the plan
    /// and computes latency, SLO-window, and throughput accounting.
    fn assemble(
        cfg: &ServeConfig,
        plan: &AdmissionPlan,
        epoch: SimDuration,
        measured: &HashMap<u64, usize>,
        observed: &[(u64, SimTime, bool)],
        digest: u64,
        clamped_posts: u64,
    ) -> ServeReport {
        let win_ns = cfg.window.as_nanos();
        let mut all = Histogram::new();
        let mut per_tenant: HashMap<u16, Histogram> = HashMap::new();
        let mut per_window: HashMap<u64, Histogram> = HashMap::new();
        let mut completed = 0u64;
        let mut errors = 0u64;
        let mut last_completion = SimTime::ZERO;
        for &(id, complete_at, failed) in observed {
            let Some(&index) = measured.get(&id) else {
                continue; // A block-scheme page write; its flush is measured.
            };
            let op = &plan.admitted[index];
            completed += 1;
            if failed {
                errors += 1;
            }
            last_completion = last_completion.max(complete_at);
            let latency = complete_at.saturating_since(op.arrival + epoch);
            all.record(latency);
            per_tenant.entry(op.tenant).or_default().record(latency);
            per_window
                .entry(op.arrival.as_nanos() / win_ns)
                .or_default()
                .record(latency);
        }
        let worst_tenant_p99_us = per_tenant
            .values()
            .map(|h| h.p99() / 1e3)
            .fold(0.0f64, f64::max);
        let windows = per_window.len() as u64;
        let windows_over_slo = per_window
            .values()
            .filter(|h| h.p99() / 1e3 > cfg.slo_p99_us || h.p999() / 1e3 > cfg.slo_p999_us)
            .count() as u64;
        let horizon_secs = cfg.horizon.as_secs_f64();
        let span_secs = last_completion
            .saturating_since(SimTime::ZERO + epoch)
            .as_secs_f64();
        let p99_us = all.p99() / 1e3;
        ServeReport {
            tenants: cfg.tenants,
            scheme: cfg.scheme.label().to_string(),
            arrival: cfg.arrival.kind.label().to_string(),
            offered: plan.offered,
            admitted: plan.admitted.len() as u64,
            completed,
            errors,
            deferred: plan.deferred,
            shed_queue: plan.shed_queue,
            shed_buffer: plan.shed_buffer,
            offered_ops_per_sec: if horizon_secs > 0.0 {
                plan.offered as f64 / horizon_secs
            } else {
                0.0
            },
            admitted_ops_per_sec: if span_secs > 0.0 {
                completed as f64 / span_secs
            } else {
                0.0
            },
            p50_us: all.interpolated(0.5) / 1e3,
            p99_us,
            p999_us: all.p999() / 1e3,
            worst_tenant_p99_us,
            slo_p99_us: cfg.slo_p99_us,
            slo_ok: p99_us <= cfg.slo_p99_us && plan.shed_queue + plan.shed_buffer == 0,
            windows,
            windows_over_slo,
            digest,
            clamped_posts,
        }
    }

    /// Closed-loop slot mode (the old `ClosedLoopPool`): `clients`
    /// clients each keep `qd` operations outstanding, issuing the next
    /// the instant a slot frees. `op` is called as `(client, issue_at)`
    /// and returns the completion instant (clamped forward).
    ///
    /// # Panics
    ///
    /// Panics if `clients` or `qd` is zero.
    pub fn run_slots<F>(
        clients: usize,
        qd: usize,
        start: SimTime,
        total_ops: u64,
        mut op: F,
    ) -> ClosedLoopReport
    where
        F: FnMut(usize, SimTime) -> SimTime,
    {
        assert!(clients > 0, "need at least one client");
        assert!(qd > 0, "need a queue depth of at least one");
        let mut calendar: EventQueue<usize> = EventQueue::new();
        for client in 0..clients {
            for _ in 0..qd {
                calendar.push(start, client);
            }
        }
        let mut issued = 0u64;
        let mut report = ClosedLoopReport {
            ops: 0,
            epoch: start,
            makespan: start,
            latency: Histogram::new(),
        };
        // Each calendar entry is a slot becoming free; issuing the next
        // operation re-posts the slot at that operation's completion.
        while let Some((free_at, client)) = calendar.pop() {
            report.makespan = report.makespan.max(free_at);
            if issued >= total_ops {
                continue;
            }
            issued += 1;
            let done = op(client, free_at).max(free_at);
            report.ops += 1;
            report.latency.record(done.saturating_since(free_at));
            calendar.push(done, client);
        }
        report
    }

    /// Session mode (the old `TenantPool::run`): drives every tenant's
    /// engine, group committer, and shared-device WAL to completion and
    /// reports commit latencies. The loop always advances the earliest
    /// event — a ready client's next operation or an armed group-commit
    /// deadline — so a run is a pure function of the pool configuration.
    ///
    /// # Errors
    ///
    /// Engine or WAL failures.
    pub fn run_sessions(pool: &mut TenantPool) -> Result<TenantReport, DbError> {
        // Load phase: populate each engine's in-memory state. These records
        // never reach the shared log (the measured phase starts cold at the
        // latest load end so tenants begin together).
        let mut start = SimTime::ZERO;
        for tenant in &mut pool.tenants {
            let end = tenant.engine.load(&mut tenant.rng)?;
            tenant.recorder.borrow_mut().clear();
            start = start.max(end);
        }
        for tenant in &mut pool.tenants {
            for c in &mut tenant.clients {
                *c = Some(start);
            }
        }

        // Event loop: always advance the earliest event — a ready client's
        // next operation or an armed group-commit deadline.
        loop {
            let mut next_client: Option<(usize, usize, SimTime)> = None;
            let mut next_deadline: Option<(usize, SimTime)> = None;
            for (ti, tenant) in pool.tenants.iter().enumerate() {
                if tenant.remaining > 0 {
                    for (ci, clock) in tenant.clients.iter().enumerate() {
                        if let Some(at) = clock {
                            if next_client.is_none_or(|(_, _, t)| *at < t) {
                                next_client = Some((ti, ci, *at));
                            }
                        }
                    }
                }
                if let Some(d) = tenant.group.next_deadline() {
                    if next_deadline.is_none_or(|(_, t)| d < t) {
                        next_deadline = Some((ti, d));
                    }
                }
            }
            match (next_client, next_deadline) {
                (Some((ti, ci, at)), deadline) => {
                    if let Some((di, d)) = deadline {
                        if d <= at {
                            Self::drive_session(&mut pool.tenants[di], d)?;
                            continue;
                        }
                    }
                    Self::dispatch_session(pool, ti, ci, at)?;
                }
                (None, Some((di, d))) => {
                    Self::drive_session(&mut pool.tenants[di], d)?;
                }
                (None, None) => break,
            }
        }
        // Tail flush: batches armed after the last ops, and any committer
        // stranded by an empty deadline queue.
        let tail = pool.tenants.iter().map(|t| t.end).max().unwrap_or(start);
        for tenant in &mut pool.tenants {
            Self::flush_session(tenant, tail)?;
        }

        Ok(Self::session_report(pool, start))
    }

    /// Runs one client operation and forwards produced log records to the
    /// tenant's group committer.
    fn dispatch_session(
        pool: &mut TenantPool,
        ti: usize,
        ci: usize,
        at: SimTime,
    ) -> Result<(), DbError> {
        let tenant = &mut pool.tenants[ti];
        tenant.remaining -= 1;
        let done = tenant.engine.step(at, &mut tenant.rng)?;
        tenant.end = tenant.end.max(done);
        let records: Vec<Vec<u8>> = tenant.recorder.borrow_mut().drain(..).collect();
        if records.is_empty() {
            // Read-only operation: the client moves on immediately.
            tenant.clients[ci] = Some(done);
            return Ok(());
        }
        let mut last_ticket = 0;
        for payload in &records {
            last_ticket = tenant.group.submit(done, payload);
        }
        // The committing client blocks until its batch is durable.
        tenant.clients[ci] = None;
        tenant.waiting.insert(last_ticket, ci);
        if tenant.group.pending_len() >= pool.cfg.max_batch {
            Self::drive_session(tenant, done)?;
        }
        Ok(())
    }

    /// Advances one tenant's group committer to `now`, recording latencies
    /// and unblocking clients whose commits completed.
    fn drive_session(tenant: &mut crate::tenant::Tenant, now: SimTime) -> Result<(), DbError> {
        let waiting = &mut tenant.waiting;
        let clients = &mut tenant.clients;
        let latencies = &mut tenant.latencies_ns;
        let mut end = tenant.end;
        tenant.group.drive(now, |out| {
            latencies.push(out.commit_at.saturating_since(out.submitted).as_nanos());
            end = end.max(out.commit_at);
            if let Some(ci) = waiting.remove(&out.ticket) {
                clients[ci] = Some(out.commit_at);
            }
        })?;
        tenant.end = end;
        Ok(())
    }

    /// Forces out everything a tenant still has pending (end of run).
    fn flush_session(tenant: &mut crate::tenant::Tenant, now: SimTime) -> Result<(), DbError> {
        let waiting = &mut tenant.waiting;
        let clients = &mut tenant.clients;
        let latencies = &mut tenant.latencies_ns;
        let mut end = tenant.end;
        tenant.group.flush_now(now, |out| {
            latencies.push(out.commit_at.saturating_since(out.submitted).as_nanos());
            end = end.max(out.commit_at);
            if let Some(ci) = waiting.remove(&out.ticket) {
                clients[ci] = Some(out.commit_at);
            }
        })?;
        tenant.end = end;
        Ok(())
    }

    fn session_report(pool: &TenantPool, start: SimTime) -> TenantReport {
        let mut all = Histogram::new();
        let mut per_tenant = Vec::with_capacity(pool.tenants.len());
        let mut commits = 0u64;
        let mut batches = 0u64;
        let mut grouped = 0u64;
        let mut worst = 0.0f64;
        let mut end = start;
        for (i, tenant) in pool.tenants.iter().enumerate() {
            let lat = Histogram::from_nanos_samples(tenant.latencies_ns.clone());
            let p99 = percentile_us(&lat, 0.99);
            worst = worst.max(p99);
            per_tenant.push(TenantOutcome {
                tenant: i as u16,
                engine: tenant.engine_kind,
                commits: lat.len() as u64,
                p50_us: percentile_us(&lat, 0.50),
                p99_us: p99,
            });
            commits += lat.len() as u64;
            batches += tenant.group.batches();
            grouped += tenant.group.grouped_commits();
            all.merge(&lat);
            end = end.max(tenant.end);
        }
        let span = end.saturating_since(start).as_secs_f64();
        TenantReport {
            tenants: pool.cfg.tenants,
            scheme: pool.cfg.scheme.label().to_string(),
            commits,
            batches,
            grouped_pct: if commits == 0 {
                0.0
            } else {
                100.0 * grouped as f64 / commits as f64
            },
            p50_us: percentile_us(&all, 0.50),
            p99_us: percentile_us(&all, 0.99),
            worst_tenant_p99_us: worst,
            commits_per_sec: if span > 0.0 {
                commits as f64 / span
            } else {
                0.0
            },
            per_tenant,
        }
    }

    /// NVMe queue-pair mode (the old `NvmeSsd::run_closed_loop`): every
    /// queue pair is kept at its configured depth, and each completion
    /// immediately submits the next command to the queue that finished.
    /// `next_op` maps the global command index to `(qid, op)` for the
    /// priming phase; refills reuse the completing queue id.
    ///
    /// # Panics
    ///
    /// Panics if `next_op` returns an out-of-bounds `qid`.
    pub fn run_nvme<G>(
        dev: &mut NvmeSsd,
        start: SimTime,
        total_ops: u64,
        mut next_op: G,
    ) -> QdReport
    where
        G: FnMut(u64) -> (usize, NvmeOp),
    {
        let mut exec: Executor<NvmeEvent> = Executor::new();
        let mut issued = 0u64;
        // Prime every queue to its depth, round-robin across pairs so the
        // arbitration order is exercised from the first doorbell.
        'prime: loop {
            let mut any = false;
            for _ in 0..dev.queue_config().pairs {
                if issued >= total_ops {
                    break 'prime;
                }
                let (qid, op) = next_op(issued);
                if !dev.can_submit(qid) {
                    continue;
                }
                dev.submit(&mut exec, start, qid, op)
                    .expect("can_submit was checked");
                issued += 1;
                any = true;
            }
            if !any {
                break;
            }
        }
        let mut report = QdReport {
            ops: 0,
            errors: 0,
            bytes: 0,
            epoch: start,
            makespan: start,
            latency: Histogram::new(),
        };
        // The closed loop proper: each CQ entry refills its queue at the
        // completion instant, keeping the device at depth until the work
        // runs out.
        let mut drive = |dev: &mut NvmeSsd, ex: &mut Executor<NvmeEvent>, t, ev| {
            dev.handle(ex, t, ev);
            for entry in dev.drain_completions() {
                report.ops += 1;
                report.bytes += entry.bytes;
                report.makespan = report.makespan.max(entry.completed);
                report
                    .latency
                    .record(entry.completed.saturating_since(entry.submitted));
                if entry.result.is_err() {
                    report.errors += 1;
                }
                if issued < total_ops {
                    let (_, op) = next_op(issued);
                    issued += 1;
                    dev.submit(ex, entry.completed, entry.qid, op)
                        .expect("a completion freed a slot on this queue");
                }
            }
        };
        exec.run(|ex, t, ev| drive(dev, ex, t, ev));
        debug_assert_eq!(
            exec.clamped_posts(),
            0,
            "closed-loop drive posted events into the past: every completion \
             and refill is scheduled at or after the instant that caused it"
        );
        report
    }
}

/// Nearest-rank percentile of a latency histogram, in µs — the exact
/// arithmetic the golden fixtures pinned before `Histogram` took over the
/// bench layer's p99 extraction.
fn percentile_us(hist: &Histogram, q: f64) -> f64 {
    if hist.is_empty() {
        return 0.0;
    }
    hist.percentile(q).as_nanos() as f64 / 1e3
}

/// The result of driving a closed-loop slot pool to completion.
#[derive(Debug, Clone)]
pub struct ClosedLoopReport {
    /// Operations completed.
    pub ops: u64,
    /// The instant the pool started issuing.
    pub epoch: SimTime,
    /// The instant the last operation completed.
    pub makespan: SimTime,
    /// Per-operation latency (issue to completion).
    pub latency: Histogram,
}

impl ClosedLoopReport {
    /// Throughput in operations per virtual second over `makespan − epoch`.
    pub fn ops_per_sec(&self) -> f64 {
        let secs = self.makespan.saturating_since(self.epoch).as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.ops as f64 / secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::ArrivalKind;

    fn quick_cfg(tenants: u16, scheme: WalScheme, kind: ArrivalKind, rate: f64) -> ServeConfig {
        ServeConfig {
            horizon: SimDuration::from_micros(1_000),
            ..ServeConfig::standard(tenants, scheme, ArrivalConfig::new(kind, rate, 13))
        }
    }

    #[test]
    fn plan_admits_everything_under_light_load() {
        let cfg = quick_cfg(8, WalScheme::Ba, ArrivalKind::Poisson, 10_000.0);
        let plan = ServiceDriver::plan(&cfg, 1, ServiceDriver::group_spec(8).ba_buffer_bytes);
        assert!(plan.offered > 0);
        assert_eq!(plan.admitted.len() as u64, plan.offered);
        assert_eq!(plan.shed(), 0);
        // Submission order is the deterministic (submit_at, tenant) sort.
        for w in plan.admitted.windows(2) {
            assert!((w[0].submit_at, w[0].tenant) <= (w[1].submit_at, w[1].tenant));
        }
    }

    #[test]
    fn plan_defers_then_sheds_under_overload() {
        // 2 M ops/s per tenant dwarfs the 8-per-100 µs admission depth
        // (80 k ops/s sustainable), so the defer budget exhausts fast.
        let cfg = quick_cfg(4, WalScheme::Ba, ArrivalKind::Poisson, 2_000_000.0);
        let plan = ServiceDriver::plan(&cfg, 1, ServiceDriver::group_spec(4).ba_buffer_bytes);
        assert!(plan.deferred > 0, "overload must defer");
        assert!(plan.shed_queue > 0, "overload must shed");
        // Every admitted op still respects the defer bound, which is what
        // keeps admitted-op latency bounded under any overload.
        let bound = cfg.window.as_nanos() * (cfg.defer_windows + 1);
        for op in &plan.admitted {
            assert!(op.submit_at.saturating_since(op.arrival).as_nanos() <= bound);
        }
    }

    #[test]
    fn ba_buffer_trigger_sheds_byte_floods() {
        let mut cfg = quick_cfg(2, WalScheme::Ba, ArrivalKind::Poisson, 400_000.0);
        cfg.payload_bytes = 32 << 10; // 32 KiB commits into a 64 KiB buffer
        cfg.admit_per_window = 64;
        let plan = ServiceDriver::plan(&cfg, 1, ServiceDriver::group_spec(2).ba_buffer_bytes);
        assert!(plan.shed_buffer > 0, "byte flood must trip the BA trigger");
        // The block scheme has no BA window to saturate.
        cfg.scheme = WalScheme::Block;
        let plan = ServiceDriver::plan(&cfg, 1, ServiceDriver::group_spec(2).ba_buffer_bytes);
        assert_eq!(plan.shed_buffer, 0);
    }

    #[test]
    fn serve_runs_every_scheme_and_meets_accounting() {
        for scheme in [WalScheme::Ba, WalScheme::Cxl, WalScheme::Block] {
            let cfg = quick_cfg(4, scheme, ArrivalKind::Poisson, 20_000.0);
            let report = ServiceDriver::serve(&cfg);
            assert_eq!(report.scheme, scheme.label());
            assert_eq!(report.completed, report.admitted, "{scheme:?}");
            assert_eq!(report.errors, 0, "{scheme:?}");
            assert_eq!(report.clamped_posts, 0, "{scheme:?}");
            assert!(report.p99_us >= report.p50_us, "{scheme:?}");
            assert!(report.windows > 0, "{scheme:?}");
        }
    }

    #[test]
    fn sharded_serve_digest_is_drive_and_placement_invariant_for_cxl() {
        let cfg = quick_cfg(8, WalScheme::Cxl, ArrivalKind::Poisson, 30_000.0);
        let baseline = ServiceDriver::serve_sharded(&cfg, 4, ShardDrive::Lockstep);
        assert_eq!(baseline.clamped_posts, 0);
        assert!(baseline.completed > 0);
        for drive in [
            ShardDrive::Adaptive,
            ShardDrive::Parallel(2),
            ShardDrive::Parallel(4),
        ] {
            let got = ServiceDriver::serve_sharded(&cfg, 4, drive);
            assert_eq!(got.digest, baseline.digest, "{} drifted", drive.label());
        }
        // Coalescing the 4 groups onto 2 shards is byte-front-end
        // irrelevant: same digest.
        for shards in [1, 2] {
            let got = ServiceDriver::serve_sharded_placed(&cfg, 4, shards, ShardDrive::Adaptive);
            assert_eq!(
                got.digest, baseline.digest,
                "{shards}-shard placement drifted"
            );
        }
    }

    #[test]
    fn serve_is_deterministic_across_runs() {
        for kind in ArrivalKind::ALL {
            let run = || ServiceDriver::serve(&quick_cfg(4, WalScheme::Ba, kind, 30_000.0));
            assert_eq!(run(), run(), "{} serve drifted", kind.label());
        }
    }

    #[test]
    fn closed_loop_slots_overlap_by_queue_depth() {
        let fixed = SimDuration::from_micros(10);
        let qd1 = ServiceDriver::run_slots(1, 1, SimTime::ZERO, 16, |_, t| t + fixed);
        let qd4 = ServiceDriver::run_slots(1, 4, SimTime::ZERO, 16, |_, t| t + fixed);
        assert_eq!(qd1.ops, 16);
        assert_eq!(qd4.ops, 16);
        // A fixed-latency engine admits perfect overlap: QD4 finishes 4x
        // sooner and reports 4x the throughput.
        assert_eq!(qd1.makespan, SimTime::from_nanos(160_000));
        assert_eq!(qd4.makespan, SimTime::from_nanos(40_000));
        assert!((qd4.ops_per_sec() / qd1.ops_per_sec() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn closed_loop_slots_count_makespan_from_epoch() {
        let start = SimTime::from_nanos(2_000_000);
        let report =
            ServiceDriver::run_slots(2, 2, start, 8, |_, t| t + SimDuration::from_micros(10));
        assert_eq!(report.epoch, start);
        assert_eq!(report.makespan, start + SimDuration::from_micros(20));
        assert!((report.ops_per_sec() - 400_000.0).abs() < 1.0);
    }

    #[test]
    fn closed_loop_slots_are_deterministic() {
        let run = || {
            ServiceDriver::run_slots(4, 8, SimTime::ZERO, 100, |c, t| {
                t + SimDuration::from_nanos(1_000 + (c as u64) * 37)
            })
        };
        let (a, b) = (run(), run());
        assert_eq!(a.ops, b.ops);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.latency.percentile(0.99), b.latency.percentile(0.99));
    }
}
