//! Multi-client virtual-time execution.

use twob_sim::{EventQueue, Histogram, SimTime};

/// A pool of simulated client threads, each with its own virtual clock.
///
/// Usage: call [`ClientPool::next_client`] to pick the farthest-behind
/// client and the instant its next operation may start, run the operation
/// against the engine at that instant, and report the completion with
/// [`ClientPool::complete`]. Clients thereby interleave in virtual time
/// while the engine's shared busy-until resources (the WAL device, the
/// firmware cores) provide the queuing.
///
/// # Example
///
/// ```rust
/// use twob_sim::{SimDuration, SimTime};
/// use twob_workloads::ClientPool;
///
/// let mut pool = ClientPool::new(4);
/// for _ in 0..8 {
///     let (client, start) = pool.next_client();
///     pool.complete(client, start + SimDuration::from_micros(10));
/// }
/// // 8 ops × 10 us over 4 clients finish in 20 us of virtual time.
/// assert_eq!(pool.makespan(), SimTime::from_nanos(20_000));
/// ```
#[derive(Debug, Clone)]
pub struct ClientPool {
    clocks: Vec<SimTime>,
    ops: u64,
    /// The instant the pool started — throughput is measured from here, not
    /// from time zero, so a pool built after a load phase reports its
    /// steady-state rate.
    epoch: SimTime,
}

impl ClientPool {
    /// Creates a pool of `clients` clients, all starting at time zero.
    ///
    /// # Panics
    ///
    /// Panics if `clients` is zero.
    pub fn new(clients: usize) -> Self {
        ClientPool::starting_at(clients, SimTime::ZERO)
    }

    /// Creates a pool whose clients all start at `t` — e.g. right after a
    /// load phase, so throughput is measured over the steady state only.
    ///
    /// # Panics
    ///
    /// Panics if `clients` is zero.
    pub fn starting_at(clients: usize, t: SimTime) -> Self {
        assert!(clients > 0, "need at least one client");
        ClientPool {
            clocks: vec![t; clients],
            ops: 0,
            epoch: t,
        }
    }

    /// The instant the pool started (its throughput measurement origin).
    pub fn epoch(&self) -> SimTime {
        self.epoch
    }

    /// The earliest client clock (useful as the measurement window start
    /// right after construction).
    pub fn earliest(&self) -> SimTime {
        self.clocks.iter().copied().min().expect("non-empty pool")
    }

    /// Number of clients.
    pub fn len(&self) -> usize {
        self.clocks.len()
    }

    /// Returns `true` if the pool has no clients (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.clocks.is_empty()
    }

    /// Picks the client with the earliest clock and returns `(index,
    /// start_instant)`.
    pub fn next_client(&mut self) -> (usize, SimTime) {
        let (idx, &t) = self
            .clocks
            .iter()
            .enumerate()
            .min_by_key(|&(_, t)| t)
            .expect("non-empty pool");
        (idx, t)
    }

    /// Records that client `idx`'s operation completed at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn complete(&mut self, idx: usize, at: SimTime) {
        self.clocks[idx] = self.clocks[idx].max(at);
        self.ops += 1;
    }

    /// Operations completed so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// The latest client clock — the workload's virtual makespan.
    pub fn makespan(&self) -> SimTime {
        self.clocks.iter().copied().max().expect("non-empty pool")
    }

    /// Throughput in operations per virtual second over the window from the
    /// pool's epoch to the makespan — not from time zero, which would
    /// understate steady-state throughput after a load phase.
    pub fn ops_per_sec(&self) -> f64 {
        let secs = self.makespan().saturating_since(self.epoch).as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.ops as f64 / secs
        }
    }
}

/// The result of driving a [`ClosedLoopPool`] to completion.
#[derive(Debug, Clone)]
pub struct ClosedLoopReport {
    /// Operations completed.
    pub ops: u64,
    /// The instant the pool started issuing.
    pub epoch: SimTime,
    /// The instant the last operation completed.
    pub makespan: SimTime,
    /// Per-operation latency (issue to completion).
    pub latency: Histogram,
}

impl ClosedLoopReport {
    /// Throughput in operations per virtual second over `makespan − epoch`.
    pub fn ops_per_sec(&self) -> f64 {
        let secs = self.makespan.saturating_since(self.epoch).as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.ops as f64 / secs
        }
    }
}

/// A closed-loop executor: each of `clients` clients keeps `qd` operations
/// outstanding at all times, issuing the next one at the very instant a slot
/// completes. At `qd == 1` this degenerates to the lock-step [`ClientPool`]
/// discipline; at higher depths it is what actually exercises queuing in the
/// engine under test.
///
/// The pool runs on the event calendar from `twob-sim`: every free slot is a
/// calendar event carrying its client index, popped in deterministic
/// `(time, insertion)` order, so two runs with the same operation closure are
/// byte-identical.
///
/// # Example
///
/// ```rust
/// use twob_sim::{SimDuration, SimTime};
/// use twob_workloads::ClosedLoopPool;
///
/// // 2 clients × QD 4 over a fixed 10 us op: 8 ops complete per 10 us round.
/// let report = ClosedLoopPool::new(2, 4)
///     .run(SimTime::ZERO, 16, |_client, issue_at| {
///         issue_at + SimDuration::from_micros(10)
///     });
/// assert_eq!(report.ops, 16);
/// assert_eq!(report.makespan, SimTime::from_nanos(20_000));
/// ```
#[derive(Debug, Clone)]
pub struct ClosedLoopPool {
    clients: usize,
    qd: usize,
}

impl ClosedLoopPool {
    /// Creates a pool of `clients` clients, each keeping `qd` operations
    /// outstanding.
    ///
    /// # Panics
    ///
    /// Panics if `clients` or `qd` is zero.
    pub fn new(clients: usize, qd: usize) -> Self {
        assert!(clients > 0, "need at least one client");
        assert!(qd > 0, "need a queue depth of at least one");
        ClosedLoopPool { clients, qd }
    }

    /// Queue depth per client.
    pub fn queue_depth(&self) -> usize {
        self.qd
    }

    /// Drives `total_ops` operations starting at `start`. `op` is called as
    /// `(client, issue_at)` and returns the operation's completion instant
    /// (clamped forward if the engine reports a completion before the
    /// issue instant).
    pub fn run<F>(&self, start: SimTime, total_ops: u64, mut op: F) -> ClosedLoopReport
    where
        F: FnMut(usize, SimTime) -> SimTime,
    {
        let mut calendar: EventQueue<usize> = EventQueue::new();
        for client in 0..self.clients {
            for _ in 0..self.qd {
                calendar.push(start, client);
            }
        }
        let mut issued = 0u64;
        let mut report = ClosedLoopReport {
            ops: 0,
            epoch: start,
            makespan: start,
            latency: Histogram::new(),
        };
        // Each calendar entry is a slot becoming free; issuing the next
        // operation re-posts the slot at that operation's completion.
        while let Some((free_at, client)) = calendar.pop() {
            report.makespan = report.makespan.max(free_at);
            if issued >= total_ops {
                continue;
            }
            issued += 1;
            let done = op(client, free_at).max(free_at);
            report.ops += 1;
            report.latency.record(done.saturating_since(free_at));
            calendar.push(done, client);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twob_sim::SimDuration;

    #[test]
    fn dispatches_farthest_behind_client() {
        let mut pool = ClientPool::new(2);
        let (a, t0) = pool.next_client();
        pool.complete(a, t0 + SimDuration::from_micros(100));
        let (b, _) = pool.next_client();
        assert_ne!(a, b, "idle client must be picked before busy one");
    }

    #[test]
    fn makespan_and_throughput() {
        let mut pool = ClientPool::new(4);
        for _ in 0..40 {
            let (c, t) = pool.next_client();
            pool.complete(c, t + SimDuration::from_micros(10));
        }
        assert_eq!(pool.ops(), 40);
        assert_eq!(pool.makespan(), SimTime::from_nanos(100_000));
        assert!((pool.ops_per_sec() - 400_000.0).abs() < 1.0);
    }

    #[test]
    fn completion_never_rewinds_clock() {
        let mut pool = ClientPool::new(1);
        pool.complete(0, SimTime::from_nanos(100));
        pool.complete(0, SimTime::from_nanos(50));
        assert_eq!(pool.makespan(), SimTime::from_nanos(100));
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn empty_pool_panics() {
        let _ = ClientPool::new(0);
    }

    /// Regression: a pool built with `starting_at` after a load phase must
    /// divide by `makespan − epoch`, not by the makespan from time zero.
    #[test]
    fn ops_per_sec_measures_from_epoch() {
        let load_end = SimTime::from_nanos(1_000_000); // 1 ms load phase
        let mut pool = ClientPool::starting_at(4, load_end);
        assert_eq!(pool.epoch(), load_end);
        for _ in 0..40 {
            let (c, t) = pool.next_client();
            pool.complete(c, t + SimDuration::from_micros(10));
        }
        // 40 ops over a 100 us steady-state window = 400k ops/s. The old
        // accounting divided by the 1.1 ms makespan and reported ~36k.
        assert_eq!(pool.makespan(), load_end + SimDuration::from_micros(100));
        assert!((pool.ops_per_sec() - 400_000.0).abs() < 1.0);
    }

    #[test]
    fn closed_loop_overlaps_by_queue_depth() {
        let fixed = SimDuration::from_micros(10);
        let qd1 = ClosedLoopPool::new(1, 1).run(SimTime::ZERO, 16, |_, t| t + fixed);
        let qd4 = ClosedLoopPool::new(1, 4).run(SimTime::ZERO, 16, |_, t| t + fixed);
        assert_eq!(qd1.ops, 16);
        assert_eq!(qd4.ops, 16);
        // A fixed-latency engine admits perfect overlap: QD4 finishes 4x
        // sooner and reports 4x the throughput.
        assert_eq!(qd1.makespan, SimTime::from_nanos(160_000));
        assert_eq!(qd4.makespan, SimTime::from_nanos(40_000));
        assert!((qd4.ops_per_sec() / qd1.ops_per_sec() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn closed_loop_qd1_matches_client_pool() {
        // At QD1 the closed loop is exactly the lock-step ClientPool
        // discipline: same makespan, same throughput.
        let service = |c: usize| SimDuration::from_nanos(5_000 + c as u64 * 900);
        let start = SimTime::from_nanos(123);
        let mut pool = ClientPool::starting_at(3, start);
        for _ in 0..30 {
            let (c, t) = pool.next_client();
            pool.complete(c, t + service(c));
        }
        let report = ClosedLoopPool::new(3, 1).run(start, 30, |c, t| t + service(c));
        assert_eq!(report.makespan, pool.makespan());
        assert!((report.ops_per_sec() - pool.ops_per_sec()).abs() < 1e-9);
    }

    #[test]
    fn closed_loop_counts_makespan_from_epoch() {
        let start = SimTime::from_nanos(2_000_000);
        let report =
            ClosedLoopPool::new(2, 2).run(start, 8, |_, t| t + SimDuration::from_micros(10));
        assert_eq!(report.epoch, start);
        assert_eq!(report.makespan, start + SimDuration::from_micros(20));
        assert!((report.ops_per_sec() - 400_000.0).abs() < 1.0);
    }

    #[test]
    fn closed_loop_is_deterministic() {
        let run = || {
            ClosedLoopPool::new(4, 8).run(SimTime::ZERO, 100, |c, t| {
                t + SimDuration::from_nanos(1_000 + (c as u64) * 37)
            })
        };
        let (a, b) = (run(), run());
        assert_eq!(a.ops, b.ops);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.latency.percentile(0.99), b.latency.percentile(0.99));
    }
}
