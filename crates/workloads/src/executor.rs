//! Multi-client virtual-time execution: the lock-step [`ClientPool`].
//!
//! Queue-depth closed loops live in the serving stack now — see
//! [`crate::ServiceDriver::run_slots`].

use twob_sim::SimTime;

/// A pool of simulated client threads, each with its own virtual clock.
///
/// Usage: call [`ClientPool::next_client`] to pick the farthest-behind
/// client and the instant its next operation may start, run the operation
/// against the engine at that instant, and report the completion with
/// [`ClientPool::complete`]. Clients thereby interleave in virtual time
/// while the engine's shared busy-until resources (the WAL device, the
/// firmware cores) provide the queuing.
///
/// # Example
///
/// ```rust
/// use twob_sim::{SimDuration, SimTime};
/// use twob_workloads::ClientPool;
///
/// let mut pool = ClientPool::new(4);
/// for _ in 0..8 {
///     let (client, start) = pool.next_client();
///     pool.complete(client, start + SimDuration::from_micros(10));
/// }
/// // 8 ops × 10 us over 4 clients finish in 20 us of virtual time.
/// assert_eq!(pool.makespan(), SimTime::from_nanos(20_000));
/// ```
#[derive(Debug, Clone)]
pub struct ClientPool {
    clocks: Vec<SimTime>,
    ops: u64,
    /// The instant the pool started — throughput is measured from here, not
    /// from time zero, so a pool built after a load phase reports its
    /// steady-state rate.
    epoch: SimTime,
}

impl ClientPool {
    /// Creates a pool of `clients` clients, all starting at time zero.
    ///
    /// # Panics
    ///
    /// Panics if `clients` is zero.
    pub fn new(clients: usize) -> Self {
        ClientPool::starting_at(clients, SimTime::ZERO)
    }

    /// Creates a pool whose clients all start at `t` — e.g. right after a
    /// load phase, so throughput is measured over the steady state only.
    ///
    /// # Panics
    ///
    /// Panics if `clients` is zero.
    pub fn starting_at(clients: usize, t: SimTime) -> Self {
        assert!(clients > 0, "need at least one client");
        ClientPool {
            clocks: vec![t; clients],
            ops: 0,
            epoch: t,
        }
    }

    /// The instant the pool started (its throughput measurement origin).
    pub fn epoch(&self) -> SimTime {
        self.epoch
    }

    /// The earliest client clock (useful as the measurement window start
    /// right after construction).
    pub fn earliest(&self) -> SimTime {
        self.clocks.iter().copied().min().expect("non-empty pool")
    }

    /// Number of clients.
    pub fn len(&self) -> usize {
        self.clocks.len()
    }

    /// Returns `true` if the pool has no clients (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.clocks.is_empty()
    }

    /// Picks the client with the earliest clock and returns `(index,
    /// start_instant)`.
    pub fn next_client(&mut self) -> (usize, SimTime) {
        let (idx, &t) = self
            .clocks
            .iter()
            .enumerate()
            .min_by_key(|&(_, t)| t)
            .expect("non-empty pool");
        (idx, t)
    }

    /// Records that client `idx`'s operation completed at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn complete(&mut self, idx: usize, at: SimTime) {
        self.clocks[idx] = self.clocks[idx].max(at);
        self.ops += 1;
    }

    /// Operations completed so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// The latest client clock — the workload's virtual makespan.
    pub fn makespan(&self) -> SimTime {
        self.clocks.iter().copied().max().expect("non-empty pool")
    }

    /// Throughput in operations per virtual second over the window from the
    /// pool's epoch to the makespan — not from time zero, which would
    /// understate steady-state throughput after a load phase.
    pub fn ops_per_sec(&self) -> f64 {
        let secs = self.makespan().saturating_since(self.epoch).as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.ops as f64 / secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twob_sim::SimDuration;

    #[test]
    fn dispatches_farthest_behind_client() {
        let mut pool = ClientPool::new(2);
        let (a, t0) = pool.next_client();
        pool.complete(a, t0 + SimDuration::from_micros(100));
        let (b, _) = pool.next_client();
        assert_ne!(a, b, "idle client must be picked before busy one");
    }

    #[test]
    fn makespan_and_throughput() {
        let mut pool = ClientPool::new(4);
        for _ in 0..40 {
            let (c, t) = pool.next_client();
            pool.complete(c, t + SimDuration::from_micros(10));
        }
        assert_eq!(pool.ops(), 40);
        assert_eq!(pool.makespan(), SimTime::from_nanos(100_000));
        assert!((pool.ops_per_sec() - 400_000.0).abs() < 1.0);
    }

    #[test]
    fn completion_never_rewinds_clock() {
        let mut pool = ClientPool::new(1);
        pool.complete(0, SimTime::from_nanos(100));
        pool.complete(0, SimTime::from_nanos(50));
        assert_eq!(pool.makespan(), SimTime::from_nanos(100));
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn empty_pool_panics() {
        let _ = ClientPool::new(0);
    }

    /// Regression: a pool built with `starting_at` after a load phase must
    /// divide by `makespan − epoch`, not by the makespan from time zero.
    #[test]
    fn ops_per_sec_measures_from_epoch() {
        let load_end = SimTime::from_nanos(1_000_000); // 1 ms load phase
        let mut pool = ClientPool::starting_at(4, load_end);
        assert_eq!(pool.epoch(), load_end);
        for _ in 0..40 {
            let (c, t) = pool.next_client();
            pool.complete(c, t + SimDuration::from_micros(10));
        }
        // 40 ops over a 100 us steady-state window = 400k ops/s. The old
        // accounting divided by the 1.1 ms makespan and reported ~36k.
        assert_eq!(pool.makespan(), load_end + SimDuration::from_micros(100));
        assert!((pool.ops_per_sec() - 400_000.0).abs() < 1.0);
    }

    #[test]
    fn closed_loop_qd1_matches_client_pool() {
        // At QD1 the closed-loop slot mode is exactly the lock-step
        // ClientPool discipline: same makespan, same throughput.
        let service = |c: usize| SimDuration::from_nanos(5_000 + c as u64 * 900);
        let start = SimTime::from_nanos(123);
        let mut pool = ClientPool::starting_at(3, start);
        for _ in 0..30 {
            let (c, t) = pool.next_client();
            pool.complete(c, t + service(c));
        }
        let report = crate::ServiceDriver::run_slots(3, 1, start, 30, |c, t| t + service(c));
        assert_eq!(report.makespan, pool.makespan());
        assert!((report.ops_per_sec() - pool.ops_per_sec()).abs() < 1e-9);
    }
}
