//! Multi-tenant pool: N independent database engines sharing one 2B-SSD.
//!
//! The paper's §V runs PostgreSQL, RocksDB, and Redis *concurrently* on a
//! single prototype, each logging into its own slice of the BA region. This
//! module generalizes that setup to N tenants for the tenant sweep:
//!
//! - each tenant gets its own engine instance ([`MiniPg`] under the
//!   Linkbench mix, [`MiniRocks`] or [`MiniRedis`] under YCSB-A), chosen
//!   round-robin from a mix list;
//! - each tenant commits through its own [`GroupCommit`] over a per-tenant
//!   WAL — [`TenantBaWal`] windows arbitrated by the shared [`PinTable`],
//!   or [`TenantBlockWal`] regions on the same device's block path;
//! - all tenants' durability traffic funnels through one [`IoCalendar`]
//!   onto one [`TwoBSsd`], so cross-tenant interference (channel and
//!   datapath contention, shared write cache, background GC) is what the
//!   sweep measures.
//!
//! Engines log through a recording sink; the driver forwards each produced
//! record to the tenant's group committer, and a committing client blocks
//! until its batch's durability point. The pool holds state only — the
//! event loop lives in [`crate::ServiceDriver::run_sessions`], which always
//! dispatches the earliest event (farthest-behind ready client or armed
//! batch deadline, ties broken by tenant then client index), so a run is a
//! pure function of its configuration.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use serde::{Deserialize, Serialize};
use twob_core::{IoCalendar, PinTable, RegionFrontEnd, TenantId, TwoBSsd};
use twob_db::{DbError, EngineCosts, MiniPg, MiniRedis, MiniRocks};
use twob_sim::{SimDuration, SimRng, SimTime};
use twob_wal::{
    CommitOutcome, GroupCommit, Lsn, TenantBaWal, TenantBlockWal, WalConfig, WalError, WalStats,
    WalWriter,
};

use crate::{LinkbenchConfig, LinkbenchWorkload, YcsbConfig, YcsbOp, YcsbWorkload};

/// Which mini engine a tenant runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EngineKind {
    /// [`MiniPg`] driven by the Linkbench-like transaction mix.
    Pg,
    /// [`MiniRocks`] driven by YCSB-A.
    Rocks,
    /// [`MiniRedis`] driven by YCSB-A.
    Redis,
}

impl EngineKind {
    /// Display label (also the token accepted by [`EngineKind::parse_mix`]).
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Pg => "pg",
            EngineKind::Rocks => "rocks",
            EngineKind::Redis => "redis",
        }
    }

    /// Parses one engine token (the inverse of [`EngineKind::label`]).
    ///
    /// # Errors
    ///
    /// Returns the offending token if it names no engine.
    pub fn parse(token: &str) -> Result<EngineKind, String> {
        match token {
            "pg" => Ok(EngineKind::Pg),
            "rocks" => Ok(EngineKind::Rocks),
            "redis" => Ok(EngineKind::Redis),
            other => Err(format!("unknown engine '{other}' (pg|rocks|redis)")),
        }
    }

    /// Parses a comma-separated mix such as `"pg,rocks,redis"`.
    ///
    /// # Errors
    ///
    /// Returns the offending token if it names no engine, or an error for
    /// an empty mix.
    pub fn parse_mix(mix: &str) -> Result<Vec<EngineKind>, String> {
        let kinds: Result<Vec<EngineKind>, String> = mix
            .split(',')
            .map(str::trim)
            .filter(|t| !t.is_empty())
            .map(EngineKind::parse)
            .collect();
        let kinds = kinds?;
        if kinds.is_empty() {
            return Err("empty engine mix".into());
        }
        Ok(kinds)
    }
}

/// Which logging scheme every tenant uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WalScheme {
    /// BA-WAL: pinned byte-path windows arbitrated by the [`PinTable`],
    /// served through the paper's MMIO front-end.
    Ba,
    /// The same pinned windows served through the CXL.mem front-end:
    /// cache-line stores committed by persist barriers.
    Cxl,
    /// Conventional block WAL with a flush per batch, on the same device.
    Block,
}

impl WalScheme {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            WalScheme::Ba => "ba",
            WalScheme::Cxl => "cxl",
            WalScheme::Block => "block",
        }
    }

    /// Whether the scheme logs through pinned byte-path windows (and so
    /// needs a [`PinTable`] and BA-buffer capacity).
    pub fn is_byte_path(self) -> bool {
        matches!(self, WalScheme::Ba | WalScheme::Cxl)
    }

    /// The pin-table front-end serving this scheme's windows (block has
    /// none and maps to the default).
    pub fn front_end(self) -> RegionFrontEnd {
        match self {
            WalScheme::Cxl => RegionFrontEnd::Cxl,
            _ => RegionFrontEnd::BaMmio,
        }
    }
}

/// Configuration of a [`TenantPool`] run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantPoolConfig {
    /// Number of tenants sharing the device.
    pub tenants: u16,
    /// Engine mix; tenant `i` runs `mix[i % mix.len()]`.
    pub mix: Vec<EngineKind>,
    /// Logging scheme for every tenant.
    pub scheme: WalScheme,
    /// Simulated clients per tenant (Redis tenants are single-threaded and
    /// always run one).
    pub clients_per_tenant: usize,
    /// Measured commits... operations dispatched per tenant.
    pub ops_per_tenant: u64,
    /// Base RNG seed; tenant `i` derives its own stream from it.
    pub seed: u64,
    /// Group-commit window.
    pub group_window: SimDuration,
    /// Group-commit batch cap.
    pub max_batch: usize,
    /// Log-region pages per tenant (regions are laid out contiguously from
    /// LBA 0: tenant `i` owns `[i * region_pages, (i+1) * region_pages)`).
    pub region_pages: u32,
    /// YCSB payload bytes for the key-value tenants.
    pub payload_bytes: usize,
    /// Working-set size (Linkbench nodes / YCSB records) per tenant.
    pub keys: u64,
}

impl TenantPoolConfig {
    /// The tenant-sweep preset: 4 clients per tenant, 10 µs group window,
    /// 16-record batches, 16-page log regions, 128 B YCSB payloads over a
    /// 200-key working set.
    pub fn standard(tenants: u16, mix: Vec<EngineKind>, scheme: WalScheme, seed: u64) -> Self {
        TenantPoolConfig {
            tenants,
            mix,
            scheme,
            clients_per_tenant: 4,
            ops_per_tenant: 400,
            seed,
            group_window: SimDuration::from_micros(10),
            max_batch: 16,
            region_pages: 16,
            payload_bytes: 128,
            keys: 200,
        }
    }
}

/// Per-tenant results of a pool run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantOutcome {
    /// Tenant index.
    pub tenant: u16,
    /// Engine this tenant ran.
    pub engine: EngineKind,
    /// Commits that reached a durability point.
    pub commits: u64,
    /// Median commit latency, µs.
    pub p50_us: f64,
    /// 99th-percentile commit latency, µs.
    pub p99_us: f64,
}

/// Aggregate results of a pool run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantReport {
    /// Tenant count.
    pub tenants: u16,
    /// Scheme label (`"ba"` or `"block"`).
    pub scheme: String,
    /// Total commits across tenants.
    pub commits: u64,
    /// Group-commit batches issued across tenants.
    pub batches: u64,
    /// Percentage of commits that shared a batch.
    pub grouped_pct: f64,
    /// Median commit latency across all tenants' commits, µs.
    pub p50_us: f64,
    /// 99th-percentile commit latency across all tenants' commits, µs.
    pub p99_us: f64,
    /// Worst single tenant's p99, µs.
    pub worst_tenant_p99_us: f64,
    /// Aggregate commit throughput over the measured span.
    pub commits_per_sec: f64,
    /// Per-tenant breakdown.
    pub per_tenant: Vec<TenantOutcome>,
}

/// A [`WalWriter`] that records payloads instead of logging them: the
/// engine's in-process log sink. The pool drains what the engine produced
/// after each operation and forwards it to the tenant's group committer,
/// which owns the real (shared-device) WAL.
#[derive(Debug, Clone)]
struct RecordingWal {
    sink: Rc<RefCell<Vec<Vec<u8>>>>,
    next_lsn: u64,
}

impl WalWriter for RecordingWal {
    fn append_commit(&mut self, now: SimTime, payload: &[u8]) -> Result<CommitOutcome, WalError> {
        self.sink.borrow_mut().push(payload.to_vec());
        let lsn = Lsn(self.next_lsn);
        self.next_lsn += 1;
        Ok(CommitOutcome {
            lsn,
            commit_at: now,
            durable_at: None,
        })
    }

    fn scheme(&self) -> String {
        "RECORDER".into()
    }

    fn stats(&self) -> WalStats {
        WalStats::default()
    }
}

/// The real per-tenant log behind the group committer.
pub(crate) enum TenantWal {
    Ba(TenantBaWal),
    Block(TenantBlockWal),
}

impl WalWriter for TenantWal {
    fn append_commit(&mut self, now: SimTime, payload: &[u8]) -> Result<CommitOutcome, WalError> {
        match self {
            TenantWal::Ba(w) => w.append_commit(now, payload),
            TenantWal::Block(w) => w.append_commit(now, payload),
        }
    }

    fn append_batch(
        &mut self,
        now: SimTime,
        payloads: &[Vec<u8>],
    ) -> Result<CommitOutcome, WalError> {
        match self {
            TenantWal::Ba(w) => w.append_batch(now, payloads),
            TenantWal::Block(w) => w.append_batch(now, payloads),
        }
    }

    fn scheme(&self) -> String {
        match self {
            TenantWal::Ba(w) => w.scheme(),
            TenantWal::Block(w) => w.scheme(),
        }
    }

    fn stats(&self) -> WalStats {
        match self {
            TenantWal::Ba(w) => w.stats(),
            TenantWal::Block(w) => w.stats(),
        }
    }
}

/// One tenant's engine plus its workload generator.
pub(crate) enum EngineRt {
    Pg(Box<MiniPg>, LinkbenchWorkload),
    Rocks(Box<MiniRocks>, YcsbWorkload),
    Redis(Box<MiniRedis>, YcsbWorkload),
}

impl EngineRt {
    /// Runs the tenant's load phase, returning its end time. Load-phase
    /// records populate in-memory state only (drained and dropped by the
    /// caller); the measured phase is what reaches the log.
    pub(crate) fn load(&mut self, rng: &mut SimRng) -> Result<SimTime, DbError> {
        let mut t = SimTime::ZERO;
        match self {
            EngineRt::Pg(db, wl) => {
                for txn in wl.load_phase(rng, 2) {
                    t = db.run_txn(t, &txn)?.commit_at;
                }
            }
            EngineRt::Rocks(db, wl) => {
                for (key, value) in wl.load_phase(rng) {
                    t = db.put(t, key, value)?.commit_at;
                }
            }
            EngineRt::Redis(db, wl) => {
                for (key, value) in wl.load_phase(rng) {
                    t = db.set(t, key, value)?.commit_at;
                }
            }
        }
        Ok(t)
    }

    /// Dispatches one workload operation at `at`, returning when the
    /// engine-side work (CPU + in-memory apply) is done. Log records it
    /// produced are waiting in the recorder.
    pub(crate) fn step(&mut self, at: SimTime, rng: &mut SimRng) -> Result<SimTime, DbError> {
        match self {
            EngineRt::Pg(db, wl) => {
                let txn = wl.next_txn(rng);
                Ok(db.run_txn(at, &txn)?.commit_at)
            }
            EngineRt::Rocks(db, wl) => Ok(match wl.next_op(rng) {
                YcsbOp::Read { key } => db.get(at, &key).0,
                YcsbOp::Update { key, value } => db.put(at, key, value)?.commit_at,
            }),
            EngineRt::Redis(db, wl) => Ok(match wl.next_op(rng) {
                YcsbOp::Read { key } => db.get(at, &key).0,
                YcsbOp::Update { key, value } => db.set(at, key, value)?.commit_at,
            }),
        }
    }
}

pub(crate) struct Tenant {
    pub(crate) engine_kind: EngineKind,
    pub(crate) engine: EngineRt,
    pub(crate) recorder: Rc<RefCell<Vec<Vec<u8>>>>,
    pub(crate) group: GroupCommit<TenantWal>,
    pub(crate) rng: SimRng,
    /// Per-client clocks; `None` while the client waits on a commit.
    pub(crate) clients: Vec<Option<SimTime>>,
    /// Ticket → client index, for the ticket each blocked client waits on.
    pub(crate) waiting: HashMap<u64, usize>,
    pub(crate) remaining: u64,
    pub(crate) latencies_ns: Vec<u64>,
    pub(crate) end: SimTime,
}

/// N engines over one shared device. See the module docs.
pub struct TenantPool {
    dev: Rc<RefCell<TwoBSsd>>,
    pub(crate) tenants: Vec<Tenant>,
    pub(crate) cfg: TenantPoolConfig,
}

impl TenantPool {
    /// Builds the pool on `dev`: constructs the shared calendar (and, for
    /// the BA scheme, the [`PinTable`] with equal tenant shares), then one
    /// engine + WAL + group committer per tenant.
    ///
    /// # Errors
    ///
    /// Configuration errors (zero tenants, regions that do not fit the
    /// device, shares too small for a window) surface as [`DbError::Wal`].
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero (propagated from [`GroupCommit`]).
    pub fn new(dev: TwoBSsd, cfg: TenantPoolConfig) -> Result<Self, DbError> {
        if cfg.tenants == 0 || cfg.mix.is_empty() || cfg.clients_per_tenant == 0 {
            return Err(DbError::Wal(WalError::BadConfig(
                "need at least one tenant, engine, and client".into(),
            )));
        }
        let pins = if cfg.scheme.is_byte_path() {
            Some(Rc::new(RefCell::new(
                PinTable::new(dev.spec(), cfg.tenants).map_err(WalError::from)?,
            )))
        } else {
            None
        };
        let dev = Rc::new(RefCell::new(dev));
        let cal = Rc::new(RefCell::new(IoCalendar::new()));
        let mut tenants = Vec::with_capacity(usize::from(cfg.tenants));
        for i in 0..cfg.tenants {
            let wal_cfg = WalConfig {
                region_base_lba: u64::from(i) * u64::from(cfg.region_pages),
                region_pages: cfg.region_pages,
                ..WalConfig::default()
            };
            let wal = match &pins {
                Some(pins) => {
                    // Largest power-of-two window ≤ min(share, 4 pages), so
                    // it always divides a power-of-two region.
                    let share = pins.borrow().share_pages().min(4);
                    let window = if share >= 4 {
                        4
                    } else if share >= 2 {
                        2
                    } else {
                        1
                    };
                    TenantWal::Ba(TenantBaWal::with_front_end(
                        dev.clone(),
                        cal.clone(),
                        pins.clone(),
                        TenantId(i),
                        wal_cfg,
                        window,
                        cfg.scheme.front_end(),
                    )?)
                }
                None => TenantWal::Block(TenantBlockWal::new(
                    dev.clone(),
                    cal.clone(),
                    TenantId(i),
                    wal_cfg,
                )?),
            };
            let engine_kind = cfg.mix[usize::from(i) % cfg.mix.len()];
            let recorder = Rc::new(RefCell::new(Vec::new()));
            let sink = Box::new(RecordingWal {
                sink: recorder.clone(),
                next_lsn: 0,
            });
            let engine = match engine_kind {
                EngineKind::Pg => EngineRt::Pg(
                    Box::new(MiniPg::new(sink, EngineCosts::postgres())),
                    LinkbenchWorkload::new(LinkbenchConfig::standard(cfg.keys)),
                ),
                EngineKind::Rocks => EngineRt::Rocks(
                    Box::new(MiniRocks::new(sink, EngineCosts::rocksdb())),
                    YcsbWorkload::new(YcsbConfig::workload_a(cfg.keys, cfg.payload_bytes)),
                ),
                EngineKind::Redis => EngineRt::Redis(
                    Box::new(MiniRedis::new(sink, EngineCosts::redis())),
                    YcsbWorkload::new(YcsbConfig::workload_a(cfg.keys, cfg.payload_bytes)),
                ),
            };
            let clients = if matches!(engine_kind, EngineKind::Redis) {
                1 // Redis is single-threaded.
            } else {
                cfg.clients_per_tenant
            };
            tenants.push(Tenant {
                engine_kind,
                engine,
                recorder,
                group: GroupCommit::new(wal, cfg.group_window, cfg.max_batch),
                rng: crate::gen::tenant_rng(cfg.seed, i),
                clients: vec![Some(SimTime::ZERO); clients],
                waiting: HashMap::new(),
                remaining: cfg.ops_per_tenant,
                latencies_ns: Vec::new(),
                end: SimTime::ZERO,
            });
        }
        Ok(TenantPool { dev, tenants, cfg })
    }

    /// The shared device (e.g. to inspect stats after a run).
    pub fn device(&self) -> Rc<RefCell<TwoBSsd>> {
        self.dev.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::ServiceDriver;
    use twob_core::TwoBSpec;
    use twob_ssd::SsdConfig;

    fn device(tenants: u16) -> TwoBSsd {
        let spec = TwoBSpec {
            ba_buffer_bytes: 256 << 10, // 64 pages
            max_entries: usize::from(tenants).max(8),
            ..TwoBSpec::default()
        };
        TwoBSsd::new(SsdConfig::base_2b().bench_scale(), spec)
    }

    fn quick_cfg(tenants: u16, scheme: WalScheme) -> TenantPoolConfig {
        TenantPoolConfig {
            ops_per_tenant: 60,
            keys: 50,
            ..TenantPoolConfig::standard(
                tenants,
                vec![EngineKind::Pg, EngineKind::Rocks, EngineKind::Redis],
                scheme,
                7,
            )
        }
    }

    #[test]
    fn mixed_tenants_share_one_device() {
        let mut pool = TenantPool::new(device(4), quick_cfg(4, WalScheme::Ba)).unwrap();
        let report = ServiceDriver::run_sessions(&mut pool).unwrap();
        assert_eq!(report.tenants, 4);
        assert_eq!(report.per_tenant.len(), 4);
        // The mix assigns engines round-robin.
        assert_eq!(report.per_tenant[0].engine, EngineKind::Pg);
        assert_eq!(report.per_tenant[1].engine, EngineKind::Rocks);
        assert_eq!(report.per_tenant[2].engine, EngineKind::Redis);
        assert_eq!(report.per_tenant[3].engine, EngineKind::Pg);
        // Every tenant committed, and latencies are sane.
        for t in &report.per_tenant {
            assert!(t.commits > 0, "{t:?}");
            assert!(t.p99_us >= t.p50_us, "{t:?}");
            assert!(t.p50_us > 0.0, "{t:?}");
        }
        // All four tenants' windows live on the device at once.
        assert_eq!(pool.device().borrow().entries().len(), 4);
    }

    #[test]
    fn pool_runs_are_deterministic() {
        let run = || {
            let mut pool = TenantPool::new(device(4), quick_cfg(4, WalScheme::Ba)).unwrap();
            ServiceDriver::run_sessions(&mut pool).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn ba_scheme_commits_faster_than_block_on_the_same_chassis() {
        let mut ba_pool = TenantPool::new(device(4), quick_cfg(4, WalScheme::Ba)).unwrap();
        let ba = ServiceDriver::run_sessions(&mut ba_pool).unwrap();
        let mut block_pool = TenantPool::new(device(4), quick_cfg(4, WalScheme::Block)).unwrap();
        let block = ServiceDriver::run_sessions(&mut block_pool).unwrap();
        assert!(
            ba.p99_us < block.p99_us,
            "ba p99 {} should beat block p99 {}",
            ba.p99_us,
            block.p99_us
        );
    }

    #[test]
    fn cxl_scheme_runs_the_pool_through_persist_barriers() {
        let mut pool = TenantPool::new(device(4), quick_cfg(4, WalScheme::Cxl)).unwrap();
        let report = ServiceDriver::run_sessions(&mut pool).unwrap();
        assert_eq!(report.scheme, "cxl");
        assert!(report.commits > 0);
        let stats = pool.device().borrow().stats();
        assert!(stats.cxl_persists > 0, "commits must ride persist barriers");
        assert_eq!(stats.syncs, 0, "no BA_SYNC should fire under CXL");
        assert_eq!(stats.mmio_stores, 0, "stores must ride the CXL path");
        // The block comparator on the same chassis is still slower.
        let mut block_pool = TenantPool::new(device(4), quick_cfg(4, WalScheme::Block)).unwrap();
        let block = ServiceDriver::run_sessions(&mut block_pool).unwrap();
        assert!(
            report.p99_us < block.p99_us,
            "cxl p99 {} should beat block p99 {}",
            report.p99_us,
            block.p99_us
        );
    }

    #[test]
    fn mix_parsing_round_trips_and_rejects_junk() {
        for kind in [EngineKind::Pg, EngineKind::Rocks, EngineKind::Redis] {
            assert_eq!(EngineKind::parse(kind.label()).unwrap(), kind);
        }
        assert!(EngineKind::parse("mysql").is_err());
        assert_eq!(
            EngineKind::parse_mix("pg,rocks,redis").unwrap(),
            vec![EngineKind::Pg, EngineKind::Rocks, EngineKind::Redis]
        );
        assert_eq!(
            EngineKind::parse_mix(" redis , pg ").unwrap(),
            vec![EngineKind::Redis, EngineKind::Pg]
        );
        assert!(EngineKind::parse_mix("pg,mysql").is_err());
        assert!(EngineKind::parse_mix("").is_err());
    }

    #[test]
    fn bad_configs_error_cleanly() {
        let cfg = TenantPoolConfig {
            tenants: 0,
            ..quick_cfg(1, WalScheme::Ba)
        };
        assert!(TenantPool::new(device(1), cfg).is_err());
    }
}
