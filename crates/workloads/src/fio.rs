//! Request-size ladders for the FIO-like microbenchmarks (Figs 7–8).

/// Request sizes of the latency sweep (paper Fig 7): 8 B to 4 KiB.
pub fn latency_request_sizes() -> Vec<u64> {
    vec![8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096]
}

/// Request sizes of the bandwidth sweep (paper Fig 8): 4 KiB to 16 MiB.
pub fn bandwidth_request_sizes() -> Vec<u64> {
    vec![
        4 << 10,
        16 << 10,
        64 << 10,
        256 << 10,
        1 << 20,
        4 << 20,
        16 << 20,
    ]
}

/// Rounds a byte count up to whole 4 KiB pages (block I/O granularity).
pub fn pages_for(bytes: u64) -> u32 {
    bytes.div_ceil(4096).max(1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladders_cover_paper_ranges() {
        let lat = latency_request_sizes();
        assert_eq!(*lat.first().unwrap(), 8);
        assert_eq!(*lat.last().unwrap(), 4096);
        let bw = bandwidth_request_sizes();
        assert_eq!(*bw.first().unwrap(), 4096);
        assert_eq!(*bw.last().unwrap(), 16 << 20);
    }

    #[test]
    fn ladders_are_strictly_increasing() {
        for ladder in [latency_request_sizes(), bandwidth_request_sizes()] {
            assert!(ladder.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn pages_round_up() {
        assert_eq!(pages_for(1), 1);
        assert_eq!(pages_for(4096), 1);
        assert_eq!(pages_for(4097), 2);
        assert_eq!(pages_for(16 << 20), 4096);
    }
}
