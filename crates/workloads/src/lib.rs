//! Workload generators for the 2B-SSD evaluation (paper §V).
//!
//! - [`LinkbenchWorkload`] — a social-graph transaction mix patterned on
//!   Facebook's Linkbench, which the paper runs against PostgreSQL:
//!   read-intensive with about 30 % writes, dominated by link-list reads.
//! - [`YcsbWorkload`] — the Yahoo! Cloud Serving Benchmark with Zipfian
//!   key popularity; Workload A (50 % reads / 50 % updates) is what the
//!   paper runs against RocksDB and Redis, sweeping the payload size.
//! - [`fio`] — the request-size ladders of the FIO-like microbenchmarks
//!   behind Figs 7 and 8.
//! - [`mod@trace`] — a block-trace parser and replayer for driving devices
//!   with preprocessed FIU/MSR-style traces.
//! - [`ChurnWorkload`] — seeded overwrite churn (uniform or 80/20 skewed)
//!   that drains the free-block pool and keeps GC busy; the stimulus for
//!   the `gc_interference` study.
//! - [`ClientPool`] — a multi-client virtual-time executor: each simulated
//!   client carries its own clock, the pool always dispatches the
//!   farthest-behind client, and shared device queues emerge naturally in
//!   the engine's busy-until resources.
//! - [`mod@arrival`] — the open-loop arrival layer: seeded Poisson, bursty
//!   (MMPP-style on/off), and diurnal-trace processes offering load that
//!   does not self-throttle to the device.
//! - [`ServiceDriver`] — the one event-loop owner of the serving stack:
//!   open-loop serving with admission control and SLO tracking
//!   ([`ServiceDriver::serve`], [`ServiceDriver::serve_sharded`]), plus the
//!   closed-loop modes the old per-driver loops became
//!   ([`ServiceDriver::run_slots`], [`ServiceDriver::run_sessions`],
//!   [`ServiceDriver::run_nvme`]).
//! - [`TenantPool`] — the multi-tenant generalization of the paper's §V
//!   co-location: N engines (a pg/rocks/redis mix), each with its own
//!   group committer and log window, contending on one shared 2B-SSD;
//!   state only, driven by [`ServiceDriver::run_sessions`].
//!
//! # Example
//!
//! ```rust
//! use twob_sim::SimRng;
//! use twob_workloads::{YcsbConfig, YcsbOp, YcsbWorkload};
//!
//! let mut rng = SimRng::seed_from(1);
//! let mut ycsb = YcsbWorkload::new(YcsbConfig::workload_a(1_000, 256));
//! match ycsb.next_op(&mut rng) {
//!     YcsbOp::Read { key } => assert!(key.starts_with(b"user")),
//!     YcsbOp::Update { key, value } => {
//!         assert!(key.starts_with(b"user"));
//!         assert_eq!(value.len(), 256);
//!     }
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;
mod churn;
mod executor;
pub mod fio;
pub mod gen;
mod linkbench;
mod serve;
mod tenant;
pub mod trace;
mod ycsb;

pub use arrival::{ArrivalConfig, ArrivalKind, ArrivalProcess};
pub use churn::{ChurnConfig, ChurnWorkload};
pub use executor::ClientPool;
pub use linkbench::{LinkbenchConfig, LinkbenchWorkload};
pub use serve::{
    AdmissionPlan, AdmittedOp, ClosedLoopReport, ServeConfig, ServeReport, ServiceDriver,
    ShardDrive,
};
pub use tenant::{
    EngineKind, TenantOutcome, TenantPool, TenantPoolConfig, TenantReport, WalScheme,
};
pub use trace::{parse_trace, replay_trace, TraceOp, TraceParseError, TraceReplayReport};
pub use ycsb::{YcsbConfig, YcsbOp, YcsbWorkload};
