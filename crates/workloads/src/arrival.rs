//! Arrival layer of the serving stack: open-loop traffic generators.
//!
//! A closed-loop pool can never exhibit the open-loop hockey-stick — its
//! offered load self-throttles to the device's completion rate. The
//! serving stack therefore generates traffic from **arrival processes**:
//! seeded, deterministic streams of arrival instants that do not care
//! whether the device has kept up. Three shapes cover the paper-relevant
//! space:
//!
//! - [`PoissonArrivals`] — memoryless arrivals at a constant rate, the
//!   M/G/1 baseline.
//! - [`BurstyArrivals`] — an MMPP-style on/off modulated Poisson process:
//!   exponential dwell times alternate a high-rate burst state with a
//!   low-rate quiet state (same long-run average rate), stressing the
//!   BA buffer with arrival clumps.
//! - [`DiurnalArrivals`] — a piecewise-constant rate following a repeating
//!   "compressed day" multiplier trace, the classic serving-traffic shape.
//!
//! [`ClosedLoopArrivals`] is the degenerate member of the family: its next
//! op "arrives" the instant the driver polls it — i.e. when a slot frees —
//! which is exactly the closed-loop drivers this stack replaced. Every
//! process is a pure function of `(config, seed)`, so equal seeds give
//! byte-identical arrival streams on any backend.

use twob_sim::{SimRng, SimTime};

use crate::gen;

/// Which arrival process a serving run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalKind {
    /// Constant-rate memoryless arrivals.
    Poisson,
    /// MMPP-style on/off bursts around the same average rate.
    Bursty,
    /// Rate modulated by a repeating diurnal multiplier trace.
    Diurnal,
}

impl ArrivalKind {
    /// All kinds, in sweep order.
    pub const ALL: [ArrivalKind; 3] = [
        ArrivalKind::Poisson,
        ArrivalKind::Bursty,
        ArrivalKind::Diurnal,
    ];

    /// Stable lowercase label (CLI/report vocabulary).
    pub fn label(self) -> &'static str {
        match self {
            ArrivalKind::Poisson => "poisson",
            ArrivalKind::Bursty => "burst",
            ArrivalKind::Diurnal => "diurnal",
        }
    }

    /// Parses a CLI label (`poisson`, `burst`, `diurnal`).
    pub fn parse(s: &str) -> Option<ArrivalKind> {
        match s {
            "poisson" => Some(ArrivalKind::Poisson),
            "burst" | "bursty" => Some(ArrivalKind::Bursty),
            "diurnal" => Some(ArrivalKind::Diurnal),
            _ => None,
        }
    }
}

/// A deterministic open-loop arrival stream for one tenant.
pub trait ArrivalProcess {
    /// The next arrival instant strictly after `now` (except the
    /// closed-loop degenerate, which arrives *at* `now`).
    fn next_after(&mut self, now: SimTime) -> SimTime;
}

/// One exponential inter-arrival gap with mean `mean_ns`, at least 1 ns so
/// streams always make progress.
fn exp_gap(rng: &mut SimRng, mean_ns: f64) -> u64 {
    let u = rng.next_f64();
    ((-(1.0 - u).ln()) * mean_ns).max(1.0) as u64
}

/// Memoryless arrivals at a constant rate.
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    rng: SimRng,
    mean_gap_ns: f64,
}

impl PoissonArrivals {
    /// A stream offering `ops_per_sec` on average.
    ///
    /// # Panics
    ///
    /// Panics unless `ops_per_sec` is positive and finite.
    pub fn new(ops_per_sec: f64, seed: u64) -> Self {
        assert!(
            ops_per_sec > 0.0 && ops_per_sec.is_finite(),
            "arrival rate must be positive"
        );
        PoissonArrivals {
            rng: SimRng::seed_from(seed),
            mean_gap_ns: 1e9 / ops_per_sec,
        }
    }
}

impl ArrivalProcess for PoissonArrivals {
    fn next_after(&mut self, now: SimTime) -> SimTime {
        now + twob_sim::SimDuration::from_nanos(exp_gap(&mut self.rng, self.mean_gap_ns))
    }
}

/// Ratio of burst-state rate to the average rate (quiet state mirrors it,
/// so the long-run average stays the configured rate with equal dwells).
const BURST_RATE_FACTOR: f64 = 1.8;

/// MMPP-style on/off modulated Poisson arrivals.
///
/// Two states with exponential dwell times (equal means) alternate: the
/// *burst* state arrives at `1.8×` the average rate, the *quiet* state at
/// `0.2×`. Long-run offered load matches [`PoissonArrivals`] at the same
/// rate; short-run clumping is what exercises admission control.
#[derive(Debug, Clone)]
pub struct BurstyArrivals {
    rng: SimRng,
    burst_gap_ns: f64,
    quiet_gap_ns: f64,
    mean_dwell_ns: f64,
    bursting: bool,
    state_until: SimTime,
}

impl BurstyArrivals {
    /// A stream offering `ops_per_sec` on average, switching state every
    /// `mean_dwell` on average.
    ///
    /// # Panics
    ///
    /// Panics unless `ops_per_sec` is positive and finite and the dwell is
    /// non-zero.
    pub fn new(ops_per_sec: f64, mean_dwell: twob_sim::SimDuration, seed: u64) -> Self {
        assert!(
            ops_per_sec > 0.0 && ops_per_sec.is_finite(),
            "arrival rate must be positive"
        );
        assert!(
            mean_dwell > twob_sim::SimDuration::ZERO,
            "dwell must be non-zero"
        );
        BurstyArrivals {
            rng: SimRng::seed_from(seed),
            burst_gap_ns: 1e9 / (ops_per_sec * BURST_RATE_FACTOR),
            quiet_gap_ns: 1e9 / (ops_per_sec * (2.0 - BURST_RATE_FACTOR)),
            mean_dwell_ns: mean_dwell.as_nanos() as f64,
            bursting: false,
            state_until: SimTime::ZERO,
        }
    }
}

impl ArrivalProcess for BurstyArrivals {
    fn next_after(&mut self, now: SimTime) -> SimTime {
        let mut t = now;
        loop {
            if t >= self.state_until {
                self.bursting = !self.bursting;
                self.state_until = t + twob_sim::SimDuration::from_nanos(exp_gap(
                    &mut self.rng,
                    self.mean_dwell_ns,
                ));
            }
            let mean = if self.bursting {
                self.burst_gap_ns
            } else {
                self.quiet_gap_ns
            };
            let cand = t + twob_sim::SimDuration::from_nanos(exp_gap(&mut self.rng, mean));
            if cand <= self.state_until {
                return cand;
            }
            // No arrival before the state flips; resume from the boundary
            // (valid because the modulated process is memoryless within a
            // state).
            t = self.state_until;
        }
    }
}

/// The compressed-day rate multipliers: a trough, a morning ramp, a midday
/// plateau, an evening peak, and a wind-down. Mean ≈ 1.0 so the configured
/// rate is the diurnal average.
pub const DIURNAL_PATTERN: [f64; 12] = [0.3, 0.2, 0.2, 0.5, 0.9, 1.2, 1.3, 1.2, 1.5, 1.8, 1.4, 0.5];

/// Arrivals whose rate follows a repeating diurnal multiplier trace.
///
/// The rate is piecewise constant: slot `i` of [`DIURNAL_PATTERN`] scales
/// the base rate for one `phase` duration, repeating forever. Within a
/// slot arrivals are Poisson, and slot boundaries are handled by the
/// memoryless restart, so the stream is a pure function of the seed.
#[derive(Debug, Clone)]
pub struct DiurnalArrivals {
    rng: SimRng,
    base_gap_ns: f64,
    phase_ns: u64,
}

impl DiurnalArrivals {
    /// A stream averaging roughly `ops_per_sec`, one diurnal slot lasting
    /// `phase` (a full "day" is `12 × phase`).
    ///
    /// # Panics
    ///
    /// Panics unless `ops_per_sec` is positive and finite and `phase` is
    /// non-zero.
    pub fn new(ops_per_sec: f64, phase: twob_sim::SimDuration, seed: u64) -> Self {
        assert!(
            ops_per_sec > 0.0 && ops_per_sec.is_finite(),
            "arrival rate must be positive"
        );
        assert!(
            phase > twob_sim::SimDuration::ZERO,
            "diurnal phase must be non-zero"
        );
        DiurnalArrivals {
            rng: SimRng::seed_from(seed),
            base_gap_ns: 1e9 / ops_per_sec,
            phase_ns: phase.as_nanos(),
        }
    }

    fn slot(&self, t: SimTime) -> usize {
        ((t.as_nanos() / self.phase_ns) as usize) % DIURNAL_PATTERN.len()
    }
}

impl ArrivalProcess for DiurnalArrivals {
    fn next_after(&mut self, now: SimTime) -> SimTime {
        let mut t = now;
        loop {
            let slot = self.slot(t);
            let mean = self.base_gap_ns / DIURNAL_PATTERN[slot];
            let cand = t + twob_sim::SimDuration::from_nanos(exp_gap(&mut self.rng, mean));
            let slot_end = SimTime::from_nanos((t.as_nanos() / self.phase_ns + 1) * self.phase_ns);
            if cand < slot_end {
                return cand;
            }
            t = slot_end;
        }
    }
}

/// The degenerate closed-loop "arrival process": the next op arrives the
/// instant the driver polls — i.e. the moment a slot frees. Feeding this
/// to an open-loop driver reproduces a closed-loop pool, which is how the
/// legacy drivers are one point in this family rather than separate code.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClosedLoopArrivals;

impl ArrivalProcess for ClosedLoopArrivals {
    fn next_after(&mut self, now: SimTime) -> SimTime {
        now
    }
}

/// Per-tenant arrival configuration for a serving run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalConfig {
    /// Process shape.
    pub kind: ArrivalKind,
    /// Offered load per tenant, ops/sec (long-run average for every kind).
    pub ops_per_sec: f64,
    /// Base seed; tenants are decorrelated via [`gen::tenant_seed`].
    pub seed: u64,
    /// Burst/diurnal state-dwell / phase length.
    pub phase: twob_sim::SimDuration,
}

impl ArrivalConfig {
    /// A config with the default 200 µs phase length.
    pub fn new(kind: ArrivalKind, ops_per_sec: f64, seed: u64) -> Self {
        ArrivalConfig {
            kind,
            ops_per_sec,
            seed,
            phase: twob_sim::SimDuration::from_micros(200),
        }
    }

    /// Builds the seeded process for `tenant`.
    pub fn build(&self, tenant: u16) -> Box<dyn ArrivalProcess> {
        let seed = gen::tenant_seed(self.seed, tenant);
        match self.kind {
            ArrivalKind::Poisson => Box::new(PoissonArrivals::new(self.ops_per_sec, seed)),
            ArrivalKind::Bursty => {
                Box::new(BurstyArrivals::new(self.ops_per_sec, self.phase, seed))
            }
            ArrivalKind::Diurnal => {
                Box::new(DiurnalArrivals::new(self.ops_per_sec, self.phase, seed))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twob_sim::SimDuration;

    fn stream(p: &mut dyn ArrivalProcess, n: usize) -> Vec<SimTime> {
        let mut t = SimTime::ZERO;
        (0..n)
            .map(|_| {
                t = p.next_after(t);
                t
            })
            .collect()
    }

    #[test]
    fn kinds_parse_and_label_round_trip() {
        for kind in ArrivalKind::ALL {
            assert_eq!(ArrivalKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(ArrivalKind::parse("bursty"), Some(ArrivalKind::Bursty));
        assert_eq!(ArrivalKind::parse("nope"), None);
    }

    #[test]
    fn same_seed_same_stream_every_kind() {
        for kind in ArrivalKind::ALL {
            let cfg = ArrivalConfig::new(kind, 50_000.0, 11);
            let a = stream(&mut *cfg.build(3), 500);
            let b = stream(&mut *cfg.build(3), 500);
            assert_eq!(a, b, "{} stream not reproducible", kind.label());
            let c = stream(&mut *cfg.build(4), 500);
            assert_ne!(a, c, "{} tenants not decorrelated", kind.label());
        }
    }

    #[test]
    fn arrivals_strictly_advance() {
        for kind in ArrivalKind::ALL {
            let times = stream(&mut *ArrivalConfig::new(kind, 100_000.0, 5).build(0), 2_000);
            for w in times.windows(2) {
                assert!(w[0] < w[1], "{}: non-advancing arrival", kind.label());
            }
        }
    }

    #[test]
    fn long_run_rate_matches_configured_average() {
        for kind in ArrivalKind::ALL {
            let rate = 100_000.0;
            let times = stream(&mut *ArrivalConfig::new(kind, rate, 9).build(1), 20_000);
            let span = times.last().unwrap().as_nanos() as f64 / 1e9;
            let observed = times.len() as f64 / span;
            assert!(
                (observed / rate - 1.0).abs() < 0.15,
                "{}: observed {observed:.0} ops/s vs configured {rate:.0}",
                kind.label()
            );
        }
    }

    #[test]
    fn bursty_clumps_more_than_poisson() {
        let cv = |kind: ArrivalKind| {
            let times = stream(
                &mut *ArrivalConfig::new(kind, 100_000.0, 21).build(2),
                20_000,
            );
            let gaps: Vec<f64> = times
                .windows(2)
                .map(|w| w[1].saturating_since(w[0]).as_nanos() as f64)
                .collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
            var.sqrt() / mean
        };
        let poisson = cv(ArrivalKind::Poisson);
        let bursty = cv(ArrivalKind::Bursty);
        // Exponential gaps have CV ≈ 1; on/off modulation inflates it.
        assert!((poisson - 1.0).abs() < 0.1, "poisson CV {poisson}");
        assert!(bursty > poisson + 0.1, "bursty CV {bursty} vs {poisson}");
    }

    #[test]
    fn diurnal_peak_slots_run_hotter_than_trough_slots() {
        let phase = SimDuration::from_micros(200);
        let mut p = DiurnalArrivals::new(100_000.0, phase, 33);
        let times = stream(&mut p, 30_000);
        let day_ns = phase.as_nanos() * DIURNAL_PATTERN.len() as u64;
        let mut per_slot = [0u64; 12];
        for t in &times {
            per_slot[((t.as_nanos() % day_ns) / phase.as_nanos()) as usize] += 1;
        }
        // Slot 9 (multiplier 1.8) vs slot 1 (0.2): expect a wide margin.
        assert!(
            per_slot[9] > per_slot[1] * 3,
            "peak {} vs trough {}",
            per_slot[9],
            per_slot[1]
        );
    }

    #[test]
    fn closed_loop_is_the_degenerate_process() {
        let mut c = ClosedLoopArrivals;
        let t = SimTime::from_nanos(1234);
        assert_eq!(c.next_after(t), t);
    }
}
