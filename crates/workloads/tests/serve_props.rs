//! Property-based tests of the open-loop serving stack: determinism,
//! drive equivalence on the sharded device model, and the overload
//! contract of admission control.

use proptest::prelude::*;
use twob_workloads::{
    ArrivalConfig, ArrivalKind, ServeConfig, ServiceDriver, ShardDrive, WalScheme,
};

/// A serving configuration drawn from the property space: any arrival
/// process, either commit scheme, a light-to-busy offered rate, and a
/// short horizon so debug-build cases stay cheap.
fn any_kind() -> impl Strategy<Value = ArrivalKind> {
    prop_oneof![
        Just(ArrivalKind::Poisson),
        Just(ArrivalKind::Bursty),
        Just(ArrivalKind::Diurnal),
    ]
}

fn any_config() -> impl Strategy<Value = ServeConfig> {
    (
        any_kind(),
        prop_oneof![Just(WalScheme::Ba), Just(WalScheme::Block)],
        2u16..12,
        5_000u64..60_000,
        any::<u64>(),
    )
        .prop_map(|(kind, scheme, tenants, rate, seed)| {
            let mut cfg =
                ServeConfig::standard(tenants, scheme, ArrivalConfig::new(kind, rate as f64, seed));
            cfg.horizon = twob_sim::SimDuration::from_micros(2_000);
            cfg
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Two runs of the same configuration produce the identical report —
    /// every field, including the completion digest — under every arrival
    /// process and both schemes.
    #[test]
    fn serve_runs_twice_identically(cfg in any_config()) {
        let a = ServiceDriver::serve(&cfg);
        let b = ServiceDriver::serve(&cfg);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.clamped_posts, 0);
    }

    /// On the sharded device model the lock-step, adaptive, and parallel
    /// drives are interchangeable: one completion digest (and one report)
    /// regardless of how the shards were scheduled, under every arrival
    /// process.
    #[test]
    fn sharded_drives_are_digest_equal(
        kind in any_kind(),
        groups in prop_oneof![Just(2usize), Just(4)],
        per_group in 2u16..6,
        rate in 10_000u64..50_000,
        seed in any::<u64>(),
    ) {
        let tenants = groups as u16 * per_group;
        let mut cfg = ServeConfig::standard(
            tenants,
            WalScheme::Ba,
            ArrivalConfig::new(kind, rate as f64, seed),
        );
        cfg.horizon = twob_sim::SimDuration::from_micros(2_000);
        let lockstep = ServiceDriver::serve_sharded(&cfg, groups, ShardDrive::Lockstep);
        let adaptive = ServiceDriver::serve_sharded(&cfg, groups, ShardDrive::Adaptive);
        let parallel = ServiceDriver::serve_sharded(&cfg, groups, ShardDrive::Parallel(2));
        prop_assert_eq!(&adaptive, &lockstep);
        prop_assert_eq!(&parallel, &lockstep);
        prop_assert_eq!(lockstep.clamped_posts, 0);
    }

    /// The overload contract: past the admission cap, shedding kicks in
    /// and grows with offered load, while what *was* admitted keeps a
    /// bounded tail — the deferral cap plus the device's own service
    /// time — and nothing is ever posted into the past.
    #[test]
    fn overload_sheds_and_bounds_the_admitted_tail(
        kind in any_kind(),
        tenants in 2u16..8,
        rate in 150_000u64..300_000,
        seed in any::<u64>(),
    ) {
        let config = |r: u64| {
            let mut cfg = ServeConfig::standard(
                tenants,
                WalScheme::Ba,
                ArrivalConfig::new(kind, r as f64, seed),
            );
            cfg.horizon = twob_sim::SimDuration::from_micros(2_000);
            cfg
        };
        let cfg = config(rate);
        let report = ServiceDriver::serve(&cfg);
        prop_assert_eq!(report.clamped_posts, 0);
        prop_assert!(
            report.shed_queue + report.shed_buffer > 0,
            "offered {} ops/s/tenant should overload the admission cap",
            rate
        );
        // Admitted commits wait at most the deferral cap before submit,
        // then clear a device that admission keeps under its sustainable
        // rate: the tail stays within the cap plus a service allowance.
        let cap_us = cfg.window.as_nanos() as f64 / 1e3 * (cfg.defer_windows + 1) as f64;
        prop_assert!(
            report.p99_us <= cap_us + 100.0,
            "admitted p99 {} us escaped the deferral cap {} us",
            report.p99_us,
            cap_us
        );
        // More offered load can only shed more.
        let heavier = ServiceDriver::serve(&config(rate * 2));
        prop_assert!(
            heavier.shed_queue + heavier.shed_buffer >= report.shed_queue + report.shed_buffer,
            "doubling offered load reduced shedding: {} -> {}",
            report.shed_queue + report.shed_buffer,
            heavier.shed_queue + heavier.shed_buffer
        );
    }
}
