//! Property-based tests of the workload generators and executor.

use proptest::prelude::*;
use twob_sim::{SimDuration, SimRng, SimTime};
use twob_workloads::{
    parse_trace, ClientPool, LinkbenchConfig, LinkbenchWorkload, TraceOp, YcsbConfig, YcsbWorkload,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The client pool conserves operations and its makespan is bounded by
    /// the serial sum and below by the perfect-parallel bound.
    #[test]
    fn client_pool_bounds(
        services in prop::collection::vec(1u64..10_000, 1..100),
        clients in 1usize..16
    ) {
        let mut pool = ClientPool::new(clients);
        for &s in &services {
            let (c, at) = pool.next_client();
            pool.complete(c, at + SimDuration::from_nanos(s));
        }
        let total: u64 = services.iter().sum();
        let makespan = pool.makespan().saturating_since(SimTime::ZERO).as_nanos();
        prop_assert!(makespan <= total, "makespan beyond serial time");
        prop_assert!(
            makespan >= total / clients as u64,
            "makespan beats perfect parallelism"
        );
        prop_assert_eq!(pool.ops(), services.len() as u64);
    }

    /// YCSB read fractions are honored for arbitrary mixes.
    #[test]
    fn ycsb_mix_matches_fraction(read_fraction in 0.0f64..=1.0, seed in any::<u64>()) {
        let mut wl = YcsbWorkload::new(YcsbConfig {
            records: 100,
            payload_bytes: 16,
            read_fraction,
            theta: 0.99,
        });
        let mut rng = SimRng::seed_from(seed);
        let n = 2_000;
        let updates = (0..n).filter(|_| wl.next_op(&mut rng).is_update()).count();
        let measured = 1.0 - updates as f64 / n as f64;
        prop_assert!(
            (measured - read_fraction).abs() < 0.06,
            "measured read fraction {measured} vs configured {read_fraction}"
        );
    }

    /// Linkbench transactions always reference nodes the generator could
    /// know about (seeded range or freshly minted IDs).
    #[test]
    fn linkbench_ids_are_plausible(nodes in 2u64..500, seed in any::<u64>()) {
        let mut wl = LinkbenchWorkload::new(LinkbenchConfig::standard(nodes));
        let mut rng = SimRng::seed_from(seed);
        let mut minted = nodes;
        for _ in 0..200 {
            for op in wl.next_txn(&mut rng) {
                use twob_db::PgOp;
                let ids: Vec<u64> = match &op {
                    PgOp::InsertNode { id, .. } => {
                        // Fresh IDs are handed out sequentially.
                        prop_assert_eq!(*id, minted);
                        minted += 1;
                        vec![]
                    }
                    PgOp::UpdateNode { id, .. }
                    | PgOp::DeleteNode { id }
                    | PgOp::GetNode { id }
                    | PgOp::GetLinkList { id }
                    | PgOp::CountLinks { id } => vec![*id],
                    PgOp::AddLink { from, to, .. } => vec![*from, *to],
                    PgOp::DeleteLink { from, to } => vec![*from, *to],
                };
                for id in ids {
                    prop_assert!(id < nodes, "id {id} outside the seeded range");
                }
            }
        }
    }

    /// The trace parser is total: arbitrary text never panics, and every
    /// accepted line round-trips through the documented format.
    #[test]
    fn trace_parser_is_total(lines in prop::collection::vec(".*", 0..20)) {
        let text = lines.join("\n");
        let _ = parse_trace(&text); // must not panic
    }

    /// Well-formed traces parse to exactly their ops.
    #[test]
    fn trace_roundtrip(
        ops in prop::collection::vec((0u8..4, 0u64..1000, 1u32..8), 0..40)
    ) {
        let mut text = String::new();
        let mut expected = Vec::new();
        for (kind, lba, pages) in ops {
            match kind {
                0 => {
                    text.push_str(&format!("W {lba} {pages}\n"));
                    expected.push(TraceOp::Write { lba, pages });
                }
                1 => {
                    text.push_str(&format!("R {lba} {pages}\n"));
                    expected.push(TraceOp::Read { lba, pages });
                }
                2 => {
                    text.push_str(&format!("T {lba} {pages}\n"));
                    expected.push(TraceOp::Trim { lba, pages });
                }
                _ => {
                    text.push_str("F\n");
                    expected.push(TraceOp::Flush);
                }
            }
        }
        prop_assert_eq!(parse_trace(&text).unwrap(), expected);
    }
}
