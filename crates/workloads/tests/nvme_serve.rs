//! The NVMe closed-loop drive, re-expressed on [`ServiceDriver::run_nvme`].
//!
//! These tests moved from `twob-ssd`'s queue module when its bespoke
//! `run_closed_loop` event loop was folded into the serving stack: the
//! device crate keeps the queue-pair primitives (submit / handle / drain),
//! and the workload layer owns the loop that keeps pairs at depth.

use twob_ftl::Lba;
use twob_sim::SimTime;
use twob_ssd::{Namespace, NvmeOp, NvmeSsd, QueueConfig, Ssd, SsdConfig};
use twob_workloads::ServiceDriver;

fn preloaded(pages: u64, qcfg: QueueConfig) -> NvmeSsd {
    let mut dev = NvmeSsd::new(Ssd::new(SsdConfig::ull_ssd().small()), qcfg);
    let mut t = SimTime::ZERO;
    for i in 0..pages {
        t = dev
            .ssd_mut()
            .write(t, Lba(i), &vec![i as u8; 4096])
            .unwrap();
    }
    let settled = dev.ssd_mut().flush(t);
    // Park past the preload so measurements start on an idle device.
    assert!(settled < SimTime::from_nanos(100_000_000));
    dev
}

#[test]
fn qd1_read_matches_synchronous_path() {
    let start = SimTime::from_nanos(100_000_000);
    let mut queued = preloaded(8, QueueConfig::new(1, 1));
    let report = ServiceDriver::run_nvme(&mut queued, start, 8, |i| {
        (
            0,
            NvmeOp::Read {
                lba: Lba(i % 8),
                pages: 1,
            },
        )
    });
    // The same reads through the synchronous API, each issued at the
    // previous completion: identical spans, because the queued path runs
    // the very same fetch/NAND/transfer stages on the same servers.
    let mut sync = preloaded(8, QueueConfig::new(1, 1));
    let mut t = start;
    for i in 0..8u64 {
        t = sync.ssd_mut().read(t, Lba(i % 8), 1).unwrap().complete_at;
    }
    assert_eq!(report.ops, 8);
    assert_eq!(report.errors, 0);
    assert_eq!(report.makespan, t);
}

#[test]
fn deeper_queue_overlaps_stages() {
    let start = SimTime::from_nanos(100_000_000);
    let run = |depth: usize| {
        let mut dev = preloaded(64, QueueConfig::new(1, depth));
        ServiceDriver::run_nvme(&mut dev, start, 64, |i| {
            (
                0,
                NvmeOp::Read {
                    lba: Lba(i % 64),
                    pages: 1,
                },
            )
        })
    };
    let qd1 = run(1);
    let qd16 = run(16);
    assert_eq!(qd1.ops, 64);
    assert_eq!(qd16.ops, 64);
    assert!(
        qd16.bytes_per_sec() > qd1.bytes_per_sec(),
        "QD16 read bandwidth {:.1} MB/s should beat QD1 {:.1} MB/s",
        qd16.mb_per_sec(),
        qd1.mb_per_sec()
    );
}

#[test]
fn errors_surface_in_cq_entries() {
    let mut dev = NvmeSsd::new(
        Ssd::new(SsdConfig::ull_ssd().small()),
        QueueConfig::default(),
    );
    let report = ServiceDriver::run_nvme(&mut dev, SimTime::ZERO, 1, |_| {
        (
            0,
            NvmeOp::Read {
                lba: Lba(0),
                pages: 1,
            },
        ) // unmapped
    });
    assert_eq!(report.ops, 1);
    assert_eq!(report.errors, 1);
    assert_eq!(report.bytes, 0);
}

#[test]
fn writes_and_flush_complete_in_order_queued() {
    let mut dev = NvmeSsd::new(
        Ssd::new(SsdConfig::ull_ssd().small()),
        QueueConfig::new(1, 4),
    );
    let report = ServiceDriver::run_nvme(&mut dev, SimTime::ZERO, 5, |i| {
        if i < 4 {
            (
                0,
                NvmeOp::Write {
                    lba: Lba(i),
                    data: vec![i as u8; 4096],
                },
            )
        } else {
            (0, NvmeOp::Flush)
        }
    });
    assert_eq!(report.ops, 5);
    assert_eq!(report.errors, 0);
    assert_eq!(report.bytes, 4 * 4096);
    // Data landed: read back through the synchronous API.
    let r = dev.ssd_mut().read(report.makespan, Lba(2), 1).unwrap();
    assert_eq!(r.data, vec![2u8; 4096]);
}

#[test]
fn namespaces_isolate_tenant_address_spaces() {
    let mut dev = NvmeSsd::new(
        Ssd::new(SsdConfig::ull_ssd().small()),
        QueueConfig::new(2, 4),
    );
    dev.bind_namespace(
        0,
        Namespace {
            base: Lba(0),
            pages: 8,
        },
    );
    dev.bind_namespace(
        1,
        Namespace {
            base: Lba(8),
            pages: 8,
        },
    );
    // Both tenants write "their" LBA 0; the device must keep them apart.
    let report = ServiceDriver::run_nvme(&mut dev, SimTime::ZERO, 2, |i| {
        (
            i as usize,
            NvmeOp::Write {
                lba: Lba(0),
                data: vec![0x10 + i as u8; 4096],
            },
        )
    });
    assert_eq!(report.errors, 0);
    let a = dev.ssd_mut().read(report.makespan, Lba(0), 1).unwrap();
    let b = dev.ssd_mut().read(report.makespan, Lba(8), 1).unwrap();
    assert_eq!(a.data, vec![0x10u8; 4096]);
    assert_eq!(b.data, vec![0x11u8; 4096]);
}

#[test]
fn closed_loop_is_deterministic() {
    let run = || {
        let mut dev = preloaded(16, QueueConfig::new(2, 8));
        let report = ServiceDriver::run_nvme(&mut dev, SimTime::from_nanos(100_000_000), 64, |i| {
            (
                (i % 2) as usize,
                NvmeOp::Read {
                    lba: Lba(i % 16),
                    pages: 1,
                },
            )
        });
        (
            report.ops,
            report.bytes,
            report.makespan,
            report.latency.percentile(0.99),
        )
    };
    assert_eq!(run(), run());
}
