//! Placement-differential property tests of the die-placed
//! [`ShardedIoCalendar`]: for an arbitrary mixed BA/block workload with
//! chained cross-group follow-ups, *any* assignment of die groups to *any*
//! number of shards — driven sequentially, in parallel at several thread
//! counts, or under the lock-step oracle — must produce byte-identical
//! per-group completion digests, identical per-group [`LatencyBreakdown`]
//! totals, and an identical host observation digest.
//!
//! Times and chain delays are salted by operation id so no two causally
//! unrelated operations collide on the same group at the same instant;
//! every remaining observable is therefore fully determined by the
//! workload, not by sharding.

use proptest::prelude::*;
use twob_core::{EntryId, GroupPlacement, IoOp, ShardedIoCalendar, TwoBSpec, TwoBSsd};
use twob_ftl::Lba;
use twob_sim::{LatencyBreakdown, SimDuration, SimTime};
use twob_ssd::SsdConfig;

const IC: SimDuration = SimDuration::from_micros(2);

/// One die-sliced device per group with a BA entry pinned on LBA 0.
fn sliced_devices(groups: usize) -> (Vec<TwoBSsd>, Vec<EntryId>) {
    let cfg = SsdConfig::base_2b().small().die_slice(groups as u32);
    let mut devices = Vec::new();
    let mut eids = Vec::new();
    for _ in 0..groups {
        let mut dev = TwoBSsd::new(cfg.clone(), TwoBSpec::small_for_tests());
        let (eid, _) = dev.ba_pin_auto(SimTime::ZERO, Lba(0), 1).unwrap();
        devices.push(dev);
        eids.push(eid);
    }
    (devices, eids)
}

type OpSeed = (usize, u8, u64, bool);

/// Replays the seeded workload identically regardless of placement: op
/// times are salted by index only, chain delays by the chaining index.
fn seed_workload(cal: &mut ShardedIoCalendar, eids: &[EntryId], seeds: &[OpSeed]) {
    let groups = cal.groups();
    for (i, &(group_sel, kind, lba_sel, chain)) in seeds.iter().enumerate() {
        let g = group_sel % groups;
        let at = SimTime::from_nanos(1_000_000 + 53_000 * i as u64 + 13 * lba_sel);
        let lba = Lba(8 + lba_sel % 16);
        let id = match kind % 6 {
            0 => cal.submit(
                at,
                g,
                IoOp::BlockWrite {
                    lba,
                    data: vec![i as u8; 4096],
                },
            ),
            1 => cal.submit(at, g, IoOp::BlockRead { lba, pages: 1 }),
            2 => cal.submit(at, g, IoOp::BaSync { eid: eids[g] }),
            3 => cal.submit(
                at,
                g,
                IoOp::BaSyncRange {
                    eid: eids[g],
                    rel_offset: 0,
                    len: 64,
                },
            ),
            4 => cal.submit(
                at,
                g,
                IoOp::BaReadDma {
                    eid: eids[g],
                    rel_offset: 0,
                    len: 64,
                },
            ),
            _ => cal.submit(at, g, IoOp::BlockFlush),
        };
        if chain {
            // A follow-up on the *next* group, gated on this completion:
            // cross-shard under most placements. The id-salted delay keeps
            // chained start instants unique per chain.
            cal.submit_after(
                id,
                SimDuration::from_nanos(5_000 + 7_001 * i as u64),
                (g + 1) % groups,
                IoOp::BlockRead { lba, pages: 1 },
            );
        }
    }
}

type Fingerprint = (Vec<(usize, u64)>, Vec<(usize, LatencyBreakdown)>, u64, u64);

/// Runs the workload under one placement and drive mode and fingerprints
/// every observable: group digests, breakdown totals, host digest,
/// completion count. Also returns the round count for schedule checks.
fn drive(
    seeds: &[OpSeed],
    groups: usize,
    placement: GroupPlacement,
    mode: u8,
) -> (Fingerprint, u64) {
    let (devices, eids) = sliced_devices(groups);
    let mut cal = ShardedIoCalendar::new(devices, placement, IC);
    seed_workload(&mut cal, &eids, seeds);
    match mode {
        0 => cal.run(),
        1 => cal.run_parallel(2),
        2 => cal.run_parallel(4),
        _ => cal.run_lockstep(),
    }
    assert_eq!(cal.clamped_posts(), 0, "stale cross-shard delivery");
    assert_eq!(cal.unresolved_chains(), 0, "chain parent never observed");
    let fp = (
        cal.group_digests(),
        cal.breakdown_totals(),
        cal.host_digest(),
        cal.completed(),
    );
    (fp, cal.rounds())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Sharding is purely an execution strategy: group digests, latency
    /// totals, and the host observation log are invariant across die/shard
    /// placements, drive modes, and thread counts.
    #[test]
    fn placement_and_mode_never_change_observables(
        groups_pow in 1u32..3,
        seeds in prop::collection::vec(
            (0usize..8, 0u8..6, 0u64..32, any::<bool>()),
            1..28,
        ),
        assignment in prop::collection::vec(0usize..4, 4),
    ) {
        let groups = 1 << groups_pow; // 2 or 4
        let shards = 1 + assignment.iter().max().unwrap() % 4;
        let random = GroupPlacement::new(
            (0..groups).map(|g| assignment[g % 4] % shards).collect(),
            shards,
        );

        // Baseline: everything on one shard, sequential — semantically the
        // plain single-calendar model.
        let (baseline, _) =
            drive(&seeds, groups, GroupPlacement::round_robin(groups, 1), 0);

        for placement in [
            GroupPlacement::round_robin(groups, 2),
            GroupPlacement::round_robin(groups, groups),
            random,
        ] {
            let (seq, seq_rounds) = drive(&seeds, groups, placement.clone(), 0);
            prop_assert_eq!(
                &seq, &baseline,
                "sequential run under {:?} diverged from single-shard baseline",
                &placement
            );
            for mode in [1u8, 2] {
                let (par, par_rounds) = drive(&seeds, groups, placement.clone(), mode);
                prop_assert_eq!(
                    &par, &baseline,
                    "parallel mode {} under {:?} diverged",
                    mode, &placement
                );
                prop_assert_eq!(
                    par_rounds, seq_rounds,
                    "parallel must replay the sequential schedule exactly"
                );
            }
            let (lock, lock_rounds) = drive(&seeds, groups, placement.clone(), 3);
            prop_assert_eq!(
                &lock, &baseline,
                "lock-step oracle under {:?} diverged",
                &placement
            );
            prop_assert!(
                seq_rounds <= lock_rounds,
                "adaptive batching used more rounds ({} vs {})",
                seq_rounds, lock_rounds
            );
        }
    }
}
