//! Property-based tests of the 2B-SSD's mapping table, BA-buffer, and the
//! dual-path consistency invariant.

use proptest::prelude::*;
use twob_core::{BaBuffer, EntryId, MappingTable, TwoBSsd};
use twob_ftl::Lba;
use twob_pcie::PostedWrite;
use twob_sim::{SimDuration, SimTime};
use twob_ssd::BlockDevice;

/// Pinned counterexample from `props.proptest-regressions`: two posted
/// writes whose byte ranges overlap (101..127 and 126..155), both landing
/// *after* the cut, must both unwind — including the shared byte 126.
#[test]
fn regression_overlapping_unlanded_writes_roll_back() {
    let writes: [(u64, Vec<u8>, u64); 2] = [
        (
            101,
            vec![
                0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 139, 81, 84, 218, 89, 242,
                77,
            ],
            571,
        ),
        (
            126,
            vec![
                217, 131, 15, 81, 94, 184, 249, 115, 178, 14, 222, 221, 28, 171, 223, 204, 156, 39,
                244, 26, 122, 20, 44, 106, 77, 163, 153, 53, 233,
            ],
            407,
        ),
    ];
    let cut = 447u64;

    let mut real = BaBuffer::new(256);
    let mut model = vec![0u8; 256];
    let cut_time = SimTime::from_nanos(cut);
    let mut land_clock = 0u64;
    for (offset, data, land_delta) in &writes {
        let offset = offset % (256 - data.len() as u64);
        land_clock += land_delta + 1;
        let lands_at = SimTime::from_nanos(land_clock);
        real.apply_posted(&PostedWrite {
            offset,
            data: data.clone(),
            lands_at,
        });
        if lands_at <= cut_time {
            model[offset as usize..offset as usize + data.len()].copy_from_slice(data);
        }
    }
    real.power_loss(cut_time);
    assert_eq!(real.read(0, 256), &model[..]);
}

/// Pinned counterexample from `props.proptest-regressions`
/// (`seeds = [(3, 0), (1, 0)]`): after a 3-page entry is inserted at the
/// buffer base, `free_buffer_offset(1)` must propose a window that then
/// inserts cleanly.
#[test]
fn regression_free_offset_insertable_after_three_page_entry() {
    let seeds: [(u32, u64); 2] = [(3, 0), (1, 0)];
    let mut table = MappingTable::new(8, 64 << 10);
    let mut next_lba = 0u64;
    for (pages, lba_gap) in seeds {
        let start = next_lba + lba_gap;
        next_lba = start + u64::from(pages);
        let eid = table.free_eid().expect("free eid");
        let offset = table.free_buffer_offset(pages).expect("free offset");
        assert!(
            table.insert(eid, offset, Lba(start), pages).is_ok(),
            "proposed window rejected for pages={pages} offset={offset}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever sequence of inserts and removes, live entries never
    /// overlap in buffer space nor in LBA space.
    #[test]
    fn mapping_table_never_overlaps(
        ops in prop::collection::vec(
            (0u8..8, 0u64..16, 0u64..64, 1u32..6, any::<bool>()), 1..60
        )
    ) {
        let mut table = MappingTable::new(8, 64 << 10);
        for (eid, buf_page, lba, pages, remove) in ops {
            let eid = EntryId(eid);
            if remove {
                let _ = table.remove(eid);
            } else {
                let _ = table.insert(eid, buf_page * 4096, Lba(lba), pages);
            }
            // Invariant check over all live pairs.
            let live: Vec<_> = table.iter().collect();
            for (i, a) in live.iter().enumerate() {
                for b in &live[i + 1..] {
                    prop_assert!(
                        !a.buffer_overlaps(b.buffer_offset, b.len_bytes()),
                        "buffer overlap between {a:?} and {b:?}"
                    );
                    prop_assert!(
                        !a.lba_overlaps(b.start_lba, b.pages),
                        "LBA overlap between {a:?} and {b:?}"
                    );
                }
            }
        }
    }

    /// `free_buffer_offset` only proposes windows that then insert cleanly.
    #[test]
    fn free_offset_is_always_insertable(
        seeds in prop::collection::vec((1u32..4, 0u64..96), 1..10)
    ) {
        let mut table = MappingTable::new(8, 64 << 10);
        // Keep LBA ranges disjoint by construction; the property under
        // test is the *buffer-window* allocator.
        let mut next_lba = 0u64;
        for (pages, lba_gap) in seeds {
            let start = next_lba + lba_gap;
            next_lba = start + u64::from(pages);
            let Some(eid) = table.free_eid() else { break };
            let Some(offset) = table.free_buffer_offset(pages) else { break };
            prop_assert!(
                table.insert(eid, offset, Lba(start), pages).is_ok(),
                "proposed window rejected"
            );
        }
    }

    /// Rolling back the BA-buffer at time T yields exactly the state of
    /// the prefix of fragments that landed by T. Landing instants are
    /// monotonic in apply order, as PCIe posted-write FIFO ordering
    /// guarantees on real hardware.
    #[test]
    fn buffer_rollback_is_prefix_state(
        writes in prop::collection::vec(
            (0u64..200, prop::collection::vec(any::<u8>(), 1..32), 0u64..50),
            1..30
        ),
        cut in 0u64..1500
    ) {
        let mut real = BaBuffer::new(256);
        let mut model = vec![0u8; 256];
        let cut_time = SimTime::from_nanos(cut);
        let mut land_clock = 0u64;
        for (offset, data, land_delta) in &writes {
            let offset = offset % (256 - data.len() as u64);
            land_clock += land_delta + 1; // strictly increasing
            let lands_at = SimTime::from_nanos(land_clock);
            real.apply_posted(&PostedWrite {
                offset,
                data: data.clone(),
                lands_at,
            });
            if lands_at <= cut_time {
                model[offset as usize..offset as usize + data.len()]
                    .copy_from_slice(data);
            }
        }
        real.power_loss(cut_time);
        prop_assert_eq!(real.read(0, 256), &model[..]);
    }

    /// Dual-path invariant: after pin → MMIO writes → sync → flush, the
    /// block path reads back exactly what the byte path wrote.
    #[test]
    fn dual_path_consistency(
        patches in prop::collection::vec(
            (0u64..4000, prop::collection::vec(any::<u8>(), 1..96)), 1..12
        )
    ) {
        let mut dev = TwoBSsd::small_for_tests();
        let mut t = SimTime::ZERO;
        // Baseline page through the block path.
        let mut expected = vec![0x11u8; 4096];
        t = dev.write_pages(t, Lba(3), &expected).expect("base write");
        let pin = dev.ba_pin(t, EntryId(0), 0, Lba(3), 1).expect("pin");
        t = pin.complete_at;
        for (offset, data) in &patches {
            let offset = offset % (4096 - data.len() as u64);
            let store = dev.mmio_write(t, EntryId(0), offset, data).expect("store");
            t = store.retired_at;
            expected[offset as usize..offset as usize + data.len()].copy_from_slice(data);
        }
        let sync = dev.ba_sync(t, EntryId(0)).expect("sync");
        let flush = dev.ba_flush(sync.complete_at, EntryId(0)).expect("flush");
        let read = dev
            .read_pages(flush.complete_at + SimDuration::from_micros(1), Lba(3), 1)
            .expect("block read");
        prop_assert_eq!(read.data, expected);
    }

    /// Synced data survives power loss at any later instant; the mapping
    /// table comes back identical.
    #[test]
    fn synced_state_survives_any_crash_point(
        payload in prop::collection::vec(any::<u8>(), 1..64),
        crash_delay_us in 0u64..500
    ) {
        let mut dev = TwoBSsd::small_for_tests();
        let pin = dev.ba_pin(SimTime::ZERO, EntryId(2), 4096, Lba(7), 1).expect("pin");
        let store = dev
            .mmio_write(pin.complete_at, EntryId(2), 0, &payload)
            .expect("store");
        let sync = dev.ba_sync(store.retired_at, EntryId(2)).expect("sync");
        let crash_at = sync.complete_at + SimDuration::from_micros(crash_delay_us);
        let entries_before = dev.entries();
        let dump = dev.power_loss(crash_at);
        prop_assert!(dump.dumped);
        let report = dev.power_on(crash_at + SimDuration::from_millis(1));
        prop_assert!(report.restored);
        prop_assert_eq!(dev.entries(), entries_before);
        let read = dev
            .mmio_read(
                crash_at + SimDuration::from_millis(2),
                EntryId(2),
                0,
                payload.len() as u64,
            )
            .expect("read");
        prop_assert_eq!(read.data, payload);
    }
}
