//! Property-based tests of the 2B-SSD's mapping table, BA-buffer, and the
//! dual-path consistency invariant.

use std::collections::HashMap;

use proptest::prelude::*;
use twob_core::{BaBuffer, EntryId, MappingTable, PinError, PinTable, TenantId, TwoBSsd};
use twob_ftl::Lba;
use twob_pcie::PostedWrite;
use twob_sim::{SimDuration, SimTime};
use twob_ssd::BlockDevice;

/// One step of a multi-tenant pin-table interleaving.
#[derive(Debug, Clone)]
enum PinOp {
    Pin {
        tenant: u16,
        lba: u64,
        pages: u32,
    },
    Write {
        tenant: u16,
        pick: usize,
        offset: u64,
        data: Vec<u8>,
    },
    Unpin {
        tenant: u16,
        pick: usize,
    },
    PowerCycle,
}

fn pin_op_strategy() -> impl Strategy<Value = PinOp> {
    prop_oneof![
        4 => (0u16..2, 0u64..40, 1u32..3)
            .prop_map(|(tenant, lba, pages)| PinOp::Pin { tenant, lba, pages }),
        4 => (0u16..2, 0usize..8, 0u64..4096, prop::collection::vec(any::<u8>(), 1..24))
            .prop_map(|(tenant, pick, offset, data)| PinOp::Write { tenant, pick, offset, data }),
        2 => (0u16..2, 0usize..8).prop_map(|(tenant, pick)| PinOp::Unpin { tenant, pick }),
        1 => Just(PinOp::PowerCycle),
    ]
}

/// Pinned counterexample from `props.proptest-regressions`: two posted
/// writes whose byte ranges overlap (101..127 and 126..155), both landing
/// *after* the cut, must both unwind — including the shared byte 126.
#[test]
fn regression_overlapping_unlanded_writes_roll_back() {
    let writes: [(u64, Vec<u8>, u64); 2] = [
        (
            101,
            vec![
                0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 139, 81, 84, 218, 89, 242,
                77,
            ],
            571,
        ),
        (
            126,
            vec![
                217, 131, 15, 81, 94, 184, 249, 115, 178, 14, 222, 221, 28, 171, 223, 204, 156, 39,
                244, 26, 122, 20, 44, 106, 77, 163, 153, 53, 233,
            ],
            407,
        ),
    ];
    let cut = 447u64;

    let mut real = BaBuffer::new(256);
    let mut model = vec![0u8; 256];
    let cut_time = SimTime::from_nanos(cut);
    let mut land_clock = 0u64;
    for (offset, data, land_delta) in &writes {
        let offset = offset % (256 - data.len() as u64);
        land_clock += land_delta + 1;
        let lands_at = SimTime::from_nanos(land_clock);
        real.apply_posted(&PostedWrite {
            offset,
            data: data.clone(),
            lands_at,
        });
        if lands_at <= cut_time {
            model[offset as usize..offset as usize + data.len()].copy_from_slice(data);
        }
    }
    real.power_loss(cut_time);
    assert_eq!(real.read(0, 256), &model[..]);
}

/// Pinned counterexample from `props.proptest-regressions`
/// (`seeds = [(3, 0), (1, 0)]`): after a 3-page entry is inserted at the
/// buffer base, `free_buffer_offset(1)` must propose a window that then
/// inserts cleanly.
#[test]
fn regression_free_offset_insertable_after_three_page_entry() {
    let seeds: [(u32, u64); 2] = [(3, 0), (1, 0)];
    let mut table = MappingTable::new(8, 64 << 10);
    let mut next_lba = 0u64;
    for (pages, lba_gap) in seeds {
        let start = next_lba + lba_gap;
        next_lba = start + u64::from(pages);
        let eid = table.free_eid().expect("free eid");
        let offset = table.free_buffer_offset(pages).expect("free offset");
        assert!(
            table.insert(eid, offset, Lba(start), pages).is_ok(),
            "proposed window rejected for pages={pages} offset={offset}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever sequence of inserts and removes, live entries never
    /// overlap in buffer space nor in LBA space.
    #[test]
    fn mapping_table_never_overlaps(
        ops in prop::collection::vec(
            (0u8..8, 0u64..16, 0u64..64, 1u32..6, any::<bool>()), 1..60
        )
    ) {
        let mut table = MappingTable::new(8, 64 << 10);
        for (eid, buf_page, lba, pages, remove) in ops {
            let eid = EntryId(eid);
            if remove {
                let _ = table.remove(eid);
            } else {
                let _ = table.insert(eid, buf_page * 4096, Lba(lba), pages);
            }
            // Invariant check over all live pairs.
            let live: Vec<_> = table.iter().collect();
            for (i, a) in live.iter().enumerate() {
                for b in &live[i + 1..] {
                    prop_assert!(
                        !a.buffer_overlaps(b.buffer_offset, b.len_bytes()),
                        "buffer overlap between {a:?} and {b:?}"
                    );
                    prop_assert!(
                        !a.lba_overlaps(b.start_lba, b.pages),
                        "LBA overlap between {a:?} and {b:?}"
                    );
                }
            }
        }
    }

    /// `free_buffer_offset` only proposes windows that then insert cleanly.
    #[test]
    fn free_offset_is_always_insertable(
        seeds in prop::collection::vec((1u32..4, 0u64..96), 1..10)
    ) {
        let mut table = MappingTable::new(8, 64 << 10);
        // Keep LBA ranges disjoint by construction; the property under
        // test is the *buffer-window* allocator.
        let mut next_lba = 0u64;
        for (pages, lba_gap) in seeds {
            let start = next_lba + lba_gap;
            next_lba = start + u64::from(pages);
            let Some(eid) = table.free_eid() else { break };
            let Some(offset) = table.free_buffer_offset(pages) else { break };
            prop_assert!(
                table.insert(eid, offset, Lba(start), pages).is_ok(),
                "proposed window rejected"
            );
        }
    }

    /// Rolling back the BA-buffer at time T yields exactly the state of
    /// the prefix of fragments that landed by T. Landing instants are
    /// monotonic in apply order, as PCIe posted-write FIFO ordering
    /// guarantees on real hardware.
    #[test]
    fn buffer_rollback_is_prefix_state(
        writes in prop::collection::vec(
            (0u64..200, prop::collection::vec(any::<u8>(), 1..32), 0u64..50),
            1..30
        ),
        cut in 0u64..1500
    ) {
        let mut real = BaBuffer::new(256);
        let mut model = vec![0u8; 256];
        let cut_time = SimTime::from_nanos(cut);
        let mut land_clock = 0u64;
        for (offset, data, land_delta) in &writes {
            let offset = offset % (256 - data.len() as u64);
            land_clock += land_delta + 1; // strictly increasing
            let lands_at = SimTime::from_nanos(land_clock);
            real.apply_posted(&PostedWrite {
                offset,
                data: data.clone(),
                lands_at,
            });
            if lands_at <= cut_time {
                model[offset as usize..offset as usize + data.len()]
                    .copy_from_slice(data);
            }
        }
        real.power_loss(cut_time);
        prop_assert_eq!(real.read(0, 256), &model[..]);
    }

    /// Dual-path invariant: after pin → MMIO writes → sync → flush, the
    /// block path reads back exactly what the byte path wrote.
    #[test]
    fn dual_path_consistency(
        patches in prop::collection::vec(
            (0u64..4000, prop::collection::vec(any::<u8>(), 1..96)), 1..12
        )
    ) {
        let mut dev = TwoBSsd::small_for_tests();
        let mut t = SimTime::ZERO;
        // Baseline page through the block path.
        let mut expected = vec![0x11u8; 4096];
        t = dev.write_pages(t, Lba(3), &expected).expect("base write");
        let pin = dev.ba_pin(t, EntryId(0), 0, Lba(3), 1).expect("pin");
        t = pin.complete_at;
        for (offset, data) in &patches {
            let offset = offset % (4096 - data.len() as u64);
            let store = dev.mmio_write(t, EntryId(0), offset, data).expect("store");
            t = store.retired_at;
            expected[offset as usize..offset as usize + data.len()].copy_from_slice(data);
        }
        let sync = dev.ba_sync(t, EntryId(0)).expect("sync");
        let flush = dev.ba_flush(sync.complete_at, EntryId(0)).expect("flush");
        let read = dev
            .read_pages(flush.complete_at + SimDuration::from_micros(1), Lba(3), 1)
            .expect("block read");
        prop_assert_eq!(read.data, expected);
    }

    /// Multi-tenant arbitration: arbitrary pin/write/unpin/power-loss
    /// interleavings never produce overlapping pinned windows, never let a
    /// window leave its tenant's share, keep the arbiter in byte-parity
    /// with the device mapping table, and the power-loss dump restores
    /// exactly the bytes each surviving window held.
    #[test]
    fn pin_table_arbitration_survives_churn_and_crashes(
        ops in prop::collection::vec(pin_op_strategy(), 1..40)
    ) {
        let mut dev = TwoBSsd::small_for_tests();
        let mut pins = PinTable::new(dev.spec(), 2).expect("pin table");
        // Model of written bytes per entry: `None` = never stored through
        // the byte path (the pin's initial NAND load, not under test).
        let mut model: HashMap<u8, Vec<Option<u8>>> = HashMap::new();
        let mut t = SimTime::ZERO;
        for op in ops {
            match op {
                PinOp::Pin { tenant, lba, pages } => {
                    match pins.pin(&mut dev, t, TenantId(tenant), Lba(lba), pages) {
                        Ok((eid, done)) => {
                            t = done.complete_at;
                            model.insert(eid.0, vec![None; pages as usize * 4096]);
                        }
                        // Legitimate arbitration refusals: the share or the
                        // entry table is full, or the device rejects an LBA
                        // range another live pin already covers.
                        Err(PinError::ShareExhausted(_)
                            | PinError::NoFreeEntry
                            | PinError::Device(_)) => {}
                        Err(e) => {
                            return Err(TestCaseError::fail(format!("unexpected pin error: {e}")));
                        }
                    }
                }
                PinOp::Write { tenant, pick, offset, data } => {
                    let live = pins.entries_for(TenantId(tenant));
                    if live.is_empty() {
                        continue;
                    }
                    let (eid, entry) = live[pick % live.len()];
                    let rel = offset % (entry.len_bytes() - data.len() as u64 + 1);
                    let store = pins
                        .write(&mut dev, t, TenantId(tenant), eid, rel, &data)
                        .expect("in-window write on an owned pin");
                    t = store.retired_at;
                    let bytes = model.get_mut(&eid.0).expect("model has the entry");
                    for (i, b) in data.iter().enumerate() {
                        bytes[rel as usize + i] = Some(*b);
                    }
                }
                PinOp::Unpin { tenant, pick } => {
                    let live = pins.entries_for(TenantId(tenant));
                    if live.is_empty() {
                        continue;
                    }
                    let (eid, _) = live[pick % live.len()];
                    let done = pins
                        .unpin(&mut dev, t, TenantId(tenant), eid)
                        .expect("unpin an owned pin");
                    t = done.complete_at;
                    model.remove(&eid.0);
                }
                PinOp::PowerCycle => {
                    // Sync every live window first: unsynced stores may
                    // still sit in the host's write-combining buffers,
                    // which a power cut legitimately discards (the paper's
                    // at-risk window). Synced bytes must then survive the
                    // dump exactly.
                    for (eid, entry) in pins.entries() {
                        let sync = pins
                            .sync_range(&mut dev, t, entry.tenant, eid, 0, entry.len_bytes())
                            .map_err(|e| TestCaseError::fail(format!("sync {eid}: {e}")))?;
                        t = sync.complete_at;
                    }
                    let crash = t + SimDuration::from_millis(1);
                    let dump = dev.power_loss(crash);
                    let report = dev.power_on(crash + SimDuration::from_millis(1));
                    if !model.is_empty() {
                        prop_assert!(dump.dumped, "dump skipped with live pins");
                        prop_assert!(report.restored, "restore failed with live pins");
                    }
                    t = crash + SimDuration::from_millis(2);
                    let survived = pins
                        .reattach(&dev, t)
                        .map_err(|e| TestCaseError::fail(format!("reattach: {e}")))?;
                    prop_assert_eq!(survived, model.len(), "pins lost across power cycle");
                    // The dump restored *exactly* the pinned bytes.
                    for (raw_eid, bytes) in &model {
                        let eid = EntryId(*raw_eid);
                        let entry = pins
                            .entry_info(eid)
                            .map_err(|e| TestCaseError::fail(format!("{eid} vanished: {e}")))?;
                        let read = pins
                            .read(&mut dev, t, entry.tenant, eid, 0, bytes.len() as u64)
                            .map_err(|e| TestCaseError::fail(format!("read {eid}: {e}")))?;
                        t = read.complete_at;
                        for (i, expected) in bytes.iter().enumerate() {
                            if let Some(b) = expected {
                                prop_assert_eq!(
                                    read.data[i], *b,
                                    "byte {} of {} diverged after restore", i, eid
                                );
                            }
                        }
                    }
                }
            }
            // Invariants after *every* op: windows confined to their
            // tenant's share, pairwise disjoint, and arbiter/device parity.
            let live = pins.entries();
            let share = pins.share_pages() * 4096;
            for (i, (ea, a)) in live.iter().enumerate() {
                let base = u64::from(a.tenant.0) * share;
                prop_assert!(
                    a.buffer_offset >= base && a.buffer_offset + a.len_bytes() <= base + share,
                    "{} escaped tenant {:?}'s share", ea, a.tenant
                );
                for (eb, b) in &live[i + 1..] {
                    prop_assert!(
                        a.buffer_offset + a.len_bytes() <= b.buffer_offset
                            || b.buffer_offset + b.len_bytes() <= a.buffer_offset,
                        "{} and {} overlap in buffer space", ea, eb
                    );
                }
            }
            pins.verify_device_parity(&dev)
                .map_err(|e| TestCaseError::fail(format!("parity: {e}")))?;
        }
    }

    /// Synced data survives power loss at any later instant; the mapping
    /// table comes back identical.
    #[test]
    fn synced_state_survives_any_crash_point(
        payload in prop::collection::vec(any::<u8>(), 1..64),
        crash_delay_us in 0u64..500
    ) {
        let mut dev = TwoBSsd::small_for_tests();
        let pin = dev.ba_pin(SimTime::ZERO, EntryId(2), 4096, Lba(7), 1).expect("pin");
        let store = dev
            .mmio_write(pin.complete_at, EntryId(2), 0, &payload)
            .expect("store");
        let sync = dev.ba_sync(store.retired_at, EntryId(2)).expect("sync");
        let crash_at = sync.complete_at + SimDuration::from_micros(crash_delay_us);
        let entries_before = dev.entries();
        let dump = dev.power_loss(crash_at);
        prop_assert!(dump.dumped);
        let report = dev.power_on(crash_at + SimDuration::from_millis(1));
        prop_assert!(report.restored);
        prop_assert_eq!(dev.entries(), entries_before);
        let read = dev
            .mmio_read(
                crash_at + SimDuration::from_millis(2),
                EntryId(2),
                0,
                payload.len() as u64,
            )
            .expect("read");
        prop_assert_eq!(read.data, payload);
    }
}
