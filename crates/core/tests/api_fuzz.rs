//! Fuzz-style robustness: arbitrary API call sequences never panic, every
//! outcome is a clean `Ok`/`Err`, and the device's structural invariants
//! hold after every call — including across power cycles.

use proptest::prelude::*;
use twob_core::{EntryId, TwoBSsd};
use twob_ftl::Lba;
use twob_sim::{SimDuration, SimTime};
use twob_ssd::BlockDevice;

#[derive(Debug, Clone)]
enum Call {
    Pin {
        eid: u8,
        buf_page: u64,
        lba: u64,
        pages: u32,
    },
    Flush {
        eid: u8,
    },
    Sync {
        eid: u8,
    },
    SyncRange {
        eid: u8,
        offset: u64,
        len: u64,
    },
    EntryInfo {
        eid: u8,
    },
    MmioWrite {
        eid: u8,
        offset: u64,
        len: usize,
        fill: u8,
    },
    MmioRead {
        eid: u8,
        offset: u64,
        len: u64,
    },
    Dma {
        eid: u8,
        offset: u64,
        len: u64,
    },
    BlockWrite {
        lba: u64,
        fill: u8,
    },
    BlockRead {
        lba: u64,
    },
    Trim {
        lba: u64,
    },
    DeviceFlush,
    PowerCycle,
}

fn call_strategy() -> impl Strategy<Value = Call> {
    prop_oneof![
        3 => (0u8..10, 0u64..20, 0u64..64, 0u32..6)
            .prop_map(|(eid, buf_page, lba, pages)| Call::Pin { eid, buf_page, lba, pages }),
        2 => (0u8..10).prop_map(|eid| Call::Flush { eid }),
        2 => (0u8..10).prop_map(|eid| Call::Sync { eid }),
        1 => (0u8..10, 0u64..20_000, 0u64..9_000)
            .prop_map(|(eid, offset, len)| Call::SyncRange { eid, offset, len }),
        1 => (0u8..10).prop_map(|eid| Call::EntryInfo { eid }),
        3 => (0u8..10, 0u64..20_000, 0usize..300, any::<u8>())
            .prop_map(|(eid, offset, len, fill)| Call::MmioWrite { eid, offset, len, fill }),
        2 => (0u8..10, 0u64..20_000, 0u64..600)
            .prop_map(|(eid, offset, len)| Call::MmioRead { eid, offset, len }),
        1 => (0u8..10, 0u64..20_000, 0u64..9_000)
            .prop_map(|(eid, offset, len)| Call::Dma { eid, offset, len }),
        2 => (0u64..80, any::<u8>()).prop_map(|(lba, fill)| Call::BlockWrite { lba, fill }),
        2 => (0u64..80).prop_map(|lba| Call::BlockRead { lba }),
        1 => (0u64..80).prop_map(|lba| Call::Trim { lba }),
        1 => Just(Call::DeviceFlush),
        1 => Just(Call::PowerCycle),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn arbitrary_api_sequences_preserve_invariants(
        calls in prop::collection::vec(call_strategy(), 1..80)
    ) {
        let mut dev = TwoBSsd::small_for_tests();
        let mut t = SimTime::ZERO;
        for call in calls {
            match call.clone() {
                Call::Pin { eid, buf_page, lba, pages } => {
                    if let Ok(done) = dev.ba_pin(t, EntryId(eid), buf_page * 4096, Lba(lba), pages) {
                        t = t.max(done.complete_at);
                    }
                }
                Call::Flush { eid } => {
                    if let Ok(done) = dev.ba_flush(t, EntryId(eid)) {
                        t = t.max(done.complete_at);
                    }
                }
                Call::Sync { eid } => {
                    if let Ok(done) = dev.ba_sync(t, EntryId(eid)) {
                        t = t.max(done.complete_at);
                    }
                }
                Call::SyncRange { eid, offset, len } => {
                    if let Ok(done) = dev.ba_sync_range(t, EntryId(eid), offset, len) {
                        t = t.max(done.complete_at);
                    }
                }
                Call::EntryInfo { eid } => {
                    let _ = dev.ba_entry_info(EntryId(eid));
                }
                Call::MmioWrite { eid, offset, len, fill } => {
                    let data = vec![fill; len];
                    if let Ok(done) = dev.mmio_write(t, EntryId(eid), offset, &data) {
                        t = t.max(done.retired_at);
                    }
                }
                Call::MmioRead { eid, offset, len } => {
                    if let Ok(done) = dev.mmio_read(t, EntryId(eid), offset, len) {
                        t = t.max(done.complete_at);
                    }
                }
                Call::Dma { eid, offset, len } => {
                    if let Ok(done) = dev.ba_read_dma(t, EntryId(eid), offset, len) {
                        t = t.max(done.complete_at);
                    }
                }
                Call::BlockWrite { lba, fill } => {
                    if let Ok(done) = dev.write_pages(t, Lba(lba), &vec![fill; 4096]) {
                        t = t.max(done);
                    }
                }
                Call::BlockRead { lba } => {
                    if let Ok(done) = dev.read_pages(t, Lba(lba), 1) {
                        t = t.max(done.complete_at);
                    }
                }
                Call::Trim { lba } => {
                    if let Ok(done) = dev.trim(t, Lba(lba), 1) {
                        t = t.max(done);
                    }
                }
                Call::DeviceFlush => {
                    t = t.max(dev.flush(t));
                }
                Call::PowerCycle => {
                    dev.power_loss(t);
                    t += SimDuration::from_millis(1);
                    dev.power_on(t);
                }
            }
            dev.check_invariants()
                .map_err(|e| TestCaseError::fail(format!("after {call:?}: {e}")))?;
        }
    }
}
