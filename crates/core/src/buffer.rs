//! The BA-buffer: capacitor-backed device DRAM with landing-time tracking.

use twob_pcie::PostedWrite;
use twob_sim::SimTime;

/// The byte-addressable buffer carved out of the SSD-internal DRAM.
///
/// Bytes are applied eagerly when posted writes arrive from the host
/// channel, but each fragment's *landing instant* is remembered so a power
/// failure can roll back fragments that were still in flight on the PCIe
/// fabric — the exact at-risk window of the paper's durability protocol
/// (Fig 3, step 2).
///
/// # Example
///
/// ```rust
/// use twob_core::BaBuffer;
/// use twob_pcie::PostedWrite;
/// use twob_sim::SimTime;
///
/// let mut buf = BaBuffer::new(4096);
/// buf.apply_posted(&PostedWrite {
///     offset: 0,
///     data: b"hello".to_vec(),
///     lands_at: SimTime::from_nanos(500),
/// });
/// assert_eq!(buf.read(0, 5), b"hello");
/// // Power dies before the fragment landed: it is rolled back.
/// buf.power_loss(SimTime::from_nanos(100));
/// assert_eq!(buf.read(0, 5), &[0u8; 5]);
/// ```
#[derive(Debug, Clone)]
pub struct BaBuffer {
    bytes: Vec<u8>,
    /// `(lands_at, offset, previous bytes)` for in-flight fragments.
    inflight: Vec<(SimTime, u64, Vec<u8>)>,
}

impl BaBuffer {
    /// Creates a zeroed buffer of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        BaBuffer {
            bytes: vec![0; capacity as usize],
            inflight: Vec::new(),
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// Applies one posted fragment, remembering what it replaced until it
    /// lands.
    ///
    /// # Panics
    ///
    /// Panics if the fragment exceeds the buffer.
    pub fn apply_posted(&mut self, p: &PostedWrite) {
        let start = p.offset as usize;
        let end = start + p.data.len();
        assert!(end <= self.bytes.len(), "posted write beyond BA-buffer");
        let old = self.bytes[start..end].to_vec();
        self.inflight.push((p.lands_at, p.offset, old));
        self.bytes[start..end].copy_from_slice(&p.data);
    }

    /// Writes bytes directly (device-side paths: `BA_PIN` fills, recovery
    /// restore). No landing tracking — these are already on the device.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the buffer.
    pub fn write_direct(&mut self, offset: u64, data: &[u8]) {
        let start = offset as usize;
        let end = start + data.len();
        assert!(end <= self.bytes.len(), "direct write beyond BA-buffer");
        self.bytes[start..end].copy_from_slice(data);
    }

    /// Reads a byte range.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the buffer.
    pub fn read(&self, offset: u64, len: u64) -> &[u8] {
        let start = offset as usize;
        let end = start + len as usize;
        assert!(end <= self.bytes.len(), "read beyond BA-buffer");
        &self.bytes[start..end]
    }

    /// Forgets rollback data for fragments that have landed by `now`.
    pub fn settle(&mut self, now: SimTime) {
        self.inflight.retain(|(lands_at, _, _)| *lands_at > now);
    }

    /// Bytes still in flight (not yet landed) — at risk on power failure.
    pub fn inflight_bytes(&self) -> usize {
        self.inflight.iter().map(|(_, _, old)| old.len()).sum()
    }

    /// Rolls back every fragment that had not landed by `at`, returning how
    /// many bytes were lost.
    ///
    /// Fragments are unwound in reverse *apply* order, not landing order:
    /// PCIe posted writes are FIFO, so apply order is the order the bytes
    /// hit device DRAM, and each saved `old` snapshot is only valid once
    /// every later-applied overlapping fragment has been undone first.
    /// (Sorting by landing instant gives the same result while landings are
    /// monotonic in apply order, but ties and fault-injected reorderings
    /// would unwind overlapping writes in the wrong order.)
    pub fn power_loss(&mut self, at: SimTime) -> usize {
        let mut lost = 0;
        let pending: Vec<(SimTime, u64, Vec<u8>)> = std::mem::take(&mut self.inflight);
        for (lands_at, offset, old) in pending.into_iter().rev() {
            if lands_at > at {
                lost += old.len();
                let start = offset as usize;
                self.bytes[start..start + old.len()].copy_from_slice(&old);
            }
        }
        lost
    }

    /// A snapshot of the whole buffer (for the recovery dump).
    pub fn snapshot(&self) -> &[u8] {
        &self.bytes
    }

    /// Replaces the whole buffer contents (recovery restore).
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly the buffer's capacity.
    pub fn restore(&mut self, data: &[u8]) {
        assert_eq!(
            data.len(),
            self.bytes.len(),
            "restore length must match capacity"
        );
        self.bytes.copy_from_slice(data);
        self.inflight.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn posted(offset: u64, data: &[u8], lands_ns: u64) -> PostedWrite {
        PostedWrite {
            offset,
            data: data.to_vec(),
            lands_at: SimTime::from_nanos(lands_ns),
        }
    }

    #[test]
    fn landed_fragments_survive_power_loss() {
        let mut buf = BaBuffer::new(1024);
        buf.apply_posted(&posted(0, b"safe", 100));
        let lost = buf.power_loss(SimTime::from_nanos(200));
        assert_eq!(lost, 0);
        assert_eq!(buf.read(0, 4), b"safe");
    }

    #[test]
    fn unlanded_fragments_roll_back() {
        let mut buf = BaBuffer::new(1024);
        buf.apply_posted(&posted(0, b"one!", 100));
        buf.apply_posted(&posted(0, b"two!", 300));
        // Power dies between the two landings.
        let lost = buf.power_loss(SimTime::from_nanos(200));
        assert_eq!(lost, 4);
        assert_eq!(buf.read(0, 4), b"one!");
    }

    #[test]
    fn nested_overwrites_unwind_in_order() {
        let mut buf = BaBuffer::new(64);
        buf.apply_posted(&posted(0, b"AAAA", 500));
        buf.apply_posted(&posted(2, b"BB", 600));
        buf.power_loss(SimTime::from_nanos(100));
        assert_eq!(buf.read(0, 4), &[0u8; 4]);
    }

    #[test]
    fn settle_caps_rollback_history() {
        let mut buf = BaBuffer::new(64);
        buf.apply_posted(&posted(0, b"x", 100));
        buf.apply_posted(&posted(1, b"y", 900));
        buf.settle(SimTime::from_nanos(500));
        assert_eq!(buf.inflight_bytes(), 1);
    }

    #[test]
    fn snapshot_restore_round_trips() {
        let mut buf = BaBuffer::new(16);
        buf.write_direct(0, &[7u8; 16]);
        let snap = buf.snapshot().to_vec();
        let mut other = BaBuffer::new(16);
        other.restore(&snap);
        assert_eq!(other.read(0, 16), &[7u8; 16]);
    }

    #[test]
    #[should_panic(expected = "beyond BA-buffer")]
    fn oversized_write_panics() {
        let mut buf = BaBuffer::new(8);
        buf.write_direct(4, &[0u8; 8]);
    }
}
