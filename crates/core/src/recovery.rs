//! The recovery manager (paper §III-A4): power-loss dump and restore.
//!
//! On power-loss detection the manager spends the back-up capacitors'
//! energy to copy the BA-buffer contents *and* the mapping table into a
//! reserved NAND area the FTL never touches. At power-on it restores both,
//! so pinned windows come back exactly as the host last made them durable.
//!
//! The dump layout in the reserved blocks is:
//!
//! ```text
//! page 0:  header  = magic ∥ version ∥ generation ∥ buffer_len ∥
//!                    entry_count ∥ entries[..] ∥ crc32(header)
//! page 1…: the BA-buffer, page by page
//! ```

use twob_ftl::Lba;
use twob_nand::BlockAddr;
use twob_sim::crc32;
use twob_ssd::Ssd;

use crate::{BaBuffer, EntryId, MappingTable, TwoBSpec};

const MAGIC: &[u8; 8] = b"2BSSDREC";
const VERSION: u32 = 1;
const PAGE: usize = 4096;

/// What happened when the recovery manager tried to dump on power loss.
#[derive(Debug, Clone, PartialEq)]
pub struct DumpOutcome {
    /// Whether the dump completed within the energy budget.
    pub dumped: bool,
    /// NAND pages written (header + buffer pages) if dumped.
    pub pages_written: u64,
    /// Energy the dump consumed, joules.
    pub energy_used_j: f64,
    /// Why the dump was abandoned, if it was.
    pub reason: Option<String>,
}

/// What the recovery manager found at power-on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Whether a valid dump was found and restored.
    pub restored: bool,
    /// Generation number of the restored dump.
    pub generation: u64,
    /// Mapping entries restored.
    pub entries: usize,
}

/// The recovery manager. Holds only the dump generation counter; all data
/// lives in the device it serves.
#[derive(Debug, Clone, Default)]
pub struct RecoveryManager {
    generation: u64,
}

impl RecoveryManager {
    /// Creates a manager with generation 0.
    pub fn new() -> Self {
        RecoveryManager::default()
    }

    /// Current dump generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    fn serialize_header(&self, table: &MappingTable, buffer_len: u64) -> Vec<u8> {
        let mut header = Vec::with_capacity(PAGE);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.extend_from_slice(&self.generation.to_le_bytes());
        header.extend_from_slice(&buffer_len.to_le_bytes());
        let entries: Vec<_> = table.iter().collect();
        header.extend_from_slice(&(entries.len() as u32).to_le_bytes());
        for e in entries {
            header.push(e.eid.0);
            header.extend_from_slice(&e.buffer_offset.to_le_bytes());
            header.extend_from_slice(&e.start_lba.0.to_le_bytes());
            header.extend_from_slice(&e.pages.to_le_bytes());
        }
        let crc = crc32(&header);
        header.extend_from_slice(&crc.to_le_bytes());
        header.resize(PAGE, 0);
        header
    }

    fn parse_header(
        &self,
        page: &[u8],
        max_entries: usize,
        buffer_capacity: u64,
    ) -> Option<(u64, u64, MappingTable)> {
        if page.len() < PAGE || &page[0..8] != MAGIC {
            return None;
        }
        let version = u32::from_le_bytes(page[8..12].try_into().ok()?);
        if version != VERSION {
            return None;
        }
        let generation = u64::from_le_bytes(page[12..20].try_into().ok()?);
        let buffer_len = u64::from_le_bytes(page[20..28].try_into().ok()?);
        let count = u32::from_le_bytes(page[28..32].try_into().ok()?) as usize;
        let mut cursor = 32usize;
        let entry_size = 1 + 8 + 8 + 4;
        let body_end = cursor + count * entry_size;
        if body_end + 4 > PAGE {
            return None;
        }
        let stored_crc = u32::from_le_bytes(page[body_end..body_end + 4].try_into().ok()?);
        if crc32(&page[..body_end]) != stored_crc {
            return None;
        }
        let mut table = MappingTable::new(max_entries, buffer_capacity);
        for _ in 0..count {
            let eid = EntryId(page[cursor]);
            cursor += 1;
            let buffer_offset = u64::from_le_bytes(page[cursor..cursor + 8].try_into().ok()?);
            cursor += 8;
            let lba = u64::from_le_bytes(page[cursor..cursor + 8].try_into().ok()?);
            cursor += 8;
            let pages = u32::from_le_bytes(page[cursor..cursor + 4].try_into().ok()?);
            cursor += 4;
            table.insert(eid, buffer_offset, Lba(lba), pages).ok()?;
        }
        Some((generation, buffer_len, table))
    }

    /// Pages a dump of `buffer` needs (header + buffer pages).
    pub fn dump_pages(spec: &TwoBSpec) -> u64 {
        spec.ba_buffer_pages() + 1
    }

    /// Energy a full dump needs, joules.
    pub fn dump_energy_needed(spec: &TwoBSpec) -> f64 {
        Self::dump_pages(spec) as f64 * spec.dump_energy_per_page_j
    }

    /// Dumps the BA-buffer and mapping table into the device's reserved
    /// blocks, consuming capacitor energy. Called by the power-loss path.
    pub fn dump(
        &mut self,
        spec: &TwoBSpec,
        ssd: &mut Ssd,
        table: &MappingTable,
        buffer: &BaBuffer,
    ) -> DumpOutcome {
        let needed = Self::dump_energy_needed(spec);
        let budget = spec.capacitor_energy_j();
        if needed > budget {
            return DumpOutcome {
                dumped: false,
                pages_written: 0,
                energy_used_j: 0.0,
                reason: Some(format!(
                    "dump needs {needed:.4} J but capacitors hold {budget:.4} J"
                )),
            };
        }
        let reserved: Vec<BlockAddr> = ssd.ftl().reserved_blocks();
        let pages_per_block = ssd.config().geometry.pages_per_block as u64;
        let total_pages = Self::dump_pages(spec);
        if reserved.len() as u64 * pages_per_block < total_pages {
            return DumpOutcome {
                dumped: false,
                pages_written: 0,
                energy_used_j: 0.0,
                reason: Some(format!(
                    "reserved area of {} pages cannot hold a {total_pages}-page dump",
                    reserved.len() as u64 * pages_per_block
                )),
            };
        }
        self.generation += 1;
        let header = self.serialize_header(table, buffer.capacity());
        let nand = ssd.ftl_mut().nand_mut();
        for block in &reserved {
            nand.erase_block(*block).expect("reserved block erase");
        }
        let mut written = 0u64;
        let mut write_page = |data: &[u8], idx: u64| {
            let block = reserved[(idx / pages_per_block) as usize];
            let page = block.page((idx % pages_per_block) as u32);
            nand.program_page(page, data).expect("reserved program");
        };
        write_page(&header, written);
        written += 1;
        let snapshot = buffer.snapshot();
        for chunk in snapshot.chunks(PAGE) {
            let mut page = chunk.to_vec();
            page.resize(PAGE, 0);
            write_page(&page, written);
            written += 1;
        }
        DumpOutcome {
            dumped: true,
            pages_written: written,
            energy_used_j: written as f64 * spec.dump_energy_per_page_j,
            reason: None,
        }
    }

    /// Attempts to restore a dump from the reserved blocks. Returns the
    /// restored mapping table and buffer contents, or `None` if no valid
    /// dump exists.
    pub fn restore(&self, spec: &TwoBSpec, ssd: &mut Ssd) -> Option<(MappingTable, Vec<u8>, u64)> {
        let reserved: Vec<BlockAddr> = ssd.ftl().reserved_blocks();
        let pages_per_block = ssd.config().geometry.pages_per_block as u64;
        let nand = ssd.ftl_mut().nand_mut();
        let read_page = |nand: &mut twob_nand::NandArray, idx: u64| -> Option<Vec<u8>> {
            let block = *reserved.get((idx / pages_per_block) as usize)?;
            let page = block.page((idx % pages_per_block) as u32);
            nand.read_page(page).ok().map(|r| r.data)
        };
        let header = read_page(nand, 0)?;
        let (generation, buffer_len, table) =
            self.parse_header(&header, spec.max_entries, spec.ba_buffer_bytes)?;
        let mut buffer = Vec::with_capacity(buffer_len as usize);
        let pages = buffer_len.div_ceil(PAGE as u64);
        for i in 0..pages {
            let data = read_page(nand, 1 + i)?;
            buffer.extend_from_slice(&data);
        }
        buffer.truncate(buffer_len as usize);
        Some((table, buffer, generation))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twob_ssd::SsdConfig;

    fn device() -> (TwoBSpec, Ssd) {
        (
            TwoBSpec::small_for_tests(),
            Ssd::new(SsdConfig::base_2b().small()),
        )
    }

    fn sample_state(spec: &TwoBSpec) -> (MappingTable, BaBuffer) {
        let mut table = MappingTable::new(spec.max_entries, spec.ba_buffer_bytes);
        table.insert(EntryId(0), 0, Lba(10), 2).unwrap();
        table.insert(EntryId(3), 16384, Lba(50), 1).unwrap();
        let mut buffer = BaBuffer::new(spec.ba_buffer_bytes);
        buffer.write_direct(0, b"precious log records");
        buffer.write_direct(16384, &[0xEE; 4096]);
        (table, buffer)
    }

    #[test]
    fn dump_restore_round_trips() {
        let (spec, mut ssd) = device();
        let (table, buffer) = sample_state(&spec);
        let mut mgr = RecoveryManager::new();
        let outcome = mgr.dump(&spec, &mut ssd, &table, &buffer);
        assert!(outcome.dumped, "{:?}", outcome.reason);
        assert_eq!(outcome.pages_written, spec.ba_buffer_pages() + 1);

        let (restored_table, restored_buffer, generation) =
            mgr.restore(&spec, &mut ssd).expect("valid dump");
        assert_eq!(generation, 1);
        assert_eq!(restored_table, table);
        assert_eq!(&restored_buffer[0..20], b"precious log records");
        assert_eq!(&restored_buffer[16384..16388], &[0xEE; 4]);
    }

    #[test]
    fn restore_without_dump_is_none() {
        let (spec, mut ssd) = device();
        let mgr = RecoveryManager::new();
        assert!(mgr.restore(&spec, &mut ssd).is_none());
    }

    #[test]
    fn insufficient_capacitance_abandons_dump() {
        let (mut spec, mut ssd) = device();
        spec.capacitors_uf = 1.0; // almost no stored energy
        let (table, buffer) = sample_state(&spec);
        let mut mgr = RecoveryManager::new();
        let outcome = mgr.dump(&spec, &mut ssd, &table, &buffer);
        assert!(!outcome.dumped);
        assert!(outcome
            .reason
            .as_deref()
            .unwrap_or("")
            .contains("capacitors"));
    }

    #[test]
    fn corrupted_header_is_rejected() {
        let (spec, mut ssd) = device();
        let (table, buffer) = sample_state(&spec);
        let mut mgr = RecoveryManager::new();
        assert!(mgr.dump(&spec, &mut ssd, &table, &buffer).dumped);
        // Corrupt the header page in place: erase and rewrite garbage.
        let reserved = ssd.ftl().reserved_blocks();
        let nand = ssd.ftl_mut().nand_mut();
        nand.erase_block(reserved[0]).unwrap();
        nand.program_page(reserved[0].page(0), &vec![0xBAu8; 4096])
            .unwrap();
        assert!(mgr.restore(&spec, &mut ssd).is_none());
    }

    #[test]
    fn second_dump_bumps_generation() {
        let (spec, mut ssd) = device();
        let (table, buffer) = sample_state(&spec);
        let mut mgr = RecoveryManager::new();
        mgr.dump(&spec, &mut ssd, &table, &buffer);
        mgr.dump(&spec, &mut ssd, &table, &buffer);
        let (_, _, generation) = mgr.restore(&spec, &mut ssd).unwrap();
        assert_eq!(generation, 2);
    }

    #[test]
    fn energy_accounting_is_consistent() {
        let spec = TwoBSpec::small_for_tests();
        let needed = RecoveryManager::dump_energy_needed(&spec);
        assert!(needed > 0.0);
        assert!(needed < spec.capacitor_energy_j());
    }
}
