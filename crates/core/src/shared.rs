//! A thread-safe handle to a 2B-SSD, for multi-threaded host simulations.
//!
//! The simulation itself is single-threaded virtual time; this wrapper
//! lets *real* host threads (each advancing its own virtual client clock)
//! share one device, exactly as the paper's multi-client experiments
//! share the prototype. The mutex serializes model updates; virtual-time
//! queuing still comes from the device's busy-until resources, so two
//! threads issuing operations at overlapping virtual instants contend for
//! the same simulated firmware cores and channels.
//!
//! **Determinism caveat**: with real threads, the order model updates are
//! applied depends on OS scheduling, so virtual-time results are not
//! bit-reproducible run to run (functional correctness is unaffected).
//! For reproducible experiments use a single thread with
//! `twob_workloads::ClientPool`, which multiplexes virtual clients
//! deterministically.

use std::sync::Arc;

use parking_lot::Mutex;
use twob_ftl::Lba;
use twob_sim::SimTime;
use twob_ssd::{BlockRead, SsdError};

use crate::{
    ApiCompletion, DumpOutcome, EntryId, MappingEntry, MmioReadOutcome, MmioStoreOutcome,
    RecoveryReport, TwoBError, TwoBSsd, TwoBStats,
};

/// A cloneable, `Send + Sync` handle to one [`TwoBSsd`].
///
/// # Example
///
/// ```rust
/// use twob_core::{EntryId, SharedTwoBSsd, TwoBSsd};
/// use twob_ftl::Lba;
/// use twob_sim::SimTime;
///
/// let dev = SharedTwoBSsd::new(TwoBSsd::small_for_tests());
/// let worker = dev.clone();
/// let handle = std::thread::spawn(move || {
///     worker.ba_pin(SimTime::ZERO, EntryId(0), 0, Lba(0), 1)
/// });
/// handle.join().unwrap()?;
/// assert_eq!(dev.entries().len(), 1);
/// # Ok::<(), twob_core::TwoBError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SharedTwoBSsd {
    inner: Arc<Mutex<TwoBSsd>>,
}

impl SharedTwoBSsd {
    /// Wraps a device.
    pub fn new(dev: TwoBSsd) -> Self {
        SharedTwoBSsd {
            inner: Arc::new(Mutex::new(dev)),
        }
    }

    /// Unwraps the device if this is the last handle; otherwise returns
    /// the handle back.
    pub fn try_into_inner(self) -> Result<TwoBSsd, SharedTwoBSsd> {
        match Arc::try_unwrap(self.inner) {
            Ok(mutex) => Ok(mutex.into_inner()),
            Err(arc) => Err(SharedTwoBSsd { inner: arc }),
        }
    }

    /// See [`TwoBSsd::ba_pin`].
    ///
    /// # Errors
    ///
    /// As for [`TwoBSsd::ba_pin`].
    pub fn ba_pin(
        &self,
        now: SimTime,
        eid: EntryId,
        buffer_offset: u64,
        lba: Lba,
        pages: u32,
    ) -> Result<ApiCompletion, TwoBError> {
        self.inner
            .lock()
            .ba_pin(now, eid, buffer_offset, lba, pages)
    }

    /// See [`TwoBSsd::ba_pin_auto`].
    ///
    /// # Errors
    ///
    /// As for [`TwoBSsd::ba_pin_auto`].
    pub fn ba_pin_auto(
        &self,
        now: SimTime,
        lba: Lba,
        pages: u32,
    ) -> Result<(EntryId, ApiCompletion), TwoBError> {
        self.inner.lock().ba_pin_auto(now, lba, pages)
    }

    /// See [`TwoBSsd::ba_flush`].
    ///
    /// # Errors
    ///
    /// As for [`TwoBSsd::ba_flush`].
    pub fn ba_flush(&self, now: SimTime, eid: EntryId) -> Result<ApiCompletion, TwoBError> {
        self.inner.lock().ba_flush(now, eid)
    }

    /// See [`TwoBSsd::ba_sync`].
    ///
    /// # Errors
    ///
    /// As for [`TwoBSsd::ba_sync`].
    pub fn ba_sync(&self, now: SimTime, eid: EntryId) -> Result<ApiCompletion, TwoBError> {
        self.inner.lock().ba_sync(now, eid)
    }

    /// See [`TwoBSsd::ba_sync_range`].
    ///
    /// # Errors
    ///
    /// As for [`TwoBSsd::ba_sync_range`].
    pub fn ba_sync_range(
        &self,
        now: SimTime,
        eid: EntryId,
        rel_offset: u64,
        len: u64,
    ) -> Result<ApiCompletion, TwoBError> {
        self.inner.lock().ba_sync_range(now, eid, rel_offset, len)
    }

    /// See [`TwoBSsd::ba_entry_info`].
    ///
    /// # Errors
    ///
    /// As for [`TwoBSsd::ba_entry_info`].
    pub fn ba_entry_info(&self, eid: EntryId) -> Result<MappingEntry, TwoBError> {
        self.inner.lock().ba_entry_info(eid)
    }

    /// See [`TwoBSsd::ba_read_dma`].
    ///
    /// # Errors
    ///
    /// As for [`TwoBSsd::ba_read_dma`].
    pub fn ba_read_dma(
        &self,
        now: SimTime,
        eid: EntryId,
        rel_offset: u64,
        len: u64,
    ) -> Result<MmioReadOutcome, TwoBError> {
        self.inner.lock().ba_read_dma(now, eid, rel_offset, len)
    }

    /// See [`TwoBSsd::mmio_write`].
    ///
    /// # Errors
    ///
    /// As for [`TwoBSsd::mmio_write`].
    pub fn mmio_write(
        &self,
        now: SimTime,
        eid: EntryId,
        rel_offset: u64,
        data: &[u8],
    ) -> Result<MmioStoreOutcome, TwoBError> {
        self.inner.lock().mmio_write(now, eid, rel_offset, data)
    }

    /// See [`TwoBSsd::mmio_read`].
    ///
    /// # Errors
    ///
    /// As for [`TwoBSsd::mmio_read`].
    pub fn mmio_read(
        &self,
        now: SimTime,
        eid: EntryId,
        rel_offset: u64,
        len: u64,
    ) -> Result<MmioReadOutcome, TwoBError> {
        self.inner.lock().mmio_read(now, eid, rel_offset, len)
    }

    /// Block-path write; see [`twob_ssd::BlockDevice::write_pages`].
    ///
    /// # Errors
    ///
    /// As for the underlying device.
    pub fn write_pages(&self, now: SimTime, lba: Lba, data: &[u8]) -> Result<SimTime, SsdError> {
        use twob_ssd::BlockDevice as _;
        self.inner.lock().write_pages(now, lba, data)
    }

    /// Block-path read; see [`twob_ssd::BlockDevice::read_pages`].
    ///
    /// # Errors
    ///
    /// As for the underlying device.
    pub fn read_pages(&self, now: SimTime, lba: Lba, pages: u32) -> Result<BlockRead, SsdError> {
        use twob_ssd::BlockDevice as _;
        self.inner.lock().read_pages(now, lba, pages)
    }

    /// Block-path flush.
    pub fn flush(&self, now: SimTime) -> SimTime {
        use twob_ssd::BlockDevice as _;
        self.inner.lock().flush(now)
    }

    /// Live mapping entries.
    pub fn entries(&self) -> Vec<MappingEntry> {
        self.inner.lock().entries()
    }

    /// Byte-path counters.
    pub fn stats(&self) -> TwoBStats {
        self.inner.lock().stats()
    }

    /// See [`TwoBSsd::power_loss`].
    pub fn power_loss(&self, now: SimTime) -> DumpOutcome {
        self.inner.lock().power_loss(now)
    }

    /// See [`TwoBSsd::power_on`].
    pub fn power_on(&self, now: SimTime) -> RecoveryReport {
        self.inner.lock().power_on(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_is_send_sync_clone() {
        fn assert_send_sync<T: Send + Sync + Clone>() {}
        assert_send_sync::<SharedTwoBSsd>();
    }

    #[test]
    fn threads_share_one_device() {
        let dev = SharedTwoBSsd::new(TwoBSsd::small_for_tests());
        // Pin disjoint windows from four threads concurrently.
        let handles: Vec<_> = (0..4u8)
            .map(|i| {
                let dev = dev.clone();
                std::thread::spawn(move || {
                    let pin = dev
                        .ba_pin(
                            SimTime::ZERO,
                            EntryId(i),
                            u64::from(i) * 16384,
                            Lba(u64::from(i) * 8),
                            4,
                        )
                        .expect("pin");
                    let store = dev
                        .mmio_write(pin.complete_at, EntryId(i), 0, &[i + 1; 64])
                        .expect("store");
                    dev.ba_sync(store.retired_at, EntryId(i)).expect("sync")
                })
            })
            .collect();
        for h in handles {
            h.join().expect("thread");
        }
        assert_eq!(dev.entries().len(), 4);
        let stats = dev.stats();
        assert_eq!(stats.pins, 4);
        assert_eq!(stats.mmio_stores, 4);
        // Verify each window independently.
        let t = SimTime::from_nanos(10_000_000);
        for i in 0..4u8 {
            let read = dev.mmio_read(t, EntryId(i), 0, 64).expect("read");
            assert_eq!(read.data, vec![i + 1; 64]);
        }
    }

    #[test]
    fn try_into_inner_returns_last_handle() {
        let dev = SharedTwoBSsd::new(TwoBSsd::small_for_tests());
        let second = dev.clone();
        let dev = dev.try_into_inner().expect_err("two handles live");
        drop(second);
        assert!(dev.try_into_inner().is_ok());
    }
}
