//! The 2B-SSD: a dual, byte- and block-addressable solid-state drive.
//!
//! This crate is the paper's primary contribution, assembled from the
//! substrate crates:
//!
//! - The **BAR manager** opens BAR1 and programs an address translation
//!   unit so host MMIO lands in the BA-buffer (`twob-pcie`).
//! - The **BA-buffer manager** keeps an 8 MiB capacitor-backed region of
//!   the SSD-internal DRAM mapped onto NAND pages through a ≤8-entry
//!   mapping table, moving data over the device's internal datapath
//!   (`twob-ssd`'s internal path over `twob-ftl`/`twob-nand`).
//! - The **LBA checker** gates block writes to pinned ranges so the two
//!   I/O paths cannot silently diverge.
//! - The **read DMA engine** accelerates bulk reads out of the BA-buffer,
//!   which would otherwise crawl through 8-byte non-posted MMIO TLPs.
//! - The **recovery manager** dumps the BA-buffer and mapping table to a
//!   reserved NAND area on power loss — if the capacitors hold enough
//!   energy — and restores both at power-on.
//!
//! The host API mirrors the paper's §III-C: [`TwoBSsd::ba_pin`],
//! [`TwoBSsd::ba_flush`], [`TwoBSsd::ba_sync`], [`TwoBSsd::ba_entry_info`],
//! and [`TwoBSsd::ba_read_dma`], plus the MMIO byte path
//! ([`TwoBSsd::mmio_write`] / [`TwoBSsd::mmio_read`]) and the unchanged
//! NVMe block path (the [`twob_ssd::BlockDevice`] impl).
//!
//! # Example
//!
//! ```rust
//! use twob_core::{EntryId, TwoBSsd, TwoBSpec};
//! use twob_ftl::Lba;
//! use twob_sim::SimTime;
//!
//! let mut dev = TwoBSsd::small_for_tests();
//! let now = SimTime::ZERO;
//! // Pin one page of LBA 0 into the BA-buffer at offset 0.
//! let pin = dev.ba_pin(now, EntryId(0), 0, Lba(0), 1)?;
//! // Append a log record through the byte path and make it durable.
//! let store = dev.mmio_write(pin.complete_at, EntryId(0), 0, b"log-record")?;
//! let sync = dev.ba_sync(store.retired_at, EntryId(0))?;
//! // Later, flush the page to NAND and release the entry.
//! dev.ba_flush(sync.complete_at, EntryId(0))?;
//! # Ok::<(), twob_core::TwoBError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod calendar;
mod device;
mod dma;
mod error;
mod mapping;
mod pin;
mod recovery;
mod sharded;
mod shared;
pub mod spec;

pub use buffer::BaBuffer;
pub use calendar::{IoCalendar, IoCompletion, IoOp};
pub use device::{
    ApiCompletion, MmioReadOutcome, MmioStoreOutcome, PermissionPolicy, TwoBSsd, TwoBStats,
};
pub use dma::ReadDmaEngine;
pub use error::TwoBError;
pub use mapping::{EntryId, MappingEntry, MappingTable};
pub use pin::{PinEntry, PinError, PinState, PinTable, RegionFrontEnd, TenantId};
pub use recovery::{DumpOutcome, RecoveryManager, RecoveryReport};
pub use sharded::{GroupPlacement, ShardedIoCalendar};
pub use shared::SharedTwoBSsd;
pub use spec::TwoBSpec;
