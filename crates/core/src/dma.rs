//! The read DMA engine (paper §III-A3).

use twob_sim::{Server, SimTime};

use crate::TwoBSpec;

/// The device-side DMA engine that copies BA-buffer contents to a
/// host-designated destination, raising an interrupt on completion.
///
/// MMIO reads crawl (8-byte non-posted TLPs), so for bulk reads the host
/// programs this engine instead; the paper measures the win from ~2 KiB
/// upward (Fig 7(a)).
#[derive(Debug, Clone)]
pub struct ReadDmaEngine {
    engine: Server,
    transfers: u64,
    bytes: u64,
}

impl ReadDmaEngine {
    /// Creates an idle engine.
    pub fn new() -> Self {
        ReadDmaEngine {
            engine: Server::new(),
            transfers: 0,
            bytes: 0,
        }
    }

    /// Schedules a DMA copy of `len` bytes starting at `now`; returns the
    /// instant the completion interrupt reaches the host. Concurrent
    /// requests queue on the single engine.
    pub fn transfer(&mut self, spec: &TwoBSpec, now: SimTime, len: u64) -> SimTime {
        self.transfers += 1;
        self.bytes += len;
        self.engine.schedule(now, spec.dma_latency(len)).end
    }

    /// Transfers completed so far.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Bytes moved so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Default for ReadDmaEngine {
    fn default() -> Self {
        ReadDmaEngine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfers_queue_on_the_engine() {
        let spec = TwoBSpec::default();
        let mut dma = ReadDmaEngine::new();
        let a = dma.transfer(&spec, SimTime::ZERO, 4096);
        let b = dma.transfer(&spec, SimTime::ZERO, 4096);
        assert_eq!(
            b.saturating_since(a).as_nanos(),
            spec.dma_latency(4096).as_nanos()
        );
        assert_eq!(dma.transfers(), 2);
        assert_eq!(dma.bytes(), 8192);
    }

    #[test]
    fn latency_is_setup_dominated_for_small_reads() {
        let spec = TwoBSpec::default();
        let small = spec.dma_latency(64);
        let large = spec.dma_latency(4096);
        // Setup dominates: 64× the bytes costs well under 2× the time.
        assert!(large.as_nanos() < small.as_nanos() * 2);
    }
}
