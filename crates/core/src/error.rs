//! Error type for the 2B-SSD API.

use std::error::Error;
use std::fmt;

use twob_pcie::BarError;
use twob_ssd::SsdError;

use crate::EntryId;

/// Errors raised by the 2B-SSD host API.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TwoBError {
    /// The mapping table already holds an entry with this ID.
    EntryInUse(EntryId),
    /// No mapping entry with this ID exists.
    EntryNotFound(EntryId),
    /// The entry ID exceeds the table capacity (Table I: 8 entries).
    EntryIdOutOfRange {
        /// The offending ID.
        eid: EntryId,
        /// Table capacity.
        max_entries: usize,
    },
    /// The requested BA-buffer range overlaps an existing entry's range.
    BufferOverlap(EntryId),
    /// The requested LBA range overlaps an existing entry's pinned range.
    LbaOverlap(EntryId),
    /// The request does not fit in the BA-buffer.
    BufferOutOfRange {
        /// Requested buffer offset.
        offset: u64,
        /// Requested length in bytes.
        len: u64,
        /// BA-buffer capacity in bytes.
        capacity: u64,
    },
    /// Offsets and lengths of pins must be page-aligned.
    Unaligned {
        /// The unaligned value.
        value: u64,
    },
    /// An access fell outside the entry's pinned window.
    OutsideEntry {
        /// The entry accessed.
        eid: EntryId,
        /// Relative offset of the access.
        offset: u64,
        /// Length of the access.
        len: u64,
    },
    /// The caller lacks permission for the requested LBA range (the OS
    /// blocks such pins, paper §III-C).
    PermissionDenied {
        /// First LBA of the denied range.
        lba: u64,
    },
    /// A zero-length request.
    EmptyRequest,
    /// The device is powered off.
    PoweredOff,
    /// The block/back-end device failed.
    Ssd(SsdError),
    /// BAR/ATU address handling failed.
    Bar(BarError),
}

impl fmt::Display for TwoBError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TwoBError::EntryInUse(eid) => write!(f, "mapping entry {eid} already in use"),
            TwoBError::EntryNotFound(eid) => write!(f, "no mapping entry {eid}"),
            TwoBError::EntryIdOutOfRange { eid, max_entries } => {
                write!(f, "{eid} exceeds table capacity of {max_entries}")
            }
            TwoBError::BufferOverlap(eid) => {
                write!(f, "buffer range overlaps entry {eid}")
            }
            TwoBError::LbaOverlap(eid) => {
                write!(f, "LBA range overlaps entry {eid}")
            }
            TwoBError::BufferOutOfRange {
                offset,
                len,
                capacity,
            } => write!(
                f,
                "range [{offset}, {offset}+{len}) outside BA-buffer of {capacity} bytes"
            ),
            TwoBError::Unaligned { value } => {
                write!(f, "{value} is not 4 KiB page-aligned")
            }
            TwoBError::OutsideEntry { eid, offset, len } => write!(
                f,
                "access [{offset}, {offset}+{len}) outside the window pinned by {eid}"
            ),
            TwoBError::PermissionDenied { lba } => {
                write!(f, "no permission to pin lba {lba}")
            }
            TwoBError::EmptyRequest => write!(f, "zero-length request"),
            TwoBError::PoweredOff => write!(f, "device is powered off"),
            TwoBError::Ssd(e) => write!(f, "ssd: {e}"),
            TwoBError::Bar(e) => write!(f, "bar: {e}"),
        }
    }
}

impl Error for TwoBError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TwoBError::Ssd(e) => Some(e),
            TwoBError::Bar(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SsdError> for TwoBError {
    fn from(e: SsdError) -> Self {
        TwoBError::Ssd(e)
    }
}

impl From<BarError> for TwoBError {
    fn from(e: BarError) -> Self {
        TwoBError::Bar(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_nonempty() {
        for e in [
            TwoBError::EntryInUse(EntryId(1)),
            TwoBError::EmptyRequest,
            TwoBError::PermissionDenied { lba: 9 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn sources_chain() {
        use std::error::Error as _;
        let e = TwoBError::from(SsdError::PoweredOff);
        assert!(e.source().is_some());
    }
}
