//! Asynchronous submission of BA-path and block-path traffic over one event
//! calendar.
//!
//! The synchronous [`TwoBSsd`] API answers "when would this single call
//! complete?"; the [`IoCalendar`] answers the concurrent question: BA
//! flushes, syncs, read-DMAs, and ordinary block reads/writes are submitted
//! as timestamped events and dispatched in deterministic `(time, insertion)`
//! order against the device, whose shared servers — internal datapath
//! engine, dies, channels, firmware cores, DMA engine — make the two paths
//! contend exactly as the paper's dual-interface hardware does.
//!
//! # Example
//!
//! ```rust
//! use twob_core::{IoCalendar, IoOp, TwoBSsd};
//! use twob_ftl::Lba;
//! use twob_sim::SimTime;
//!
//! let mut dev = TwoBSsd::small_for_tests();
//! let (eid, pin) = dev.ba_pin_auto(SimTime::ZERO, Lba(0), 1).unwrap();
//! let mut cal = IoCalendar::new();
//! // A BA flush and a block write racing at the same instant.
//! cal.submit(pin.complete_at, IoOp::BaFlush { eid });
//! cal.submit(
//!     pin.complete_at,
//!     IoOp::BlockWrite { lba: Lba(8), data: vec![1u8; 4096] },
//! );
//! cal.drive(&mut dev);
//! assert_eq!(cal.drain_completions().len(), 2);
//! ```

use twob_ftl::Lba;
use twob_sim::{Executor, LatencyBreakdown, SimTime};
use twob_ssd::BlockDevice;

use crate::{EntryId, TwoBError, TwoBSsd};

/// One operation submitted to the calendar.
#[derive(Debug, Clone)]
pub enum IoOp {
    /// `BA_FLUSH(EID)` over the internal datapath.
    BaFlush {
        /// Entry to flush.
        eid: EntryId,
    },
    /// `BA_SYNC(EID)` of the entry's whole window.
    BaSync {
        /// Entry to sync.
        eid: EntryId,
    },
    /// `BA_SYNC` of `[rel_offset, rel_offset + len)` within the window.
    BaSyncRange {
        /// Entry to sync.
        eid: EntryId,
        /// Window-relative start.
        rel_offset: u64,
        /// Bytes to sync.
        len: u64,
    },
    /// `BA_READ_DMA(EID, rel_offset, len)`.
    BaReadDma {
        /// Entry to read.
        eid: EntryId,
        /// Window-relative start.
        rel_offset: u64,
        /// Bytes to transfer.
        len: u64,
    },
    /// Block-path read of `pages` pages at `lba`.
    BlockRead {
        /// First logical page.
        lba: Lba,
        /// Page count.
        pages: u32,
    },
    /// Block-path write of page-aligned `data` at `lba`.
    BlockWrite {
        /// First logical page.
        lba: Lba,
        /// Page-aligned payload.
        data: Vec<u8>,
    },
    /// Block-path flush: destages the device write cache (the NVMe FLUSH
    /// a block-WAL issues to make an appended record durable).
    BlockFlush,
    /// CXL.mem cache-line store of `data` at `rel_offset` in the entry's
    /// window.
    CxlStore {
        /// Entry to store into.
        eid: EntryId,
        /// Window-relative start.
        rel_offset: u64,
        /// Payload.
        data: Vec<u8>,
    },
    /// CXL.mem load of `[rel_offset, rel_offset + len)` from the entry's
    /// window (streamed 64-byte lines).
    CxlLoad {
        /// Entry to load from.
        eid: EntryId,
        /// Window-relative start.
        rel_offset: u64,
        /// Bytes to load.
        len: u64,
    },
    /// CXL persist barrier over `[rel_offset, rel_offset + len)` — the
    /// CXL analogue of [`IoOp::BaSyncRange`]'s durability point.
    CxlPersist {
        /// Entry to persist.
        eid: EntryId,
        /// Window-relative start.
        rel_offset: u64,
        /// Bytes to persist.
        len: u64,
    },
}

/// The completed form of one submitted operation.
#[derive(Debug, Clone)]
pub struct IoCompletion {
    /// Identifier returned by [`IoCalendar::submit`].
    pub id: u64,
    /// Submission instant.
    pub submitted: SimTime,
    /// Completion instant (equals `submitted` plus nothing on error).
    pub complete_at: SimTime,
    /// Payload for reads/read-DMAs.
    pub data: Option<Vec<u8>>,
    /// The device error, if the operation failed.
    pub error: Option<TwoBError>,
    /// Per-stage latency attribution for block-path operations (zero for
    /// byte-path operations, which commit through MMIO + BA-buffer DRAM
    /// and never queue on the die/channel servers).
    pub breakdown: LatencyBreakdown,
}

/// Calendar events: a submitted operation starting, or its completion
/// landing. Completions are events too, so a long-running operation's
/// completion interleaves in time order with later submissions.
#[derive(Debug, Clone)]
enum IoEvent {
    Start {
        id: u64,
        submitted: SimTime,
        op: IoOp,
    },
    Done {
        completion: IoCompletion,
    },
}

/// The shared calendar routing BA-path and block-path traffic to a
/// [`TwoBSsd`]. See the module docs for the model.
#[derive(Debug, Clone, Default)]
pub struct IoCalendar {
    exec: Executor<IoEvent>,
    next_id: u64,
    completions: Vec<IoCompletion>,
}

impl IoCalendar {
    /// Creates an empty calendar.
    pub fn new() -> Self {
        IoCalendar::default()
    }

    /// Schedules `op` to start at `at`, returning its completion id.
    pub fn submit(&mut self, at: SimTime, op: IoOp) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.exec.post(
            at,
            IoEvent::Start {
                id,
                submitted: at,
                op,
            },
        );
        id
    }

    /// Events still pending on the calendar.
    pub fn pending(&self) -> usize {
        self.exec.pending()
    }

    /// The calendar's current virtual instant.
    pub fn now(&self) -> SimTime {
        self.exec.now()
    }

    /// How many submissions or completions were posted at instants already
    /// in the past and clamped forward to `now`. A non-zero count after a
    /// [`IoCalendar::drive`] means a caller dated an operation before the
    /// calendar's clock — the operation still ran (at `now`), but the
    /// intended timeline was not the one simulated.
    pub fn clamped_posts(&self) -> u64 {
        self.exec.clamped_posts()
    }

    /// Drains the calendar against `dev`, dispatching every submitted
    /// operation at its start instant and recording completions in
    /// completion-time order. Returns how many operations completed during
    /// this drive.
    pub fn drive(&mut self, dev: &mut TwoBSsd) -> usize {
        let completions = &mut self.completions;
        let before = completions.len();
        self.exec.run(|ex, t, ev| match ev {
            IoEvent::Start { id, submitted, op } => {
                let completion = dispatch_completion(dev, t, id, submitted, op);
                ex.post(completion.complete_at, IoEvent::Done { completion });
            }
            IoEvent::Done { completion } => completions.push(completion),
        });
        self.completions.len() - before
    }

    /// Takes all recorded completions, ordered by completion time (ties in
    /// submission order).
    pub fn drain_completions(&mut self) -> Vec<IoCompletion> {
        std::mem::take(&mut self.completions)
    }
}

/// Runs one operation against the device at instant `t` and assembles its
/// completion record. Shared by the single-calendar [`IoCalendar`] and the
/// die-placed [`ShardedIoCalendar`](crate::ShardedIoCalendar), so both
/// price operations — and drive background GC/dump chains — identically.
pub(crate) fn dispatch_completion(
    dev: &mut TwoBSsd,
    t: SimTime,
    id: u64,
    submitted: SimTime,
    op: IoOp,
) -> IoCompletion {
    // Background GC steps and buffer dumps due by `t` fire first, so they
    // contend with this operation exactly as concurrent hardware would —
    // including across pure byte-path operations that never reach the SSD.
    dev.drive_background(t);
    let (outcome, data, breakdown) = match op {
        IoOp::BaFlush { eid } => (
            dev.ba_flush(t, eid).map(|c| c.complete_at),
            None,
            LatencyBreakdown::ZERO,
        ),
        IoOp::BaSync { eid } => (
            dev.ba_sync(t, eid).map(|c| c.complete_at),
            None,
            LatencyBreakdown::ZERO,
        ),
        IoOp::BaSyncRange {
            eid,
            rel_offset,
            len,
        } => (
            dev.ba_sync_range(t, eid, rel_offset, len)
                .map(|c| c.complete_at),
            None,
            LatencyBreakdown::ZERO,
        ),
        IoOp::BaReadDma {
            eid,
            rel_offset,
            len,
        } => match dev.ba_read_dma(t, eid, rel_offset, len) {
            Ok(out) => (Ok(out.complete_at), Some(out.data), LatencyBreakdown::ZERO),
            Err(e) => (Err(e), None, LatencyBreakdown::ZERO),
        },
        IoOp::BlockRead { lba, pages } => match dev.read_pages(t, lba, pages) {
            Ok(read) => (Ok(read.complete_at), Some(read.data), read.breakdown),
            Err(e) => (Err(e.into()), None, LatencyBreakdown::ZERO),
        },
        IoOp::BlockWrite { lba, data } => match dev.write_pages(t, lba, &data) {
            Ok(ack) => (Ok(ack), None, dev.ssd().last_breakdown()),
            Err(e) => (Err(e.into()), None, LatencyBreakdown::ZERO),
        },
        IoOp::BlockFlush => (Ok(dev.flush(t)), None, LatencyBreakdown::ZERO),
        IoOp::CxlStore {
            eid,
            rel_offset,
            data,
        } => (
            dev.cxl_store(t, eid, rel_offset, &data)
                .map(|c| c.retired_at),
            None,
            LatencyBreakdown::ZERO,
        ),
        IoOp::CxlLoad {
            eid,
            rel_offset,
            len,
        } => match dev.cxl_load(t, eid, rel_offset, len) {
            Ok(out) => (Ok(out.complete_at), Some(out.data), LatencyBreakdown::ZERO),
            Err(e) => (Err(e), None, LatencyBreakdown::ZERO),
        },
        IoOp::CxlPersist {
            eid,
            rel_offset,
            len,
        } => (
            dev.cxl_persist(t, eid, rel_offset, len)
                .map(|c| c.complete_at),
            None,
            LatencyBreakdown::ZERO,
        ),
    };
    match outcome {
        Ok(complete_at) => IoCompletion {
            id,
            submitted,
            complete_at,
            data,
            error: None,
            breakdown,
        },
        Err(error) => IoCompletion {
            id,
            submitted,
            complete_at: t,
            data: None,
            error: Some(error),
            breakdown: LatencyBreakdown::ZERO,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twob_sim::SimDuration;

    fn pinned_dev(lbas: &[u64]) -> (TwoBSsd, Vec<EntryId>) {
        let mut dev = TwoBSsd::small_for_tests();
        let mut t = SimTime::ZERO;
        let mut eids = Vec::new();
        for &lba in lbas {
            let (eid, pin) = dev.ba_pin_auto(t, Lba(lba), 1).unwrap();
            t = pin.complete_at;
            eids.push(eid);
        }
        (dev, eids)
    }

    /// Builds a device with block data at `lba` (durably destaged) and one
    /// 8-page BA entry pinned, ready to flush.
    fn flush_race_dev(lba: u64) -> (TwoBSsd, EntryId) {
        let mut dev = TwoBSsd::small_for_tests();
        let ack = dev
            .write_pages(SimTime::ZERO, Lba(lba), &vec![0x5Au8; 4096])
            .unwrap();
        let settled = dev.flush(ack);
        let (eid, pin) = dev.ba_pin_auto(settled, Lba(64), 8).unwrap();
        assert!(pin.complete_at < SimTime::from_nanos(1_000_000));
        (dev, eid)
    }

    #[test]
    fn ba_and_block_traffic_contend_on_shared_device() {
        let start = SimTime::from_nanos(1_000_000);
        // A lone block read on an otherwise idle device...
        let (mut solo, _) = flush_race_dev(16);
        let lone = solo.read_pages(start, Lba(16), 1).unwrap().complete_at;

        // ...versus the same read racing an 8-page BA flush whose NAND
        // programs occupy the dies and channels the read needs.
        let (mut dev, eid) = flush_race_dev(16);
        let mut cal = IoCalendar::new();
        cal.submit(start, IoOp::BaFlush { eid });
        let read_id = cal.submit(
            start,
            IoOp::BlockRead {
                lba: Lba(16),
                pages: 1,
            },
        );
        let completed = cal.drive(&mut dev);
        assert_eq!(completed, 2);
        assert_eq!(cal.clamped_posts(), 0, "no op was dated before the clock");
        let done = cal.drain_completions();
        let contended = done.iter().find(|c| c.id == read_id).unwrap();
        assert!(
            contended.error.is_none(),
            "read failed: {:?}",
            contended.error
        );
        assert!(
            contended.complete_at > lone,
            "block read should queue behind BA-flush NAND work: \
             contended {:?} vs lone {lone:?}",
            contended.complete_at,
        );
    }

    #[test]
    fn completions_are_recorded_in_completion_order() {
        let (mut dev, eids) = pinned_dev(&[0]);
        let start = SimTime::from_nanos(1_000_000);
        let mut cal = IoCalendar::new();
        // A slow flush (durable-on-NAND) submitted first and a block write
        // (acks at cache insert) submitted second: drain order follows
        // completion time, not submission order.
        let flush_id = cal.submit(start, IoOp::BaFlush { eid: eids[0] });
        let write_id = cal.submit(
            start,
            IoOp::BlockWrite {
                lba: Lba(8),
                data: vec![9u8; 4096],
            },
        );
        cal.drive(&mut dev);
        let done = cal.drain_completions();
        assert_eq!(done.len(), 2);
        assert!(done[0].complete_at <= done[1].complete_at);
        assert_eq!(done[0].id, write_id, "fast ack should drain first");
        assert_eq!(done[1].id, flush_id);
    }

    #[test]
    fn errors_complete_immediately_with_cause() {
        let mut dev = TwoBSsd::small_for_tests();
        let mut cal = IoCalendar::new();
        let id = cal.submit(
            SimTime::ZERO,
            IoOp::BlockRead {
                lba: Lba(0),
                pages: 1,
            },
        );
        cal.submit(
            SimTime::ZERO,
            IoOp::BaFlush {
                eid: EntryId(7), // nothing pinned
            },
        );
        cal.drive(&mut dev);
        let done = cal.drain_completions();
        assert_eq!(done.len(), 2);
        for c in &done {
            assert!(c.error.is_some(), "op {} should have failed", c.id);
            assert_eq!(c.complete_at, SimTime::ZERO);
        }
        assert!(done.iter().any(|c| c.id == id));
    }

    #[test]
    fn read_dma_round_trips_data_through_calendar() {
        let (mut dev, eids) = pinned_dev(&[0]);
        let eid = eids[0];
        let t = SimTime::from_nanos(1_000_000);
        let store = dev.mmio_write(t, eid, 0, b"calendar bytes").unwrap();
        let mut cal = IoCalendar::new();
        // Chain sync → DMA through the calendar itself.
        cal.submit(store.retired_at, IoOp::BaSync { eid });
        cal.drive(&mut dev);
        let sync_done = cal.drain_completions().pop().unwrap();
        assert!(sync_done.error.is_none());
        cal.submit(
            sync_done.complete_at,
            IoOp::BaReadDma {
                eid,
                rel_offset: 0,
                len: 14,
            },
        );
        cal.drive(&mut dev);
        let done = cal.drain_completions();
        assert_eq!(done[0].data.as_deref(), Some(&b"calendar bytes"[..]));
    }

    #[test]
    fn cxl_ops_round_trip_data_through_calendar() {
        let (mut dev, eids) = pinned_dev(&[0]);
        let eid = eids[0];
        let t = SimTime::from_nanos(1_000_000);
        let mut cal = IoCalendar::new();
        cal.submit(
            t,
            IoOp::CxlStore {
                eid,
                rel_offset: 0,
                data: b"cxl bytes".to_vec(),
            },
        );
        cal.drive(&mut dev);
        let store = cal.drain_completions().pop().unwrap();
        assert!(store.error.is_none(), "store failed: {:?}", store.error);
        cal.submit(
            store.complete_at,
            IoOp::CxlPersist {
                eid,
                rel_offset: 0,
                len: 9,
            },
        );
        cal.drive(&mut dev);
        let persist = cal.drain_completions().pop().unwrap();
        assert!(persist.error.is_none());
        assert!(persist.complete_at > store.complete_at);
        cal.submit(
            persist.complete_at,
            IoOp::CxlLoad {
                eid,
                rel_offset: 0,
                len: 9,
            },
        );
        cal.drive(&mut dev);
        let load = cal.drain_completions().pop().unwrap();
        assert_eq!(load.data.as_deref(), Some(&b"cxl bytes"[..]));
        assert_eq!(cal.clamped_posts(), 0);
        let stats = dev.stats();
        assert_eq!(
            (stats.cxl_stores, stats.cxl_persists, stats.cxl_loads),
            (1, 1, 1)
        );
    }

    #[test]
    fn cxl_commit_undercuts_mmio_commit_on_the_calendar() {
        // The tier claim at the op level: store + persist through CXL
        // completes earlier than the same bytes through MMIO + BA_SYNC.
        let commit = |op_store: fn(EntryId) -> IoOp, op_sync: fn(EntryId) -> IoOp| {
            let (mut dev, eids) = pinned_dev(&[0]);
            let t = SimTime::from_nanos(1_000_000);
            let mut cal = IoCalendar::new();
            cal.submit(t, op_store(eids[0]));
            cal.drive(&mut dev);
            let store = cal.drain_completions().pop().unwrap();
            cal.submit(store.complete_at, op_sync(eids[0]));
            cal.drive(&mut dev);
            cal.drain_completions().pop().unwrap().complete_at
        };
        let cxl = commit(
            |eid| IoOp::CxlStore {
                eid,
                rel_offset: 0,
                data: vec![7u8; 128],
            },
            |eid| IoOp::CxlPersist {
                eid,
                rel_offset: 0,
                len: 128,
            },
        );
        let mmio = {
            let (mut dev, eids) = pinned_dev(&[0]);
            let t = SimTime::from_nanos(1_000_000);
            let store = dev.mmio_write(t, eids[0], 0, &[7u8; 128]).unwrap();
            let mut cal = IoCalendar::new();
            cal.submit(
                store.retired_at,
                IoOp::BaSyncRange {
                    eid: eids[0],
                    rel_offset: 0,
                    len: 128,
                },
            );
            cal.drive(&mut dev);
            cal.drain_completions().pop().unwrap().complete_at
        };
        assert!(cxl < mmio, "cxl commit {cxl:?} should beat mmio {mmio:?}");
    }

    /// A device with background GC enabled, one BA entry pinned at the top
    /// of LBA space, and (optionally) enough block-write churn below it to
    /// put GC permanently in motion.
    fn gc_device(churn_rounds: u64) -> (TwoBSsd, EntryId, SimTime) {
        use twob_ssd::{GcPolicy, SsdConfig};
        let cfg = SsdConfig::base_2b()
            .small()
            .with_background_gc(GcPolicy::Greedy);
        let mut dev = TwoBSsd::new(cfg, crate::TwoBSpec::small_for_tests());
        let lbas = dev.capacity_pages();
        let (eid, pin) = dev.ba_pin_auto(SimTime::ZERO, Lba(lbas - 1), 1).unwrap();
        let mut t = pin.complete_at;
        let churn_lbas = lbas - 1; // never touch the gated pinned page
        for i in 0..churn_lbas {
            t = dev.write_pages(t, Lba(i), &vec![i as u8; 4096]).unwrap();
        }
        for i in 0..churn_rounds {
            let lba = (i * 7) % churn_lbas;
            t = dev
                .write_pages(t, Lba(lba), &vec![!(i as u8); 4096])
                .unwrap();
        }
        (dev, eid, t)
    }

    #[test]
    fn ba_sync_latency_is_flat_under_gc_storm() {
        // The byte path commits through MMIO + BA-buffer DRAM only; a GC
        // storm saturating the dies must not move its latency at all.
        let (mut idle, eid_i, _) = gc_device(0);
        let (mut storm, eid_s, t_storm) = gc_device(600);
        assert!(
            storm.ssd().ftl().stats().erases > 0,
            "storm device never collected garbage"
        );
        // Same instant on both devices, far enough out that the idle device
        // is settled and the storm device is mid-churn backlog.
        let probe = t_storm;
        let measure = |dev: &mut TwoBSsd, eid: EntryId| {
            let store = dev.mmio_write(probe, eid, 0, b"flat?").unwrap();
            let sync = dev.ba_sync_range(store.retired_at, eid, 0, 5).unwrap();
            sync.complete_at.saturating_since(probe)
        };
        let idle_lat = measure(&mut idle, eid_i);
        let storm_lat = measure(&mut storm, eid_s);
        assert_eq!(
            idle_lat, storm_lat,
            "BA-path commit latency moved under GC: idle {idle_lat} vs storm {storm_lat}"
        );
    }

    #[test]
    fn calendar_dispatch_advances_background_gc() {
        let (mut dev, eid, t) = gc_device(600);
        let erases_before = dev.ssd().ftl().stats().erases;
        // A lone byte-path op far in the future: dispatch must still fire
        // the GC steps due by then, even though BA_SYNC never touches NAND.
        let mut cal = IoCalendar::new();
        cal.submit(t + SimDuration::from_millis(50), IoOp::BaSync { eid });
        cal.drive(&mut dev);
        let done = cal.drain_completions();
        assert!(done[0].error.is_none(), "sync failed: {:?}", done[0].error);
        assert!(
            dev.ssd().ftl().stats().erases > erases_before,
            "calendar dispatch did not drive pending background GC"
        );
    }

    #[test]
    fn calendar_is_deterministic() {
        let run = || {
            let (mut dev, eids) = pinned_dev(&[0, 2]);
            let start = SimTime::from_nanos(1_000_000);
            let mut cal = IoCalendar::new();
            cal.submit(start, IoOp::BaFlush { eid: eids[0] });
            cal.submit(
                start,
                IoOp::BlockWrite {
                    lba: Lba(8),
                    data: vec![3u8; 4096],
                },
            );
            cal.submit(start, IoOp::BaSync { eid: eids[1] });
            cal.submit(
                start,
                IoOp::BlockRead {
                    lba: Lba(8),
                    pages: 1,
                },
            );
            cal.drive(&mut dev);
            cal.drain_completions()
                .into_iter()
                .map(|c| (c.id, c.complete_at, c.error.is_some()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
