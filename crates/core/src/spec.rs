//! The 2B-SSD specification (paper Table I) and calibration constants.

use serde::{Deserialize, Serialize};
use twob_sim::SimDuration;

/// The device specification of the 2B-SSD prototype, mirroring Table I of
/// the paper, plus the calibration constants our model needs that the
/// table leaves implicit.
///
/// # Example
///
/// ```rust
/// use twob_core::TwoBSpec;
///
/// let spec = TwoBSpec::default();
/// assert_eq!(spec.ba_buffer_bytes, 8 << 20);
/// assert_eq!(spec.max_entries, 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TwoBSpec {
    /// BA-buffer capacity in bytes (Table I: 8 MB).
    pub ba_buffer_bytes: u64,
    /// Maximum BA-buffer mapping entries (Table I: 8).
    pub max_entries: usize,
    /// Electrolytic back-up capacitors, in microfarads (Table I: 270 µF ×3).
    pub capacitors_uf: f64,
    /// Number of capacitors.
    pub capacitor_count: u32,
    /// Capacitor working voltage, volts.
    pub capacitor_volts: f64,
    /// Energy to dump one 4 KiB page to NAND during a power-loss dump,
    /// joules (program + controller overhead).
    pub dump_energy_per_page_j: f64,
    /// Firmware overhead of one BA API call (ioctl + vendor-unique command
    /// processing + table update).
    pub api_overhead: SimDuration,
    /// Read-DMA engine: setup cost (firmware programs the engine).
    pub dma_setup: SimDuration,
    /// Read-DMA engine: transfer bandwidth, bytes/s.
    pub dma_bytes_per_sec: u64,
    /// Read-DMA engine: completion interrupt delivery cost.
    pub dma_interrupt: SimDuration,
}

impl Default for TwoBSpec {
    fn default() -> Self {
        TwoBSpec {
            ba_buffer_bytes: 8 << 20,
            max_entries: 8,
            capacitors_uf: 270.0,
            capacitor_count: 3,
            capacitor_volts: 12.0,
            dump_energy_per_page_j: 20e-6,
            api_overhead: SimDuration::from_micros(2),
            // Calibration (paper Fig 7(a)): BA_READ_DMA of 4 KiB ≈ 58 µs,
            // flat below 2 KiB where MMIO reads win, 2.6× faster than MMIO
            // at 4 KiB.
            dma_setup: SimDuration::from_micros(55),
            dma_bytes_per_sec: 2_500_000_000,
            dma_interrupt: SimDuration::from_micros(1),
        }
    }
}

impl TwoBSpec {
    /// A shrunken spec for fast tests: 64 KiB BA-buffer, weaker DMA setup,
    /// same entry count. Pairs with `SsdConfig::base_2b().small()`.
    pub fn small_for_tests() -> Self {
        TwoBSpec {
            ba_buffer_bytes: 64 << 10,
            ..TwoBSpec::default()
        }
    }

    /// Total energy stored in the back-up capacitors, joules
    /// (`n × ½CV²`).
    pub fn capacitor_energy_j(&self) -> f64 {
        f64::from(self.capacitor_count)
            * 0.5
            * (self.capacitors_uf * 1e-6)
            * self.capacitor_volts
            * self.capacitor_volts
    }

    /// BA-buffer size in 4 KiB pages.
    pub fn ba_buffer_pages(&self) -> u64 {
        self.ba_buffer_bytes / 4096
    }

    /// Latency of a read-DMA transfer of `len` bytes.
    pub fn dma_latency(&self, len: u64) -> SimDuration {
        self.dma_setup
            + SimDuration::from_nanos_f64(len as f64 * 1e9 / self.dma_bytes_per_sec as f64)
            + self.dma_interrupt
    }

    /// Renders the paper's Table I as label/value rows.
    pub fn table_rows(&self) -> Vec<(String, String)> {
        vec![
            ("Host interface".into(), "PCIe Gen.3 x4".into()),
            ("Protocol".into(), "NVMe 1.2".into()),
            ("Capacity".into(), "800 GB (simulated)".into()),
            (
                "SSD architecture".into(),
                "Multiple channels/ways/cores".into(),
            ),
            ("Storage medium".into(), "Single-bit NAND flash".into()),
            (
                "Capacitance of electrolytic capacitors".into(),
                format!("{} uF x {}", self.capacitors_uf, self.capacitor_count),
            ),
            (
                "BA-buffer size".into(),
                format!("{} MB", self.ba_buffer_bytes >> 20),
            ),
            (
                "Max. entries of BA-buffer".into(),
                self.max_entries.to_string(),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacitor_energy_matches_table_i() {
        let spec = TwoBSpec::default();
        // 3 × ½ × 270 µF × 12 V² ≈ 58.3 mJ.
        let e = spec.capacitor_energy_j();
        assert!((0.055..0.062).contains(&e), "energy {e} J");
    }

    #[test]
    fn capacitors_cover_full_buffer_dump() {
        let spec = TwoBSpec::default();
        // Dump = buffer pages + 1 header page.
        let need = (spec.ba_buffer_pages() + 1) as f64 * spec.dump_energy_per_page_j;
        assert!(
            need < spec.capacitor_energy_j(),
            "dump needs {need} J > budget {} J",
            spec.capacitor_energy_j()
        );
    }

    #[test]
    fn dma_4k_matches_paper() {
        let spec = TwoBSpec::default();
        let us = spec.dma_latency(4096).as_micros_f64();
        assert!(
            (55.0..61.0).contains(&us),
            "4K DMA read {us:.1} us, paper ~58"
        );
    }

    #[test]
    fn dma_beats_mmio_from_2k_paper_threshold() {
        let spec = TwoBSpec::default();
        let timings = twob_pcie::PcieTimings::default();
        // Below 2 KiB MMIO wins; at and above 2 KiB the DMA engine wins.
        assert!(timings.mmio_read(1024) < spec.dma_latency(1024));
        assert!(spec.dma_latency(2048) < timings.mmio_read(2048));
        assert!(spec.dma_latency(4096) < timings.mmio_read(4096));
    }

    #[test]
    fn table_rows_cover_table_i() {
        let rows = TwoBSpec::default().table_rows();
        assert_eq!(rows.len(), 8);
        assert!(rows
            .iter()
            .any(|(k, v)| k.contains("BA-buffer size") && v == "8 MB"));
    }
}
