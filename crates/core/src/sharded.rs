//! Die-placed parallel submission: the [`IoCalendar`] model sharded across
//! per-die-group time domains.
//!
//! [`IoCalendar`]: crate::IoCalendar
//!
//! A real 2B-SSD's NAND array is a grid of independent dies; traffic that
//! lands on disjoint die groups only ever meets at shared host-side
//! resources. This module exploits that: the flash array is carved into
//! *die groups* (see [`twob_ssd::SsdConfig::die_slice`]), each group gets
//! its own [`TwoBSsd`] device model, and a [`GroupPlacement`] assigns every
//! group to a shard of a [`ShardedExecutor`]. Operations are routed to the
//! shard that owns their group and priced there by the *same*
//! `dispatch_completion` the single calendar uses — including the
//! background GC/dump chains, which therefore ride with their die group on
//! its shard and never cross a shard boundary.
//!
//! Only genuinely cross-shard traffic goes through outboxes:
//!
//! - **completion delivery** — every completion is observed by the host
//!   (shard 0) one interconnect delay after it completes;
//! - **chained submissions** — follow-up operations registered with
//!   [`ShardedIoCalendar::submit_after`] are released by the host upon
//!   observing the parent completion and sent to the owning shard another
//!   interconnect delay later.
//!
//! The interconnect delay doubles as the executor's lookahead. Crucially,
//! the host observation path is uniform: completions pay the interconnect
//! delay even when their group lives on shard 0 (the executor turns such
//! self-sends into ordinary local posts), so per-group digests, host
//! observation order, and latency totals are *placement-invariant* — any
//! assignment of groups to any number of shards, driven sequentially, in
//! parallel, or under the lock-step oracle, yields byte-identical results.

use twob_sim::{LatencyBreakdown, ShardCtx, ShardedExecutor, SimDuration, SimTime};

use crate::calendar::dispatch_completion;
use crate::{IoCompletion, IoOp, TwoBSsd};

/// Assignment of die groups to shards.
///
/// Group indices correspond to the devices handed to
/// [`ShardedIoCalendar::new`] — typically one per die slice of the full
/// geometry, placed by die index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupPlacement {
    shard_of: Vec<usize>,
    shards: usize,
}

impl GroupPlacement {
    /// Places group `g` on shard `shard_of[g]` across `shards` shards.
    ///
    /// # Panics
    ///
    /// If there are no groups, no shards, or an assignment is out of range.
    pub fn new(shard_of: Vec<usize>, shards: usize) -> Self {
        assert!(!shard_of.is_empty(), "a placement needs at least one group");
        assert!(shards > 0, "a placement needs at least one shard");
        for (g, &s) in shard_of.iter().enumerate() {
            assert!(s < shards, "group {g} placed on out-of-range shard {s}");
        }
        GroupPlacement { shard_of, shards }
    }

    /// Places `groups` die groups round-robin across `shards` shards —
    /// the natural die-index placement, since group `g` covers dies
    /// `[g * dies_per_group, (g + 1) * dies_per_group)`.
    pub fn round_robin(groups: usize, shards: usize) -> Self {
        assert!(groups > 0, "a placement needs at least one group");
        assert!(shards > 0, "a placement needs at least one shard");
        GroupPlacement {
            shard_of: (0..groups).map(|g| g % shards).collect(),
            shards,
        }
    }

    /// Number of die groups.
    pub fn groups(&self) -> usize {
        self.shard_of.len()
    }

    /// Number of shards (time domains).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning group `g`.
    pub fn shard_of(&self, g: usize) -> usize {
        self.shard_of[g]
    }
}

/// One event on the sharded calendar.
#[derive(Debug, Clone)]
enum Ev {
    /// An operation starting on its owning shard.
    Start {
        id: u64,
        submitted: SimTime,
        group: usize,
        op: IoOp,
    },
    /// Its completion landing on the same shard (local post).
    Done {
        group: usize,
        completion: IoCompletion,
    },
    /// The host (shard 0) observing the completion one interconnect later.
    Observe {
        id: u64,
        complete_at: SimTime,
        failed: bool,
    },
}

/// A follow-up operation gated on a parent completion, held by the host
/// until the parent's `Observe` fires.
#[derive(Debug, Clone)]
struct Chain {
    after: u64,
    delay: SimDuration,
    group: usize,
    op: IoOp,
    id: u64,
}

/// Per-group accumulation: completion digest, completed-operation count,
/// and component-wise latency totals.
#[derive(Debug, Clone)]
struct GroupTotals {
    group: usize,
    digest: u64,
    completed: u64,
    breakdown: LatencyBreakdown,
}

/// Per-shard state: the die-group devices this shard owns, their running
/// totals, and (on shard 0 only) the host observation log and chain table.
#[derive(Debug)]
struct ShardState {
    devices: Vec<(usize, TwoBSsd)>,
    totals: Vec<GroupTotals>,
    observed: Vec<(u64, u64, bool)>,
    chains: Vec<Chain>,
}

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn mix(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(FNV_PRIME).rotate_left(23)
}

fn mix_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for chunk in bytes.chunks(8) {
        let mut buf = [0u8; 8];
        buf[..chunk.len()].copy_from_slice(chunk);
        h = mix(h, u64::from_le_bytes(buf));
    }
    h
}

/// Folds one completion into a group digest: completion instant, payload
/// bytes, and (via its debug form) the exact error, if any.
fn fold_completion(h: u64, c: &IoCompletion) -> u64 {
    let mut h = mix(h, c.complete_at.as_nanos());
    match (&c.data, &c.error) {
        (Some(data), _) => h = mix_bytes(mix(h, data.len() as u64), data),
        (None, Some(e)) => h = mix_bytes(mix(h, u64::MAX), format!("{e:?}").as_bytes()),
        (None, None) => h = mix(h, 1),
    }
    h
}

/// The sharded counterpart of [`crate::IoCalendar`]: die-group devices
/// placed on per-shard calendars, operations routed to their owning shard,
/// completions delivered to the host through outboxes. See the module docs
/// for the model and the placement-invariance argument.
#[derive(Debug)]
pub struct ShardedIoCalendar {
    pdes: ShardedExecutor<Ev>,
    states: Vec<ShardState>,
    placement: GroupPlacement,
    interconnect: SimDuration,
    next_id: u64,
}

impl ShardedIoCalendar {
    /// Builds a sharded calendar over `devices` (one per die group, in
    /// group order) under `placement`, with `interconnect` as both the
    /// host-observation delay and the executor lookahead.
    ///
    /// # Panics
    ///
    /// If the device count does not match the placement's group count, or
    /// `interconnect` is zero (a PDES needs positive lookahead).
    pub fn new(
        devices: Vec<TwoBSsd>,
        placement: GroupPlacement,
        interconnect: SimDuration,
    ) -> Self {
        assert_eq!(
            devices.len(),
            placement.groups(),
            "one device per die group"
        );
        let shards = placement.shards();
        let mut states: Vec<ShardState> = (0..shards)
            .map(|_| ShardState {
                devices: Vec::new(),
                totals: Vec::new(),
                observed: Vec::new(),
                chains: Vec::new(),
            })
            .collect();
        for (g, dev) in devices.into_iter().enumerate() {
            let s = placement.shard_of(g);
            states[s].devices.push((g, dev));
            states[s].totals.push(GroupTotals {
                group: g,
                digest: 0xcbf2_9ce4_8422_2325,
                completed: 0,
                breakdown: LatencyBreakdown::ZERO,
            });
        }
        ShardedIoCalendar {
            pdes: ShardedExecutor::new(shards, interconnect),
            states,
            placement,
            interconnect,
            next_id: 0,
        }
    }

    /// Schedules `op` on group `group` at `at`, returning its id.
    pub fn submit(&mut self, at: SimTime, group: usize, op: IoOp) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.pdes.seed(
            self.placement.shard_of(group),
            at,
            Ev::Start {
                id,
                submitted: at,
                group,
                op,
            },
        );
        id
    }

    /// Schedules `op` on group `group` to start `delay` after the host
    /// observes the completion of operation `after` — a cross-shard
    /// dependency released through the outboxes. Returns the new id.
    ///
    /// Chains must be registered before the run that completes `after`;
    /// [`ShardedIoCalendar::unresolved_chains`] reports leftovers.
    pub fn submit_after(&mut self, after: u64, delay: SimDuration, group: usize, op: IoOp) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.states[0].chains.push(Chain {
            after,
            delay,
            group,
            op,
            id,
        });
        id
    }

    fn handler(
        &self,
    ) -> impl Fn(&mut ShardCtx<'_, Ev>, &mut ShardState, SimTime, Ev) + Sync + use<> {
        let placement = self.placement.clone();
        let interconnect = self.interconnect;
        move |ctx, state, t, ev| match ev {
            Ev::Start {
                id,
                submitted,
                group,
                op,
            } => {
                let (_, dev) = state
                    .devices
                    .iter_mut()
                    .find(|(g, _)| *g == group)
                    .expect("operation routed to a shard that does not own its group");
                let completion = dispatch_completion(dev, t, id, submitted, op);
                let complete_at = completion.complete_at;
                let failed = completion.error.is_some();
                ctx.post(complete_at, Ev::Done { group, completion });
                // Uniform host delivery: even shard-0 groups pay the
                // interconnect delay (the executor turns self-sends into
                // local posts), keeping observation placement-invariant.
                ctx.send(
                    0,
                    complete_at + interconnect,
                    Ev::Observe {
                        id,
                        complete_at,
                        failed,
                    },
                );
            }
            Ev::Done { group, completion } => {
                let totals = state
                    .totals
                    .iter_mut()
                    .find(|tot| tot.group == group)
                    .expect("completion landed on a shard that does not own its group");
                totals.digest = fold_completion(totals.digest, &completion);
                totals.completed += 1;
                totals.breakdown.accumulate(&completion.breakdown);
            }
            Ev::Observe {
                id,
                complete_at,
                failed,
            } => {
                state.observed.push((id, complete_at.as_nanos(), failed));
                let mut i = 0;
                while i < state.chains.len() {
                    if state.chains[i].after == id {
                        let c = state.chains.remove(i);
                        ctx.send(
                            placement.shard_of(c.group),
                            t + interconnect + c.delay,
                            Ev::Start {
                                id: c.id,
                                submitted: t + interconnect + c.delay,
                                group: c.group,
                                op: c.op,
                            },
                        );
                    } else {
                        i += 1;
                    }
                }
            }
        }
    }

    /// Drains every shard sequentially with adaptive round batching.
    pub fn run(&mut self) {
        let handler = self.handler();
        self.pdes.run(&mut self.states, &handler);
    }

    /// Drains every shard on up to `threads` worker threads (clamped to
    /// the shard count and the host's available parallelism), producing
    /// the identical schedule to [`ShardedIoCalendar::run`].
    pub fn run_parallel(&mut self, threads: usize) {
        let handler = self.handler();
        self.pdes.run_parallel(&mut self.states, &handler, threads);
    }

    /// Drains every shard under the fine-grained lock-step oracle (one
    /// lookahead window per round) — the differential baseline.
    pub fn run_lockstep(&mut self) {
        let handler = self.handler();
        self.pdes.run_lockstep(&mut self.states, &handler);
    }

    /// Number of die groups.
    pub fn groups(&self) -> usize {
        self.placement.groups()
    }

    /// The placement in force.
    pub fn placement(&self) -> &GroupPlacement {
        &self.placement
    }

    /// Synchronisation rounds executed so far.
    pub fn rounds(&self) -> u64 {
        self.pdes.rounds()
    }

    /// Rounds in which the unique earliest shard got an extended horizon
    /// and could drain multiple lookahead windows.
    pub fn batched_rounds(&self) -> u64 {
        self.pdes.batched_rounds()
    }

    /// Events processed across all shards.
    pub fn processed(&self) -> u64 {
        self.pdes.processed()
    }

    /// Posts clamped forward to a shard's current instant — must stay zero
    /// on every path; a non-zero count means a stale cross-shard delivery.
    pub fn clamped_posts(&self) -> u64 {
        self.pdes.clamped_posts()
    }

    /// Completed operations across all groups.
    pub fn completed(&self) -> u64 {
        self.states
            .iter()
            .flat_map(|s| s.totals.iter())
            .map(|t| t.completed)
            .sum()
    }

    /// `(group, digest)` pairs in group order: a digest over every
    /// completion the group produced (instant, payload, error).
    pub fn group_digests(&self) -> Vec<(usize, u64)> {
        let mut out: Vec<(usize, u64)> = self
            .states
            .iter()
            .flat_map(|s| s.totals.iter())
            .map(|t| (t.group, t.digest))
            .collect();
        out.sort_unstable_by_key(|&(g, _)| g);
        out
    }

    /// `(group, totals)` pairs in group order: component-wise
    /// [`LatencyBreakdown`] sums over the group's completions.
    pub fn breakdown_totals(&self) -> Vec<(usize, LatencyBreakdown)> {
        let mut out: Vec<(usize, LatencyBreakdown)> = self
            .states
            .iter()
            .flat_map(|s| s.totals.iter())
            .map(|t| (t.group, t.breakdown))
            .collect();
        out.sort_unstable_by_key(|&(g, _)| g);
        out
    }

    /// Digest of the host's observation log, canonically ordered by
    /// `(completion instant, id)` so causally unrelated same-instant
    /// observations cannot perturb it.
    pub fn host_digest(&self) -> u64 {
        let mut log = self.states[0].observed.clone();
        log.sort_unstable_by_key(|&(id, at, _)| (at, id));
        log.iter()
            .fold(0xcbf2_9ce4_8422_2325, |h, &(id, at, failed)| {
                mix(mix(mix(h, at), id), u64::from(failed))
            })
    }

    /// Completions the host has observed.
    pub fn host_observations(&self) -> usize {
        self.states[0].observed.len()
    }

    /// The host's observation log — `(id, completion instant, failed)` per
    /// completion — canonically ordered by `(completion instant, id)`, the
    /// same order [`ShardedIoCalendar::host_digest`] folds over. This is
    /// how a serving layer recovers per-operation latencies from a sharded
    /// run without threading a callback through the PDES seam.
    pub fn observed_log(&self) -> Vec<(u64, SimTime, bool)> {
        let mut log = self.states[0].observed.clone();
        log.sort_unstable_by_key(|&(id, at, _)| (at, id));
        log.into_iter()
            .map(|(id, at, failed)| (id, SimTime::from_nanos(at), failed))
            .collect()
    }

    /// Chains whose parent never completed during a run.
    pub fn unresolved_chains(&self) -> usize {
        self.states[0].chains.len()
    }

    /// The device modelling die group `group`.
    pub fn device(&self, group: usize) -> &TwoBSsd {
        let s = self.placement.shard_of(group);
        &self.states[s]
            .devices
            .iter()
            .find(|(g, _)| *g == group)
            .expect("placement and device list agree by construction")
            .1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EntryId, TwoBSpec};
    use twob_ftl::Lba;
    use twob_ssd::{BlockDevice, GcPolicy, SsdConfig};

    const IC: SimDuration = SimDuration::from_micros(2);

    /// One die-sliced device per group, each with one BA entry pre-pinned
    /// on LBA 0 so byte-path ops have a target.
    fn sliced_devices(groups: usize) -> (Vec<TwoBSsd>, Vec<EntryId>) {
        let cfg = SsdConfig::base_2b().small().die_slice(groups as u32);
        let mut devices = Vec::new();
        let mut eids = Vec::new();
        for _ in 0..groups {
            let mut dev = TwoBSsd::new(cfg.clone(), TwoBSpec::small_for_tests());
            let (eid, _) = dev.ba_pin_auto(SimTime::ZERO, Lba(0), 1).unwrap();
            devices.push(dev);
            eids.push(eid);
        }
        (devices, eids)
    }

    /// A mixed BA/block workload with cross-group chained follow-ups.
    /// Identical regardless of placement: op times are salted by id only.
    fn seed_workload(cal: &mut ShardedIoCalendar, eids: &[EntryId], ops: usize) {
        let groups = cal.groups();
        for i in 0..ops {
            let g = i % groups;
            let at = SimTime::from_nanos(1_000_000 + 37_000 * i as u64);
            let id = match i % 4 {
                0 => cal.submit(
                    at,
                    g,
                    IoOp::BlockWrite {
                        lba: Lba(8 + (i as u64 % 16)),
                        data: vec![i as u8; 4096],
                    },
                ),
                1 => cal.submit(
                    at,
                    g,
                    IoOp::BlockRead {
                        lba: Lba(8 + (i as u64 % 16)),
                        pages: 1,
                    },
                ),
                2 => cal.submit(at, g, IoOp::BaSync { eid: eids[g] }),
                _ => cal.submit(at, g, IoOp::BlockFlush),
            };
            if i % 3 == 0 {
                // Chase each third op with a read on the *next* group —
                // a genuinely cross-shard dependency under most placements.
                cal.submit_after(
                    id,
                    SimDuration::from_micros(5),
                    (g + 1) % groups,
                    IoOp::BlockRead {
                        lba: Lba(8),
                        pages: 1,
                    },
                );
            }
        }
    }

    /// Everything a drive must reproduce regardless of placement or mode:
    /// per-group digests, per-group latency totals, host digest, count.
    type Fingerprint = (Vec<(usize, u64)>, Vec<(usize, LatencyBreakdown)>, u64, u64);

    fn fingerprint(cal: &ShardedIoCalendar) -> Fingerprint {
        (
            cal.group_digests(),
            cal.breakdown_totals(),
            cal.host_digest(),
            cal.completed(),
        )
    }

    fn drive(groups: usize, placement: GroupPlacement, mode: u8) -> ShardedIoCalendar {
        let (devices, eids) = sliced_devices(groups);
        let mut cal = ShardedIoCalendar::new(devices, placement, IC);
        seed_workload(&mut cal, &eids, 24);
        match mode {
            0 => cal.run(),
            1 => cal.run_parallel(2),
            2 => cal.run_parallel(4),
            _ => cal.run_lockstep(),
        }
        assert_eq!(cal.clamped_posts(), 0, "stale cross-shard delivery");
        assert_eq!(cal.unresolved_chains(), 0, "chain parent never observed");
        cal
    }

    #[test]
    fn sequential_parallel_and_lockstep_agree() {
        let seq = drive(4, GroupPlacement::round_robin(4, 2), 0);
        for mode in [1u8, 2] {
            let par = drive(4, GroupPlacement::round_robin(4, 2), mode);
            assert_eq!(fingerprint(&par), fingerprint(&seq), "mode {mode}");
            assert_eq!(par.rounds(), seq.rounds(), "schedules must be identical");
        }
        let lock = drive(4, GroupPlacement::round_robin(4, 2), 3);
        assert_eq!(fingerprint(&lock), fingerprint(&seq));
        assert!(seq.rounds() <= lock.rounds());
    }

    #[test]
    fn placement_does_not_change_results() {
        let baseline = drive(4, GroupPlacement::round_robin(4, 1), 0);
        for placement in [
            GroupPlacement::round_robin(4, 2),
            GroupPlacement::round_robin(4, 4),
            GroupPlacement::new(vec![1, 0, 1, 0], 2),
            GroupPlacement::new(vec![2, 2, 0, 1], 3),
        ] {
            let other = drive(4, placement.clone(), 0);
            assert_eq!(
                fingerprint(&other),
                fingerprint(&baseline),
                "placement {placement:?} changed observable results"
            );
        }
    }

    #[test]
    fn background_gc_rides_with_its_die_group() {
        let run = |mode: u8| {
            let groups = 2usize;
            let cfg = SsdConfig::base_2b()
                .small()
                .die_slice(groups as u32)
                .with_background_gc(GcPolicy::Greedy);
            let devices: Vec<TwoBSsd> = (0..groups)
                .map(|_| TwoBSsd::new(cfg.clone(), TwoBSpec::small_for_tests()))
                .collect();
            let cap = devices[0].capacity_pages();
            let mut cal =
                ShardedIoCalendar::new(devices, GroupPlacement::round_robin(groups, groups), IC);
            // Churn group 0 only: enough overwrites to force greedy GC.
            for i in 0..(cap * 3) {
                cal.submit(
                    SimTime::from_nanos(100_000 + 40_000 * i),
                    0,
                    IoOp::BlockWrite {
                        lba: Lba(i % cap),
                        data: vec![i as u8; 4096],
                    },
                );
            }
            match mode {
                0 => cal.run(),
                _ => cal.run_parallel(2),
            }
            assert_eq!(cal.clamped_posts(), 0);
            cal
        };
        let seq = run(0);
        assert!(
            seq.device(0).ssd().ftl().stats().erases > 0,
            "churned group never collected garbage on its shard"
        );
        assert_eq!(
            seq.device(1).ssd().ftl().stats().erases,
            0,
            "idle group's GC must not be driven by the other shard's load"
        );
        let par = run(1);
        assert_eq!(par.group_digests(), seq.group_digests());
        assert_eq!(
            par.device(0).ssd().ftl().stats().erases,
            seq.device(0).ssd().ftl().stats().erases
        );
    }
}
