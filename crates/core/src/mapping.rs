//! The BA-buffer mapping table (paper §III-A2, Fig 2).

use std::fmt;

use serde::{Deserialize, Serialize};
use twob_ftl::Lba;

use crate::TwoBError;

/// Identifier of one mapping-table entry (the paper's `EID`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EntryId(pub u8);

impl fmt::Display for EntryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "eid:{}", self.0)
    }
}

/// One BA-buffer mapping entry: `(entry_id, start_offset, start_LBA,
/// length)` exactly as Fig 2 of the paper draws the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MappingEntry {
    /// The entry ID.
    pub eid: EntryId,
    /// Byte offset of the pinned window within the BA-buffer
    /// (page-aligned).
    pub buffer_offset: u64,
    /// First pinned LBA.
    pub start_lba: Lba,
    /// Pinned length in 4 KiB pages.
    pub pages: u32,
}

impl MappingEntry {
    /// Pinned length in bytes.
    pub fn len_bytes(&self) -> u64 {
        u64::from(self.pages) * 4096
    }

    /// End of the buffer window (exclusive byte offset).
    pub fn buffer_end(&self) -> u64 {
        self.buffer_offset + self.len_bytes()
    }

    /// Returns `true` if `[offset, offset+len)` (relative to the buffer
    /// start) overlaps this entry's window.
    pub fn buffer_overlaps(&self, offset: u64, len: u64) -> bool {
        offset < self.buffer_end() && self.buffer_offset < offset + len
    }

    /// Returns `true` if the LBA range `[lba, lba+pages)` overlaps this
    /// entry's pinned range.
    pub fn lba_overlaps(&self, lba: Lba, pages: u32) -> bool {
        let (a, b) = (lba.0, lba.0 + u64::from(pages));
        let (s, e) = (self.start_lba.0, self.start_lba.0 + u64::from(self.pages));
        a < e && s < b
    }
}

/// The fixed-capacity mapping table of the BA-buffer manager.
///
/// # Example
///
/// ```rust
/// use twob_core::{EntryId, MappingTable};
/// use twob_ftl::Lba;
///
/// let mut table = MappingTable::new(8, 8 << 20);
/// table.insert(EntryId(0), 0, Lba(100), 4)?;
/// assert!(table.get(EntryId(0)).is_some());
/// table.remove(EntryId(0))?;
/// # Ok::<(), twob_core::TwoBError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MappingTable {
    entries: Vec<Option<MappingEntry>>,
    buffer_bytes: u64,
}

impl MappingTable {
    /// Creates an empty table with `max_entries` slots over a BA-buffer of
    /// `buffer_bytes`.
    pub fn new(max_entries: usize, buffer_bytes: u64) -> Self {
        MappingTable {
            entries: vec![None; max_entries],
            buffer_bytes,
        }
    }

    /// Capacity in entries.
    pub fn max_entries(&self) -> usize {
        self.entries.len()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.iter().flatten().count()
    }

    /// Returns `true` if no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up an entry (the `BA_GET_ENTRY_INFO` backend).
    pub fn get(&self, eid: EntryId) -> Option<&MappingEntry> {
        self.entries
            .get(usize::from(eid.0))
            .and_then(Option::as_ref)
    }

    /// Iterates over live entries in EID order.
    pub fn iter(&self) -> impl Iterator<Item = &MappingEntry> {
        self.entries.iter().flatten()
    }

    /// Validates and inserts an entry.
    ///
    /// # Errors
    ///
    /// - [`TwoBError::EntryIdOutOfRange`] / [`TwoBError::EntryInUse`] for a
    ///   bad slot.
    /// - [`TwoBError::Unaligned`] if `buffer_offset` is not page-aligned.
    /// - [`TwoBError::EmptyRequest`] for zero pages.
    /// - [`TwoBError::BufferOutOfRange`] if the window exceeds the buffer.
    /// - [`TwoBError::BufferOverlap`] / [`TwoBError::LbaOverlap`] if the
    ///   window collides with a live entry (both address spaces must stay
    ///   disjoint, or the byte and block views would diverge).
    pub fn insert(
        &mut self,
        eid: EntryId,
        buffer_offset: u64,
        start_lba: Lba,
        pages: u32,
    ) -> Result<MappingEntry, TwoBError> {
        let slot = usize::from(eid.0);
        if slot >= self.entries.len() {
            return Err(TwoBError::EntryIdOutOfRange {
                eid,
                max_entries: self.entries.len(),
            });
        }
        if self.entries[slot].is_some() {
            return Err(TwoBError::EntryInUse(eid));
        }
        if pages == 0 {
            return Err(TwoBError::EmptyRequest);
        }
        if !buffer_offset.is_multiple_of(4096) {
            return Err(TwoBError::Unaligned {
                value: buffer_offset,
            });
        }
        let len = u64::from(pages) * 4096;
        if buffer_offset + len > self.buffer_bytes {
            return Err(TwoBError::BufferOutOfRange {
                offset: buffer_offset,
                len,
                capacity: self.buffer_bytes,
            });
        }
        let candidate = MappingEntry {
            eid,
            buffer_offset,
            start_lba,
            pages,
        };
        for live in self.iter() {
            if live.buffer_overlaps(buffer_offset, len) {
                return Err(TwoBError::BufferOverlap(live.eid));
            }
            if live.lba_overlaps(start_lba, pages) {
                return Err(TwoBError::LbaOverlap(live.eid));
            }
        }
        self.entries[slot] = Some(candidate);
        Ok(candidate)
    }

    /// Removes an entry, returning it.
    ///
    /// # Errors
    ///
    /// Returns [`TwoBError::EntryNotFound`] for a dead slot.
    pub fn remove(&mut self, eid: EntryId) -> Result<MappingEntry, TwoBError> {
        let slot = usize::from(eid.0);
        if slot >= self.entries.len() {
            return Err(TwoBError::EntryIdOutOfRange {
                eid,
                max_entries: self.entries.len(),
            });
        }
        self.entries[slot]
            .take()
            .ok_or(TwoBError::EntryNotFound(eid))
    }

    /// Finds the lowest free entry ID, if any.
    pub fn free_eid(&self) -> Option<EntryId> {
        self.entries
            .iter()
            .position(Option::is_none)
            .map(|i| EntryId(i as u8))
    }

    /// Finds the lowest page-aligned buffer offset with room for `pages`,
    /// if any — a first-fit allocator for callers that do not care where
    /// their window lives.
    pub fn free_buffer_offset(&self, pages: u32) -> Option<u64> {
        let len = u64::from(pages) * 4096;
        let mut windows: Vec<(u64, u64)> = self
            .iter()
            .map(|e| (e.buffer_offset, e.buffer_end()))
            .collect();
        windows.sort_unstable();
        let mut cursor = 0u64;
        for (start, end) in windows {
            if cursor + len <= start {
                return Some(cursor);
            }
            cursor = cursor.max(end);
        }
        if cursor + len <= self.buffer_bytes {
            Some(cursor)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> MappingTable {
        MappingTable::new(8, 64 << 10)
    }

    #[test]
    fn insert_get_remove() {
        let mut t = table();
        t.insert(EntryId(2), 4096, Lba(10), 2).unwrap();
        let e = t.get(EntryId(2)).unwrap();
        assert_eq!(e.start_lba, Lba(10));
        assert_eq!(e.len_bytes(), 8192);
        assert_eq!(t.len(), 1);
        t.remove(EntryId(2)).unwrap();
        assert!(t.is_empty());
    }

    #[test]
    fn rejects_double_insert_and_missing_remove() {
        let mut t = table();
        t.insert(EntryId(0), 0, Lba(0), 1).unwrap();
        assert_eq!(
            t.insert(EntryId(0), 8192, Lba(50), 1).unwrap_err(),
            TwoBError::EntryInUse(EntryId(0))
        );
        assert_eq!(
            t.remove(EntryId(5)).unwrap_err(),
            TwoBError::EntryNotFound(EntryId(5))
        );
    }

    #[test]
    fn rejects_eid_beyond_capacity() {
        let mut t = table();
        assert!(matches!(
            t.insert(EntryId(8), 0, Lba(0), 1),
            Err(TwoBError::EntryIdOutOfRange { .. })
        ));
    }

    #[test]
    fn rejects_overlapping_buffer_windows() {
        let mut t = table();
        t.insert(EntryId(0), 0, Lba(0), 2).unwrap();
        assert_eq!(
            t.insert(EntryId(1), 4096, Lba(100), 1).unwrap_err(),
            TwoBError::BufferOverlap(EntryId(0))
        );
    }

    #[test]
    fn rejects_overlapping_lba_ranges() {
        let mut t = table();
        t.insert(EntryId(0), 0, Lba(10), 4).unwrap();
        assert_eq!(
            t.insert(EntryId(1), 32768, Lba(13), 1).unwrap_err(),
            TwoBError::LbaOverlap(EntryId(0))
        );
    }

    #[test]
    fn rejects_unaligned_and_oversized() {
        let mut t = table();
        assert!(matches!(
            t.insert(EntryId(0), 100, Lba(0), 1),
            Err(TwoBError::Unaligned { .. })
        ));
        assert!(matches!(
            t.insert(EntryId(0), 0, Lba(0), 17),
            Err(TwoBError::BufferOutOfRange { .. })
        ));
        assert!(matches!(
            t.insert(EntryId(0), 0, Lba(0), 0),
            Err(TwoBError::EmptyRequest)
        ));
    }

    #[test]
    fn free_eid_and_offset_allocate_first_fit() {
        let mut t = table();
        assert_eq!(t.free_eid(), Some(EntryId(0)));
        t.insert(EntryId(0), 0, Lba(0), 2).unwrap();
        t.insert(EntryId(1), 12288, Lba(10), 1).unwrap();
        assert_eq!(t.free_eid(), Some(EntryId(2)));
        // Hole between entry 0 (ends 8192) and entry 1 (starts 12288).
        assert_eq!(t.free_buffer_offset(1), Some(8192));
        // Two pages do not fit in the hole; first fit lands after entry 1.
        assert_eq!(t.free_buffer_offset(2), Some(16384));
        // Too big for the remaining space.
        assert_eq!(t.free_buffer_offset(16), None);
    }

    #[test]
    fn full_table_has_no_free_eid() {
        let mut t = MappingTable::new(2, 64 << 10);
        t.insert(EntryId(0), 0, Lba(0), 1).unwrap();
        t.insert(EntryId(1), 4096, Lba(10), 1).unwrap();
        assert_eq!(t.free_eid(), None);
    }
}
