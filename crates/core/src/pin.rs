//! Multi-tenant arbitration of the BA-buffer: the pin table.
//!
//! The paper's application study (§V) runs PostgreSQL, RocksDB, and Redis
//! *concurrently*, each pinning its own WAL window into the one 8 MiB BA
//! region. The hardware mapping table ([`crate::MappingTable`]) enforces
//! global non-overlap, but says nothing about *who* owns an entry — any
//! host process could unpin another's window. The [`PinTable`] is the host
//! kernel-side arbiter layered above the raw `BA_PIN` API:
//!
//! - the BA-buffer is partitioned into equal per-tenant **shares**; a
//!   tenant can only pin windows inside its own share (overlap with its
//!   other windows is rejected before the device ever sees the call);
//! - every pin carries a per-entry **state machine**
//!   (`Pinning → Pinned → Unpinning`) so in-flight loads and flushes
//!   cannot be raced by byte-path traffic;
//! - ownership is checked on every access, and the table can prove
//!   **`BA_GET_ENTRY_INFO` parity** — its view of each entry byte-matches
//!   the device mapping table's — at any quiescent point;
//! - after a power-loss dump and restore, [`PinTable::reattach`] re-binds
//!   surviving entries to their tenants (the dump covers all live pins,
//!   so a clean dump loses nothing).

use std::fmt;

use serde::{Deserialize, Serialize};
use twob_ftl::Lba;
use twob_sim::SimTime;

use crate::{
    ApiCompletion, EntryId, MmioReadOutcome, MmioStoreOutcome, TwoBError, TwoBSpec, TwoBSsd,
};

/// Identifier of one tenant sharing the BA region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TenantId(pub u16);

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant:{}", self.0)
    }
}

/// Lifecycle of one pinned window, as the host arbiter tracks it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PinState {
    /// `BA_PIN` issued; the NAND→buffer load completes at `ready_at`.
    Pinning,
    /// The window is live: byte-path reads and writes are allowed.
    Pinned,
    /// `BA_FLUSH` is in flight; all access is fenced until it lands.
    Unpinning,
}

impl fmt::Display for PinState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PinState::Pinning => "pinning",
            PinState::Pinned => "pinned",
            PinState::Unpinning => "unpinning",
        };
        write!(f, "{s}")
    }
}

/// Which front-end serves a region's accesses.
///
/// Pinned rows are byte-addressable through one of the two byte
/// front-ends; `Block` labels a region the tier layer has demoted to
/// block NAND (no live pin — reads go through the block path). The pin
/// table therefore only ever holds `BaMmio` or `Cxl` rows.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub enum RegionFrontEnd {
    /// PCIe BAR MMIO: posted writes through WC buffers, serialized
    /// 8-byte read TLPs, `BA_SYNC` durability (the paper's byte path).
    #[default]
    BaMmio,
    /// CXL.mem: cache-line loads/stores, persist-barrier durability.
    Cxl,
    /// Block NAND: no byte window; the region lives on flash.
    Block,
}

impl RegionFrontEnd {
    /// Stable label for reports and CLI output.
    pub fn label(self) -> &'static str {
        match self {
            RegionFrontEnd::BaMmio => "ba-mmio",
            RegionFrontEnd::Cxl => "cxl",
            RegionFrontEnd::Block => "block",
        }
    }
}

impl fmt::Display for RegionFrontEnd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// One live row of the pin table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PinEntry {
    /// Owning tenant.
    pub tenant: TenantId,
    /// Lifecycle state.
    pub state: PinState,
    /// Absolute byte offset of the window in the BA-buffer.
    pub buffer_offset: u64,
    /// First pinned LBA.
    pub lba: Lba,
    /// Window length in 4 KiB pages.
    pub pages: u32,
    /// When the in-flight transition (pin load) completes.
    pub ready_at: SimTime,
    /// Byte front-end serving this window's accesses.
    pub front_end: RegionFrontEnd,
}

impl PinEntry {
    /// Window length in bytes.
    pub fn len_bytes(&self) -> u64 {
        u64::from(self.pages) * 4096
    }
}

/// Errors raised by the pin-table arbiter (checked *before* the device's
/// own mapping-table validation, so a tenant cannot even probe another's
/// windows).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PinError {
    /// The tenant ID exceeds the table's tenant count.
    UnknownTenant(TenantId),
    /// All mapping-table entry slots are live.
    NoFreeEntry,
    /// The tenant's share has no room for a window of this size.
    ShareExhausted(TenantId),
    /// The requested window overlaps one of the tenant's live windows.
    WindowOverlap {
        /// The requesting tenant.
        tenant: TenantId,
        /// The live entry collided with.
        eid: EntryId,
    },
    /// The requested window does not fit inside the tenant's share.
    OutsideShare {
        /// The requesting tenant.
        tenant: TenantId,
        /// Share-relative first page requested.
        rel_page: u64,
        /// Pages requested.
        pages: u32,
        /// The share size in pages.
        share_pages: u64,
    },
    /// The entry exists but belongs to a different tenant.
    NotOwner {
        /// The entry accessed.
        eid: EntryId,
        /// Its actual owner.
        owner: TenantId,
        /// The caller.
        caller: TenantId,
    },
    /// The entry is not in the state the operation requires.
    BadState {
        /// The entry accessed.
        eid: EntryId,
        /// Its current state.
        state: PinState,
    },
    /// The requested front-end is not valid for a live pinned row.
    BadFrontEnd {
        /// The entry accessed.
        eid: EntryId,
        /// The rejected front-end.
        front_end: RegionFrontEnd,
    },
    /// No live pin-table row for this entry ID.
    NotPinned(EntryId),
    /// The pin table and the device mapping table disagree.
    Parity(String),
    /// The underlying device call failed.
    Device(TwoBError),
}

impl fmt::Display for PinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PinError::UnknownTenant(t) => write!(f, "no such {t}"),
            PinError::NoFreeEntry => write!(f, "no free mapping-table entry"),
            PinError::ShareExhausted(t) => write!(f, "{t} share has no room"),
            PinError::WindowOverlap { tenant, eid } => {
                write!(f, "{tenant} window overlaps its live entry {eid}")
            }
            PinError::OutsideShare {
                tenant,
                rel_page,
                pages,
                share_pages,
            } => write!(
                f,
                "{tenant} window [{rel_page}, {rel_page}+{pages}) outside its \
                 {share_pages}-page share"
            ),
            PinError::NotOwner { eid, owner, caller } => {
                write!(f, "{eid} is owned by {owner}, not {caller}")
            }
            PinError::BadState { eid, state } => {
                write!(f, "{eid} is {state}; operation not allowed")
            }
            PinError::BadFrontEnd { eid, front_end } => {
                write!(f, "{eid} cannot use the {front_end} front-end while pinned")
            }
            PinError::NotPinned(eid) => write!(f, "no live pin for {eid}"),
            PinError::Parity(what) => write!(f, "pin-table/device parity lost: {what}"),
            PinError::Device(e) => write!(f, "device: {e}"),
        }
    }
}

impl std::error::Error for PinError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PinError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TwoBError> for PinError {
    fn from(e: TwoBError) -> Self {
        PinError::Device(e)
    }
}

/// The host-side multi-tenant arbiter over one device's BA region.
///
/// The table does not own the device; every operation that reaches the
/// hardware takes `&mut TwoBSsd`, so callers may route the same device
/// through an [`crate::IoCalendar`] between arbiter calls.
///
/// # Example
///
/// ```rust
/// use twob_core::{PinTable, TenantId, TwoBSsd, TwoBSpec};
/// use twob_ftl::Lba;
/// use twob_sim::SimTime;
///
/// let mut dev = TwoBSsd::small_for_tests();
/// let mut pins = PinTable::new(dev.spec(), 2)?;
/// let (eid, done) = pins.pin(&mut dev, SimTime::ZERO, TenantId(0), Lba(0), 2)?;
/// let store = pins.write(&mut dev, done.complete_at, TenantId(0), eid, 0, b"wal")?;
/// pins.unpin(&mut dev, store.retired_at, TenantId(0), eid)?;
/// # Ok::<(), twob_core::PinError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PinTable {
    tenants: u16,
    share_pages: u64,
    entries: Vec<Option<PinEntry>>,
}

impl PinTable {
    /// Partitions a device's BA-buffer into `tenants` equal page-aligned
    /// shares with `spec.max_entries` entry slots.
    ///
    /// # Errors
    ///
    /// [`PinError::ShareExhausted`] if the buffer cannot give every tenant
    /// at least one page, or [`PinError::UnknownTenant`] for zero tenants.
    pub fn new(spec: &TwoBSpec, tenants: u16) -> Result<Self, PinError> {
        if tenants == 0 {
            return Err(PinError::UnknownTenant(TenantId(0)));
        }
        let share_pages = spec.ba_buffer_pages() / u64::from(tenants);
        if share_pages == 0 {
            return Err(PinError::ShareExhausted(TenantId(tenants - 1)));
        }
        Ok(PinTable {
            tenants,
            share_pages,
            entries: vec![None; spec.max_entries],
        })
    }

    /// Number of tenants the buffer is partitioned across.
    pub fn tenants(&self) -> u16 {
        self.tenants
    }

    /// Pages in each tenant's share.
    pub fn share_pages(&self) -> u64 {
        self.share_pages
    }

    /// Live pin-table rows, in entry-ID order.
    pub fn entries(&self) -> Vec<(EntryId, PinEntry)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.map(|e| (EntryId(i as u8), e)))
            .collect()
    }

    /// Live rows owned by `tenant`, in entry-ID order.
    pub fn entries_for(&self, tenant: TenantId) -> Vec<(EntryId, PinEntry)> {
        self.entries()
            .into_iter()
            .filter(|(_, e)| e.tenant == tenant)
            .collect()
    }

    /// The pin-table row for `eid` (the arbiter's `BA_GET_ENTRY_INFO`).
    ///
    /// # Errors
    ///
    /// [`PinError::NotPinned`].
    pub fn entry_info(&self, eid: EntryId) -> Result<PinEntry, PinError> {
        self.entries
            .get(usize::from(eid.0))
            .and_then(|e| *e)
            .ok_or(PinError::NotPinned(eid))
    }

    fn check_tenant(&self, tenant: TenantId) -> Result<(), PinError> {
        if tenant.0 < self.tenants {
            Ok(())
        } else {
            Err(PinError::UnknownTenant(tenant))
        }
    }

    /// Promotes every `Pinning` row whose load has landed by `now`.
    pub fn settle(&mut self, now: SimTime) {
        for entry in self.entries.iter_mut().flatten() {
            if entry.state == PinState::Pinning && entry.ready_at <= now {
                entry.state = PinState::Pinned;
            }
        }
    }

    /// Looks up a live, owned, `Pinned` row (settling first).
    fn owned_pinned(
        &mut self,
        now: SimTime,
        tenant: TenantId,
        eid: EntryId,
    ) -> Result<PinEntry, PinError> {
        self.check_tenant(tenant)?;
        self.settle(now);
        let entry = self.entry_info(eid)?;
        if entry.tenant != tenant {
            return Err(PinError::NotOwner {
                eid,
                owner: entry.tenant,
                caller: tenant,
            });
        }
        if entry.state != PinState::Pinned {
            return Err(PinError::BadState {
                eid,
                state: entry.state,
            });
        }
        Ok(entry)
    }

    /// Pins `pages` pages of `lba` at an explicit share-relative page
    /// offset inside `tenant`'s share.
    ///
    /// The arbiter rejects windows that leave the share or overlap the
    /// tenant's live windows *before* calling the device, so a tenant can
    /// never learn about (or collide with) another tenant's entries.
    ///
    /// # Errors
    ///
    /// [`PinError::OutsideShare`], [`PinError::WindowOverlap`],
    /// [`PinError::NoFreeEntry`], or a [`PinError::Device`] failure (which
    /// leaves the table unchanged).
    pub fn pin_at(
        &mut self,
        dev: &mut TwoBSsd,
        now: SimTime,
        tenant: TenantId,
        rel_page: u64,
        lba: Lba,
        pages: u32,
    ) -> Result<(EntryId, ApiCompletion), PinError> {
        self.check_tenant(tenant)?;
        if pages == 0 || rel_page + u64::from(pages) > self.share_pages {
            return Err(PinError::OutsideShare {
                tenant,
                rel_page,
                pages,
                share_pages: self.share_pages,
            });
        }
        let offset = (u64::from(tenant.0) * self.share_pages + rel_page) * 4096;
        let len = u64::from(pages) * 4096;
        for (eid, live) in self.entries_for(tenant) {
            if offset < live.buffer_offset + live.len_bytes() && live.buffer_offset < offset + len {
                return Err(PinError::WindowOverlap { tenant, eid });
            }
        }
        let eid = self
            .entries
            .iter()
            .position(Option::is_none)
            .map(|i| EntryId(i as u8))
            .ok_or(PinError::NoFreeEntry)?;
        let done = dev.ba_pin(now, eid, offset, lba, pages)?;
        self.entries[usize::from(eid.0)] = Some(PinEntry {
            tenant,
            state: PinState::Pinning,
            buffer_offset: offset,
            lba,
            pages,
            ready_at: done.complete_at,
            front_end: RegionFrontEnd::BaMmio,
        });
        Ok((eid, done))
    }

    /// Pins `pages` pages of `lba` at the first share-relative offset that
    /// fits inside `tenant`'s share (first-fit, like
    /// [`TwoBSsd::ba_pin_auto`] but confined to the share).
    ///
    /// # Errors
    ///
    /// [`PinError::ShareExhausted`] if no window fits, or any
    /// [`PinTable::pin_at`] error.
    pub fn pin(
        &mut self,
        dev: &mut TwoBSsd,
        now: SimTime,
        tenant: TenantId,
        lba: Lba,
        pages: u32,
    ) -> Result<(EntryId, ApiCompletion), PinError> {
        self.check_tenant(tenant)?;
        let base = u64::from(tenant.0) * self.share_pages * 4096;
        let len = u64::from(pages) * 4096;
        let mut windows: Vec<(u64, u64)> = self
            .entries_for(tenant)
            .into_iter()
            .map(|(_, e)| (e.buffer_offset, e.buffer_offset + e.len_bytes()))
            .collect();
        windows.sort_unstable();
        let mut cursor = base;
        for (start, end) in windows {
            if cursor + len <= start {
                break;
            }
            cursor = cursor.max(end);
        }
        if cursor + len > base + self.share_pages * 4096 {
            return Err(PinError::ShareExhausted(tenant));
        }
        self.pin_at(dev, now, tenant, (cursor - base) / 4096, lba, pages)
    }

    /// Unpins an entry: fences it (`Unpinning`), flushes its window to
    /// NAND over the internal datapath, and removes the row.
    ///
    /// # Errors
    ///
    /// Ownership/state errors leave the table unchanged; a device flush
    /// failure restores the row to `Pinned` (the window is still live).
    pub fn unpin(
        &mut self,
        dev: &mut TwoBSsd,
        now: SimTime,
        tenant: TenantId,
        eid: EntryId,
    ) -> Result<ApiCompletion, PinError> {
        self.begin_unpin(now, tenant, eid)?;
        match dev.ba_flush(now, eid) {
            Ok(done) => {
                self.finish_unpin(eid)?;
                Ok(done)
            }
            Err(e) => {
                if let Some(entry) = self.entries[usize::from(eid.0)].as_mut() {
                    entry.state = PinState::Pinned;
                }
                Err(e.into())
            }
        }
    }

    /// Fences an entry for unpinning without touching the device, so the
    /// caller can route the `BA_FLUSH` through an [`crate::IoCalendar`] and
    /// call [`PinTable::finish_unpin`] at its completion.
    ///
    /// # Errors
    ///
    /// Ownership/state errors; see [`PinError`].
    pub fn begin_unpin(
        &mut self,
        now: SimTime,
        tenant: TenantId,
        eid: EntryId,
    ) -> Result<(), PinError> {
        self.owned_pinned(now, tenant, eid)?;
        if let Some(entry) = self.entries[usize::from(eid.0)].as_mut() {
            entry.state = PinState::Unpinning;
        }
        Ok(())
    }

    /// Completes an unpin begun with [`PinTable::begin_unpin`], removing
    /// the row.
    ///
    /// # Errors
    ///
    /// [`PinError::NotPinned`] or [`PinError::BadState`] if no unpin was
    /// in flight.
    pub fn finish_unpin(&mut self, eid: EntryId) -> Result<PinEntry, PinError> {
        let entry = self.entry_info(eid)?;
        if entry.state != PinState::Unpinning {
            return Err(PinError::BadState {
                eid,
                state: entry.state,
            });
        }
        self.entries[usize::from(eid.0)] = None;
        Ok(entry)
    }

    /// Selects which byte front-end serves an owned window's accesses.
    /// The tier layer calls this on promotion/demotion between the two
    /// byte tiers; a live pinned row cannot be `Block` (demotion to NAND
    /// is an unpin, not a front-end switch).
    ///
    /// # Errors
    ///
    /// Ownership/state errors, or [`PinError::BadFrontEnd`] for `Block`.
    pub fn set_front_end(
        &mut self,
        now: SimTime,
        tenant: TenantId,
        eid: EntryId,
        front_end: RegionFrontEnd,
    ) -> Result<(), PinError> {
        if front_end == RegionFrontEnd::Block {
            return Err(PinError::BadFrontEnd { eid, front_end });
        }
        self.owned_pinned(now, tenant, eid)?;
        if let Some(entry) = self.entries[usize::from(eid.0)].as_mut() {
            entry.front_end = front_end;
        }
        Ok(())
    }

    /// Byte-path store into an owned window, through the row's selected
    /// front-end (ownership-checked [`TwoBSsd::mmio_write`] or
    /// [`TwoBSsd::cxl_store`]).
    ///
    /// # Errors
    ///
    /// Ownership/state errors or the device's window checks.
    pub fn write(
        &mut self,
        dev: &mut TwoBSsd,
        now: SimTime,
        tenant: TenantId,
        eid: EntryId,
        rel_offset: u64,
        data: &[u8],
    ) -> Result<MmioStoreOutcome, PinError> {
        let entry = self.owned_pinned(now, tenant, eid)?;
        match entry.front_end {
            RegionFrontEnd::Cxl => Ok(dev.cxl_store(now, eid, rel_offset, data)?),
            _ => Ok(dev.mmio_write(now, eid, rel_offset, data)?),
        }
    }

    /// Persistence sync of `[rel_offset, rel_offset+len)` of an owned
    /// window, through the row's selected front-end (ownership-checked
    /// [`TwoBSsd::ba_sync_range`] or [`TwoBSsd::cxl_persist`]).
    ///
    /// # Errors
    ///
    /// Ownership/state errors or the device's window checks.
    pub fn sync_range(
        &mut self,
        dev: &mut TwoBSsd,
        now: SimTime,
        tenant: TenantId,
        eid: EntryId,
        rel_offset: u64,
        len: u64,
    ) -> Result<ApiCompletion, PinError> {
        let entry = self.owned_pinned(now, tenant, eid)?;
        match entry.front_end {
            RegionFrontEnd::Cxl => Ok(dev.cxl_persist(now, eid, rel_offset, len)?),
            _ => Ok(dev.ba_sync_range(now, eid, rel_offset, len)?),
        }
    }

    /// Byte-path load from an owned window, through the row's selected
    /// front-end (ownership-checked [`TwoBSsd::mmio_read`] or
    /// [`TwoBSsd::cxl_load`]).
    ///
    /// # Errors
    ///
    /// Ownership/state errors or the device's window checks.
    pub fn read(
        &mut self,
        dev: &mut TwoBSsd,
        now: SimTime,
        tenant: TenantId,
        eid: EntryId,
        rel_offset: u64,
        len: u64,
    ) -> Result<MmioReadOutcome, PinError> {
        let entry = self.owned_pinned(now, tenant, eid)?;
        match entry.front_end {
            RegionFrontEnd::Cxl => Ok(dev.cxl_load(now, eid, rel_offset, len)?),
            _ => Ok(dev.mmio_read(now, eid, rel_offset, len)?),
        }
    }

    /// Proves `BA_GET_ENTRY_INFO` parity: every pin-table row must
    /// byte-match the device mapping table's entry, and the device must
    /// hold no entries the arbiter does not know about.
    ///
    /// # Errors
    ///
    /// [`PinError::Parity`] naming the first divergence.
    pub fn verify_device_parity(&self, dev: &TwoBSsd) -> Result<(), PinError> {
        let device = dev.entries();
        let ours = self.entries();
        if device.len() != ours.len() {
            return Err(PinError::Parity(format!(
                "device holds {} entries, pin table {}",
                device.len(),
                ours.len()
            )));
        }
        for (eid, entry) in ours {
            let info = dev
                .ba_entry_info(eid)
                .map_err(|e| PinError::Parity(format!("{eid} missing on device: {e}")))?;
            if info.buffer_offset != entry.buffer_offset
                || info.start_lba != entry.lba
                || info.pages != entry.pages
            {
                return Err(PinError::Parity(format!(
                    "{eid} differs: device (offset={}, {}, pages={}) vs pin table \
                     (offset={}, {}, pages={})",
                    info.buffer_offset,
                    info.start_lba,
                    info.pages,
                    entry.buffer_offset,
                    entry.lba,
                    entry.pages
                )));
            }
        }
        Ok(())
    }

    /// Re-binds tenants to the entries a power-on restore brought back:
    /// rows the device lost are dropped, surviving rows become `Pinned`,
    /// and a geometry mismatch is a parity failure. Returns how many rows
    /// survived.
    ///
    /// # Errors
    ///
    /// [`PinError::Parity`] if a surviving entry's geometry changed, or if
    /// the device restored an entry the arbiter never created.
    pub fn reattach(&mut self, dev: &TwoBSsd, now: SimTime) -> Result<usize, PinError> {
        for entry in dev.entries() {
            let known = self.entries.get(usize::from(entry.eid.0)).and_then(|e| *e);
            match known {
                None => {
                    return Err(PinError::Parity(format!(
                        "device restored {} unknown to the pin table",
                        entry.eid
                    )))
                }
                Some(ours)
                    if ours.buffer_offset != entry.buffer_offset
                        || ours.lba != entry.start_lba
                        || ours.pages != entry.pages =>
                {
                    return Err(PinError::Parity(format!(
                        "restored {} geometry differs from the pin table",
                        entry.eid
                    )))
                }
                Some(_) => {}
            }
        }
        let device: std::collections::HashSet<u8> = dev.entries().iter().map(|e| e.eid.0).collect();
        let mut survived = 0;
        for (i, slot) in self.entries.iter_mut().enumerate() {
            if device.contains(&(i as u8)) {
                if let Some(entry) = slot.as_mut() {
                    entry.state = PinState::Pinned;
                    entry.ready_at = now;
                    survived += 1;
                }
            } else {
                *slot = None;
            }
        }
        Ok(survived)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(tenants: u16) -> (TwoBSsd, PinTable) {
        let dev = TwoBSsd::small_for_tests();
        let pins = PinTable::new(dev.spec(), tenants).unwrap();
        (dev, pins)
    }

    #[test]
    fn shares_partition_the_buffer() {
        let (dev, pins) = setup(4);
        // 64 KiB test buffer = 16 pages, 4 tenants -> 4 pages each.
        assert_eq!(pins.share_pages(), 4);
        assert_eq!(
            pins.share_pages() * 4, // tenants
            dev.spec().ba_buffer_pages()
        );
    }

    #[test]
    fn pins_land_inside_the_tenant_share() {
        let (mut dev, mut pins) = setup(4);
        let now = SimTime::ZERO;
        let (e0, _) = pins.pin(&mut dev, now, TenantId(0), Lba(0), 2).unwrap();
        let (e1, _) = pins.pin(&mut dev, now, TenantId(1), Lba(10), 2).unwrap();
        let a = pins.entry_info(e0).unwrap();
        let b = pins.entry_info(e1).unwrap();
        assert_eq!(a.buffer_offset, 0);
        assert_eq!(b.buffer_offset, 4 * 4096, "tenant 1 starts at its share");
    }

    #[test]
    fn overlapping_windows_are_rejected_before_the_device() {
        let (mut dev, mut pins) = setup(2);
        let now = SimTime::ZERO;
        let (eid, _) = pins
            .pin_at(&mut dev, now, TenantId(0), 0, Lba(0), 2)
            .unwrap();
        let before = dev.stats().pins;
        assert_eq!(
            pins.pin_at(&mut dev, now, TenantId(0), 1, Lba(100), 2)
                .unwrap_err(),
            PinError::WindowOverlap {
                tenant: TenantId(0),
                eid
            }
        );
        assert_eq!(dev.stats().pins, before, "device never saw the bad pin");
    }

    #[test]
    fn windows_cannot_leave_the_share() {
        let (mut dev, mut pins) = setup(4);
        assert!(matches!(
            pins.pin_at(&mut dev, SimTime::ZERO, TenantId(0), 3, Lba(0), 2),
            Err(PinError::OutsideShare { .. })
        ));
        // Filling the share exactly is fine.
        assert!(pins
            .pin_at(&mut dev, SimTime::ZERO, TenantId(0), 0, Lba(0), 4)
            .is_ok());
        // First-fit then finds no room.
        assert_eq!(
            pins.pin(&mut dev, SimTime::ZERO, TenantId(0), Lba(50), 1)
                .unwrap_err(),
            PinError::ShareExhausted(TenantId(0))
        );
    }

    #[test]
    fn ownership_is_enforced() {
        let (mut dev, mut pins) = setup(2);
        let now = SimTime::ZERO;
        let (eid, done) = pins.pin(&mut dev, now, TenantId(0), Lba(0), 1).unwrap();
        let t = done.complete_at;
        assert_eq!(
            pins.write(&mut dev, t, TenantId(1), eid, 0, b"theft")
                .unwrap_err(),
            PinError::NotOwner {
                eid,
                owner: TenantId(0),
                caller: TenantId(1)
            }
        );
        assert!(matches!(
            pins.unpin(&mut dev, t, TenantId(1), eid),
            Err(PinError::NotOwner { .. })
        ));
        assert!(pins
            .write(&mut dev, t, TenantId(0), eid, 0, b"mine")
            .is_ok());
    }

    #[test]
    fn state_machine_fences_inflight_windows() {
        let (mut dev, mut pins) = setup(2);
        let now = SimTime::ZERO;
        let (eid, done) = pins.pin(&mut dev, now, TenantId(0), Lba(0), 1).unwrap();
        // Still Pinning at submit instant: access is fenced.
        assert_eq!(pins.entry_info(eid).unwrap().state, PinState::Pinning);
        assert!(matches!(
            pins.write(&mut dev, now, TenantId(0), eid, 0, b"early"),
            Err(PinError::BadState { .. })
        ));
        // After the load lands it settles to Pinned.
        let t = done.complete_at;
        pins.settle(t);
        assert_eq!(pins.entry_info(eid).unwrap().state, PinState::Pinned);
        // A fenced unpin blocks further writes until finished.
        pins.begin_unpin(t, TenantId(0), eid).unwrap();
        assert!(matches!(
            pins.write(&mut dev, t, TenantId(0), eid, 0, b"late"),
            Err(PinError::BadState { .. })
        ));
        pins.finish_unpin(eid).unwrap();
        assert!(matches!(pins.entry_info(eid), Err(PinError::NotPinned(_))));
    }

    #[test]
    fn parity_holds_through_pin_and_unpin() {
        let (mut dev, mut pins) = setup(2);
        let now = SimTime::ZERO;
        let (e0, d0) = pins.pin(&mut dev, now, TenantId(0), Lba(0), 2).unwrap();
        let (_e1, d1) = pins.pin(&mut dev, now, TenantId(1), Lba(10), 1).unwrap();
        pins.verify_device_parity(&dev).unwrap();
        let t = d0.complete_at.max(d1.complete_at);
        pins.unpin(&mut dev, t, TenantId(0), e0).unwrap();
        pins.verify_device_parity(&dev).unwrap();
    }

    #[test]
    fn parity_detects_out_of_band_unpin() {
        let (mut dev, mut pins) = setup(2);
        let (eid, _) = pins
            .pin(&mut dev, SimTime::ZERO, TenantId(0), Lba(0), 1)
            .unwrap();
        // Something bypasses the arbiter and flushes on the raw device.
        dev.ba_flush(SimTime::ZERO, eid).unwrap();
        assert!(matches!(
            pins.verify_device_parity(&dev),
            Err(PinError::Parity(_))
        ));
    }

    #[test]
    fn power_loss_dump_covers_all_tenants_pins() {
        use twob_sim::SimDuration;
        let (mut dev, mut pins) = setup(2);
        let now = SimTime::ZERO;
        let (e0, d0) = pins.pin(&mut dev, now, TenantId(0), Lba(0), 1).unwrap();
        let (e1, d1) = pins.pin(&mut dev, now, TenantId(1), Lba(10), 1).unwrap();
        let t = d0.complete_at.max(d1.complete_at);
        for (tenant, eid, payload) in [
            (TenantId(0), e0, b"tenant-zero".as_slice()),
            (TenantId(1), e1, b"tenant-one!".as_slice()),
        ] {
            let s = pins.write(&mut dev, t, tenant, eid, 0, payload).unwrap();
            pins.sync_range(&mut dev, s.retired_at, tenant, eid, 0, payload.len() as u64)
                .unwrap();
        }
        let cut = t + SimDuration::from_micros(100);
        assert!(dev.power_loss(cut).dumped);
        let up = cut + SimDuration::from_millis(1);
        assert!(dev.power_on(up).restored);
        assert_eq!(pins.reattach(&dev, up).unwrap(), 2);
        pins.verify_device_parity(&dev).unwrap();
        for (tenant, eid, payload) in [
            (TenantId(0), e0, b"tenant-zero".as_slice()),
            (TenantId(1), e1, b"tenant-one!".as_slice()),
        ] {
            let r = pins
                .read(&mut dev, up, tenant, eid, 0, payload.len() as u64)
                .unwrap();
            assert_eq!(r.data, payload, "{tenant} lost its pinned bytes");
        }
    }

    #[test]
    fn front_end_selection_routes_accesses() {
        let (mut dev, mut pins) = setup(2);
        let (eid, done) = pins
            .pin(&mut dev, SimTime::ZERO, TenantId(0), Lba(0), 1)
            .unwrap();
        let t = done.complete_at;
        assert_eq!(
            pins.entry_info(eid).unwrap().front_end,
            RegionFrontEnd::BaMmio,
            "pins default to the paper's MMIO front-end"
        );
        pins.set_front_end(t, TenantId(0), eid, RegionFrontEnd::Cxl)
            .unwrap();
        let s = pins
            .write(&mut dev, t, TenantId(0), eid, 0, b"via cxl")
            .unwrap();
        let sync = pins
            .sync_range(&mut dev, s.retired_at, TenantId(0), eid, 0, 7)
            .unwrap();
        let r = pins
            .read(&mut dev, sync.complete_at, TenantId(0), eid, 0, 7)
            .unwrap();
        assert_eq!(r.data, b"via cxl");
        let stats = dev.stats();
        assert_eq!(
            (stats.cxl_stores, stats.cxl_persists, stats.cxl_loads),
            (1, 1, 1),
            "all three accesses should have taken the CXL path"
        );
        assert_eq!(stats.mmio_stores, 0);
    }

    #[test]
    fn block_front_end_is_rejected_while_pinned() {
        let (mut dev, mut pins) = setup(2);
        let (eid, done) = pins
            .pin(&mut dev, SimTime::ZERO, TenantId(0), Lba(0), 1)
            .unwrap();
        assert_eq!(
            pins.set_front_end(done.complete_at, TenantId(0), eid, RegionFrontEnd::Block)
                .unwrap_err(),
            PinError::BadFrontEnd {
                eid,
                front_end: RegionFrontEnd::Block
            }
        );
        // Non-owners cannot flip someone else's front-end either.
        assert!(matches!(
            pins.set_front_end(done.complete_at, TenantId(1), eid, RegionFrontEnd::Cxl),
            Err(PinError::NotOwner { .. })
        ));
    }

    #[test]
    fn front_end_survives_reattach() {
        use twob_sim::SimDuration;
        let (mut dev, mut pins) = setup(2);
        let (eid, done) = pins
            .pin(&mut dev, SimTime::ZERO, TenantId(0), Lba(0), 1)
            .unwrap();
        let t = done.complete_at;
        pins.set_front_end(t, TenantId(0), eid, RegionFrontEnd::Cxl)
            .unwrap();
        let s = pins
            .write(&mut dev, t, TenantId(0), eid, 0, b"survive")
            .unwrap();
        pins.sync_range(&mut dev, s.retired_at, TenantId(0), eid, 0, 7)
            .unwrap();
        let cut = t + SimDuration::from_micros(100);
        assert!(dev.power_loss(cut).dumped);
        let up = cut + SimDuration::from_millis(1);
        assert!(dev.power_on(up).restored);
        assert_eq!(pins.reattach(&dev, up).unwrap(), 1);
        assert_eq!(pins.entry_info(eid).unwrap().front_end, RegionFrontEnd::Cxl);
        let r = pins.read(&mut dev, up, TenantId(0), eid, 0, 7).unwrap();
        assert_eq!(r.data, b"survive");
    }

    #[test]
    fn unknown_tenants_and_bad_configs_error() {
        let (mut dev, mut pins) = setup(2);
        assert_eq!(
            pins.pin(&mut dev, SimTime::ZERO, TenantId(9), Lba(0), 1)
                .unwrap_err(),
            PinError::UnknownTenant(TenantId(9))
        );
        // More tenants than buffer pages: unshareable.
        assert!(matches!(
            PinTable::new(dev.spec(), u16::MAX),
            Err(PinError::ShareExhausted(_))
        ));
    }
}
