//! The 2B-SSD device: both I/O paths, the BA API, and power-loss handling.

use serde::{Deserialize, Serialize};
use twob_ftl::Lba;
use twob_pcie::{
    AddressTranslationUnit, Bar, CxlChannel, CxlTimings, HostByteChannel, PcieTimings,
};
use twob_sim::{SimTime, TraceEvent, TraceRing};
use twob_ssd::{BlockDevice, BlockRead, Ssd, SsdConfig, SsdError};

use crate::{
    BaBuffer, DumpOutcome, EntryId, MappingEntry, MappingTable, ReadDmaEngine, RecoveryManager,
    RecoveryReport, TwoBError, TwoBSpec,
};

/// Completion of a BA API call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApiCompletion {
    /// When the call's effect is complete (durable where applicable).
    pub complete_at: SimTime,
}

/// Completion of an MMIO store through the byte path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MmioStoreOutcome {
    /// When the store retires on the CPU. The data is *not* durable yet;
    /// call [`TwoBSsd::ba_sync`] for that.
    pub retired_at: SimTime,
}

/// A read through the byte path (MMIO or read-DMA).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MmioReadOutcome {
    /// The bytes read.
    pub data: Vec<u8>,
    /// Completion instant.
    pub complete_at: SimTime,
}

/// Who may pin which LBAs (the OS-enforced check of paper §III-C).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PermissionPolicy {
    /// Any LBA may be pinned.
    AllowAll,
    /// Only LBAs inside one of the listed `[start, end)` ranges may be
    /// pinned.
    Ranges(Vec<(u64, u64)>),
}

impl PermissionPolicy {
    fn allows(&self, lba: Lba, pages: u32) -> bool {
        match self {
            PermissionPolicy::AllowAll => true,
            PermissionPolicy::Ranges(ranges) => {
                let (a, b) = (lba.0, lba.0 + u64::from(pages));
                ranges.iter().any(|&(s, e)| s <= a && b <= e)
            }
        }
    }
}

/// Operation counters for the byte path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TwoBStats {
    /// `BA_PIN` calls served.
    pub pins: u64,
    /// `BA_FLUSH` calls served.
    pub flushes: u64,
    /// `BA_SYNC` calls served.
    pub syncs: u64,
    /// `BA_READ_DMA` calls served.
    pub dma_reads: u64,
    /// MMIO stores served.
    pub mmio_stores: u64,
    /// MMIO loads served.
    pub mmio_loads: u64,
    /// CXL.mem stores served.
    pub cxl_stores: u64,
    /// CXL.mem loads served.
    pub cxl_loads: u64,
    /// CXL persist barriers served.
    pub cxl_persists: u64,
    /// Bytes written through the byte path.
    pub bytes_stored: u64,
    /// Power-loss events survived with a complete dump.
    pub clean_dumps: u64,
    /// Power-loss events that lost data (dump impossible).
    pub data_loss_events: u64,
}

/// The dual byte- and block-addressable SSD.
///
/// See the crate docs for the architecture and an example. The block path
/// is available through the [`BlockDevice`] impl and behaves exactly like
/// the underlying base SSD, except that writes overlapping a pinned range
/// are gated by the LBA checker.
#[derive(Debug, Clone)]
pub struct TwoBSsd {
    ssd: Ssd,
    spec: TwoBSpec,
    bar1: Bar,
    atu: AddressTranslationUnit,
    chan: HostByteChannel,
    cxl: CxlChannel,
    buffer: BaBuffer,
    table: MappingTable,
    dma: ReadDmaEngine,
    recovery: RecoveryManager,
    policy: PermissionPolicy,
    stats: TwoBStats,
    trace: TraceRing,
}

impl TwoBSsd {
    /// Builds a 2B-SSD over an explicit base-device profile.
    ///
    /// # Panics
    ///
    /// Panics if the profile lacks an internal datapath or reserves too few
    /// blocks to hold a full BA-buffer dump.
    pub fn new(cfg: SsdConfig, spec: TwoBSpec) -> Self {
        assert!(
            cfg.internal_datapath_bytes_per_sec > 0,
            "2B-SSD needs the base device's internal datapath"
        );
        let reserved_pages =
            u64::from(cfg.ftl.reserved_blocks) * u64::from(cfg.geometry.pages_per_block);
        assert!(
            reserved_pages > spec.ba_buffer_pages(),
            "reserved area ({reserved_pages} pages) cannot hold the BA-buffer dump"
        );
        let ssd = Ssd::new(cfg);
        let bar1 = Bar::new(1, spec.ba_buffer_bytes);
        let mut atu = AddressTranslationUnit::new();
        // One inbound window: the whole BAR1 range maps 1:1 onto the
        // BA-buffer region of the internal DRAM.
        atu.map(0, 0, spec.ba_buffer_bytes);
        TwoBSsd {
            ssd,
            bar1,
            atu,
            chan: HostByteChannel::new(PcieTimings::default()),
            cxl: CxlChannel::new(CxlTimings::default()),
            buffer: BaBuffer::new(spec.ba_buffer_bytes),
            table: MappingTable::new(spec.max_entries, spec.ba_buffer_bytes),
            dma: ReadDmaEngine::new(),
            recovery: RecoveryManager::new(),
            policy: PermissionPolicy::AllowAll,
            stats: TwoBStats::default(),
            trace: TraceRing::with_capacity(256),
            spec,
        }
    }

    /// Builds a 2B-SSD with the stock base profile
    /// ([`SsdConfig::base_2b`]).
    pub fn with_spec(spec: TwoBSpec) -> Self {
        TwoBSsd::new(SsdConfig::base_2b(), spec)
    }

    /// A small, fast device for tests: shrunken geometry and a 64 KiB
    /// BA-buffer.
    pub fn small_for_tests() -> Self {
        TwoBSsd::new(SsdConfig::base_2b().small(), TwoBSpec::small_for_tests())
    }

    /// The device specification (paper Table I).
    pub fn spec(&self) -> &TwoBSpec {
        &self.spec
    }

    /// The underlying base SSD (read-only).
    pub fn ssd(&self) -> &Ssd {
        &self.ssd
    }

    /// Byte-path operation counters.
    pub fn stats(&self) -> TwoBStats {
        self.stats
    }

    /// Enables or disables API-call tracing (disabled by default; keeps
    /// the last 256 events). Also enables the base SSD's device trace, so
    /// background GC steps and buffer dumps appear alongside BA-path calls.
    pub fn set_tracing(&mut self, enabled: bool) {
        self.trace.set_enabled(enabled);
        self.ssd.set_tracing(enabled);
    }

    /// The retained trace events — BA-path calls merged with the base
    /// SSD's block/GC/dump events — in time order, oldest first.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        let mut events: Vec<TraceEvent> = self.trace.iter().cloned().collect();
        events.extend(self.ssd.trace_events());
        events.sort_by_key(|e| e.at);
        events
    }

    /// Advances the base SSD's background stages (buffer dumps, GC steps)
    /// up to `now`; see [`Ssd::drive_background`]. The [`IoCalendar`]
    /// calls this on every dispatch so background traffic contends in
    /// virtual time even across pure byte-path operations.
    ///
    /// [`IoCalendar`]: crate::IoCalendar
    pub fn drive_background(&mut self, now: SimTime) {
        self.ssd.drive_background(now);
    }

    /// Runs every pending background event to completion and returns the
    /// instant the base SSD goes idle; see [`Ssd::quiesce_background`].
    pub fn quiesce_background(&mut self) -> SimTime {
        self.ssd.quiesce_background()
    }

    /// Live mapping-table entries, in EID order.
    pub fn entries(&self) -> Vec<MappingEntry> {
        self.table.iter().copied().collect()
    }

    /// Installs the OS permission policy consulted by [`TwoBSsd::ba_pin`].
    pub fn set_permission_policy(&mut self, policy: PermissionPolicy) {
        self.policy = policy;
    }

    /// Lowest free entry ID, if the table has room.
    pub fn free_eid(&self) -> Option<EntryId> {
        self.table.free_eid()
    }

    /// Validates the device's structural invariants; used by fuzz-style
    /// tests after every API call.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        let entries = self.entries();
        if entries.len() > self.spec.max_entries {
            return Err(format!(
                "{} live entries exceed the table capacity {}",
                entries.len(),
                self.spec.max_entries
            ));
        }
        for (i, a) in entries.iter().enumerate() {
            if a.buffer_end() > self.spec.ba_buffer_bytes {
                return Err(format!("entry {} exceeds the BA-buffer", a.eid));
            }
            if a.start_lba.0 + u64::from(a.pages) > self.ssd.capacity_pages() {
                return Err(format!("entry {} exceeds the device", a.eid));
            }
            for b in &entries[i + 1..] {
                if a.buffer_overlaps(b.buffer_offset, b.len_bytes()) {
                    return Err(format!(
                        "entries {} and {} overlap in the buffer",
                        a.eid, b.eid
                    ));
                }
                if a.lba_overlaps(b.start_lba, b.pages) {
                    return Err(format!(
                        "entries {} and {} overlap in LBA space",
                        a.eid, b.eid
                    ));
                }
            }
            // The LBA checker must gate every pinned range.
            if self.ssd.gated_overlap(a.start_lba, a.pages).is_none() {
                return Err(format!("entry {} is not gated by the LBA checker", a.eid));
            }
        }
        Ok(())
    }

    /// Lowest free page-aligned buffer offset with room for `pages`.
    pub fn free_buffer_offset(&self, pages: u32) -> Option<u64> {
        self.table.free_buffer_offset(pages)
    }

    fn check_power(&self) -> Result<(), TwoBError> {
        if self.ssd.is_powered() {
            Ok(())
        } else {
            Err(TwoBError::PoweredOff)
        }
    }

    /// `BA_PIN(EID, offset, LBA, length)`: loads `pages` pages starting at
    /// `lba` into the BA-buffer at `buffer_offset`, registers the mapping,
    /// and gates block writes to the range (paper §III-C).
    ///
    /// # Errors
    ///
    /// Permission, overlap, alignment, and capacity violations; see
    /// [`TwoBError`].
    pub fn ba_pin(
        &mut self,
        now: SimTime,
        eid: EntryId,
        buffer_offset: u64,
        lba: Lba,
        pages: u32,
    ) -> Result<ApiCompletion, TwoBError> {
        self.check_power()?;
        if !self.policy.allows(lba, pages) {
            return Err(TwoBError::PermissionDenied { lba: lba.0 });
        }
        self.table.insert(eid, buffer_offset, lba, pages)?;
        // Internal datapath: NAND → BA-buffer.
        let read = match self
            .ssd
            .internal_read_pages(now + self.spec.api_overhead, lba, pages)
        {
            Ok(read) => read,
            Err(e) => {
                // Roll the entry back so a failed pin leaves no trace.
                let _ = self.table.remove(eid);
                return Err(e.into());
            }
        };
        self.buffer.write_direct(buffer_offset, &read.data);
        self.ssd.lba_checker_pin(lba, pages);
        self.stats.pins += 1;
        self.trace.push(
            now,
            "ba_pin",
            format!("{eid} offset={buffer_offset} {lba} pages={pages}"),
        );
        Ok(ApiCompletion {
            complete_at: read.complete_at,
        })
    }

    /// Convenience pin that picks the lowest free EID and buffer window.
    ///
    /// # Errors
    ///
    /// [`TwoBError::EntryInUse`] if the table is full,
    /// [`TwoBError::BufferOutOfRange`] if no window fits, or any
    /// [`TwoBSsd::ba_pin`] error.
    pub fn ba_pin_auto(
        &mut self,
        now: SimTime,
        lba: Lba,
        pages: u32,
    ) -> Result<(EntryId, ApiCompletion), TwoBError> {
        let eid = self.table.free_eid().ok_or(TwoBError::EntryInUse(EntryId(
            self.spec.max_entries.saturating_sub(1) as u8,
        )))?;
        let offset = self
            .table
            .free_buffer_offset(pages)
            .ok_or(TwoBError::BufferOutOfRange {
                offset: 0,
                len: u64::from(pages) * 4096,
                capacity: self.spec.ba_buffer_bytes,
            })?;
        let completion = self.ba_pin(now, eid, offset, lba, pages)?;
        Ok((eid, completion))
    }

    /// `BA_FLUSH(EID)`: writes the entry's BA-buffer contents to its pinned
    /// NAND pages over the internal datapath, then removes the entry and
    /// lifts the write gate (paper §III-C).
    ///
    /// Note: only data resident in the BA-buffer is flushed. Bytes still in
    /// the host CPU's WC buffers are *not* on the device yet — call
    /// [`TwoBSsd::ba_sync`] first, as the paper's BA commit protocol does.
    ///
    /// # Errors
    ///
    /// [`TwoBError::EntryNotFound`] or back-end failures.
    pub fn ba_flush(&mut self, now: SimTime, eid: EntryId) -> Result<ApiCompletion, TwoBError> {
        self.check_power()?;
        let entry = *self.table.get(eid).ok_or(TwoBError::EntryNotFound(eid))?;
        self.buffer.settle(now);
        let data = self
            .buffer
            .read(entry.buffer_offset, entry.len_bytes())
            .to_vec();
        let done =
            self.ssd
                .internal_write_pages(now + self.spec.api_overhead, entry.start_lba, &data)?;
        self.table.remove(eid)?;
        self.ssd.lba_checker_unpin(entry.start_lba, entry.pages);
        self.stats.flushes += 1;
        self.trace
            .push(now, "ba_flush", format!("{eid} -> {}", entry.start_lba));
        Ok(ApiCompletion { complete_at: done })
    }

    /// `BA_SYNC(EID)`: makes all prior MMIO stores to the entry's window
    /// durable — `clflush` of every line in the window, `mfence`, then the
    /// write-verify read (paper §III-C and Fig 3).
    ///
    /// # Errors
    ///
    /// [`TwoBError::EntryNotFound`].
    pub fn ba_sync(&mut self, now: SimTime, eid: EntryId) -> Result<ApiCompletion, TwoBError> {
        self.check_power()?;
        let entry = *self.table.get(eid).ok_or(TwoBError::EntryNotFound(eid))?;
        let sync = self
            .chan
            .sync_range(now, entry.buffer_offset, entry.len_bytes());
        for posted in &sync.posted {
            let dram = self
                .atu
                .translate(posted.offset, posted.data.len() as u64)?;
            self.buffer.apply_posted(&twob_pcie::PostedWrite {
                offset: dram,
                data: posted.data.clone(),
                lands_at: posted.lands_at,
            });
        }
        self.buffer.settle(now);
        self.stats.syncs += 1;
        Ok(ApiCompletion {
            complete_at: sync.durable_at,
        })
    }

    /// Range-limited variant of [`TwoBSsd::ba_sync`]: `clflush` covers only
    /// `[rel_offset, rel_offset+len)` of the entry's window. The paper's
    /// WAL ports know exactly which bytes they appended, so they flush only
    /// those lines instead of the whole multi-megabyte segment window —
    /// this is what keeps BA commit latency in the microsecond range.
    ///
    /// # Errors
    ///
    /// [`TwoBError::EntryNotFound`] or [`TwoBError::OutsideEntry`].
    pub fn ba_sync_range(
        &mut self,
        now: SimTime,
        eid: EntryId,
        rel_offset: u64,
        len: u64,
    ) -> Result<ApiCompletion, TwoBError> {
        self.check_power()?;
        let entry = *self.table.get(eid).ok_or(TwoBError::EntryNotFound(eid))?;
        if len == 0 {
            return Err(TwoBError::EmptyRequest);
        }
        if rel_offset + len > entry.len_bytes() {
            return Err(TwoBError::OutsideEntry {
                eid,
                offset: rel_offset,
                len,
            });
        }
        let sync = self
            .chan
            .sync_range(now, entry.buffer_offset + rel_offset, len);
        for posted in &sync.posted {
            let dram = self
                .atu
                .translate(posted.offset, posted.data.len() as u64)?;
            self.buffer.apply_posted(&twob_pcie::PostedWrite {
                offset: dram,
                data: posted.data.clone(),
                lands_at: posted.lands_at,
            });
        }
        self.buffer.settle(now);
        self.stats.syncs += 1;
        Ok(ApiCompletion {
            complete_at: sync.durable_at,
        })
    }

    /// `BA_GET_ENTRY_INFO(EID)`: the entry's mapping details.
    ///
    /// # Errors
    ///
    /// [`TwoBError::EntryNotFound`].
    pub fn ba_entry_info(&self, eid: EntryId) -> Result<MappingEntry, TwoBError> {
        self.table
            .get(eid)
            .copied()
            .ok_or(TwoBError::EntryNotFound(eid))
    }

    /// `BA_READ_DMA(EID, dst, length)`: programs the read-DMA engine to
    /// copy up to `len` bytes from the entry's window (starting at
    /// `rel_offset`) to the host; completes with an interrupt
    /// (paper §III-C).
    ///
    /// # Errors
    ///
    /// [`TwoBError::EntryNotFound`] or [`TwoBError::OutsideEntry`].
    pub fn ba_read_dma(
        &mut self,
        now: SimTime,
        eid: EntryId,
        rel_offset: u64,
        len: u64,
    ) -> Result<MmioReadOutcome, TwoBError> {
        self.check_power()?;
        let entry = *self.table.get(eid).ok_or(TwoBError::EntryNotFound(eid))?;
        if len == 0 {
            return Err(TwoBError::EmptyRequest);
        }
        if rel_offset + len > entry.len_bytes() {
            return Err(TwoBError::OutsideEntry {
                eid,
                offset: rel_offset,
                len,
            });
        }
        self.buffer.settle(now);
        let data = self
            .buffer
            .read(entry.buffer_offset + rel_offset, len)
            .to_vec();
        let complete_at = self
            .dma
            .transfer(&self.spec, now + self.spec.api_overhead, len);
        self.stats.dma_reads += 1;
        Ok(MmioReadOutcome { data, complete_at })
    }

    /// Stores `data` into the entry's window at `rel_offset` through the
    /// MMIO byte path (a plain `memcpy` on the host). Fast, but durable
    /// only after [`TwoBSsd::ba_sync`].
    ///
    /// # Errors
    ///
    /// [`TwoBError::EntryNotFound`] or [`TwoBError::OutsideEntry`].
    pub fn mmio_write(
        &mut self,
        now: SimTime,
        eid: EntryId,
        rel_offset: u64,
        data: &[u8],
    ) -> Result<MmioStoreOutcome, TwoBError> {
        self.check_power()?;
        let entry = *self.table.get(eid).ok_or(TwoBError::EntryNotFound(eid))?;
        if data.is_empty() {
            return Err(TwoBError::EmptyRequest);
        }
        if rel_offset + data.len() as u64 > entry.len_bytes() {
            return Err(TwoBError::OutsideEntry {
                eid,
                offset: rel_offset,
                len: data.len() as u64,
            });
        }
        self.mmio_write_at(now, entry.buffer_offset + rel_offset, data)
    }

    /// Raw MMIO store at an absolute BAR1 offset (no entry required; the
    /// hardware does not stop the host from writing unpinned buffer space).
    ///
    /// # Errors
    ///
    /// [`TwoBError::Bar`] when the access leaves the BAR window.
    pub fn mmio_write_at(
        &mut self,
        now: SimTime,
        bar_offset: u64,
        data: &[u8],
    ) -> Result<MmioStoreOutcome, TwoBError> {
        self.check_power()?;
        self.bar1.check(bar_offset, data.len() as u64)?;
        let outcome = self.chan.store(now, bar_offset, data);
        for posted in &outcome.posted {
            let dram = self
                .atu
                .translate(posted.offset, posted.data.len() as u64)?;
            self.buffer.apply_posted(&twob_pcie::PostedWrite {
                offset: dram,
                data: posted.data.clone(),
                lands_at: posted.lands_at,
            });
        }
        self.stats.mmio_stores += 1;
        self.stats.bytes_stored += data.len() as u64;
        Ok(MmioStoreOutcome {
            retired_at: outcome.retired_at,
        })
    }

    /// Loads `len` bytes from the entry's window at `rel_offset` through
    /// MMIO — serialized 8-byte non-posted TLPs, so slow for bulk data
    /// (use [`TwoBSsd::ba_read_dma`] beyond ~2 KiB).
    ///
    /// # Errors
    ///
    /// [`TwoBError::EntryNotFound`] or [`TwoBError::OutsideEntry`].
    pub fn mmio_read(
        &mut self,
        now: SimTime,
        eid: EntryId,
        rel_offset: u64,
        len: u64,
    ) -> Result<MmioReadOutcome, TwoBError> {
        self.check_power()?;
        let entry = *self.table.get(eid).ok_or(TwoBError::EntryNotFound(eid))?;
        if len == 0 {
            return Err(TwoBError::EmptyRequest);
        }
        if rel_offset + len > entry.len_bytes() {
            return Err(TwoBError::OutsideEntry {
                eid,
                offset: rel_offset,
                len,
            });
        }
        let bar_offset = entry.buffer_offset + rel_offset;
        self.bar1.check(bar_offset, len)?;
        let read = self.chan.read(now, len);
        for posted in &read.posted {
            let dram = self
                .atu
                .translate(posted.offset, posted.data.len() as u64)?;
            self.buffer.apply_posted(&twob_pcie::PostedWrite {
                offset: dram,
                data: posted.data.clone(),
                lands_at: posted.lands_at,
            });
        }
        let dram = self.atu.translate(bar_offset, len)?;
        let data = self.buffer.read(dram, len).to_vec();
        self.stats.mmio_loads += 1;
        Ok(MmioReadOutcome {
            data,
            complete_at: read.complete_at,
        })
    }

    /// Stores `data` into the entry's window at `rel_offset` through the
    /// CXL.mem byte path: ordinary cache-line stores against the mapped
    /// window. Retires at cache speed; durable only after
    /// [`TwoBSsd::cxl_persist`].
    ///
    /// # Errors
    ///
    /// [`TwoBError::EntryNotFound`] or [`TwoBError::OutsideEntry`].
    pub fn cxl_store(
        &mut self,
        now: SimTime,
        eid: EntryId,
        rel_offset: u64,
        data: &[u8],
    ) -> Result<MmioStoreOutcome, TwoBError> {
        self.check_power()?;
        let entry = *self.table.get(eid).ok_or(TwoBError::EntryNotFound(eid))?;
        if data.is_empty() {
            return Err(TwoBError::EmptyRequest);
        }
        if rel_offset + data.len() as u64 > entry.len_bytes() {
            return Err(TwoBError::OutsideEntry {
                eid,
                offset: rel_offset,
                len: data.len() as u64,
            });
        }
        let bar_offset = entry.buffer_offset + rel_offset;
        self.bar1.check(bar_offset, data.len() as u64)?;
        let outcome = self.cxl.store(now, bar_offset, data);
        for posted in &outcome.posted {
            let dram = self
                .atu
                .translate(posted.offset, posted.data.len() as u64)?;
            self.buffer.apply_posted(&twob_pcie::PostedWrite {
                offset: dram,
                data: posted.data.clone(),
                lands_at: posted.lands_at,
            });
        }
        self.stats.cxl_stores += 1;
        self.stats.bytes_stored += data.len() as u64;
        Ok(MmioStoreOutcome {
            retired_at: outcome.retired_at,
        })
    }

    /// Loads `len` bytes from the entry's window at `rel_offset` through
    /// the CXL.mem byte path — streamed 64-byte lines, so bulk reads are
    /// more than an order of magnitude faster than MMIO's serialized
    /// 8-byte TLPs.
    ///
    /// # Errors
    ///
    /// [`TwoBError::EntryNotFound`] or [`TwoBError::OutsideEntry`].
    pub fn cxl_load(
        &mut self,
        now: SimTime,
        eid: EntryId,
        rel_offset: u64,
        len: u64,
    ) -> Result<MmioReadOutcome, TwoBError> {
        self.check_power()?;
        let entry = *self.table.get(eid).ok_or(TwoBError::EntryNotFound(eid))?;
        if len == 0 {
            return Err(TwoBError::EmptyRequest);
        }
        if rel_offset + len > entry.len_bytes() {
            return Err(TwoBError::OutsideEntry {
                eid,
                offset: rel_offset,
                len,
            });
        }
        let bar_offset = entry.buffer_offset + rel_offset;
        self.bar1.check(bar_offset, len)?;
        let read = self.cxl.load(now, len);
        for posted in &read.posted {
            let dram = self
                .atu
                .translate(posted.offset, posted.data.len() as u64)?;
            self.buffer.apply_posted(&twob_pcie::PostedWrite {
                offset: dram,
                data: posted.data.clone(),
                lands_at: posted.lands_at,
            });
        }
        let dram = self.atu.translate(bar_offset, len)?;
        let data = self.buffer.read(dram, len).to_vec();
        self.stats.cxl_loads += 1;
        Ok(MmioReadOutcome {
            data,
            complete_at: read.complete_at,
        })
    }

    /// The CXL persist barrier over `[rel_offset, rel_offset+len)` of the
    /// entry's window — the CXL analogue of [`TwoBSsd::ba_sync_range`]:
    /// flushes the touched lines, writes dirty data back, and completes
    /// when the device's persistence domain holds it. Same
    /// acknowledged-durability contract as the MMIO sync, different
    /// pricing (no verify-read round trip).
    ///
    /// # Errors
    ///
    /// [`TwoBError::EntryNotFound`] or [`TwoBError::OutsideEntry`].
    pub fn cxl_persist(
        &mut self,
        now: SimTime,
        eid: EntryId,
        rel_offset: u64,
        len: u64,
    ) -> Result<ApiCompletion, TwoBError> {
        self.check_power()?;
        let entry = *self.table.get(eid).ok_or(TwoBError::EntryNotFound(eid))?;
        if len == 0 {
            return Err(TwoBError::EmptyRequest);
        }
        if rel_offset + len > entry.len_bytes() {
            return Err(TwoBError::OutsideEntry {
                eid,
                offset: rel_offset,
                len,
            });
        }
        let sync = self
            .cxl
            .persist_barrier(now, entry.buffer_offset + rel_offset, len);
        for posted in &sync.posted {
            let dram = self
                .atu
                .translate(posted.offset, posted.data.len() as u64)?;
            self.buffer.apply_posted(&twob_pcie::PostedWrite {
                offset: dram,
                data: posted.data.clone(),
                lands_at: posted.lands_at,
            });
        }
        self.buffer.settle(now);
        self.stats.cxl_persists += 1;
        Ok(ApiCompletion {
            complete_at: sync.durable_at,
        })
    }

    /// Simulates a power failure at `now`:
    ///
    /// 1. Bytes still in the host's WC buffers are lost (never reached the
    ///    device).
    /// 2. Posted writes that had not landed are rolled back.
    /// 3. The recovery manager dumps the BA-buffer and mapping table to the
    ///    reserved NAND area on capacitor energy — if the budget allows.
    pub fn power_loss(&mut self, now: SimTime) -> DumpOutcome {
        self.trace.push(now, "power_loss", String::new());
        self.chan.power_loss();
        self.cxl.power_loss();
        self.buffer.power_loss(now);
        let outcome = self
            .recovery
            .dump(&self.spec, &mut self.ssd, &self.table, &self.buffer);
        if outcome.dumped {
            self.stats.clean_dumps += 1;
        } else {
            self.stats.data_loss_events += 1;
        }
        self.ssd.power_loss(now);
        outcome
    }

    /// Restores power at `now`, reloading the BA-buffer and mapping table
    /// from the last dump (if one is found) and re-arming the LBA checker.
    pub fn power_on(&mut self, now: SimTime) -> RecoveryReport {
        self.ssd.power_on(now);
        match self.recovery.restore(&self.spec, &mut self.ssd) {
            Some((table, buffer, generation)) => {
                for entry in table.iter() {
                    self.ssd.lba_checker_pin(entry.start_lba, entry.pages);
                }
                let entries = table.len();
                self.table = table;
                self.buffer.restore(&buffer);
                RecoveryReport {
                    restored: true,
                    generation,
                    entries,
                }
            }
            None => RecoveryReport {
                restored: false,
                generation: self.recovery.generation(),
                entries: 0,
            },
        }
    }
}

impl TwoBSsd {
    /// TRIM through the block path; gated by the LBA checker like writes.
    ///
    /// # Errors
    ///
    /// As for the underlying device's TRIM.
    pub fn trim(&mut self, now: SimTime, lba: Lba, pages: u32) -> Result<SimTime, SsdError> {
        self.ssd.trim(now, lba, pages)
    }
}

impl BlockDevice for TwoBSsd {
    fn label(&self) -> &str {
        self.ssd.label()
    }

    fn page_size(&self) -> usize {
        self.ssd.page_size()
    }

    fn capacity_pages(&self) -> u64 {
        self.ssd.capacity_pages()
    }

    fn read_pages(&mut self, now: SimTime, lba: Lba, pages: u32) -> Result<BlockRead, SsdError> {
        self.ssd.read(now, lba, pages)
    }

    fn write_pages(&mut self, now: SimTime, lba: Lba, data: &[u8]) -> Result<SimTime, SsdError> {
        self.ssd.write(now, lba, data)
    }

    fn flush(&mut self, now: SimTime) -> SimTime {
        self.ssd.flush(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twob_sim::SimDuration;

    fn dev() -> TwoBSsd {
        TwoBSsd::small_for_tests()
    }

    #[test]
    fn pin_write_sync_flush_round_trip() {
        let mut d = dev();
        let now = SimTime::ZERO;
        let pin = d.ba_pin(now, EntryId(0), 0, Lba(4), 1).unwrap();
        let store = d
            .mmio_write(pin.complete_at, EntryId(0), 100, b"byte path!")
            .unwrap();
        let sync = d.ba_sync(store.retired_at, EntryId(0)).unwrap();
        let flush = d.ba_flush(sync.complete_at, EntryId(0)).unwrap();
        // The data is now on NAND, visible through the *block* path.
        let read = d.read_pages(flush.complete_at, Lba(4), 1).unwrap();
        assert_eq!(&read.data[100..110], b"byte path!");
        // Entry is gone.
        assert!(matches!(
            d.ba_entry_info(EntryId(0)),
            Err(TwoBError::EntryNotFound(_))
        ));
    }

    #[test]
    fn pin_loads_existing_nand_data() {
        let mut d = dev();
        let now = SimTime::ZERO;
        let page: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        let ack = d.write_pages(now, Lba(9), &page).unwrap();
        let pin = d.ba_pin(ack, EntryId(1), 4096, Lba(9), 1).unwrap();
        let read = d.mmio_read(pin.complete_at, EntryId(1), 0, 64).unwrap();
        assert_eq!(read.data, page[..64]);
    }

    #[test]
    fn block_writes_to_pinned_range_are_gated() {
        let mut d = dev();
        let now = SimTime::ZERO;
        d.ba_pin(now, EntryId(0), 0, Lba(10), 2).unwrap();
        let err = d.write_pages(now, Lba(11), &vec![0u8; 4096]).unwrap_err();
        assert!(matches!(err, SsdError::GatedByLbaChecker { lba: 11 }));
        // After flush the gate lifts.
        d.ba_flush(now, EntryId(0)).unwrap();
        assert!(d.write_pages(now, Lba(11), &vec![0u8; 4096]).is_ok());
    }

    #[test]
    fn dual_path_same_file_view() {
        // The headline feature: the same LBAs via both paths.
        let mut d = dev();
        let now = SimTime::ZERO;
        let block_data = vec![0x42u8; 4096];
        let ack = d.write_pages(now, Lba(0), &block_data).unwrap();
        let pin = d.ba_pin(ack, EntryId(0), 0, Lba(0), 1).unwrap();
        // Byte path sees block-written data.
        let r = d.mmio_read(pin.complete_at, EntryId(0), 0, 16).unwrap();
        assert_eq!(r.data, vec![0x42u8; 16]);
        // Byte-path update, sync, flush: block path sees it.
        let s = d
            .mmio_write(r.complete_at, EntryId(0), 0, &[0x43u8; 16])
            .unwrap();
        let y = d.ba_sync(s.retired_at, EntryId(0)).unwrap();
        let f = d.ba_flush(y.complete_at, EntryId(0)).unwrap();
        let block = d.read_pages(f.complete_at, Lba(0), 1).unwrap();
        assert_eq!(&block.data[..16], &[0x43u8; 16]);
        assert_eq!(&block.data[16..], &block_data[16..]);
    }

    #[test]
    fn auto_pin_allocates_disjoint_windows() {
        let mut d = dev();
        let now = SimTime::ZERO;
        let (e0, _) = d.ba_pin_auto(now, Lba(0), 2).unwrap();
        let (e1, _) = d.ba_pin_auto(now, Lba(10), 2).unwrap();
        assert_ne!(e0, e1);
        let a = d.ba_entry_info(e0).unwrap();
        let b = d.ba_entry_info(e1).unwrap();
        assert!(!a.buffer_overlaps(b.buffer_offset, b.len_bytes()));
    }

    #[test]
    fn permission_policy_blocks_pins() {
        let mut d = dev();
        d.set_permission_policy(PermissionPolicy::Ranges(vec![(0, 8)]));
        assert!(d.ba_pin(SimTime::ZERO, EntryId(0), 0, Lba(0), 4).is_ok());
        assert_eq!(
            d.ba_pin(SimTime::ZERO, EntryId(1), 32768, Lba(6), 4)
                .unwrap_err(),
            TwoBError::PermissionDenied { lba: 6 }
        );
    }

    #[test]
    fn mmio_write_outside_entry_rejected() {
        let mut d = dev();
        d.ba_pin(SimTime::ZERO, EntryId(0), 0, Lba(0), 1).unwrap();
        assert!(matches!(
            d.mmio_write(SimTime::ZERO, EntryId(0), 4090, &[0u8; 16]),
            Err(TwoBError::OutsideEntry { .. })
        ));
    }

    #[test]
    fn unsynced_data_lost_on_power_failure() {
        let mut d = dev();
        let now = SimTime::ZERO;
        let pin = d.ba_pin(now, EntryId(0), 0, Lba(0), 1).unwrap();
        let store = d
            .mmio_write(pin.complete_at, EntryId(0), 0, b"doomed")
            .unwrap();
        // No BA_SYNC: the bytes sit in the WC buffer.
        let dump = d.power_loss(store.retired_at);
        assert!(dump.dumped);
        d.power_on(store.retired_at + SimDuration::from_millis(1));
        let r = d
            .mmio_read(
                store.retired_at + SimDuration::from_millis(2),
                EntryId(0),
                0,
                6,
            )
            .unwrap();
        assert_ne!(r.data, b"doomed", "unsynced bytes must not survive");
    }

    #[test]
    fn synced_data_survives_power_failure() {
        let mut d = dev();
        let now = SimTime::ZERO;
        let pin = d.ba_pin(now, EntryId(0), 0, Lba(0), 1).unwrap();
        let store = d
            .mmio_write(pin.complete_at, EntryId(0), 0, b"durable")
            .unwrap();
        let sync = d.ba_sync(store.retired_at, EntryId(0)).unwrap();
        let dump = d.power_loss(sync.complete_at);
        assert!(dump.dumped);
        let report = d.power_on(sync.complete_at + SimDuration::from_millis(1));
        assert!(report.restored);
        assert_eq!(report.entries, 1);
        let r = d
            .mmio_read(
                sync.complete_at + SimDuration::from_millis(2),
                EntryId(0),
                0,
                7,
            )
            .unwrap();
        assert_eq!(r.data, b"durable");
    }

    #[test]
    fn recovery_rearms_lba_checker() {
        let mut d = dev();
        let now = SimTime::ZERO;
        d.ba_pin(now, EntryId(0), 0, Lba(3), 1).unwrap();
        d.power_loss(now);
        d.power_on(now + SimDuration::from_millis(1));
        let err = d
            .write_pages(now + SimDuration::from_millis(2), Lba(3), &vec![0u8; 4096])
            .unwrap_err();
        assert!(matches!(err, SsdError::GatedByLbaChecker { .. }));
    }

    #[test]
    fn insufficient_capacitors_lose_data() {
        let mut spec = TwoBSpec::small_for_tests();
        spec.capacitors_uf = 0.5;
        let mut d = TwoBSsd::new(SsdConfig::base_2b().small(), spec);
        let pin = d.ba_pin(SimTime::ZERO, EntryId(0), 0, Lba(0), 1).unwrap();
        let store = d
            .mmio_write(pin.complete_at, EntryId(0), 0, b"gone")
            .unwrap();
        let sync = d.ba_sync(store.retired_at, EntryId(0)).unwrap();
        let dump = d.power_loss(sync.complete_at);
        assert!(!dump.dumped);
        assert_eq!(d.stats().data_loss_events, 1);
        let report = d.power_on(sync.complete_at + SimDuration::from_millis(1));
        assert!(!report.restored);
    }

    #[test]
    fn dma_read_returns_window_contents() {
        let mut d = dev();
        let now = SimTime::ZERO;
        let pin = d.ba_pin(now, EntryId(0), 0, Lba(0), 2).unwrap();
        let store = d
            .mmio_write(pin.complete_at, EntryId(0), 4096, &[0x66u8; 256])
            .unwrap();
        let sync = d.ba_sync(store.retired_at, EntryId(0)).unwrap();
        let dma = d
            .ba_read_dma(sync.complete_at, EntryId(0), 4096, 256)
            .unwrap();
        assert_eq!(dma.data, vec![0x66u8; 256]);
        // DMA latency is setup-dominated (~56-58 us).
        let lat = dma.complete_at.saturating_since(sync.complete_at);
        assert!((50.0..70.0).contains(&lat.as_micros_f64()));
    }

    #[test]
    fn mmio_read_latency_matches_tlp_model() {
        let mut d = dev();
        let pin = d.ba_pin(SimTime::ZERO, EntryId(0), 0, Lba(0), 1).unwrap();
        let r = d.mmio_read(pin.complete_at, EntryId(0), 0, 4096).unwrap();
        let lat = r.complete_at.saturating_since(pin.complete_at);
        assert!(
            (145.0..156.0).contains(&lat.as_micros_f64()),
            "4K MMIO read {lat}"
        );
    }

    #[test]
    fn tracing_records_api_calls_when_enabled() {
        let mut d = dev();
        // Disabled by default: no events.
        d.ba_pin(SimTime::ZERO, EntryId(0), 0, Lba(0), 1).unwrap();
        assert!(d.trace_events().is_empty());
        d.set_tracing(true);
        d.ba_flush(SimTime::ZERO, EntryId(0)).unwrap();
        d.ba_pin(SimTime::ZERO, EntryId(1), 0, Lba(5), 1).unwrap();
        let events = d.trace_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].label, "ba_flush");
        assert_eq!(events[1].label, "ba_pin");
        assert!(events[1].detail.contains("lba:5"));
    }

    #[test]
    fn block_path_unaffected_by_byte_path() {
        // Paper §VI: block I/O shows no degradation when the memory
        // interface is enabled. Sanity-check latency equality vs a plain
        // base device.
        let mut plain = Ssd::new(SsdConfig::base_2b().small());
        let mut twob = dev();
        let page = vec![1u8; 4096];
        let a = plain.write(SimTime::ZERO, Lba(0), &page).unwrap();
        let b = twob.write_pages(SimTime::ZERO, Lba(0), &page).unwrap();
        assert_eq!(a, b);
    }
}
