//! BA-WAL: the paper's logging scheme for 2B-SSD (§IV-B, Fig 5 right).

use twob_core::{EntryId, TwoBSsd};
use twob_ftl::Lba;
use twob_sim::SimTime;
use twob_ssd::BlockDevice;

use crate::{CommitOutcome, LogRecord, Lsn, WalConfig, WalError, WalStats, WalWriter};

#[derive(Debug, Clone, Copy)]
struct Half {
    eid: EntryId,
    buffer_offset: u64,
    /// Instant this half's pin completed and it may accept appends.
    ready_at: SimTime,
    /// Bytes appended so far.
    used: u64,
}

/// BA-WAL: log records go straight into the 2B-SSD's BA-buffer.
///
/// The three phases of BA commit (paper Fig 5):
///
/// 1. **Logging** — the record is `memcpy`ed through MMIO into the active
///    half of the pinned window ("logs are written as much as exactly
///    necessary": no page alignment, no host-memory staging).
/// 2. **Commit** — `BA_SYNC` over just the appended bytes makes the record
///    durable at DRAM-like latency; the transaction completes here.
/// 3. **Flushing** — when a half fills, one `BA_FLUSH` moves the whole
///    half to its pinned NAND pages over the internal datapath while the
///    host keeps logging into the other half (double buffering), and the
///    flushed half is re-pinned at the next log-segment LBAs.
///
/// Each log page is programmed exactly once, when full — the WAF-1 claim
/// of §IV-A, which [`WalStats::log_waf`] verifies.
///
/// # Example
///
/// ```rust
/// use twob_core::TwoBSsd;
/// use twob_sim::SimTime;
/// use twob_wal::{BaWal, WalConfig, WalWriter};
///
/// let dev = TwoBSsd::small_for_tests();
/// let mut wal = BaWal::new(dev, WalConfig::default(), 4)?;
/// let out = wal.append_commit(SimTime::ZERO, b"tiny commit")?;
/// // Durable at commit, at byte-path latency (microseconds, not tens).
/// assert_eq!(out.durable_at, Some(out.commit_at));
/// # Ok::<(), twob_wal::WalError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BaWal {
    dev: TwoBSsd,
    cfg: WalConfig,
    half_pages: u32,
    halves: Vec<Half>,
    active: usize,
    next_lsn: u64,
    /// Offset (in pages, relative to the region base) where the next
    /// flushed half will be re-pinned.
    cursor_pages: u64,
    stats: WalStats,
}

impl BaWal {
    /// Creates a single-buffered BA-WAL: one pinned window of
    /// `window_pages` pages, flushed in place when full. The paper's Redis
    /// port works this way to respect Redis's single-threaded design
    /// (§IV-B) — the log path stalls during each flush.
    ///
    /// # Errors
    ///
    /// As for [`BaWal::new`].
    pub fn new_single(dev: TwoBSsd, cfg: WalConfig, window_pages: u32) -> Result<Self, WalError> {
        BaWal::with_buffers(dev, cfg, window_pages, 1)
    }

    /// Creates a BA-WAL over `dev` with two `half_pages`-page halves,
    /// double-buffered (paper §IV-B). The halves are pinned immediately.
    ///
    /// # Errors
    ///
    /// [`WalError::BadConfig`] if the halves do not fit the BA-buffer, the
    /// log region, or the device.
    pub fn new(dev: TwoBSsd, cfg: WalConfig, half_pages: u32) -> Result<Self, WalError> {
        BaWal::with_buffers(dev, cfg, half_pages, 2)
    }

    fn with_buffers(
        mut dev: TwoBSsd,
        cfg: WalConfig,
        half_pages: u32,
        buffers: usize,
    ) -> Result<Self, WalError> {
        cfg.validate().map_err(WalError::BadConfig)?;
        if half_pages == 0 {
            return Err(WalError::BadConfig("half_pages must be positive".into()));
        }
        let half_bytes = u64::from(half_pages) * 4096;
        if buffers as u64 * half_bytes > dev.spec().ba_buffer_bytes {
            return Err(WalError::BadConfig(format!(
                "{buffers} x {half_bytes}-byte windows exceed the {}-byte BA-buffer",
                dev.spec().ba_buffer_bytes
            )));
        }
        if u64::from(cfg.region_pages) < buffers as u64 * u64::from(half_pages)
            || !cfg.region_pages.is_multiple_of(half_pages)
        {
            return Err(WalError::BadConfig(
                "log region must be a multiple of half_pages and hold every window".into(),
            ));
        }
        if cfg.region_base_lba + u64::from(cfg.region_pages) > dev.capacity_pages() {
            return Err(WalError::BadConfig("log region exceeds device".into()));
        }
        let mut halves: Vec<Half> = (0..buffers)
            .map(|i| Half {
                eid: EntryId(i as u8),
                buffer_offset: i as u64 * half_bytes,
                ready_at: SimTime::ZERO,
                used: 0,
            })
            .collect();
        for (i, half) in halves.iter_mut().enumerate() {
            let lba = Lba(cfg.region_base_lba + i as u64 * u64::from(half_pages));
            let pin = dev
                .ba_pin(SimTime::ZERO, half.eid, half.buffer_offset, lba, half_pages)
                .map_err(WalError::from)?;
            half.ready_at = pin.complete_at;
        }
        Ok(BaWal {
            dev,
            cfg,
            half_pages,
            halves,
            active: 0,
            next_lsn: 0,
            cursor_pages: buffers as u64 * u64::from(half_pages),
            stats: WalStats::default(),
        })
    }

    /// The wrapped 2B-SSD (read-only).
    pub fn device(&self) -> &TwoBSsd {
        &self.dev
    }

    /// Mutable device access (fault injection in tests).
    pub fn device_mut(&mut self) -> &mut TwoBSsd {
        &mut self.dev
    }

    /// Consumes the writer, returning the device.
    pub fn into_device(self) -> TwoBSsd {
        self.dev
    }

    fn half_bytes(&self) -> u64 {
        u64::from(self.half_pages) * 4096
    }

    /// Flushes the active half to NAND, re-pins it at the next log-segment
    /// LBAs, and switches to the other half. Returns the instant the
    /// *new active half* is usable (usually the past, thanks to double
    /// buffering).
    fn rotate(&mut self, at: SimTime) -> Result<SimTime, WalError> {
        let half = self.halves[self.active];
        let flush = self.dev.ba_flush(at, half.eid)?;
        self.stats.device_page_writes += u64::from(self.half_pages);
        self.stats.distinct_pages += u64::from(self.half_pages);
        // Re-pin the flushed half at the next segment, wrapping within the
        // region. Pin cost rides the internal datapath, overlapping the
        // host's appends to the other half.
        let next_lba =
            Lba(self.cfg.region_base_lba + self.cursor_pages % u64::from(self.cfg.region_pages));
        self.cursor_pages += u64::from(self.half_pages);
        let pin = self.dev.ba_pin(
            flush.complete_at,
            half.eid,
            half.buffer_offset,
            next_lba,
            self.half_pages,
        )?;
        self.halves[self.active].ready_at = pin.complete_at;
        self.halves[self.active].used = 0;
        self.active = (self.active + 1) % self.halves.len();
        Ok(self.halves[self.active].ready_at)
    }

    /// Flushes whatever the halves hold (inactive first), e.g. at shutdown.
    /// Both halves are re-pinned afterwards, so logging may continue.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn finalize(&mut self, now: SimTime) -> Result<SimTime, WalError> {
        let mut t = now;
        for _ in 0..self.halves.len() {
            if self.halves[self.active].used > 0 {
                t = t.max(self.rotate(t)?);
            } else {
                self.active = (self.active + 1) % self.halves.len();
            }
        }
        // Every half's re-pin follows its flush, so the latest ready_at
        // bounds when all data is durable on NAND.
        let settled = self.halves.iter().map(|h| h.ready_at).max().unwrap_or(t);
        Ok(t.max(settled))
    }

    /// Decodes the records currently sitting in the BA-buffer halves
    /// (synced but not yet flushed), merged in LSN order. After a power
    /// cycle this is exactly the set of committed-but-unflushed records
    /// the recovery manager preserved.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn recover_buffered(&mut self, now: SimTime) -> Result<Vec<LogRecord>, WalError> {
        let mut records = Vec::new();
        for entry in self.dev.entries() {
            let read = self.dev.ba_read_dma(now, entry.eid, 0, entry.len_bytes())?;
            let outcome = crate::decode_stream(&read.data);
            records.extend(outcome.records);
        }
        records.sort_by_key(|r| r.lsn);
        Ok(records)
    }
}

impl WalWriter for BaWal {
    fn append_commit(&mut self, now: SimTime, payload: &[u8]) -> Result<CommitOutcome, WalError> {
        let record = LogRecord::new(Lsn(self.next_lsn), payload.to_vec());
        let bytes = record.encode();
        if bytes.len() as u64 > self.half_bytes() {
            return Err(WalError::RecordTooLarge {
                got: bytes.len(),
                max: self.half_bytes() as usize,
            });
        }
        self.next_lsn += 1;
        // Phase 1 — logging. Wait for the active half if its pin is still
        // in flight (rare: double buffering hides it).
        let mut t = now + self.cfg.record_overhead;
        t = t.max(self.halves[self.active].ready_at);
        if self.halves[self.active].used + bytes.len() as u64 > self.half_bytes() {
            t = t.max(self.rotate(t)?);
        }
        let half = self.halves[self.active];
        let store = self.dev.mmio_write(t, half.eid, half.used, &bytes)?;
        // Phase 2 — commit: sync exactly the appended bytes.
        let sync =
            self.dev
                .ba_sync_range(store.retired_at, half.eid, half.used, bytes.len() as u64)?;
        self.halves[self.active].used += bytes.len() as u64;
        self.stats.commits += 1;
        self.stats.payload_bytes += payload.len() as u64;
        self.stats.encoded_bytes += bytes.len() as u64;
        let outcome = CommitOutcome {
            lsn: record.lsn,
            commit_at: sync.complete_at,
            durable_at: Some(sync.complete_at),
        };
        self.stats.commit_time_total += outcome.commit_at.saturating_since(now);
        Ok(outcome)
    }

    /// Batch append: all records are `memcpy`ed in, with a single
    /// `BA_SYNC` per touched half instead of one per record — the batch
    /// path `MiniRedis::rewrite_aof` and group commit use.
    fn append_batch(
        &mut self,
        now: SimTime,
        payloads: &[Vec<u8>],
    ) -> Result<CommitOutcome, WalError> {
        if payloads.is_empty() {
            return Err(WalError::BadConfig("empty batch".into()));
        }
        let mut t = now + self.cfg.record_overhead;
        let mut dirty_start: Option<u64> = None;
        let mut last_lsn = Lsn(self.next_lsn);
        let mut encoded_total = 0u64;
        let mut payload_total = 0u64;
        for payload in payloads {
            let record = LogRecord::new(Lsn(self.next_lsn), payload.clone());
            let bytes = record.encode();
            if bytes.len() as u64 > self.half_bytes() {
                return Err(WalError::RecordTooLarge {
                    got: bytes.len(),
                    max: self.half_bytes() as usize,
                });
            }
            self.next_lsn += 1;
            last_lsn = record.lsn;
            t = t.max(self.halves[self.active].ready_at);
            if self.halves[self.active].used + bytes.len() as u64 > self.half_bytes() {
                // Make the half's un-synced tail device-resident before it
                // is flushed to NAND.
                if let Some(start) = dirty_start.take() {
                    let half = self.halves[self.active];
                    let sync = self
                        .dev
                        .ba_sync_range(t, half.eid, start, half.used - start)?;
                    t = sync.complete_at;
                }
                t = t.max(self.rotate(t)?);
            }
            let half = self.halves[self.active];
            let store = self.dev.mmio_write(t, half.eid, half.used, &bytes)?;
            t = store.retired_at;
            if dirty_start.is_none() {
                dirty_start = Some(half.used);
            }
            self.halves[self.active].used += bytes.len() as u64;
            encoded_total += bytes.len() as u64;
            payload_total += payload.len() as u64;
        }
        let durable = match dirty_start {
            Some(start) => {
                let half = self.halves[self.active];
                self.dev
                    .ba_sync_range(t, half.eid, start, half.used - start)?
                    .complete_at
            }
            None => t,
        };
        self.stats.commits += payloads.len() as u64;
        self.stats.payload_bytes += payload_total;
        self.stats.encoded_bytes += encoded_total;
        self.stats.commit_time_total += durable.saturating_since(now);
        Ok(CommitOutcome {
            lsn: last_lsn,
            commit_at: durable,
            durable_at: Some(durable),
        })
    }

    fn scheme(&self) -> String {
        format!("BA-WAL({})", self.dev.label())
    }

    fn stats(&self) -> WalStats {
        self.stats
    }
}

impl crate::WalTail for BaWal {
    /// Reads the tail the way a 2B-SSD WAL sender would: the pinned
    /// BA-buffer halves come out over `BA_READ_DMA` (the byte-path
    /// read-out, paper §III-C), which in steady state is the whole story —
    /// a caught-up reader never touches NAND. Only when `from` predates
    /// the buffered window does the reader fall back to block reads of the
    /// flushed log region.
    fn read_tail(&mut self, now: SimTime, from: Lsn) -> Result<crate::CursorBatch, WalError> {
        let mut t = now;
        let mut raw = Vec::new();
        for entry in self.dev.entries() {
            let read = self.dev.ba_read_dma(now, entry.eid, 0, entry.len_bytes())?;
            t = t.max(read.complete_at);
            raw.extend(crate::decode_stream(&read.data).records);
        }
        // A re-pinned half can still decode stale (already-flushed)
        // records, so "the buffer holds `from`" is the coverage test —
        // stale records are byte-identical duplicates and dedup away.
        let covered = from.0 >= self.next_lsn || raw.iter().any(|r| r.lsn == from);
        if !covered {
            // Flushes are half-aligned and rewrite whole halves, so the
            // region is a sequence of independently coherent half-sized
            // segments (each with slack padding at its tail) — decode each
            // segment separately; `canonical_tail` orders them by LSN.
            let mut stream =
                Vec::with_capacity(self.dev.page_size() * self.cfg.region_pages as usize);
            for i in 0..u64::from(self.cfg.region_pages) {
                match self
                    .dev
                    .read_pages(now, Lba(self.cfg.region_base_lba + i), 1)
                {
                    Ok(read) => {
                        t = t.max(read.complete_at);
                        stream.extend_from_slice(&read.data);
                    }
                    Err(twob_ssd::SsdError::Unmapped(_)) => break,
                    Err(e) => return Err(e.into()),
                }
            }
            for segment in stream.chunks(self.half_bytes() as usize) {
                raw.extend(crate::decode_stream(segment).records);
            }
        }
        crate::cursor::finish_tail(raw, from, self.next_lsn, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay;
    use twob_sim::SimDuration;

    fn wal() -> BaWal {
        BaWal::new(TwoBSsd::small_for_tests(), WalConfig::default(), 4).unwrap()
    }

    #[test]
    fn ba_commit_is_durable_and_fast() {
        let mut w = wal();
        // Start after the initial pins have settled.
        let start = SimTime::from_nanos(1_000_000);
        let out = w.append_commit(start, &[9u8; 100]).unwrap();
        assert_eq!(out.durable_at, Some(out.commit_at));
        let us = out.commit_at.saturating_since(start).as_micros_f64();
        // Paper: persistence at memory-like latency — microseconds, far
        // below the ~10-13 us block writes.
        assert!(us < 3.0, "BA commit took {us:.2} us");
    }

    #[test]
    fn waf_is_one_under_small_commits() {
        let mut w = wal();
        let mut t = SimTime::ZERO;
        // Fill several halves with small commits.
        for _ in 0..600 {
            t = w.append_commit(t, &[5u8; 100]).unwrap().commit_at;
        }
        let s = w.stats();
        assert!(s.device_page_writes > 0, "halves never flushed");
        assert!(
            (s.log_waf() - 1.0).abs() < f64::EPSILON,
            "BA-WAL WAF {} != 1",
            s.log_waf()
        );
    }

    #[test]
    fn block_wal_waf_dwarfs_ba_wal_waf() {
        // The §IV-A comparison, end to end.
        let mut ba = wal();
        let mut block = crate::BlockWal::new(
            twob_ssd::Ssd::new(twob_ssd::SsdConfig::ull_ssd().small()),
            WalConfig::default(),
            crate::CommitMode::Sync,
        )
        .unwrap();
        let mut t1 = SimTime::ZERO;
        let mut t2 = SimTime::ZERO;
        for _ in 0..200 {
            t1 = ba.append_commit(t1, &[1u8; 64]).unwrap().commit_at;
            t2 = block.append_commit(t2, &[1u8; 64]).unwrap().commit_at;
        }
        assert!(block.stats().log_waf() > 10.0 * ba.stats().log_waf());
    }

    #[test]
    fn flushed_halves_are_replayable_from_nand() {
        let mut w = wal();
        let mut t = SimTime::ZERO;
        for i in 0..100u64 {
            t = w
                .append_commit(t, format!("rec-{i:04}").as_bytes())
                .unwrap()
                .commit_at;
        }
        t = w.finalize(t).unwrap() + SimDuration::from_millis(1);
        let cfg = WalConfig::default();
        let mut dev = w.into_device();
        // The region now holds every record; decode from NAND via the
        // block path.
        let outcome = replay(&mut dev, t, cfg.region_base_lba, cfg.region_pages).unwrap();
        // Wrapping may have overwritten the oldest halves, but the stream
        // must contain a dense LSN suffix ending at 99... reconstruct what
        // we can and check integrity instead.
        assert!(!outcome.records.is_empty());
        for rec in &outcome.records {
            let expect = format!("rec-{:04}", rec.lsn.0);
            assert_eq!(rec.payload, expect.as_bytes());
        }
    }

    #[test]
    fn power_loss_preserves_synced_records() {
        let mut w = wal();
        let mut t = SimTime::ZERO;
        for i in 0..10u64 {
            t = w
                .append_commit(t, format!("surv-{i}").as_bytes())
                .unwrap()
                .commit_at;
        }
        // Crash without any flush.
        let dump = w.device_mut().power_loss(t);
        assert!(dump.dumped);
        w.device_mut().power_on(t + SimDuration::from_millis(5));
        let records = w.recover_buffered(t + SimDuration::from_millis(6)).unwrap();
        assert_eq!(records.len(), 10);
        for (i, rec) in records.iter().enumerate() {
            assert_eq!(rec.payload, format!("surv-{i}").as_bytes());
        }
    }

    #[test]
    fn rotation_double_buffers() {
        let mut w = wal();
        let mut t = SimTime::from_nanos(1_000_000);
        // ~140 small commits fill one 16 KiB half over ~200 us of logging,
        // comfortably longer than the ~70 us flush+repin of the other half
        // — so no commit should ever wait on a rotation.
        let payload = vec![7u8; 100];
        let mut worst = SimDuration::ZERO;
        for _ in 0..500 {
            let out = w.append_commit(t, &payload).unwrap();
            worst = worst.max(out.commit_at.saturating_since(t));
            t = out.commit_at;
        }
        assert!(
            worst.as_micros_f64() < 20.0,
            "worst commit {worst} suggests flush blocked the log path"
        );
        assert!(w.stats().device_page_writes >= 8, "no rotations happened");
    }

    #[test]
    fn oversized_record_rejected() {
        let mut w = wal();
        let err = w
            .append_commit(SimTime::ZERO, &vec![0u8; 20_000])
            .unwrap_err();
        assert!(matches!(err, WalError::RecordTooLarge { .. }));
    }

    #[test]
    fn bad_configs_rejected() {
        let cfg = WalConfig {
            region_pages: 7, // not a multiple of half_pages
            ..WalConfig::default()
        };
        assert!(matches!(
            BaWal::new(TwoBSsd::small_for_tests(), cfg, 4),
            Err(WalError::BadConfig(_))
        ));
        // Halves exceeding the BA-buffer (64 KiB in the test device).
        assert!(matches!(
            BaWal::new(
                TwoBSsd::small_for_tests(),
                WalConfig {
                    region_pages: 40,
                    ..WalConfig::default()
                },
                10
            ),
            Err(WalError::BadConfig(_))
        ));
    }

    #[test]
    fn scheme_names_the_device() {
        assert_eq!(wal().scheme(), "BA-WAL(2B-SSD)");
    }

    #[test]
    fn batch_append_syncs_once_and_replays() {
        let mut w = wal();
        let payloads: Vec<Vec<u8>> = (0..30u8).map(|i| vec![i; 60]).collect();
        let start = SimTime::from_nanos(1_000_000);
        let out = w.append_batch(start, &payloads).unwrap();
        assert_eq!(out.durable_at, Some(out.commit_at));
        // One sync for the whole batch (it fits one half).
        assert_eq!(w.device().stats().syncs, 1);
        assert_eq!(w.stats().commits, 30);
        // All records readable back from the buffer.
        let records = w.recover_buffered(out.commit_at).unwrap();
        assert_eq!(records.len(), 30);
        for (i, rec) in records.iter().enumerate() {
            assert_eq!(rec.payload, payloads[i]);
        }
    }

    #[test]
    fn batch_append_survives_rotation() {
        // A batch larger than one half must sync the first half before
        // flushing it, so nothing is lost mid-batch.
        let mut w = wal(); // halves of 4 pages = 16384 B
        let payloads: Vec<Vec<u8>> = (0..30u16).map(|i| vec![i as u8; 1000]).collect();
        let start = SimTime::from_nanos(1_000_000);
        let out = w.append_batch(start, &payloads).unwrap();
        assert!(w.stats().device_page_writes >= 4, "no rotation happened");
        // Everything is recoverable: buffered tail + flushed NAND.
        let buffered = w.recover_buffered(out.commit_at).unwrap();
        for rec in &buffered {
            assert_eq!(rec.payload, payloads[rec.lsn.0 as usize]);
        }
        assert!(
            buffered.iter().any(|r| r.lsn.0 == 29),
            "newest record present"
        );
    }

    #[test]
    fn single_buffer_stalls_on_rotation() {
        // Redis-style single window (paper §IV-B): the flush is on the
        // log path, so the commit that triggers it waits.
        let mut single =
            BaWal::new_single(TwoBSsd::small_for_tests(), WalConfig::default(), 4).unwrap();
        let mut t = SimTime::from_nanos(1_000_000);
        let mut worst = SimDuration::ZERO;
        for _ in 0..500 {
            let out = single.append_commit(t, &[7u8; 100]).unwrap();
            worst = worst.max(out.commit_at.saturating_since(t));
            t = out.commit_at;
        }
        assert!(
            worst.as_micros_f64() > 20.0,
            "single-buffer rotation should stall the log path, worst {worst}"
        );
        // All records are still recoverable.
        assert!(single.stats().device_page_writes >= 8);
        assert!((single.stats().log_waf() - 1.0).abs() < f64::EPSILON);
    }
}
