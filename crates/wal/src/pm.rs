//! PM-buffered WAL: the heterogeneous-memory comparator (paper Fig 10).

use twob_ftl::Lba;
use twob_sim::SimTime;
use twob_ssd::BlockDevice;

use crate::{CommitOutcome, LogRecord, Lsn, WalConfig, WalError, WalStats, WalWriter};

#[derive(Debug, Clone)]
struct PmHalf {
    data: Vec<u8>,
    used: usize,
    /// When the half's background flush to the log device completes and
    /// the half may be reused.
    ready_at: SimTime,
}

/// WAL over a small battery-backed DRAM (NVRAM) on the memory bus, with a
/// large block SSD behind it — the heterogeneous-memory architecture of
/// paper Fig 1(c).
///
/// Commits become durable with a DRAM-speed persistent store into the PM
/// buffer; filled halves are lazily written through the block I/O stack to
/// the log device (double-buffered). The commit path only stalls when the
/// device falls behind the log rate.
///
/// # Example
///
/// ```rust
/// use twob_ssd::{Ssd, SsdConfig};
/// use twob_sim::SimTime;
/// use twob_wal::{PmWal, WalConfig, WalWriter};
///
/// let ssd = Ssd::new(SsdConfig::dc_ssd().small());
/// let mut wal = PmWal::new(ssd, WalConfig::default(), 4)?;
/// let out = wal.append_commit(SimTime::ZERO, b"commit")?;
/// assert_eq!(out.durable_at, Some(out.commit_at)); // NVRAM is durable
/// # Ok::<(), twob_wal::WalError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PmWal<D> {
    dev: D,
    cfg: WalConfig,
    half_pages: u32,
    halves: [PmHalf; 2],
    active: usize,
    next_lsn: u64,
    cursor_pages: u64,
    stats: WalStats,
}

impl<D: BlockDevice> PmWal<D> {
    /// Creates a PM-buffered WAL with two `half_pages`-page PM halves over
    /// log device `dev`.
    ///
    /// # Errors
    ///
    /// [`WalError::BadConfig`] for invalid geometry.
    pub fn new(dev: D, cfg: WalConfig, half_pages: u32) -> Result<Self, WalError> {
        cfg.validate().map_err(WalError::BadConfig)?;
        if half_pages == 0 {
            return Err(WalError::BadConfig("half_pages must be positive".into()));
        }
        if u64::from(cfg.region_pages) < 2 * u64::from(half_pages)
            || !cfg.region_pages.is_multiple_of(half_pages)
        {
            return Err(WalError::BadConfig(
                "log region must be a multiple of half_pages and hold two halves".into(),
            ));
        }
        if cfg.region_base_lba + u64::from(cfg.region_pages) > dev.capacity_pages() {
            return Err(WalError::BadConfig("log region exceeds device".into()));
        }
        let half_bytes = half_pages as usize * dev.page_size();
        Ok(PmWal {
            dev,
            cfg,
            half_pages,
            halves: [
                PmHalf {
                    data: vec![0; half_bytes],
                    used: 0,
                    ready_at: SimTime::ZERO,
                },
                PmHalf {
                    data: vec![0; half_bytes],
                    used: 0,
                    ready_at: SimTime::ZERO,
                },
            ],
            active: 0,
            next_lsn: 0,
            cursor_pages: 0,
            stats: WalStats::default(),
        })
    }

    /// The wrapped device (read-only).
    pub fn device(&self) -> &D {
        &self.dev
    }

    /// Consumes the writer, returning the device.
    pub fn into_device(self) -> D {
        self.dev
    }

    fn half_bytes(&self) -> usize {
        self.half_pages as usize * self.dev.page_size()
    }

    /// Flushes the active half through the block stack and switches halves.
    fn rotate(&mut self, at: SimTime) -> Result<SimTime, WalError> {
        let lba =
            Lba(self.cfg.region_base_lba + self.cursor_pages % u64::from(self.cfg.region_pages));
        self.cursor_pages += u64::from(self.half_pages);
        let data = self.halves[self.active].data.clone();
        let ack = self.dev.write_pages(at, lba, &data)?;
        self.stats.device_page_writes += u64::from(self.half_pages);
        self.stats.distinct_pages += u64::from(self.half_pages);
        let half = &mut self.halves[self.active];
        half.ready_at = ack;
        half.used = 0;
        half.data.fill(0);
        self.active ^= 1;
        Ok(self.halves[self.active].ready_at)
    }

    /// Flushes both halves (inactive first), e.g. at shutdown.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn finalize(&mut self, now: SimTime) -> Result<SimTime, WalError> {
        let mut t = now;
        for _ in 0..2 {
            if self.halves[self.active].used > 0 {
                t = t.max(self.rotate(t)?);
            } else {
                self.active ^= 1;
            }
        }
        Ok(t)
    }

    /// Records still resident in the PM halves (durable in NVRAM, not yet
    /// on the log device), in LSN order.
    pub fn pm_resident_records(&self) -> Vec<LogRecord> {
        let mut records = Vec::new();
        for half in &self.halves {
            records.extend(crate::decode_stream(&half.data[..half.used]).records);
        }
        records.sort_by_key(|r| r.lsn);
        records
    }
}

impl<D: BlockDevice> WalWriter for PmWal<D> {
    fn append_commit(&mut self, now: SimTime, payload: &[u8]) -> Result<CommitOutcome, WalError> {
        let record = LogRecord::new(Lsn(self.next_lsn), payload.to_vec());
        let bytes = record.encode();
        if bytes.len() > self.half_bytes() {
            return Err(WalError::RecordTooLarge {
                got: bytes.len(),
                max: self.half_bytes(),
            });
        }
        self.next_lsn += 1;
        let mut t = now + self.cfg.record_overhead;
        t = t.max(self.halves[self.active].ready_at);
        if self.halves[self.active].used + bytes.len() > self.half_bytes() {
            t = t.max(self.rotate(t)?);
        }
        // Durable store into battery-backed DRAM.
        t = t + self.cfg.memcpy(bytes.len() as u64) + self.cfg.pm_write(bytes.len() as u64);
        let half = &mut self.halves[self.active];
        half.data[half.used..half.used + bytes.len()].copy_from_slice(&bytes);
        half.used += bytes.len();
        self.stats.commits += 1;
        self.stats.payload_bytes += payload.len() as u64;
        self.stats.encoded_bytes += bytes.len() as u64;
        let outcome = CommitOutcome {
            lsn: record.lsn,
            commit_at: t,
            durable_at: Some(t),
        };
        self.stats.commit_time_total += outcome.commit_at.saturating_since(now);
        Ok(outcome)
    }

    fn scheme(&self) -> String {
        format!("PM+{}", self.dev.label())
    }

    fn stats(&self) -> WalStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay;
    use twob_ssd::{Ssd, SsdConfig};

    fn wal() -> PmWal<Ssd> {
        PmWal::new(
            Ssd::new(SsdConfig::dc_ssd().small()),
            WalConfig::default(),
            4,
        )
        .unwrap()
    }

    #[test]
    fn pm_commit_is_durable_and_sub_microsecond() {
        let mut w = wal();
        let out = w.append_commit(SimTime::ZERO, &[1u8; 100]).unwrap();
        assert_eq!(out.durable_at, Some(out.commit_at));
        assert!(out.commit_at.saturating_since(SimTime::ZERO).as_nanos() < 1_000);
    }

    #[test]
    fn filled_halves_reach_the_device() {
        let mut w = wal();
        let mut t = SimTime::ZERO;
        for i in 0..200u64 {
            t = w
                .append_commit(t, format!("pm-{i:03}").as_bytes())
                .unwrap()
                .commit_at;
        }
        t = w.finalize(t).unwrap();
        assert!(w.stats().device_page_writes >= 4);
        let cfg = WalConfig::default();
        let mut dev = w.into_device();
        let out = replay(&mut dev, t, cfg.region_base_lba, cfg.region_pages).unwrap();
        assert!(!out.records.is_empty());
        for rec in &out.records {
            assert_eq!(rec.payload, format!("pm-{:03}", rec.lsn.0).as_bytes());
        }
    }

    #[test]
    fn pm_resident_records_are_recoverable() {
        let mut w = wal();
        let mut t = SimTime::ZERO;
        for i in 0..5u64 {
            t = w
                .append_commit(t, format!("resident-{i}").as_bytes())
                .unwrap()
                .commit_at;
        }
        let resident = w.pm_resident_records();
        assert_eq!(resident.len(), 5);
        assert_eq!(resident[3].payload, b"resident-3");
    }

    #[test]
    fn pm_waf_is_one() {
        let mut w = wal();
        let mut t = SimTime::ZERO;
        for _ in 0..400 {
            t = w.append_commit(t, &[2u8; 100]).unwrap().commit_at;
        }
        assert!(w.stats().device_page_writes > 0);
        assert!((w.stats().log_waf() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn scheme_names_device() {
        assert_eq!(wal().scheme(), "PM+DC-SSD");
    }
}
