//! Group commit: asynchronous commit submission with batched durability.
//!
//! Databases under concurrent load do not sync the log once per
//! transaction — committers that arrive while a sync is pending are grouped
//! and made durable together, amortizing the device round trip. This module
//! adds that path on top of any [`WalWriter`]: committers [`submit`] and get
//! a ticket; a deadline on the event calendar closes the batch after a
//! configurable window (or when it reaches `max_batch`), issues one
//! [`WalWriter::append_batch`] — one page write or one `BA_SYNC` for the
//! whole group — and delivers per-ticket outcomes through a completion
//! callback.
//!
//! [`submit`]: GroupCommit::submit
//!
//! # Example
//!
//! ```rust
//! use twob_core::TwoBSsd;
//! use twob_sim::{SimDuration, SimTime};
//! use twob_wal::{BaWal, GroupCommit, WalConfig};
//!
//! let wal = BaWal::new(TwoBSsd::small_for_tests(), WalConfig::default(), 4)?;
//! let mut group = GroupCommit::new(wal, SimDuration::from_micros(5), 64);
//! for i in 0..4u8 {
//!     group.submit(SimTime::from_nanos(u64::from(i) * 100), &[i]);
//! }
//! let mut done = Vec::new();
//! group.drive(SimTime::from_nanos(1_000_000), |out| done.push(out.ticket))?;
//! assert_eq!(done, vec![0, 1, 2, 3]);
//! // Four commits, one durability point.
//! assert_eq!(group.inner().device().stats().syncs, 1);
//! # Ok::<(), twob_wal::WalError>(())
//! ```

use twob_sim::{EventQueue, SimDuration, SimTime};

use crate::{CommitOutcome, Lsn, WalError, WalWriter};

/// A committer's view of its grouped commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupOutcome {
    /// Ticket returned by [`GroupCommit::submit`].
    pub ticket: u64,
    /// When the committer submitted.
    pub submitted: SimTime,
    /// This record's sequence number.
    pub lsn: Lsn,
    /// When the committer's transaction may complete — the group's
    /// durability point (or the batch outcome's commit instant for
    /// asynchronous inner writers).
    pub commit_at: SimTime,
    /// When the record is durable, if known.
    pub durable_at: Option<SimTime>,
}

struct PendingCommit {
    ticket: u64,
    submitted: SimTime,
    payload: Vec<u8>,
}

/// A group-commit front end over any [`WalWriter`]. See the module docs.
pub struct GroupCommit<W: WalWriter> {
    inner: W,
    window: SimDuration,
    max_batch: usize,
    pending: Vec<PendingCommit>,
    deadlines: EventQueue<()>,
    next_ticket: u64,
    batches: u64,
    grouped: u64,
}

impl<W: WalWriter> GroupCommit<W> {
    /// Wraps `inner`, closing each batch `window` after its first submission
    /// or as soon as it holds `max_batch` records.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero.
    pub fn new(inner: W, window: SimDuration, max_batch: usize) -> Self {
        assert!(max_batch > 0, "need a batch of at least one record");
        GroupCommit {
            inner,
            window,
            max_batch,
            pending: Vec::new(),
            deadlines: EventQueue::new(),
            next_ticket: 0,
            batches: 0,
            grouped: 0,
        }
    }

    /// The wrapped writer.
    pub fn inner(&self) -> &W {
        &self.inner
    }

    /// Unwraps the writer.
    pub fn into_inner(self) -> W {
        self.inner
    }

    /// Batches issued so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Commits that rode in a batch with at least one other commit.
    pub fn grouped_commits(&self) -> u64 {
        self.grouped
    }

    /// Committers waiting for the next batch.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Earliest armed batch deadline, if any committer is waiting — what an
    /// external event loop (e.g. a multi-tenant pool) must not step past
    /// without calling [`GroupCommit::drive`].
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.deadlines.peek_time()
    }

    /// Registers a commit of `payload` at `now`, returning its ticket. The
    /// first submission of a batch arms a flush deadline `window` later;
    /// the batch is issued when [`GroupCommit::drive`] passes that deadline
    /// (or immediately once `max_batch` committers are waiting).
    pub fn submit(&mut self, now: SimTime, payload: &[u8]) -> u64 {
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        if self.pending.is_empty() {
            self.deadlines.push(now + self.window, ());
        }
        self.pending.push(PendingCommit {
            ticket,
            submitted: now,
            payload: payload.to_vec(),
        });
        ticket
    }

    /// Advances the group committer to `now`: every armed deadline at or
    /// before `now` (and any batch that hit `max_batch`) is issued through
    /// one [`WalWriter::append_batch`] call, and `on_complete` is invoked
    /// once per grouped committer, in ticket order.
    ///
    /// # Errors
    ///
    /// Propagates the inner writer's error; the batch's committers stay
    /// pending so a caller can retry.
    pub fn drive<F>(&mut self, now: SimTime, mut on_complete: F) -> Result<(), WalError>
    where
        F: FnMut(GroupOutcome),
    {
        // Oversize batches flush at their arrival instant, without waiting
        // for the deadline.
        while self.pending.len() >= self.max_batch {
            let at = self.batch_close_time(self.max_batch);
            self.flush_batch(at, &mut on_complete)?;
        }
        while self.deadlines.peek_time().is_some_and(|t| t <= now) {
            let (at, ()) = self.deadlines.pop().expect("peeked deadline exists");
            if self.pending.is_empty() {
                continue; // the batch already flushed via max_batch
            }
            self.flush_batch(at, &mut on_complete)?;
        }
        Ok(())
    }

    /// Forces the current batch out at `now` regardless of its deadline
    /// (e.g. at shutdown).
    ///
    /// # Errors
    ///
    /// Propagates the inner writer's error.
    pub fn flush_now<F>(&mut self, now: SimTime, mut on_complete: F) -> Result<(), WalError>
    where
        F: FnMut(GroupOutcome),
    {
        while !self.pending.is_empty() {
            let take = self.pending.len().min(self.max_batch);
            let at = now.max(self.batch_close_time(take));
            self.flush_batch(at, &mut on_complete)?;
        }
        Ok(())
    }

    /// Latest submission instant among the first `take` pending commits —
    /// the earliest a batch of them can close.
    fn batch_close_time(&self, take: usize) -> SimTime {
        self.pending[..take]
            .iter()
            .map(|p| p.submitted)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    fn flush_batch<F>(&mut self, at: SimTime, on_complete: &mut F) -> Result<(), WalError>
    where
        F: FnMut(GroupOutcome),
    {
        let take = self.pending.len().min(self.max_batch);
        let payloads: Vec<Vec<u8>> = self.pending[..take]
            .iter()
            .map(|p| p.payload.clone())
            .collect();
        let CommitOutcome {
            lsn: last_lsn,
            commit_at,
            durable_at,
        } = self.inner.append_batch(at, &payloads)?;
        let batch: Vec<PendingCommit> = self.pending.drain(..take).collect();
        self.batches += 1;
        if batch.len() > 1 {
            self.grouped += batch.len() as u64;
        }
        // `append_batch` assigns consecutive LSNs and reports the last.
        let first_lsn = last_lsn.0 + 1 - batch.len() as u64;
        for (i, p) in batch.iter().enumerate() {
            on_complete(GroupOutcome {
                ticket: p.ticket,
                submitted: p.submitted,
                lsn: Lsn(first_lsn + i as u64),
                commit_at,
                durable_at,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BaWal, WalConfig};
    use twob_core::TwoBSsd;

    fn ba_wal() -> BaWal {
        BaWal::new(TwoBSsd::small_for_tests(), WalConfig::default(), 4).expect("BA WAL builds")
    }

    #[test]
    fn concurrent_committers_share_one_sync() {
        let mut group = GroupCommit::new(ba_wal(), SimDuration::from_micros(10), 64);
        let base = SimTime::from_nanos(1_000_000);
        for i in 0..8u64 {
            group.submit(base + SimDuration::from_nanos(i * 200), &[i as u8; 64]);
        }
        let mut outcomes = Vec::new();
        group
            .drive(base + SimDuration::from_micros(100), |o| outcomes.push(o))
            .unwrap();
        assert_eq!(outcomes.len(), 8);
        assert_eq!(group.batches(), 1);
        assert_eq!(group.grouped_commits(), 8);
        // One durability point for eight commits.
        assert_eq!(group.inner().device().stats().syncs, 1);
        assert_eq!(group.inner().stats().commits, 8);
        // Everyone shares the group's durability instant, and LSNs are
        // consecutive in ticket order.
        let durable = outcomes[0].durable_at;
        assert!(durable.is_some());
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(o.ticket, i as u64);
            assert_eq!(o.lsn, Lsn(i as u64));
            assert_eq!(o.durable_at, durable);
        }
    }

    #[test]
    fn group_commit_beats_sequential_sync_throughput() {
        use crate::{BlockWal, CommitMode};
        use twob_ssd::{Ssd, SsdConfig};

        let block_wal = || {
            BlockWal::new(
                Ssd::new(SsdConfig::ull_ssd().small()),
                WalConfig::default(),
                CommitMode::Sync,
            )
            .expect("block WAL builds")
        };

        // Sequential: each committer pays a full page write + flush.
        let mut seq = block_wal();
        let base = SimTime::from_nanos(1_000_000);
        let mut t = base;
        for i in 0..16u64 {
            t = seq
                .append_commit(t, &[i as u8; 64])
                .unwrap()
                .durable_at
                .unwrap();
        }
        let sequential_makespan = t.saturating_since(base);

        // Grouped: the same 16 commits arrive within one window and share
        // one page write + flush.
        let mut group = GroupCommit::new(block_wal(), SimDuration::from_micros(10), 64);
        for i in 0..16u64 {
            group.submit(base + SimDuration::from_nanos(i * 100), &[i as u8; 64]);
        }
        let mut last_durable = base;
        group
            .drive(base + SimDuration::from_micros(100), |o| {
                last_durable = last_durable.max(o.durable_at.unwrap());
            })
            .unwrap();
        let grouped_makespan = last_durable.saturating_since(base);
        assert!(
            grouped_makespan.as_nanos() * 2 < sequential_makespan.as_nanos(),
            "group commit ({grouped_makespan}) should beat sequential syncs \
             ({sequential_makespan}) by a wide margin"
        );
    }

    #[test]
    fn max_batch_flushes_without_waiting_for_deadline() {
        let mut group = GroupCommit::new(ba_wal(), SimDuration::from_micros(1_000), 4);
        let base = SimTime::from_nanos(1_000_000);
        for i in 0..6u64 {
            group.submit(base + SimDuration::from_nanos(i * 10), &[i as u8; 16]);
        }
        let mut done = 0;
        // Drive to a `now` long before the 1 ms deadline: the full batch of
        // 4 flushes anyway; the remaining 2 wait for their window.
        group
            .drive(base + SimDuration::from_micros(1), |_| done += 1)
            .unwrap();
        assert_eq!(done, 4);
        assert_eq!(group.pending_len(), 2);
        group
            .flush_now(base + SimDuration::from_micros(2), |_| done += 1)
            .unwrap();
        assert_eq!(done, 6);
        assert_eq!(group.batches(), 2);
    }

    #[test]
    fn empty_drive_is_a_no_op() {
        let mut group = GroupCommit::new(ba_wal(), SimDuration::from_micros(10), 8);
        group
            .drive(SimTime::from_nanos(1_000_000_000), |_| {
                panic!("nothing to complete")
            })
            .unwrap();
        assert_eq!(group.batches(), 0);
    }

    #[test]
    fn group_commit_is_deterministic() {
        let run = || {
            let mut group = GroupCommit::new(ba_wal(), SimDuration::from_micros(5), 8);
            let base = SimTime::from_nanos(1_000_000);
            for i in 0..20u64 {
                group.submit(base + SimDuration::from_nanos(i * 700), &[i as u8; 32]);
            }
            let mut outcomes = Vec::new();
            group
                .drive(base + SimDuration::from_micros(200), |o| outcomes.push(o))
                .unwrap();
            group
                .flush_now(base + SimDuration::from_micros(200), |o| outcomes.push(o))
                .unwrap();
            outcomes
        };
        assert_eq!(run(), run());
    }
}
