//! Write-ahead logging schemes for the 2B-SSD case study (paper §IV).
//!
//! WAL's performance problem is *small frequent writes*: a commit record is
//! usually far smaller than a page, yet block devices force page-aligned
//! writes followed by `fsync`, so the same log page is rewritten over and
//! over while transactions wait on the device. This crate implements the
//! three logging schemes the paper compares:
//!
//! - [`BlockWal`] — conventional WAL over any block device, with
//!   *synchronous* (durable before commit) and *asynchronous* (commit
//!   first, risk window until the page write lands) modes (paper Fig 5,
//!   left).
//! - [`BaWal`] — the paper's BA-WAL (§IV-B): log records are appended
//!   straight into the 2B-SSD's BA-buffer with `memcpy`-grade MMIO stores,
//!   committed with `BA_SYNC` (durable at DRAM-like latency), and flushed
//!   to NAND a *full segment half at a time* via `BA_FLUSH`, double-buffered
//!   so flushing overlaps logging.
//! - [`PmWal`] — the heterogeneous-memory comparator (paper Fig 10): a
//!   battery-backed DRAM buffer on the memory bus absorbs commits, and a
//!   background path lazily writes filled halves through the block I/O
//!   stack to a log device.
//!
//! All three produce identical on-media record streams ([`LogRecord`] with
//! CRC-32 torn-write detection), so [`replay`] can audit any of them.
//!
//! [`GroupCommit`] wraps any of the writers with an asynchronous completion
//! path: concurrent committers submit and receive tickets, batches close on
//! an event-calendar deadline, and one durability point covers the whole
//! group.
//!
//! # Example
//!
//! ```rust
//! use twob_ssd::{Ssd, SsdConfig};
//! use twob_sim::SimTime;
//! use twob_wal::{BlockWal, CommitMode, WalConfig, WalWriter};
//!
//! let ssd = Ssd::new(SsdConfig::ull_ssd().small());
//! let mut wal = BlockWal::new(ssd, WalConfig::default(), CommitMode::Sync)?;
//! let outcome = wal.append_commit(SimTime::ZERO, b"INSERT tuple 42")?;
//! assert_eq!(Some(outcome.commit_at), outcome.durable_at);
//! # Ok::<(), twob_wal::WalError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ba;
mod block;
mod config;
mod cursor;
mod error;
mod group;
mod host;
mod pm;
mod record;
mod replay;
mod stats;
mod tenant;
mod traits;

pub use ba::BaWal;
pub use block::BlockWal;
pub use config::{CommitMode, WalConfig};
pub use cursor::{CursorBatch, LogCursor, WalTail};
pub use error::WalError;
pub use group::{GroupCommit, GroupOutcome};
pub use host::{HostConfig, HostMode, ShardWalHost};
pub use pm::PmWal;
pub use record::{LogRecord, Lsn};
pub use replay::{decode_stream, replay, ReplayOutcome};
pub use stats::WalStats;
pub use tenant::{SharedCalendar, SharedDevice, SharedPins, TenantBaWal, TenantBlockWal};
pub use traits::{CommitOutcome, WalWriter};
