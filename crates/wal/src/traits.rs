//! The common WAL writer interface.

use twob_sim::SimTime;

use crate::{Lsn, WalError, WalStats};

/// Outcome of appending a commit record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitOutcome {
    /// The record's sequence number.
    pub lsn: Lsn,
    /// When the *transaction may complete* under the writer's commit mode.
    pub commit_at: SimTime,
    /// When the record is durable: equal to `commit_at` for synchronous
    /// and BA commits, later for asynchronous commits (the risk window),
    /// and `None` if the record is still volatile in host memory.
    pub durable_at: Option<SimTime>,
}

impl CommitOutcome {
    /// The asynchronous-commit risk window, if any: the span between the
    /// transaction completing and its log record becoming durable.
    pub fn risk_window(&self) -> Option<twob_sim::SimDuration> {
        self.durable_at
            .map(|d| d.saturating_since(self.commit_at))
            .filter(|w| w.as_nanos() > 0)
    }
}

/// A write-ahead log writer: appends commit records in virtual time.
///
/// Implementations differ in *where* the record becomes durable (NAND page,
/// BA-buffer, PM) and *when* the transaction may complete relative to that.
pub trait WalWriter {
    /// Appends one commit record carrying `payload`.
    ///
    /// # Errors
    ///
    /// Writer-specific; see [`WalError`].
    fn append_commit(&mut self, now: SimTime, payload: &[u8]) -> Result<CommitOutcome, WalError>;

    /// Appends a *batch* of records with one durability point at the end —
    /// the group-commit primitive. The default just chains
    /// [`WalWriter::append_commit`]; schemes with a cheaper batch path
    /// (one page write for many records, one `BA_SYNC` for many stores)
    /// override it. Returns the outcome of the last record, whose
    /// `durable_at` covers the whole batch.
    ///
    /// # Errors
    ///
    /// Writer-specific; see [`WalError`]. An empty batch is an error.
    fn append_batch(
        &mut self,
        now: SimTime,
        payloads: &[Vec<u8>],
    ) -> Result<CommitOutcome, WalError> {
        let mut t = now;
        let mut last = None;
        for payload in payloads {
            let out = self.append_commit(t, payload)?;
            t = out.commit_at;
            last = Some(out);
        }
        last.ok_or(WalError::BadConfig("empty batch".into()))
    }

    /// Scheme name for reporting, e.g. `"BA-WAL(2B-SSD)"`.
    fn scheme(&self) -> String;

    /// Accounting counters.
    fn stats(&self) -> WalStats;
}

impl<W: WalWriter + ?Sized> WalWriter for Box<W> {
    fn append_commit(&mut self, now: SimTime, payload: &[u8]) -> Result<CommitOutcome, WalError> {
        (**self).append_commit(now, payload)
    }

    fn append_batch(
        &mut self,
        now: SimTime,
        payloads: &[Vec<u8>],
    ) -> Result<CommitOutcome, WalError> {
        (**self).append_batch(now, payloads)
    }

    fn scheme(&self) -> String {
        (**self).scheme()
    }

    fn stats(&self) -> WalStats {
        (**self).stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twob_sim::{SimDuration, SimTime};

    #[test]
    fn risk_window_math() {
        let base = CommitOutcome {
            lsn: Lsn(1),
            commit_at: SimTime::from_nanos(100),
            durable_at: Some(SimTime::from_nanos(100)),
        };
        assert_eq!(base.risk_window(), None);
        let risky = CommitOutcome {
            durable_at: Some(SimTime::from_nanos(600)),
            ..base
        };
        assert_eq!(risky.risk_window(), Some(SimDuration::from_nanos(500)));
        let volatile = CommitOutcome {
            durable_at: None,
            ..base
        };
        assert_eq!(volatile.risk_window(), None);
    }
}
