//! WAL configuration and commit modes.

use serde::{Deserialize, Serialize};
use twob_sim::SimDuration;

/// How a transaction's commit interacts with log durability (paper Fig 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommitMode {
    /// Wait for the log write (and flush) to reach the device before
    /// completing — durable, slow.
    Sync,
    /// Complete immediately after buffering in host memory; the log write
    /// trails behind, leaving a data-loss risk window — fast, unsafe.
    Async,
}

impl std::fmt::Display for CommitMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommitMode::Sync => write!(f, "SYNC"),
            CommitMode::Async => write!(f, "ASYNC"),
        }
    }
}

/// Tunables shared by the WAL schemes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WalConfig {
    /// First LBA of the log region on the device.
    pub region_base_lba: u64,
    /// Size of the log region in pages; the writer wraps within it.
    pub region_pages: u32,
    /// Host memcpy throughput for staging records, bytes/s.
    pub memcpy_bytes_per_sec: u64,
    /// Fixed per-record CPU cost (formatting, locking, bookkeeping).
    pub record_overhead: SimDuration,
    /// Latency of one persistent store to battery-backed DRAM on the
    /// memory bus (`PmWal` only): store + `clflush` + fence at DRAM speed.
    pub pm_write_base: SimDuration,
    /// Incremental PM cost per 64-byte line (`PmWal` only).
    pub pm_per_line: SimDuration,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            region_base_lba: 0,
            region_pages: 64,
            memcpy_bytes_per_sec: 10_000_000_000,
            record_overhead: SimDuration::from_nanos(150),
            pm_write_base: SimDuration::from_nanos(200),
            pm_per_line: SimDuration::from_nanos(8),
        }
    }
}

impl WalConfig {
    /// Host memcpy time for `bytes`.
    pub fn memcpy(&self, bytes: u64) -> SimDuration {
        SimDuration::from_nanos_f64(bytes as f64 * 1e9 / self.memcpy_bytes_per_sec as f64)
    }

    /// Persistent-memory write time for `bytes` (store + flush + fence).
    pub fn pm_write(&self, bytes: u64) -> SimDuration {
        let lines = bytes.div_ceil(64).max(1);
        self.pm_write_base + self.pm_per_line * (lines - 1)
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.region_pages < 2 {
            return Err("log region needs at least 2 pages".into());
        }
        if self.memcpy_bytes_per_sec == 0 {
            return Err("memcpy bandwidth must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        assert!(WalConfig::default().validate().is_ok());
    }

    #[test]
    fn memcpy_cost_is_linear() {
        let cfg = WalConfig::default();
        assert!(
            cfg.memcpy(8192)
                .as_nanos()
                .abs_diff(cfg.memcpy(4096).as_nanos() * 2)
                <= 1
        );
    }

    #[test]
    fn pm_write_is_sub_microsecond_for_small_records() {
        let cfg = WalConfig::default();
        assert!(cfg.pm_write(100).as_nanos() < 1_000);
    }

    #[test]
    fn commit_mode_displays() {
        assert_eq!(CommitMode::Sync.to_string(), "SYNC");
        assert_eq!(CommitMode::Async.to_string(), "ASYNC");
    }
}
