//! Reading a WAL back as a stream: the shipping side of replication.
//!
//! A [`LogCursor`] tracks a position in a writer's LSN sequence and, via
//! the [`WalTail`] trait, pulls every record at or past that position out
//! of the log — from the pinned BA-buffer window over `BA_READ_DMA` plus
//! the flushed NAND segments for [`crate::BaWal`], or from the log region
//! over block reads for [`crate::BlockWal`]. The cursor survives rotation:
//! a record is readable from the buffer before its half flushes and from
//! NAND afterwards, and the canonicalization below welds the two sources
//! into one dense sequence.
//!
//! This is the layer PostgreSQL calls WAL sender: the primary's log,
//! re-read after the fact, *is* the replication stream.

use twob_sim::SimTime;

use crate::{LogRecord, Lsn, WalError};

/// A batch of contiguous log records pulled from a WAL tail, plus the
/// virtual instant the reads that produced it completed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CursorBatch {
    /// Records with consecutive LSNs, the first equal to the requested
    /// position. Empty when the cursor is caught up.
    pub records: Vec<LogRecord>,
    /// Completion instant of the slowest read behind this batch.
    pub complete_at: SimTime,
}

/// A log that can be read back from an arbitrary LSN onwards.
pub trait WalTail {
    /// Returns every readable record with `lsn >= from`, canonicalized to
    /// a dense run starting at `from` (empty if `from` is the next LSN to
    /// be written).
    ///
    /// # Errors
    ///
    /// [`WalError::CursorLag`] when `from` has already been overwritten by
    /// region wrap-around (the reader fell behind the retention window),
    /// [`WalError::CorruptTail`] when two different payloads decode for
    /// one LSN, and device errors from the underlying reads.
    fn read_tail(&mut self, now: SimTime, from: Lsn) -> Result<CursorBatch, WalError>;
}

/// Sorts, deduplicates, and gap-checks raw decoded records into the dense
/// run [`WalTail::read_tail`] promises.
///
/// Duplicates are legitimate — a record can decode both from a flushed
/// NAND segment and from the stale bytes of a re-pinned BA-buffer half —
/// but must be byte-identical. A missing first record means the reader
/// fell behind the region's retention window; a hole *after* the first
/// record ends the batch (the tail past the hole is not yet readable).
pub(crate) fn canonical_tail(
    mut raw: Vec<LogRecord>,
    from: Lsn,
    complete_at: SimTime,
) -> Result<CursorBatch, WalError> {
    raw.retain(|r| r.lsn >= from);
    raw.sort_by_key(|r| r.lsn);
    let mut records: Vec<LogRecord> = Vec::with_capacity(raw.len());
    for rec in raw {
        match records.last() {
            Some(prev) if prev.lsn == rec.lsn => {
                if prev.payload != rec.payload {
                    return Err(WalError::CorruptTail(format!(
                        "two different payloads decoded for {}",
                        rec.lsn
                    )));
                }
            }
            _ => records.push(rec),
        }
    }
    if let Some(first) = records.first() {
        if first.lsn > from {
            return Err(WalError::CursorLag {
                requested: from.0,
                oldest: first.lsn.0,
            });
        }
    }
    // Dense prefix only: a record past a hole belongs to a later batch.
    let mut dense = 0;
    for (i, rec) in records.iter().enumerate() {
        if rec.lsn.0 != from.0 + i as u64 {
            break;
        }
        dense = i + 1;
    }
    records.truncate(dense);
    Ok(CursorBatch {
        records,
        complete_at,
    })
}

/// Writer-side wrapper over [`canonical_tail`]: a writer that knows its
/// `next_lsn` can tell "caught up" (`from == next_lsn`, empty batch) apart
/// from "fell behind" (`from < next_lsn` but no readable record carries
/// `from` — e.g. the region seam after wrap-around is undecodable), which
/// must be a loud [`WalError::CursorLag`], never a silent empty batch.
pub(crate) fn finish_tail(
    raw: Vec<LogRecord>,
    from: Lsn,
    next_lsn: u64,
    complete_at: SimTime,
) -> Result<CursorBatch, WalError> {
    if from.0 < next_lsn && !raw.iter().any(|r| r.lsn == from) {
        let oldest = raw
            .iter()
            .map(|r| r.lsn.0)
            .filter(|&l| l > from.0)
            .min()
            .unwrap_or(next_lsn);
        return Err(WalError::CursorLag {
            requested: from.0,
            oldest,
        });
    }
    canonical_tail(raw, from, complete_at)
}

/// A position in a WAL's LSN sequence that yields each acknowledged record
/// exactly once, in order, across rotations and crashes.
///
/// # Example
///
/// ```rust
/// use twob_core::TwoBSsd;
/// use twob_sim::SimTime;
/// use twob_wal::{BaWal, LogCursor, WalConfig, WalWriter};
///
/// let mut wal = BaWal::new(TwoBSsd::small_for_tests(), WalConfig::default(), 4)?;
/// let mut cursor = LogCursor::new();
/// let t = SimTime::from_nanos(1_000_000);
/// let t = wal.append_commit(t, b"first")?.commit_at;
/// let batch = cursor.advance(&mut wal, t)?;
/// assert_eq!(batch.records.len(), 1);
/// assert_eq!(batch.records[0].payload, b"first");
/// // Caught up: the next advance is empty.
/// assert!(cursor.advance(&mut wal, batch.complete_at)?.records.is_empty());
/// # Ok::<(), twob_wal::WalError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LogCursor {
    next: u64,
}

impl LogCursor {
    /// A cursor at the start of the log (LSN 0).
    pub fn new() -> Self {
        LogCursor { next: 0 }
    }

    /// A cursor positioned at `lsn` — the next record it will yield.
    pub fn from_lsn(lsn: Lsn) -> Self {
        LogCursor { next: lsn.0 }
    }

    /// The LSN of the next record this cursor will yield.
    pub fn next_lsn(&self) -> Lsn {
        Lsn(self.next)
    }

    /// Pulls every record the log can currently serve from this cursor's
    /// position and moves the position past them. Yields each LSN exactly
    /// once across repeated calls.
    ///
    /// # Errors
    ///
    /// As for [`WalTail::read_tail`]; the cursor does not move on error.
    pub fn advance<W: WalTail + ?Sized>(
        &mut self,
        wal: &mut W,
        now: SimTime,
    ) -> Result<CursorBatch, WalError> {
        let batch = wal.read_tail(now, Lsn(self.next))?;
        debug_assert!(batch
            .records
            .iter()
            .enumerate()
            .all(|(i, r)| r.lsn.0 == self.next + i as u64));
        self.next += batch.records.len() as u64;
        Ok(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BaWal, BlockWal, CommitMode, WalConfig, WalWriter};
    use twob_core::TwoBSsd;
    use twob_sim::SimDuration;
    use twob_ssd::{Ssd, SsdConfig};

    fn ba() -> BaWal {
        BaWal::new(TwoBSsd::small_for_tests(), WalConfig::default(), 4).unwrap()
    }

    fn block(mode: CommitMode) -> BlockWal<Ssd> {
        BlockWal::new(
            Ssd::new(SsdConfig::ull_ssd().small()),
            WalConfig::default(),
            mode,
        )
        .unwrap()
    }

    #[test]
    fn ba_cursor_streams_across_rotation() {
        let mut w = ba();
        let mut cursor = LogCursor::new();
        let mut t = SimTime::from_nanos(1_000_000);
        let mut seen = Vec::new();
        // 1 KiB records fill a 16 KiB half every ~15 appends: several
        // rotations, polled mid-stream.
        for i in 0..80u64 {
            let payload = vec![(i % 251) as u8; 1024];
            t = w.append_commit(t, &payload).unwrap().commit_at;
            if i % 7 == 0 {
                let batch = cursor.advance(&mut w, t).unwrap();
                t = t.max(batch.complete_at);
                seen.extend(batch.records);
            }
        }
        seen.extend(cursor.advance(&mut w, t).unwrap().records);
        assert_eq!(seen.len(), 80);
        for (i, rec) in seen.iter().enumerate() {
            assert_eq!(rec.lsn.0, i as u64);
            assert_eq!(rec.payload, vec![(i % 251) as u8; 1024]);
        }
        assert!(w.stats().device_page_writes > 0, "no rotation exercised");
    }

    #[test]
    fn ba_cursor_survives_power_cycle() {
        let mut w = ba();
        let mut cursor = LogCursor::new();
        let mut t = SimTime::from_nanos(1_000_000);
        for i in 0..30u64 {
            t = w
                .append_commit(t, format!("pre-{i}").as_bytes())
                .unwrap()
                .commit_at;
        }
        let pre = cursor.advance(&mut w, t).unwrap();
        assert_eq!(pre.records.len(), 30);
        w.device_mut().power_loss(t);
        t += SimDuration::from_millis(5);
        w.device_mut().power_on(t);
        for i in 30..40u64 {
            t = w
                .append_commit(t, format!("post-{i}").as_bytes())
                .unwrap()
                .commit_at;
        }
        let post = cursor.advance(&mut w, t).unwrap();
        assert_eq!(post.records.len(), 10);
        assert_eq!(post.records[0].lsn.0, 30);
        assert_eq!(post.records[0].payload, b"post-30");
    }

    #[test]
    fn block_cursor_streams_and_skips_consumed_records() {
        let mut w = block(CommitMode::Sync);
        let mut cursor = LogCursor::new();
        let mut t = SimTime::ZERO;
        for i in 0..20u64 {
            t = w
                .append_commit(t, format!("blk-{i:03}").as_bytes())
                .unwrap()
                .commit_at;
        }
        let first = cursor.advance(&mut w, t).unwrap();
        assert_eq!(first.records.len(), 20);
        assert!(first.complete_at > t, "block reads cost time");
        // Caught up, then three more.
        assert!(cursor.advance(&mut w, t).unwrap().records.is_empty());
        for i in 20..23u64 {
            t = w
                .append_commit(t, format!("blk-{i:03}").as_bytes())
                .unwrap()
                .commit_at;
        }
        let more = cursor.advance(&mut w, t).unwrap();
        assert_eq!(
            more.records.iter().map(|r| r.lsn.0).collect::<Vec<_>>(),
            vec![20, 21, 22]
        );
    }

    #[test]
    fn lagging_cursor_errors_after_wrap() {
        // An 8-page region wraps quickly under ~2 KiB records. Block-WAL
        // records span pages with no segment alignment, so wrap-around
        // destroys the oldest record heads: any reader that has not kept
        // up within one region window gets a loud lag error — the
        // PostgreSQL "standby fell behind the retention window, rebase
        // it" signal — never silent gaps.
        let cfg = WalConfig {
            region_pages: 8,
            ..WalConfig::default()
        };
        let mut w = BlockWal::new(
            Ssd::new(SsdConfig::ull_ssd().small()),
            cfg,
            CommitMode::Sync,
        )
        .unwrap();
        let mut t = SimTime::ZERO;
        for _ in 0..24u64 {
            t = w.append_commit(t, &[3u8; 2000]).unwrap().commit_at;
        }
        let mut cursor = LogCursor::new();
        match cursor.advance(&mut w, t) {
            Err(WalError::CursorLag { requested, oldest }) => {
                assert_eq!(requested, 0);
                assert!(oldest > 0);
            }
            other => panic!("expected CursorLag, got {other:?}"),
        }
        // The cursor did not move, and a reader positioned at the write
        // frontier still gets clean caught-up semantics.
        assert_eq!(cursor.next_lsn(), Lsn(0));
        let mut frontier = LogCursor::from_lsn(Lsn(24));
        assert!(frontier.advance(&mut w, t).unwrap().records.is_empty());
    }

    #[test]
    fn ba_cursor_recovers_from_lag_after_wrap() {
        // BA-WAL flushes are half-aligned whole-half rewrites, so every
        // region segment stays coherent across wrap-around: a lagging
        // reader loses exactly the overwritten halves and can resume from
        // the oldest surviving record.
        let cfg = WalConfig {
            region_pages: 16,
            ..WalConfig::default()
        };
        let mut w = BaWal::new(TwoBSsd::small_for_tests(), cfg, 4).unwrap();
        let mut t = SimTime::from_nanos(1_000_000);
        // 16-page region = 4 halves; ~1 KiB records rotate every ~15
        // appends, so 120 appends wrap the region more than once.
        for i in 0..120u64 {
            t = w
                .append_commit(t, &[(i % 251) as u8; 1024])
                .unwrap()
                .commit_at;
        }
        let mut stale = LogCursor::new();
        let oldest = match stale.advance(&mut w, t) {
            Err(WalError::CursorLag {
                requested: 0,
                oldest,
            }) => oldest,
            other => panic!("expected CursorLag from 0, got {other:?}"),
        };
        let mut resumed = LogCursor::from_lsn(Lsn(oldest));
        let batch = resumed.advance(&mut w, t).unwrap();
        assert!(!batch.records.is_empty());
        assert_eq!(batch.records[0].lsn.0, oldest);
        assert_eq!(resumed.next_lsn(), Lsn(120));
    }

    #[test]
    fn canonical_tail_rejects_conflicting_duplicates() {
        let raw = vec![
            LogRecord::new(Lsn(4), b"one".to_vec()),
            LogRecord::new(Lsn(4), b"two".to_vec()),
        ];
        assert!(matches!(
            canonical_tail(raw, Lsn(4), SimTime::ZERO),
            Err(WalError::CorruptTail(_))
        ));
        let ok = vec![
            LogRecord::new(Lsn(4), b"same".to_vec()),
            LogRecord::new(Lsn(4), b"same".to_vec()),
            LogRecord::new(Lsn(5), b"next".to_vec()),
        ];
        let batch = canonical_tail(ok, Lsn(4), SimTime::ZERO).unwrap();
        assert_eq!(batch.records.len(), 2);
    }

    #[test]
    fn canonical_tail_stops_at_holes() {
        let raw = vec![
            LogRecord::new(Lsn(2), b"a".to_vec()),
            LogRecord::new(Lsn(3), b"b".to_vec()),
            LogRecord::new(Lsn(5), b"past-the-hole".to_vec()),
        ];
        let batch = canonical_tail(raw, Lsn(2), SimTime::ZERO).unwrap();
        assert_eq!(
            batch.records.iter().map(|r| r.lsn.0).collect::<Vec<_>>(),
            vec![2, 3]
        );
    }
}
