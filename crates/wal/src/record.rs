//! The on-media log record format.

use serde::{Deserialize, Serialize};
use twob_sim::crc32;

/// A log sequence number: records are totally ordered by `Lsn`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct Lsn(pub u64);

impl std::fmt::Display for Lsn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lsn:{}", self.0)
    }
}

/// One WAL record: an LSN plus an opaque payload, protected by CRC-32.
///
/// Encoding (little-endian):
/// `len(u32) ∥ lsn(u64) ∥ crc32(lsn ∥ payload)(u32) ∥ payload`.
/// A `len` of zero (erased media reads as zeroes) or a CRC mismatch marks
/// the torn tail of a log.
///
/// # Example
///
/// ```rust
/// use twob_wal::{LogRecord, Lsn};
///
/// let rec = LogRecord::new(Lsn(7), b"UPDATE accounts".to_vec());
/// let bytes = rec.encode();
/// let (decoded, used) = LogRecord::decode(&bytes).expect("clean record");
/// assert_eq!(decoded, rec);
/// assert_eq!(used, bytes.len());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogRecord {
    /// The record's sequence number.
    pub lsn: Lsn,
    /// The record body.
    pub payload: Vec<u8>,
}

/// Fixed bytes of the record header (`len + lsn + crc`).
pub const RECORD_HEADER_BYTES: usize = 4 + 8 + 4;

impl LogRecord {
    /// Creates a record.
    pub fn new(lsn: Lsn, payload: Vec<u8>) -> Self {
        LogRecord { lsn, payload }
    }

    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        RECORD_HEADER_BYTES + self.payload.len()
    }

    fn body_crc(lsn: Lsn, payload: &[u8]) -> u32 {
        let mut body = Vec::with_capacity(8 + payload.len());
        body.extend_from_slice(&lsn.0.to_le_bytes());
        body.extend_from_slice(payload);
        crc32(&body)
    }

    /// Serializes the record.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.lsn.0.to_le_bytes());
        out.extend_from_slice(&Self::body_crc(self.lsn, &self.payload).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Attempts to decode one record from the head of `bytes`. Returns the
    /// record and the bytes consumed, or `None` for an absent/torn record
    /// (zero length, truncation, or CRC mismatch).
    pub fn decode(bytes: &[u8]) -> Option<(LogRecord, usize)> {
        if bytes.len() < RECORD_HEADER_BYTES {
            return None;
        }
        let len = u32::from_le_bytes(bytes[0..4].try_into().ok()?) as usize;
        if len == 0 || RECORD_HEADER_BYTES + len > bytes.len() {
            return None;
        }
        let lsn = Lsn(u64::from_le_bytes(bytes[4..12].try_into().ok()?));
        let stored_crc = u32::from_le_bytes(bytes[12..16].try_into().ok()?);
        let payload = &bytes[16..16 + len];
        if Self::body_crc(lsn, payload) != stored_crc {
            return None;
        }
        Some((
            LogRecord {
                lsn,
                payload: payload.to_vec(),
            },
            RECORD_HEADER_BYTES + len,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trips() {
        for payload in [vec![], vec![1u8], vec![0xAB; 1000]] {
            // Empty payloads are rejected by decode (len 0 marks erased
            // media), so only non-empty payloads round-trip.
            let rec = LogRecord::new(Lsn(42), payload.clone());
            let bytes = rec.encode();
            match LogRecord::decode(&bytes) {
                Some((decoded, used)) => {
                    assert_eq!(decoded, rec);
                    assert_eq!(used, bytes.len());
                }
                None => assert!(payload.is_empty()),
            }
        }
    }

    #[test]
    fn zero_bytes_decode_as_torn() {
        assert!(LogRecord::decode(&[0u8; 64]).is_none());
        assert!(LogRecord::decode(&[]).is_none());
    }

    #[test]
    fn truncated_record_is_torn() {
        let rec = LogRecord::new(Lsn(1), vec![9u8; 100]);
        let bytes = rec.encode();
        assert!(LogRecord::decode(&bytes[..bytes.len() - 1]).is_none());
    }

    #[test]
    fn corrupted_payload_is_torn() {
        let rec = LogRecord::new(Lsn(1), vec![9u8; 100]);
        let mut bytes = rec.encode();
        bytes[40] ^= 0x80;
        assert!(LogRecord::decode(&bytes).is_none());
    }

    #[test]
    fn corrupted_lsn_is_torn() {
        let rec = LogRecord::new(Lsn(1), vec![9u8; 16]);
        let mut bytes = rec.encode();
        bytes[5] ^= 1;
        assert!(LogRecord::decode(&bytes).is_none());
    }
}
