//! Log replay with torn-tail detection.

use twob_ftl::Lba;
use twob_sim::SimTime;
use twob_ssd::BlockDevice;

use crate::{LogRecord, WalError};

/// The result of replaying a log region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// Records recovered, in log order.
    pub records: Vec<LogRecord>,
    /// Byte offset (within the scanned stream) where decoding stopped —
    /// the torn tail, or the end of valid data.
    pub torn_at_byte: usize,
}

/// Decodes consecutive records from a byte stream, stopping at the first
/// absent or torn record.
pub fn decode_stream(bytes: &[u8]) -> ReplayOutcome {
    let mut records = Vec::new();
    let mut cursor = 0usize;
    while let Some((record, used)) = LogRecord::decode(&bytes[cursor..]) {
        records.push(record);
        cursor += used;
    }
    ReplayOutcome {
        records,
        torn_at_byte: cursor,
    }
}

/// Reads `pages` pages starting at `base_lba` from `dev` and decodes the
/// record stream. Unwritten pages terminate the scan (they read as absent).
///
/// # Errors
///
/// Propagates device errors other than "unmapped", which simply ends the
/// scan.
pub fn replay<D: BlockDevice>(
    dev: &mut D,
    now: SimTime,
    base_lba: u64,
    pages: u32,
) -> Result<ReplayOutcome, WalError> {
    let mut stream = Vec::with_capacity(dev.page_size() * pages as usize);
    for i in 0..u64::from(pages) {
        match dev.read_pages(now, Lba(base_lba + i), 1) {
            Ok(read) => stream.extend_from_slice(&read.data),
            Err(twob_ssd::SsdError::Unmapped(_)) => break,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(decode_stream(&stream))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Lsn;

    #[test]
    fn decodes_back_to_back_records() {
        let mut stream = Vec::new();
        for i in 0..5u64 {
            stream.extend_from_slice(&LogRecord::new(Lsn(i), vec![i as u8; 33]).encode());
        }
        let tail = stream.len();
        stream.extend_from_slice(&[0u8; 500]); // erased tail
        let out = decode_stream(&stream);
        assert_eq!(out.records.len(), 5);
        assert_eq!(out.torn_at_byte, tail);
    }

    #[test]
    fn stops_at_corruption() {
        let mut stream = Vec::new();
        stream.extend_from_slice(&LogRecord::new(Lsn(0), vec![1; 40]).encode());
        let second_start = stream.len();
        stream.extend_from_slice(&LogRecord::new(Lsn(1), vec![2; 40]).encode());
        stream[second_start + 20] ^= 0xFF; // corrupt second record
        stream.extend_from_slice(&LogRecord::new(Lsn(2), vec![3; 40]).encode());
        let out = decode_stream(&stream);
        // Only the first record survives; the rest is unreachable behind
        // the torn one (exactly how WAL replay must behave).
        assert_eq!(out.records.len(), 1);
        assert_eq!(out.torn_at_byte, second_start);
    }

    #[test]
    fn empty_stream_is_empty() {
        let out = decode_stream(&[]);
        assert!(out.records.is_empty());
        assert_eq!(out.torn_at_byte, 0);
    }
}
