//! Error type for WAL operations.

use std::error::Error;
use std::fmt;

use twob_core::{PinError, TwoBError};
use twob_ssd::SsdError;

/// Errors raised by the WAL writers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WalError {
    /// A record larger than the writer can ever hold.
    RecordTooLarge {
        /// Encoded record size.
        got: usize,
        /// Maximum the writer supports.
        max: usize,
    },
    /// The configuration failed validation.
    BadConfig(String),
    /// The log device failed.
    Device(SsdError),
    /// The 2B-SSD byte path failed.
    TwoB(TwoBError),
    /// The pin-table arbiter refused the operation.
    Pin(PinError),
    /// A tail reader asked for an LSN that region wrap-around has already
    /// overwritten: the reader fell behind the log's retention window.
    CursorLag {
        /// The LSN the reader asked for.
        requested: u64,
        /// The oldest LSN still readable.
        oldest: u64,
    },
    /// The decoded tail is inconsistent (conflicting payloads for one LSN).
    CorruptTail(String),
    /// An append at or past a slot's fence LSN — the old owner of a moved
    /// shard tried to write past the handoff point.
    Fenced {
        /// The fence the slot was sealed at.
        fence: u64,
        /// The rejected record's LSN.
        got: u64,
    },
    /// A shipped record whose LSN is not the slot's next: the dense-stream
    /// check that turns a dropped or reordered shipment into a loud error.
    OutOfOrder {
        /// The LSN the slot expected next.
        expected: u64,
        /// The shipped record's LSN.
        got: u64,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::RecordTooLarge { got, max } => {
                write!(f, "record of {got} bytes exceeds writer maximum of {max}")
            }
            WalError::BadConfig(msg) => write!(f, "invalid wal config: {msg}"),
            WalError::Device(e) => write!(f, "log device: {e}"),
            WalError::TwoB(e) => write!(f, "2b-ssd: {e}"),
            WalError::Pin(e) => write!(f, "pin table: {e}"),
            WalError::CursorLag { requested, oldest } => write!(
                f,
                "cursor lag: lsn:{requested} already overwritten, oldest readable is lsn:{oldest}"
            ),
            WalError::CorruptTail(msg) => write!(f, "corrupt log tail: {msg}"),
            WalError::Fenced { fence, got } => {
                write!(
                    f,
                    "slot fenced at lsn:{fence}, rejected append of lsn:{got}"
                )
            }
            WalError::OutOfOrder { expected, got } => {
                write!(
                    f,
                    "out-of-order ship: expected lsn:{expected}, got lsn:{got}"
                )
            }
        }
    }
}

impl Error for WalError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WalError::Device(e) => Some(e),
            WalError::TwoB(e) => Some(e),
            WalError::Pin(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SsdError> for WalError {
    fn from(e: SsdError) -> Self {
        WalError::Device(e)
    }
}

impl From<TwoBError> for WalError {
    fn from(e: TwoBError) -> Self {
        WalError::TwoB(e)
    }
}

impl From<PinError> for WalError {
    fn from(e: PinError) -> Self {
        WalError::Pin(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_nonempty() {
        for e in [
            WalError::RecordTooLarge { got: 10, max: 5 },
            WalError::BadConfig("x".into()),
            WalError::Device(SsdError::PoweredOff),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
