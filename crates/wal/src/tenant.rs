//! Per-tenant WAL writers over *one shared* 2B-SSD.
//!
//! The single-tenant writers ([`crate::BaWal`], [`crate::BlockWal`]) own
//! their device, which is exactly what the paper's application study (§V)
//! does *not* do: PostgreSQL, RocksDB, and Redis all log concurrently into
//! the same 8 MiB BA region of one drive. The tenant writers here share:
//!
//! - the device (`Rc<RefCell<TwoBSsd>>`) — every tenant's NAND, channel,
//!   and datapath traffic contends on the same servers;
//! - the [`IoCalendar`] — durability operations (`BA_SYNC`, `BA_FLUSH`,
//!   block writes and flushes) are submitted as calendar events, so they
//!   serialize in deterministic virtual-time order across tenants and keep
//!   background GC advancing;
//! - the [`PinTable`] — each BA tenant pins its log window inside its own
//!   share, with ownership enforced on every store.
//!
//! [`TenantBaWal`] is the BA-WAL port: a single pinned window per tenant
//! (rotate-in-place, like the paper's Redis port — with dozens of tenants
//! the 8-entry table has no room for per-tenant double buffering).
//! [`TenantBlockWal`] is the block-WAL comparator on the *same* device —
//! the paper's base SSD serves block I/O identically to a ULL-SSD (§V-A),
//! so one chassis hosts both schemes.

use std::cell::RefCell;
use std::rc::Rc;

use twob_core::{
    EntryId, IoCalendar, IoCompletion, IoOp, PinTable, RegionFrontEnd, TenantId, TwoBSsd,
};
use twob_ftl::Lba;
use twob_sim::SimTime;
use twob_ssd::BlockDevice;

use crate::{CommitOutcome, LogRecord, Lsn, WalConfig, WalError, WalStats, WalWriter};

/// Handle to the one device every tenant contends on.
pub type SharedDevice = Rc<RefCell<TwoBSsd>>;
/// Handle to the calendar routing every tenant's durability traffic.
pub type SharedCalendar = Rc<RefCell<IoCalendar>>;
/// Handle to the pin-table arbiter shared by the BA tenants.
pub type SharedPins = Rc<RefCell<PinTable>>;

/// Submits one operation, drives the shared calendar, and plucks out its
/// completion. Every tenant drains inside its own call, so the calendar's
/// completion buffer holds only this drive's results.
fn run_op(
    dev: &SharedDevice,
    cal: &SharedCalendar,
    at: SimTime,
    op: IoOp,
) -> Result<IoCompletion, WalError> {
    let mut cal = cal.borrow_mut();
    let id = cal.submit(at, op);
    cal.drive(&mut dev.borrow_mut());
    let done = cal
        .drain_completions()
        .into_iter()
        .find(|c| c.id == id)
        .expect("a driven calendar completes every submitted op");
    match done.error.clone() {
        Some(e) => Err(e.into()),
        None => Ok(done),
    }
}

/// BA-WAL for one tenant of a shared 2B-SSD: log records are `memcpy`ed
/// into the tenant's pinned window through the [`PinTable`], committed with
/// a range `BA_SYNC` through the shared [`IoCalendar`], and flushed
/// window-at-a-time (rotate-in-place) when full.
#[derive(Debug, Clone)]
pub struct TenantBaWal {
    dev: SharedDevice,
    cal: SharedCalendar,
    pins: SharedPins,
    tenant: TenantId,
    cfg: WalConfig,
    window_pages: u32,
    front_end: RegionFrontEnd,
    eid: EntryId,
    /// When the current window's pin load completes.
    ready_at: SimTime,
    /// Bytes appended to the current window.
    used: u64,
    /// Next region page offset (for re-pinning after a rotation).
    cursor_pages: u64,
    next_lsn: u64,
    stats: WalStats,
}

impl TenantBaWal {
    /// Pins `tenant`'s log window (`window_pages` pages at
    /// `cfg.region_base_lba`) and readies the writer.
    ///
    /// # Errors
    ///
    /// [`WalError::BadConfig`] for an invalid shape, [`WalError::Pin`] if
    /// the tenant's share rejects the window, or device failures.
    pub fn new(
        dev: SharedDevice,
        cal: SharedCalendar,
        pins: SharedPins,
        tenant: TenantId,
        cfg: WalConfig,
        window_pages: u32,
    ) -> Result<Self, WalError> {
        TenantBaWal::with_front_end(
            dev,
            cal,
            pins,
            tenant,
            cfg,
            window_pages,
            RegionFrontEnd::BaMmio,
        )
    }

    /// Like [`TenantBaWal::new`], but serving the window through a chosen
    /// byte front-end: the paper's MMIO + `BA_SYNC` path or the CXL.mem
    /// load/store + persist-barrier path. Appends and commits route
    /// through whichever front-end the window carries.
    ///
    /// # Errors
    ///
    /// As for [`TenantBaWal::new`]; additionally rejects
    /// [`RegionFrontEnd::Block`] (a byte-path WAL needs a byte window).
    pub fn with_front_end(
        dev: SharedDevice,
        cal: SharedCalendar,
        pins: SharedPins,
        tenant: TenantId,
        cfg: WalConfig,
        window_pages: u32,
        front_end: RegionFrontEnd,
    ) -> Result<Self, WalError> {
        cfg.validate().map_err(WalError::BadConfig)?;
        if front_end == RegionFrontEnd::Block {
            return Err(WalError::BadConfig(
                "a byte-path WAL window cannot be block-backed".into(),
            ));
        }
        if window_pages == 0 {
            return Err(WalError::BadConfig("window_pages must be positive".into()));
        }
        if u64::from(cfg.region_pages) < u64::from(window_pages)
            || !cfg.region_pages.is_multiple_of(window_pages)
        {
            return Err(WalError::BadConfig(
                "log region must be a multiple of window_pages".into(),
            ));
        }
        if cfg.region_base_lba + u64::from(cfg.region_pages) > dev.borrow().capacity_pages() {
            return Err(WalError::BadConfig("log region exceeds device".into()));
        }
        let (eid, pin) = pins.borrow_mut().pin(
            &mut dev.borrow_mut(),
            SimTime::ZERO,
            tenant,
            Lba(cfg.region_base_lba),
            window_pages,
        )?;
        if front_end != RegionFrontEnd::BaMmio {
            pins.borrow_mut()
                .set_front_end(pin.complete_at, tenant, eid, front_end)?;
        }
        Ok(TenantBaWal {
            dev,
            cal,
            pins,
            tenant,
            cfg,
            window_pages,
            front_end,
            eid,
            ready_at: pin.complete_at,
            used: 0,
            cursor_pages: u64::from(window_pages),
            next_lsn: 0,
            stats: WalStats::default(),
        })
    }

    /// The owning tenant.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// The mapping entry currently holding the tenant's window.
    pub fn eid(&self) -> EntryId {
        self.eid
    }

    fn window_bytes(&self) -> u64 {
        u64::from(self.window_pages) * 4096
    }

    /// The durability op of this window's front-end: a range `BA_SYNC` on
    /// the MMIO path, a persist barrier on the CXL path. Both acknowledge
    /// at the same contract — the covered bytes are device-durable.
    fn sync_op(&self, rel_offset: u64, len: u64) -> IoOp {
        match self.front_end {
            RegionFrontEnd::Cxl => IoOp::CxlPersist {
                eid: self.eid,
                rel_offset,
                len,
            },
            _ => IoOp::BaSyncRange {
                eid: self.eid,
                rel_offset,
                len,
            },
        }
    }

    /// Flushes the window to its pinned NAND pages and re-pins it at the
    /// next log-segment LBAs (rotate-in-place: the log path stalls for the
    /// flush, as the paper's single-buffered Redis port does).
    fn rotate(&mut self, at: SimTime) -> Result<SimTime, WalError> {
        self.pins
            .borrow_mut()
            .begin_unpin(at, self.tenant, self.eid)?;
        let flush = run_op(&self.dev, &self.cal, at, IoOp::BaFlush { eid: self.eid })?;
        self.pins.borrow_mut().finish_unpin(self.eid)?;
        self.stats.device_page_writes += u64::from(self.window_pages);
        self.stats.distinct_pages += u64::from(self.window_pages);
        let next_lba =
            Lba(self.cfg.region_base_lba + self.cursor_pages % u64::from(self.cfg.region_pages));
        self.cursor_pages += u64::from(self.window_pages);
        let (eid, pin) = self.pins.borrow_mut().pin(
            &mut self.dev.borrow_mut(),
            flush.complete_at,
            self.tenant,
            next_lba,
            self.window_pages,
        )?;
        if self.front_end != RegionFrontEnd::BaMmio {
            self.pins.borrow_mut().set_front_end(
                pin.complete_at,
                self.tenant,
                eid,
                self.front_end,
            )?;
        }
        self.eid = eid;
        self.ready_at = pin.complete_at;
        self.used = 0;
        Ok(pin.complete_at)
    }

    /// Flushes whatever the window holds (e.g. at shutdown) and re-pins,
    /// returning when the tail is durable on NAND.
    ///
    /// # Errors
    ///
    /// Propagates device and arbiter errors.
    pub fn finalize(&mut self, now: SimTime) -> Result<SimTime, WalError> {
        if self.used > 0 {
            self.rotate(now.max(self.ready_at))
        } else {
            Ok(now)
        }
    }
}

impl WalWriter for TenantBaWal {
    fn append_commit(&mut self, now: SimTime, payload: &[u8]) -> Result<CommitOutcome, WalError> {
        let record = LogRecord::new(Lsn(self.next_lsn), payload.to_vec());
        let bytes = record.encode();
        if bytes.len() as u64 > self.window_bytes() {
            return Err(WalError::RecordTooLarge {
                got: bytes.len(),
                max: self.window_bytes() as usize,
            });
        }
        self.next_lsn += 1;
        let mut t = (now + self.cfg.record_overhead).max(self.ready_at);
        if self.used + bytes.len() as u64 > self.window_bytes() {
            t = t.max(self.rotate(t)?);
        }
        let store = self.pins.borrow_mut().write(
            &mut self.dev.borrow_mut(),
            t,
            self.tenant,
            self.eid,
            self.used,
            &bytes,
        )?;
        let sync = run_op(
            &self.dev,
            &self.cal,
            store.retired_at,
            self.sync_op(self.used, bytes.len() as u64),
        )?;
        self.used += bytes.len() as u64;
        self.stats.commits += 1;
        self.stats.payload_bytes += payload.len() as u64;
        self.stats.encoded_bytes += bytes.len() as u64;
        let outcome = CommitOutcome {
            lsn: record.lsn,
            commit_at: sync.complete_at,
            durable_at: Some(sync.complete_at),
        };
        self.stats.commit_time_total += outcome.commit_at.saturating_since(now);
        Ok(outcome)
    }

    /// Batch append: every record is stored, with one range `BA_SYNC` per
    /// touched window as the single durability point (rotation mid-batch
    /// syncs the outgoing window's tail first, so nothing is torn).
    fn append_batch(
        &mut self,
        now: SimTime,
        payloads: &[Vec<u8>],
    ) -> Result<CommitOutcome, WalError> {
        if payloads.is_empty() {
            return Err(WalError::BadConfig("empty batch".into()));
        }
        let mut t = (now + self.cfg.record_overhead).max(self.ready_at);
        let mut dirty_start: Option<u64> = None;
        let mut last_lsn = Lsn(self.next_lsn);
        let mut encoded_total = 0u64;
        let mut payload_total = 0u64;
        for payload in payloads {
            let record = LogRecord::new(Lsn(self.next_lsn), payload.clone());
            let bytes = record.encode();
            if bytes.len() as u64 > self.window_bytes() {
                return Err(WalError::RecordTooLarge {
                    got: bytes.len(),
                    max: self.window_bytes() as usize,
                });
            }
            self.next_lsn += 1;
            last_lsn = record.lsn;
            if self.used + bytes.len() as u64 > self.window_bytes() {
                if let Some(start) = dirty_start.take() {
                    let sync = run_op(
                        &self.dev,
                        &self.cal,
                        t,
                        self.sync_op(start, self.used - start),
                    )?;
                    t = sync.complete_at;
                }
                t = t.max(self.rotate(t)?);
            }
            let store = self.pins.borrow_mut().write(
                &mut self.dev.borrow_mut(),
                t,
                self.tenant,
                self.eid,
                self.used,
                &bytes,
            )?;
            t = store.retired_at;
            if dirty_start.is_none() {
                dirty_start = Some(self.used);
            }
            self.used += bytes.len() as u64;
            encoded_total += bytes.len() as u64;
            payload_total += payload.len() as u64;
        }
        let durable = match dirty_start {
            Some(start) => {
                run_op(
                    &self.dev,
                    &self.cal,
                    t,
                    self.sync_op(start, self.used - start),
                )?
                .complete_at
            }
            None => t,
        };
        self.stats.commits += payloads.len() as u64;
        self.stats.payload_bytes += payload_total;
        self.stats.encoded_bytes += encoded_total;
        self.stats.commit_time_total += durable.saturating_since(now);
        Ok(CommitOutcome {
            lsn: last_lsn,
            commit_at: durable,
            durable_at: Some(durable),
        })
    }

    fn scheme(&self) -> String {
        format!("BA-WAL({})", self.tenant)
    }

    fn stats(&self) -> WalStats {
        self.stats
    }
}

/// Block-WAL for one tenant of a shared device: conventional page-aligned
/// log writes plus an NVMe flush per commit, all routed as calendar events
/// so tenants contend in virtual time. The comparator scheme of the tenant
/// sweep — same chassis, block path instead of byte path.
#[derive(Debug, Clone)]
pub struct TenantBlockWal {
    dev: SharedDevice,
    cal: SharedCalendar,
    tenant: TenantId,
    cfg: WalConfig,
    next_lsn: u64,
    page_image: Vec<u8>,
    page_fill: usize,
    cursor_page: u64,
    page_started: bool,
    stats: WalStats,
}

impl TenantBlockWal {
    /// Creates a writer logging into `cfg`'s region of the shared device.
    ///
    /// # Errors
    ///
    /// [`WalError::BadConfig`] if the region does not fit the device.
    pub fn new(
        dev: SharedDevice,
        cal: SharedCalendar,
        tenant: TenantId,
        cfg: WalConfig,
    ) -> Result<Self, WalError> {
        cfg.validate().map_err(WalError::BadConfig)?;
        let page_size = {
            let d = dev.borrow();
            if cfg.region_base_lba + u64::from(cfg.region_pages) > d.capacity_pages() {
                return Err(WalError::BadConfig("log region exceeds device".into()));
            }
            d.page_size()
        };
        Ok(TenantBlockWal {
            dev,
            cal,
            tenant,
            cfg,
            next_lsn: 0,
            page_image: vec![0; page_size],
            page_fill: 0,
            cursor_page: 0,
            page_started: false,
            stats: WalStats::default(),
        })
    }

    /// The owning tenant.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    fn current_lba(&self) -> Lba {
        Lba(self.cfg.region_base_lba + self.cursor_page % u64::from(self.cfg.region_pages))
    }

    fn write_current_page(&mut self, at: SimTime) -> Result<SimTime, WalError> {
        let lba = self.current_lba();
        let image = self.page_image.clone();
        let ack = run_op(
            &self.dev,
            &self.cal,
            at,
            IoOp::BlockWrite { lba, data: image },
        )?;
        self.stats.device_page_writes += 1;
        Ok(ack.complete_at)
    }

    /// Stages `stream` into page images, writing each touched page, and
    /// returns the last ack instant.
    fn stage_stream(&mut self, staged_at: SimTime, stream: &[u8]) -> Result<SimTime, WalError> {
        let page_size = self.page_image.len();
        let mut cursor = 0usize;
        let mut last_ack = staged_at;
        while cursor < stream.len() {
            if !self.page_started {
                self.page_started = true;
                self.stats.distinct_pages += 1;
            }
            let space = page_size - self.page_fill;
            let take = space.min(stream.len() - cursor);
            self.page_image[self.page_fill..self.page_fill + take]
                .copy_from_slice(&stream[cursor..cursor + take]);
            self.page_fill += take;
            cursor += take;
            let page_full = self.page_fill == page_size;
            if page_full || cursor == stream.len() {
                last_ack = self.write_current_page(staged_at)?;
            }
            if page_full {
                self.cursor_page += 1;
                self.page_fill = 0;
                self.page_image.fill(0);
                self.page_started = false;
            }
        }
        Ok(last_ack)
    }

    fn flush_device(&mut self, at: SimTime) -> Result<SimTime, WalError> {
        let done = run_op(&self.dev, &self.cal, at, IoOp::BlockFlush)?;
        self.stats.device_flushes += 1;
        Ok(done.complete_at)
    }
}

impl WalWriter for TenantBlockWal {
    fn append_commit(&mut self, now: SimTime, payload: &[u8]) -> Result<CommitOutcome, WalError> {
        let record = LogRecord::new(Lsn(self.next_lsn), payload.to_vec());
        let bytes = record.encode();
        let region_bytes = u64::from(self.cfg.region_pages) * self.page_image.len() as u64;
        if bytes.len() as u64 > region_bytes {
            return Err(WalError::RecordTooLarge {
                got: bytes.len(),
                max: region_bytes as usize,
            });
        }
        self.next_lsn += 1;
        let staged_at = now + self.cfg.record_overhead + self.cfg.memcpy(bytes.len() as u64);
        let last_ack = self.stage_stream(staged_at, &bytes)?;
        let durable = self.flush_device(last_ack)?;
        self.stats.commits += 1;
        self.stats.payload_bytes += payload.len() as u64;
        self.stats.encoded_bytes += bytes.len() as u64;
        self.stats.commit_time_total += durable.saturating_since(now);
        Ok(CommitOutcome {
            lsn: record.lsn,
            commit_at: durable,
            durable_at: Some(durable),
        })
    }

    /// Batch append (group commit): each touched page is written once, and
    /// one flush ends the batch.
    fn append_batch(
        &mut self,
        now: SimTime,
        payloads: &[Vec<u8>],
    ) -> Result<CommitOutcome, WalError> {
        if payloads.is_empty() {
            return Err(WalError::BadConfig("empty batch".into()));
        }
        let region_bytes = u64::from(self.cfg.region_pages) * self.page_image.len() as u64;
        let mut stream = Vec::new();
        let mut last_lsn = Lsn(self.next_lsn);
        let mut payload_total = 0u64;
        for payload in payloads {
            let record = LogRecord::new(Lsn(self.next_lsn), payload.clone());
            if record.encoded_len() as u64 > region_bytes {
                return Err(WalError::RecordTooLarge {
                    got: record.encoded_len(),
                    max: region_bytes as usize,
                });
            }
            self.next_lsn += 1;
            last_lsn = record.lsn;
            payload_total += payload.len() as u64;
            stream.extend_from_slice(&record.encode());
        }
        let staged_at = now
            + self.cfg.record_overhead * payloads.len() as u64
            + self.cfg.memcpy(stream.len() as u64);
        let last_ack = self.stage_stream(staged_at, &stream)?;
        let durable = self.flush_device(last_ack)?;
        self.stats.commits += payloads.len() as u64;
        self.stats.payload_bytes += payload_total;
        self.stats.encoded_bytes += stream.len() as u64;
        self.stats.commit_time_total += durable.saturating_since(now);
        Ok(CommitOutcome {
            lsn: last_lsn,
            commit_at: durable,
            durable_at: Some(durable),
        })
    }

    fn scheme(&self) -> String {
        format!("BLOCK-WAL({})", self.tenant)
    }

    fn stats(&self) -> WalStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twob_core::TwoBSpec;
    use twob_ssd::SsdConfig;

    fn shared(tenants: u16) -> (SharedDevice, SharedCalendar, SharedPins) {
        let dev = TwoBSsd::new(SsdConfig::base_2b().small(), TwoBSpec::small_for_tests());
        let pins = PinTable::new(dev.spec(), tenants).unwrap();
        (
            Rc::new(RefCell::new(dev)),
            Rc::new(RefCell::new(IoCalendar::new())),
            Rc::new(RefCell::new(pins)),
        )
    }

    fn ba_cfg(tenant: u16) -> WalConfig {
        WalConfig {
            region_base_lba: u64::from(tenant) * 16,
            region_pages: 16,
            ..WalConfig::default()
        }
    }

    #[test]
    fn two_ba_tenants_log_into_one_device() {
        let (dev, cal, pins) = shared(2);
        let mut a = TenantBaWal::new(
            dev.clone(),
            cal.clone(),
            pins.clone(),
            TenantId(0),
            ba_cfg(0),
            2,
        )
        .unwrap();
        let mut b =
            TenantBaWal::new(dev.clone(), cal.clone(), pins, TenantId(1), ba_cfg(1), 2).unwrap();
        let mut t = SimTime::from_nanos(1_000_000);
        for i in 0..40u64 {
            let out_a = a.append_commit(t, format!("a-{i}").as_bytes()).unwrap();
            let out_b = b
                .append_commit(out_a.commit_at, format!("b-{i}").as_bytes())
                .unwrap();
            t = out_b.commit_at;
        }
        assert_eq!(a.stats().commits, 40);
        assert_eq!(b.stats().commits, 40);
        // Both tenants' windows stayed disjoint on the one device.
        assert_eq!(dev.borrow().entries().len(), 2);
    }

    #[test]
    fn rotation_flushes_and_repins_within_the_share() {
        let (dev, cal, pins) = shared(1);
        let mut w = TenantBaWal::new(dev.clone(), cal, pins, TenantId(0), ba_cfg(0), 2).unwrap();
        let mut t = SimTime::from_nanos(1_000_000);
        // 8 KiB window; ~116 B records: force several rotations.
        for _ in 0..300 {
            t = w.append_commit(t, &[7u8; 100]).unwrap().commit_at;
        }
        let s = w.stats();
        assert!(s.device_page_writes >= 4, "no rotations happened");
        assert!(
            (s.log_waf() - 1.0).abs() < f64::EPSILON,
            "tenant BA-WAL WAF {} != 1",
            s.log_waf()
        );
        assert_eq!(dev.borrow().entries().len(), 1, "window re-pinned");
    }

    #[test]
    fn ba_commit_beats_block_commit_on_the_same_chassis() {
        let (dev, cal, pins) = shared(2);
        let mut ba =
            TenantBaWal::new(dev.clone(), cal.clone(), pins, TenantId(0), ba_cfg(0), 2).unwrap();
        let blk_cfg = WalConfig {
            region_base_lba: 32,
            region_pages: 16,
            ..WalConfig::default()
        };
        let mut blk = TenantBlockWal::new(dev, cal, TenantId(1), blk_cfg).unwrap();
        let start = SimTime::from_nanos(1_000_000);
        let ba_out = ba.append_commit(start, &[1u8; 64]).unwrap();
        let blk_out = blk.append_commit(ba_out.commit_at, &[1u8; 64]).unwrap();
        let ba_lat = ba_out.commit_at.saturating_since(start);
        let blk_lat = blk_out.commit_at.saturating_since(ba_out.commit_at);
        assert!(
            ba_lat.as_nanos() * 3 < blk_lat.as_nanos(),
            "BA commit {ba_lat} should be well under block commit {blk_lat}"
        );
    }

    #[test]
    fn block_tenant_flushes_through_the_calendar() {
        let (dev, cal, _) = shared(1);
        let cfg = WalConfig {
            region_base_lba: 0,
            region_pages: 16,
            ..WalConfig::default()
        };
        let mut w = TenantBlockWal::new(dev, cal, TenantId(0), cfg).unwrap();
        let out = w.append_commit(SimTime::ZERO, b"tx").unwrap();
        assert_eq!(out.durable_at, Some(out.commit_at));
        assert_eq!(w.stats().device_flushes, 1);
        assert_eq!(w.stats().device_page_writes, 1);
    }

    #[test]
    fn batch_is_one_durability_point() {
        let (dev, cal, pins) = shared(1);
        let mut w = TenantBaWal::new(dev.clone(), cal, pins, TenantId(0), ba_cfg(0), 2).unwrap();
        let payloads: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i; 40]).collect();
        let out = w
            .append_batch(SimTime::from_nanos(1_000_000), &payloads)
            .unwrap();
        assert_eq!(out.lsn, Lsn(9));
        assert_eq!(w.stats().commits, 10);
        // One sync covered the whole batch.
        assert_eq!(dev.borrow().stats().syncs, 1);
    }

    #[test]
    fn cxl_tenant_commits_faster_than_mmio_tenant() {
        let (dev, cal, pins) = shared(2);
        let mut mmio = TenantBaWal::new(
            dev.clone(),
            cal.clone(),
            pins.clone(),
            TenantId(0),
            ba_cfg(0),
            2,
        )
        .unwrap();
        let mut cxl = TenantBaWal::with_front_end(
            dev.clone(),
            cal,
            pins,
            TenantId(1),
            ba_cfg(1),
            2,
            RegionFrontEnd::Cxl,
        )
        .unwrap();
        let start = SimTime::from_nanos(1_000_000);
        let m = mmio.append_commit(start, &[1u8; 128]).unwrap();
        let c = cxl.append_commit(m.commit_at, &[1u8; 128]).unwrap();
        let mmio_lat = m.commit_at.saturating_since(start);
        let cxl_lat = c.commit_at.saturating_since(m.commit_at);
        assert!(
            cxl_lat < mmio_lat,
            "CXL commit {cxl_lat} should beat MMIO commit {mmio_lat}"
        );
        let stats = dev.borrow().stats();
        assert_eq!(stats.cxl_persists, 1, "commit skipped the persist barrier");
        assert_eq!(stats.syncs, 1, "MMIO tenant should have synced once");
    }

    #[test]
    fn cxl_tenant_rotation_keeps_waf_one() {
        let (dev, cal, pins) = shared(1);
        let mut w = TenantBaWal::with_front_end(
            dev.clone(),
            cal,
            pins,
            TenantId(0),
            ba_cfg(0),
            2,
            RegionFrontEnd::Cxl,
        )
        .unwrap();
        let mut t = SimTime::from_nanos(1_000_000);
        for _ in 0..300 {
            t = w.append_commit(t, &[7u8; 100]).unwrap().commit_at;
        }
        let s = w.stats();
        assert!(s.device_page_writes >= 4, "no rotations happened");
        assert!(
            (s.log_waf() - 1.0).abs() < f64::EPSILON,
            "CXL tenant WAF {} != 1",
            s.log_waf()
        );
        // Rotation flushes still ride BA_FLUSH — demotion to NAND is the
        // shared path regardless of byte front-end.
        assert!(dev.borrow().stats().flushes >= 2);
    }

    #[test]
    fn tenant_cannot_outgrow_its_share() {
        let (dev, cal, pins) = shared(4);
        // 64 KiB buffer / 4 tenants = 4 pages each; an 8-page window is too
        // large for the share.
        let err = TenantBaWal::new(dev, cal, pins, TenantId(0), ba_cfg(0), 8).unwrap_err();
        assert!(matches!(err, WalError::Pin(_)), "got {err:?}");
    }
}
