//! WAL accounting: commit costs and log write amplification.

use serde::{Deserialize, Serialize};
use twob_sim::SimDuration;

/// Counters shared by all WAL writers.
///
/// The two headline figures:
///
/// - [`WalStats::mean_commit_cost`] — the commit-path latency the paper
///   reduces "up to 26×" (§V-C).
/// - [`WalStats::log_waf`] — device page writes per *distinct* log page;
///   conventional WAL rewrites a partially filled page on every commit,
///   BA-WAL programs each page exactly once when its segment half flushes
///   (§IV-A).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WalStats {
    /// Commits appended.
    pub commits: u64,
    /// Payload bytes appended (excluding headers).
    pub payload_bytes: u64,
    /// Encoded bytes appended (including headers).
    pub encoded_bytes: u64,
    /// Pages written to the log device.
    pub device_page_writes: u64,
    /// Device flushes issued.
    pub device_flushes: u64,
    /// Distinct log pages the encoded stream occupies.
    pub distinct_pages: u64,
    /// Total virtual time spent on the commit path.
    pub commit_time_total: SimDuration,
}

impl WalStats {
    /// Mean commit-path latency.
    pub fn mean_commit_cost(&self) -> SimDuration {
        if self.commits == 0 {
            SimDuration::ZERO
        } else {
            self.commit_time_total / self.commits
        }
    }

    /// Device page writes per distinct log page (≥ 1.0 unless nothing was
    /// written). Conventional WAL with small commits drives this well above
    /// 1; BA-WAL holds it at 1.
    pub fn log_waf(&self) -> f64 {
        if self.distinct_pages == 0 {
            1.0
        } else {
            self.device_page_writes as f64 / self.distinct_pages as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_neutral() {
        let s = WalStats::default();
        assert_eq!(s.mean_commit_cost(), SimDuration::ZERO);
        assert_eq!(s.log_waf(), 1.0);
    }

    #[test]
    fn waf_reflects_page_rewrites() {
        let s = WalStats {
            device_page_writes: 40,
            distinct_pages: 10,
            ..WalStats::default()
        };
        assert!((s.log_waf() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn mean_commit_cost_divides() {
        let s = WalStats {
            commits: 4,
            commit_time_total: SimDuration::from_micros(40),
            ..WalStats::default()
        };
        assert_eq!(s.mean_commit_cost(), SimDuration::from_micros(10));
    }
}
