//! Conventional block-device WAL (paper Fig 5, left).

use twob_ftl::Lba;
use twob_sim::SimTime;
use twob_ssd::BlockDevice;

use crate::{CommitMode, CommitOutcome, LogRecord, Lsn, WalConfig, WalError, WalStats, WalWriter};

/// Conventional WAL over a block device.
///
/// Every commit appends its record to an in-host page image and writes the
/// *whole page* (the I/O must be page-aligned), so a stream of small
/// commits rewrites the same page repeatedly — the write-amplification
/// pathology of §IV-A. `Sync` mode additionally flushes and waits; `Async`
/// completes after the host-memory copy and lets the page write trail.
///
/// # Example
///
/// ```rust
/// use twob_ssd::{Ssd, SsdConfig};
/// use twob_sim::SimTime;
/// use twob_wal::{BlockWal, CommitMode, WalConfig, WalWriter};
///
/// let ssd = Ssd::new(SsdConfig::dc_ssd().small());
/// let mut wal = BlockWal::new(ssd, WalConfig::default(), CommitMode::Async)?;
/// let out = wal.append_commit(SimTime::ZERO, b"small commit")?;
/// // Async: the transaction completed before the record was durable.
/// assert!(out.risk_window().is_some());
/// # Ok::<(), twob_wal::WalError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BlockWal<D> {
    dev: D,
    cfg: WalConfig,
    mode: CommitMode,
    next_lsn: u64,
    page_image: Vec<u8>,
    page_fill: usize,
    cursor_page: u64,
    page_started: bool,
    stats: WalStats,
}

impl<D: BlockDevice> BlockWal<D> {
    /// Creates a writer over `dev` logging into `cfg`'s region.
    ///
    /// # Errors
    ///
    /// [`WalError::BadConfig`] if the config is invalid or the region does
    /// not fit the device.
    pub fn new(dev: D, cfg: WalConfig, mode: CommitMode) -> Result<Self, WalError> {
        cfg.validate().map_err(WalError::BadConfig)?;
        if cfg.region_base_lba + u64::from(cfg.region_pages) > dev.capacity_pages() {
            return Err(WalError::BadConfig(format!(
                "log region ends at {} but device holds {} pages",
                cfg.region_base_lba + u64::from(cfg.region_pages),
                dev.capacity_pages()
            )));
        }
        let page_size = dev.page_size();
        Ok(BlockWal {
            dev,
            cfg,
            mode,
            next_lsn: 0,
            page_image: vec![0; page_size],
            page_fill: 0,
            cursor_page: 0,
            page_started: false,
            stats: WalStats::default(),
        })
    }

    /// The wrapped device (read-only).
    pub fn device(&self) -> &D {
        &self.dev
    }

    /// Mutable device access (for replay and fault injection in tests).
    pub fn device_mut(&mut self) -> &mut D {
        &mut self.dev
    }

    /// Consumes the writer, returning the device.
    pub fn into_device(self) -> D {
        self.dev
    }

    /// The commit mode.
    pub fn mode(&self) -> CommitMode {
        self.mode
    }

    fn current_lba(&self) -> Lba {
        Lba(self.cfg.region_base_lba + self.cursor_page % u64::from(self.cfg.region_pages))
    }

    /// Writes the current page image (page-aligned, as block devices
    /// require) and returns the ack instant.
    fn write_current_page(&mut self, at: SimTime) -> Result<SimTime, WalError> {
        let lba = self.current_lba();
        let image = self.page_image.clone();
        let ack = self.dev.write_pages(at, lba, &image)?;
        self.stats.device_page_writes += 1;
        Ok(ack)
    }
}

impl<D: BlockDevice> WalWriter for BlockWal<D> {
    fn append_commit(&mut self, now: SimTime, payload: &[u8]) -> Result<CommitOutcome, WalError> {
        let record = LogRecord::new(Lsn(self.next_lsn), payload.to_vec());
        let bytes = record.encode();
        let region_bytes = u64::from(self.cfg.region_pages) * self.dev.page_size() as u64;
        if bytes.len() as u64 > region_bytes {
            return Err(WalError::RecordTooLarge {
                got: bytes.len(),
                max: region_bytes as usize,
            });
        }
        self.next_lsn += 1;
        let page_size = self.dev.page_size();
        // Host-side staging.
        let staged_at = now + self.cfg.record_overhead + self.cfg.memcpy(bytes.len() as u64);
        // Copy the record into page images, writing each touched page.
        let mut cursor = 0usize;
        let mut last_ack = staged_at;
        while cursor < bytes.len() {
            if !self.page_started {
                self.page_started = true;
                self.stats.distinct_pages += 1;
            }
            let space = page_size - self.page_fill;
            let take = space.min(bytes.len() - cursor);
            self.page_image[self.page_fill..self.page_fill + take]
                .copy_from_slice(&bytes[cursor..cursor + take]);
            self.page_fill += take;
            cursor += take;
            // The device sees the whole (possibly partial) page.
            last_ack = self.write_current_page(staged_at)?;
            if self.page_fill == page_size {
                self.cursor_page += 1;
                self.page_fill = 0;
                self.page_image.fill(0);
                self.page_started = false;
            }
        }
        self.stats.commits += 1;
        self.stats.payload_bytes += payload.len() as u64;
        self.stats.encoded_bytes += bytes.len() as u64;
        let outcome = match self.mode {
            CommitMode::Sync => {
                let durable = self.dev.flush(last_ack);
                self.stats.device_flushes += 1;
                CommitOutcome {
                    lsn: record.lsn,
                    commit_at: durable,
                    durable_at: Some(durable),
                }
            }
            CommitMode::Async => CommitOutcome {
                lsn: record.lsn,
                commit_at: staged_at,
                durable_at: Some(last_ack),
            },
        };
        self.stats.commit_time_total += outcome.commit_at.saturating_since(now);
        Ok(outcome)
    }

    /// Batch append (group commit): all records are staged into page
    /// images, each touched page is written *once*, and a single flush
    /// ends the batch — instead of one page write + flush per record.
    fn append_batch(
        &mut self,
        now: SimTime,
        payloads: &[Vec<u8>],
    ) -> Result<CommitOutcome, WalError> {
        if payloads.is_empty() {
            return Err(WalError::BadConfig("empty batch".into()));
        }
        let page_size = self.dev.page_size();
        let region_bytes = u64::from(self.cfg.region_pages) * page_size as u64;
        // Encode the whole batch.
        let mut stream = Vec::new();
        let mut last_lsn = Lsn(self.next_lsn);
        let mut payload_total = 0u64;
        for payload in payloads {
            let record = LogRecord::new(Lsn(self.next_lsn), payload.clone());
            if record.encoded_len() as u64 > region_bytes {
                return Err(WalError::RecordTooLarge {
                    got: record.encoded_len(),
                    max: region_bytes as usize,
                });
            }
            self.next_lsn += 1;
            last_lsn = record.lsn;
            payload_total += payload.len() as u64;
            stream.extend_from_slice(&record.encode());
        }
        let staged_at = now
            + self.cfg.record_overhead * payloads.len() as u64
            + self.cfg.memcpy(stream.len() as u64);
        // Copy into page images; write each page once, when it fills or
        // at the end of the batch.
        let mut cursor = 0usize;
        let mut last_ack = staged_at;
        while cursor < stream.len() {
            if !self.page_started {
                self.page_started = true;
                self.stats.distinct_pages += 1;
            }
            let space = page_size - self.page_fill;
            let take = space.min(stream.len() - cursor);
            self.page_image[self.page_fill..self.page_fill + take]
                .copy_from_slice(&stream[cursor..cursor + take]);
            self.page_fill += take;
            cursor += take;
            let page_full = self.page_fill == page_size;
            if page_full || cursor == stream.len() {
                last_ack = self.write_current_page(staged_at)?;
            }
            if page_full {
                self.cursor_page += 1;
                self.page_fill = 0;
                self.page_image.fill(0);
                self.page_started = false;
            }
        }
        self.stats.commits += payloads.len() as u64;
        self.stats.payload_bytes += payload_total;
        self.stats.encoded_bytes += stream.len() as u64;
        let outcome = match self.mode {
            CommitMode::Sync => {
                let durable = self.dev.flush(last_ack);
                self.stats.device_flushes += 1;
                CommitOutcome {
                    lsn: last_lsn,
                    commit_at: durable,
                    durable_at: Some(durable),
                }
            }
            CommitMode::Async => CommitOutcome {
                lsn: last_lsn,
                commit_at: staged_at,
                durable_at: Some(last_ack),
            },
        };
        self.stats.commit_time_total += outcome.commit_at.saturating_since(now);
        Ok(outcome)
    }

    fn scheme(&self) -> String {
        format!("{}-WAL({})", self.mode, self.dev.label())
    }

    fn stats(&self) -> WalStats {
        self.stats
    }
}

impl<D: BlockDevice> crate::WalTail for BlockWal<D> {
    /// Reads the tail over block reads of the log region — every poll
    /// scans from the region base to the write frontier, which is exactly
    /// why block-WAL shipping costs more than the BA-WAL's `BA_READ_DMA`
    /// window read-out.
    fn read_tail(&mut self, now: SimTime, from: Lsn) -> Result<crate::CursorBatch, WalError> {
        let mut t = now;
        let mut stream = Vec::with_capacity(self.dev.page_size() * self.cfg.region_pages as usize);
        for i in 0..u64::from(self.cfg.region_pages) {
            match self
                .dev
                .read_pages(now, Lba(self.cfg.region_base_lba + i), 1)
            {
                Ok(read) => {
                    t = t.max(read.complete_at);
                    stream.extend_from_slice(&read.data);
                }
                Err(twob_ssd::SsdError::Unmapped(_)) => break,
                Err(e) => return Err(e.into()),
            }
        }
        let raw = crate::decode_stream(&stream).records;
        crate::cursor::finish_tail(raw, from, self.next_lsn, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay;
    use twob_ssd::{Ssd, SsdConfig};

    fn wal(mode: CommitMode) -> BlockWal<Ssd> {
        BlockWal::new(
            Ssd::new(SsdConfig::ull_ssd().small()),
            WalConfig::default(),
            mode,
        )
        .unwrap()
    }

    #[test]
    fn sync_commit_is_durable_at_commit() {
        let mut w = wal(CommitMode::Sync);
        let out = w.append_commit(SimTime::ZERO, b"tx1").unwrap();
        assert_eq!(out.durable_at, Some(out.commit_at));
        assert!(out.risk_window().is_none());
        // Commit waits for device write + flush: ≥ 10 us on ULL.
        assert!(
            out.commit_at
                .saturating_since(SimTime::ZERO)
                .as_micros_f64()
                > 9.0
        );
    }

    #[test]
    fn async_commit_has_risk_window() {
        let mut w = wal(CommitMode::Async);
        let out = w.append_commit(SimTime::ZERO, b"tx1").unwrap();
        let window = out.risk_window().expect("async must carry risk");
        assert!(window.as_micros_f64() > 1.0);
        // Commit itself is sub-microsecond (host memcpy only).
        assert!(
            out.commit_at
                .saturating_since(SimTime::ZERO)
                .as_micros_f64()
                < 1.0
        );
    }

    #[test]
    fn small_commits_rewrite_the_same_page() {
        let mut w = wal(CommitMode::Sync);
        let mut t = SimTime::ZERO;
        for _ in 0..10 {
            t = w.append_commit(t, &[7u8; 100]).unwrap().commit_at;
        }
        let s = w.stats();
        // 10 commits × ~116 B land in one 4 KiB page, written 10 times.
        assert_eq!(s.distinct_pages, 1);
        assert_eq!(s.device_page_writes, 10);
        assert!(s.log_waf() > 9.0);
    }

    #[test]
    fn large_record_spans_pages() {
        let mut w = wal(CommitMode::Sync);
        let out = w.append_commit(SimTime::ZERO, &vec![3u8; 6000]).unwrap();
        assert_eq!(out.lsn, Lsn(0));
        let s = w.stats();
        assert_eq!(s.distinct_pages, 2);
        assert!(s.device_page_writes >= 2);
    }

    #[test]
    fn oversized_record_rejected() {
        let mut w = wal(CommitMode::Sync);
        let region = 64 * 4096;
        let err = w
            .append_commit(SimTime::ZERO, &vec![0u8; region])
            .unwrap_err();
        assert!(matches!(err, WalError::RecordTooLarge { .. }));
    }

    #[test]
    fn replay_recovers_all_synced_records() {
        let mut w = wal(CommitMode::Sync);
        let mut t = SimTime::ZERO;
        for i in 0..20u64 {
            t = w
                .append_commit(t, format!("commit-{i}").as_bytes())
                .unwrap()
                .commit_at;
        }
        let cfg = WalConfig::default();
        let mut dev = w.into_device();
        let outcome = replay(&mut dev, t, cfg.region_base_lba, cfg.region_pages).unwrap();
        assert_eq!(outcome.records.len(), 20);
        assert_eq!(outcome.records[7].payload, b"commit-7");
        // LSNs are dense and ordered.
        for (i, rec) in outcome.records.iter().enumerate() {
            assert_eq!(rec.lsn, Lsn(i as u64));
        }
    }

    #[test]
    fn region_must_fit_device() {
        let cfg = WalConfig {
            region_base_lba: 0,
            region_pages: u32::MAX,
            ..WalConfig::default()
        };
        let err = BlockWal::new(
            Ssd::new(SsdConfig::ull_ssd().small()),
            cfg,
            CommitMode::Sync,
        )
        .unwrap_err();
        assert!(matches!(err, WalError::BadConfig(_)));
    }

    #[test]
    fn scheme_names_the_device() {
        let w = wal(CommitMode::Sync);
        assert_eq!(w.scheme(), "SYNC-WAL(ULL-SSD)");
    }

    #[test]
    fn batch_append_is_group_commit() {
        // 20 small records: individually they rewrite the page 20 times
        // with 20 flushes; batched they cost one page write + one flush.
        let payloads: Vec<Vec<u8>> = (0..20u8).map(|i| vec![i; 50]).collect();
        let mut solo = wal(CommitMode::Sync);
        let mut t = SimTime::ZERO;
        for p in &payloads {
            t = solo.append_commit(t, p).unwrap().commit_at;
        }
        let solo_span = t.saturating_since(SimTime::ZERO);
        let mut grouped = wal(CommitMode::Sync);
        let out = grouped.append_batch(SimTime::ZERO, &payloads).unwrap();
        let grouped_span = out.commit_at.saturating_since(SimTime::ZERO);
        assert!(grouped_span.as_nanos() * 5 < solo_span.as_nanos());
        assert_eq!(grouped.stats().device_page_writes, 1);
        assert_eq!(grouped.stats().device_flushes, 1);
        assert_eq!(grouped.stats().commits, 20);
        assert_eq!(out.lsn, Lsn(19));

        // The batch replays identically to the solo stream.
        let cfg = WalConfig::default();
        let mut dev = grouped.into_device();
        let replayed = replay(
            &mut dev,
            out.commit_at,
            cfg.region_base_lba,
            cfg.region_pages,
        )
        .unwrap();
        assert_eq!(replayed.records.len(), 20);
        for (i, rec) in replayed.records.iter().enumerate() {
            assert_eq!(rec.payload, payloads[i]);
        }
    }

    #[test]
    fn empty_batch_rejected() {
        let mut w = wal(CommitMode::Sync);
        assert!(matches!(
            w.append_batch(SimTime::ZERO, &[]),
            Err(WalError::BadConfig(_))
        ));
    }
}
