//! Many shard WALs on one 2B-SSD: the per-node log host of a cluster.
//!
//! A cluster node is one simulated 2B-SSD hosting the WALs of every logical
//! shard placed on it. [`ShardWalHost`] owns the device and a
//! [`PinTable`] and multiplexes per-shard log **slots** over it:
//!
//! - in [`HostMode::Ba`], each open slot holds one pinned BA window inside
//!   its own pin-table share (the multi-tenant arbitration of PR 4 applied
//!   to shards instead of processes). Appends are MMIO stores + `BA_SYNC`
//!   over exactly the appended bytes; a full window is flushed to the
//!   slot's NAND log region with `BA_FLUSH` and re-pinned at the next
//!   segment, single-buffered (the flush is on the log path, like the
//!   paper's Redis port);
//! - in [`HostMode::Block`], each slot is a conventional synchronous block
//!   WAL in the same per-slot region: every commit rewrites the page(s)
//!   holding the record tail and flushes the device write cache.
//!
//! Both modes produce the standard [`LogRecord`] stream, so the cluster's
//! catch-up shipping, follower reads, and crash recovery run over either.
//! Unlike the `Rc`-based tenant WALs, the host owns everything it touches
//! and is `Send`, so a fleet of hosts can ride the parallel PDES drive —
//! one node per shard of a `ShardedExecutor`.
//!
//! Two cluster-specific operations round out the API:
//!
//! - [`ShardWalHost::append_record`] appends a record shipped from another
//!   node and *requires* its LSN to be the slot's next — a dropped or
//!   reordered shipment surfaces as [`WalError::OutOfOrder`], never as a
//!   silent hole;
//! - [`ShardWalHost::fence`] seals a slot at a chosen LSN for the atomic
//!   handoff of a live shard move: appends at or past the fence fail with
//!   [`WalError::Fenced`], so the old owner provably stops exactly where
//!   the new owner takes over.

use std::collections::BTreeMap;

use twob_core::{EntryId, PinTable, RegionFrontEnd, TenantId, TwoBSsd};
use twob_ftl::Lba;
use twob_pcie::PcieTimings;
use twob_sim::{SimDuration, SimTime};
use twob_ssd::BlockDevice;

use crate::{cursor, decode_stream, CommitOutcome, CursorBatch, LogRecord, Lsn, WalError};

/// Which log path every slot on this host uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostMode {
    /// BA-WAL slots: pinned windows, MMIO appends, `BA_SYNC` commits,
    /// `BA_READ_DMA` tail reads.
    Ba,
    /// Conventional block WAL slots: page rewrites + cache flush per
    /// commit, block reads for every tail read.
    Block,
}

impl std::fmt::Display for HostMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HostMode::Ba => write!(f, "ba"),
            HostMode::Block => write!(f, "block"),
        }
    }
}

/// Geometry and pricing of one node's shard-WAL host.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostConfig {
    /// Log path for every slot.
    pub mode: HostMode,
    /// Maximum concurrently hosted shard slots; also the pin-table tenant
    /// count the BA-buffer is partitioned across.
    pub slots: u16,
    /// Pinned window per BA slot, in pages. Must fit the per-slot share.
    pub window_pages: u32,
    /// Per-slot NAND log region in pages (a multiple of `window_pages`);
    /// slot `i`'s region starts at `region_base_lba + i * region_pages`.
    pub region_pages: u32,
    /// First LBA of slot 0's region.
    pub region_base_lba: u64,
    /// Fixed per-record CPU cost (formatting, locking, bookkeeping).
    pub record_overhead: SimDuration,
    /// Byte front-end serving the BA slots' windows (`Ba` mode only):
    /// the paper's MMIO path or the CXL.mem cache-line path.
    pub front_end: RegionFrontEnd,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            mode: HostMode::Ba,
            slots: 4,
            window_pages: 2,
            region_pages: 8,
            region_base_lba: 0,
            record_overhead: SimDuration::from_nanos(150),
            front_end: RegionFrontEnd::BaMmio,
        }
    }
}

/// One hosted shard WAL.
#[derive(Debug, Clone)]
struct Slot {
    /// Live pin-table entry of the slot's window (`Ba` mode only).
    eid: Option<EntryId>,
    /// When the current window finished pinning and accepts appends.
    ready_at: SimTime,
    /// Bytes appended into the current window (`Ba`) or the whole staged
    /// log (`Block`).
    used: u64,
    /// Next LSN this slot will assign/accept.
    next_lsn: u64,
    /// Pages of the region consumed by flushed windows (`Ba`: the next
    /// re-pin offset, wrapping) or by page rewrites (`Block`).
    cursor_pages: u64,
    /// Appends at or past this LSN are rejected (shard-move handoff).
    fence: Option<u64>,
    /// `Block` mode: the full encoded log stream, staged in host memory
    /// the way a conventional WAL keeps its tail page image.
    staged: Vec<u8>,
    /// `Ba` mode: `(lsn, window offset, encoded len)` of every record in
    /// the current window — the host-DRAM index any real WAL keeps, which
    /// lets a follower read fetch exactly one record's bytes.
    index: Vec<(u64, u64, u64)>,
}

/// Multiplexes several shard WALs over one owned 2B-SSD. See the module
/// docs for the model.
#[derive(Debug, Clone)]
pub struct ShardWalHost {
    dev: TwoBSsd,
    pins: PinTable,
    cfg: HostConfig,
    slots: BTreeMap<u16, Slot>,
}

impl ShardWalHost {
    /// Builds a host over `dev` with no slots open.
    ///
    /// # Errors
    ///
    /// [`WalError::BadConfig`] if the geometry cannot fit: zero-sized
    /// windows/regions, a region not a multiple of the window, more slots
    /// than mapping-table entries, regions exceeding the device, or (in
    /// `Ba` mode) windows exceeding the per-slot BA-buffer share.
    pub fn new(dev: TwoBSsd, cfg: HostConfig) -> Result<Self, WalError> {
        if cfg.slots == 0 || cfg.window_pages == 0 {
            return Err(WalError::BadConfig(
                "slots and window must be positive".into(),
            ));
        }
        if cfg.region_pages < cfg.window_pages || !cfg.region_pages.is_multiple_of(cfg.window_pages)
        {
            return Err(WalError::BadConfig(
                "region must be a positive multiple of the window".into(),
            ));
        }
        let end = cfg.region_base_lba + u64::from(cfg.slots) * u64::from(cfg.region_pages);
        if end > dev.capacity_pages() {
            return Err(WalError::BadConfig(format!(
                "{} slot regions end at lba {end}, past the {}-page device",
                cfg.slots,
                dev.capacity_pages()
            )));
        }
        if cfg.mode == HostMode::Ba {
            if usize::from(cfg.slots) > dev.spec().max_entries {
                return Err(WalError::BadConfig(format!(
                    "{} slots exceed the {}-entry mapping table",
                    cfg.slots,
                    dev.spec().max_entries
                )));
            }
            let share = dev.spec().ba_buffer_pages() / u64::from(cfg.slots);
            if u64::from(cfg.window_pages) > share {
                return Err(WalError::BadConfig(format!(
                    "{}-page window exceeds the {share}-page per-slot share",
                    cfg.window_pages
                )));
            }
        }
        let pins = PinTable::new(dev.spec(), cfg.slots)?;
        Ok(ShardWalHost {
            dev,
            pins,
            cfg,
            slots: BTreeMap::new(),
        })
    }

    /// The host configuration.
    pub fn config(&self) -> &HostConfig {
        &self.cfg
    }

    /// The wrapped device (read-only).
    pub fn device(&self) -> &TwoBSsd {
        &self.dev
    }

    /// Mutable device access (fault injection in tests).
    pub fn device_mut(&mut self) -> &mut TwoBSsd {
        &mut self.dev
    }

    /// Slot IDs currently open, in order.
    pub fn open_slots(&self) -> Vec<u16> {
        self.slots.keys().copied().collect()
    }

    /// Whether `slot` is open.
    pub fn is_open(&self, slot: u16) -> bool {
        self.slots.contains_key(&slot)
    }

    /// The next LSN `slot` will assign or accept.
    ///
    /// # Errors
    ///
    /// [`WalError::BadConfig`] if the slot is not open.
    pub fn next_lsn(&self, slot: u16) -> Result<Lsn, WalError> {
        Ok(Lsn(self.slot(slot)?.next_lsn))
    }

    /// The fence LSN of `slot`, if sealed.
    pub fn fence_of(&self, slot: u16) -> Option<Lsn> {
        self.slots.get(&slot).and_then(|s| s.fence.map(Lsn))
    }

    fn slot(&self, slot: u16) -> Result<&Slot, WalError> {
        self.slots
            .get(&slot)
            .ok_or_else(|| WalError::BadConfig(format!("slot {slot} is not open")))
    }

    fn slot_base(&self, slot: u16) -> u64 {
        self.cfg.region_base_lba + u64::from(slot) * u64::from(self.cfg.region_pages)
    }

    fn window_bytes(&self) -> u64 {
        u64::from(self.cfg.window_pages) * 4096
    }

    /// Opens `slot` with an empty log. In `Ba` mode this pins the slot's
    /// window at the head of its region; the returned instant is when the
    /// slot accepts its first append.
    ///
    /// # Errors
    ///
    /// [`WalError::BadConfig`] for an out-of-range or already-open slot,
    /// or pin-table/device failures.
    pub fn open_slot(&mut self, now: SimTime, slot: u16) -> Result<SimTime, WalError> {
        if slot >= self.cfg.slots {
            return Err(WalError::BadConfig(format!(
                "slot {slot} out of range (host has {})",
                self.cfg.slots
            )));
        }
        if self.slots.contains_key(&slot) {
            return Err(WalError::BadConfig(format!("slot {slot} already open")));
        }
        let mut state = Slot {
            eid: None,
            ready_at: now,
            used: 0,
            next_lsn: 0,
            cursor_pages: u64::from(self.cfg.window_pages),
            fence: None,
            staged: Vec::new(),
            index: Vec::new(),
        };
        if self.cfg.mode == HostMode::Ba {
            let base = self.slot_base(slot);
            let (eid, done) = self.pins.pin(
                &mut self.dev,
                now,
                TenantId(slot),
                Lba(base),
                self.cfg.window_pages,
            )?;
            if self.cfg.front_end != RegionFrontEnd::BaMmio {
                self.pins.set_front_end(
                    done.complete_at,
                    TenantId(slot),
                    eid,
                    self.cfg.front_end,
                )?;
            }
            state.eid = Some(eid);
            state.ready_at = done.complete_at;
        } else {
            state.cursor_pages = 0;
        }
        self.slots.insert(slot, state);
        Ok(self.slots[&slot].ready_at)
    }

    /// Closes `slot`: in `Ba` mode the window is flushed to NAND and
    /// unpinned (the retiring side of a shard move keeps its log
    /// replayable); the slot's share and entry become reusable.
    ///
    /// # Errors
    ///
    /// [`WalError::BadConfig`] if the slot is not open, or device errors.
    pub fn close_slot(&mut self, now: SimTime, slot: u16) -> Result<SimTime, WalError> {
        let state = self.slot(slot)?.clone();
        let mut done = now;
        if let Some(eid) = state.eid {
            let t = now.max(state.ready_at);
            done = self
                .pins
                .unpin(&mut self.dev, t, TenantId(slot), eid)?
                .complete_at;
        }
        self.slots.remove(&slot);
        Ok(done)
    }

    /// Seals `slot` at `fence`: appends with `lsn >= fence` are rejected
    /// from now on. Used for the atomic handoff of a live shard move — the
    /// mover picks the fence at the source's frontier, so the source
    /// provably accepts nothing past it.
    ///
    /// # Errors
    ///
    /// [`WalError::BadConfig`] if the slot is not open or the fence
    /// precedes records already appended.
    pub fn fence(&mut self, slot: u16, fence: Lsn) -> Result<(), WalError> {
        let next = self.slot(slot)?.next_lsn;
        if fence.0 < next {
            return Err(WalError::BadConfig(format!(
                "fence {fence} precedes appended {next} records"
            )));
        }
        if let Some(state) = self.slots.get_mut(&slot) {
            state.fence = Some(fence.0);
        }
        Ok(())
    }

    /// Appends a commit payload to `slot` at its next LSN.
    ///
    /// # Errors
    ///
    /// [`WalError::Fenced`] past the slot's fence, plus the mode's device
    /// errors.
    pub fn append(
        &mut self,
        now: SimTime,
        slot: u16,
        payload: &[u8],
    ) -> Result<CommitOutcome, WalError> {
        let lsn = Lsn(self.slot(slot)?.next_lsn);
        let record = LogRecord::new(lsn, payload.to_vec());
        self.append_encoded(now, slot, &record)
    }

    /// Appends a record shipped from another node. The record's LSN must
    /// be exactly the slot's next — the dense-stream check that turns a
    /// dropped or reordered shipment into a loud error.
    ///
    /// # Errors
    ///
    /// [`WalError::OutOfOrder`] on an LSN mismatch, [`WalError::Fenced`]
    /// past the fence, plus the mode's device errors.
    pub fn append_record(
        &mut self,
        now: SimTime,
        slot: u16,
        record: &LogRecord,
    ) -> Result<CommitOutcome, WalError> {
        let expected = self.slot(slot)?.next_lsn;
        if record.lsn.0 != expected {
            return Err(WalError::OutOfOrder {
                expected,
                got: record.lsn.0,
            });
        }
        self.append_encoded(now, slot, record)
    }

    fn append_encoded(
        &mut self,
        now: SimTime,
        slot: u16,
        record: &LogRecord,
    ) -> Result<CommitOutcome, WalError> {
        let state = self.slot(slot)?;
        if let Some(fence) = state.fence {
            if record.lsn.0 >= fence {
                return Err(WalError::Fenced {
                    fence,
                    got: record.lsn.0,
                });
            }
        }
        let bytes = record.encode();
        if bytes.len() as u64 > self.window_bytes() {
            return Err(WalError::RecordTooLarge {
                got: bytes.len(),
                max: self.window_bytes() as usize,
            });
        }
        match self.cfg.mode {
            HostMode::Ba => self.append_ba(now, slot, record, &bytes),
            HostMode::Block => self.append_block(now, slot, record, &bytes),
        }
    }

    /// BA append: wait for the window, rotate if full (flush + re-pin, on
    /// the log path — single-buffered), MMIO-store the bytes, `BA_SYNC`
    /// exactly them.
    fn append_ba(
        &mut self,
        now: SimTime,
        slot: u16,
        record: &LogRecord,
        bytes: &[u8],
    ) -> Result<CommitOutcome, WalError> {
        let tenant = TenantId(slot);
        let slot_base = self.slot_base(slot);
        let state = self.slots.get_mut(&slot).expect("checked open");
        let mut t = (now + self.cfg.record_overhead).max(state.ready_at);
        if state.used + bytes.len() as u64 > u64::from(self.cfg.window_pages) * 4096 {
            // Rotate in place: flush the full window, re-pin the share at
            // the next region segment (wrapping).
            let eid = state.eid.expect("ba slot has a window");
            let rotate_from = t;
            let next_rel = slot_base + state.cursor_pages % u64::from(self.cfg.region_pages);
            let flushed = self
                .pins
                .unpin(&mut self.dev, rotate_from, tenant, eid)?
                .complete_at;
            let (eid, pin) = self.pins.pin(
                &mut self.dev,
                flushed,
                tenant,
                Lba(next_rel),
                self.cfg.window_pages,
            )?;
            if self.cfg.front_end != RegionFrontEnd::BaMmio {
                self.pins
                    .set_front_end(pin.complete_at, tenant, eid, self.cfg.front_end)?;
            }
            let state = self.slots.get_mut(&slot).expect("checked open");
            state.eid = Some(eid);
            state.ready_at = pin.complete_at;
            state.used = 0;
            state.cursor_pages += u64::from(self.cfg.window_pages);
            state.index.clear();
            t = t.max(pin.complete_at);
        }
        let state = self.slots.get_mut(&slot).expect("checked open");
        let eid = state.eid.expect("ba slot has a window");
        let offset = state.used;
        let store = self
            .pins
            .write(&mut self.dev, t, tenant, eid, offset, bytes)?;
        let sync = self.pins.sync_range(
            &mut self.dev,
            store.retired_at,
            tenant,
            eid,
            offset,
            bytes.len() as u64,
        )?;
        let state = self.slots.get_mut(&slot).expect("checked open");
        state.index.push((record.lsn.0, offset, bytes.len() as u64));
        state.used += bytes.len() as u64;
        state.next_lsn = record.lsn.0 + 1;
        Ok(CommitOutcome {
            lsn: record.lsn,
            commit_at: sync.complete_at,
            durable_at: Some(sync.complete_at),
        })
    }

    /// Block append: stage the bytes, rewrite every page the record
    /// touches (the block path's write amplification), flush the cache so
    /// the commit is durable at acknowledgement.
    fn append_block(
        &mut self,
        now: SimTime,
        slot: u16,
        record: &LogRecord,
        bytes: &[u8],
    ) -> Result<CommitOutcome, WalError> {
        let region_bytes = u64::from(self.cfg.region_pages) * 4096;
        let base = self.slot_base(slot);
        let state = self.slots.get_mut(&slot).expect("checked open");
        if state.staged.len() as u64 + bytes.len() as u64 > region_bytes {
            return Err(WalError::BadConfig(format!(
                "slot {slot} block log overflows its {region_bytes}-byte region"
            )));
        }
        let first_page = state.staged.len() as u64 / 4096;
        state.staged.extend_from_slice(bytes);
        let end_page = (state.staged.len() as u64).div_ceil(4096);
        let mut span = state.staged[(first_page * 4096) as usize..].to_vec();
        span.resize(((end_page - first_page) * 4096) as usize, 0);
        let t = now + self.cfg.record_overhead;
        let written = self.dev.write_pages(t, Lba(base + first_page), &span)?;
        let durable = self.dev.flush(written);
        let state = self.slots.get_mut(&slot).expect("checked open");
        state.used = state.staged.len() as u64;
        state.cursor_pages = end_page;
        state.next_lsn = record.lsn.0 + 1;
        Ok(CommitOutcome {
            lsn: record.lsn,
            commit_at: durable,
            durable_at: Some(durable),
        })
    }

    /// Decodes everything readable for `slot`: the pinned window over
    /// `BA_READ_DMA` plus flushed region segments (`Ba`), or the written
    /// region pages (`Block`). Raw, unordered; callers canonicalize.
    fn raw_records(
        &mut self,
        now: SimTime,
        slot: u16,
    ) -> Result<(Vec<LogRecord>, SimTime), WalError> {
        let state = self.slot(slot)?.clone();
        let mut t = now;
        let mut raw = Vec::new();
        match self.cfg.mode {
            HostMode::Ba => {
                if let Some(eid) = state.eid {
                    let info = self.pins.entry_info(eid)?;
                    let len = state.used.min(info.len_bytes());
                    if len > 0 {
                        let read = self.dev.ba_read_dma(now, eid, 0, len)?;
                        t = t.max(read.complete_at);
                        raw.extend(decode_stream(&read.data).records);
                    }
                }
                // Flushed segments from NAND, each independently coherent.
                let base = self.slot_base(slot);
                let mut stream = Vec::new();
                for i in 0..u64::from(self.cfg.region_pages) {
                    match self.dev.read_pages(now, Lba(base + i), 1) {
                        Ok(read) => {
                            t = t.max(read.complete_at);
                            stream.extend_from_slice(&read.data);
                        }
                        Err(twob_ssd::SsdError::Unmapped(_)) => break,
                        Err(e) => return Err(e.into()),
                    }
                }
                for segment in stream.chunks(self.window_bytes() as usize) {
                    raw.extend(decode_stream(segment).records);
                }
            }
            HostMode::Block => {
                let base = self.slot_base(slot);
                let mut stream = Vec::new();
                for i in 0..state
                    .cursor_pages
                    .max(1)
                    .min(u64::from(self.cfg.region_pages))
                {
                    match self.dev.read_pages(now, Lba(base + i), 1) {
                        Ok(read) => {
                            t = t.max(read.complete_at);
                            stream.extend_from_slice(&read.data);
                        }
                        Err(twob_ssd::SsdError::Unmapped(_)) => break,
                        Err(e) => return Err(e.into()),
                    }
                }
                raw.extend(decode_stream(&stream).records);
            }
        }
        Ok((raw, t))
    }

    /// Reads the slot's tail from `from` onwards, canonicalized dense —
    /// the shipping read-out a cluster primary uses for replication and
    /// shard-move catch-up. `Ba` slots serve a caught-up reader entirely
    /// from the pinned window over `BA_READ_DMA`; `Block` slots re-read
    /// the written region pages every poll.
    ///
    /// # Errors
    ///
    /// As for [`crate::WalTail::read_tail`].
    pub fn read_tail(
        &mut self,
        now: SimTime,
        slot: u16,
        from: Lsn,
    ) -> Result<CursorBatch, WalError> {
        let next = self.slot(slot)?.next_lsn;
        let (raw, t) = self.raw_records(now, slot)?;
        cursor::finish_tail(raw, from, next, t)
    }

    /// Serves a follower read of one record, priced on the slot's read
    /// path. `Ba` slots resolve window-resident records through the host's
    /// DRAM index and fetch exactly the record's bytes — MMIO loads below
    /// the paper's ~2 KiB crossover (Fig 7(a)), the `BA_READ_DMA` engine
    /// above it — with a block fallback for records that have rotated out.
    /// `Block` slots re-read the log region pages, queueing behind any
    /// in-flight program on the die.
    ///
    /// # Errors
    ///
    /// [`WalError::CursorLag`] if the record is not readable, plus device
    /// errors.
    pub fn read_record(
        &mut self,
        now: SimTime,
        slot: u16,
        lsn: Lsn,
    ) -> Result<(LogRecord, SimTime), WalError> {
        if self.cfg.mode == HostMode::Ba {
            let state = self.slot(slot)?.clone();
            if let Some(eid) = state.eid {
                let hit = state.index.iter().find(|&&(l, _, _)| l == lsn.0).copied();
                if let Some((_, offset, len)) = hit {
                    let read = match self.cfg.front_end {
                        // CXL line streaming beats the DMA engine's fixed
                        // setup far past any window size, so window-resident
                        // records always load directly.
                        RegionFrontEnd::Cxl => self.dev.cxl_load(now, eid, offset, len)?,
                        _ if len <= PcieTimings::MMIO_DMA_CROSSOVER_BYTES => {
                            self.dev.mmio_read(now, eid, offset, len)?
                        }
                        _ => self.dev.ba_read_dma(now, eid, offset, len)?,
                    };
                    if let Some(rec) = decode_stream(&read.data)
                        .records
                        .into_iter()
                        .find(|r| r.lsn == lsn)
                    {
                        return Ok((rec, read.complete_at));
                    }
                }
            }
        }
        let (raw, t) = self.raw_records(now, slot)?;
        raw.into_iter()
            .find(|r| r.lsn == lsn)
            .map(|rec| (rec, t))
            .ok_or(WalError::CursorLag {
                requested: lsn.0,
                oldest: 0,
            })
    }

    /// Power-cycles the node: capacitor-backed dump at `cut`, restore at
    /// `up`, pin-table reattach, and a parity proof. Returns how many
    /// windows survived (every live pin, when the dump energy suffices).
    ///
    /// # Errors
    ///
    /// Pin-table parity failures.
    pub fn power_cycle(&mut self, cut: SimTime, up: SimTime) -> Result<usize, WalError> {
        self.dev.power_loss(cut);
        self.dev.power_on(up);
        let survived = self.pins.reattach(&self.dev, up)?;
        self.pins.verify_device_parity(&self.dev)?;
        // Drop window state for slots whose pin did not survive.
        for state in self.slots.values_mut() {
            if let Some(eid) = state.eid {
                if self.pins.entry_info(eid).is_err() {
                    state.eid = None;
                    state.index.clear();
                }
            }
            state.ready_at = up;
        }
        Ok(survived)
    }

    /// Recovers `slot`'s full dense record prefix from LSN 0 — buffered
    /// window plus flushed/written region — as a crashed node's recovery
    /// manager would. A prefix that no longer starts at 0 (region
    /// wrap-around) is a loud [`WalError::CursorLag`].
    ///
    /// # Errors
    ///
    /// [`WalError::CursorLag`], [`WalError::CorruptTail`], device errors.
    pub fn recover_slot(&mut self, now: SimTime, slot: u16) -> Result<Vec<LogRecord>, WalError> {
        let (raw, t) = self.raw_records(now, slot)?;
        if raw.is_empty() {
            return Ok(Vec::new());
        }
        let batch = cursor::canonical_tail(raw, Lsn(0), t)?;
        Ok(batch.records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twob_sim::SimDuration;

    fn host(mode: HostMode) -> ShardWalHost {
        ShardWalHost::new(
            TwoBSsd::small_for_tests(),
            HostConfig {
                mode,
                ..HostConfig::default()
            },
        )
        .unwrap()
    }

    fn t0() -> SimTime {
        SimTime::from_nanos(1_000_000)
    }

    #[test]
    fn hosts_several_slots_with_independent_lsns() {
        let mut h = host(HostMode::Ba);
        let mut t = t0();
        for s in 0..3 {
            t = t.max(h.open_slot(t, s).unwrap());
        }
        for i in 0..5u64 {
            for s in 0..3u16 {
                let out = h.append(t, s, format!("s{s}-r{i}").as_bytes()).unwrap();
                assert_eq!(out.lsn.0, i);
                t = t.max(out.commit_at);
            }
        }
        for s in 0..3u16 {
            assert_eq!(h.next_lsn(s).unwrap(), Lsn(5));
            let tail = h.read_tail(t, s, Lsn(0)).unwrap();
            assert_eq!(tail.records.len(), 5);
            for (i, rec) in tail.records.iter().enumerate() {
                assert_eq!(rec.payload, format!("s{s}-r{i}").as_bytes());
            }
        }
    }

    #[test]
    fn ba_appends_commit_at_byte_path_latency() {
        let mut h = host(HostMode::Ba);
        let ready = h.open_slot(SimTime::ZERO, 0).unwrap();
        let out = h.append(ready, 0, &[7u8; 100]).unwrap();
        let us = out.commit_at.saturating_since(ready).as_micros_f64();
        assert!(us < 3.0, "BA commit took {us:.2} us");
    }

    #[test]
    fn block_appends_pay_the_block_path() {
        let mut h = host(HostMode::Block);
        let ready = h.open_slot(SimTime::ZERO, 0).unwrap();
        let out = h.append(ready, 0, &[7u8; 100]).unwrap();
        let us = out.commit_at.saturating_since(ready).as_micros_f64();
        assert!(us > 3.0, "block commit took only {us:.2} us");
        // And it is durable (cache flushed) + replayable from the medium.
        let recs = h.recover_slot(out.commit_at, 0).unwrap();
        assert_eq!(recs.len(), 1);
    }

    #[test]
    fn rotation_survives_and_streams_across_windows() {
        let mut h = host(HostMode::Ba);
        let mut t = h.open_slot(t0(), 0).unwrap();
        // ~1 KiB records fill the 8 KiB window quickly: several rotations.
        for i in 0..40u64 {
            t = h.append(t, 0, &[(i % 251) as u8; 1000]).unwrap().commit_at;
        }
        let tail = h.read_tail(t, 0, Lsn(0)).unwrap();
        // Region wrap may have overwritten the oldest windows; whatever is
        // left must be dense from 0 or a loud lag — with 8 region pages +
        // 2-page window, 40 KiB of records wraps: expect CursorLag.
        let all = match h.read_tail(t, 0, Lsn(0)) {
            Ok(batch) => batch.records,
            Err(WalError::CursorLag { oldest, .. }) => {
                h.read_tail(t, 0, Lsn(oldest)).unwrap().records
            }
            Err(e) => panic!("unexpected: {e}"),
        };
        assert!(!all.is_empty());
        for rec in &all {
            assert_eq!(rec.payload, vec![(rec.lsn.0 % 251) as u8; 1000]);
        }
        drop(tail);
    }

    #[test]
    fn append_record_requires_dense_lsns() {
        let mut h = host(HostMode::Ba);
        let t = h.open_slot(t0(), 0).unwrap();
        let r0 = LogRecord::new(Lsn(0), b"zero".to_vec());
        let r2 = LogRecord::new(Lsn(2), b"two".to_vec());
        h.append_record(t, 0, &r0).unwrap();
        assert_eq!(
            h.append_record(t, 0, &r2).unwrap_err(),
            WalError::OutOfOrder {
                expected: 1,
                got: 2
            }
        );
    }

    #[test]
    fn fence_seals_the_slot_at_the_handoff_lsn() {
        let mut h = host(HostMode::Ba);
        let mut t = h.open_slot(t0(), 0).unwrap();
        for i in 0..3u64 {
            t = h
                .append(t, 0, format!("r{i}").as_bytes())
                .unwrap()
                .commit_at;
        }
        // Fencing below the frontier is refused.
        assert!(matches!(h.fence(0, Lsn(2)), Err(WalError::BadConfig(_))));
        h.fence(0, Lsn(4)).unwrap();
        // One more append fits under the fence...
        t = h.append(t, 0, b"r3").unwrap().commit_at;
        // ...the next is provably rejected.
        assert_eq!(
            h.append(t, 0, b"r4").unwrap_err(),
            WalError::Fenced { fence: 4, got: 4 }
        );
        assert_eq!(h.fence_of(0), Some(Lsn(4)));
    }

    #[test]
    fn close_and_reopen_recycles_the_share() {
        let mut h = host(HostMode::Ba);
        let mut t = h.open_slot(t0(), 0).unwrap();
        t = h.append(t, 0, b"before close").unwrap().commit_at;
        t = h.close_slot(t, 0).unwrap();
        assert!(!h.is_open(0));
        // The flushed record is still on NAND even though the slot closed.
        t = h.open_slot(t, 0).unwrap();
        let tail = h.read_tail(t, 0, Lsn(0)).unwrap();
        assert_eq!(tail.records.len(), 1);
        assert_eq!(tail.records[0].payload, b"before close");
        // The reopened slot continues from what the region holds? No — a
        // reopened slot is a fresh log; the cluster's catch-up path decides
        // what to replay into it.
        assert_eq!(h.next_lsn(0).unwrap(), Lsn(0));
    }

    #[test]
    fn power_cycle_preserves_synced_records_per_slot() {
        let mut h = host(HostMode::Ba);
        let mut t = t0();
        for s in 0..2 {
            t = t.max(h.open_slot(t, s).unwrap());
        }
        for i in 0..6u64 {
            for s in 0..2u16 {
                t = h
                    .append(t, s, format!("s{s}-{i}").as_bytes())
                    .unwrap()
                    .commit_at;
            }
        }
        let up = t + SimDuration::from_millis(5);
        let survived = h.power_cycle(t, up).unwrap();
        assert_eq!(survived, 2, "both windows survive the dump");
        for s in 0..2u16 {
            let recs = h.recover_slot(up, s).unwrap();
            assert_eq!(recs.len(), 6, "slot {s} lost synced records");
            for (i, rec) in recs.iter().enumerate() {
                assert_eq!(rec.payload, format!("s{s}-{i}").as_bytes());
            }
        }
    }

    #[test]
    fn ba_reads_beat_block_reads_under_commit_traffic() {
        // At idle a single BA_READ_DMA (setup-dominated) is comparable to
        // one NAND page read. The byte path wins because a follower read
        // never queues behind the log's own NAND programs — so model
        // exactly that: read while an append's page rewrite + flush still
        // occupies the die holding the record.
        let mut ba = host(HostMode::Ba);
        let mut block = host(HostMode::Block);
        let mut ta = ba.open_slot(t0(), 0).unwrap();
        let mut tb = block.open_slot(t0(), 0).unwrap();
        for i in 0..7u64 {
            let payload = format!("record-{i}");
            ta = ba.append(ta, 0, payload.as_bytes()).unwrap().commit_at;
            tb = block.append(tb, 0, payload.as_bytes()).unwrap().commit_at;
        }
        let issue = ta.max(tb);
        ba.append(issue, 0, b"record-7").unwrap();
        block.append(issue, 0, b"record-7").unwrap();
        let (ra, da) = ba.read_record(issue, 0, Lsn(0)).unwrap();
        let (rb, db) = block.read_record(issue, 0, Lsn(0)).unwrap();
        assert_eq!(ra, rb);
        let ba_us = da.saturating_since(issue).as_micros_f64();
        let block_us = db.saturating_since(issue).as_micros_f64();
        assert!(
            ba_us < block_us,
            "BA_READ_DMA follower read ({ba_us:.2} us) should beat the \
             block re-read ({block_us:.2} us) while the log's tail page \
             is being rewritten"
        );
    }

    #[test]
    fn cxl_front_end_hosts_commit_faster_and_recover_identically() {
        // The same slot traffic through the CXL front-end: every append,
        // sync, and follower read takes the cache-line path, commits land
        // earlier than MMIO + BA_SYNC, and recovery sees identical bytes.
        let mut mmio = host(HostMode::Ba);
        let mut cxl = ShardWalHost::new(
            TwoBSsd::small_for_tests(),
            HostConfig {
                front_end: RegionFrontEnd::Cxl,
                ..HostConfig::default()
            },
        )
        .unwrap();
        let tm0 = mmio.open_slot(t0(), 0).unwrap();
        let tc0 = cxl.open_slot(t0(), 0).unwrap();
        let (mut tm, mut tc) = (tm0, tc0);
        for i in 0..6u64 {
            let payload = format!("rec-{i}");
            tm = mmio.append(tm, 0, payload.as_bytes()).unwrap().commit_at;
            tc = cxl.append(tc, 0, payload.as_bytes()).unwrap().commit_at;
        }
        assert!(
            tc.saturating_since(tc0) < tm.saturating_since(tm0),
            "CXL commit chain should finish before the MMIO chain"
        );
        let stats = cxl.device().stats();
        assert_eq!(stats.mmio_stores, 0, "no append leaked onto the WC path");
        assert_eq!(stats.cxl_stores, 6);
        assert_eq!(stats.cxl_persists, 6);
        let (rec, _) = cxl.read_record(tc, 0, Lsn(3)).unwrap();
        assert_eq!(rec.payload, b"rec-3");
        assert!(cxl.device().stats().cxl_loads > 0, "read skipped CXL path");
        let a = mmio.recover_slot(tm, 0).unwrap();
        let b = cxl.recover_slot(tc, 0).unwrap();
        assert_eq!(a, b, "front-ends must recover identical streams");
    }

    #[test]
    fn small_window_reads_take_the_mmio_fast_path() {
        // A follower read of a window-resident sub-2 KiB record goes
        // through the host's DRAM index and fetches just that record's
        // bytes over MMIO (Fig 7(a): MMIO beats the DMA engine below the
        // crossover) — never programming the DMA engine or touching NAND.
        let mut h = host(HostMode::Ba);
        let mut t = h.open_slot(t0(), 0).unwrap();
        for i in 0..4u64 {
            t = h
                .append(t, 0, format!("rec-{i}").as_bytes())
                .unwrap()
                .commit_at;
        }
        let before = h.device().stats();
        let (rec, done) = h.read_record(t, 0, Lsn(2)).unwrap();
        assert_eq!(rec.payload, b"rec-2");
        let after = h.device().stats();
        assert_eq!(
            after.dma_reads, before.dma_reads,
            "small read used the DMA engine"
        );
        assert_eq!(after.mmio_loads, before.mmio_loads + 1);
        let us = done.saturating_since(t).as_micros_f64();
        let dma_floor = h.device().spec().dma_latency(1).as_micros_f64();
        assert!(
            us < dma_floor,
            "MMIO fast path ({us:.2} us) should undercut even a 1-byte DMA ({dma_floor:.2} us)"
        );
    }

    #[test]
    fn bad_geometries_are_rejected() {
        let dev = TwoBSsd::small_for_tests;
        for cfg in [
            HostConfig {
                slots: 0,
                ..HostConfig::default()
            },
            HostConfig {
                window_pages: 3,
                region_pages: 8,
                ..HostConfig::default()
            },
            HostConfig {
                slots: 9, // > 8 mapping entries
                window_pages: 1,
                region_pages: 4,
                ..HostConfig::default()
            },
            HostConfig {
                window_pages: 8, // > 16/4-page share
                region_pages: 16,
                ..HostConfig::default()
            },
            HostConfig {
                region_base_lba: 1 << 40,
                ..HostConfig::default()
            },
        ] {
            assert!(
                matches!(ShardWalHost::new(dev(), cfg), Err(WalError::BadConfig(_))),
                "{cfg:?} accepted"
            );
        }
    }

    #[test]
    fn slot_misuse_errors_cleanly() {
        let mut h = host(HostMode::Ba);
        assert!(h.append(t0(), 0, b"x").is_err(), "append to closed slot");
        h.open_slot(t0(), 0).unwrap();
        assert!(h.open_slot(t0(), 0).is_err(), "double open");
        assert!(h.open_slot(t0(), 99).is_err(), "out of range");
        assert!(h.close_slot(t0(), 5).is_err(), "close never-opened");
    }
}
