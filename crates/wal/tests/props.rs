//! Property-based tests of the WAL record format and replay.

use proptest::prelude::*;
use twob_sim::SimTime;
use twob_ssd::{Ssd, SsdConfig};
use twob_wal::{decode_stream, BlockWal, CommitMode, LogRecord, Lsn, WalConfig, WalWriter};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Records round-trip byte-exactly for arbitrary payloads.
    #[test]
    fn record_roundtrip(lsn in any::<u64>(), payload in prop::collection::vec(any::<u8>(), 1..2048)) {
        let rec = LogRecord::new(Lsn(lsn), payload);
        let bytes = rec.encode();
        let (decoded, used) = LogRecord::decode(&bytes).expect("clean decode");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(decoded, rec);
    }

    /// decode_stream never panics on arbitrary garbage and always returns
    /// a torn offset within bounds.
    #[test]
    fn decode_stream_is_total(garbage in prop::collection::vec(any::<u8>(), 0..4096)) {
        let out = decode_stream(&garbage);
        prop_assert!(out.torn_at_byte <= garbage.len());
    }

    /// A stream of records followed by garbage decodes to exactly the
    /// records before the first corruption.
    #[test]
    fn decode_stream_returns_clean_prefix(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..64), 1..20),
        garbage in prop::collection::vec(any::<u8>(), 0..64)
    ) {
        let mut stream = Vec::new();
        for (i, p) in payloads.iter().enumerate() {
            stream.extend_from_slice(&LogRecord::new(Lsn(i as u64), p.clone()).encode());
        }
        let clean_len = stream.len();
        // Zero-length tail or garbage tail: either way the records decode.
        stream.extend_from_slice(&garbage);
        let out = decode_stream(&stream);
        prop_assert!(out.records.len() >= payloads.len()
            || out.torn_at_byte <= clean_len,
            "decoded {} of {} with torn at {} (clean {})",
            out.records.len(), payloads.len(), out.torn_at_byte, clean_len);
        // The decoded prefix matches the originals.
        for (i, rec) in out.records.iter().take(payloads.len()).enumerate() {
            prop_assert_eq!(&rec.payload, &payloads[i]);
        }
    }

    /// Arbitrary single-bit corruption inside a record's bytes makes that
    /// record (and everything after it) unreachable — never a wrong decode.
    #[test]
    fn bit_flips_never_decode_wrong(
        payload in prop::collection::vec(any::<u8>(), 1..128),
        byte_idx in any::<prop::sample::Index>(),
        bit in 0u8..8
    ) {
        let rec = LogRecord::new(Lsn(77), payload);
        let mut bytes = rec.encode();
        let i = byte_idx.index(bytes.len());
        bytes[i] ^= 1 << bit;
        match LogRecord::decode(&bytes) {
            None => {}
            Some((decoded, _)) => {
                // A flip confined to the length prefix may still decode a
                // *shorter, CRC-valid* record only if the CRC happens to
                // match — astronomically unlikely; treat as failure.
                prop_assert!(
                    decoded == rec,
                    "corruption decoded to a different record"
                );
            }
        }
    }

    /// Sync-committed records always survive device replay, whatever their
    /// sizes (including page-spanning ones).
    #[test]
    fn committed_records_replay(
        sizes in prop::collection::vec(1usize..6000, 1..12)
    ) {
        let cfg = WalConfig::default();
        let mut wal = BlockWal::new(
            Ssd::new(SsdConfig::ull_ssd().small()),
            cfg,
            CommitMode::Sync,
        ).expect("wal");
        let mut t = SimTime::ZERO;
        let mut payloads = Vec::new();
        for (i, size) in sizes.iter().enumerate() {
            let body = vec![(i % 251) as u8; *size];
            t = wal.append_commit(t, &body).expect("commit").commit_at;
            payloads.push(body);
        }
        let mut dev = wal.into_device();
        let out = twob_wal::replay(&mut dev, t, cfg.region_base_lba, cfg.region_pages)
            .expect("replay");
        prop_assert_eq!(out.records.len(), payloads.len());
        for (rec, expected) in out.records.iter().zip(&payloads) {
            prop_assert_eq!(&rec.payload, expected);
        }
    }
}
