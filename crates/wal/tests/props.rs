//! Property-based tests of the WAL record format and replay.

use proptest::prelude::*;
use twob_core::TwoBSsd;
use twob_sim::{SimDuration, SimTime};
use twob_ssd::{Ssd, SsdConfig};
use twob_wal::{
    decode_stream, BaWal, BlockWal, CommitMode, LogCursor, LogRecord, Lsn, WalConfig, WalTail,
    WalWriter,
};

/// One step of a cursor interleaving: append a record, poll the cursor, or
/// power-cycle the device mid-stream.
#[derive(Debug, Clone, Copy)]
enum CursorOp {
    Append,
    Poll,
    Crash,
}

fn cursor_ops() -> impl Strategy<Value = Vec<CursorOp>> {
    // Appends dominate so streams are long enough to rotate; crashes are
    // rare enough that runs usually continue past them.
    prop::collection::vec(0u8..12, 1..70).prop_map(|codes| {
        codes
            .into_iter()
            .map(|c| match c {
                0..=7 => CursorOp::Append,
                8..=9 => CursorOp::Poll,
                _ => CursorOp::Crash,
            })
            .collect()
    })
}

/// Deterministic payload for the `lsn`-th record: sized 64..1024 so a few
/// dozen appends cross rotation boundaries without wrapping the region.
fn payload_for(lsn: u64) -> Vec<u8> {
    let len = 64 + (lsn.wrapping_mul(37) % 960) as usize;
    vec![((lsn * 7 + 3) % 251) as u8; len]
}

/// Drives `ops` against `wal`, interleaving appends, cursor polls, and
/// power cycles, and checks the cursor yields exactly the acknowledged
/// record sequence — no gaps, no duplicates, across rotations and crashes.
fn check_cursor_yields_acked_sequence<W, C>(
    mut wal: W,
    ops: &[CursorOp],
    mut power_cycle: C,
) -> Result<(), TestCaseError>
where
    W: WalWriter + WalTail,
    C: FnMut(&mut W, SimTime) -> SimTime,
{
    let mut cursor = LogCursor::new();
    let mut t = SimTime::from_nanos(1_000_000);
    let mut appended = 0u64;
    let mut seen: Vec<LogRecord> = Vec::new();
    for op in ops {
        match op {
            CursorOp::Append => {
                let out = wal
                    .append_commit(t, &payload_for(appended))
                    .expect("append");
                prop_assert_eq!(out.lsn, Lsn(appended));
                appended += 1;
                t = out.commit_at;
            }
            CursorOp::Poll => {
                let batch = cursor.advance(&mut wal, t).expect("poll");
                t = t.max(batch.complete_at);
                seen.extend(batch.records);
            }
            CursorOp::Crash => {
                t = power_cycle(&mut wal, t);
            }
        }
    }
    let last = cursor.advance(&mut wal, t).expect("final poll");
    seen.extend(last.records);
    prop_assert_eq!(seen.len() as u64, appended, "cursor missed records");
    for (i, rec) in seen.iter().enumerate() {
        prop_assert_eq!(rec.lsn, Lsn(i as u64), "gap or duplicate at {}", i);
        prop_assert_eq!(&rec.payload, &payload_for(i as u64), "payload mismatch");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Records round-trip byte-exactly for arbitrary payloads.
    #[test]
    fn record_roundtrip(lsn in any::<u64>(), payload in prop::collection::vec(any::<u8>(), 1..2048)) {
        let rec = LogRecord::new(Lsn(lsn), payload);
        let bytes = rec.encode();
        let (decoded, used) = LogRecord::decode(&bytes).expect("clean decode");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(decoded, rec);
    }

    /// decode_stream never panics on arbitrary garbage and always returns
    /// a torn offset within bounds.
    #[test]
    fn decode_stream_is_total(garbage in prop::collection::vec(any::<u8>(), 0..4096)) {
        let out = decode_stream(&garbage);
        prop_assert!(out.torn_at_byte <= garbage.len());
    }

    /// A stream of records followed by garbage decodes to exactly the
    /// records before the first corruption.
    #[test]
    fn decode_stream_returns_clean_prefix(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..64), 1..20),
        garbage in prop::collection::vec(any::<u8>(), 0..64)
    ) {
        let mut stream = Vec::new();
        for (i, p) in payloads.iter().enumerate() {
            stream.extend_from_slice(&LogRecord::new(Lsn(i as u64), p.clone()).encode());
        }
        let clean_len = stream.len();
        // Zero-length tail or garbage tail: either way the records decode.
        stream.extend_from_slice(&garbage);
        let out = decode_stream(&stream);
        prop_assert!(out.records.len() >= payloads.len()
            || out.torn_at_byte <= clean_len,
            "decoded {} of {} with torn at {} (clean {})",
            out.records.len(), payloads.len(), out.torn_at_byte, clean_len);
        // The decoded prefix matches the originals.
        for (i, rec) in out.records.iter().take(payloads.len()).enumerate() {
            prop_assert_eq!(&rec.payload, &payloads[i]);
        }
    }

    /// Arbitrary single-bit corruption inside a record's bytes makes that
    /// record (and everything after it) unreachable — never a wrong decode.
    #[test]
    fn bit_flips_never_decode_wrong(
        payload in prop::collection::vec(any::<u8>(), 1..128),
        byte_idx in any::<prop::sample::Index>(),
        bit in 0u8..8
    ) {
        let rec = LogRecord::new(Lsn(77), payload);
        let mut bytes = rec.encode();
        let i = byte_idx.index(bytes.len());
        bytes[i] ^= 1 << bit;
        match LogRecord::decode(&bytes) {
            None => {}
            Some((decoded, _)) => {
                // A flip confined to the length prefix may still decode a
                // *shorter, CRC-valid* record only if the CRC happens to
                // match — astronomically unlikely; treat as failure.
                prop_assert!(
                    decoded == rec,
                    "corruption decoded to a different record"
                );
            }
        }
    }

    /// Sync-committed records always survive device replay, whatever their
    /// sizes (including page-spanning ones).
    #[test]
    fn committed_records_replay(
        sizes in prop::collection::vec(1usize..6000, 1..12)
    ) {
        let cfg = WalConfig::default();
        let mut wal = BlockWal::new(
            Ssd::new(SsdConfig::ull_ssd().small()),
            cfg,
            CommitMode::Sync,
        ).expect("wal");
        let mut t = SimTime::ZERO;
        let mut payloads = Vec::new();
        for (i, size) in sizes.iter().enumerate() {
            let body = vec![(i % 251) as u8; *size];
            t = wal.append_commit(t, &body).expect("commit").commit_at;
            payloads.push(body);
        }
        let mut dev = wal.into_device();
        let out = twob_wal::replay(&mut dev, t, cfg.region_base_lba, cfg.region_pages)
            .expect("replay");
        prop_assert_eq!(out.records.len(), payloads.len());
        for (rec, expected) in out.records.iter().zip(&payloads) {
            prop_assert_eq!(&rec.payload, expected);
        }
    }

    /// For arbitrary append/rotate/crash interleavings over a BA-WAL, the
    /// cursor yields exactly the acknowledged record sequence: rotation
    /// moves records from the pinned window to NAND mid-stream, and power
    /// cycles dump/restore the window, without a gap or duplicate.
    #[test]
    fn ba_cursor_yields_exactly_the_acked_sequence(ops in cursor_ops()) {
        let wal = BaWal::new(TwoBSsd::small_for_tests(), WalConfig::default(), 4)
            .expect("ba wal");
        check_cursor_yields_acked_sequence(wal, &ops, |w: &mut BaWal, t| {
            let dump = w.device_mut().power_loss(t);
            assert!(dump.dumped, "healthy capacitors must dump");
            let back = t + SimDuration::from_millis(5);
            let restore = w.device_mut().power_on(back);
            assert!(restore.restored);
            back
        })?;
    }

    /// The same property over a sync block WAL: every acknowledged commit
    /// is on media, so crashes never cost the cursor a record.
    #[test]
    fn block_cursor_yields_exactly_the_acked_sequence(ops in cursor_ops()) {
        let wal = BlockWal::new(
            Ssd::new(SsdConfig::ull_ssd().small()),
            WalConfig::default(),
            CommitMode::Sync,
        ).expect("block wal");
        check_cursor_yields_acked_sequence(wal, &ops, |w: &mut BlockWal<Ssd>, t| {
            w.device_mut().power_loss(t);
            let back = t + SimDuration::from_millis(5);
            w.device_mut().power_on(back);
            back
        })?;
    }
}
