//! Property tests: arbitrary fault schedules against every engine × scheme
//! combination must never violate a recovery invariant.

use proptest::prelude::*;
use twob_faults::{plan_strategy, run_schedule, EngineKind, SchemeKind};

proptest! {
    #![proptest_config(ProptestConfig { cases: 12 })]

    #[test]
    fn random_schedules_hold_invariants_on_every_combo(plan in plan_strategy()) {
        for engine in EngineKind::ALL {
            for scheme in SchemeKind::ALL {
                let report = run_schedule(engine, scheme, &plan);
                prop_assert!(
                    report.passed(),
                    "{engine}/{scheme} seed={}: {:?}",
                    plan.seed,
                    report.violations
                );
                prop_assert_eq!(report.commits_issued, plan.commits);
                // Weak-capacitor BA runs detect the loss instead of
                // recovering; every other run recovers at least the
                // acknowledged-durable prefix.
                if !report.detected_loss {
                    prop_assert!(report.recovered_records >= report.required_durable);
                }
            }
        }
    }

    #[test]
    fn durable_sync_commits_always_required(plan in plan_strategy()) {
        let report = run_schedule(EngineKind::Rocks, SchemeKind::BlockSync, &plan);
        prop_assert!(report.passed(), "{:?}", report.violations);
        // Sync commits are durable at acknowledgement: all must be required.
        prop_assert_eq!(report.required_durable, plan.commits);
    }
}
