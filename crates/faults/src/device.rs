//! Fault-injecting wrappers: a flush-faulting block device and a shared WAL
//! handle that lets the harness reach the device behind a `Box<dyn WalWriter>`.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use twob_ftl::Lba;
use twob_sim::SimTime;
use twob_ssd::{BlockDevice, BlockRead, SsdError};
use twob_wal::{CommitOutcome, CursorBatch, Lsn, WalError, WalStats, WalTail, WalWriter};

use crate::plan::FlushFault;

#[derive(Debug, Default)]
struct FlushFaultState {
    queue: VecDeque<FlushFault>,
    flushes: u64,
    dropped: u64,
    duplicated: u64,
}

/// A shared handle onto the flush-fault queue of a [`FaultyLogDevice`].
///
/// The harness keeps one clone to arm faults mid-run while the device (and
/// the WAL that owns it) holds the other.
#[derive(Debug, Clone, Default)]
pub struct FlushFaults(Rc<RefCell<FlushFaultState>>);

impl FlushFaults {
    /// Creates an empty fault queue.
    pub fn new() -> Self {
        FlushFaults::default()
    }

    /// Arms `fault` for the next host-issued flush.
    pub fn arm(&self, fault: FlushFault) {
        self.0.borrow_mut().queue.push_back(fault);
    }

    /// Total flush commands the device received.
    pub fn flushes(&self) -> u64 {
        self.0.borrow().flushes
    }

    /// Flush completions fabricated without draining the cache.
    pub fn dropped(&self) -> u64 {
        self.0.borrow().dropped
    }

    /// Flush commands executed twice.
    pub fn duplicated(&self) -> u64 {
        self.0.borrow().duplicated
    }
}

/// A [`BlockDevice`] wrapper that injects faults into the flush path while
/// passing reads and writes through untouched.
///
/// A `Drop` fault acknowledges the flush immediately without forwarding it —
/// the lying-device failure mode. A `Duplicate` fault forwards the flush
/// twice. On a capacitor-backed cache both must be harmless (the cache never
/// loses data on power cuts), which is exactly the invariant the sweep
/// verifies; on a volatile cache a dropped flush makes the following power
/// cut tear off unflushed pages.
#[derive(Debug)]
pub struct FaultyLogDevice<D: BlockDevice> {
    inner: D,
    faults: FlushFaults,
}

impl<D: BlockDevice> FaultyLogDevice<D> {
    /// Wraps `inner`, returning the device and the harness-side fault handle.
    pub fn new(inner: D) -> (Self, FlushFaults) {
        let faults = FlushFaults::new();
        let dev = FaultyLogDevice {
            inner,
            faults: faults.clone(),
        };
        (dev, faults)
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// The wrapped device, mutably (for power cuts and recovery reads).
    pub fn inner_mut(&mut self) -> &mut D {
        &mut self.inner
    }
}

impl<D: BlockDevice> BlockDevice for FaultyLogDevice<D> {
    fn label(&self) -> &str {
        self.inner.label()
    }

    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn capacity_pages(&self) -> u64 {
        self.inner.capacity_pages()
    }

    fn read_pages(&mut self, now: SimTime, lba: Lba, pages: u32) -> Result<BlockRead, SsdError> {
        self.inner.read_pages(now, lba, pages)
    }

    fn write_pages(&mut self, now: SimTime, lba: Lba, data: &[u8]) -> Result<SimTime, SsdError> {
        self.inner.write_pages(now, lba, data)
    }

    fn flush(&mut self, now: SimTime) -> SimTime {
        let fault = {
            let mut st = self.faults.0.borrow_mut();
            st.flushes += 1;
            st.queue.pop_front()
        };
        match fault {
            Some(FlushFault::Drop) => {
                self.faults.0.borrow_mut().dropped += 1;
                now
            }
            Some(FlushFault::Duplicate) => {
                self.faults.0.borrow_mut().duplicated += 1;
                let first = self.inner.flush(now);
                self.inner.flush(first)
            }
            None => self.inner.flush(now),
        }
    }
}

/// A clonable WAL handle: the engine owns one clone as its `Box<dyn
/// WalWriter>`, the harness keeps the other to cut power on the underlying
/// device and drive recovery after the engine is dropped.
///
/// The whole stack is single-threaded virtual time, so `Rc<RefCell<_>>` is
/// sufficient; a borrow panic would indicate a genuine reentrancy bug.
#[derive(Debug)]
pub struct SharedWal<W: WalWriter>(Rc<RefCell<W>>);

impl<W: WalWriter> SharedWal<W> {
    /// Wraps a concrete WAL writer.
    pub fn new(wal: W) -> Self {
        SharedWal(Rc::new(RefCell::new(wal)))
    }

    /// Runs `f` with mutable access to the concrete writer (device access,
    /// recovery entry points).
    pub fn with<R>(&self, f: impl FnOnce(&mut W) -> R) -> R {
        f(&mut self.0.borrow_mut())
    }
}

impl<W: WalWriter> Clone for SharedWal<W> {
    fn clone(&self) -> Self {
        SharedWal(Rc::clone(&self.0))
    }
}

impl<W: WalWriter> WalWriter for SharedWal<W> {
    fn append_commit(&mut self, now: SimTime, payload: &[u8]) -> Result<CommitOutcome, WalError> {
        self.0.borrow_mut().append_commit(now, payload)
    }

    fn append_batch(
        &mut self,
        now: SimTime,
        payloads: &[Vec<u8>],
    ) -> Result<CommitOutcome, WalError> {
        self.0.borrow_mut().append_batch(now, payloads)
    }

    fn scheme(&self) -> String {
        self.0.borrow().scheme()
    }

    fn stats(&self) -> WalStats {
        self.0.borrow().stats()
    }
}

impl<W: WalWriter + WalTail> WalTail for SharedWal<W> {
    fn read_tail(&mut self, now: SimTime, from: Lsn) -> Result<CursorBatch, WalError> {
        self.0.borrow_mut().read_tail(now, from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twob_ssd::{Ssd, SsdConfig};
    use twob_wal::{BlockWal, CommitMode, WalConfig};

    fn small_dev() -> Ssd {
        Ssd::new(SsdConfig::dc_ssd().small())
    }

    #[test]
    fn dropped_flush_acks_without_forwarding() {
        let (mut dev, faults) = FaultyLogDevice::new(small_dev());
        faults.arm(FlushFault::Drop);
        let t = SimTime::from_nanos(10);
        // A dropped flush completes instantly — no device time elapses.
        assert_eq!(dev.flush(t), t);
        assert_eq!(faults.dropped(), 1);
        // The next flush is honest again.
        assert!(dev.flush(t) >= t);
        assert_eq!(faults.flushes(), 2);
    }

    #[test]
    fn duplicated_flush_forwards_twice() {
        let (mut dev, faults) = FaultyLogDevice::new(small_dev());
        faults.arm(FlushFault::Duplicate);
        let _ = dev.flush(SimTime::ZERO);
        assert_eq!(faults.duplicated(), 1);
        assert_eq!(faults.flushes(), 1);
    }

    #[test]
    fn shared_wal_reaches_device_behind_trait_object() {
        let (dev, _faults) = FaultyLogDevice::new(small_dev());
        let wal = BlockWal::new(dev, WalConfig::default(), CommitMode::Sync).unwrap();
        let shared = SharedWal::new(wal);
        let mut boxed: Box<dyn WalWriter> = Box::new(shared.clone());
        let out = boxed.append_commit(SimTime::ZERO, b"payload").unwrap();
        assert!(out.durable_at.is_some());
        // The harness-side clone still reaches the concrete device.
        let label = shared.with(|w| w.device_mut().label().to_string());
        assert!(!label.is_empty());
        assert_eq!(shared.stats().commits, 1);
    }
}
