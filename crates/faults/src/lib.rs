//! Deterministic fault injection and crash consistency for the 2B-SSD stack.
//!
//! The paper's durability story (§III-D) rests on three promises: the
//! capacitor-backed BA-buffer survives power loss, the mapping table
//! round-trips through the recovery dump, and every acknowledged commit —
//! block-WAL fsync, `BA_FLUSH`+`BA_SYNC`, or PM store — is recoverable.
//! This crate turns those promises into machine-checked invariants.
//!
//! A [`FaultPlan`] schedules faults at arbitrary [`twob_sim::SimTime`]
//! points: a power cut that loses in-flight PCIe writes and triggers the
//! capacitor dump (optionally with an injected energy-budget shortfall),
//! NAND transient read errors, and dropped or duplicated flush completions.
//! [`run_schedule`] drives one of the mini database engines through a
//! seeded workload, executes the plan, restarts the stack, and checks:
//!
//! - every acknowledged-durable commit is recovered;
//! - the recovered log is prefix-consistent (no holes before the torn
//!   tail);
//! - the FTL mapping table round-trips;
//! - the BA-buffer dump/restore is byte-identical;
//! - replaying the recovered records reproduces the exact state of a
//!   golden re-run.
//!
//! [`sweep`] scales this to hundreds of schedules across every engine ×
//! scheme combination, reproducible from a single `(count, seed)` pair —
//! also exposed as `twob faults sweep --cuts N --seed S` on the CLI.

#![warn(missing_docs)]

mod device;
mod harness;
mod plan;

pub use device::{FaultyLogDevice, FlushFaults, SharedWal};
pub use harness::{
    check_log_prefix, run_schedule, sweep, throwaway_wal, Engine, EngineKind, ScheduleReport,
    SchemeKind, SweepReport, Workload,
};
pub use plan::{ClusterFaultPlan, CutScope, FaultPlan, FlushFault, ReplFaultPlan, ShipFault};

use proptest::prelude::*;

/// A proptest strategy over random fault plans, for property tests that
/// throw arbitrary schedules at the harness:
///
/// ```rust
/// use proptest::prelude::*;
/// use twob_faults::{plan_strategy, run_schedule, EngineKind, SchemeKind};
///
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 2, ..ProptestConfig::default() })]
///     fn any_plan_passes(plan in plan_strategy()) {
///         let report = run_schedule(EngineKind::Redis, SchemeKind::Ba, &plan);
///         prop_assert!(report.passed(), "{:?}", report.violations);
///     }
/// }
/// any_plan_passes();
/// ```
pub fn plan_strategy() -> impl Strategy<Value = FaultPlan> {
    any::<u64>().prop_map(FaultPlan::random)
}
