//! The crash-consistency harness: run a workload, cut power at an arbitrary
//! virtual instant, restart the stack, and check the recovery invariants.

use std::collections::BTreeMap;
use std::fmt;

use twob_core::TwoBSpec;
use twob_core::TwoBSsd;
use twob_db::{DbError, EngineCosts, MiniPg, MiniRedis, MiniRocks, PgOp, TxnOutcome};
use twob_nand::{BitErrorModel, EccConfig};
use twob_sim::{SimDuration, SimRng, SimTime};
use twob_ssd::{ErrorInjection, Ssd, SsdConfig};
use twob_wal::{replay, BaWal, BlockWal, CommitMode, LogRecord, Lsn, WalConfig, WalWriter};

use crate::device::{FaultyLogDevice, FlushFaults, SharedWal};
use crate::plan::FaultPlan;

/// Which mini database engine a schedule drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// MiniPg: relational transactions over the XLOG.
    Pg,
    /// MiniRocks: an LSM memtable over the WAL.
    Rocks,
    /// MiniRedis: a dictionary over the AOF.
    Redis,
}

impl EngineKind {
    /// Every engine, in sweep order.
    pub const ALL: [EngineKind; 3] = [EngineKind::Pg, EngineKind::Rocks, EngineKind::Redis];
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineKind::Pg => write!(f, "minipg"),
            EngineKind::Rocks => write!(f, "minirocks"),
            EngineKind::Redis => write!(f, "miniredis"),
        }
    }
}

/// Which commit scheme backs the engine's WAL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// Conventional block WAL, synchronous commit (write + flush per commit).
    BlockSync,
    /// Conventional block WAL, asynchronous commit (risk window).
    BlockAsync,
    /// BA-WAL on the 2B-SSD byte path (`BA_SYNC` per commit).
    Ba,
}

impl SchemeKind {
    /// Every scheme, in sweep order.
    pub const ALL: [SchemeKind; 3] = [
        SchemeKind::BlockSync,
        SchemeKind::BlockAsync,
        SchemeKind::Ba,
    ];
}

impl fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemeKind::BlockSync => write!(f, "block-sync"),
            SchemeKind::BlockAsync => write!(f, "block-async"),
            SchemeKind::Ba => write!(f, "ba"),
        }
    }
}

/// The deterministic operation stream a schedule commits before the cut.
///
/// Every commit logs exactly one WAL record, so LSN *n* corresponds to
/// stream index *n* — the property the golden-replay check relies on.
#[derive(Debug, Clone)]
pub enum Workload {
    /// Key-value ops for MiniRocks / MiniRedis: `(key, Some(value))` is a
    /// put/set, `(key, None)` a delete.
    Kv(Vec<(Vec<u8>, Option<Vec<u8>>)>),
    /// Write-only transactions for MiniPg.
    Pg(Vec<Vec<PgOp>>),
}

impl Workload {
    /// Generates the op stream for `engine` under `plan`, deterministically
    /// from the plan's seed.
    pub fn generate(engine: EngineKind, plan: &FaultPlan) -> Workload {
        Workload::from_seed(engine, plan.seed, plan.commits)
    }

    /// Generates a `commits`-long op stream for `engine` directly from a
    /// seed — the form the replication layer uses, where the commit count
    /// comes from a replication plan rather than a [`FaultPlan`].
    pub fn from_seed(engine: EngineKind, seed: u64, commits: u64) -> Workload {
        let mut rng = SimRng::seed_from(seed ^ 0x0b5e_55ed_0b5e_55ed);
        match engine {
            EngineKind::Rocks | EngineKind::Redis => {
                let ops = (0..commits)
                    .map(|_| {
                        let key = format!("key-{:02}", rng.next_u64_below(20)).into_bytes();
                        let value = if rng.chance(0.2) {
                            None
                        } else {
                            let len = 8 + rng.next_u64_below(64) as usize;
                            let mut v = vec![0u8; len];
                            rng.fill_bytes(&mut v);
                            Some(v)
                        };
                        (key, value)
                    })
                    .collect();
                Workload::Kv(ops)
            }
            EngineKind::Pg => {
                let txns = (0..commits)
                    .map(|_| {
                        let n = 1 + rng.next_u64_below(3);
                        (0..n).map(|_| random_pg_op(&mut rng)).collect()
                    })
                    .collect();
                Workload::Pg(txns)
            }
        }
    }

    /// Number of commits in the stream.
    pub fn len(&self) -> usize {
        match self {
            Workload::Kv(ops) => ops.len(),
            Workload::Pg(txns) => txns.len(),
        }
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn random_pg_op(rng: &mut SimRng) -> PgOp {
    let id = rng.next_u64_below(12);
    let to = rng.next_u64_below(12);
    let mut data = vec![0u8; 4 + rng.next_u64_below(32) as usize];
    rng.fill_bytes(&mut data);
    match rng.next_u64_below(5) {
        0 => PgOp::InsertNode { id, data },
        1 => PgOp::UpdateNode { id, data },
        2 => PgOp::DeleteNode { id },
        3 => PgOp::AddLink { from: id, to, data },
        _ => PgOp::DeleteLink { from: id, to },
    }
}

/// An engine of any kind behind one interface, so drive/verify logic — and
/// the replication layer's primary/replica nodes — are written once.
pub enum Engine {
    /// A [`MiniPg`] instance.
    Pg(MiniPg),
    /// A [`MiniRocks`] instance.
    Rocks(MiniRocks),
    /// A [`MiniRedis`] instance.
    Redis(MiniRedis),
}

impl Engine {
    /// Creates an engine of `kind` logging through `wal`.
    pub fn build(kind: EngineKind, wal: Box<dyn WalWriter>) -> Engine {
        let costs = EngineCosts::default();
        match kind {
            EngineKind::Pg => Engine::Pg(MiniPg::new(wal, costs)),
            EngineKind::Rocks => Engine::Rocks(MiniRocks::new(wal, costs)),
            EngineKind::Redis => Engine::Redis(MiniRedis::new(wal, costs)),
        }
    }

    /// Issues commit `idx` of `workload` at `now`.
    ///
    /// # Errors
    ///
    /// Propagates the engine's [`DbError`] (WAL append failure, oversized
    /// record, ...) without issuing the commit.
    ///
    /// # Panics
    ///
    /// Panics if the workload kind does not match the engine kind.
    pub fn commit(
        &mut self,
        now: SimTime,
        workload: &Workload,
        idx: usize,
    ) -> Result<TxnOutcome, DbError> {
        match (self, workload) {
            (Engine::Pg(pg), Workload::Pg(txns)) => pg.run_txn(now, &txns[idx]),
            (Engine::Rocks(db), Workload::Kv(ops)) => match &ops[idx] {
                (key, Some(value)) => db.put(now, key.clone(), value.clone()),
                (key, None) => db.delete(now, key.clone()),
            },
            (Engine::Redis(db), Workload::Kv(ops)) => match &ops[idx] {
                (key, Some(value)) => db.set(now, key.clone(), value.clone()),
                (key, None) => db.del(now, key.clone()),
            },
            _ => unreachable!("workload kind always matches engine kind"),
        }
    }

    /// Replays recovered (or shipped) WAL records into this engine.
    ///
    /// # Errors
    ///
    /// [`DbError::CorruptRecord`] when a payload fails to decode.
    pub fn apply_records(&mut self, records: &[LogRecord]) -> Result<(), DbError> {
        match self {
            Engine::Pg(pg) => pg.apply_wal_records(records),
            Engine::Rocks(db) => db.apply_wal_records(records),
            Engine::Redis(db) => db.apply_wal_records(records),
        }
    }

    /// The engine's canonical order-independent state digest — byte-equal
    /// across two engines iff their live user-visible state is identical.
    pub fn state_digest(&self) -> u64 {
        match self {
            Engine::Pg(pg) => pg.state_digest(),
            Engine::Rocks(db) => db.state_digest(),
            Engine::Redis(db) => db.state_digest(),
        }
    }
}

/// One commit as the application observed it: what recovery must honour.
#[derive(Debug, Clone, Copy)]
struct IssuedCommit {
    lsn: Option<Lsn>,
    durable_at: Option<SimTime>,
}

/// The verdict on one fault schedule.
#[derive(Debug, Clone)]
pub struct ScheduleReport {
    /// Engine driven.
    pub engine: EngineKind,
    /// WAL scheme used.
    pub scheme: SchemeKind,
    /// The plan that was executed.
    pub plan: FaultPlan,
    /// Commits acknowledged before the cut.
    pub commits_issued: u64,
    /// Commits whose durability point preceded the cut (must recover).
    pub required_durable: u64,
    /// Log records recovered after restart.
    pub recovered_records: u64,
    /// `true` when the schedule intentionally broke the energy budget and
    /// the device *detected* the loss (the weak-capacitor invariant).
    pub detected_loss: bool,
    /// Invariant violations, empty on a clean pass.
    pub violations: Vec<String>,
}

impl ScheduleReport {
    fn new(engine: EngineKind, scheme: SchemeKind, plan: &FaultPlan) -> Self {
        ScheduleReport {
            engine,
            scheme,
            plan: plan.clone(),
            commits_issued: 0,
            required_durable: 0,
            recovered_records: 0,
            detected_loss: false,
            violations: Vec::new(),
        }
    }

    /// Whether every invariant held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

fn error_injection(plan: &FaultPlan) -> Option<ErrorInjection> {
    plan.nand_rber.map(|rber| ErrorInjection {
        ecc: EccConfig::default(),
        model: BitErrorModel {
            base_rber: rber,
            rber_per_pe_cycle: 0.0,
        },
        seed: plan.seed,
    })
}

/// Time given to the restart before recovery reads begin.
const RESTART_DELAY: SimDuration = SimDuration::from_millis(5);

/// Start instant: past the BA-WAL's initial pins.
const T0: SimTime = SimTime::from_nanos(1_000_000);

/// Runs one deterministic fault schedule end to end and checks every
/// recovery invariant. Never panics on invariant failure — failures come
/// back as [`ScheduleReport::violations`] so a sweep can aggregate them.
pub fn run_schedule(engine: EngineKind, scheme: SchemeKind, plan: &FaultPlan) -> ScheduleReport {
    let mut report = ScheduleReport::new(engine, scheme, plan);
    let workload = Workload::generate(engine, plan);
    let wal_cfg = WalConfig::default();

    match scheme {
        SchemeKind::BlockSync | SchemeKind::BlockAsync => {
            let mode = if scheme == SchemeKind::BlockSync {
                CommitMode::Sync
            } else {
                CommitMode::Async
            };
            let mut cfg = SsdConfig::dc_ssd().small();
            cfg.error_injection = error_injection(plan);
            let (dev, faults) = FaultyLogDevice::new(Ssd::new(cfg));
            let wal = match BlockWal::new(dev, wal_cfg, mode) {
                Ok(w) => w,
                Err(e) => {
                    report.violations.push(format!("wal setup failed: {e:?}"));
                    return report;
                }
            };
            let shared = SharedWal::new(wal);
            let mut eng = Engine::build(engine, Box::new(shared.clone()));
            let (issued, cut_at) = drive(&mut eng, &workload, plan, Some(&faults), &mut report);
            drop(eng);

            // Power cut, then restart.
            let recover_at = cut_at + RESTART_DELAY;
            shared.with(|w| {
                w.device_mut().inner_mut().power_loss(cut_at);
                w.device_mut().inner_mut().power_on(recover_at);
            });
            let recovered = match shared.with(|w| {
                replay(
                    w.device_mut(),
                    recover_at,
                    wal_cfg.region_base_lba,
                    wal_cfg.region_pages,
                )
            }) {
                Ok(outcome) => outcome.records,
                Err(e) => {
                    report.violations.push(format!("replay failed: {e:?}"));
                    return report;
                }
            };
            verify(&mut report, engine, &workload, &issued, cut_at, recovered);
        }
        SchemeKind::Ba => {
            let mut cfg = SsdConfig::base_2b().small();
            cfg.error_injection = error_injection(plan);
            let mut spec = TwoBSpec::small_for_tests();
            if plan.weak_capacitors {
                // Undersize the bank so the dump's energy gate fails.
                spec.capacitors_uf = 0.5;
            }
            let wal = match BaWal::new(TwoBSsd::new(cfg, spec), wal_cfg, 4) {
                Ok(w) => w,
                Err(e) => {
                    report.violations.push(format!("wal setup failed: {e:?}"));
                    return report;
                }
            };
            let shared = SharedWal::new(wal);
            let mut eng = Engine::build(engine, Box::new(shared.clone()));
            let (issued, cut_at) = drive(&mut eng, &workload, plan, None, &mut report);
            drop(eng);

            // Pre-cut device state: mapping entries and the bytes they map.
            let pre_entries = shared.with(|w| w.device_mut().entries());
            let pre_images: Result<Vec<Vec<u8>>, _> = shared.with(|w| {
                pre_entries
                    .iter()
                    .map(|e| {
                        w.device_mut()
                            .mmio_read(cut_at, e.eid, 0, e.len_bytes())
                            .map(|r| r.data)
                    })
                    .collect()
            });
            let pre_images = match pre_images {
                Ok(images) => images,
                Err(e) => {
                    report
                        .violations
                        .push(format!("pre-cut mmio_read failed: {e:?}"));
                    return report;
                }
            };

            // Power cut: capacitor dump, then restart: restore.
            let recover_at = cut_at + RESTART_DELAY;
            let dump = shared.with(|w| w.device_mut().power_loss(cut_at));
            let restore = shared.with(|w| w.device_mut().power_on(recover_at));
            let stats = shared.with(|w| w.device_mut().stats());

            if plan.weak_capacitors {
                // The loss must be *detected*, never silent.
                report.detected_loss = true;
                if dump.dumped {
                    report
                        .violations
                        .push("weak-capacitor dump unexpectedly succeeded".into());
                }
                if dump.reason.is_none() {
                    report
                        .violations
                        .push("abandoned dump carries no reason".into());
                }
                if restore.restored {
                    report
                        .violations
                        .push("restore claimed success after an abandoned dump".into());
                }
                if stats.data_loss_events == 0 {
                    report
                        .violations
                        .push("data loss not counted in device stats".into());
                }
                return report;
            }

            if !dump.dumped {
                report
                    .violations
                    .push(format!("capacitor dump failed: {:?}", dump.reason));
                return report;
            }
            if !restore.restored {
                report.violations.push("restore found no valid dump".into());
                return report;
            }

            // FTL mapping table round-trips through the dump.
            let post_entries = shared.with(|w| w.device_mut().entries());
            if post_entries != pre_entries {
                report.violations.push(format!(
                    "mapping table did not round-trip: {} entries before, {} after",
                    pre_entries.len(),
                    post_entries.len()
                ));
            }
            // BA-buffer dump/restore is byte-identical.
            for (entry, pre) in pre_entries.iter().zip(&pre_images) {
                match shared.with(|w| {
                    w.device_mut()
                        .mmio_read(recover_at, entry.eid, 0, entry.len_bytes())
                }) {
                    Ok(read) => {
                        if read.data != *pre {
                            report.violations.push(format!(
                                "BA-buffer bytes for {:?} differ after restore",
                                entry.eid
                            ));
                        }
                    }
                    Err(e) => report
                        .violations
                        .push(format!("post-restore mmio_read failed: {e:?}")),
                }
            }
            if let Err(e) = shared.with(|w| w.device_mut().check_invariants()) {
                report
                    .violations
                    .push(format!("device invariants violated: {e}"));
            }

            // Recovered records: the buffered tail plus flushed segments.
            let buffered = match shared.with(|w| w.recover_buffered(recover_at)) {
                Ok(records) => records,
                Err(e) => {
                    report
                        .violations
                        .push(format!("recover_buffered failed: {e:?}"));
                    return report;
                }
            };
            let flushed = match shared.with(|w| {
                replay(
                    w.device_mut(),
                    recover_at,
                    wal_cfg.region_base_lba,
                    wal_cfg.region_pages,
                )
            }) {
                Ok(outcome) => outcome.records,
                Err(e) => {
                    report.violations.push(format!("replay failed: {e:?}"));
                    return report;
                }
            };
            let mut recovered = flushed;
            recovered.extend(buffered);
            verify(&mut report, engine, &workload, &issued, cut_at, recovered);
        }
    }
    report
}

/// Drives the workload through the engine, arming flush faults as the plan
/// dictates, and returns the acknowledged commits plus the cut instant.
fn drive(
    eng: &mut Engine,
    workload: &Workload,
    plan: &FaultPlan,
    faults: Option<&FlushFaults>,
    report: &mut ScheduleReport,
) -> (Vec<IssuedCommit>, SimTime) {
    let mut rng = SimRng::seed_from(plan.seed ^ 0xd1ce_d1ce_d1ce_d1ce);
    let mut issued = Vec::with_capacity(workload.len());
    let mut t = T0;
    for idx in 0..workload.len() {
        if let Some(faults) = faults {
            for (at, fault) in &plan.flush_faults {
                if *at == idx as u64 {
                    faults.arm(*fault);
                }
            }
        }
        match eng.commit(t, workload, idx) {
            Ok(outcome) => {
                issued.push(IssuedCommit {
                    lsn: outcome.lsn,
                    durable_at: outcome.durable_at,
                });
                t = outcome.commit_at + SimDuration::from_nanos(rng.next_u64_below(400));
            }
            Err(e) => {
                report
                    .violations
                    .push(format!("commit {idx} failed before any fault: {e:?}"));
            }
        }
    }
    report.commits_issued = issued.len() as u64;
    (issued, t + SimDuration::from_nanos(plan.cut_delay_ns))
}

/// Checks that a set of recovered records forms a consistent log prefix and
/// returns it in canonical (LSN-sorted, deduplicated) order.
///
/// The rules, shared by the sweep harness and the torn-tail replay tests:
///
/// - Duplicate LSNs are tolerated (a record can be recovered both from a
///   NAND segment and from the restored BA-buffer) but must carry
///   byte-identical payloads.
/// - After deduplication the LSNs must be dense from 0: a torn tail may
///   truncate the log, but never punch a hole in the middle of it.
pub fn check_log_prefix(recovered: &[LogRecord]) -> Result<Vec<LogRecord>, String> {
    let mut by_lsn: BTreeMap<u64, &[u8]> = BTreeMap::new();
    for rec in recovered {
        if let Some(existing) = by_lsn.get(&rec.lsn.0) {
            if *existing != rec.payload.as_slice() {
                return Err(format!("two different payloads recovered for {}", rec.lsn));
            }
        } else {
            by_lsn.insert(rec.lsn.0, &rec.payload);
        }
    }
    for (expect, have) in by_lsn.keys().enumerate() {
        if expect as u64 != *have {
            return Err(format!(
                "hole in recovered log: expected lsn:{expect}, found lsn:{have}"
            ));
        }
    }
    Ok(by_lsn
        .into_iter()
        .map(|(lsn, payload)| LogRecord::new(Lsn(lsn), payload.to_vec()))
        .collect())
}

/// The post-recovery invariant checks shared by every scheme:
///
/// 1. The recovered log is prefix-consistent: LSNs dense from 0, no holes
///    before the torn tail, duplicates byte-identical.
/// 2. Every commit acknowledged as durable before the cut is recovered.
/// 3. Replaying the recovered records reproduces exactly the state of
///    re-running the same op-stream prefix on a fresh engine.
fn verify(
    report: &mut ScheduleReport,
    engine: EngineKind,
    workload: &Workload,
    issued: &[IssuedCommit],
    cut_at: SimTime,
    recovered: Vec<LogRecord>,
) {
    // 1. Prefix consistency.
    let records = match check_log_prefix(&recovered) {
        Ok(records) => records,
        Err(e) => {
            report.violations.push(e);
            return;
        }
    };
    report.recovered_records = records.len() as u64;
    let by_lsn: BTreeMap<u64, Vec<u8>> =
        records.into_iter().map(|r| (r.lsn.0, r.payload)).collect();

    // 2. Acknowledged durability is honoured.
    let mut required = 0u64;
    for (idx, commit) in issued.iter().enumerate() {
        let (Some(lsn), Some(durable_at)) = (commit.lsn, commit.durable_at) else {
            continue;
        };
        if durable_at > cut_at {
            continue; // Acknowledged after the cut: legitimately at risk.
        }
        required += 1;
        if !by_lsn.contains_key(&lsn.0) {
            report.violations.push(format!(
                "commit {idx} ({lsn}, durable {}ns before the cut) was lost",
                cut_at.saturating_since(durable_at)
            ));
        }
    }
    report.required_durable = required;
    if !report.violations.is_empty() {
        return;
    }

    // 3. Replayed state matches a golden re-run of the same prefix.
    let records: Vec<LogRecord> = by_lsn
        .into_iter()
        .map(|(lsn, payload)| LogRecord::new(Lsn(lsn), payload))
        .collect();
    let prefix = records.len();
    let mut rebuilt = Engine::build(engine, throwaway_wal());
    if let Err(e) = rebuilt.apply_records(&records) {
        report
            .violations
            .push(format!("recovered records failed to apply: {e:?}"));
        return;
    }
    let mut golden = Engine::build(engine, throwaway_wal());
    let mut t = T0;
    for idx in 0..prefix {
        match golden.commit(t, workload, idx) {
            Ok(outcome) => t = outcome.commit_at,
            Err(e) => {
                report
                    .violations
                    .push(format!("golden re-run failed at commit {idx}: {e:?}"));
                return;
            }
        }
    }
    if rebuilt.state_digest() != golden.state_digest() {
        report.violations.push(format!(
            "recovered state digest {:#018x} diverges from a golden re-run \
             of {prefix} commits ({:#018x})",
            rebuilt.state_digest(),
            golden.state_digest()
        ));
    }
}

/// A WAL for engines whose log is never read back (golden re-runs): a plain
/// block WAL over a fresh in-memory device.
pub fn throwaway_wal() -> Box<dyn WalWriter> {
    let wal = BlockWal::new(
        Ssd::new(SsdConfig::ull_ssd().small()),
        WalConfig::default(),
        CommitMode::Async,
    )
    .expect("default WAL config is valid");
    Box::new(wal)
}

/// Aggregate outcome of a fault sweep.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Schedules executed.
    pub schedules: u64,
    /// Base seed the sweep derives per-schedule seeds from.
    pub seed: u64,
    /// Commits acknowledged across all schedules.
    pub commits: u64,
    /// Log records recovered across all schedules.
    pub recovered: u64,
    /// Schedules that injected an energy-budget shortfall and saw it
    /// detected.
    pub detected_losses: u64,
    /// `(engine, scheme, schedule seed, detail)` for every violation.
    pub violations: Vec<(EngineKind, SchemeKind, u64, String)>,
}

impl SweepReport {
    /// Whether the whole sweep passed.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for SweepReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fault sweep: {} schedules (seed {}) over {} engines x {} schemes",
            self.schedules,
            self.seed,
            EngineKind::ALL.len(),
            SchemeKind::ALL.len()
        )?;
        writeln!(
            f,
            "  commits acknowledged: {}  records recovered: {}  detected losses: {}",
            self.commits, self.recovered, self.detected_losses
        )?;
        if self.violations.is_empty() {
            write!(f, "  invariant violations: 0")
        } else {
            writeln!(f, "  invariant violations: {}", self.violations.len())?;
            for (engine, scheme, seed, detail) in &self.violations {
                writeln!(f, "    [{engine}/{scheme} seed={seed}] {detail}")?;
            }
            Ok(())
        }
    }
}

/// Runs `schedules` deterministic fault schedules, cycling through every
/// engine × scheme combination, with per-schedule plans derived from `seed`.
///
/// The same `(schedules, seed)` pair always produces the same report.
pub fn sweep(schedules: u64, seed: u64) -> SweepReport {
    let mut report = SweepReport {
        schedules,
        seed,
        commits: 0,
        recovered: 0,
        detected_losses: 0,
        violations: Vec::new(),
    };
    let combos: Vec<(EngineKind, SchemeKind)> = EngineKind::ALL
        .iter()
        .flat_map(|&e| SchemeKind::ALL.iter().map(move |&s| (e, s)))
        .collect();
    for i in 0..schedules {
        let (engine, scheme) = combos[(i % combos.len() as u64) as usize];
        let plan_seed = seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(i.wrapping_mul(0x2545_f491_4f6c_dd1d));
        let plan = FaultPlan::random(plan_seed);
        let run = run_schedule(engine, scheme, &plan);
        report.commits += run.commits_issued;
        report.recovered += run.recovered_records;
        if run.detected_loss && run.passed() {
            report.detected_losses += 1;
        }
        for v in run.violations {
            report.violations.push((engine, scheme, plan_seed, v));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_combo_survives_one_schedule() {
        let plan = FaultPlan::random(11);
        for engine in EngineKind::ALL {
            for scheme in SchemeKind::ALL {
                let report = run_schedule(engine, scheme, &plan);
                assert!(
                    report.passed(),
                    "{engine}/{scheme}: {:?}",
                    report.violations
                );
                assert_eq!(report.commits_issued, plan.commits);
                assert!(report.recovered_records >= report.required_durable);
            }
        }
    }

    #[test]
    fn sync_and_ba_schedules_recover_every_commit() {
        // Sync and BA commits are durable at acknowledgement, so every
        // acknowledged commit must be required *and* recovered.
        let plan = FaultPlan {
            weak_capacitors: false,
            ..FaultPlan::random(23)
        };
        for scheme in [SchemeKind::BlockSync, SchemeKind::Ba] {
            let report = run_schedule(EngineKind::Rocks, scheme, &plan);
            assert!(report.passed(), "{scheme}: {:?}", report.violations);
            assert_eq!(report.required_durable, plan.commits);
        }
    }

    #[test]
    fn weak_capacitors_are_detected_not_silent() {
        let plan = FaultPlan {
            weak_capacitors: true,
            ..FaultPlan::random(5)
        };
        let report = run_schedule(EngineKind::Redis, SchemeKind::Ba, &plan);
        assert!(report.detected_loss);
        assert!(report.passed(), "{:?}", report.violations);
    }

    #[test]
    fn schedules_are_deterministic() {
        let plan = FaultPlan::random(77);
        let a = run_schedule(EngineKind::Pg, SchemeKind::BlockAsync, &plan);
        let b = run_schedule(EngineKind::Pg, SchemeKind::BlockAsync, &plan);
        assert_eq!(a.commits_issued, b.commits_issued);
        assert_eq!(a.required_durable, b.required_durable);
        assert_eq!(a.recovered_records, b.recovered_records);
        assert_eq!(a.violations, b.violations);
    }

    #[test]
    fn small_sweep_is_clean_and_deterministic() {
        let a = sweep(18, 3);
        assert!(a.passed(), "{a}");
        assert_eq!(a.schedules, 18);
        let b = sweep(18, 3);
        assert_eq!(a.commits, b.commits);
        assert_eq!(a.recovered, b.recovered);
        assert_eq!(a.detected_losses, b.detected_losses);
    }
}
