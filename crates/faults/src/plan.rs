//! Deterministic fault schedules.

use twob_sim::SimRng;

/// A fault injected into the log device's flush path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushFault {
    /// The flush completion is fabricated without draining the cache: the
    /// host believes the flush happened, the device never performed it.
    Drop,
    /// The flush completion is delivered twice: the device drains its cache
    /// twice for one host command.
    Duplicate,
}

/// One deterministic fault schedule: a bounded workload, flush-path faults
/// at chosen commit indices, and a single power cut at an arbitrary virtual
/// instant after the last acknowledged commit.
///
/// Plans are value types: the same plan always produces the same virtual
/// execution, byte for byte, so every sweep failure is replayable from
/// `(engine, scheme, seed)` alone.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for both plan-derived randomness and the workload stream.
    pub seed: u64,
    /// Commits the workload issues before the power cut.
    pub commits: u64,
    /// Nanoseconds past the last commit's acknowledgement at which power
    /// dies — the cut lands at an arbitrary `SimTime`, not on a commit
    /// boundary.
    pub cut_delay_ns: u64,
    /// `(after_commit_index, fault)` pairs injected into the log device's
    /// flush path, in commit order. Only block schemes have a host-visible
    /// flush command; BA-WAL schedules ignore these.
    pub flush_faults: Vec<(u64, FlushFault)>,
    /// Undersize the capacitor bank so the power-loss dump's energy budget
    /// fails (BA scheme only). The invariant then flips from "all synced
    /// data survives" to "the loss is detected loudly, never silent".
    pub weak_capacitors: bool,
    /// Raw bit-error rate injected into the NAND medium (within the
    /// controller's ECC budget), or `None` for a perfect medium.
    pub nand_rber: Option<f64>,
}

impl FaultPlan {
    /// Derives a random-but-deterministic plan from `seed`.
    pub fn random(seed: u64) -> Self {
        let mut rng = SimRng::seed_from(seed ^ 0xFA01_7FA0_17FA_017F);
        let commits = 8 + rng.next_u64_below(33);
        let n_flush = rng.next_u64_below(4);
        let mut flush_faults: Vec<(u64, FlushFault)> = (0..n_flush)
            .map(|_| {
                let at = rng.next_u64_below(commits);
                let kind = if rng.chance(0.5) {
                    FlushFault::Drop
                } else {
                    FlushFault::Duplicate
                };
                (at, kind)
            })
            .collect();
        flush_faults.sort_by_key(|(at, _)| *at);
        let weak_capacitors = rng.chance(0.12);
        let nand_rber = if rng.chance(0.3) {
            Some(1e-6 * (1.0 + rng.next_u64_below(9) as f64))
        } else {
            None
        };
        FaultPlan {
            seed,
            commits,
            cut_delay_ns: rng.next_u64_below(3_000),
            flush_faults,
            weak_capacitors,
            nand_rber,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic() {
        assert_eq!(FaultPlan::random(42), FaultPlan::random(42));
        assert_ne!(FaultPlan::random(1), FaultPlan::random(2));
    }

    #[test]
    fn plans_are_bounded() {
        for seed in 0..200 {
            let p = FaultPlan::random(seed);
            assert!((8..=40).contains(&p.commits));
            assert!(p.cut_delay_ns < 3_000);
            assert!(p.flush_faults.len() < 4);
            for (at, _) in &p.flush_faults {
                assert!(*at < p.commits);
            }
            if let Some(rber) = p.nand_rber {
                assert!(rber <= 1e-5, "rber {rber} would exceed the ECC budget");
            }
        }
    }
}
