//! Deterministic fault schedules.

use twob_sim::SimRng;

/// A fault injected into the log device's flush path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushFault {
    /// The flush completion is fabricated without draining the cache: the
    /// host believes the flush happened, the device never performed it.
    Drop,
    /// The flush completion is delivered twice: the device drains its cache
    /// twice for one host command.
    Duplicate,
}

/// One deterministic fault schedule: a bounded workload, flush-path faults
/// at chosen commit indices, and a single power cut at an arbitrary virtual
/// instant after the last acknowledged commit.
///
/// Plans are value types: the same plan always produces the same virtual
/// execution, byte for byte, so every sweep failure is replayable from
/// `(engine, scheme, seed)` alone.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for both plan-derived randomness and the workload stream.
    pub seed: u64,
    /// Commits the workload issues before the power cut.
    pub commits: u64,
    /// Nanoseconds past the last commit's acknowledgement at which power
    /// dies — the cut lands at an arbitrary `SimTime`, not on a commit
    /// boundary.
    pub cut_delay_ns: u64,
    /// `(after_commit_index, fault)` pairs injected into the log device's
    /// flush path, in commit order. Only block schemes have a host-visible
    /// flush command; BA-WAL schedules ignore these.
    pub flush_faults: Vec<(u64, FlushFault)>,
    /// Undersize the capacitor bank so the power-loss dump's energy budget
    /// fails (BA scheme only). The invariant then flips from "all synced
    /// data survives" to "the loss is detected loudly, never silent".
    pub weak_capacitors: bool,
    /// Raw bit-error rate injected into the NAND medium (within the
    /// controller's ECC budget), or `None` for a perfect medium.
    pub nand_rber: Option<f64>,
}

impl FaultPlan {
    /// Derives a random-but-deterministic plan from `seed`.
    pub fn random(seed: u64) -> Self {
        let mut rng = SimRng::seed_from(seed ^ 0xFA01_7FA0_17FA_017F);
        let commits = 8 + rng.next_u64_below(33);
        let n_flush = rng.next_u64_below(4);
        let mut flush_faults: Vec<(u64, FlushFault)> = (0..n_flush)
            .map(|_| {
                let at = rng.next_u64_below(commits);
                let kind = if rng.chance(0.5) {
                    FlushFault::Drop
                } else {
                    FlushFault::Duplicate
                };
                (at, kind)
            })
            .collect();
        flush_faults.sort_by_key(|(at, _)| *at);
        let weak_capacitors = rng.chance(0.12);
        let nand_rber = if rng.chance(0.3) {
            Some(1e-6 * (1.0 + rng.next_u64_below(9) as f64))
        } else {
            None
        };
        FaultPlan {
            seed,
            commits,
            cut_delay_ns: rng.next_u64_below(3_000),
            flush_faults,
            weak_capacitors,
            nand_rber,
        }
    }
}

/// A fault injected into one shipped WAL batch on the replication network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShipFault {
    /// The batch is silently dropped on the wire; the cumulative re-ship
    /// protocol must recover it on a later send or retransmit tick.
    Drop,
    /// The batch is delivered twice; the replica's LSN dedup must make the
    /// second arrival a no-op.
    Duplicate,
    /// The batch is delayed by this many extra nanoseconds, reordering it
    /// behind later sends.
    Delay(u64),
}

/// One deterministic replication fault schedule: a bounded commit stream, a
/// primary power cut landing mid-protocol, replicas partitioned away before
/// the cut, and per-send network faults on shipped WAL batches.
///
/// Invariant by construction: `partitioned.len() <= quorum - 1` (the
/// guarantee's "≤ k−1 simultaneous failures" budget — the primary's own
/// crash is the k-th), and enough replicas stay connected that
/// `SemiSync(quorum)` keeps making progress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplFaultPlan {
    /// Seed for both plan-derived randomness and the workload stream.
    pub seed: u64,
    /// Replica count (excluding the primary).
    pub replicas: usize,
    /// The `k` of `SemiSync(k)`: acks required before the client sees the
    /// commit.
    pub quorum: usize,
    /// Commits the client issues before the power cut.
    pub commits: u64,
    /// The primary's power dies this many nanoseconds after commit
    /// `commits - 1` is *issued* — typically mid-ship, with batches on the
    /// wire and acks outstanding.
    pub cut_delay_ns: u64,
    /// `(replica, after_commit_index)`: the replica's link dies in both
    /// directions once the client issues that commit index.
    pub partitioned: Vec<(usize, u64)>,
    /// `(commit_index, replica, fault)`: applied to the ship batch sent to
    /// `replica` when commit `commit_index` triggers it.
    pub ship_faults: Vec<(u64, usize, ShipFault)>,
}

impl ReplFaultPlan {
    /// Derives a random-but-deterministic replication plan from `seed`.
    ///
    /// Replica count, quorum, partition set, and ship faults are all drawn
    /// from the seed, always respecting the `≤ k−1` failure budget.
    pub fn random(seed: u64) -> Self {
        let mut rng =
            SimRng::seed_from(seed ^ 0x0005_e7fa_u64.rotate_left(17) ^ 0x2B2B_2B2B_2B2B_2B2B);
        let replicas = 2 + rng.next_u64_below(3) as usize; // 2..=4
        let quorum = 1 + rng.next_u64_below(replicas as u64) as usize; // 1..=replicas
        let commits = 6 + rng.next_u64_below(15);
        // Partition budget: stay within k−1 failures *and* leave at least
        // `quorum` connected replicas so the protocol keeps releasing.
        let budget = (quorum - 1).min(replicas - quorum);
        let n_part = if budget == 0 {
            0
        } else {
            rng.next_u64_below(budget as u64 + 1) as usize
        };
        let mut pool: Vec<usize> = (0..replicas).collect();
        let mut partitioned = Vec::with_capacity(n_part);
        for _ in 0..n_part {
            let pick = rng.next_u64_below(pool.len() as u64) as usize;
            let replica = pool.swap_remove(pick);
            partitioned.push((replica, rng.next_u64_below(commits)));
        }
        partitioned.sort_unstable();
        let n_ship = rng.next_u64_below(5);
        let mut ship_faults: Vec<(u64, usize, ShipFault)> = (0..n_ship)
            .map(|_| {
                let at = rng.next_u64_below(commits);
                let replica = rng.next_u64_below(replicas as u64) as usize;
                let fault = match rng.next_u64_below(3) {
                    0 => ShipFault::Drop,
                    1 => ShipFault::Duplicate,
                    _ => ShipFault::Delay(1_000 + rng.next_u64_below(200_000)),
                };
                (at, replica, fault)
            })
            .collect();
        ship_faults.sort_unstable_by_key(|&(at, replica, _)| (at, replica));
        ReplFaultPlan {
            seed,
            replicas,
            quorum,
            commits,
            cut_delay_ns: rng.next_u64_below(120_000),
            partitioned,
            ship_faults,
        }
    }
}

/// The failure domain a cluster-level power cut takes out at once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CutScope {
    /// One node loses power.
    Node,
    /// Every node in one rack loses power (correlated PDU failure).
    Rack,
    /// Every node in one zone loses power (correlated facility failure).
    Zone,
}

/// One deterministic cluster fault schedule: a fleet of nodes spread over
/// `zones * racks_per_zone` failure domains, a bounded per-shard commit
/// stream, one correlated power cut scoped to a node, rack, or zone, and
/// optionally a live shard move racing the traffic.
///
/// Like the other plans, values are fully derived from the seed, so any
/// sweep failure replays from `(plan seed, placement, policy)` alone. The
/// cut's failure-domain footprint always stays within what rf=3,
/// zone-disjoint placement tolerates: at most one zone's worth of replicas
/// per shard, so a quorum of the surviving two zones keeps every
/// acknowledged commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterFaultPlan {
    /// Seed for plan-derived randomness, payloads, and network jitter.
    pub seed: u64,
    /// Fleet size.
    pub nodes: usize,
    /// Availability zones (always ≥ 3 so rf=3 can be zone-disjoint).
    pub zones: u32,
    /// Racks inside each zone.
    pub racks_per_zone: u32,
    /// Logical shards placed across the fleet.
    pub shards: u16,
    /// Commits issued per shard before the cut settles.
    pub commits_per_shard: u64,
    /// What the correlated cut takes out.
    pub scope: CutScope,
    /// Which domain dies: a node index, rack index, or zone index
    /// (interpreted under `scope`, already reduced into range).
    pub victim: usize,
    /// Nanoseconds after traffic start at which the cut lands — mid
    /// protocol, never aligned to a commit boundary.
    pub cut_delay_ns: u64,
    /// A live shard move racing the traffic: `(shard, after_release)` —
    /// the mover starts once that many commits have been released
    /// cluster-wide. `None` for a static placement.
    pub shard_move: Option<(u16, u64)>,
}

impl ClusterFaultPlan {
    /// Derives a random-but-deterministic cluster plan from `seed`.
    pub fn random(seed: u64) -> Self {
        let mut rng = SimRng::seed_from(seed ^ 0xC1A5_7E2B_C1A5_7E2B);
        let zones = 3u32;
        let racks_per_zone = 1 + rng.next_u64_below(2) as u32; // 1..=2
        let nodes = 9 + rng.next_u64_below(7) as usize; // 9..=15
        let shards = 4 + rng.next_u64_below(5) as u16; // 4..=8
        let commits_per_shard = 6 + rng.next_u64_below(7); // 6..=12
        let scope = match rng.next_u64_below(3) {
            0 => CutScope::Node,
            1 => CutScope::Rack,
            _ => CutScope::Zone,
        };
        let domains = match scope {
            CutScope::Node => nodes as u64,
            CutScope::Rack => u64::from(zones * racks_per_zone),
            CutScope::Zone => u64::from(zones),
        };
        let victim = rng.next_u64_below(domains) as usize;
        let shard_move = if rng.chance(0.5) {
            let shard = rng.next_u64_below(u64::from(shards)) as u16;
            let total = commits_per_shard * u64::from(shards);
            Some((shard, rng.next_u64_below(total.max(1) / 2)))
        } else {
            None
        };
        ClusterFaultPlan {
            seed,
            nodes,
            zones,
            racks_per_zone,
            shards,
            commits_per_shard,
            scope,
            victim,
            cut_delay_ns: 20_000 + rng.next_u64_below(380_000),
            shard_move,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_plans_are_deterministic_and_bounded() {
        assert_eq!(ClusterFaultPlan::random(7), ClusterFaultPlan::random(7));
        assert_ne!(ClusterFaultPlan::random(1), ClusterFaultPlan::random(2));
        for seed in 0..300 {
            let p = ClusterFaultPlan::random(seed);
            assert!((9..=15).contains(&p.nodes));
            assert_eq!(p.zones, 3, "rf=3 zone-disjointness needs 3 zones");
            assert!((1..=2).contains(&p.racks_per_zone));
            assert!((4..=8).contains(&p.shards));
            assert!((6..=12).contains(&p.commits_per_shard));
            let domains = match p.scope {
                CutScope::Node => p.nodes,
                CutScope::Rack => (p.zones * p.racks_per_zone) as usize,
                CutScope::Zone => p.zones as usize,
            };
            assert!(p.victim < domains, "victim outside its domain space");
            assert!((20_000..400_000).contains(&p.cut_delay_ns));
            if let Some((shard, after)) = p.shard_move {
                assert!(shard < p.shards);
                assert!(after < p.commits_per_shard * u64::from(p.shards));
            }
        }
        // All three scopes actually occur across a modest seed range.
        let scopes: Vec<CutScope> = (0..48).map(|s| ClusterFaultPlan::random(s).scope).collect();
        for want in [CutScope::Node, CutScope::Rack, CutScope::Zone] {
            assert!(scopes.contains(&want), "{want:?} never drawn in 48 plans");
        }
    }

    #[test]
    fn repl_plans_are_deterministic_and_bounded() {
        assert_eq!(ReplFaultPlan::random(9), ReplFaultPlan::random(9));
        assert_ne!(ReplFaultPlan::random(1), ReplFaultPlan::random(2));
        for seed in 0..300 {
            let p = ReplFaultPlan::random(seed);
            assert!((2..=4).contains(&p.replicas));
            assert!((1..=p.replicas).contains(&p.quorum));
            assert!((6..=20).contains(&p.commits));
            // The guarantee's failure budget: primary crash + partitions
            // stay within k simultaneous failures, and >= k replicas stay
            // connected.
            assert!(p.partitioned.len() < p.quorum.max(1));
            assert!(p.replicas - p.partitioned.len() >= p.quorum);
            let mut seen: Vec<usize> = p.partitioned.iter().map(|&(r, _)| r).collect();
            seen.dedup();
            assert_eq!(seen.len(), p.partitioned.len(), "partition set repeats");
            for &(at, replica, _) in &p.ship_faults {
                assert!(at < p.commits);
                assert!(replica < p.replicas);
            }
        }
    }

    #[test]
    fn plans_are_deterministic() {
        assert_eq!(FaultPlan::random(42), FaultPlan::random(42));
        assert_ne!(FaultPlan::random(1), FaultPlan::random(2));
    }

    #[test]
    fn plans_are_bounded() {
        for seed in 0..200 {
            let p = FaultPlan::random(seed);
            assert!((8..=40).contains(&p.commits));
            assert!(p.cut_delay_ns < 3_000);
            assert!(p.flush_faults.len() < 4);
            for (at, _) in &p.flush_faults {
                assert!(*at < p.commits);
            }
            if let Some(rber) = p.nand_rber {
                assert!(rber <= 1e-5, "rber {rber} would exceed the ECC budget");
            }
        }
    }
}
