//! Property-based tests of the NAND array's physical invariants.

use proptest::prelude::*;
use twob_nand::{FlashClass, NandArray, NandError, NandGeometry};

/// An abstract NAND operation drawn by proptest.
#[derive(Debug, Clone)]
enum Op {
    Erase { block: u64 },
    Program { block: u64, fill: u8 },
    Read { block: u64, page: u32 },
}

fn op_strategy(blocks: u64, pages: u32) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..blocks).prop_map(|block| Op::Erase { block }),
        (0..blocks, any::<u8>()).prop_map(|(block, fill)| Op::Program { block, fill }),
        (0..blocks, 0..pages).prop_map(|(block, page)| Op::Read { block, page }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Against an oracle model: reads return exactly the last bytes
    /// programmed since the covering erase, and the array never accepts an
    /// out-of-order or double program.
    #[test]
    fn nand_matches_oracle(
        ops in prop::collection::vec(op_strategy(8, 16), 1..120)
    ) {
        let geom = NandGeometry::small_test();
        let mut nand = NandArray::new(geom, FlashClass::LowLatencySlc.timing());
        // Oracle: per block, the programmed pages and their fill bytes.
        let mut oracle: Vec<Vec<Option<u8>>> = vec![vec![None; 16]; 8];
        let mut next_page: Vec<u32> = vec![0; 8];

        for op in ops {
            match op {
                Op::Erase { block } => {
                    let addr = geom.block_from_flat(block);
                    nand.erase_block(addr).expect("erase always legal");
                    oracle[block as usize] = vec![None; 16];
                    next_page[block as usize] = 0;
                }
                Op::Program { block, fill } => {
                    let addr = geom.block_from_flat(block);
                    let np = next_page[block as usize];
                    let data = vec![fill; 4096];
                    if np < 16 {
                        nand.program_page(addr.page(np), &data).expect("in-order program");
                        oracle[block as usize][np as usize] = Some(fill);
                        next_page[block as usize] += 1;
                    } else {
                        // Block full: programming must fail.
                        prop_assert!(nand.program_page(addr.page(np), &data).is_err());
                    }
                }
                Op::Read { block, page } => {
                    let addr = geom.block_from_flat(block);
                    match (oracle[block as usize][page as usize], nand.read_page(addr.page(page))) {
                        (Some(fill), Ok(read)) => {
                            prop_assert!(read.data.iter().all(|&b| b == fill));
                        }
                        (None, Err(NandError::ReadUnwritten(_))) => {}
                        (expected, got) => {
                            return Err(TestCaseError::fail(format!(
                                "oracle {expected:?} but nand returned {:?}",
                                got.map(|r| r.data[0])
                            )));
                        }
                    }
                }
            }
        }
    }

    /// Double programming any page is always rejected.
    #[test]
    fn double_program_always_rejected(block in 0u64..8, fills in prop::collection::vec(any::<u8>(), 1..16)) {
        let geom = NandGeometry::small_test();
        let mut nand = NandArray::new(geom, FlashClass::DatacenterTlc.timing());
        let addr = geom.block_from_flat(block);
        for (i, fill) in fills.iter().enumerate() {
            nand.program_page(addr.page(i as u32), &vec![*fill; 4096]).unwrap();
        }
        // Re-programming any already-written page fails.
        for i in 0..fills.len() {
            prop_assert!(matches!(
                nand.program_page(addr.page(i as u32), &vec![0; 4096]),
                Err(NandError::ProgramWithoutErase(_))
            ));
        }
    }

    /// Erase counts only ever grow, and wear reports aggregate them.
    #[test]
    fn wear_is_monotonic(erases in prop::collection::vec(0u64..8, 1..40)) {
        let geom = NandGeometry::small_test();
        let mut nand = NandArray::new(geom, FlashClass::LowLatencySlc.timing());
        let mut last_total = 0u64;
        for block in erases {
            let addr = geom.block_from_flat(block);
            nand.erase_block(addr).unwrap();
            let report = nand.wear_report();
            prop_assert!(report.erases > last_total);
            last_total = report.erases;
            prop_assert!(report.max_erase_count >= report.min_erase_count);
        }
    }

    /// Flat block/page addressing round-trips for arbitrary geometry.
    #[test]
    fn addressing_roundtrip(
        channels in 1u32..8, ways in 1u32..8, planes in 1u32..4,
        blocks in 1u32..64, pages in 1u32..128, idx in any::<u64>()
    ) {
        let geom = NandGeometry {
            channels,
            ways_per_channel: ways,
            planes_per_way: planes,
            blocks_per_plane: blocks,
            pages_per_block: pages,
            page_size: 4096,
            spare_per_page: 128,
        };
        let flat = idx % geom.blocks_total();
        let addr = geom.block_from_flat(flat);
        prop_assert_eq!(geom.block_to_flat(addr), flat);
        let ppa = twob_nand::Ppa(idx % geom.pages_total());
        prop_assert_eq!(geom.ppa(geom.page_from_ppa(ppa)), ppa);
    }
}
