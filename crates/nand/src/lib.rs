//! Functional and timing model of a NAND flash array.
//!
//! The 2B-SSD paper's results rest on three physical properties of NAND
//! flash, all of which this crate enforces rather than merely parameterizes:
//!
//! 1. **Page-granular programming**: the smallest write unit is a page
//!    (4 KiB here), which is why conventional WAL must write a whole page per
//!    commit even for a 100-byte log record.
//! 2. **Erase-before-program and sequential in-block programming**: a page
//!    cannot be rewritten until its whole block is erased, and pages within a
//!    block must be programmed in order — the constraints that force an FTL
//!    and create write amplification.
//! 3. **Read/program latency asymmetry**: program is one to two orders of
//!    magnitude slower than read, which is why absorbing small writes in the
//!    BA-buffer pays off.
//!
//! Pages store *real bytes*, so the whole stack above (FTL, SSD, 2B-SSD,
//! WAL, databases) can be verified end-to-end by byte-equality, including
//! across simulated power loss.
//!
//! # Example
//!
//! ```rust
//! use twob_nand::{FlashClass, NandArray, NandGeometry};
//!
//! let geom = NandGeometry::small_test();
//! let mut nand = NandArray::new(geom, FlashClass::LowLatencySlc.timing());
//! let block = geom.block_addr(0, 0, 0, 0);
//! nand.erase_block(block)?;
//! let page = block.page(0);
//! nand.program_page(page, &vec![0xAB; geom.page_size as usize])?;
//! assert_eq!(nand.read_page(page)?.data[0], 0xAB);
//! # Ok::<(), twob_nand::NandError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod array;
mod ecc;
mod error;
mod geometry;
mod timing;

pub use array::{NandArray, NandOp, ProgramResult, ReadResult, WearReport};
pub use ecc::{BitErrorModel, EccConfig, EccOutcome};
pub use error::NandError;
pub use geometry::{BlockAddr, NandGeometry, PageAddr, Ppa};
pub use timing::{FlashClass, NandTiming, TimingBreakdown};
