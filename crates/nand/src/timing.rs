//! NAND timing parameters per flash class.

use serde::{Deserialize, Serialize};
use twob_sim::SimDuration;

/// Calibrated timing for one class of NAND flash.
///
/// A page read costs `t_read` on the die plus a bus transfer; a program
/// costs the transfer plus `t_prog`; an erase occupies the die for `t_erase`.
///
/// # Example
///
/// ```rust
/// use twob_nand::FlashClass;
///
/// let t = FlashClass::LowLatencySlc.timing();
/// // Low-latency SLC reads are single-digit microseconds.
/// assert!(t.t_read.as_micros_f64() <= 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NandTiming {
    /// Array-to-register sense time (tR).
    pub t_read: SimDuration,
    /// Register-to-array program time (tPROG).
    pub t_prog: SimDuration,
    /// Block erase time (tBERS).
    pub t_erase: SimDuration,
    /// Channel bus bandwidth in bytes per second (e.g. 800 MT/s ≈ 800 MB/s
    /// for an 8-bit bus).
    pub bus_bytes_per_sec: u64,
}

impl NandTiming {
    /// Time to move `bytes` over the channel bus.
    pub fn xfer(&self, bytes: u64) -> SimDuration {
        SimDuration::from_nanos_f64(bytes as f64 * 1e9 / self.bus_bytes_per_sec as f64)
    }
}

/// Flash classes used by the reproduction's device profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlashClass {
    /// Low-latency single-bit NAND in the Z-NAND mould: ~3 µs reads
    /// (the ULL-SSD comparator and the 2B-SSD prototype both use this;
    /// Table I lists "single-bit NAND flash", and [58] reports 3 µs tR).
    LowLatencySlc,
    /// Datacenter TLC 3D V-NAND in the PM963 mould: tens-of-µs reads,
    /// high-hundreds-of-µs programs.
    DatacenterTlc,
}

impl FlashClass {
    /// Returns the calibrated timing constants for this class.
    pub const fn timing(self) -> NandTiming {
        match self {
            FlashClass::LowLatencySlc => NandTiming {
                t_read: SimDuration::from_micros(3),
                t_prog: SimDuration::from_micros(100),
                t_erase: SimDuration::from_millis(1),
                bus_bytes_per_sec: 1_200_000_000,
            },
            FlashClass::DatacenterTlc => NandTiming {
                t_read: SimDuration::from_micros(65),
                t_prog: SimDuration::from_micros(700),
                t_erase: SimDuration::from_millis(4),
                bus_bytes_per_sec: 800_000_000,
            },
        }
    }
}

/// The die-time and channel-time components of one NAND operation.
///
/// The SSD layer schedules the two components on different resources: the
/// die time occupies the die, the transfer occupies the shared channel bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TimingBreakdown {
    /// Time the die is busy (sense, program, or erase).
    pub die_time: SimDuration,
    /// Time the channel bus is busy moving data.
    pub xfer_time: SimDuration,
}

impl TimingBreakdown {
    /// Sum of both components — the latency when die and bus are both idle.
    pub fn total(&self) -> SimDuration {
        self.die_time + self.xfer_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slc_is_faster_than_tlc_everywhere() {
        let slc = FlashClass::LowLatencySlc.timing();
        let tlc = FlashClass::DatacenterTlc.timing();
        assert!(slc.t_read < tlc.t_read);
        assert!(slc.t_prog < tlc.t_prog);
        assert!(slc.t_erase < tlc.t_erase);
    }

    #[test]
    fn program_dwarfs_read_asymmetry() {
        // The paper leans on the read/write asymmetry of NAND (§IV-A).
        for class in [FlashClass::LowLatencySlc, FlashClass::DatacenterTlc] {
            let t = class.timing();
            assert!(t.t_prog.as_nanos() >= 10 * t.t_read.as_nanos());
        }
    }

    #[test]
    fn xfer_scales_linearly() {
        let t = FlashClass::LowLatencySlc.timing();
        let one = t.xfer(4096);
        let two = t.xfer(8192);
        // Within rounding of the per-byte nanosecond conversion.
        assert!(two.as_nanos().abs_diff(one.as_nanos() * 2) <= 1);
    }

    #[test]
    fn breakdown_total() {
        let b = TimingBreakdown {
            die_time: SimDuration::from_micros(3),
            xfer_time: SimDuration::from_micros(4),
        };
        assert_eq!(b.total(), SimDuration::from_micros(7));
    }
}
