//! Bit-error injection and ECC correction budget.

use serde::{Deserialize, Serialize};
use twob_sim::SimRng;

/// ECC strength configuration: how many raw bit errors per codeword the
/// controller can correct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EccConfig {
    /// Codeword size in bytes (a page is split into codewords).
    pub codeword_bytes: u32,
    /// Correctable bit errors per codeword.
    pub correctable_bits: u32,
}

impl Default for EccConfig {
    fn default() -> Self {
        // 1 KiB codewords with 40-bit BCH-class correction, typical for
        // enterprise controllers.
        EccConfig {
            codeword_bytes: 1024,
            correctable_bits: 40,
        }
    }
}

/// Raw bit-error behaviour of the medium as a function of block wear.
///
/// The model is deliberately simple: a base raw bit-error rate (RBER) that
/// grows linearly with the block's erase count. It exists so that the upper
/// layers have a real "uncorrectable read" path to test, not to predict
/// device lifetimes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BitErrorModel {
    /// RBER for a fresh block.
    pub base_rber: f64,
    /// Additional RBER per program/erase cycle.
    pub rber_per_pe_cycle: f64,
}

impl Default for BitErrorModel {
    fn default() -> Self {
        BitErrorModel {
            base_rber: 1e-8,
            rber_per_pe_cycle: 1e-10,
        }
    }
}

impl BitErrorModel {
    /// A model that never produces bit errors; used when tests want a
    /// perfectly reliable medium.
    pub const fn perfect() -> Self {
        BitErrorModel {
            base_rber: 0.0,
            rber_per_pe_cycle: 0.0,
        }
    }

    /// RBER for a block with `erase_count` program/erase cycles.
    pub fn rber_at(&self, erase_count: u64) -> f64 {
        self.base_rber + self.rber_per_pe_cycle * erase_count as f64
    }

    /// Draws the raw bit-error count for one codeword read.
    ///
    /// Uses a Poisson draw via inversion, which is exact for the tiny means
    /// involved (λ = RBER × bits).
    pub fn draw_errors(&self, rng: &mut SimRng, erase_count: u64, codeword_bits: u64) -> u32 {
        let lambda = self.rber_at(erase_count) * codeword_bits as f64;
        if lambda <= 0.0 {
            return 0;
        }
        // Knuth inversion; fine because lambda << 10 in practice.
        let l = (-lambda).exp();
        let mut k = 0u32;
        let mut p = 1.0;
        loop {
            p *= rng.next_f64();
            if p <= l {
                return k;
            }
            k += 1;
            if k > 10_000 {
                return k; // guard against pathological configs
            }
        }
    }
}

/// The outcome of running ECC over a page read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EccOutcome {
    /// The page was clean or fully corrected; carries the corrected-bit count.
    Corrected(u32),
    /// At least one codeword exceeded the correction budget.
    Uncorrectable,
}

impl EccConfig {
    /// Simulates ECC over one page of `page_bytes`, drawing per-codeword
    /// error counts from `model` for a block with `erase_count` cycles.
    pub fn check_page(
        &self,
        model: &BitErrorModel,
        rng: &mut SimRng,
        erase_count: u64,
        page_bytes: u32,
    ) -> EccOutcome {
        let codewords = page_bytes.div_ceil(self.codeword_bytes).max(1);
        let bits_per_codeword = u64::from(self.codeword_bytes) * 8;
        let mut corrected = 0u32;
        for _ in 0..codewords {
            let errs = model.draw_errors(rng, erase_count, bits_per_codeword);
            if errs > self.correctable_bits {
                return EccOutcome::Uncorrectable;
            }
            corrected += errs;
        }
        EccOutcome::Corrected(corrected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_model_never_errs() {
        let mut rng = SimRng::seed_from(1);
        let model = BitErrorModel::perfect();
        for _ in 0..1000 {
            assert_eq!(model.draw_errors(&mut rng, 1_000_000, 8192), 0);
        }
    }

    #[test]
    fn rber_grows_with_wear() {
        let model = BitErrorModel::default();
        assert!(model.rber_at(10_000) > model.rber_at(0));
    }

    #[test]
    fn default_ecc_absorbs_default_rber() {
        let mut rng = SimRng::seed_from(2);
        let ecc = EccConfig::default();
        let model = BitErrorModel::default();
        for _ in 0..500 {
            assert!(matches!(
                ecc.check_page(&model, &mut rng, 0, 4096),
                EccOutcome::Corrected(_)
            ));
        }
    }

    #[test]
    fn hot_block_with_weak_ecc_fails() {
        let mut rng = SimRng::seed_from(3);
        let ecc = EccConfig {
            codeword_bytes: 1024,
            correctable_bits: 0,
        };
        // RBER of 1e-3 over 8192-bit codewords: ~8 errors expected.
        let model = BitErrorModel {
            base_rber: 1e-3,
            rber_per_pe_cycle: 0.0,
        };
        let failures = (0..100)
            .filter(|_| ecc.check_page(&model, &mut rng, 0, 4096) == EccOutcome::Uncorrectable)
            .count();
        assert!(failures > 90, "only {failures} uncorrectable");
    }
}
