//! Error type for NAND operations.

use std::error::Error;
use std::fmt;

use crate::{BlockAddr, PageAddr};

/// Errors raised by the NAND array model.
///
/// These encode the physical rules of NAND flash; hitting one in the upper
/// layers almost always means an FTL or buffer-manager bug, which is exactly
/// why the model enforces them.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NandError {
    /// A page was programmed without erasing its block first, or programmed
    /// twice.
    ProgramWithoutErase(PageAddr),
    /// Pages within a block must be programmed in strictly increasing order.
    OutOfOrderProgram {
        /// The page that was attempted.
        attempted: PageAddr,
        /// The next page the block would accept.
        expected_page: u32,
    },
    /// The block has been marked bad and refuses all operations.
    BadBlock(BlockAddr),
    /// A read touched a page that has never been programmed since erase.
    ReadUnwritten(PageAddr),
    /// ECC could not correct the raw bit errors in the page.
    Uncorrectable(PageAddr),
    /// The supplied buffer does not match the page size.
    WrongBufferLen {
        /// Buffer length supplied by the caller.
        got: usize,
        /// Page size expected by the geometry.
        expected: usize,
    },
}

impl fmt::Display for NandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NandError::ProgramWithoutErase(p) => {
                write!(f, "program of {p} without erase")
            }
            NandError::OutOfOrderProgram {
                attempted,
                expected_page,
            } => write!(
                f,
                "out-of-order program of {attempted}; block expects page {expected_page}"
            ),
            NandError::BadBlock(b) => write!(f, "operation on bad block {b}"),
            NandError::ReadUnwritten(p) => write!(f, "read of unwritten page {p}"),
            NandError::Uncorrectable(p) => write!(f, "uncorrectable ECC error at {p}"),
            NandError::WrongBufferLen { got, expected } => {
                write!(f, "buffer of {got} bytes where page size is {expected}")
            }
        }
    }
}

impl Error for NandError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NandGeometry;

    #[test]
    fn display_is_informative() {
        let g = NandGeometry::small_test();
        let b = g.block_addr(0, 0, 0, 0);
        let msgs = [
            NandError::ProgramWithoutErase(b.page(0)).to_string(),
            NandError::BadBlock(b).to_string(),
            NandError::WrongBufferLen {
                got: 1,
                expected: 4096,
            }
            .to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NandError>();
    }
}
