//! Physical geometry of the NAND array and its address types.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The physical shape of a NAND array.
///
/// Addresses decompose as
/// `channel → way (die) → plane → block → page`, mirroring the paper's
/// "multiple channels/ways/cores" architecture (Table I).
///
/// # Example
///
/// ```rust
/// use twob_nand::NandGeometry;
///
/// let g = NandGeometry::small_test();
/// assert_eq!(g.pages_total(), g.pages_per_block as u64 * g.blocks_total());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NandGeometry {
    /// Independent channels between controller and dies.
    pub channels: u32,
    /// Dies ("ways") per channel.
    pub ways_per_channel: u32,
    /// Planes per die.
    pub planes_per_way: u32,
    /// Erase blocks per plane.
    pub blocks_per_plane: u32,
    /// Program/read pages per block.
    pub pages_per_block: u32,
    /// User-visible bytes per page (excluding spare area).
    pub page_size: u32,
    /// Spare (out-of-band) bytes per page for ECC and metadata.
    pub spare_per_page: u32,
}

impl NandGeometry {
    /// A geometry small enough for unit tests to exhaust: 2 channels × 2
    /// ways × 1 plane × 8 blocks × 16 pages of 4 KiB.
    pub const fn small_test() -> Self {
        NandGeometry {
            channels: 2,
            ways_per_channel: 2,
            planes_per_way: 1,
            blocks_per_plane: 8,
            pages_per_block: 16,
            page_size: 4096,
            spare_per_page: 128,
        }
    }

    /// A geometry proportioned like the paper's 800 GB prototype (Table I),
    /// scaled by channel/way parallelism typical for a PCIe Gen3 ×4 device.
    /// Pages are allocated lazily, so the nominal capacity costs no memory.
    pub const fn prototype_800gb() -> Self {
        NandGeometry {
            channels: 8,
            ways_per_channel: 8,
            planes_per_way: 2,
            blocks_per_plane: 2048,
            pages_per_block: 768,
            page_size: 4096,
            spare_per_page: 128,
        }
    }

    /// Total dies in the array.
    pub const fn dies_total(&self) -> u64 {
        self.channels as u64 * self.ways_per_channel as u64
    }

    /// Total erase blocks in the array.
    pub const fn blocks_total(&self) -> u64 {
        self.dies_total() * self.planes_per_way as u64 * self.blocks_per_plane as u64
    }

    /// Total pages in the array.
    pub const fn pages_total(&self) -> u64 {
        self.blocks_total() * self.pages_per_block as u64
    }

    /// Raw capacity in bytes (user area only).
    pub const fn capacity_bytes(&self) -> u64 {
        self.pages_total() * self.page_size as u64
    }

    /// Bytes per erase block.
    pub const fn block_bytes(&self) -> u64 {
        self.pages_per_block as u64 * self.page_size as u64
    }

    /// Flat die index for a `(channel, way)` pair, in `[0, dies_total)`.
    ///
    /// This is the single source of truth for die numbering: the FTL's
    /// per-die free pools and the SSD's die servers both index with it, so
    /// GC and host I/O can never disagree on die routing.
    pub const fn die_index(&self, channel: u32, way: u32) -> usize {
        (channel * self.ways_per_channel + way) as usize
    }

    /// Flat die index of the die holding flat block `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn die_index_of_flat_block(&self, index: u64) -> usize {
        let addr = self.block_from_flat(index);
        self.die_index(addr.channel, addr.way)
    }

    /// Builds a [`BlockAddr`], validating each coordinate.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range for this geometry.
    pub fn block_addr(&self, channel: u32, way: u32, plane: u32, block: u32) -> BlockAddr {
        assert!(channel < self.channels, "channel {channel} out of range");
        assert!(way < self.ways_per_channel, "way {way} out of range");
        assert!(plane < self.planes_per_way, "plane {plane} out of range");
        assert!(block < self.blocks_per_plane, "block {block} out of range");
        BlockAddr {
            channel,
            way,
            plane,
            block,
        }
    }

    /// Converts a flat block index in `[0, blocks_total)` to an address.
    /// Blocks are striped channel-first so consecutive indices land on
    /// different channels, maximizing parallelism for sequential workloads.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn block_from_flat(&self, index: u64) -> BlockAddr {
        assert!(index < self.blocks_total(), "block index out of range");
        let channel = (index % self.channels as u64) as u32;
        let rest = index / self.channels as u64;
        let way = (rest % self.ways_per_channel as u64) as u32;
        let rest = rest / self.ways_per_channel as u64;
        let plane = (rest % self.planes_per_way as u64) as u32;
        let block = (rest / self.planes_per_way as u64) as u32;
        BlockAddr {
            channel,
            way,
            plane,
            block,
        }
    }

    /// Converts a block address back to its flat index
    /// (inverse of [`NandGeometry::block_from_flat`]).
    pub fn block_to_flat(&self, addr: BlockAddr) -> u64 {
        let mut idx = addr.block as u64;
        idx = idx * self.planes_per_way as u64 + addr.plane as u64;
        idx = idx * self.ways_per_channel as u64 + addr.way as u64;
        idx * self.channels as u64 + addr.channel as u64
    }

    /// Converts a page address to a flat physical page address.
    pub fn ppa(&self, page: PageAddr) -> Ppa {
        Ppa(self.block_to_flat(page.block) * self.pages_per_block as u64 + page.page as u64)
    }

    /// Converts a flat physical page address back to a page address.
    ///
    /// # Panics
    ///
    /// Panics if `ppa` is out of range.
    pub fn page_from_ppa(&self, ppa: Ppa) -> PageAddr {
        assert!(ppa.0 < self.pages_total(), "ppa out of range");
        let block = self.block_from_flat(ppa.0 / self.pages_per_block as u64);
        PageAddr {
            block,
            page: (ppa.0 % self.pages_per_block as u64) as u32,
        }
    }
}

impl Default for NandGeometry {
    fn default() -> Self {
        NandGeometry::prototype_800gb()
    }
}

/// Address of one erase block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockAddr {
    /// Channel index.
    pub channel: u32,
    /// Way (die) index within the channel.
    pub way: u32,
    /// Plane index within the die.
    pub plane: u32,
    /// Block index within the plane.
    pub block: u32,
}

impl BlockAddr {
    /// Returns the address of page `page` within this block.
    pub const fn page(self, page: u32) -> PageAddr {
        PageAddr { block: self, page }
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "c{}w{}p{}b{}",
            self.channel, self.way, self.plane, self.block
        )
    }
}

/// Address of one NAND page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PageAddr {
    /// The containing erase block.
    pub block: BlockAddr,
    /// Page index within the block.
    pub page: u32,
}

impl fmt::Display for PageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/pg{}", self.block, self.page)
    }
}

/// A flat physical page address — what the FTL's mapping table stores.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct Ppa(pub u64);

impl fmt::Display for Ppa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ppa:{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_math() {
        let g = NandGeometry::small_test();
        assert_eq!(g.dies_total(), 4);
        assert_eq!(g.blocks_total(), 32);
        assert_eq!(g.pages_total(), 512);
        assert_eq!(g.capacity_bytes(), 512 * 4096);
    }

    #[test]
    fn prototype_is_800gb_class() {
        let g = NandGeometry::prototype_800gb();
        let gb = g.capacity_bytes() as f64 / 1e9;
        assert!(
            (500.0..1200.0).contains(&gb),
            "prototype capacity {gb:.1} GB not in the 800 GB class"
        );
    }

    #[test]
    fn flat_block_round_trip() {
        let g = NandGeometry::small_test();
        for idx in 0..g.blocks_total() {
            let addr = g.block_from_flat(idx);
            assert_eq!(g.block_to_flat(addr), idx);
        }
    }

    #[test]
    fn die_index_covers_all_dies_exactly_once_per_block_group() {
        let g = NandGeometry::small_test();
        let mut seen = vec![0u32; g.dies_total() as usize];
        for ch in 0..g.channels {
            for way in 0..g.ways_per_channel {
                seen[g.die_index(ch, way)] += 1;
            }
        }
        assert!(seen.iter().all(|&n| n == 1), "die_index is not a bijection");
        for idx in 0..g.blocks_total() {
            let addr = g.block_from_flat(idx);
            assert_eq!(
                g.die_index_of_flat_block(idx),
                g.die_index(addr.channel, addr.way)
            );
        }
    }

    #[test]
    fn consecutive_blocks_stripe_channels() {
        let g = NandGeometry::small_test();
        let a = g.block_from_flat(0);
        let b = g.block_from_flat(1);
        assert_ne!(a.channel, b.channel);
    }

    #[test]
    fn ppa_round_trip() {
        let g = NandGeometry::small_test();
        for raw in [0u64, 1, 15, 16, 511] {
            let page = g.page_from_ppa(Ppa(raw));
            assert_eq!(g.ppa(page), Ppa(raw));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn block_addr_validates() {
        let g = NandGeometry::small_test();
        let _ = g.block_addr(99, 0, 0, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn ppa_out_of_range_panics() {
        let g = NandGeometry::small_test();
        let _ = g.page_from_ppa(Ppa(g.pages_total()));
    }
}
