//! The NAND array: real byte storage plus physical-rule enforcement.

use std::collections::HashMap;

use twob_sim::{SimDuration, SimRng};

use crate::{
    BitErrorModel, BlockAddr, EccConfig, EccOutcome, NandError, NandGeometry, NandTiming, PageAddr,
    TimingBreakdown,
};

/// Per-block bookkeeping.
#[derive(Debug, Clone, Default)]
struct BlockState {
    /// Next programmable page index; pages `< next_page` hold data.
    next_page: u32,
    /// Whether the block has ever been erased (fresh blocks are usable
    /// immediately in this model, matching factory-erased flash).
    erase_count: u64,
    /// Bad blocks refuse all operations.
    bad: bool,
}

/// The operations the array can perform, for accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NandOp {
    /// Page read.
    Read,
    /// Page program.
    Program,
    /// Block erase.
    Erase,
}

/// A completed read: the page bytes plus timing and ECC accounting.
#[derive(Debug, Clone)]
pub struct ReadResult {
    /// The page contents.
    pub data: Vec<u8>,
    /// Die/bus time components for the SSD scheduler.
    pub timing: TimingBreakdown,
    /// Bits ECC corrected on this read.
    pub corrected_bits: u32,
}

/// A completed program: timing components for the SSD scheduler.
#[derive(Debug, Clone, Copy)]
pub struct ProgramResult {
    /// Die/bus time components for the SSD scheduler.
    pub timing: TimingBreakdown,
}

/// Aggregate wear statistics for the array.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WearReport {
    /// Total page programs performed.
    pub programs: u64,
    /// Total page reads performed.
    pub reads: u64,
    /// Total block erases performed.
    pub erases: u64,
    /// Maximum per-block erase count.
    pub max_erase_count: u64,
    /// Minimum per-block erase count across blocks that were ever erased,
    /// or zero if none were.
    pub min_erase_count: u64,
    /// Number of blocks currently marked bad.
    pub bad_blocks: u64,
}

/// A NAND flash array with lazily allocated page storage.
///
/// Enforces erase-before-program, strictly sequential programming within a
/// block, bad-block refusal, and optional bit-error injection with an ECC
/// budget. Stores real bytes so upper layers can be checked end-to-end.
///
/// # Example
///
/// ```rust
/// use twob_nand::{FlashClass, NandArray, NandGeometry};
///
/// let geom = NandGeometry::small_test();
/// let mut nand = NandArray::new(geom, FlashClass::DatacenterTlc.timing());
/// let blk = geom.block_addr(0, 0, 0, 0);
/// nand.erase_block(blk)?;
/// nand.program_page(blk.page(0), &vec![7u8; 4096])?;
/// assert!(nand.program_page(blk.page(0), &vec![7u8; 4096]).is_err());
/// # Ok::<(), twob_nand::NandError>(())
/// ```
#[derive(Debug, Clone)]
pub struct NandArray {
    geometry: NandGeometry,
    timing: NandTiming,
    blocks: HashMap<BlockAddr, BlockState>,
    pages: HashMap<PageAddr, Vec<u8>>,
    ecc: EccConfig,
    error_model: BitErrorModel,
    rng: SimRng,
    programs: u64,
    reads: u64,
    erases: u64,
}

impl NandArray {
    /// Creates an array with a perfectly reliable medium (no bit errors).
    pub fn new(geometry: NandGeometry, timing: NandTiming) -> Self {
        NandArray {
            geometry,
            timing,
            blocks: HashMap::new(),
            pages: HashMap::new(),
            ecc: EccConfig::default(),
            error_model: BitErrorModel::perfect(),
            rng: SimRng::seed_from(0xECC),
            programs: 0,
            reads: 0,
            erases: 0,
        }
    }

    /// Creates an array with bit-error injection governed by `model` and
    /// corrected within `ecc`'s budget, seeded for reproducibility.
    pub fn with_error_model(
        geometry: NandGeometry,
        timing: NandTiming,
        ecc: EccConfig,
        model: BitErrorModel,
        seed: u64,
    ) -> Self {
        NandArray {
            ecc,
            error_model: model,
            rng: SimRng::seed_from(seed),
            ..NandArray::new(geometry, timing)
        }
    }

    /// The array's geometry.
    pub fn geometry(&self) -> NandGeometry {
        self.geometry
    }

    /// The array's timing constants.
    pub fn timing(&self) -> NandTiming {
        self.timing
    }

    fn block_state(&mut self, addr: BlockAddr) -> &mut BlockState {
        self.blocks.entry(addr).or_default()
    }

    /// Erases a block, freeing all its pages for reprogramming.
    ///
    /// Returns the die time the erase occupies.
    ///
    /// # Errors
    ///
    /// Returns [`NandError::BadBlock`] if the block is marked bad.
    pub fn erase_block(&mut self, addr: BlockAddr) -> Result<TimingBreakdown, NandError> {
        let pages_per_block = self.geometry.pages_per_block;
        let state = self.block_state(addr);
        if state.bad {
            return Err(NandError::BadBlock(addr));
        }
        state.next_page = 0;
        state.erase_count += 1;
        self.erases += 1;
        for page in 0..pages_per_block {
            self.pages.remove(&addr.page(page));
        }
        Ok(TimingBreakdown {
            die_time: self.timing.t_erase,
            xfer_time: SimDuration::ZERO,
        })
    }

    /// Programs the next sequential page of a block with `data`.
    ///
    /// # Errors
    ///
    /// - [`NandError::WrongBufferLen`] if `data` is not exactly one page.
    /// - [`NandError::BadBlock`] for bad blocks.
    /// - [`NandError::ProgramWithoutErase`] if the page already holds data.
    /// - [`NandError::OutOfOrderProgram`] if `addr.page` is not the block's
    ///   next sequential page.
    pub fn program_page(
        &mut self,
        addr: PageAddr,
        data: &[u8],
    ) -> Result<ProgramResult, NandError> {
        let page_size = self.geometry.page_size as usize;
        if data.len() != page_size {
            return Err(NandError::WrongBufferLen {
                got: data.len(),
                expected: page_size,
            });
        }
        let state = self.block_state(addr.block);
        if state.bad {
            return Err(NandError::BadBlock(addr.block));
        }
        if addr.page < state.next_page {
            return Err(NandError::ProgramWithoutErase(addr));
        }
        if addr.page > state.next_page {
            return Err(NandError::OutOfOrderProgram {
                attempted: addr,
                expected_page: state.next_page,
            });
        }
        state.next_page += 1;
        self.pages.insert(addr, data.to_vec());
        self.programs += 1;
        Ok(ProgramResult {
            timing: TimingBreakdown {
                die_time: self.timing.t_prog,
                xfer_time: self.timing.xfer(page_size as u64),
            },
        })
    }

    /// Reads a programmed page.
    ///
    /// # Errors
    ///
    /// - [`NandError::BadBlock`] for bad blocks.
    /// - [`NandError::ReadUnwritten`] if the page was never programmed.
    /// - [`NandError::Uncorrectable`] if injected bit errors exceed the ECC
    ///   budget; the block is then marked bad, as real firmware would retire
    ///   it.
    pub fn read_page(&mut self, addr: PageAddr) -> Result<ReadResult, NandError> {
        let erase_count = {
            let state = self.block_state(addr.block);
            if state.bad {
                return Err(NandError::BadBlock(addr.block));
            }
            state.erase_count
        };
        let data = self
            .pages
            .get(&addr)
            .cloned()
            .ok_or(NandError::ReadUnwritten(addr))?;
        self.reads += 1;
        let outcome = self.ecc.check_page(
            &self.error_model,
            &mut self.rng,
            erase_count,
            self.geometry.page_size,
        );
        let corrected_bits = match outcome {
            EccOutcome::Corrected(bits) => bits,
            EccOutcome::Uncorrectable => {
                self.block_state(addr.block).bad = true;
                return Err(NandError::Uncorrectable(addr));
            }
        };
        Ok(ReadResult {
            data,
            timing: TimingBreakdown {
                die_time: self.timing.t_read,
                xfer_time: self.timing.xfer(self.geometry.page_size as u64),
            },
            corrected_bits,
        })
    }

    /// Returns `true` if the page currently holds programmed data.
    pub fn is_programmed(&self, addr: PageAddr) -> bool {
        self.pages.contains_key(&addr)
    }

    /// Next programmable page index of a block (0 for a fresh block).
    pub fn next_page_of(&self, addr: BlockAddr) -> u32 {
        self.blocks.get(&addr).map_or(0, |s| s.next_page)
    }

    /// Erase count of a block.
    pub fn erase_count_of(&self, addr: BlockAddr) -> u64 {
        self.blocks.get(&addr).map_or(0, |s| s.erase_count)
    }

    /// Marks a block bad, as firmware does after a failed program/erase.
    pub fn mark_bad(&mut self, addr: BlockAddr) {
        self.block_state(addr).bad = true;
    }

    /// Returns `true` if the block is marked bad.
    pub fn is_bad(&self, addr: BlockAddr) -> bool {
        self.blocks.get(&addr).is_some_and(|s| s.bad)
    }

    /// Aggregate wear statistics.
    pub fn wear_report(&self) -> WearReport {
        let erased: Vec<u64> = self
            .blocks
            .values()
            .filter(|s| s.erase_count > 0)
            .map(|s| s.erase_count)
            .collect();
        WearReport {
            programs: self.programs,
            reads: self.reads,
            erases: self.erases,
            max_erase_count: erased.iter().copied().max().unwrap_or(0),
            min_erase_count: erased.iter().copied().min().unwrap_or(0),
            bad_blocks: self.blocks.values().filter(|s| s.bad).count() as u64,
        }
    }

    /// Number of pages currently holding data (for memory accounting).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlashClass;

    fn test_array() -> (NandGeometry, NandArray) {
        let g = NandGeometry::small_test();
        (g, NandArray::new(g, FlashClass::LowLatencySlc.timing()))
    }

    #[test]
    fn program_then_read_round_trips() {
        let (g, mut nand) = test_array();
        let blk = g.block_addr(0, 0, 0, 0);
        nand.erase_block(blk).unwrap();
        let data: Vec<u8> = (0..g.page_size).map(|i| (i % 251) as u8).collect();
        nand.program_page(blk.page(0), &data).unwrap();
        assert_eq!(nand.read_page(blk.page(0)).unwrap().data, data);
    }

    #[test]
    fn fresh_block_is_programmable_without_explicit_erase() {
        let (g, mut nand) = test_array();
        let blk = g.block_addr(1, 0, 0, 0);
        assert!(nand.program_page(blk.page(0), &vec![0; 4096]).is_ok());
    }

    #[test]
    fn double_program_rejected() {
        let (g, mut nand) = test_array();
        let blk = g.block_addr(0, 0, 0, 0);
        nand.program_page(blk.page(0), &vec![1; 4096]).unwrap();
        assert_eq!(
            nand.program_page(blk.page(0), &vec![2; 4096]).unwrap_err(),
            NandError::ProgramWithoutErase(blk.page(0))
        );
    }

    #[test]
    fn out_of_order_program_rejected() {
        let (g, mut nand) = test_array();
        let blk = g.block_addr(0, 0, 0, 0);
        let err = nand.program_page(blk.page(3), &vec![0; 4096]).unwrap_err();
        assert!(matches!(err, NandError::OutOfOrderProgram { .. }));
    }

    #[test]
    fn erase_frees_pages_and_counts_wear() {
        let (g, mut nand) = test_array();
        let blk = g.block_addr(0, 0, 0, 0);
        nand.program_page(blk.page(0), &vec![9; 4096]).unwrap();
        nand.erase_block(blk).unwrap();
        assert!(!nand.is_programmed(blk.page(0)));
        assert_eq!(nand.erase_count_of(blk), 1);
        // Reprogramming page 0 is now legal.
        assert!(nand.program_page(blk.page(0), &vec![9; 4096]).is_ok());
    }

    #[test]
    fn read_unwritten_errors() {
        let (g, mut nand) = test_array();
        let blk = g.block_addr(0, 0, 0, 0);
        assert_eq!(
            nand.read_page(blk.page(5)).unwrap_err(),
            NandError::ReadUnwritten(blk.page(5))
        );
    }

    #[test]
    fn bad_block_refuses_everything() {
        let (g, mut nand) = test_array();
        let blk = g.block_addr(0, 0, 0, 1);
        nand.program_page(blk.page(0), &vec![1; 4096]).unwrap();
        nand.mark_bad(blk);
        assert!(matches!(
            nand.read_page(blk.page(0)),
            Err(NandError::BadBlock(_))
        ));
        assert!(matches!(
            nand.program_page(blk.page(1), &vec![1; 4096]),
            Err(NandError::BadBlock(_))
        ));
        assert!(matches!(nand.erase_block(blk), Err(NandError::BadBlock(_))));
    }

    #[test]
    fn wrong_buffer_length_rejected() {
        let (g, mut nand) = test_array();
        let blk = g.block_addr(0, 0, 0, 0);
        let err = nand.program_page(blk.page(0), &[0u8; 100]).unwrap_err();
        assert_eq!(
            err,
            NandError::WrongBufferLen {
                got: 100,
                expected: 4096
            }
        );
    }

    #[test]
    fn uncorrectable_read_retires_block() {
        let g = NandGeometry::small_test();
        let mut nand = NandArray::with_error_model(
            g,
            FlashClass::LowLatencySlc.timing(),
            EccConfig {
                codeword_bytes: 1024,
                correctable_bits: 0,
            },
            BitErrorModel {
                base_rber: 1e-2,
                rber_per_pe_cycle: 0.0,
            },
            7,
        );
        let blk = g.block_addr(0, 0, 0, 0);
        nand.program_page(blk.page(0), &vec![0; 4096]).unwrap();
        let mut failed = false;
        for _ in 0..50 {
            match nand.read_page(blk.page(0)) {
                Err(NandError::Uncorrectable(_)) => {
                    failed = true;
                    break;
                }
                Err(NandError::BadBlock(_)) => unreachable!("loop exits on first failure"),
                _ => {}
            }
        }
        assert!(failed, "expected an uncorrectable read at RBER 1e-2");
        assert!(nand.is_bad(blk));
        assert_eq!(nand.wear_report().bad_blocks, 1);
    }

    #[test]
    fn timing_components_match_class() {
        let (g, mut nand) = test_array();
        let t = FlashClass::LowLatencySlc.timing();
        let blk = g.block_addr(0, 0, 0, 0);
        let prog = nand.program_page(blk.page(0), &vec![0; 4096]).unwrap();
        assert_eq!(prog.timing.die_time, t.t_prog);
        assert_eq!(prog.timing.xfer_time, t.xfer(4096));
        let read = nand.read_page(blk.page(0)).unwrap();
        assert_eq!(read.timing.die_time, t.t_read);
        let erase = nand.erase_block(blk).unwrap();
        assert_eq!(erase.die_time, t.t_erase);
        assert_eq!(erase.xfer_time, SimDuration::ZERO);
    }

    #[test]
    fn wear_report_tracks_counts() {
        let (g, mut nand) = test_array();
        let blk = g.block_addr(0, 0, 0, 0);
        nand.program_page(blk.page(0), &vec![0; 4096]).unwrap();
        nand.read_page(blk.page(0)).unwrap();
        nand.erase_block(blk).unwrap();
        nand.erase_block(blk).unwrap();
        let report = nand.wear_report();
        assert_eq!(report.programs, 1);
        assert_eq!(report.reads, 1);
        assert_eq!(report.erases, 2);
        assert_eq!(report.max_erase_count, 2);
    }
}
