//! Property-based tests: the filesystem behaves exactly like an in-memory
//! map of byte vectors under arbitrary op sequences, and journal replay
//! reconstructs the same view.

use std::collections::HashMap;

use proptest::prelude::*;
use twob_fs::{FsError, MiniFs};
use twob_sim::SimTime;
use twob_ssd::{Ssd, SsdConfig};
use twob_wal::{BlockWal, CommitMode, WalConfig};

#[derive(Debug, Clone)]
enum Op {
    Create {
        file: u8,
    },
    Write {
        file: u8,
        offset: u16,
        len: u8,
        fill: u8,
    },
    Delete {
        file: u8,
    },
    Read {
        file: u8,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => (0u8..6).prop_map(|file| Op::Create { file }),
        4 => (0u8..6, 0u16..12_000, 1u8..=255, any::<u8>())
            .prop_map(|(file, offset, len, fill)| Op::Write { file, offset, len, fill }),
        1 => (0u8..6).prop_map(|file| Op::Delete { file }),
        3 => (0u8..6).prop_map(|file| Op::Read { file }),
    ]
}

fn fs_under_test() -> MiniFs<Ssd, BlockWal<Ssd>> {
    MiniFs::format(
        Ssd::new(SsdConfig::ull_ssd().small()),
        BlockWal::new(
            Ssd::new(SsdConfig::ull_ssd().small()),
            WalConfig::default(),
            CommitMode::Sync,
        )
        .expect("journal"),
        SimTime::ZERO,
    )
    .expect("format")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Oracle equivalence under arbitrary create/write/delete/read churn.
    #[test]
    fn fs_matches_map_model(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let mut fs = fs_under_test();
        let mut model: HashMap<String, Vec<u8>> = HashMap::new();
        let mut t = SimTime::ZERO;
        for op in ops {
            match op {
                Op::Create { file } => {
                    let name = format!("f{file}");
                    match fs.create(t, &name) {
                        Ok(end) => {
                            prop_assert!(!model.contains_key(&name));
                            model.insert(name, Vec::new());
                            t = end;
                        }
                        Err(FsError::AlreadyExists(_)) => {
                            prop_assert!(model.contains_key(&name));
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                    }
                }
                Op::Write { file, offset, len, fill } => {
                    let name = format!("f{file}");
                    let data = vec![fill; len as usize];
                    match fs.write(t, &name, u64::from(offset), &data) {
                        Ok(end) => {
                            let content = model.get_mut(&name).expect("model has file");
                            let need = offset as usize + data.len();
                            if content.len() < need {
                                content.resize(need, 0);
                            }
                            content[offset as usize..need].copy_from_slice(&data);
                            t = end;
                        }
                        Err(FsError::NotFound(_)) => {
                            prop_assert!(!model.contains_key(&name));
                        }
                        Err(FsError::NoFreeSpace) => {
                            // Legal under heavy fill on the small volume.
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                    }
                }
                Op::Delete { file } => {
                    let name = format!("f{file}");
                    match fs.delete(t, &name) {
                        Ok(end) => {
                            prop_assert!(model.remove(&name).is_some());
                            t = end;
                        }
                        Err(FsError::NotFound(_)) => {
                            prop_assert!(!model.contains_key(&name));
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                    }
                }
                Op::Read { file } => {
                    let name = format!("f{file}");
                    match model.get(&name) {
                        Some(content) if !content.is_empty() => {
                            let (data, end) = fs
                                .read(t, &name, 0, content.len() as u64)
                                .expect("mapped read");
                            prop_assert_eq!(&data, content);
                            t = end;
                        }
                        Some(_) => {
                            prop_assert_eq!(fs.file_size(&name).expect("exists"), 0);
                        }
                        None => {
                            prop_assert!(matches!(
                                fs.read(t, &name, 0, 1),
                                Err(FsError::NotFound(_))
                            ));
                        }
                    }
                }
            }
        }
    }

    /// Crash at the end of any op sequence: journal replay reconstructs
    /// the live view (names, sizes, contents).
    #[test]
    fn journal_replay_reconstructs_view(ops in prop::collection::vec(op_strategy(), 1..40)) {
        let journal_cfg = WalConfig::default();
        let mut fs = fs_under_test();
        let mut t = SimTime::ZERO;
        for op in ops {
            t = match op {
                Op::Create { file } => fs.create(t, &format!("f{file}")).unwrap_or(t),
                Op::Write { file, offset, len, fill } => fs
                    .write(t, &format!("f{file}"), u64::from(offset), &vec![fill; len as usize])
                    .unwrap_or(t),
                Op::Delete { file } => fs.delete(t, &format!("f{file}")).unwrap_or(t),
                Op::Read { .. } => t,
            };
        }
        let names = fs.list();
        let sizes: Vec<u64> = names.iter().map(|n| fs.file_size(n).unwrap()).collect();
        let mut contents = Vec::new();
        for (name, size) in names.iter().zip(&sizes) {
            if *size > 0 {
                contents.push(fs.read(t, name, 0, *size).expect("read").0);
            } else {
                contents.push(Vec::new());
            }
        }
        // Crash and recover.
        let (data_dev, journal) = fs.into_parts();
        let mut journal_dev = journal.into_device();
        let replayed = twob_wal::replay(
            &mut journal_dev,
            t,
            journal_cfg.region_base_lba,
            journal_cfg.region_pages,
        )
        .expect("journal replay");
        let fresh_journal = BlockWal::new(
            Ssd::new(SsdConfig::ull_ssd().small()),
            journal_cfg,
            CommitMode::Sync,
        )
        .expect("journal");
        let (mut recovered, t2) =
            MiniFs::mount(data_dev, fresh_journal, &replayed.records, t).expect("mount");
        prop_assert_eq!(recovered.list(), names.clone());
        for ((name, size), content) in names.iter().zip(&sizes).zip(&contents) {
            prop_assert_eq!(recovered.file_size(name).expect("exists"), *size);
            if *size > 0 {
                let (data, _) = recovered.read(t2, name, 0, *size).expect("read");
                prop_assert_eq!(&data, content);
            }
        }
    }
}
